// Tests for the telemetry recorder (sim::Probe): the non-perturbation
// guarantee pinned by sim/probe.hpp — attaching a probe changes neither
// the makespan nor any NetworkStats field — plus hook-side accounting
// balance, bounded downsampling with period doubling, and event-log caps.
#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "xgft/topology.hpp"

namespace obs {
namespace {

using xgft::Topology;

/// The hotspot workload: every other host sends @p bytes to host 0.  The
/// fan-in guarantees queueing, blocking and multi-level wire activity.
sim::NetworkStats runHotspot(const Topology& topo, sim::Probe* probe,
                             sim::Bytes bytes) {
  const routing::RouterPtr router = routing::makeDModK(topo);
  sim::Network net(topo, sim::SimConfig{});
  if (probe != nullptr) net.setProbe(probe);
  for (xgft::NodeIndex s = 1; s < topo.numHosts(); ++s) {
    const sim::MsgId m = net.addMessage(s, 0, bytes, router->route(s, 0));
    net.release(m, 0);
  }
  net.run();
  return net.stats();
}

TEST(Recorder, ObservationDoesNotPerturbTheSimulation) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const sim::NetworkStats plain = runHotspot(topo, nullptr, 16 * 1024);

  RecorderConfig cfg;
  cfg.samplePeriodNs = 1000;  // Deliberately misaligned with event times.
  cfg.recordEvents = true;
  Recorder rec(cfg);
  const sim::NetworkStats observed = runHotspot(topo, &rec, 16 * 1024);

  EXPECT_EQ(observed.lastDeliveryNs, plain.lastDeliveryNs);
  EXPECT_EQ(observed.messagesDelivered, plain.messagesDelivered);
  EXPECT_EQ(observed.segmentsInjected, plain.segmentsInjected);
  EXPECT_EQ(observed.segmentsDelivered, plain.segmentsDelivered);
  EXPECT_EQ(observed.maxOutputQueueDepth, plain.maxOutputQueueDepth);
  EXPECT_EQ(observed.maxInputQueueDepth, plain.maxInputQueueDepth);
  // Sampling ticks are excluded from the event count (network.hpp).
  EXPECT_EQ(observed.eventsProcessed, plain.eventsProcessed);
}

TEST(Recorder, HookAccountingBalances) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  RecorderConfig cfg;
  cfg.recordEvents = true;
  Recorder rec(cfg);
  const sim::NetworkStats stats = runHotspot(topo, &rec, 16 * 1024);
  const RecorderSummary sum = rec.summary();

  EXPECT_EQ(sum.messagesReleased, 15u);
  EXPECT_EQ(sum.messagesDelivered, stats.messagesDelivered);
  // Exact peak == the network's own high-water marks.
  EXPECT_EQ(sum.peakQueueDepth,
            std::max(stats.maxOutputQueueDepth, stats.maxInputQueueDepth));
  EXPECT_GT(sum.peakInFlight, 0u);
  EXPECT_EQ(sum.eventsDropped, 0u);
  EXPECT_EQ(sum.eventsRecorded, rec.events().size());

  std::uint64_t releases = 0;
  std::uint64_t delivers = 0;
  std::uint64_t blocked = 0;
  std::uint64_t woken = 0;
  for (const TraceEvent& ev : rec.events()) {
    switch (ev.kind) {
      case EventKind::kRelease:
        ++releases;
        break;
      case EventKind::kDeliver:
        ++delivers;
        break;
      case EventKind::kBlocked:
        ++blocked;
        break;
      case EventKind::kWake:
        ++woken;
        break;
      case EventKind::kWireBusy:
        EXPECT_GT(ev.durNs, 0u);
        break;
      case EventKind::kLinkDown:
      case EventKind::kLinkUp:
        break;  // Healthy run: no fault transitions expected.
    }
  }
  EXPECT_EQ(releases, sum.messagesReleased);
  EXPECT_EQ(delivers, sum.messagesDelivered);
  // The run drains, so every parked input was eventually woken.
  EXPECT_EQ(blocked, woken);
  EXPECT_GT(blocked, 0u);  // The fan-in must block under default buffers.

  // Released endpoints are retrievable for span labelling.
  const MessageMeta meta = rec.messageMeta(rec.events().front().a);
  EXPECT_EQ(meta.dst, 0u);
  EXPECT_EQ(meta.bytes, 16u * 1024);
}

TEST(Recorder, SeriesStaysBoundedAndPeriodDoubles) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  RecorderConfig cfg;
  cfg.samplePeriodNs = 64;
  cfg.maxSamples = 8;
  Recorder rec(cfg);
  runHotspot(topo, &rec, 64 * 1024);  // Makespan >> 8 * 64 ns.

  const SummarySeries& s = rec.series();
  ASSERT_GE(s.size(), cfg.maxSamples / 2);
  ASSERT_LE(s.size(), cfg.maxSamples);
  const RecorderSummary sum = rec.summary();
  EXPECT_GT(sum.effectivePeriodNs, 64u);
  // Doubling only: the effective period is 64 * 2^k.
  EXPECT_EQ(sum.effectivePeriodNs % 64, 0u);
  const sim::TimeNs ratio = sum.effectivePeriodNs / 64;
  EXPECT_EQ(ratio & (ratio - 1), 0u);

  ASSERT_EQ(s.numGroups(), s.groupLabels.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(s.t[i - 1], s.t[i]);
    }
    for (std::size_t g = 0; g < s.numGroups(); ++g) {
      EXPECT_GE(s.utilAt(i, g), 0.0);
      EXPECT_LE(s.utilAt(i, g), 1.0);
    }
  }
  // A two-level tree has all four link classes.
  EXPECT_EQ(s.groupLabels,
            (std::vector<std::string>{"hosts>L1", "L1>hosts", "L1>L2",
                                      "L2>L1"}));
}

TEST(Recorder, EventLogCapsAndCountsDrops) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  RecorderConfig cfg;
  cfg.recordEvents = true;
  cfg.maxEvents = 4;
  Recorder rec(cfg);
  runHotspot(topo, &rec, 16 * 1024);

  EXPECT_EQ(rec.events().size(), 4u);
  const RecorderSummary sum = rec.summary();
  EXPECT_EQ(sum.eventsRecorded, 4u);
  EXPECT_GT(sum.eventsDropped, 0u);
  // Drop accounting never loses the scalar digests.
  EXPECT_EQ(sum.messagesDelivered, 15u);
}

TEST(Recorder, SamplingDisabledStillTracksExactPeaks) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  RecorderConfig cfg;
  cfg.samplePeriodNs = 0;
  Recorder rec(cfg);
  const sim::NetworkStats stats = runHotspot(topo, &rec, 16 * 1024);

  EXPECT_EQ(rec.series().size(), 0u);
  const RecorderSummary sum = rec.summary();
  EXPECT_EQ(sum.samples, 0u);
  EXPECT_EQ(sum.peakQueueDepth,
            std::max(stats.maxOutputQueueDepth, stats.maxInputQueueDepth));
  EXPECT_EQ(sum.messagesDelivered, stats.messagesDelivered);
}

TEST(Recorder, RejectsUselessSeriesCapacity) {
  RecorderConfig cfg;
  cfg.samplePeriodNs = 100;
  cfg.maxSamples = 1;  // Cannot halve: would never admit a second sample.
  EXPECT_THROW(Recorder{cfg}, std::invalid_argument);
}

TEST(Recorder, SummaryPeaksEnvelopeSurvivesDownsampling) {
  // The sampled series may be halved many times, but pairwise-max merging
  // must keep every sampled gauge under the exact hook-side peak.
  const Topology topo(xgft::xgft2(4, 4, 2));
  RecorderConfig cfg;
  cfg.samplePeriodNs = 64;
  cfg.maxSamples = 4;
  Recorder rec(cfg);
  runHotspot(topo, &rec, 64 * 1024);
  const SummarySeries& s = rec.series();
  const RecorderSummary sum = rec.summary();
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(s.inFlight[i], sum.peakInFlight);
    EXPECT_LE(s.queuedSegments[i], sum.peakQueuedSegments);
    EXPECT_LE(s.maxQueueDepth[i], sum.peakQueueDepth);
    EXPECT_LE(s.blockedInputs[i], sum.peakBlockedInputs);
  }
}

}  // namespace
}  // namespace obs
