// Tests for the Chrome trace-event exporter: structural JSON validity
// (balanced braces outside strings, required top-level shape), b/e span
// pairing, the port-track cap with explicit drop accounting, multi-process
// files, and byte-determinism across repeated identical runs.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "xgft/topology.hpp"

namespace obs {
namespace {

using xgft::Topology;

/// Counts non-overlapping occurrences of @p needle.
std::size_t countOf(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = s.find(needle); at != std::string::npos;
       at = s.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

/// Minimal structural JSON check: braces/brackets balance outside string
/// literals, escapes respected, depth never goes negative, ends at zero.
void expectStructurallyValidJson(const std::string& json) {
  int depth = 0;
  bool inString = false;
  bool escaped = false;
  for (const char c : json) {
    if (inString) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        inString = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        ASSERT_GT(depth, 0) << "unbalanced close in trace JSON";
        --depth;
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(inString) << "unterminated string in trace JSON";
  EXPECT_EQ(depth, 0) << "unbalanced braces in trace JSON";
}

/// Runs the hotspot fan-in under a fresh event-recording Recorder.
Recorder recordHotspot(const Topology& topo, RecorderConfig cfg = [] {
  RecorderConfig c;
  c.recordEvents = true;
  return c;
}()) {
  Recorder rec(cfg);
  const routing::RouterPtr router = routing::makeDModK(topo);
  sim::Network net(topo, sim::SimConfig{});
  net.setProbe(&rec);
  for (xgft::NodeIndex s = 1; s < topo.numHosts(); ++s) {
    const sim::MsgId m = net.addMessage(s, 0, 16 * 1024, router->route(s, 0));
    net.release(m, 0);
  }
  net.run();
  return rec;
}

TEST(ChromeTrace, EmitsStructurallyValidTraceEventJson) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const Recorder rec = recordHotspot(topo);

  std::ostringstream os;
  const AddedProcess added = writeChromeTrace(os, rec);
  const std::string json = os.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  expectStructurallyValidJson(json);

  // Every phase the exporter promises is present.
  EXPECT_GT(countOf(json, "\"ph\":\"M\""), 0u);  // process/thread names.
  EXPECT_GT(countOf(json, "\"ph\":\"X\""), 0u);  // wire slices.
  EXPECT_GT(countOf(json, "\"ph\":\"C\""), 0u);  // counters.
  EXPECT_EQ(countOf(json, "\"ph\":\"b\""), added.messageSpans);
  EXPECT_EQ(countOf(json, "\"ph\":\"e\""), added.messageSpans);
  EXPECT_EQ(added.messageSpans, 15u);  // All hotspot messages completed.
  EXPECT_EQ(added.wireSlices, countOf(json, "\"ph\":\"X\""));
  EXPECT_EQ(added.wireSlicesDropped, 0u);
  EXPECT_GT(added.counterSamples, 0u);

  // Span labels carry endpoints and size.
  EXPECT_GT(countOf(json, ">0 (16384 B)"), 0u);
}

TEST(ChromeTrace, PortTrackCapDropsSlicesExplicitly) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const Recorder rec = recordHotspot(topo);

  std::ostringstream capped;
  ChromeTraceOptions opt;
  opt.maxPortTracks = 1;
  const AddedProcess added = writeChromeTrace(capped, rec, opt);

  EXPECT_EQ(added.portTracks, 1u);
  EXPECT_GT(added.wireSlicesDropped, 0u);
  expectStructurallyValidJson(capped.str());

  std::ostringstream uncapped;
  const AddedProcess full = writeChromeTrace(uncapped, rec);
  EXPECT_EQ(added.wireSlices + added.wireSlicesDropped, full.wireSlices);
}

TEST(ChromeTrace, MultiProcessFileIsValidAndFinishIsIdempotent) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const Recorder rec = recordHotspot(topo);

  std::ostringstream os;
  ChromeTraceWriter writer(os);
  ChromeTraceOptions opt;
  opt.pid = 1;
  opt.processName = "job 0";
  writer.addProcess(rec, opt);
  opt.pid = 2;
  opt.processName = "job 1";
  writer.addProcess(rec, opt);
  writer.finish();
  writer.finish();  // Second finish must not corrupt the file.

  const std::string json = os.str();
  expectStructurallyValidJson(json);
  EXPECT_EQ(countOf(json, "\"job 0\""), 1u);
  EXPECT_EQ(countOf(json, "\"job 1\""), 1u);
  EXPECT_EQ(countOf(json, "\"pid\":2"), countOf(json, "\"pid\":1"));
}

TEST(ChromeTrace, OutputIsDeterministicAcrossIdenticalRuns) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    const Recorder rec = recordHotspot(topo);
    std::ostringstream os;
    writeChromeTrace(os, rec);
    *out = os.str();
  }
  EXPECT_EQ(first, second);
}

TEST(ChromeTrace, SummaryOnlyRecorderStillProducesCounters) {
  // Without recordEvents there are no spans or slices, but the counter
  // tracks from the sampled series must still be emitted.
  const Topology topo(xgft::xgft2(4, 4, 2));
  RecorderConfig cfg;
  cfg.recordEvents = false;
  const Recorder rec = recordHotspot(topo, cfg);

  std::ostringstream os;
  const AddedProcess added = writeChromeTrace(os, rec);
  EXPECT_EQ(added.messageSpans, 0u);
  EXPECT_EQ(added.wireSlices, 0u);
  EXPECT_GT(added.counterSamples, 0u);
  expectStructurallyValidJson(os.str());
}

}  // namespace
}  // namespace obs
