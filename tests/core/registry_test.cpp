// Unit tests for core::Registry: duplicate registration, unknown-key error
// shape, alias resolution, registration-order independence and thread-safe
// concurrent lookup during registration.
#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/scenario.hpp"

namespace core {
namespace {

TEST(Registry, AddAndLookup) {
  Registry<int> r("thing");
  r.add("a", 1);
  r.add("b", 2);
  EXPECT_EQ(r.at("a"), 1);
  EXPECT_EQ(r.at("b"), 2);
  EXPECT_TRUE(r.contains("a"));
  EXPECT_FALSE(r.contains("c"));
  EXPECT_EQ(r.find("c"), nullptr);
  ASSERT_NE(r.find("b"), nullptr);
  EXPECT_EQ(*r.find("b"), 2);
}

TEST(Registry, DuplicateRegistrationThrows) {
  Registry<int> r("thing");
  r.add("a", 1);
  EXPECT_THROW(r.add("a", 2), std::invalid_argument);
  r.alias("alt", "a");
  EXPECT_THROW(r.add("alt", 3), std::invalid_argument);   // Alias taken.
  EXPECT_THROW(r.alias("a", "a"), std::invalid_argument); // Name taken.
  EXPECT_EQ(r.at("a"), 1);  // The original entry survives.
}

TEST(Registry, UnknownKeyErrorListsRegisteredNames) {
  Registry<int> r("routing scheme");
  r.add("b", 2);
  r.add("a", 1);
  try {
    (void)r.at("zzz");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "unknown routing scheme 'zzz' (registered: a, b)");
  }
  EXPECT_THROW((void)r.canonical("zzz"), std::invalid_argument);
}

TEST(Registry, AliasResolvesToCanonical) {
  Registry<int> r("thing");
  r.add("Random", 7);
  r.alias("random", "Random");
  EXPECT_EQ(r.at("random"), 7);
  EXPECT_EQ(r.canonical("random"), "Random");
  EXPECT_EQ(r.canonical("Random"), "Random");
  // names() lists canonical names only.
  EXPECT_EQ(*r.names(), std::vector<std::string>{"Random"});
  EXPECT_THROW(r.alias("x", "missing"), std::invalid_argument);
}

TEST(Registry, RegistrationOrderDoesNotMatter) {
  Registry<int> forward("thing");
  forward.add("a", 1);
  forward.add("b", 2);
  forward.add("c", 3);
  Registry<int> backward("thing");
  backward.add("c", 3);
  backward.add("b", 2);
  backward.add("a", 1);
  EXPECT_EQ(*forward.names(), *backward.names());
  const auto names = forward.names();
  for (const std::string& name : *names) {
    EXPECT_EQ(forward.at(name), backward.at(name));
  }
}

TEST(Registry, ConcurrentLookupDuringRegistrationIsSafe) {
  Registry<int> r("thing");
  r.add("seed", 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        EXPECT_EQ(r.at("seed"), 0);
        (void)r.find("nope");
        (void)r.names();
        ++lookups;
      }
    });
  }
  // Writer: keep registering fresh names while the readers hammer lookups.
  for (int i = 0; i < 500; ++i) {
    r.add("name" + std::to_string(i), i);
  }
  // Don't stop before the readers made progress (on a single-core box the
  // writer can finish before any reader is ever scheduled).
  while (lookups.load() == 0) std::this_thread::yield();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(lookups.load(), 0u);
  EXPECT_EQ(r.names()->size(), 501u);
  // Previously returned references stay valid after growth (map nodes are
  // stable) — spot-check an early entry.
  EXPECT_EQ(r.at("name0"), 0);
}

TEST(Registry, BuiltinRegistriesExposeTheExpectedNames) {
  // The self-registered built-ins: one canonical name per scheme of the
  // paper's evaluation, plus per-segment extensions.
  const std::vector<std::string> schemes = *schemeRegistry().names();
  for (const char* expected : {"Random", "adaptive", "colored", "d-mod-k",
                               "r-NCA-d", "r-NCA-u", "s-mod-k", "spray"}) {
    EXPECT_TRUE(schemeRegistry().contains(expected)) << expected;
  }
  EXPECT_EQ(schemeRegistry().canonical("random"), "Random");
  for (const char* expected : {"cg128", "wrf256", "wrf64", "ring", "alltoall",
                               "shift", "hotspot", "stencil", "uniform",
                               "permutations"}) {
    EXPECT_TRUE(patternRegistry().contains(expected)) << expected;
  }
  for (const char* expected : {"xgft2", "kary", "paper-full", "paper-slim"}) {
    EXPECT_TRUE(topologyRegistry().contains(expected)) << expected;
  }
}

}  // namespace
}  // namespace core
