// Tests for core::CompiledRoutes: the flat table agrees with the source
// router on every ordered pair, parallel compilation is thread-count
// independent, and the simulator's compiled fast path reproduces the
// virtual path's results exactly.
#include "core/compiled_routes.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.hpp"
#include "trace/harness.hpp"

namespace core {
namespace {

std::shared_ptr<const routing::Router> makeRouter(
    const std::shared_ptr<const xgft::Topology>& topo,
    const std::string& scheme, std::uint64_t seed = 1) {
  Scenario sc;
  sc.topo = topo->params();
  sc.routing = scheme;
  sc.seed = seed;
  sc.pattern = "ring:16";
  const patterns::PhasedPattern app = sc.makeWorkload();
  routing::RouterPtr built = sc.makeRouter(*topo, app);
  const routing::Router* raw = built.release();
  return std::shared_ptr<const routing::Router>(
      raw, [topo](const routing::Router* r) { delete r; });
}

TEST(CompiledRoutes, TableAgreesWithTheRouterOnEveryPair) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(4, 4, 3));
  for (const char* scheme : {"d-mod-k", "s-mod-k", "Random", "r-NCA-u"}) {
    const auto router = makeRouter(topo, scheme, 7);
    const auto table = CompiledRoutes::compile(router, 1);
    const xgft::Count n = topo->numHosts();
    for (xgft::NodeIndex s = 0; s < n; ++s) {
      for (xgft::NodeIndex d = 0; d < n; ++d) {
        EXPECT_EQ(table->route(s, d), router->route(s, d))
            << scheme << " (" << s << " -> " << d << ")";
      }
    }
  }
}

TEST(CompiledRoutes, SelfPairsAreEmpty) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(4, 4, 2));
  const auto table = CompiledRoutes::compile(makeRouter(topo, "d-mod-k"), 1);
  for (xgft::NodeIndex s = 0; s < topo->numHosts(); ++s) {
    EXPECT_TRUE(table->upPorts(s, s).empty());
  }
}

TEST(CompiledRoutes, ParallelCompileMatchesSerial) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(8, 8, 4));
  const auto router = makeRouter(topo, "Random", 3);
  const auto serial = CompiledRoutes::compile(router, 1);
  const auto parallel = CompiledRoutes::compile(router, 4);
  const xgft::Count n = topo->numHosts();
  for (xgft::NodeIndex s = 0; s < n; ++s) {
    for (xgft::NodeIndex d = 0; d < n; ++d) {
      ASSERT_EQ(serial->route(s, d), parallel->route(s, d));
    }
  }
}

TEST(CompiledRoutes, TableBytesMatchesLayout) {
  const xgft::Topology topo(xgft::xgft2(4, 4, 2));
  // 16 hosts, height 2: 256 pairs * (2 * 4 + 1) bytes.
  EXPECT_EQ(CompiledRoutes::tableBytes(topo), 256u * 9u);
}

TEST(CompiledRoutes, CompiledReplayMatchesVirtualReplayExactly) {
  // The whole point of the fast path: identical simulation results.  Replay
  // the same workload through Replayer with and without the table.
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(8, 8, 3));
  Scenario sc;
  sc.topo = topo->params();
  sc.pattern = "alltoall:32";
  sc.msgScale = 0.0625;
  for (const char* scheme : {"d-mod-k", "Random", "colored"}) {
    sc.routing = scheme;
    const patterns::PhasedPattern app = sc.makeWorkload();
    const routing::RouterPtr router = sc.makeRouter(*topo, app);
    const trace::RunResult virtualRun = trace::runApp(*topo, *router, app);

    std::shared_ptr<const routing::Router> shared(
        router.get(), [](const routing::Router*) {});
    const auto table = CompiledRoutes::compile(shared, 2);
    sim::Network net(*topo, sc.sim);
    const trace::Trace t = trace::traceFromPhases(app);
    const trace::Mapping mapping = trace::Mapping::sequential(app.numRanks);
    trace::Replayer replayer(net, t, mapping, *router, {}, table.get());
    const sim::TimeNs makespan = replayer.run();

    EXPECT_EQ(makespan, virtualRun.makespanNs) << scheme;
    EXPECT_EQ(net.stats().segmentsDelivered,
              virtualRun.stats.segmentsDelivered)
        << scheme;
    EXPECT_EQ(net.stats().eventsProcessed, virtualRun.stats.eventsProcessed)
        << scheme;
  }
}

TEST(CompiledRoutes, RejectsForeignTopologies) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(4, 4, 2));
  const xgft::Topology other(xgft::xgft2(4, 4, 3));
  const auto table = CompiledRoutes::compile(makeRouter(topo, "d-mod-k"), 1);

  Scenario sc;
  sc.topo = other.params();
  sc.pattern = "ring:16";
  const patterns::PhasedPattern app = sc.makeWorkload();
  const routing::RouterPtr router = sc.makeRouter(other, app);
  sim::Network net(other, sc.sim);
  const trace::Trace t = trace::traceFromPhases(app);
  const trace::Mapping mapping = trace::Mapping::sequential(app.numRanks);
  EXPECT_THROW(
      trace::Replayer(net, t, mapping, *router, {}, table.get()),
      std::invalid_argument);
}

}  // namespace
}  // namespace core
