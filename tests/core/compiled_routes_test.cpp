// Tests for core::CompiledRoutes: the flat table agrees with the source
// router on every ordered pair, parallel compilation is thread-count
// independent, the interval-compressed layout is pair-for-pair equivalent
// to the flat one for every registered table scheme, lazy chunks build
// exactly once, and the simulator's compiled fast path reproduces the
// virtual path's results exactly.
#include "core/compiled_routes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "trace/harness.hpp"
#include "xgft/params.hpp"

namespace core {
namespace {

std::shared_ptr<const routing::Router> makeRouter(
    const std::shared_ptr<const xgft::Topology>& topo,
    const std::string& scheme, std::uint64_t seed = 1) {
  Scenario sc;
  sc.topo = topo->params();
  sc.routing = scheme;
  sc.seed = seed;
  sc.pattern = "ring:16";
  const patterns::PhasedPattern app = sc.makeWorkload();
  routing::RouterPtr built = sc.makeRouter(*topo, app);
  const routing::Router* raw = built.release();
  return std::shared_ptr<const routing::Router>(
      raw, [topo](const routing::Router* r) { delete r; });
}

TEST(CompiledRoutes, TableAgreesWithTheRouterOnEveryPair) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(4, 4, 3));
  for (const char* scheme : {"d-mod-k", "s-mod-k", "Random", "r-NCA-u"}) {
    const auto router = makeRouter(topo, scheme, 7);
    const auto table = CompiledRoutes::compile(router, 1);
    const xgft::Count n = topo->numHosts();
    for (xgft::NodeIndex s = 0; s < n; ++s) {
      for (xgft::NodeIndex d = 0; d < n; ++d) {
        EXPECT_EQ(table->route(s, d), router->route(s, d))
            << scheme << " (" << s << " -> " << d << ")";
      }
    }
  }
}

TEST(CompiledRoutes, SelfPairsAreEmpty) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(4, 4, 2));
  const auto table = CompiledRoutes::compile(makeRouter(topo, "d-mod-k"), 1);
  for (xgft::NodeIndex s = 0; s < topo->numHosts(); ++s) {
    EXPECT_TRUE(table->upPorts(s, s).empty());
  }
}

TEST(CompiledRoutes, ParallelCompileMatchesSerial) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(8, 8, 4));
  const auto router = makeRouter(topo, "Random", 3);
  const auto serial = CompiledRoutes::compile(router, 1);
  const auto parallel = CompiledRoutes::compile(router, 4);
  const xgft::Count n = topo->numHosts();
  for (xgft::NodeIndex s = 0; s < n; ++s) {
    for (xgft::NodeIndex d = 0; d < n; ++d) {
      ASSERT_EQ(serial->route(s, d), parallel->route(s, d));
    }
  }
}

TEST(CompiledRoutes, TableBytesMatchesLayout) {
  const xgft::Topology topo(xgft::xgft2(4, 4, 2));
  // 16 hosts, height 2: 256 pairs * (2 * 4 + 1) bytes.
  EXPECT_EQ(CompiledRoutes::tableBytes(topo), 256u * 9u);
}

TEST(CompiledRoutes, CompiledReplayMatchesVirtualReplayExactly) {
  // The whole point of the fast path: identical simulation results.  Replay
  // the same workload through Replayer with and without the table.
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(8, 8, 3));
  Scenario sc;
  sc.topo = topo->params();
  sc.pattern = "alltoall:32";
  sc.msgScale = 0.0625;
  for (const char* scheme : {"d-mod-k", "Random", "colored"}) {
    sc.routing = scheme;
    const patterns::PhasedPattern app = sc.makeWorkload();
    const routing::RouterPtr router = sc.makeRouter(*topo, app);
    const trace::RunResult virtualRun = trace::runApp(*topo, *router, app);

    std::shared_ptr<const routing::Router> shared(
        router.get(), [](const routing::Router*) {});
    const auto table = CompiledRoutes::compile(shared, 2);
    sim::Network net(*topo, sc.sim);
    const trace::Trace t = trace::traceFromPhases(app);
    const trace::Mapping mapping = trace::Mapping::sequential(app.numRanks);
    trace::Replayer replayer(net, t, mapping, *router, {}, table.get());
    const sim::TimeNs makespan = replayer.run();

    EXPECT_EQ(makespan, virtualRun.makespanNs) << scheme;
    EXPECT_EQ(net.stats().segmentsDelivered,
              virtualRun.stats.segmentsDelivered)
        << scheme;
    EXPECT_EQ(net.stats().eventsProcessed, virtualRun.stats.eventsProcessed)
        << scheme;
  }
}

/// Every registered table-mode scheme name (adaptive/spray have no tables).
std::vector<std::string> tableSchemes() {
  std::vector<std::string> out;
  for (const std::string& name : *schemeRegistry().names()) {
    if (schemeRegistry().at(name).mode == RouteMode::kTable) {
      out.push_back(name);
    }
  }
  return out;
}

void expectSamePorts(const CompiledRoutes& a, const CompiledRoutes& b,
                     const std::string& label) {
  const xgft::Count n = a.numHosts();
  ASSERT_EQ(b.numHosts(), n) << label;
  for (xgft::NodeIndex s = 0; s < n; ++s) {
    for (xgft::NodeIndex d = 0; d < n; ++d) {
      const std::span<const std::uint32_t> lhs = a.upPorts(s, d);
      const std::span<const std::uint32_t> rhs = b.upPorts(s, d);
      ASSERT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end()))
          << label << " (" << s << " -> " << d << ")";
      ASSERT_EQ(a.unroutable(s, d), b.unroutable(s, d))
          << label << " (" << s << " -> " << d << ")";
    }
  }
}

TEST(CompiledRoutesCompressed, MatchesFlatForEverySchemeAndTier) {
  // The hard contract of the compressed layout: pair-for-pair identical
  // lookups for every registered table scheme, on the paper's slimmed tree,
  // a mid-size two-level tree and a small three-level (scale-out tier)
  // tree.
  const std::vector<xgft::Params> tiers = {
      xgft::xgft2(16, 16, 10),             // paper-slim
      xgft::xgft2(8, 8, 4),
      xgft::Params({4, 4, 4}, {2, 2, 2}),  // xgft3:4:4:4:2:2:2
  };
  for (const xgft::Params& params : tiers) {
    const auto topo = std::make_shared<const xgft::Topology>(params);
    for (const std::string& scheme : tableSchemes()) {
      const auto router = makeRouter(topo, scheme, 5);
      const auto flat =
          CompiledRoutes::compile(router, 1, TableLayout::kFlat);
      const auto packed =
          CompiledRoutes::compile(router, 2, TableLayout::kCompressed);
      ASSERT_FALSE(flat->compressed());
      ASSERT_TRUE(packed->compressed());
      expectSamePorts(*flat, *packed,
                      scheme + " on " + topo->params().toString());
    }
  }
}

TEST(CompiledRoutesCompressed, ChunksBuildLazilyAndExactlyOnce) {
  // 256 hosts = 4 chunks of 64 guide columns.  Nothing builds up front;
  // the first and the last pair build their own chunks only, a re-touch
  // builds nothing, and compileAll() finishes the rest.
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(16, 16, 10));
  const auto router = makeRouter(topo, "d-mod-k");
  const auto table =
      CompiledRoutes::compile(router, 1, TableLayout::kCompressed);
  ASSERT_TRUE(table->compressed());
  ASSERT_EQ(table->numChunks(), 4u);
  EXPECT_EQ(table->builtChunks(), 0u);

  (void)table->upPorts(0, 0);  // Diagonal lookups build their chunk too.
  EXPECT_EQ(table->builtChunks(), 1u);
  const xgft::NodeIndex last = topo->numHosts() - 1;
  (void)table->upPorts(last, last);
  EXPECT_EQ(table->builtChunks(), 2u);

  EXPECT_EQ(table->route(0, last), router->route(0, last));
  const std::uint64_t bytesBefore = table->forwardingBytes();
  const std::size_t chunksBefore = table->builtChunks();
  (void)table->upPorts(0, last);  // Re-touch: both endpoint chunks exist.
  EXPECT_EQ(table->builtChunks(), chunksBefore);
  EXPECT_EQ(table->forwardingBytes(), bytesBefore);

  table->compileAll(2);
  EXPECT_EQ(table->builtChunks(), table->numChunks());
  EXPECT_GT(table->forwardingBytes(), bytesBefore);
  const auto flat = CompiledRoutes::compile(router, 1, TableLayout::kFlat);
  expectSamePorts(*flat, *table, "d-mod-k after compileAll");
}

TEST(CompiledRoutesCompressed, CompileAllIsThreadCountIndependent) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(8, 8, 4));
  const auto router = makeRouter(topo, "Random", 3);
  const auto serial =
      CompiledRoutes::compile(router, 1, TableLayout::kCompressed);
  const auto threaded =
      CompiledRoutes::compile(router, 1, TableLayout::kCompressed);
  serial->compileAll(1);
  threaded->compileAll(4);
  EXPECT_EQ(serial->forwardingBytes(), threaded->forwardingBytes());
  expectSamePorts(*serial, *threaded, "Random compileAll 1 vs 4");
}

TEST(CompiledRoutesCompressed, ShareRepPreservesRoutesWithinLeafGroups) {
  // shareRep(s, d) must name a source in s's leaf group whose up-port
  // vector to d is bit-identical — that is what lets resolvers share one
  // interned route set across the whole interval.
  const auto topo = std::make_shared<const xgft::Topology>(
      xgft::Params({4, 4, 4}, {2, 2, 2}));
  const std::uint32_t m1 = topo->params().m(1);
  for (const char* scheme : {"d-mod-k", "s-mod-k", "r-NCA-u"}) {
    const auto table = CompiledRoutes::compile(makeRouter(topo, scheme, 9), 1,
                                               TableLayout::kCompressed);
    const xgft::Count n = topo->numHosts();
    for (xgft::NodeIndex s = 0; s < n; ++s) {
      for (xgft::NodeIndex d = 0; d < n; ++d) {
        const xgft::NodeIndex rep = table->shareRep(s, d);
        ASSERT_LE(rep, s);
        ASSERT_GE(rep, s - (s % m1)) << "rep left s's leaf group";
        const auto a = table->upPorts(rep, d);
        const auto b = table->upPorts(s, d);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
            << scheme << " (" << s << " -> " << d << " rep " << rep << ")";
      }
    }
  }
}

TEST(CompiledRoutesCompressed, EstimateSeparatesCompressibleSchemes) {
  // The engine's gate: label-arithmetic schemes estimate far below the
  // per-pair-random ones, which stay on the virtual fallback.
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(16, 16, 8));
  const std::uint64_t dmodk =
      CompiledRoutes::estimateCompressedBytes(*makeRouter(topo, "d-mod-k"));
  const std::uint64_t random =
      CompiledRoutes::estimateCompressedBytes(*makeRouter(topo, "Random", 3));
  EXPECT_LT(dmodk * 8, random);
}

TEST(CompiledRoutes, AutoLayoutKeepsSmallTopologiesFlat) {
  // Paper-scale trees stay on the exact historical layout under kAuto.
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(16, 16, 10));
  const auto table = CompiledRoutes::compile(makeRouter(topo, "d-mod-k"), 1);
  EXPECT_FALSE(table->compressed());
  EXPECT_EQ(table->forwardingBytes(),
            CompiledRoutes::tableBytes(*topo));
}

TEST(CompiledRoutes, RejectsForeignTopologies) {
  const auto topo =
      std::make_shared<const xgft::Topology>(xgft::xgft2(4, 4, 2));
  const xgft::Topology other(xgft::xgft2(4, 4, 3));
  const auto table = CompiledRoutes::compile(makeRouter(topo, "d-mod-k"), 1);

  Scenario sc;
  sc.topo = other.params();
  sc.pattern = "ring:16";
  const patterns::PhasedPattern app = sc.makeWorkload();
  const routing::RouterPtr router = sc.makeRouter(other, app);
  sim::Network net(other, sc.sim);
  const trace::Trace t = trace::traceFromPhases(app);
  const trace::Mapping mapping = trace::Mapping::sequential(app.numRanks);
  EXPECT_THROW(
      trace::Replayer(net, t, mapping, *router, {}, table.get()),
      std::invalid_argument);
}

}  // namespace
}  // namespace core
