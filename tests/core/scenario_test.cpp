// Tests for core::Scenario: registry-driven workload/router construction,
// scheme traits, the uniform unknown-name error, and topology-preset
// resolution.
#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "xgft/topology.hpp"

namespace core {
namespace {

TEST(Scenario, MakeWorkloadBuildsTheBuiltins) {
  Scenario sc;
  sc.pattern = "cg128";
  EXPECT_EQ(sc.makeWorkload().numRanks, 128u);
  EXPECT_EQ(sc.makeWorkload().phases.size(), 5u);
  sc.pattern = "wrf256";
  EXPECT_EQ(sc.makeWorkload().numRanks, 256u);
  sc.pattern = "ring:48";
  EXPECT_EQ(sc.makeWorkload().numRanks, 48u);
  sc.pattern = "stencil:4:8";
  EXPECT_EQ(sc.makeWorkload().numRanks, 32u);
  sc.pattern = "shift:8";
  EXPECT_EQ(sc.makeWorkload().phases.size(), 7u);
}

TEST(Scenario, WorkloadNameIsTheFullSpec) {
  Scenario sc;
  sc.pattern = "ring:48";
  EXPECT_EQ(sc.makeWorkload().name, "ring:48");
  sc.msgScale = 0.5;
  EXPECT_EQ(sc.makeWorkload().name, "ring:48");
}

TEST(Scenario, MakeWorkloadScalesMessages) {
  Scenario sc;
  sc.pattern = "cg128";
  sc.msgScale = 0.5;
  const patterns::PhasedPattern app = sc.makeWorkload();
  EXPECT_EQ(app.phases.at(0).flows().at(0).bytes,
            patterns::kCgMessageBytes / 2);
}

TEST(Scenario, SeededPatternsFollowTheJobSeed) {
  Scenario a;
  a.pattern = "uniform:64:2";
  Scenario b = a;
  b.seed = 2;
  EXPECT_EQ(a.makeWorkload().flattened().flows(),
            a.makeWorkload().flattened().flows());
  EXPECT_NE(a.makeWorkload().flattened().flows(),
            b.makeWorkload().flattened().flows());
  EXPECT_TRUE(a.patternSeeded());
  Scenario cg;
  EXPECT_FALSE(cg.patternSeeded());
}

TEST(Scenario, RejectsUnknownAndMalformedPatterns) {
  Scenario sc;
  sc.pattern = "nonsense";
  EXPECT_THROW(sc.makeWorkload(), std::invalid_argument);
  sc.pattern = "ring";  // Missing argument.
  EXPECT_THROW(sc.makeWorkload(), std::invalid_argument);
  sc.pattern = "ring:8:9";  // Too many arguments.
  EXPECT_THROW(sc.makeWorkload(), std::invalid_argument);
  sc.pattern = "ring:x";  // Non-integer argument.
  EXPECT_THROW(sc.makeWorkload(), std::invalid_argument);
}

TEST(Scenario, SchemeTraitsComeFromTheRegistry) {
  Scenario sc;
  sc.routing = "d-mod-k";
  EXPECT_EQ(sc.schemeInfo().mode, RouteMode::kTable);
  EXPECT_FALSE(sc.schemeInfo().seeded);
  sc.routing = "Random";
  EXPECT_TRUE(sc.schemeInfo().seeded);
  sc.routing = "colored";
  EXPECT_TRUE(sc.schemeInfo().patternAware);
  sc.routing = "adaptive";
  EXPECT_EQ(sc.schemeInfo().mode, RouteMode::kAdaptive);
  sc.routing = "spray";
  EXPECT_EQ(sc.schemeInfo().mode, RouteMode::kSpray);
}

TEST(Scenario, MakeRouterBuildsEveryTableScheme) {
  Scenario sc;
  sc.topo = xgft::xgft2(4, 4, 2);
  sc.pattern = "ring:16";
  const xgft::Topology topo(sc.topo);
  const patterns::PhasedPattern app = sc.makeWorkload();
  const auto names = schemeRegistry().names();
  for (const std::string& name : *names) {
    sc.routing = name;
    const routing::RouterPtr router = sc.makeRouter(topo, app);
    ASSERT_NE(router, nullptr) << name;
    // Per-segment schemes get the d-mod-k placeholder.
    if (sc.schemeInfo().mode != RouteMode::kTable) {
      EXPECT_EQ(router->name(), "d-mod-k") << name;
    }
    // Whatever was built routes the first pair legally.
    (void)router->route(0, 1);
  }
}

TEST(Scenario, UnknownSchemeSurfacesTheUniformRegistryError) {
  Scenario sc;
  sc.routing = "magic";
  try {
    (void)sc.schemeInfo();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown routing scheme 'magic'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("d-mod-k"), std::string::npos) << what;
  }
}

TEST(Scenario, TopoPresetsAndPaperNotationResolve) {
  EXPECT_EQ(makeTopoParams("paper-full"), xgft::xgft2(16, 16, 16));
  EXPECT_EQ(makeTopoParams("paper-slim"), xgft::xgft2(16, 16, 10));
  EXPECT_EQ(makeTopoParams("xgft2:16:16:10"), xgft::xgft2(16, 16, 10));
  EXPECT_EQ(makeTopoParams("kary:16:2"), xgft::karyNTree(16, 2));
  EXPECT_EQ(makeTopoParams("XGFT(2; 16,16; 1,10)"), xgft::xgft2(16, 16, 10));
  EXPECT_THROW(makeTopoParams("xgft2:16"), std::invalid_argument);
  EXPECT_THROW(makeTopoParams("nope"), std::invalid_argument);
}

TEST(Scenario, DeriveSeedIsStableAndRoleSeparated) {
  // Pinned values shared with engine::deriveSeed (campaign outputs must
  // replay identically across platforms and releases).
  EXPECT_EQ(deriveSeed(1, "pattern"), 13362491538261306851ULL);
  EXPECT_EQ(deriveSeed(1, "spray"), 18430719551283032133ULL);
  EXPECT_NE(deriveSeed(1, "pattern"), deriveSeed(2, "pattern"));
}

}  // namespace
}  // namespace core
