// Tests for the open-loop traffic sources: determinism, time ordering,
// offered-load calibration, destination distributions and the stop
// horizon.
#include "patterns/source.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace patterns {
namespace {

OpenLoopConfig baseConfig() {
  OpenLoopConfig cfg;
  cfg.numRanks = 16;
  cfg.load = 0.5;
  cfg.hostBytesPerNs = 0.25;  // 2 Gbit/s.
  cfg.messageBytes = 1024;
  cfg.stopNs = 2'000'000;
  cfg.seed = 7;
  return cfg;
}

std::vector<SourceMessage> drain(OpenLoopSource& src) {
  std::vector<SourceMessage> out;
  SourceMessage m;
  while (src.pull(0, m) == Pull::kMessage) out.push_back(m);
  return out;
}

TEST(OpenLoopSource, ValidatesConfig) {
  OpenLoopConfig cfg = baseConfig();
  cfg.numRanks = 1;
  EXPECT_THROW(OpenLoopSource{cfg}, std::invalid_argument);
  cfg = baseConfig();
  cfg.load = 0.0;
  EXPECT_THROW(OpenLoopSource{cfg}, std::invalid_argument);
  cfg = baseConfig();
  cfg.stopNs = cfg.startNs;
  EXPECT_THROW(OpenLoopSource{cfg}, std::invalid_argument);
  cfg = baseConfig();
  cfg.messageBytes = 0;
  EXPECT_THROW(OpenLoopSource{cfg}, std::invalid_argument);
  cfg = baseConfig();
  cfg.dest = DestDistribution::kHotspot;
  cfg.hotFraction = 1.5;
  EXPECT_THROW(OpenLoopSource{cfg}, std::invalid_argument);
}

TEST(OpenLoopSource, StreamIsDeterministicAndTimeOrdered) {
  OpenLoopSource a(baseConfig());
  OpenLoopSource b(baseConfig());
  const std::vector<SourceMessage> sa = drain(a);
  const std::vector<SourceMessage> sb = drain(b);
  ASSERT_FALSE(sa.empty());
  ASSERT_EQ(sa.size(), sb.size());
  sim::TimeNs last = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].src, sb[i].src);
    EXPECT_EQ(sa[i].dst, sb[i].dst);
    EXPECT_EQ(sa[i].time, sb[i].time);
    EXPECT_EQ(sa[i].token, i);  // Tokens are dense in emission order.
    EXPECT_GE(sa[i].time, last);
    last = sa[i].time;
    EXPECT_NE(sa[i].src, sa[i].dst);  // Never a self-message.
    EXPECT_LT(sa[i].time, baseConfig().stopNs);
  }
}

TEST(OpenLoopSource, SeedsChangeTheStream) {
  OpenLoopConfig cfg = baseConfig();
  OpenLoopSource a(cfg);
  cfg.seed = 8;
  OpenLoopSource b(cfg);
  const std::vector<SourceMessage> sa = drain(a);
  const std::vector<SourceMessage> sb = drain(b);
  bool different = sa.size() != sb.size();
  for (std::size_t i = 0; !different && i < sa.size(); ++i) {
    different = sa[i].time != sb[i].time || sa[i].dst != sb[i].dst;
  }
  EXPECT_TRUE(different);
}

TEST(OpenLoopSource, PoissonOfferedLoadIsCalibrated) {
  // Offered bytes over the horizon must track load * rate * ranks * time
  // closely (law of large numbers; ~16k arrivals here).
  OpenLoopConfig cfg = baseConfig();
  cfg.stopNs = 8'000'000;
  OpenLoopSource src(cfg);
  const std::vector<SourceMessage> all = drain(src);
  const double offered = static_cast<double>(all.size()) *
                         static_cast<double>(cfg.messageBytes);
  const double expected = cfg.load * cfg.hostBytesPerNs *
                          static_cast<double>(cfg.numRanks) *
                          static_cast<double>(cfg.stopNs - cfg.startNs);
  EXPECT_NEAR(offered / expected, 1.0, 0.05);
}

TEST(OpenLoopSource, BurstyMatchesMeanLoadWithBurstyGaps) {
  OpenLoopConfig cfg = baseConfig();
  cfg.arrivals = ArrivalProcess::kBursty;
  cfg.burstLength = 8;
  cfg.stopNs = 8'000'000;
  OpenLoopSource src(cfg);
  const std::vector<SourceMessage> all = drain(src);
  const double offered = static_cast<double>(all.size()) *
                         static_cast<double>(cfg.messageBytes);
  const double expected = cfg.load * cfg.hostBytesPerNs *
                          static_cast<double>(cfg.numRanks) *
                          static_cast<double>(cfg.stopNs - cfg.startNs);
  EXPECT_NEAR(offered / expected, 1.0, 0.08);

  // Per-rank gap histogram is bimodal: line-rate gaps inside bursts
  // dominate by count.
  std::map<Rank, std::vector<sim::TimeNs>> perRank;
  for (const SourceMessage& m : all) perRank[m.src].push_back(m.time);
  const auto peakGap = static_cast<sim::TimeNs>(
      static_cast<double>(cfg.messageBytes) / cfg.hostBytesPerNs + 0.5);
  std::uint64_t atPeak = 0;
  std::uint64_t total = 0;
  for (auto& [r, times] : perRank) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      atPeak += (times[i] - times[i - 1]) == peakGap;
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(atPeak) / static_cast<double>(total), 0.5);
}

TEST(OpenLoopSource, UniformCoversAllDestinations) {
  OpenLoopConfig cfg = baseConfig();
  cfg.numRanks = 8;
  cfg.stopNs = 8'000'000;
  OpenLoopSource src(cfg);
  std::set<std::pair<Rank, Rank>> pairs;
  for (const SourceMessage& m : drain(src)) pairs.emplace(m.src, m.dst);
  // Every ordered non-self pair appears among ~16k draws.
  EXPECT_EQ(pairs.size(), 8u * 7u);
}

TEST(OpenLoopSource, HotspotBiasesTowardRankZero) {
  OpenLoopConfig cfg = baseConfig();
  cfg.dest = DestDistribution::kHotspot;
  cfg.hotFraction = 0.5;
  cfg.stopNs = 8'000'000;
  OpenLoopSource src(cfg);
  std::uint64_t toHot = 0;
  std::uint64_t fromOthers = 0;
  for (const SourceMessage& m : drain(src)) {
    if (m.src == 0) continue;
    ++fromOthers;
    toHot += m.dst == 0;
  }
  ASSERT_GT(fromOthers, 1000u);
  // 50% aimed at the hotspot plus the uniform remainder's 1/15 share.
  const double expected = 0.5 + 0.5 / 15.0;
  EXPECT_NEAR(static_cast<double>(toHot) / static_cast<double>(fromOthers),
              expected, 0.05);
}

TEST(OpenLoopSource, PermutationIsFixedAndFixedPointFree) {
  OpenLoopConfig cfg = baseConfig();
  cfg.dest = DestDistribution::kPermutation;
  OpenLoopSource src(cfg);
  std::map<Rank, Rank> target;
  for (const SourceMessage& m : drain(src)) {
    EXPECT_NE(m.src, m.dst);
    const auto [it, inserted] = target.emplace(m.src, m.dst);
    if (!inserted) {
      EXPECT_EQ(it->second, m.dst);  // One target per rank.
    }
  }
  // Injective: a permutation, not just a function.
  std::set<Rank> images;
  for (const auto& [src_, dst] : target) images.insert(dst);
  EXPECT_EQ(images.size(), target.size());
}

}  // namespace
}  // namespace patterns
