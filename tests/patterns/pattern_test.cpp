// Unit tests for patterns::Pattern and PhasedPattern.
#include "patterns/pattern.hpp"

#include <gtest/gtest.h>

namespace patterns {
namespace {

TEST(Pattern, AddValidatesRanks) {
  Pattern p(4);
  p.add(0, 3, 100);
  EXPECT_THROW(p.add(4, 0, 1), std::out_of_range);
  EXPECT_THROW(p.add(0, 4, 1), std::out_of_range);
  EXPECT_EQ(p.size(), 1u);
}

TEST(Pattern, TotalBytesSumsAllFlows) {
  Pattern p(4);
  p.add(0, 1, 100);
  p.add(1, 2, 200);
  p.add(2, 2, 50);  // Self-flow still counts bytes.
  EXPECT_EQ(p.totalBytes(), 350u);
}

TEST(Pattern, FanOutCountsDistinctDestinations) {
  Pattern p(8);
  p.add(0, 1, 1);
  p.add(0, 1, 1);  // Duplicate destination.
  p.add(0, 2, 1);
  p.add(0, 0, 1);  // Self-flow ignored.
  EXPECT_EQ(p.fanOut(0), 2u);
  EXPECT_EQ(p.fanOut(1), 0u);
  EXPECT_EQ(p.fanIn(1), 1u);
  EXPECT_EQ(p.fanIn(2), 1u);
  EXPECT_EQ(p.fanIn(0), 0u);
}

TEST(Pattern, BytesOutAndInExcludeSelfFlows) {
  Pattern p(3);
  p.add(0, 1, 10);
  p.add(0, 2, 20);
  p.add(1, 1, 99);
  const auto out = p.bytesOut();
  const auto in = p.bytesIn();
  EXPECT_EQ(out[0], 30u);
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(in[1], 10u);
  EXPECT_EQ(in[2], 20u);
}

TEST(Pattern, PermutationDetection) {
  Pattern perm(4);
  perm.add(0, 1, 1);
  perm.add(1, 0, 1);
  perm.add(2, 3, 1);
  EXPECT_TRUE(perm.isPermutation());

  Pattern multiDest(4);
  multiDest.add(0, 1, 1);
  multiDest.add(0, 2, 1);
  EXPECT_FALSE(multiDest.isPermutation());

  Pattern multiSrc(4);
  multiSrc.add(0, 2, 1);
  multiSrc.add(1, 2, 1);
  EXPECT_FALSE(multiSrc.isPermutation());

  // Duplicate flows to the same destination stay a permutation.
  Pattern dup(4);
  dup.add(0, 1, 1);
  dup.add(0, 1, 1);
  EXPECT_TRUE(dup.isPermutation());
}

TEST(Pattern, SymmetryDetection) {
  Pattern sym(4);
  sym.add(0, 1, 5);
  sym.add(1, 0, 7);  // Byte counts may differ; connections must mirror.
  EXPECT_TRUE(sym.isSymmetric());
  sym.add(2, 3, 1);
  EXPECT_FALSE(sym.isSymmetric());
}

TEST(Pattern, InverseSwapsEndpoints) {
  Pattern p(4);
  p.add(0, 1, 10);
  p.add(2, 3, 20);
  const Pattern inv = p.inverse();
  ASSERT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv.flows()[0], (Flow{1, 0, 10}));
  EXPECT_EQ(inv.flows()[1], (Flow{3, 2, 20}));
  // Involution.
  EXPECT_EQ(inv.inverse().flows()[0], p.flows()[0]);
}

TEST(Pattern, UnionConcatenatesAndValidates) {
  Pattern a(4);
  a.add(0, 1, 1);
  Pattern b(4);
  b.add(1, 2, 2);
  const Pattern u = a.unionWith(b);
  EXPECT_EQ(u.size(), 2u);
  Pattern wrong(5);
  EXPECT_THROW(a.unionWith(wrong), std::invalid_argument);
}

TEST(Pattern, ConnectivityMatrixAccumulates) {
  Pattern p(3);
  p.add(0, 2, 10);
  p.add(0, 2, 5);
  const auto m = p.connectivityMatrix();
  EXPECT_EQ(m[0][2], 15u);
  EXPECT_EQ(m[2][0], 0u);
}

TEST(Pattern, MatrixArtShape) {
  Pattern p(3);
  p.add(0, 1, 1);
  EXPECT_EQ(p.matrixArt(), ".#.\n...\n...\n");
}

TEST(PhasedPattern, FlattenedUnionsAllPhases) {
  PhasedPattern app;
  app.numRanks = 4;
  Pattern p1(4);
  p1.add(0, 1, 1);
  Pattern p2(4);
  p2.add(1, 2, 1);
  app.phases = {p1, p2};
  EXPECT_EQ(app.flattened().size(), 2u);
}

}  // namespace
}  // namespace patterns
