// Unit tests for the synthetic traffic generators.
#include "patterns/synthetic.hpp"

#include <gtest/gtest.h>

namespace patterns {
namespace {

TEST(Synthetic, UniformRandomFlowCountsAndDeterminism) {
  const Pattern a = uniformRandom(64, 3, 100, 42);
  EXPECT_EQ(a.size(), 64u * 3);
  const Pattern b = uniformRandom(64, 3, 100, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flows()[i], b.flows()[i]);
  }
  const Pattern c = uniformRandom(64, 3, 100, 43);
  bool anyDifferent = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    anyDifferent |= !(a.flows()[i] == c.flows()[i]);
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Synthetic, UnionOfRandomPermutationsDecomposition) {
  // Sec. VII-C: a general pattern as a union of k permutations — every rank
  // has fan-out and fan-in at most k.
  const Pattern p = unionOfRandomPermutations(32, 4, 10, 5);
  for (Rank r = 0; r < 32; ++r) {
    EXPECT_LE(p.fanOut(r), 4u);
    EXPECT_LE(p.fanIn(r), 4u);
  }
}

TEST(Synthetic, AllToAllIsComplete) {
  const Pattern p = allToAll(8, 10);
  EXPECT_EQ(p.size(), 8u * 7);
  EXPECT_EQ(p.fanOut(3), 7u);
  EXPECT_EQ(p.fanIn(3), 7u);
  EXPECT_TRUE(p.isSymmetric());
}

TEST(Synthetic, HotspotConcentratesOnOneRank) {
  const Pattern p = hotspot(16, 5, 10);
  EXPECT_EQ(p.size(), 15u);
  EXPECT_EQ(p.fanIn(5), 15u);
  EXPECT_EQ(p.fanOut(5), 0u);
  EXPECT_THROW(hotspot(16, 16, 1), std::out_of_range);
}

TEST(Synthetic, RingExchangeDegrees) {
  const Pattern p = ringExchange(10, 7);
  EXPECT_EQ(p.size(), 20u);
  for (Rank r = 0; r < 10; ++r) {
    EXPECT_EQ(p.fanOut(r), 2u);
    EXPECT_EQ(p.fanIn(r), 2u);
  }
  EXPECT_TRUE(p.isSymmetric());
  EXPECT_THROW(ringExchange(1, 1), std::invalid_argument);
}

TEST(Synthetic, Stencil2DBoundaries) {
  const Pattern p = stencil2D(3, 4, 10);
  // Interior rank (1,1) = 5 has 4 neighbours; corner 0 has 2.
  EXPECT_EQ(p.fanOut(5), 4u);
  EXPECT_EQ(p.fanOut(0), 2u);
  EXPECT_TRUE(p.isSymmetric());
}

TEST(Synthetic, ShiftAllToAllPhaseStructure) {
  const PhasedPattern app = shiftAllToAll(8, 100);
  EXPECT_EQ(app.phases.size(), 7u);
  for (const Pattern& p : app.phases) {
    EXPECT_TRUE(p.isPermutation());
    EXPECT_EQ(p.size(), 8u);
  }
  // Together the phases form the complete exchange.
  EXPECT_EQ(app.flattened().size(), 8u * 7);
}

}  // namespace
}  // namespace patterns
