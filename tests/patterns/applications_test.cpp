// Tests for the WRF-256 and CG.D-128 workload generators against every
// property the paper states about them (Sec. VI-A, VII-A, Fig. 3, Eq. (2)).
#include "patterns/applications.hpp"

#include <gtest/gtest.h>

#include <set>

#include "patterns/permutation.hpp"

namespace patterns {
namespace {

// ---------------------------------------------------------------- WRF-256.

TEST(Wrf, SinglePhaseWith480Flows) {
  const PhasedPattern wrf = wrf256();
  EXPECT_EQ(wrf.numRanks, 256u);
  ASSERT_EQ(wrf.phases.size(), 1u);
  // 256 tasks send to i+16 and i-16, truncated: 2*256 - 2*16 = 480 flows.
  EXPECT_EQ(wrf.phases[0].size(), 480u);
}

TEST(Wrf, EveryTaskExchangesWithMeshNeighbours) {
  const PhasedPattern wrf = wrf256();
  const Pattern& p = wrf.phases[0];
  std::set<std::pair<Rank, Rank>> conns;
  for (const Flow& f : p.flows()) conns.insert({f.src, f.dst});
  for (Rank i = 0; i < 256; ++i) {
    EXPECT_EQ(conns.count({i, i + 16}), i + 16 < 256 ? 1u : 0u);
    EXPECT_EQ(conns.count({i, i - 16}), i >= 16 ? 1u : 0u);
  }
}

TEST(Wrf, PatternIsSymmetric) {
  // Sec. VII-A: "the communication pattern is symmetric", which is why
  // S-mod-k and D-mod-k perform identically on it.
  EXPECT_TRUE(wrf256().phases[0].isSymmetric());
}

TEST(Wrf, InteriorTasksHaveFanoutTwo) {
  const PhasedPattern wrf = wrf256();
  const Pattern& p = wrf.phases[0];
  EXPECT_EQ(p.fanOut(128), 2u);  // Interior row.
  EXPECT_EQ(p.fanOut(0), 1u);    // First row.
  EXPECT_EQ(p.fanOut(255), 1u);  // Last row.
  EXPECT_EQ(p.fanIn(128), 2u);
}

TEST(Wrf, AllTrafficLeavesTheSwitchUnderSequentialMapping) {
  // With 16 hosts per switch, every +/-16 partner is in an adjacent
  // switch — WRF is all-remote, the opposite extreme from CG.
  const PhasedPattern wrf = wrf256();
  const Pattern& p = wrf.phases[0];
  for (const Flow& f : p.flows()) {
    EXPECT_NE(f.src / 16, f.dst / 16);
  }
}

TEST(Wrf, GeneralizedMeshShapes) {
  const PhasedPattern w = wrfHalo(4, 8, 1000);
  EXPECT_EQ(w.numRanks, 32u);
  EXPECT_EQ(w.phases[0].size(), 2u * 32 - 2u * 8);
  EXPECT_THROW(wrfHalo(0, 8, 1), std::invalid_argument);
}

TEST(Wrf, MessageBytesApplied) {
  const PhasedPattern w = wrf256(12345);
  for (const Flow& f : w.phases[0].flows()) EXPECT_EQ(f.bytes, 12345u);
}

// --------------------------------------------------------------- CG.D-128.

TEST(Cg, FivePhasesOfEqualSize) {
  const PhasedPattern cg = cgD128();
  EXPECT_EQ(cg.numRanks, 128u);
  ASSERT_EQ(cg.phases.size(), 5u);  // Four local + Eq. (2).
  for (const Pattern& p : cg.phases) {
    EXPECT_EQ(p.size(), 128u);
    for (const Flow& f : p.flows()) EXPECT_EQ(f.bytes, kCgMessageBytes);
  }
}

TEST(Cg, FirstFourPhasesAreSwitchLocal) {
  // Sec. VII-A: "four of which are local to the first-level switch".
  const PhasedPattern cg = cgD128();
  for (std::size_t phase = 0; phase < 4; ++phase) {
    for (const Flow& f : cg.phases[phase].flows()) {
      EXPECT_EQ(f.src / 16, f.dst / 16) << "phase " << phase;
    }
  }
}

TEST(Cg, LocalPhasesArePermutationsWithoutSelfFlows) {
  const PhasedPattern cg = cgD128();
  for (std::size_t phase = 0; phase < 4; ++phase) {
    EXPECT_TRUE(cg.phases[phase].isPermutation());
    EXPECT_TRUE(cg.phases[phase].isSymmetric());
    for (const Flow& f : cg.phases[phase].flows()) {
      EXPECT_NE(f.src, f.dst);
    }
  }
}

TEST(Cg, Phase5MatchesEquation2WithinFirstBlock) {
  // Eq. (2): d = floor(s/2)*16 + (s mod 2) for sources in switch 0.
  for (Rank s = 0; s < 16; ++s) {
    EXPECT_EQ(cgPhase5Destination(s, 128, 16), (s / 2) * 16 + (s % 2));
  }
}

TEST(Cg, Phase5IsASymmetricPermutation) {
  // Sec. VII-A: the fifth phase is a permutation (so no endpoint
  // contention) and the overall pattern is symmetric.
  std::vector<Rank> map(128);
  for (Rank s = 0; s < 128; ++s) map[s] = cgPhase5Destination(s, 128, 16);
  const Permutation p{map};  // Throws if not a bijection.
  EXPECT_TRUE(p.isInvolution());
}

TEST(Cg, Phase5FirstUpPortUnderDmodKCollapsesToTwoRootsPerSwitch) {
  // The heart of the pathology (Sec. VII-A): the destination's M1 digit is
  // congruent with the source parity, so D-mod-k sends all 16 sources of a
  // switch through just two roots — eight flows per up-link, the 8x
  // degradation the paper reports.
  for (Rank block = 0; block < 8; ++block) {
    std::set<Rank> rootDigits;
    for (Rank j = 0; j < 16; ++j) {
      rootDigits.insert(cgPhase5Destination(block * 16 + j, 128, 16) % 16);
    }
    EXPECT_EQ(rootDigits, (std::set<Rank>{2 * block, 2 * block + 1}));
  }
}

TEST(Cg, Phase5NonLocalExceptFirstPair) {
  // Within block b, sources 2b and 2b+1 map to themselves (Eq. (2) fixed
  // points); everything else leaves the switch.
  std::uint32_t selfFlows = 0;
  std::uint32_t localFlows = 0;
  const PhasedPattern cg = cgD128();
  for (const Flow& f : cg.phases[4].flows()) {
    if (f.src == f.dst) ++selfFlows;
    else if (f.src / 16 == f.dst / 16) ++localFlows;
  }
  EXPECT_EQ(selfFlows, 16u);  // Two per block, eight blocks.
  EXPECT_EQ(localFlows, 0u);
}

TEST(Cg, FlattenedPatternIsSymmetric) {
  EXPECT_TRUE(cgD128().flattened().isSymmetric());
}

TEST(Cg, GeneralizedInstancesValidate) {
  // 32 ranks in blocks of 8: numBlocks = 4 divides blockSize = 8.
  const PhasedPattern cg = cgPhases(32, 8, 1000);
  EXPECT_EQ(cg.phases.size(), 4u);  // log2(8) local + Eq. (2).
  // Phase structure invalid when numBlocks does not divide blockSize.
  EXPECT_THROW(cgPhases(48, 16, 1), std::invalid_argument);
  EXPECT_THROW(cgPhases(128, 12, 1), std::invalid_argument);
  EXPECT_THROW(cgPhases(100, 16, 1), std::invalid_argument);
}

TEST(Cg, GeneralPhase5IsAlwaysAnInvolution) {
  for (const auto& [n, b] : std::vector<std::pair<Rank, Rank>>{
           {32, 8}, {128, 16}, {512, 32}, {8, 4}}) {
    std::vector<Rank> map(n);
    for (Rank s = 0; s < n; ++s) map[s] = cgPhase5Destination(s, n, b);
    EXPECT_TRUE(Permutation{map}.isInvolution()) << n << "/" << b;
  }
}

}  // namespace
}  // namespace patterns
