// Tests for the pattern flow-list format.
#include "patterns/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "patterns/applications.hpp"

namespace patterns {
namespace {

TEST(PatternIo, RoundTripsCg) {
  const PhasedPattern cg = cgD128();
  const PhasedPattern back = phasedPatternFromString(toString(cg));
  EXPECT_EQ(back.name, cg.name);
  EXPECT_EQ(back.numRanks, cg.numRanks);
  ASSERT_EQ(back.phases.size(), cg.phases.size());
  for (std::size_t i = 0; i < cg.phases.size(); ++i) {
    ASSERT_EQ(back.phases[i].size(), cg.phases[i].size());
    for (std::size_t f = 0; f < cg.phases[i].flows().size(); ++f) {
      EXPECT_EQ(back.phases[i].flows()[f], cg.phases[i].flows()[f]);
    }
  }
}

TEST(PatternIo, SinglePhaseWithoutDirective) {
  const PhasedPattern app = phasedPatternFromString(
      "# ranks 4\n"
      "0 1 100\n"
      "2 3 200\n");
  EXPECT_EQ(app.numRanks, 4u);
  ASSERT_EQ(app.phases.size(), 1u);
  EXPECT_EQ(app.phases[0].size(), 2u);
}

TEST(PatternIo, MultiplePhases) {
  const PhasedPattern app = phasedPatternFromString(
      "# pattern two-step\n"
      "# ranks 4\n"
      "# phase 0\n"
      "0 1 100\n"
      "# phase 1\n"
      "1 0 100\n");
  EXPECT_EQ(app.name, "two-step");
  ASSERT_EQ(app.phases.size(), 2u);
  EXPECT_EQ(app.phases[0].flows()[0], (Flow{0, 1, 100}));
  EXPECT_EQ(app.phases[1].flows()[0], (Flow{1, 0, 100}));
}

TEST(PatternIo, CommentsAndBlankLinesIgnored) {
  const PhasedPattern app = phasedPatternFromString(
      "# a free comment\n"
      "# ranks 2\n"
      "\n"
      "   \n"
      "# another note\n"
      "0 1 7\n");
  EXPECT_EQ(app.phases[0].size(), 1u);
}

TEST(PatternIo, Validation) {
  EXPECT_THROW(phasedPatternFromString("0 1 100\n"), std::invalid_argument);
  EXPECT_THROW(phasedPatternFromString("# ranks 0\n"),
               std::invalid_argument);
  EXPECT_THROW(phasedPatternFromString("# ranks 4\n0 9 100\n"),
               std::invalid_argument);
  EXPECT_THROW(phasedPatternFromString("# ranks 4\n0 zork\n"),
               std::invalid_argument);
}

TEST(PatternIo, ErrorsCarryLineNumbers) {
  try {
    (void)phasedPatternFromString("# ranks 4\n0 1 100\nbroken\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(PatternIo, EmptyPhasesArePreserved) {
  const PhasedPattern app = phasedPatternFromString(
      "# ranks 4\n# phase 0\n# phase 1\n0 1 5\n");
  ASSERT_EQ(app.phases.size(), 2u);
  EXPECT_TRUE(app.phases[0].empty());
  EXPECT_EQ(app.phases[1].size(), 1u);
}

}  // namespace
}  // namespace patterns
