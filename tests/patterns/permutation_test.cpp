// Unit tests for the permutation families.
#include "patterns/permutation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace patterns {
namespace {

TEST(Permutation, IdentityByDefault) {
  const Permutation p(5);
  for (Rank i = 0; i < 5; ++i) EXPECT_EQ(p(i), i);
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(Permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation({0, 3}), std::invalid_argument);
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p = randomPermutation(64, 123);
  const Permutation q = p.inverse();
  const Permutation id = p.compose(q);
  for (Rank i = 0; i < 64; ++i) EXPECT_EQ(id(i), i);
}

TEST(Permutation, ComposeSizesMustMatch) {
  EXPECT_THROW(Permutation(4).compose(Permutation(5)),
               std::invalid_argument);
}

TEST(Permutation, RandomIsDeterministicPerSeed) {
  EXPECT_EQ(randomPermutation(128, 7), randomPermutation(128, 7));
  EXPECT_NE(randomPermutation(128, 7).map(),
            randomPermutation(128, 8).map());
}

TEST(Permutation, RandomCoversAllDestinations) {
  const Permutation p = randomPermutation(97, 3);
  std::set<Rank> dests(p.map().begin(), p.map().end());
  EXPECT_EQ(dests.size(), 97u);
}

TEST(Permutation, ShiftWrapsAround) {
  const Permutation p = shiftPermutation(8, 3);
  EXPECT_EQ(p(0), 3u);
  EXPECT_EQ(p(6), 1u);
  // Shift by n is the identity.
  EXPECT_EQ(shiftPermutation(8, 8), Permutation(8));
}

TEST(Permutation, BitReversalIsInvolution) {
  const Permutation p = bitReversal(64);
  EXPECT_TRUE(p.isInvolution());
  EXPECT_EQ(p(1), 32u);   // 000001 -> 100000.
  EXPECT_EQ(p(0b110), 0b011000u);
  EXPECT_THROW(bitReversal(48), std::invalid_argument);
}

TEST(Permutation, BitComplementIsInvolution) {
  const Permutation p = bitComplement(16);
  EXPECT_TRUE(p.isInvolution());
  EXPECT_EQ(p(0), 15u);
  EXPECT_THROW(bitComplement(10), std::invalid_argument);
}

TEST(Permutation, TransposeSwapsCoordinates) {
  const Permutation p = transpose(4, 8);  // rank = i*8 + j -> j*4 + i.
  EXPECT_EQ(p(0), 0u);
  EXPECT_EQ(p(1 * 8 + 2), 2u * 4 + 1);
  // transpose(r, c) then transpose(c, r) is the identity.
  const Permutation q = transpose(8, 4);
  EXPECT_EQ(q.compose(p), Permutation(32));
}

TEST(Permutation, SquareTransposeIsInvolution) {
  EXPECT_TRUE(transpose(8, 8).isInvolution());
}

TEST(Permutation, ButterflyFlipsOneBit) {
  const Permutation p = butterfly(16, 2);
  EXPECT_EQ(p(0), 4u);
  EXPECT_TRUE(p.isInvolution());
  EXPECT_THROW(butterfly(16, 4), std::invalid_argument);
  EXPECT_THROW(butterfly(12, 1), std::invalid_argument);
}

TEST(Permutation, ToPatternSkipsSelfFlowsByDefault) {
  const Permutation id(4);
  EXPECT_TRUE(id.toPattern(100).empty());
  EXPECT_EQ(id.toPattern(100, /*keepSelf=*/true).size(), 4u);
  const Pattern p = shiftPermutation(4, 1).toPattern(100);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.isPermutation());
  EXPECT_EQ(p.totalBytes(), 400u);
}

// Property sweep: every family produces genuine permutation patterns.
class PermutationFamilies
    : public ::testing::TestWithParam<Permutation> {};

TEST_P(PermutationFamilies, PatternIsPermutationAndSymmetricIffInvolution) {
  const Permutation& p = GetParam();
  const Pattern pat = p.toPattern(1);
  EXPECT_TRUE(pat.isPermutation());
  EXPECT_EQ(pat.isSymmetric(), p.isInvolution());
}

INSTANTIATE_TEST_SUITE_P(
    Families, PermutationFamilies,
    ::testing::Values(randomPermutation(64, 1), shiftPermutation(64, 5),
                      bitReversal(64), bitComplement(64), transpose(8, 8),
                      transpose(4, 16), butterfly(64, 3)));

}  // namespace
}  // namespace patterns
