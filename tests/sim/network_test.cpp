// Tests for the event-driven network simulator: exact serialization
// arithmetic, flow control, fairness, conservation and determinism.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "xgft/route.hpp"

namespace sim {
namespace {

using xgft::Topology;

SimConfig zeroLatencyConfig() {
  SimConfig cfg;
  cfg.headerBytes = 0;
  cfg.switchLatencyNs = 0;
  cfg.linkLatencyNs = 0;
  return cfg;
}

/// Collects per-message completion times.
class Recorder : public TrafficSink {
 public:
  void onMessageDelivered(MsgId msg, TimeNs t) override {
    deliveries.emplace_back(msg, t);
  }
  std::vector<std::pair<MsgId, TimeNs>> deliveries;
};

TEST(Config, SerializationArithmetic) {
  SimConfig cfg;  // 2 Gbit/s, 8 B header.
  cfg.headerBytes = 0;
  EXPECT_EQ(cfg.serializationNs(1024), 4096u);  // 1 KB at 2 Gb/s.
  EXPECT_EQ(cfg.serializationNs(8), 32u);       // One flit = 32 ns.
  cfg.headerBytes = 8;
  EXPECT_EQ(cfg.serializationNs(1024), 4128u);
  cfg.linkGbps = 4.0;
  cfg.headerBytes = 0;
  EXPECT_EQ(cfg.serializationNs(1024), 2048u);
}

TEST(Network, SelfMessageDeliversInstantly) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  Recorder rec;
  net.setSink(&rec);
  const MsgId m = net.addMessage(3, 3, 1 << 20, xgft::Route{});
  net.release(m, 500);
  net.run();
  ASSERT_EQ(rec.deliveries.size(), 1u);
  EXPECT_EQ(rec.deliveries[0].second, 500u);
  EXPECT_EQ(net.deliveryTime(m), 500u);
}

TEST(Network, SingleSegmentLatencyIsExact) {
  // Host -> switch -> host (same first-level switch), one 1 KB segment:
  // 2 serializations + 2 link latencies + 1 switch traversal.
  const Topology topo(xgft::xgft2(4, 4, 2));
  SimConfig cfg;
  cfg.headerBytes = 0;
  cfg.switchLatencyNs = 100;
  cfg.linkLatencyNs = 20;
  Network net(topo, cfg);
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 1024, router->route(0, 1));
  net.release(m, 0);
  net.run();
  EXPECT_EQ(net.deliveryTime(m), 4096u + 20 + 100 + 4096 + 20);
}

TEST(Network, TwoLevelPathLatency) {
  // Host -> sw -> root -> sw -> host: 4 serializations, 4 link latencies,
  // 3 switch traversals.
  const Topology topo(xgft::xgft2(4, 4, 2));
  SimConfig cfg;
  cfg.headerBytes = 0;
  cfg.switchLatencyNs = 100;
  cfg.linkLatencyNs = 20;
  Network net(topo, cfg);
  const routing::RouterPtr router = routing::makeDModK(topo);
  ASSERT_EQ(topo.ncaLevel(0, 15), 2u);
  const MsgId m = net.addMessage(0, 15, 1024, router->route(0, 15));
  net.release(m, 0);
  net.run();
  EXPECT_EQ(net.deliveryTime(m), 4u * 4096 + 4u * 20 + 3u * 100);
}

TEST(Network, PipeliningOverlapsSegments) {
  // A 16-segment message over 2 hops: segments pipeline, so the total is
  // roughly 16 serializations on the bottleneck link plus one extra
  // serialization + per-hop costs for the last segment's tail.
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, zeroLatencyConfig());
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 16 * 1024, router->route(0, 1));
  net.release(m, 0);
  net.run();
  EXPECT_EQ(net.deliveryTime(m), 16u * 4096 + 4096);
}

TEST(Network, EndpointContentionSerializes) {
  // Two senders, one destination: the destination's down-link serializes
  // both messages; total = 2 message times (+ pipeline tail).
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, zeroLatencyConfig());
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Bytes bytes = 8 * 1024;
  const MsgId a = net.addMessage(0, 2, bytes, router->route(0, 2));
  const MsgId b = net.addMessage(1, 2, bytes, router->route(1, 2));
  net.release(a, 0);
  net.release(b, 0);
  net.run();
  const TimeNs last = std::max(net.deliveryTime(a), net.deliveryTime(b));
  // 16 segments of 4096 ns share the final link; +1 pipeline fill.
  EXPECT_GE(last, 16u * 4096);
  EXPECT_LE(last, 17u * 4096);
}

TEST(Network, RoundRobinInterleavesConcurrentMessages) {
  // One sender, two destinations: both messages progress together (RR per
  // segment), so they complete within one segment of each other.
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, zeroLatencyConfig());
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Bytes bytes = 8 * 1024;
  const MsgId a = net.addMessage(0, 1, bytes, router->route(0, 1));
  const MsgId b = net.addMessage(0, 2, bytes, router->route(0, 2));
  net.release(a, 0);
  net.release(b, 0);
  net.run();
  const TimeNs ta = net.deliveryTime(a);
  const TimeNs tb = net.deliveryTime(b);
  // Round robin keeps them within two segments of each other (message `a`
  // gets a one-segment head start before `b` is released).
  EXPECT_LE(ta > tb ? ta - tb : tb - ta, 2u * 4096 + 1);
  // And neither finished before the shared injection link pushed 16
  // segments.
  EXPECT_GE(std::min(ta, tb), 15u * 4096);
}

TEST(Network, ConservationAcrossRandomTraffic) {
  const Topology topo(xgft::xgft2(8, 8, 3));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeRandom(topo, 5);
  std::uint64_t expectedSegments = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const xgft::NodeIndex s = (i * 13) % 64;
    const xgft::NodeIndex d = (i * 29 + 7) % 64;
    if (s == d) continue;
    const Bytes bytes = 1 + (i * 977) % 5000;
    expectedSegments += (bytes + 1023) / 1024;
    const MsgId m = net.addMessage(s, d, bytes, router->route(s, d));
    net.release(m, (i % 7) * 100);
  }
  net.run();
  EXPECT_EQ(net.stats().segmentsInjected, expectedSegments);
  EXPECT_EQ(net.stats().segmentsDelivered, expectedSegments);
}

TEST(Network, BufferBoundsAreRespected) {
  const Topology topo(xgft::xgft2(8, 8, 1));  // Heavy contention at 1 root.
  SimConfig cfg;
  cfg.inputBufferSegments = 2;
  cfg.outputBufferSegments = 3;
  Network net(topo, cfg);
  const routing::RouterPtr router = routing::makeDModK(topo);
  for (xgft::NodeIndex s = 0; s < 32; ++s) {
    const xgft::NodeIndex d = 63 - s;
    const MsgId m = net.addMessage(s, d, 32 * 1024, router->route(s, d));
    net.release(m, 0);
  }
  net.run();
  EXPECT_LE(net.stats().maxInputQueueDepth, 2u);
  EXPECT_LE(net.stats().maxOutputQueueDepth, 3u);
  EXPECT_EQ(net.stats().messagesDelivered, 32u);
}

TEST(Network, DeterministicReplay) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  const routing::RouterPtr router = routing::makeRandom(topo, 11);
  const auto runOnce = [&]() {
    Network net(topo, SimConfig{});
    for (std::uint32_t i = 0; i < 100; ++i) {
      const xgft::NodeIndex s = (i * 7) % 64;
      const xgft::NodeIndex d = (i * 31 + 3) % 64;
      if (s == d) continue;
      net.release(net.addMessage(s, d, 10000, router->route(s, d)), 0);
    }
    net.run();
    return net.stats().lastDeliveryNs;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(Network, ReleaseValidation) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  EXPECT_THROW(net.release(0, 0), std::out_of_range);
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 100, router->route(0, 1));
  net.release(m, 0);
  net.run();
  EXPECT_THROW(net.release(m, net.now() - 1), std::invalid_argument);
}

TEST(Network, AddMessageValidatesRoutes) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  xgft::Route bad;  // Too short for an inter-switch pair.
  EXPECT_THROW(net.addMessage(0, 15, 100, bad), std::invalid_argument);
}

TEST(Network, DeliveryTimeBeforeCompletionThrows) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 100, router->route(0, 1));
  EXPECT_THROW((void)net.deliveryTime(m), std::logic_error);
  net.release(m, 0);
  net.run();
  EXPECT_GT(net.deliveryTime(m), 0u);
}

TEST(Network, ZeroByteMessageStillTravels) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 5, 0, router->route(0, 5));
  net.release(m, 0);
  net.run();
  // One header-only segment crosses the network.
  EXPECT_EQ(net.stats().segmentsDelivered, 1u);
}

TEST(Network, WireBusyAccounting) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, zeroLatencyConfig());
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 4 * 1024, router->route(0, 1));
  net.release(m, 0);
  net.run();
  // The host's injection wire was busy exactly 4 segments long.
  const std::uint32_t hostPort = net.globalPort(0, 0, 0);
  EXPECT_EQ(net.wireBusyNs(hostPort), 4u * 4096);
}

TEST(Network, RunUntilPausesAndResumes) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, zeroLatencyConfig());
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 64 * 1024, router->route(0, 1));
  net.release(m, 0);
  net.run(/*until=*/10000);
  EXPECT_LE(net.now(), 10000u);
  EXPECT_EQ(net.stats().messagesDelivered, 0u);
  net.run();
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

TEST(Network, SegmentCountOverflowThrowsInsteadOfWrapping) {
  // A message so large its segment count exceeds the 32-bit counter must
  // be rejected with a clear message, not silently truncated modulo 2^32
  // (2^42 bytes / 1 KB segments = 2^32 segments, one past the counter).
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  try {
    (void)net.addMessage(0, 1, Bytes{1} << 42, router->route(0, 1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("32-bit segment counter"),
              std::string::npos)
        << e.what();
  }
  // Nothing was registered: the id space is untouched by the failed add.
  EXPECT_THROW(net.release(0, 0), std::out_of_range);
  // The largest representable segment count is still accepted.
  const MsgId ok =
      net.addMessage(0, 1, (Bytes{1} << 42) - 1024, router->route(0, 1));
  EXPECT_EQ(ok, 0u);
}

TEST(Network, OversizedTopologyPortSpaceThrows) {
  // The flat event core indexes ports with 32-bit ids; a topology that
  // cannot fit must be rejected at Network construction, before the wiring
  // arrays are sized from the overflowed count.  XGFT(1; 2^16; 2^16) has
  // only 131072 nodes (cheap to build) but 2^33 ports — the guard fires
  // before any port array is allocated.
  const xgft::Params params({1u << 16}, {1u << 16});
  const Topology big(params);
  try {
    Network net(big, SimConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("port"), std::string::npos)
        << e.what();
  }
}

TEST(Network, StrandedTrafficThrowsOnDrainNotHangs) {
  // Degenerate flow control: zero-capacity output buffers make every
  // switch hop unpassable, so a released message parks forever in the
  // first input buffer.  run() must detect the stranding when the event
  // queue drains and throw, not return silently or hang.
  const Topology topo(xgft::xgft2(4, 4, 2));
  SimConfig cfg;
  cfg.outputBufferSegments = 0;
  Network net(topo, cfg);
  const routing::RouterPtr router = routing::makeDModK(topo);
  const MsgId m = net.addMessage(0, 1, 1024, router->route(0, 1));
  net.release(m, 0);
  try {
    net.run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("undelivered released message"),
              std::string::npos)
        << e.what();
  }
  // The message entered the network but never completed.
  EXPECT_EQ(net.stats().segmentsInjected, 1u);
  EXPECT_EQ(net.stats().segmentsDelivered, 0u);
  EXPECT_THROW((void)net.deliveryTime(m), std::logic_error);
}

TEST(Network, UnreleasedTrafficIsNotStranded) {
  // Drainage only audits released messages: registering without releasing
  // is legal and run() returns cleanly.
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  (void)net.addMessage(0, 1, 1024, router->route(0, 1));
  EXPECT_NO_THROW(net.run());
}

TEST(Network, InternedSetsMatchThePerMessagePath) {
  // The interned-route fast path must produce the identical simulation as
  // per-message addMessage calls with the same routes.
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const auto runOnce = [&](bool interned) {
    Network net(topo, SimConfig{});
    if (interned) {
      const RouteSetId set = net.internRoutes(0, 9, {router->route(0, 9)});
      for (int i = 0; i < 8; ++i) {
        net.release(net.addMessageSet(0, 9, 4096, set), 0);
      }
    } else {
      for (int i = 0; i < 8; ++i) {
        net.release(net.addMessage(0, 9, 4096, router->route(0, 9)), 0);
      }
    }
    net.run();
    return net.stats().lastDeliveryNs;
  };
  EXPECT_EQ(runOnce(true), runOnce(false));
}

TEST(Network, AddMessageSetValidatesItsArguments) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const RouteSetId set = net.internRoutes(0, 9, {router->route(0, 9)});
  // kNone is only for local (src == dst) messages, and vice versa.
  EXPECT_THROW((void)net.addMessageSet(0, 9, 100, sim::RouteStore::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)net.addMessageSet(3, 3, 100, set),
               std::invalid_argument);
  EXPECT_THROW((void)net.addMessageSet(0, 9, 100, set + 1),
               std::out_of_range);
  // Local messages with kNone are fine.
  const MsgId local = net.addMessageSet(4, 4, 100, sim::RouteStore::kNone);
  net.release(local, 10);
  net.run();
  EXPECT_EQ(net.deliveryTime(local), 10u);
}

TEST(Network, RouteInterningDeduplicatesAcrossMessages) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  for (int i = 0; i < 100; ++i) {
    (void)net.addMessage(0, 9, 1024, router->route(0, 9));
  }
  // One hundred identical messages share one interned path and one set.
  EXPECT_EQ(net.routes().numPaths(), 1u);
  EXPECT_EQ(net.routes().numSets(), 1u);
}

TEST(Network, CallbacksFireInOrder) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  std::vector<int> order;
  net.scheduleCallback(200, [&]() { order.push_back(2); });
  net.scheduleCallback(100, [&]() { order.push_back(1); });
  net.scheduleCallback(200, [&]() { order.push_back(3); });  // Same time:
  net.run();                                                 // insertion order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace sim
