// Tests for minimally-adaptive per-hop routing.
#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "trace/harness.hpp"
#include "xgft/route.hpp"

namespace sim {
namespace {

using xgft::Topology;

TEST(Adaptive, DeliversAcrossTheTree) {
  const Topology topo(xgft::xgft2(4, 4, 4));
  Network net(topo, SimConfig{});
  const MsgId m = net.addMessageAdaptive(0, 15, 64 * 1024);
  net.release(m, 0);
  net.run();
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
  EXPECT_EQ(net.stats().segmentsDelivered, 64u);
}

TEST(Adaptive, SwitchLocalTrafficNeverClimbs) {
  // Source and destination under one switch: the segment must turn down at
  // level 1, so no root wire ever gets busy.
  const Topology topo(xgft::xgft2(4, 4, 4));
  Network net(topo, SimConfig{});
  const MsgId m = net.addMessageAdaptive(0, 1, 16 * 1024);
  net.release(m, 0);
  net.run();
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(net.wireBusyNs(net.globalPort(1, 0, 4 + p)), 0u)
        << "up port " << p;
  }
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

TEST(Adaptive, SpreadsLoadOverAllUpPorts) {
  // A single long message adapts across every root uplink because each
  // segment sees the previous one still queued/serializing.
  const Topology topo(xgft::xgft2(4, 4, 4));
  SimConfig cfg;
  cfg.headerBytes = 0;
  Network net(topo, cfg);
  const MsgId m = net.addMessageAdaptive(0, 15, 64 * 1024);
  net.release(m, 0);
  net.run();
  std::uint32_t usedUpPorts = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    if (net.wireBusyNs(net.globalPort(1, 0, 4 + p)) > 0) ++usedUpPorts;
  }
  EXPECT_GE(usedUpPorts, 2u);
}

TEST(Adaptive, SelfMessagesDeliverInstantly) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  const MsgId m = net.addMessageAdaptive(5, 5, 1024);
  net.release(m, 100);
  net.run();
  EXPECT_EQ(net.deliveryTime(m), 100u);
}

TEST(Adaptive, DeterministicReplay) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  const auto runOnce = [&]() {
    Network net(topo, SimConfig{});
    for (std::uint32_t s = 0; s < 64; ++s) {
      net.release(net.addMessageAdaptive(s, 63 - s, 16 * 1024), 0);
    }
    net.run();
    return net.stats().lastDeliveryNs;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(Adaptive, AvoidsTheCgCongruencePathology) {
  // Adaptive routing reacts to the queues the Eq. (2) congruence creates,
  // so it must clearly beat D-mod-k on CG phase 5.
  const Topology topo(xgft::karyNTree(16, 2));
  patterns::PhasedPattern phase5;
  phase5.numRanks = 128;
  phase5.phases.push_back(
      trace::scaleMessages(patterns::cgD128(), 1.0 / 16).phases[4]);
  const double reference = static_cast<double>(
      trace::runCrossbarReference(phase5).makespanNs);
  const double adaptive =
      static_cast<double>(trace::runAppAdaptive(topo, phase5).makespanNs) /
      reference;
  const double dmodk =
      static_cast<double>(
          trace::runApp(topo, *routing::makeDModK(topo), phase5)
              .makespanNs) /
      reference;
  EXPECT_GT(dmodk, 6.0);
  EXPECT_LT(adaptive, dmodk / 2.0);
}

TEST(Adaptive, ConservesSegmentsUnderHeavyContention) {
  const Topology topo(xgft::xgft2(8, 8, 2));
  Network net(topo, SimConfig{});
  std::uint64_t expected = 0;
  for (std::uint32_t s = 0; s < 64; ++s) {
    for (std::uint32_t k = 1; k <= 2; ++k) {
      const xgft::NodeIndex d = (s + k * 8) % 64;
      net.release(net.addMessageAdaptive(s, d, 8 * 1024), 0);
      expected += 8;
    }
  }
  net.run();
  EXPECT_EQ(net.stats().segmentsDelivered, expected);
}

TEST(Adaptive, HarnessRunsEndToEnd) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  const auto app =
      trace::scaleMessages(patterns::wrfHalo(8, 8, 64 * 1024), 0.5);
  const trace::RunResult r = trace::runAppAdaptive(topo, app);
  EXPECT_GT(r.makespanNs, 0u);
  EXPECT_EQ(r.stats.messagesDelivered, app.phases[0].size());
}

}  // namespace
}  // namespace sim
