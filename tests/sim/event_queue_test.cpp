// Tests for the calendar-queue event core: exact (t, insertion-seq)
// service order against a std::priority_queue reference model across the
// regimes the queue adapts to (dense, sparse, time-bunched bursts, small),
// plus the until/rewind semantics Network::run(until) relies on.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "xgft/rng.hpp"

namespace sim {
namespace {

/// Reference model: the (t, seq) min-queue the calendar replaced.
struct RefEvent {
  TimeNs t;
  std::uint64_t seq;
  std::uint32_t a;
  bool operator>(const RefEvent& o) const {
    if (t != o.t) return t > o.t;
    return seq > o.seq;
  }
};

class Reference {
 public:
  void push(TimeNs t, std::uint32_t a) { q_.push(RefEvent{t, seq_++, a}); }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] RefEvent pop() {
    RefEvent e = q_.top();
    q_.pop();
    return e;
  }
  [[nodiscard]] TimeNs topTime() const { return q_.top().t; }

 private:
  std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<RefEvent>>
      q_;
  std::uint64_t seq_ = 0;
};

/// Drains both queues fully, asserting identical (t, payload) order.
void expectSameDrain(EventQueue& q, Reference& ref) {
  EventRecord got{};
  while (ref.empty() ? false : true) {
    const RefEvent want = ref.pop();
    ASSERT_TRUE(q.popUntil(std::numeric_limits<TimeNs>::max(), got));
    EXPECT_EQ(got.t, want.t);
    EXPECT_EQ(got.a, want.a);
  }
  EXPECT_FALSE(q.popUntil(std::numeric_limits<TimeNs>::max(), got));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyPopsNothing) {
  EventQueue q;
  EventRecord out{};
  EXPECT_FALSE(q.popUntil(std::numeric_limits<TimeNs>::max(), out));
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, EqualTimesPopInInsertionOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(500, 0, i, 0);
  EventRecord out{};
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.popUntil(1000, out));
    EXPECT_EQ(out.a, i);
  }
}

TEST(EventQueue, KindRidesInTheTag) {
  EventQueue q;
  q.push(10, 5, 1, 2);
  EventRecord out{};
  ASSERT_TRUE(q.popUntil(10, out));
  EXPECT_EQ(out.kind(), 5);
  EXPECT_EQ(out.a, 1u);
  EXPECT_EQ(out.seg, 2u);
}

TEST(EventQueue, MatchesReferenceOnMixedRandomLoad) {
  // Interleaved pushes and pops over several time scales — exercises the
  // small mode, the migration to the calendar, bucket growth, and the
  // width adaptation, all against the reference order.
  EventQueue q;
  Reference ref;
  xgft::Rng rng(42);
  TimeNs now = 0;
  std::uint32_t id = 0;
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t r = rng.next() % 100;
    if (r < 60) {
      // Simulator-like deltas: 0, 20, 100, ~4096, plus occasional far
      // future and same-instant bursts.
      static constexpr TimeNs deltas[] = {0, 20, 100, 4096, 4128, 70000};
      const TimeNs t = now + deltas[rng.next() % 6];
      q.push(t, 0, id, 0);
      ref.push(t, id);
      ++id;
    } else if (!ref.empty()) {
      EventRecord got{};
      const RefEvent want = ref.pop();
      ASSERT_TRUE(q.popUntil(std::numeric_limits<TimeNs>::max(), got));
      ASSERT_EQ(got.t, want.t);
      ASSERT_EQ(got.a, want.a);
      now = got.t;
    }
  }
  expectSameDrain(q, ref);
}

TEST(EventQueue, BurstsAtOneInstantStayOrdered) {
  // The ideal-crossbar regime: thousands of events at identical times.
  EventQueue q;
  Reference ref;
  std::uint32_t id = 0;
  for (TimeNs t = 0; t < 10; ++t) {
    for (int i = 0; i < 2000; ++i) {
      q.push(t * 4128, 0, id, 0);
      ref.push(t * 4128, id);
      ++id;
    }
  }
  expectSameDrain(q, ref);
}

TEST(EventQueue, UntilBlocksWithoutConsuming) {
  EventQueue q;
  q.push(5000, 0, 1, 0);
  EventRecord out{};
  EXPECT_FALSE(q.popUntil(4999, out));
  EXPECT_EQ(q.size(), 1u);
  ASSERT_TRUE(q.popUntil(5000, out));
  EXPECT_EQ(out.a, 1u);
}

TEST(EventQueue, PushBeforeTheCursorAfterABlockedPop) {
  // run(until) semantics: a blocked pop may leave the cursor deep in the
  // future; a later push at an earlier time must still pop first.
  EventQueue q;
  // Leave small mode so the calendar cursor is exercised.
  for (std::uint32_t i = 0; i < 200; ++i) q.push(1 << 20, 0, 1000 + i, 0);
  EventRecord out{};
  EXPECT_FALSE(q.popUntil(10, out));  // Cursor hunts far forward.
  q.push(50, 0, 7, 0);                // Earlier than everything pending.
  ASSERT_TRUE(q.popUntil(std::numeric_limits<TimeNs>::max(), out));
  EXPECT_EQ(out.a, 7u);
  EXPECT_EQ(out.t, 50u);
}

TEST(EventQueue, DrainRefillCyclesSurviveModeChanges) {
  EventQueue q;
  Reference ref;
  std::uint32_t id = 0;
  TimeNs base = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Alternate tiny and large batches to force small <-> calendar moves.
    const int n = (cycle % 2 == 0) ? 5 : 3000;
    for (int i = 0; i < n; ++i) {
      const TimeNs t = base + static_cast<TimeNs>(i % 97) * 64;
      q.push(t, 0, id, 0);
      ref.push(t, id);
      ++id;
    }
    expectSameDrain(q, ref);
    base += 1 << 24;  // Huge jump: the next batch is in a far slot.
  }
}

}  // namespace
}  // namespace sim
