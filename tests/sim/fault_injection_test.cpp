// Tests for mid-run link fault injection in the event core: the
// kLinkDown/kLinkUp events under all three FaultPolicies, down-time
// accounting across run(until) resumes, scheduling validation, probe hook
// counts, and the drain conversion that keeps faulted runs from hanging or
// throwing.
#include <gtest/gtest.h>

#include <vector>

#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "sim/probe.hpp"
#include "xgft/params.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace sim {
namespace {

using xgft::Topology;

/// Counts every fault-related hook invocation.
class FaultProbe : public Probe {
 public:
  void onLinkDown(xgft::LinkId, TimeNs) override { ++downs; }
  void onLinkUp(xgft::LinkId, TimeNs) override { ++ups; }
  void onSegmentStranded(std::uint32_t, std::uint32_t, TimeNs) override {
    ++stranded;
  }
  void onSegmentRerouted(std::uint32_t, std::uint32_t, std::uint32_t,
                         TimeNs) override {
    ++rerouted;
  }
  std::uint64_t downs = 0;
  std::uint64_t ups = 0;
  std::uint64_t stranded = 0;
  std::uint64_t rerouted = 0;
};

/// Makespan of the healthy single-message run, for picking mid-flight
/// fault instants.
TimeNs healthyMakespan(const Topology& topo, const routing::Router& router,
                       xgft::NodeIndex s, xgft::NodeIndex d, Bytes bytes) {
  Network net(topo, SimConfig{});
  const MsgId m = net.addMessage(s, d, bytes, router.route(s, d));
  net.release(m, 0);
  net.run();
  return net.stats().lastDeliveryNs;
}

TEST(FaultInjection, WaitPolicyResumesOnRestore) {
  const Topology topo(xgft::xgft2(4, 4, 1));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const xgft::LinkId hostLink = topo.upLink(0, 0, 0);

  Network net(topo, SimConfig{});
  net.setFaultPolicy(FaultPolicy::kWait);
  net.scheduleLinkDown(0, hostLink);
  net.scheduleLinkUp(50'000, hostLink);
  const MsgId m = net.addMessage(0, 1, 4096, router->route(0, 1));
  net.release(m, 0);
  net.run();

  // The message waited out the outage and then delivered normally.
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
  EXPECT_EQ(net.stats().messagesDropped, 0u);
  EXPECT_EQ(net.stats().segmentsStranded, 0u);
  EXPECT_GE(net.deliveryTime(m), 50'000u);
  EXPECT_EQ(net.stats().linkDownNs, 50'000u);
  EXPECT_FALSE(net.linkIsDown(hostLink));
}

TEST(FaultInjection, WaitPolicyWithoutRestoreConvertsToDropsOnDrain) {
  const Topology topo(xgft::xgft2(4, 4, 1));
  const routing::RouterPtr router = routing::makeDModK(topo);
  Network net(topo, SimConfig{});
  net.setFaultPolicy(FaultPolicy::kWait);
  net.scheduleLinkDown(0, topo.upLink(0, 0, 0));
  const MsgId m = net.addMessage(0, 1, 4096, router->route(0, 1));
  net.release(m, 0);
  // Faulted runs report instead of throwing: the waiting message converts
  // to a drop when the queue drains with the link still down.
  EXPECT_NO_THROW(net.run());
  EXPECT_EQ(net.stats().messagesDelivered, 0u);
  EXPECT_EQ(net.stats().messagesDropped, 1u);
  EXPECT_TRUE(net.linkIsDown(topo.upLink(0, 0, 0)));
}

TEST(FaultInjection, StrandPolicyDropsMidFlightTraffic) {
  // w2 = 1: the level-1 switch has a single up-link, so ascending traffic
  // meeting it dead has no alternative.
  const Topology topo(xgft::xgft2(4, 4, 1));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Bytes bytes = 64 * 1024;
  const TimeNs mid = healthyMakespan(topo, *router, 0, 4, bytes) / 2;
  ASSERT_GT(mid, 0u);

  Network net(topo, SimConfig{});
  FaultProbe probe;
  net.setProbe(&probe);
  net.setFaultPolicy(FaultPolicy::kStrand);
  net.scheduleLinkDown(mid, topo.upLink(1, 0, 0));
  const MsgId m = net.addMessage(0, 4, bytes, router->route(0, 4));
  net.release(m, 0);
  EXPECT_NO_THROW(net.run());

  EXPECT_EQ(net.stats().messagesDelivered, 0u);
  EXPECT_EQ(net.stats().messagesDropped, 1u);
  EXPECT_GE(net.stats().segmentsStranded, 1u);
  EXPECT_EQ(net.stats().segmentsRerouted, 0u);
  EXPECT_EQ(probe.stranded, net.stats().segmentsStranded);
  EXPECT_EQ(probe.downs, 1u);
  (void)m;
}

TEST(FaultInjection, ReroutePolicyDeliversViaTheSiblingUpPort) {
  // w2 = 2: the scheme's chosen up-link dies, the sibling survives, and
  // every ascending segment escapes through it (minimally adaptive).
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const xgft::Route route = router->route(0, 4);
  const auto channels = xgft::channelsOf(topo, 0, 4, route);
  ASSERT_EQ(channels.size(), 4u);
  const xgft::LinkId deadUplink = channels[1].link;  // The L1 ascent.

  Network net(topo, SimConfig{});
  FaultProbe probe;
  net.setProbe(&probe);
  net.setFaultPolicy(FaultPolicy::kReroute);
  net.scheduleLinkDown(0, deadUplink);
  const MsgId m = net.addMessage(0, 4, 32 * 1024, route);
  net.release(m, 0);
  net.run();

  EXPECT_EQ(net.stats().messagesDelivered, 1u);
  EXPECT_EQ(net.stats().messagesDropped, 0u);
  EXPECT_EQ(net.stats().segmentsStranded, 0u);
  EXPECT_GE(net.stats().segmentsRerouted, 1u);
  EXPECT_EQ(probe.rerouted, net.stats().segmentsRerouted);
  EXPECT_GT(net.deliveryTime(m), 0u);
}

TEST(FaultInjection, ReroutePolicyStrandsWhenNoUpPortSurvives) {
  // w2 = 1: reroute has no live alternative, so it degrades to strand.
  const Topology topo(xgft::xgft2(4, 4, 1));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Bytes bytes = 64 * 1024;
  const TimeNs mid = healthyMakespan(topo, *router, 0, 4, bytes) / 2;

  Network net(topo, SimConfig{});
  net.setFaultPolicy(FaultPolicy::kReroute);
  net.scheduleLinkDown(mid, topo.upLink(1, 0, 0));
  const MsgId m = net.addMessage(0, 4, bytes, router->route(0, 4));
  net.release(m, 0);
  EXPECT_NO_THROW(net.run());
  EXPECT_EQ(net.stats().messagesDelivered, 0u);
  EXPECT_EQ(net.stats().messagesDropped, 1u);
  EXPECT_GE(net.stats().segmentsStranded, 1u);
  (void)m;
}

TEST(FaultInjection, DownTimeAccruesAcrossPartialRunBoundaries) {
  // The satellite edge case: a timed plan whose restore fires only after
  // several run(until) resumes.  linkDownNs must be meaningful (and
  // monotone) at every boundary, not only at the end.
  const Topology topo(xgft::xgft2(4, 4, 1));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const xgft::LinkId hostLink = topo.upLink(0, 0, 0);

  Network net(topo, SimConfig{});
  net.setFaultPolicy(FaultPolicy::kWait);
  net.scheduleLinkDown(10'000, hostLink);
  net.scheduleLinkUp(200'000, hostLink);
  const MsgId m = net.addMessage(0, 1, 4096, router->route(0, 1));
  net.release(m, 20'000);  // Released mid-outage; waits for the restore.

  // The clock sits at the last processed event, so down-time folds up to
  // there at each boundary (monotone, never forgotten between resumes).
  net.run(50'000);  // Processes down@10k and the 20k release.
  EXPECT_TRUE(net.linkIsDown(hostLink));
  EXPECT_EQ(net.stats().linkDownNs, 10'000u);
  net.run(120'000);  // No events in (20k, 120k]: still down, no double count.
  EXPECT_TRUE(net.linkIsDown(hostLink));
  EXPECT_EQ(net.stats().linkDownNs, 10'000u);
  net.run();
  EXPECT_FALSE(net.linkIsDown(hostLink));
  EXPECT_EQ(net.stats().linkDownNs, 190'000u);
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
  EXPECT_EQ(net.stats().messagesDropped, 0u);
  EXPECT_GE(net.deliveryTime(m), 200'000u);
}

TEST(FaultInjection, TransitionsAreIdempotentAndProbeSeesEachOnce) {
  const Topology topo(xgft::xgft2(4, 4, 1));
  Network net(topo, SimConfig{});
  FaultProbe probe;
  net.setProbe(&probe);
  const xgft::LinkId link = topo.upLink(1, 0, 0);
  net.scheduleLinkDown(0, link);
  net.scheduleLinkDown(0, link);  // Duplicate: no-op at processing time.
  net.scheduleLinkUp(100, link);
  net.scheduleLinkUp(100, link);
  net.run();
  EXPECT_EQ(probe.downs, 1u);
  EXPECT_EQ(probe.ups, 1u);
  EXPECT_EQ(net.stats().linkDownNs, 100u);  // Counted once, not twice.
}

TEST(FaultInjection, SchedulingValidatesLinkAndTime) {
  const Topology topo(xgft::xgft2(4, 4, 1));
  Network net(topo, SimConfig{});
  EXPECT_THROW(net.scheduleLinkDown(0, topo.numLinks()),
               std::invalid_argument);
  EXPECT_THROW(net.scheduleLinkUp(0, topo.numLinks() + 5),
               std::invalid_argument);
  // Once the clock has advanced past t (by processing an event), a
  // transition in the past is rejected.
  net.scheduleLinkDown(1'000, 0);
  net.run();
  EXPECT_THROW(net.scheduleLinkUp(500, 0), std::invalid_argument);
}

TEST(FaultInjection, HealthyRunsKeepFaultCountersZero) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  Network net(topo, SimConfig{});
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
    const xgft::NodeIndex d = (s + 5) % topo.numHosts();
    net.release(net.addMessage(s, d, 8192, router->route(s, d)), 0);
  }
  net.run();
  EXPECT_EQ(net.stats().segmentsRerouted, 0u);
  EXPECT_EQ(net.stats().segmentsStranded, 0u);
  EXPECT_EQ(net.stats().messagesDropped, 0u);
  EXPECT_EQ(net.stats().linkDownNs, 0u);
}

}  // namespace
}  // namespace sim
