// Tests for per-segment multipath spraying (the packet-granular randomized
// routing extension).
#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "trace/harness.hpp"
#include "xgft/route.hpp"

namespace sim {
namespace {

using xgft::Topology;

std::vector<xgft::Route> allRoutes(const Topology& topo, xgft::NodeIndex s,
                                   xgft::NodeIndex d) {
  std::vector<xgft::Route> routes;
  for (xgft::Count c = 0; c < topo.numNcas(s, d); ++c) {
    routes.push_back(routeViaNca(topo, s, d, c));
  }
  return routes;
}

TEST(Multipath, RequiresAtLeastOneRoute) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Network net(topo, SimConfig{});
  EXPECT_THROW(
      net.addMessageMultipath(0, 15, 100, {}, SprayPolicy::kRoundRobin),
      std::invalid_argument);
}

TEST(Multipath, SprayedMessageDeliversAllSegments) {
  const Topology topo(xgft::xgft2(4, 4, 4));
  Network net(topo, SimConfig{});
  const MsgId m = net.addMessageMultipath(
      0, 15, 64 * 1024, allRoutes(topo, 0, 15), SprayPolicy::kRoundRobin);
  net.release(m, 0);
  net.run();
  EXPECT_EQ(net.stats().segmentsDelivered, 64u);
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

TEST(Multipath, RoundRobinUsesEveryRoute) {
  // With 4 candidate roots and RR spraying, all 4 root up-links of the
  // source switch carry traffic.
  const Topology topo(xgft::xgft2(4, 4, 4));
  SimConfig cfg;
  cfg.headerBytes = 0;
  Network net(topo, cfg);
  const MsgId m = net.addMessageMultipath(
      0, 15, 64 * 1024, allRoutes(topo, 0, 15), SprayPolicy::kRoundRobin);
  net.release(m, 0);
  net.run();
  for (std::uint32_t p = 0; p < 4; ++p) {
    // Level-1 switch 0, up ports start at m1 = 4.
    const std::uint32_t gport = net.globalPort(1, 0, 4 + p);
    EXPECT_EQ(net.wireBusyNs(gport), 16u * 4096) << "up port " << p;
  }
}

TEST(Multipath, RandomPolicyIsDeterministicPerSeed) {
  const Topology topo(xgft::xgft2(4, 4, 4));
  const auto runOnce = [&](std::uint64_t seed) {
    Network net(topo, SimConfig{});
    const MsgId m =
        net.addMessageMultipath(0, 15, 64 * 1024, allRoutes(topo, 0, 15),
                                SprayPolicy::kRandom, seed);
    net.release(m, 0);
    net.run();
    return net.stats().lastDeliveryNs;
  };
  EXPECT_EQ(runOnce(7), runOnce(7));
}

TEST(Multipath, FirstHopMustMatch) {
  // On a tree with w1 = 2 hosts have two NIC ports; routes differing in
  // up[0] are rejected.
  const Topology topo(xgft::Topology(xgft::Params({4, 4}, {2, 2})));
  Network net(topo, SimConfig{});
  std::vector<xgft::Route> routes = allRoutes(topo, 0, 15);
  ASSERT_GE(routes.size(), 2u);
  ASSERT_NE(routes[0].up[0], routes[1].up[0]);  // Choice varies up[0] first.
  EXPECT_THROW(net.addMessageMultipath(0, 15, 1024, routes,
                                       SprayPolicy::kRoundRobin),
               std::invalid_argument);
}

TEST(Multipath, SprayedPermutationBeatsWorstStaticChoice) {
  // All flows forced through one root vs sprayed over all roots: spraying
  // must be far faster.
  const Topology topo(xgft::xgft2(8, 8, 8));
  const patterns::Permutation perm = patterns::shiftPermutation(64, 8);
  const auto makespan = [&](bool sprayed) {
    Network net(topo, SimConfig{});
    for (patterns::Rank s = 0; s < 64; ++s) {
      const xgft::NodeIndex d = perm(s);
      MsgId m = 0;
      if (sprayed) {
        m = net.addMessageMultipath(s, d, 32 * 1024, allRoutes(topo, s, d),
                                    SprayPolicy::kRoundRobin);
      } else {
        m = net.addMessage(s, d, 32 * 1024, routeViaNca(topo, s, d, 0));
      }
      net.release(m, 0);
    }
    net.run();
    return net.stats().lastDeliveryNs;
  };
  EXPECT_LT(makespan(true) * 3, makespan(false));
}

TEST(Multipath, OutOfOrderSegmentsReassemble) {
  // Force out-of-order arrival deterministically: two candidate routes,
  // one pre-congested by a long blocking message, round-robin spraying.
  // Even-indexed segments crawl behind the blocker while odd ones race
  // ahead, so delivery order != injection order; the adapter's reassembly
  // must still complete the message exactly once, after its slowest
  // segment.
  const Topology topo(xgft::xgft2(4, 4, 2));
  SimConfig cfg;
  cfg.headerBytes = 0;
  Network net(topo, cfg);
  std::vector<xgft::Route> routes = allRoutes(topo, 0, 15);
  ASSERT_EQ(routes.size(), 2u);
  // Blocker: saturates root 0's down path toward host 15's switch.
  const MsgId blocker =
      net.addMessage(1, 14, 64 * 1024, routeViaNca(topo, 1, 14, 0));
  const MsgId sprayed = net.addMessageMultipath(
      0, 15, 8 * 1024, routes, SprayPolicy::kRoundRobin);
  net.release(blocker, 0);
  net.release(sprayed, 0);
  net.run();
  EXPECT_EQ(net.stats().messagesDelivered, 2u);
  EXPECT_EQ(net.stats().segmentsDelivered, 64u + 8u);
  // The sprayed message is gated by its congested even segments: it cannot
  // have finished at the uncontended single-route time.
  Network clean(topo, cfg);
  const MsgId alone = clean.addMessageMultipath(
      0, 15, 8 * 1024, routes, SprayPolicy::kRoundRobin);
  clean.release(alone, 0);
  clean.run();
  EXPECT_GT(net.deliveryTime(sprayed), clean.deliveryTime(alone));
}

TEST(Multipath, MaxPathsAboveRouteCountUsesEveryRouteOnce) {
  // spray.maxPaths far above numNcas: the replayer must enumerate each of
  // the n NCA routes exactly once (no duplicates, no out-of-range choice)
  // and behave identically to maxPaths == n.
  const Topology topo(xgft::xgft2(4, 4, 4));  // numNcas == 4 per pair.
  const auto app = trace::scaleMessages(
      patterns::wrfHalo(4, 4, 64 * 1024), 0.5);
  const auto runWith = [&](std::uint32_t maxPaths) {
    trace::SprayConfig spray;
    spray.enabled = true;
    spray.maxPaths = maxPaths;
    return trace::runAppSprayed(topo, app, spray);
  };
  const trace::RunResult wide = runWith(64);
  const trace::RunResult exact = runWith(4);
  EXPECT_EQ(wide.makespanNs, exact.makespanNs);
  EXPECT_EQ(wide.stats.eventsProcessed, exact.stats.eventsProcessed);
  EXPECT_EQ(wide.stats.segmentsDelivered, exact.stats.segmentsDelivered);
  EXPECT_EQ(wide.stats.messagesDelivered, app.phases[0].size());
}

TEST(Multipath, MaxPathsOfOneDegeneratesToSingleRoute) {
  // The boundary below: spraying with maxPaths == 1 selects one seeded
  // route per pair and still delivers everything.
  const Topology topo(xgft::xgft2(4, 4, 4));
  const auto app = trace::scaleMessages(
      patterns::wrfHalo(4, 4, 64 * 1024), 0.5);
  trace::SprayConfig spray;
  spray.enabled = true;
  spray.maxPaths = 1;
  const trace::RunResult r = trace::runAppSprayed(topo, app, spray);
  EXPECT_GT(r.makespanNs, 0u);
  EXPECT_EQ(r.stats.messagesDelivered, app.phases[0].size());
}

TEST(Multipath, HarnessSprayRunsEndToEnd) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  const auto app = trace::scaleMessages(
      patterns::wrfHalo(8, 8, 64 * 1024), 0.5);
  trace::SprayConfig spray;
  spray.enabled = true;
  const trace::RunResult r = trace::runAppSprayed(topo, app, spray);
  EXPECT_GT(r.makespanNs, 0u);
  EXPECT_EQ(r.stats.messagesDelivered, app.phases[0].size());
}

}  // namespace
}  // namespace sim
