// Tests for Network::run(until) partial-run semantics: a bounded run must
// stop without disturbing queued work, resume exactly where it left off,
// and produce the identical event outcome as one unbounded run — the
// contract the windowed open-loop measurement layer (trace/openloop.hpp)
// is built on.
#include <gtest/gtest.h>

#include <vector>

#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "xgft/topology.hpp"

namespace sim {
namespace {

using xgft::Topology;

/// Records every completion in arrival order.
class Recorder : public TrafficSink {
 public:
  void onMessageDelivered(MsgId msg, TimeNs t) override {
    deliveries.emplace_back(msg, t);
  }
  std::vector<std::pair<MsgId, TimeNs>> deliveries;
};

/// A contended workload: every host sends to host (i + 1) % n twice.
void injectRing(Network& net, const Topology& topo,
                const routing::Router& router) {
  const auto n = topo.numHosts();
  for (std::uint64_t round = 0; round < 2; ++round) {
    for (xgft::NodeIndex s = 0; s < n; ++s) {
      const xgft::NodeIndex d = (s + 1) % n;
      const MsgId m = net.addMessage(s, d, 8 * 1024, router.route(s, d));
      net.release(m, round * 1000);
    }
  }
}

TEST(PartialRun, ChoppedRunMatchesOneShot) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);

  Recorder oneShot;
  Network full(topo, SimConfig{});
  full.setSink(&oneShot);
  injectRing(full, topo, *router);
  full.run();

  Recorder chopped;
  Network partial(topo, SimConfig{});
  partial.setSink(&chopped);
  injectRing(partial, topo, *router);
  // Resume across several arbitrary boundaries, including boundaries where
  // nothing happens and one boundary beyond the workload's end.
  const TimeNs makespan = full.stats().lastDeliveryNs;
  partial.run(1);
  partial.run(makespan / 3);
  partial.run(makespan / 3);  // Idempotent: nothing left before the bound.
  partial.run(2 * makespan / 3);
  partial.run(makespan + 1'000'000);
  partial.run();

  // Identical deliveries in identical order at identical times, and
  // identical aggregate counters: the boundary is invisible.
  EXPECT_EQ(chopped.deliveries, oneShot.deliveries);
  EXPECT_EQ(partial.stats().eventsProcessed, full.stats().eventsProcessed);
  EXPECT_EQ(partial.stats().segmentsDelivered, full.stats().segmentsDelivered);
  EXPECT_EQ(partial.stats().maxOutputQueueDepth,
            full.stats().maxOutputQueueDepth);
  EXPECT_EQ(partial.now(), full.now());
}

TEST(PartialRun, BoundedRunStopsBeforeLaterEvents) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  Network net(topo, SimConfig{});
  Recorder sink;
  net.setSink(&sink);
  const MsgId early = net.addMessage(0, 5, 1024, router->route(0, 5));
  const MsgId late = net.addMessage(5, 0, 1024, router->route(5, 0));
  net.release(early, 0);
  net.release(late, 10'000'000);

  net.run(5'000'000);
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].first, early);
  // The bounded run does not advance the clock past the last event served.
  EXPECT_LE(net.now(), 5'000'000u);

  // New work may be scheduled between partial runs, even before the next
  // queued event.
  const MsgId mid = net.addMessage(1, 2, 1024, router->route(1, 2));
  net.release(mid, 6'000'000);
  net.run();
  ASSERT_EQ(sink.deliveries.size(), 3u);
  EXPECT_EQ(sink.deliveries[1].first, mid);
  EXPECT_EQ(sink.deliveries[2].first, late);
}

TEST(PartialRun, StrandedCheckOnlyFiresAtDrain) {
  // A bounded run that stops mid-flight leaves released-but-undelivered
  // messages; that must not trip the stranded-traffic check (which guards
  // the fully drained queue only).
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  Network net(topo, SimConfig{});
  const MsgId m = net.addMessage(0, 9, 64 * 1024, router->route(0, 9));
  net.release(m, 0);
  EXPECT_NO_THROW(net.run(100));  // Far too early for delivery.
  EXPECT_EQ(net.stats().messagesDelivered, 0u);
  EXPECT_NO_THROW(net.run());
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

}  // namespace
}  // namespace sim
