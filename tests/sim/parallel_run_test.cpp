// Tests for the conservative parallel engine (sim/shard.hpp): bit-exact
// equivalence with the serial core across shard counts — stats, delivery
// times, per-wire busy times, sink call order, run(until) resume points —
// plus the planner's fallback conditions and the mid-run fault abort.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "sim/probe.hpp"
#include "xgft/rng.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace sim {
namespace {

using xgft::Topology;

/// A completion recorder whose deliveries are pure observations — the
/// deferrable contract the parallel engine needs from a sink.
class PassiveRecorder : public TrafficSink {
 public:
  void onMessageDelivered(MsgId msg, TimeNs t) override {
    deliveries.emplace_back(msg, t);
  }
  [[nodiscard]] bool deliveriesDeferrable() const override { return true; }
  std::vector<std::pair<MsgId, TimeNs>> deliveries;
};

/// Every NCA route of an (s, d) pair, in candidate order.
std::vector<xgft::Route> allRoutes(const Topology& topo, xgft::NodeIndex s,
                                   xgft::NodeIndex d) {
  std::vector<xgft::Route> routes;
  for (xgft::Count c = 0; c < topo.numNcas(s, d); ++c) {
    routes.push_back(routeViaNca(topo, s, d, c));
  }
  return routes;
}

/// A deterministic mixed workload: adaptive, sprayed-set and self messages
/// with hashed sources/destinations/sizes, released over [0, 40 us)
/// (dense enough that conservative windows hold real parallel batches).
void loadWorkload(Network& net, const Topology& topo, std::uint32_t count) {
  const auto hosts = static_cast<std::uint32_t>(topo.numHosts());
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto src =
        static_cast<xgft::NodeIndex>(xgft::hashMix(11, i, 0) % hosts);
    auto dst = static_cast<xgft::NodeIndex>(xgft::hashMix(11, i, 1) % hosts);
    if (i % 17 == 0) dst = src;  // Keep some local deliveries in the mix.
    const Bytes bytes = 1024 + 4096 * (xgft::hashMix(11, i, 2) % 4);
    const TimeNs release = xgft::hashMix(11, i, 3) % 40'000;
    MsgId m = 0;
    if (src == dst) {
      m = net.addMessage(src, dst, bytes, xgft::Route{});
    } else if (i % 3 == 0) {
      m = net.addMessageAdaptive(src, dst, bytes);
    } else {
      const RouteSetId set = net.internRoutes(src, dst,
                                              allRoutes(topo, src, dst));
      m = net.addMessageSet(src, dst, bytes, set,
                            i % 3 == 1 ? SprayPolicy::kRoundRobin
                                       : SprayPolicy::kRandom,
                            /*spraySeed=*/99);
    }
    net.release(m, release);
  }
}

/// Everything the serial engine observably produces for one run.
struct RunOutput {
  NetworkStats stats;
  TimeNs end = 0;
  std::vector<TimeNs> delivery;
  std::vector<std::uint64_t> wire;
  std::vector<std::pair<MsgId, TimeNs>> sinkSeq;
};

void expectSameStats(const NetworkStats& a, const NetworkStats& b) {
  EXPECT_EQ(a.segmentsInjected, b.segmentsInjected);
  EXPECT_EQ(a.segmentsDelivered, b.segmentsDelivered);
  EXPECT_EQ(a.messagesDelivered, b.messagesDelivered);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  EXPECT_EQ(a.lastDeliveryNs, b.lastDeliveryNs);
  EXPECT_EQ(a.maxOutputQueueDepth, b.maxOutputQueueDepth);
  EXPECT_EQ(a.maxInputQueueDepth, b.maxInputQueueDepth);
  EXPECT_EQ(a.segmentsRerouted, b.segmentsRerouted);
  EXPECT_EQ(a.segmentsStranded, b.segmentsStranded);
  EXPECT_EQ(a.messagesDropped, b.messagesDropped);
  EXPECT_EQ(a.linkDownNs, b.linkDownNs);
}

void expectSameOutput(const RunOutput& serial, const RunOutput& parallel) {
  expectSameStats(serial.stats, parallel.stats);
  EXPECT_EQ(serial.end, parallel.end);
  ASSERT_EQ(serial.delivery.size(), parallel.delivery.size());
  for (std::size_t m = 0; m < serial.delivery.size(); ++m) {
    EXPECT_EQ(serial.delivery[m], parallel.delivery[m]) << "message " << m;
  }
  ASSERT_EQ(serial.wire.size(), parallel.wire.size());
  for (std::size_t p = 0; p < serial.wire.size(); ++p) {
    EXPECT_EQ(serial.wire[p], parallel.wire[p]) << "gport " << p;
  }
  EXPECT_EQ(serial.sinkSeq, parallel.sinkSeq);
}

/// The large test fabric: XGFT(2; 16,16; 1,10), 256 hosts, 832 ports —
/// comfortably above the planner's minimum cut size.
xgft::Params bigParams() { return xgft::xgft2(16, 16, 10); }

RunOutput runWorkload(const Topology& topo, std::uint32_t messages,
                      std::uint32_t simThreads,
                      const std::vector<TimeNs>& resumePoints = {}) {
  Network net(topo, SimConfig{});
  PassiveRecorder rec;
  net.setSink(&rec);
  loadWorkload(net, topo, messages);
  for (const TimeNs until : resumePoints) {
    if (simThreads <= 1) {
      net.run(until);
    } else {
      runParallel(net, until, simThreads);
    }
  }
  if (simThreads <= 1) {
    net.run();
  } else {
    runParallel(net, std::numeric_limits<TimeNs>::max(), simThreads);
  }
  RunOutput out;
  out.stats = net.stats();
  out.end = net.now();
  for (MsgId m = 0; m < messages; ++m) {
    out.delivery.push_back(net.deliveryTime(m));
  }
  for (std::uint32_t p = 0; p < net.numGlobalPorts(); ++p) {
    out.wire.push_back(net.wireBusyNs(p));
  }
  out.sinkSeq = std::move(rec.deliveries);
  return out;
}

TEST(ParallelRun, PlansShardingOnTheBigFabric) {
  const Topology topo(bigParams());
  Network net(topo, SimConfig{});
  const ParallelPlan plan = planParallelRun(net, 4);
  ASSERT_TRUE(plan.parallel);
  EXPECT_EQ(plan.shards, 4u);
  // W = min(switchLatencyNs = 100, serializationNs(0) = 32 at 2 Gb/s with
  // an 8 B header) — the serialization of a bare header bounds it.
  EXPECT_EQ(plan.windowNs, 32u);
  EXPECT_EQ(plan.fallbackReason, nullptr);
}

TEST(ParallelRun, ByteIdenticalAcrossShardCounts) {
  const Topology topo(bigParams());
  const RunOutput serial = runWorkload(topo, 1200, 1);
  // All messages must actually flow for the comparison to mean anything.
  EXPECT_EQ(serial.stats.messagesDelivered, 1200u);
  for (const std::uint32_t threads : {2u, 4u, 7u}) {
    SCOPED_TRACE(threads);
    expectSameOutput(serial, runWorkload(topo, 1200, threads));
  }
}

TEST(ParallelRun, ByteIdenticalAcrossRunUntilResumes) {
  const Topology topo(bigParams());
  // Boundaries in mid-flight, at an exact event-free instant, and beyond
  // the drain; the engine must leave the queue in the serial state at
  // every one of them.
  const std::vector<TimeNs> resumes = {20'000, 20'000, 45'001, 10'000'000};
  const RunOutput serial = runWorkload(topo, 800, 1, resumes);
  for (const std::uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    expectSameOutput(serial, runWorkload(topo, 800, threads, resumes));
  }
}

TEST(ParallelRun, WorkloadActuallyExercisesShardWorkers) {
  // Guards the identity tests against silently degenerating into the
  // inline small-batch path: a meaningful share of events must run on
  // shard workers for the comparisons above to prove anything.
  const Topology topo(bigParams());
  Network net(topo, SimConfig{});
  loadWorkload(net, topo, 1200);
  ParallelRunStats st;
  runParallel(net, std::numeric_limits<TimeNs>::max(), 4, &st);
  EXPECT_FALSE(st.fellBack);
  EXPECT_FALSE(st.aborted);
  EXPECT_GT(st.parallelBatches, 100u);
  EXPECT_GT(st.parallelEvents, 10'000u);
  EXPECT_GT(st.parallelEvents + st.inlineEvents + st.serialEvents, 50'000u);
}

TEST(ParallelRun, FallsBackWithOneThread) {
  const Topology topo(bigParams());
  Network net(topo, SimConfig{});
  const ParallelPlan plan = planParallelRun(net, 1);
  EXPECT_FALSE(plan.parallel);
  EXPECT_NE(plan.fallbackReason, nullptr);
}

TEST(ParallelRun, FallsBackOnSmallTopology) {
  const Topology topo(xgft::xgft2(4, 4, 2));  // 48 ports.
  Network net(topo, SimConfig{});
  EXPECT_FALSE(planParallelRun(net, 4).parallel);
}

TEST(ParallelRun, FallsBackOnZeroLookahead) {
  const Topology topo(bigParams());
  SimConfig cfg;
  cfg.switchLatencyNs = 0;  // The ideal-crossbar configuration.
  Network net(topo, cfg);
  EXPECT_FALSE(planParallelRun(net, 4).parallel);
}

TEST(ParallelRun, FallsBackOnNonDeferrableSink) {
  const Topology topo(bigParams());
  Network net(topo, SimConfig{});
  class ClosedLoopSink : public TrafficSink {
   public:
    void onMessageDelivered(MsgId, TimeNs) override {}
  } sink;
  net.setSink(&sink);
  EXPECT_FALSE(planParallelRun(net, 4).parallel);
  PassiveRecorder passive;
  net.setSink(&passive);
  EXPECT_TRUE(planParallelRun(net, 4).parallel);
}

TEST(ParallelRun, FallsBackOnAttachedProbe) {
  const Topology topo(bigParams());
  Network net(topo, SimConfig{});
  class NullProbe : public Probe {
  } probe;
  net.setProbe(&probe);
  EXPECT_FALSE(planParallelRun(net, 4).parallel);
  net.setProbe(nullptr);
  EXPECT_TRUE(planParallelRun(net, 4).parallel);
}

TEST(ParallelRun, FallsBackOnScheduledFaults) {
  const Topology topo(bigParams());
  Network net(topo, SimConfig{});
  net.setFaultPolicy(FaultPolicy::kWait);
  net.scheduleLinkDown(1'000, topo.upLink(0, 0, 0));
  EXPECT_FALSE(planParallelRun(net, 4).parallel);
}

TEST(ParallelRun, PreScheduledFaultRunsIdenticallyViaFallback) {
  // runParallel with a pre-scheduled outage must quietly take the serial
  // path and still match the serial run byte for byte.
  const Topology topo(bigParams());
  const xgft::LinkId link = topo.upLink(1, 3, 2);
  const auto run = [&](std::uint32_t threads) {
    Network net(topo, SimConfig{});
    net.setFaultPolicy(FaultPolicy::kWait);
    net.scheduleLinkDown(20'000, link);
    net.scheduleLinkUp(120'000, link);
    loadWorkload(net, topo, 200);
    if (threads <= 1) {
      net.run();
    } else {
      runParallel(net, std::numeric_limits<TimeNs>::max(), threads);
    }
    RunOutput out;
    out.stats = net.stats();
    out.end = net.now();
    for (MsgId m = 0; m < 200; ++m) {
      out.delivery.push_back(net.deliveryTime(m));
    }
    return out;
  };
  const RunOutput serial = run(1);
  const RunOutput parallel = run(4);
  expectSameStats(serial.stats, parallel.stats);
  EXPECT_EQ(serial.end, parallel.end);
  EXPECT_EQ(serial.delivery, parallel.delivery);
  EXPECT_GT(serial.stats.linkDownNs, 0u);
}

TEST(ParallelRun, MidRunFaultScheduleAbortsToSerialIdentically) {
  // A healthy-looking run whose callback schedules a kLinkDown mid-run:
  // the parallel engine starts sharded, hits the callback, and must hand
  // the rest to the serial core with the total order intact.
  const Topology topo(bigParams());
  const xgft::LinkId link = topo.upLink(1, 5, 4);
  const auto run = [&](std::uint32_t threads) {
    Network net(topo, SimConfig{});
    net.setFaultPolicy(FaultPolicy::kWait);
    PassiveRecorder rec;
    net.setSink(&rec);
    loadWorkload(net, topo, 300);
    net.scheduleCallback(60'000, [&net, link] {
      net.scheduleLinkDown(75'000, link);
      net.scheduleLinkUp(110'000, link);
    });
    if (threads <= 1) {
      net.run();
    } else {
      EXPECT_TRUE(planParallelRun(net, threads).parallel);
      ParallelRunStats st;
      runParallel(net, std::numeric_limits<TimeNs>::max(), threads, &st);
      // The run must have started sharded and handed off at the fault.
      EXPECT_FALSE(st.fellBack);
      EXPECT_TRUE(st.aborted);
      EXPECT_GT(st.parallelEvents, 0u);
    }
    RunOutput out;
    out.stats = net.stats();
    out.end = net.now();
    for (MsgId m = 0; m < 300; ++m) {
      out.delivery.push_back(net.deliveryTime(m));
    }
    for (std::uint32_t p = 0; p < net.numGlobalPorts(); ++p) {
      out.wire.push_back(net.wireBusyNs(p));
    }
    out.sinkSeq = std::move(rec.deliveries);
    return out;
  };
  const RunOutput serial = run(1);
  EXPECT_GT(serial.stats.linkDownNs, 0u);
  for (const std::uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    expectSameOutput(serial, run(threads));
  }
}

}  // namespace
}  // namespace sim
