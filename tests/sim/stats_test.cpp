// Tests for the NetworkStats validity contract documented in network.hpp:
// every field is meaningful at any run(until) boundary (not only after a
// full drain), all fields are monotone non-decreasing across resumes, the
// chopped totals equal a one-shot run's, and an attached sampling probe
// changes none of it.
#include <gtest/gtest.h>

#include <vector>

#include "obs/recorder.hpp"
#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "xgft/topology.hpp"

namespace sim {
namespace {

using xgft::Topology;

void injectHotspot(Network& net, const Topology& topo,
                   const routing::Router& router) {
  for (xgft::NodeIndex s = 1; s < topo.numHosts(); ++s) {
    const MsgId m = net.addMessage(s, 0, 32 * 1024, router.route(s, 0));
    net.release(m, 0);
  }
}

/// Runs @p net in fixed-size time slices until all 15 hotspot messages are
/// delivered (plus one unbounded run for trailing wire-free events),
/// snapshotting stats at every boundary.
std::vector<NetworkStats> runChopped(Network& net, TimeNs slice) {
  std::vector<NetworkStats> snapshots;
  for (TimeNs until = slice; net.stats().messagesDelivered < 15;
       until += slice) {
    net.run(until);
    snapshots.push_back(net.stats());
  }
  net.run();
  snapshots.push_back(net.stats());
  return snapshots;
}

void expectMonotone(const std::vector<NetworkStats>& snapshots) {
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    const NetworkStats& prev = snapshots[i - 1];
    const NetworkStats& cur = snapshots[i];
    EXPECT_GE(cur.segmentsInjected, prev.segmentsInjected) << "slice " << i;
    EXPECT_GE(cur.segmentsDelivered, prev.segmentsDelivered) << "slice " << i;
    EXPECT_GE(cur.messagesDelivered, prev.messagesDelivered) << "slice " << i;
    EXPECT_GE(cur.eventsProcessed, prev.eventsProcessed) << "slice " << i;
    EXPECT_GE(cur.lastDeliveryNs, prev.lastDeliveryNs) << "slice " << i;
    EXPECT_GE(cur.maxOutputQueueDepth, prev.maxOutputQueueDepth)
        << "slice " << i;
    EXPECT_GE(cur.maxInputQueueDepth, prev.maxInputQueueDepth)
        << "slice " << i;
  }
}

TEST(NetworkStats, MonotoneAcrossResumesAndFinalEqualsOneShot) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);

  Network oneShot(topo, SimConfig{});
  injectHotspot(oneShot, topo, *router);
  oneShot.run();
  const NetworkStats full = oneShot.stats();

  Network chopped(topo, SimConfig{});
  injectHotspot(chopped, topo, *router);
  const std::vector<NetworkStats> snapshots = runChopped(chopped, 10'000);
  ASSERT_GT(snapshots.size(), 3u) << "slice too coarse to exercise resumes";
  expectMonotone(snapshots);

  const NetworkStats& last = snapshots.back();
  EXPECT_EQ(last.segmentsInjected, full.segmentsInjected);
  EXPECT_EQ(last.segmentsDelivered, full.segmentsDelivered);
  EXPECT_EQ(last.messagesDelivered, full.messagesDelivered);
  EXPECT_EQ(last.eventsProcessed, full.eventsProcessed);
  EXPECT_EQ(last.lastDeliveryNs, full.lastDeliveryNs);
  EXPECT_EQ(last.maxOutputQueueDepth, full.maxOutputQueueDepth);
  EXPECT_EQ(last.maxInputQueueDepth, full.maxInputQueueDepth);
}

TEST(NetworkStats, MidRunSnapshotsAreCoherent) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  Network net(topo, SimConfig{});
  injectHotspot(net, topo, *router);
  for (const NetworkStats& s : runChopped(net, 10'000)) {
    // Conservation holds at every boundary, not only after the drain.
    EXPECT_LE(s.segmentsDelivered, s.segmentsInjected);
    EXPECT_LE(s.messagesDelivered, 15u);
    EXPECT_LE(s.lastDeliveryNs, net.now());
  }
}

TEST(NetworkStats, SamplingProbeDoesNotDisturbPartialRuns) {
  // The kSample calendar event must neither count as a processed event nor
  // change where run(until) stops.
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);

  Network plain(topo, SimConfig{});
  injectHotspot(plain, topo, *router);
  const std::vector<NetworkStats> bare = runChopped(plain, 10'000);

  obs::RecorderConfig cfg;
  cfg.samplePeriodNs = 777;  // Misaligned with both events and slices.
  obs::Recorder rec(cfg);
  Network observed(topo, SimConfig{});
  observed.setProbe(&rec);
  injectHotspot(observed, topo, *router);
  const std::vector<NetworkStats> probed = runChopped(observed, 10'000);

  ASSERT_EQ(bare.size(), probed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].eventsProcessed, probed[i].eventsProcessed)
        << "slice " << i;
    EXPECT_EQ(bare[i].segmentsDelivered, probed[i].segmentsDelivered)
        << "slice " << i;
    EXPECT_EQ(bare[i].lastDeliveryNs, probed[i].lastDeliveryNs)
        << "slice " << i;
  }
  EXPECT_GT(rec.series().size(), 0u);
}

}  // namespace
}  // namespace sim
