// Tests for the interned-route arenas: content deduplication, span
// stability, and the set layer multipath messages index into.
#include "sim/route_store.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sim {
namespace {

TEST(RouteStore, DeduplicatesIdenticalPaths) {
  RouteStore store;
  const std::vector<std::uint32_t> a{1, 2, 3};
  const std::vector<std::uint32_t> b{1, 2, 3};
  const std::vector<std::uint32_t> c{1, 2, 4};
  const RouteId ra = store.internPath(a);
  EXPECT_EQ(store.internPath(b), ra);
  EXPECT_NE(store.internPath(c), ra);
  EXPECT_EQ(store.numPaths(), 2u);
}

TEST(RouteStore, PrefixesAndExtensionsAreDistinct) {
  RouteStore store;
  const std::vector<std::uint32_t> shortPath{1, 2};
  const std::vector<std::uint32_t> longPath{1, 2, 3};
  EXPECT_NE(store.internPath(shortPath), store.internPath(longPath));
  EXPECT_EQ(store.path(store.internPath(shortPath)).size(), 2u);
  EXPECT_EQ(store.path(store.internPath(longPath)).size(), 3u);
}

TEST(RouteStore, PathSpansSurviveArenaGrowth) {
  RouteStore store;
  const RouteId first = store.internPath(std::vector<std::uint32_t>{7, 8, 9});
  // Force many reallocation-sized appends.
  for (std::uint32_t i = 0; i < 10000; ++i) {
    (void)store.internPath(std::vector<std::uint32_t>{i, i + 1, i + 2});
  }
  const std::span<const std::uint32_t> p = store.path(first);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 7u);
  EXPECT_EQ(p[2], 9u);
}

TEST(RouteStore, SetsDeduplicateByContentAndKeepOrder) {
  RouteStore store;
  const RouteId r0 = store.internPath(std::vector<std::uint32_t>{1});
  const RouteId r1 = store.internPath(std::vector<std::uint32_t>{2});
  const std::vector<RouteId> ab{r0, r1};
  const std::vector<RouteId> ba{r1, r0};
  const RouteSetId sab = store.internSet(3, ab);
  EXPECT_EQ(store.internSet(3, ab), sab);
  // Order matters for spraying: a reversed set is a different set.
  EXPECT_NE(store.internSet(3, ba), sab);
  const std::span<const RouteId> got = store.set(sab);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], r0);
  EXPECT_EQ(got[1], r1);
  EXPECT_EQ(store.setFirstUp(sab), 3u);
}

TEST(RouteStore, SetsWithDifferentNicPortsStayDistinct) {
  // Adaptive messages share one (empty) tail path yet must keep one set per
  // source NIC port: the port participates in the set's interned content.
  RouteStore store;
  const RouteId tail = store.internPath(std::vector<std::uint32_t>{});
  const std::vector<RouteId> one{tail};
  const RouteSetId s0 = store.internSet(0, one);
  const RouteSetId s1 = store.internSet(1, one);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(store.internSet(0, one), s0);
  EXPECT_EQ(store.setFirstUp(s0), 0u);
  EXPECT_EQ(store.setFirstUp(s1), 1u);
  EXPECT_TRUE(store.set(s0).size() == 1 && store.set(s0)[0] == tail);
}

TEST(RouteStore, ManyCollidingLengthsStayConsistent) {
  // Same multiset of entries in different orders/lengths must never alias.
  RouteStore store;
  std::vector<RouteId> ids;
  for (std::uint32_t len = 1; len <= 64; ++len) {
    std::vector<std::uint32_t> path(len, 5);
    ids.push_back(store.internPath(path));
  }
  for (std::uint32_t len = 1; len <= 64; ++len) {
    EXPECT_EQ(store.path(ids[len - 1]).size(), len);
  }
  EXPECT_EQ(store.numPaths(), 64u);
}

}  // namespace
}  // namespace sim
