// Randomized cross-module property sweep: arbitrary XGFT shapes, every
// routing scheme, all structural invariants at once.  This is the
// catch-all net under the per-module suites — if a future change breaks an
// interaction between the label algebra, a router and the simulator on
// some odd tree shape, it surfaces here.
#include <gtest/gtest.h>

#include "analysis/contention.hpp"
#include "analysis/dependency.hpp"
#include "patterns/permutation.hpp"
#include "routing/colored.hpp"
#include "routing/forwarding.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "xgft/rng.hpp"
#include "xgft/route.hpp"

namespace {

using xgft::Topology;

/// A random small XGFT: height 2-3, digits 2-5, w_i in [1, m_i + 1].
xgft::Params randomShape(std::uint64_t seed) {
  xgft::Rng rng(seed);
  const std::uint32_t h = 2 + static_cast<std::uint32_t>(rng.below(2));
  std::vector<std::uint32_t> m(h);
  std::vector<std::uint32_t> w(h);
  for (std::uint32_t i = 0; i < h; ++i) {
    m[i] = 2 + static_cast<std::uint32_t>(rng.below(4));
    // Allow w > m occasionally (over-provisioned level) and w = 1 (tree).
    w[i] = 1 + static_cast<std::uint32_t>(rng.below(m[i] + 1));
  }
  w[0] = 1;  // Hosts single-homed, as in all the paper's topologies.
  return xgft::Params(std::move(m), std::move(w));
}

class RandomShapes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomShapes, AllInvariantsHold) {
  const xgft::Params params = randomShape(GetParam());
  const Topology topo(params);
  const auto n = static_cast<patterns::Rank>(topo.numHosts());

  // Structural: Eq. (1) vs per-level sums, label round trips.
  xgft::Count switches = 0;
  for (std::uint32_t l = 1; l <= topo.height(); ++l) {
    switches += topo.nodesAtLevel(l);
  }
  EXPECT_EQ(switches, params.numInnerSwitches());
  for (xgft::NodeIndex host = 0; host < topo.numHosts(); host += 3) {
    EXPECT_EQ(indexOf(params, labelOf(params, 0, host)), host);
  }

  // Every scheme: valid minimal routes, deadlock freedom.
  std::vector<routing::RouterPtr> routers;
  routers.push_back(routing::makeSModK(topo));
  routers.push_back(routing::makeDModK(topo));
  routers.push_back(routing::makeRandom(topo, GetParam()));
  routers.push_back(routing::makeRNcaUp(topo, GetParam()));
  routers.push_back(routing::makeRNcaDown(topo, GetParam()));
  const patterns::Pattern perm =
      patterns::randomPermutation(n, GetParam()).toPattern(2048);
  routers.push_back(routing::makeColored(topo, perm));
  for (const routing::RouterPtr& router : routers) {
    for (xgft::NodeIndex s = 0; s < topo.numHosts(); s += 2) {
      for (xgft::NodeIndex d = 0; d < topo.numHosts(); d += 3) {
        std::string error;
        ASSERT_TRUE(
            validateRoute(topo, s, d, router->route(s, d), &error))
            << params.toString() << " " << router->name() << ": " << error;
      }
    }
    EXPECT_TRUE(analysis::routesAreDeadlockFree(topo, *router, &perm))
        << params.toString() << " " << router->name();
  }

  // Destination-guided schemes stay LFT-able on every shape.
  EXPECT_TRUE(routing::ForwardingTables::isDestinationBased(
      topo, *routing::makeDModK(topo)))
      << params.toString();

  // The census accounts for every ordered pair exactly once per level.
  std::uint64_t pairs = 0;
  for (std::uint32_t l = 1; l <= topo.height(); ++l) {
    const auto census =
        analysis::ncaRouteCensus(topo, *routers[0], l);
    for (const auto c : census) pairs += c;
  }
  EXPECT_EQ(pairs, topo.numHosts() * (topo.numHosts() - 1));

  // End to end: the permutation replays to completion and no scheme beats
  // the crossbar.
  patterns::PhasedPattern app;
  app.numRanks = n;
  app.phases.push_back(perm);
  const double slowdown =
      trace::slowdownVsCrossbar(topo, *routers[1], app);
  EXPECT_GE(slowdown, 0.999) << params.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapes,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

}  // namespace
