// Integration tests: the qualitative findings of the paper's evaluation
// must reproduce end-to-end (topology -> routing -> simulation -> slowdown).
// Message sizes are scaled down (bandwidth-dominated regime, see DESIGN.md)
// to keep these tests fast; the *relations* under test are scale-free.
#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

namespace {

using xgft::Topology;

constexpr double kScale = 1.0 / 16.0;  // ~47 KB CG messages.

double slowdown(const Topology& topo, const routing::Router& router,
                const patterns::PhasedPattern& app) {
  return trace::slowdownVsCrossbar(topo, router, app);
}

// ---- Fig. 2(b) / Sec. VII-A: the CG pathology. ----

TEST(PaperPhenomena, CgModKPathologyOnFullTree) {
  // "the degradation for the fifth phase accounts for more than a factor of
  // two" — S/D-mod-k land near 2.2x while Colored routes CG at crossbar
  // speed on the full 16-ary 2-tree.
  const Topology topo(xgft::karyNTree(16, 2));
  const auto cg = trace::scaleMessages(patterns::cgD128(), kScale);
  const double s = slowdown(topo, *routing::makeSModK(topo), cg);
  const double d = slowdown(topo, *routing::makeDModK(topo), cg);
  const routing::ColoredRouter colored(topo, cg);
  const double col = slowdown(topo, colored, cg);
  EXPECT_GT(s, 2.0);
  EXPECT_GT(d, 2.0);
  EXPECT_LT(col, 1.1);
}

TEST(PaperPhenomena, CgPhase5TakesSevenToEightTimesLongerUnderDmodK) {
  // The simulated trace "reveals that this last phase takes eight times
  // longer with D-mod-k routing" (Sec. VII-A): all 16 sources of a switch
  // collapse onto two uplinks.  In our bijective lift of Eq. (2) two of
  // each switch's sixteen flows are self-messages, so the worst link
  // carries 7 flows and the measured factor sits just below 7x.
  const Topology topo(xgft::karyNTree(16, 2));
  patterns::PhasedPattern phase5;
  phase5.numRanks = 128;
  phase5.phases.push_back(
      trace::scaleMessages(patterns::cgD128(), kScale).phases[4]);
  const double d = slowdown(topo, *routing::makeDModK(topo), phase5);
  EXPECT_GT(d, 6.0);
  EXPECT_LT(d, 8.0);
}

TEST(PaperPhenomena, RandomBeatsModKOnCg) {
  const Topology topo(xgft::karyNTree(16, 2));
  const auto cg = trace::scaleMessages(patterns::cgD128(), kScale);
  const double d = slowdown(topo, *routing::makeDModK(topo), cg);
  const double rnd = slowdown(topo, *routing::makeRandom(topo, 1), cg);
  EXPECT_LT(rnd, d);
}

// ---- Fig. 2(a): WRF favours the concentrating schemes. ----

TEST(PaperPhenomena, RandomLosesBadlyOnWrf) {
  // "Random is worse than the oblivious alternatives S-mod-k and D-mod-k,
  // which achieve the same performance as a pattern-aware routing scheme."
  const Topology topo(xgft::karyNTree(16, 2));
  const auto wrf = trace::scaleMessages(patterns::wrf256(), kScale);
  const double s = slowdown(topo, *routing::makeSModK(topo), wrf);
  const double d = slowdown(topo, *routing::makeDModK(topo), wrf);
  const double rnd = slowdown(topo, *routing::makeRandom(topo, 1), wrf);
  const routing::ColoredRouter colored(topo, wrf);
  const double col = slowdown(topo, colored, wrf);
  EXPECT_LT(s, 1.1);  // Concentrating schemes ride at crossbar speed.
  EXPECT_LT(d, 1.1);
  EXPECT_GT(rnd, 2.0);         // Random pays real network contention.
  EXPECT_NEAR(s, col, 0.1);    // Mod-k == pattern-aware here.
}

TEST(PaperPhenomena, SmodkAndDmodkPerformIdenticallyOnSymmetricApps) {
  // Sec. VII-C: symmetric patterns behave the same under both schemes
  // (up to packet-arrival-order noise, which our deterministic simulator
  // does not even have at equal routes).
  for (const std::uint32_t w2 : {16u, 10u, 4u}) {
    const Topology topo(xgft::xgft2(16, 16, w2));
    for (const auto& app :
         {trace::scaleMessages(patterns::cgD128(), kScale),
          trace::scaleMessages(patterns::wrf256(), kScale)}) {
      const double s = slowdown(topo, *routing::makeSModK(topo), app);
      const double d = slowdown(topo, *routing::makeDModK(topo), app);
      EXPECT_NEAR(s, d, 0.02 * s) << app.name << " w2=" << w2;
    }
  }
}

// ---- Fig. 5: the r-NCA proposal. ----

TEST(PaperPhenomena, RNcaAvoidsTheCgPathology) {
  const Topology topo(xgft::karyNTree(16, 2));
  const auto cg = trace::scaleMessages(patterns::cgD128(), kScale);
  const double d = slowdown(topo, *routing::makeDModK(topo), cg);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_LT(slowdown(topo, *routing::makeRNcaDown(topo, seed), cg), d);
    EXPECT_LT(slowdown(topo, *routing::makeRNcaUp(topo, seed), cg), d);
  }
}

TEST(PaperPhenomena, RNcaDoesNotDegradeWrfMuch) {
  // "for WRF the performance is ... most of the times close to S-mod-k."
  const Topology topo(xgft::karyNTree(16, 2));
  const auto wrf = trace::scaleMessages(patterns::wrf256(), kScale);
  const double s = slowdown(topo, *routing::makeSModK(topo), wrf);
  const double rnd = slowdown(topo, *routing::makeRandom(topo, 1), wrf);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const double r = slowdown(topo, *routing::makeRNcaDown(topo, seed), wrf);
    EXPECT_LT(r, rnd);          // Always better than Random ...
    EXPECT_LT(r, 1.5 * s);      // ... and close to the mod-k schemes.
  }
}

TEST(PaperPhenomena, RNcaBeatsRandomOnMedianAcrossSeeds) {
  // Sec. IX: "Random NCA Up and Random NCA Down perform statistically
  // better than Random" on the slimmed trees too.
  const Topology topo(xgft::xgft2(16, 16, 10));
  const auto cg = trace::scaleMessages(patterns::cgD128(), kScale);
  double rncaSum = 0.0;
  double randomSum = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rncaSum += slowdown(topo, *routing::makeRNcaDown(topo, seed), cg);
    randomSum += slowdown(topo, *routing::makeRandom(topo, seed), cg);
  }
  EXPECT_LT(rncaSum, randomSum);
}

// ---- Fig. 2/5 frame: slimming degrades, w2=1 equalizes. ----

TEST(PaperPhenomena, SlimmingDegradesWrf) {
  const Topology full(xgft::karyNTree(16, 2));
  const Topology slim(xgft::xgft2(16, 16, 4));
  const auto wrf = trace::scaleMessages(patterns::wrf256(), kScale);
  EXPECT_GT(slowdown(slim, *routing::makeDModK(slim), wrf),
            slowdown(full, *routing::makeDModK(full), wrf));
}

TEST(PaperPhenomena, SingleRootMakesAllSchemesEqual) {
  // At w2 = 1 there is a single path per pair: every scheme routes
  // identically (rightmost data points of Figs. 2 and 5).
  const Topology topo(xgft::xgft2(16, 16, 1));
  const auto cg = trace::scaleMessages(patterns::cgD128(), kScale);
  const double d = slowdown(topo, *routing::makeDModK(topo), cg);
  const double s = slowdown(topo, *routing::makeSModK(topo), cg);
  const double rnd = slowdown(topo, *routing::makeRandom(topo, 9), cg);
  const double rnca = slowdown(topo, *routing::makeRNcaUp(topo, 9), cg);
  EXPECT_DOUBLE_EQ(s, d);
  EXPECT_DOUBLE_EQ(s, rnd);
  EXPECT_DOUBLE_EQ(s, rnca);
}

}  // namespace
