// Fixture for tools/lint_determinism.py (never compiled): half of a
// two-header include cycle; the include-cycle rule must report it.
#pragma once
#include "cycle_b.hpp"
