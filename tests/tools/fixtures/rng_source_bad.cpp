// Fixture for tools/lint_determinism.py (never compiled): std::random_device
// is wall-entropy and must be flagged by the rng-source rule everywhere
// outside src/xgft/rng.hpp.
#include <random>

int entropy() {
  std::random_device rd;
  return static_cast<int>(rd());
}
