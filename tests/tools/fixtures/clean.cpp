// Fixture for tools/lint_determinism.py (never compiled): the deterministic
// idioms the tree actually uses — sorted containers, to_chars-backed float
// helpers, quoted lookup errors with a hint — must all pass clean.
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

std::string fixed6(double v);

void dump(std::ofstream& os) {
  std::map<int, double> cells;
  for (const auto& [key, value] : cells) {
    os << key << "," << fixed6(value) << "\n";
  }
}

void lookup(const std::string& name) {
  throw std::invalid_argument("unknown pattern '" + name +
                              "' (registered: ring, stencil)");
}
