// Fixture for tools/lint_determinism.py (never compiled): a raw double fed
// to `<<` in a file that writes output — locale/precision state decides the
// bytes, so the float-format rule must flag it.
#include <fstream>

void dump(std::ofstream& os) {
  double latencyNs = 1234.5;
  os << latencyNs << "\n";
}
