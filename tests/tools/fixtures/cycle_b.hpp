// Fixture for tools/lint_determinism.py (never compiled): the other half of
// the two-header include cycle.
#pragma once
#include "cycle_a.hpp"
