// Fixture for tools/lint_determinism.py (never compiled): range-for over an
// unordered container in a file that writes output — hash order would leak
// into the CSV, so the unordered-iteration rule must flag it.
#include <fstream>
#include <unordered_map>

void dump(std::ofstream& os) {
  std::unordered_map<int, int> counts;
  for (const auto& [key, value] : counts) {
    os << key << "," << value << "\n";
  }
}
