// Fixture for tools/lint_determinism.py (never compiled): a suppression
// that names the rule AND gives a reason must silence the finding.
#include <random>

int entropy() {
  // NOLINT(determinism-rng-source) -- fixture: reasoned suppression works
  std::random_device rd;
  return static_cast<int>(rd());
}
