// Fixture for tools/lint_determinism.py (never compiled): a lookup error
// without the uniform `unknown <kind> '<name>' (<hint>)` shape — the
// error-shape rule must flag it.
#include <stdexcept>
#include <string>

void lookup(const std::string& name) {
  throw std::invalid_argument("unknown pattern: " + name);
}
