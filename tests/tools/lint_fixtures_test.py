#!/usr/bin/env python3
"""Fixture suite for tools/lint_determinism.py.

Each fixture under tests/tools/fixtures/ is a tiny C++ snippet (never
compiled) that either triggers exactly one linter rule or must pass clean.
The suite copies every fixture into a throwaway src/ tree — the real
fixtures directory is exempt from the linter's own tree scan — runs the
linter CLI on it, and checks the rule set and exit code.

Exit codes follow the tools/ contract: 0 all cases pass, 1 a case failed,
2 environment error (one stderr line, no stack trace).
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "lint_determinism.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file(s) -> rules the linter must report (empty set = clean).
CASES = [
    (["rng_source_bad.cpp"], {"rng-source"}),
    (["rng_source_nolint.cpp"], set()),
    (["unordered_iteration_bad.cpp"], {"unordered-iteration"}),
    (["float_format_bad.cpp"], {"float-format"}),
    (["error_shape_bad.cpp"], {"error-shape"}),
    (["clean.cpp"], set()),
    (["cycle_a.hpp", "cycle_b.hpp"], {"include-cycle"}),
]

FINDING_RE = re.compile(r"^\S+:\d+: \[([a-z-]+)\]")


def run_case(files, expected):
    with tempfile.TemporaryDirectory() as tmp:
        os.mkdir(os.path.join(tmp, "src"))
        for name in files:
            shutil.copy(os.path.join(FIXTURES, name),
                        os.path.join(tmp, "src", name))
        proc = subprocess.run(
            [sys.executable, LINTER, "--root", tmp],
            capture_output=True, text=True, timeout=120, check=False)
    reported = {m.group(1) for m in
                (FINDING_RE.match(line) for line in
                 proc.stdout.splitlines()) if m}
    want_exit = 1 if expected else 0
    if proc.returncode != want_exit or reported != expected:
        print(f"FAIL {'+'.join(files)}: expected rules {sorted(expected)} "
              f"exit {want_exit}, got rules {sorted(reported)} exit "
              f"{proc.returncode}\n--- linter output ---\n{proc.stdout}"
              f"{proc.stderr}", file=sys.stderr)
        return False
    print(f"ok   {'+'.join(files)}: {sorted(expected) or 'clean'}")
    return True


def main():
    if not os.path.isfile(LINTER):
        print(f"lint_fixtures_test: linter not found at {LINTER}",
              file=sys.stderr)
        return 2
    if not os.path.isdir(FIXTURES):
        print(f"lint_fixtures_test: fixtures dir not found at {FIXTURES}",
              file=sys.stderr)
        return 2
    ok = all([run_case(files, expected) for files, expected in CASES])
    if ok:
        print(f"lint_fixtures_test: {len(CASES)} cases passed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
