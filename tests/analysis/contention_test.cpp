// Tests for the static contention analysis, including the Fig. 4 route
// census properties the paper discusses in Sec. VII-D.
#include "analysis/contention.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"

namespace analysis {
namespace {

using xgft::NodeIndex;
using xgft::Topology;

TEST(Loads, EmptyPatternHasNoLoads) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const LoadSummary s = computeLoads(topo, patterns::Pattern(16), *router);
  EXPECT_EQ(s.usedChannels, 0u);
  EXPECT_EQ(s.maxFlowsPerChannel, 0u);
  EXPECT_DOUBLE_EQ(s.maxDemand, 0.0);
  EXPECT_DOUBLE_EQ(s.meanFlowsPerUsedChannel(), 0.0);
}

TEST(Loads, SelfFlowsNeverTouchTheNetwork) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::Pattern p(16);
  p.add(3, 3, 1000);
  EXPECT_EQ(computeLoads(topo, p, *router).usedChannels, 0u);
}

TEST(Loads, SingleFlowLoadsItsWholePath) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::Pattern p(16);
  p.add(0, 15, 1234);  // NCA level 2: 4 channels.
  const LoadSummary s = computeLoads(topo, p, *router);
  EXPECT_EQ(s.usedChannels, 4u);
  EXPECT_EQ(s.maxFlowsPerChannel, 1u);
  EXPECT_DOUBLE_EQ(s.maxDemand, 1.0);
  for (const auto& [key, load] : s.channels) {
    EXPECT_EQ(load.bytes, 1234u);
    EXPECT_EQ(load.flows, 1u);
  }
}

TEST(Loads, EffectiveDemandWeightsByFanout) {
  // Two flows from one source sharing their ascent contribute 1/2 each:
  // total demand 1.0 on the shared up-link (Sec. IV).
  const Topology topo(xgft::xgft2(4, 4, 4));
  const routing::RouterPtr smodk = routing::makeSModK(topo);
  patterns::Pattern p(16);
  p.add(0, 5, 100);
  p.add(0, 9, 100);
  const LoadSummary s = computeLoads(topo, p, *smodk);
  // S-mod-k sends both flows up the same link: flows=2 there, demand 1.
  EXPECT_EQ(s.maxFlowsPerChannel, 2u);
  EXPECT_DOUBLE_EQ(s.maxDemand, 1.0);
}

TEST(Loads, PermutationDemandEqualsFlowCount) {
  const Topology topo(xgft::xgft2(16, 16, 16));
  const routing::RouterPtr dmodk = routing::makeDModK(topo);
  const patterns::Pattern phase5 = patterns::cgD128(1).phases[4];
  const LoadSummary s = computeLoads(topo, phase5, *dmodk);
  // Permutation: rho = 1, so demand == flow count.  Each switch's 14
  // non-self flows collapse onto two uplinks: 7 per link.
  EXPECT_EQ(s.maxFlowsPerChannel, 7u);
  EXPECT_DOUBLE_EQ(s.maxDemand, 7.0);
}

TEST(Census, TotalsMatchPairCounts) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const auto census = ncaRouteCensus(topo, *router, 2);
  ASSERT_EQ(census.size(), 10u);
  // All inter-switch ordered pairs: 256 * 240.
  EXPECT_EQ(std::accumulate(census.begin(), census.end(), std::uint64_t{0}),
            256u * 240u);
}

TEST(Census, ModKIsPerfectlyEvenOnFullTree) {
  // Fig. 4(a): S-mod-k and D-mod-k give a perfectly flat census when
  // w2 == m1 (each root gets 256*240/16 = 3840 routes).
  const Topology topo(xgft::karyNTree(16, 2));
  for (const auto& make : {routing::makeSModK, routing::makeDModK}) {
    const routing::RouterPtr router = make(topo);
    for (const auto count : ncaRouteCensus(topo, *router, 2)) {
      EXPECT_EQ(count, 3840u);
    }
  }
}

TEST(Census, ModKIsSkewedOnSlimmedTree) {
  // Fig. 4(b) / Sec. VII-D: with w2 = 10, digits 10-15 wrap onto roots 0-5,
  // so roots 0-5 receive twice the routes of roots 6-9.
  const Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const auto census = ncaRouteCensus(topo, *router, 2);
  for (std::size_t root = 0; root < 10; ++root) {
    EXPECT_EQ(census[root], root < 6 ? 7680u : 3840u) << "root " << root;
  }
}

TEST(Census, RandomIsApproximatelyEvenOnSlimmedTree) {
  // Fig. 4(b): Random balances even when the tree is slimmed.
  const Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr router = routing::makeRandom(topo, 17);
  const auto census = ncaRouteCensus(topo, *router, 2);
  const double expected = 256.0 * 240.0 / 10.0;
  for (const auto count : census) {
    EXPECT_NEAR(static_cast<double>(count), expected, 0.05 * expected);
  }
}

TEST(Census, RNcaIsExactlyBalancedPerSubtree) {
  // The balanced maps guarantee the census spread of r-NCA-u/d matches the
  // mod rule's total balance: on the full tree every root gets exactly the
  // flat share; on slimmed trees the per-subtree counts differ by at most
  // one digit-class (Sec. VIII: "a better distribution to the NCAs").
  const Topology topoFull(xgft::karyNTree(16, 2));
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const routing::RouterPtr router = routing::makeRNcaDown(topoFull, seed);
    for (const auto count : ncaRouteCensus(topoFull, *router, 2)) {
      EXPECT_EQ(count, 3840u);
    }
  }
  const Topology topoSlim(xgft::xgft2(16, 16, 10));
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const routing::RouterPtr router = routing::makeRNcaDown(topoSlim, seed);
    for (const auto count : ncaRouteCensus(topoSlim, *router, 2)) {
      // Each root receives 1 or 2 digit classes per switch: the census per
      // root lies between the one-class (16*240) and two-class (32*240)
      // extremes.
      EXPECT_GE(count, 3840u);
      EXPECT_LE(count, 7680u);
    }
  }
}

TEST(Census, PatternRestrictedCensusOnlyCountsPatternPairs) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const patterns::Pattern phase5 = patterns::cgD128(1).phases[4];
  const auto census = ncaRouteCensusForPattern(topo, phase5, *router, 2);
  EXPECT_EQ(std::accumulate(census.begin(), census.end(), std::uint64_t{0}),
            112u);  // 128 flows - 16 self-flows.
}

TEST(NcaContention, PerNcaMaxima) {
  const Topology topo(xgft::karyNTree(16, 2));
  const routing::RouterPtr dmodk = routing::makeDModK(topo);
  const patterns::Pattern phase5 = patterns::cgD128(1).phases[4];
  const auto contention = ncaContention(topo, phase5, *dmodk);
  // D-mod-k collapses each switch's 14 non-self flows onto two uplinks.
  EXPECT_FALSE(contention.empty());
  std::uint32_t worst = 0;
  for (const auto& [nca, c] : contention) worst = std::max(worst, c);
  EXPECT_EQ(worst, 7u);
  EXPECT_EQ(contentionLevel(topo, phase5, *dmodk), 7u);
}

TEST(ContentionSplit, SeparatesEndpointFromNetwork) {
  const Topology topo(xgft::xgft2(16, 16, 16));
  const routing::RouterPtr smodk = routing::makeSModK(topo);
  const patterns::Pattern wrf = patterns::wrf256(1).phases[0];
  const ContentionSplit split = contentionSplit(topo, wrf, *smodk);
  EXPECT_EQ(split.maxFanOut, 2u);
  EXPECT_EQ(split.maxFanIn, 2u);
  EXPECT_DOUBLE_EQ(split.endpointBound, 2.0);
  // S-mod-k adds no network contention on WRF at w2 = 16.
  EXPECT_LE(split.networkBound, 1.0 + 1e-9);
}

TEST(ContentionSplit, EmptyPatternIsAllZeros) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const ContentionSplit split =
      contentionSplit(topo, patterns::Pattern(16), *router);
  EXPECT_EQ(split.maxFanOut, 0u);
  EXPECT_EQ(split.maxFanIn, 0u);
  EXPECT_DOUBLE_EQ(split.endpointBound, 0.0);
  EXPECT_DOUBLE_EQ(split.networkBound, 0.0);
}

TEST(ContentionSplit, SelfFlowsContributeNothing) {
  // Local delivery never leaves the host: no endpoint contention (the fan
  // counts exclude self-flows) and no routed demand.
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::Pattern p(16);
  p.add(0, 0, 4096);
  p.add(7, 7, 4096);
  const ContentionSplit split = contentionSplit(topo, p, *router);
  EXPECT_EQ(split.maxFanOut, 0u);
  EXPECT_EQ(split.maxFanIn, 0u);
  EXPECT_DOUBLE_EQ(split.endpointBound, 0.0);
  EXPECT_DOUBLE_EQ(split.networkBound, 0.0);
}

TEST(ContentionSplit, HotspotSeparatesEndpointFromRoutingCollapse) {
  // 15 -> 1 fan-in: the endpoint bound is the full 15, but the *network*
  // bound is routed demand, where down-channels divide by fan-in — the
  // hot down-link carries 15 x (1/15) = 1.  What remains is the genuine
  // routing contention: every up-weight is 1 (fan-out 1), and D-mod-k
  // sends the 4 sources of each remote L1 switch up the same link toward
  // the single destination, so the network bound is exactly 4.
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::Pattern hot(16);
  for (patterns::Rank r = 1; r < 16; ++r) hot.add(r, 0, 1024);
  const ContentionSplit split = contentionSplit(topo, hot, *router);
  EXPECT_EQ(split.maxFanOut, 1u);
  EXPECT_EQ(split.maxFanIn, 15u);
  EXPECT_DOUBLE_EQ(split.endpointBound, 15.0);
  EXPECT_DOUBLE_EQ(split.networkBound, 4.0);
}

TEST(ContentionSplit, ScatterDividesUpDemandByFanOut) {
  // One source scattering to every other host: endpoint bound 15 at the
  // source, up-weights 1/15 (the injection link sums to exactly 1), and
  // down-weights 1 (every destination has fan-in 1).  D-mod-k splits each
  // remote group's 4 destinations across the w2 = 2 roots, so the busiest
  // down-channel carries 2 unit-weight flows: network bound exactly 2.
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::Pattern scatter(16);
  for (patterns::Rank r = 1; r < 16; ++r) scatter.add(0, r, 1024);
  const ContentionSplit split = contentionSplit(topo, scatter, *router);
  EXPECT_EQ(split.maxFanOut, 15u);
  EXPECT_EQ(split.maxFanIn, 1u);
  EXPECT_DOUBLE_EQ(split.endpointBound, 15.0);
  EXPECT_DOUBLE_EQ(split.networkBound, 2.0);
}

}  // namespace
}  // namespace analysis
