// Unit tests for the table formatter.
#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace analysis {
namespace {

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"1"}), std::invalid_argument);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), std::invalid_argument);
  t.addRow({"1", "2"});
  EXPECT_EQ(t.numRows(), 1u);
}

TEST(Table, AlignsColumns) {
  Table t({"x", "value"});
  t.addRow({"1", "long-content"});
  t.addRow({"22", "s"});
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  // The second column starts at the same offset in every line.
  EXPECT_EQ(header.find("value"), row1.find("long-content"));
  EXPECT_EQ(header.find("value"), row2.find("s"));
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 3), "2.000");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, NumEdgeCases) {
  EXPECT_EQ(Table::num(1e6, 0), "1000000");  // Fixed, never scientific.
  EXPECT_EQ(Table::num(0.0, 2), "0.00");
  EXPECT_EQ(Table::num(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(Table::num(-0.0001, 2), "-0.00");  // Sign survives rounding.
}

TEST(Table, EmptyTablePrintsHeaderOnly) {
  Table t({"col", "other"});
  std::ostringstream aligned;
  t.print(aligned);
  EXPECT_EQ(aligned.str(), "col  other  \n");
  std::ostringstream csv;
  t.printCsv(csv);
  EXPECT_EQ(csv.str(), "col,other\n");
  EXPECT_EQ(t.numRows(), 0u);
}

TEST(Table, RowWiderThanHeaderSetsTheColumnWidth) {
  Table t({"x"});
  t.addRow({"wide-cell-content"});
  t.addRow({"y"});
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  // Every line is padded to the widest cell plus the 2-space gutter.
  EXPECT_EQ(header.size(), row1.size());
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(row1.size(), std::string("wide-cell-content").size() + 2);
}

TEST(Table, CsvKeepsEmptyCells) {
  Table t({"a", "b", "c"});
  t.addRow({"", "mid", ""});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n,mid,\n");
}

}  // namespace
}  // namespace analysis
