// Unit tests for the table formatter.
#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace analysis {
namespace {

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"1"}), std::invalid_argument);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), std::invalid_argument);
  t.addRow({"1", "2"});
  EXPECT_EQ(t.numRows(), 1u);
}

TEST(Table, AlignsColumns) {
  Table t({"x", "value"});
  t.addRow({"1", "long-content"});
  t.addRow({"22", "s"});
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  // The second column starts at the same offset in every line.
  EXPECT_EQ(header.find("value"), row1.find("long-content"));
  EXPECT_EQ(header.find("value"), row2.find("s"));
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 3), "2.000");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace analysis
