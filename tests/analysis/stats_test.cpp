// Unit tests for the boxplot statistics helpers.
#include "analysis/stats.hpp"

#include <gtest/gtest.h>

namespace analysis {
namespace {

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW((void)boxStats({}), std::invalid_argument);
  EXPECT_THROW((void)quantileSorted({}, 0.5), std::invalid_argument);
}

TEST(Stats, SingleValue) {
  const BoxStats s = boxStats({3.5});
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.q1, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_EQ(s.samples, 1u);
}

TEST(Stats, KnownQuartilesType7) {
  // R type-7 on {1..5}: q1 = 2, med = 3, q3 = 4.
  const BoxStats s = boxStats({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Stats, InterpolatedQuartiles) {
  // {1, 2, 3, 4}: q1 = 1.75, med = 2.5, q3 = 3.25 (type 7).
  const BoxStats s = boxStats({4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(Stats, QuantileEdges) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(quantileSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantileSorted(v, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantileSorted(v, 0.5), 2.0);
  EXPECT_THROW((void)quantileSorted(v, 1.5), std::invalid_argument);
  EXPECT_THROW((void)quantileSorted(v, -0.1), std::invalid_argument);
}

TEST(Stats, MedianUnaffectedByOutliers) {
  const BoxStats s = boxStats({1, 1, 1, 1, 1000});
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Stats, MeanStd) {
  const MeanStd ms = meanStd({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);
  EXPECT_DOUBLE_EQ(meanStd({}).mean, 0.0);
}

TEST(Stats, ToStringFormat) {
  const BoxStats s = boxStats({1.0, 2.0, 3.0});
  const std::string str = s.toString(2);
  EXPECT_NE(str.find("med=2.00"), std::string::npos);
  EXPECT_NE(str.find("min=1.00"), std::string::npos);
  EXPECT_NE(str.find("max=3.00"), std::string::npos);
}

}  // namespace
}  // namespace analysis
