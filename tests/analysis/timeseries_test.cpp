// Tests for the telemetry time-series CSV writer: exact header/row shape,
// one utilization column per link class, shortest-round-trip doubles, and
// locale independence (the same guarantees the campaign CSV has).
#include "analysis/timeseries.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "routing/relabel.hpp"
#include "sim/network.hpp"
#include "xgft/topology.hpp"

namespace analysis {
namespace {

obs::SummarySeries handMadeSeries() {
  obs::SummarySeries s;
  s.groupLabels = {"hosts>L1", "L1>hosts"};
  s.t = {2048, 4096};
  s.inFlight = {3, 1};
  s.queuedSegments = {12, 0};
  s.maxQueueDepth = {4, 0};
  s.maxQueuePort = {17, 0};
  s.blockedInputs = {2, 0};
  s.util = {0.5, 0.125, 1.0, 0.0};  // Row-major, 2 rows x 2 groups.
  return s;
}

TEST(TimeSeriesCsv, WritesHeaderAndRowPerSample) {
  std::ostringstream os;
  writeTimeSeriesCsv(os, handMadeSeries());
  EXPECT_EQ(os.str(),
            "t_ns,inflight,queued_segments,max_queue_depth,max_queue_port,"
            "blocked_inputs,util_hosts>L1,util_L1>hosts\n"
            "2048,3,12,4,17,2,0.5,0.125\n"
            "4096,1,0,0,0,0,1,0\n");
}

TEST(TimeSeriesCsv, EmptySeriesIsJustTheHeader) {
  obs::SummarySeries s;
  s.groupLabels = {"hosts>L1"};
  std::ostringstream os;
  writeTimeSeriesCsv(os, s);
  EXPECT_EQ(os.str(),
            "t_ns,inflight,queued_segments,max_queue_depth,max_queue_port,"
            "blocked_inputs,util_hosts>L1\n");
}

TEST(TimeSeriesCsv, LocaleCannotChangeTheBytes) {
  // A comma-decimal, digit-grouping global locale must not leak into the
  // CSV (mirrors tests/engine/locale_csv_test.cpp for campaign CSVs).
  class CommaDecimal : public std::numpunct<char> {
   protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };

  const obs::SummarySeries s = handMadeSeries();
  std::ostringstream plain;
  writeTimeSeriesCsv(plain, s);

  const std::locale previous = std::locale::global(
      std::locale(std::locale::classic(), new CommaDecimal));
  std::ostringstream hostile;
  writeTimeSeriesCsv(hostile, s);
  std::locale::global(previous);

  EXPECT_EQ(hostile.str(), plain.str());
  EXPECT_EQ(hostile.str().find(','), plain.str().find(','));
}

TEST(TimeSeriesCsv, RoundTripsARealRecorderSeries) {
  const xgft::Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  obs::Recorder rec;
  sim::Network net(topo, sim::SimConfig{});
  net.setProbe(&rec);
  for (xgft::NodeIndex src = 1; src < topo.numHosts(); ++src) {
    const sim::MsgId m =
        net.addMessage(src, 0, 32 * 1024, router->route(src, 0));
    net.release(m, 0);
  }
  net.run();

  std::ostringstream os;
  writeTimeSeriesCsv(os, rec.series());
  const std::string csv = os.str();

  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, rec.series().size() + 1);
  EXPECT_NE(csv.find("util_hosts>L1"), std::string::npos);
  EXPECT_NE(csv.find("util_L2>L1"), std::string::npos);

  // Every data row has the full column count.
  const std::size_t columns = 6 + rec.series().numGroups();
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) {
    std::size_t commas = 0;
    for (const char c : line) commas += (c == ',') ? 1 : 0;
    EXPECT_EQ(commas + 1, columns) << line;
  }
}

}  // namespace
}  // namespace analysis
