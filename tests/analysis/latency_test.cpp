// Tests for the fixed-bucket latency histogram and window accounting.
#include "analysis/latency.hpp"

#include <gtest/gtest.h>

namespace analysis {
namespace {

TEST(LatencyHistogram, EmptySummaryIsZero) {
  const LatencyHistogram h;
  const LatencySummary s = h.summary();
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.p99Ns, 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LatencyHistogram, ExactForDegenerateDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(12345);
  const LatencySummary s = h.summary();
  EXPECT_EQ(s.samples, 100u);
  EXPECT_EQ(s.minNs, 12345u);
  EXPECT_EQ(s.maxNs, 12345u);
  EXPECT_EQ(s.p50Ns, 12345u);  // Clamped to the observed extremes.
  EXPECT_EQ(s.p99Ns, 12345u);
  EXPECT_DOUBLE_EQ(s.meanNs, 12345.0);
}

TEST(LatencyHistogram, QuantilesOfAUniformRamp) {
  // 1..10000 ns with 1-ns buckets: quantiles are exact.
  LatencyHistogram h(1, 16384);
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 5000.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 9900.0, 1.0);
  EXPECT_EQ(h.quantile(1.0), 10000u);
}

TEST(LatencyHistogram, WideBucketsInterpolateWithinTheBucket) {
  LatencyHistogram h(1000, 16);
  for (int i = 0; i < 1000; ++i) h.record(2500);  // All in bucket [2000, 3000).
  // Interpolation stays inside the bucket and clamps to observed values.
  EXPECT_EQ(h.quantile(0.5), 2500u);
  EXPECT_EQ(h.quantile(0.01), 2500u);
}

TEST(LatencyHistogram, OverflowReportsObservedMax) {
  LatencyHistogram h(10, 10);  // Resolves [0, 100) exactly.
  h.record(5);
  for (int i = 0; i < 99; ++i) h.record(1'000'000);
  EXPECT_EQ(h.overflow(), 99u);
  EXPECT_EQ(h.quantile(0.99), 1'000'000u);
  EXPECT_EQ(h.summary().maxNs, 1'000'000u);
  EXPECT_EQ(h.summary().minNs, 5u);
}

TEST(LatencyHistogram, RejectsDegenerateShape) {
  EXPECT_THROW(LatencyHistogram(0, 16), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(16, 0), std::invalid_argument);
}

TEST(WindowAccount, AcceptedLoadNormalizesByCapacity) {
  WindowAccount w;
  w.beginNs = 1000;
  w.endNs = 2000;
  w.bytes = 1000;
  // 4 hosts * 0.25 B/ns * 1000 ns = 1000 B capacity -> load 1.0.
  EXPECT_DOUBLE_EQ(w.acceptedLoad(4, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(w.acceptedLoad(8, 0.25), 0.5);
  // Degenerate windows report zero instead of dividing by zero.
  w.endNs = w.beginNs;
  EXPECT_DOUBLE_EQ(w.acceptedLoad(4, 0.25), 0.0);
}

}  // namespace
}  // namespace analysis
