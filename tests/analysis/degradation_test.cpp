// Unit tests for analysis::degradationCurves: per-(scheme, faults) cell
// aggregation, first-appearance ordering, and the monotone-degradation
// predicate the faultsweep campaign pins.
#include "analysis/degradation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace analysis {
namespace {

TEST(Degradation, AggregatesCellsBySchemeAndPlanInFirstAppearanceOrder) {
  const std::vector<DegradationPoint> points = {
      {"d-mod-k", "none", 0.45, 1000, 0},
      {"d-mod-k", "links:10", 0.40, 2000, 3},
      {"Random", "none", 0.44, 1100, 0},
      {"d-mod-k", "links:10", 0.42, 2400, 5},  // Seed repeat of the cell.
  };
  const std::vector<DegradationCurve> curves = degradationCurves(points);
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].scheme, "d-mod-k");
  EXPECT_EQ(curves[1].scheme, "Random");
  ASSERT_EQ(curves[0].cells.size(), 2u);
  EXPECT_EQ(curves[0].cells[0].faults, "none");
  EXPECT_EQ(curves[0].cells[1].faults, "links:10");
  // The repeated cell averaged its two jobs.
  EXPECT_EQ(curves[0].cells[1].jobs, 2u);
  EXPECT_DOUBLE_EQ(curves[0].cells[1].acceptedLoad, 0.41);
  EXPECT_DOUBLE_EQ(curves[0].cells[1].latencyP99Ns, 2200.0);
  EXPECT_DOUBLE_EQ(curves[0].cells[1].messagesDropped, 4.0);
  EXPECT_EQ(curves[1].cells.size(), 1u);
}

TEST(Degradation, EmptyInputYieldsNoCurves) {
  EXPECT_TRUE(degradationCurves({}).empty());
}

TEST(Degradation, MonotonePredicateHonoursOrderAndTolerance) {
  DegradationCurve curve;
  curve.scheme = "d-mod-k";
  curve.cells = {{"none", 1, 0.45, 0, 0},
                 {"links:10", 1, 0.40, 0, 0},
                 {"links:20", 1, 0.30, 0, 0}};
  EXPECT_TRUE(acceptedLoadMonotone(curve));
  // A later cell rising above its predecessor breaks monotonicity...
  curve.cells[2].acceptedLoad = 0.43;
  EXPECT_FALSE(acceptedLoadMonotone(curve));
  // ...unless the rise fits inside the tolerance (measurement noise).
  EXPECT_TRUE(acceptedLoadMonotone(curve, 0.05));
  // Single-cell and empty curves are trivially monotone.
  curve.cells.resize(1);
  EXPECT_TRUE(acceptedLoadMonotone(curve));
  curve.cells.clear();
  EXPECT_TRUE(acceptedLoadMonotone(curve));
}

}  // namespace
}  // namespace analysis
