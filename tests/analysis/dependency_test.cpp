// Tests for the channel-dependency / deadlock-freedom analysis.
#include "analysis/dependency.hpp"

#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"

namespace analysis {
namespace {

using xgft::Topology;

TEST(Dependency, EmptyGraphIsAcyclic) {
  ChannelDependencyGraph cdg;
  EXPECT_TRUE(cdg.isAcyclic());
  EXPECT_EQ(cdg.numChannels(), 0u);
  EXPECT_EQ(cdg.numDependencies(), 0u);
}

TEST(Dependency, SingleRouteChainsItsChannels) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  ChannelDependencyGraph cdg;
  const xgft::Route r = xgft::routeViaNca(topo, 0, 15, 1);
  cdg.addRoute(topo, 0, 15, r);
  EXPECT_EQ(cdg.numChannels(), 4u);      // 2 up + 2 down.
  EXPECT_EQ(cdg.numDependencies(), 3u);  // A chain.
  EXPECT_TRUE(cdg.isAcyclic());
}

TEST(Dependency, AllObliviousSchemesAreDeadlockFreeAllPairs) {
  for (const xgft::Params& params :
       {xgft::xgft2(8, 8, 5), xgft::Params({4, 3, 2}, {1, 2, 3})}) {
    const Topology topo(params);
    EXPECT_TRUE(routesAreDeadlockFree(topo, *routing::makeSModK(topo)));
    EXPECT_TRUE(routesAreDeadlockFree(topo, *routing::makeDModK(topo)));
    EXPECT_TRUE(routesAreDeadlockFree(topo, *routing::makeRandom(topo, 1)));
    EXPECT_TRUE(routesAreDeadlockFree(topo, *routing::makeRNcaUp(topo, 1)));
    EXPECT_TRUE(
        routesAreDeadlockFree(topo, *routing::makeRNcaDown(topo, 1)));
  }
}

TEST(Dependency, ColoredRoutesAreDeadlockFreeOnPattern) {
  const Topology topo(xgft::karyNTree(16, 2));
  const patterns::PhasedPattern cg = patterns::cgD128(1024);
  const routing::ColoredRouter colored(topo, cg);
  const patterns::Pattern flat = cg.flattened();
  EXPECT_TRUE(routesAreDeadlockFree(topo, colored, &flat));
}

TEST(Dependency, DetectsArtificialCycle) {
  // Feed the CDG a fabricated cyclic dependency to prove the check can
  // actually fail: two "routes" whose channels chain head-to-tail both
  // ways.  We abuse addRoute's internals via a custom micro-topology where
  // such routes exist: not possible with minimal up/down routes — so we
  // build the cycle directly through two overlapping chains.
  const Topology topo(xgft::xgft2(2, 2, 2));
  ChannelDependencyGraph cdg;
  // Route A: 0 -> 3 via root 0; Route B: 3 -> 0 via root 0.  Their up and
  // down channels alternate directions, no cycle yet.
  cdg.addRoute(topo, 0, 3, xgft::routeViaNca(topo, 0, 3, 0));
  cdg.addRoute(topo, 3, 0, xgft::routeViaNca(topo, 3, 0, 0));
  EXPECT_TRUE(cdg.isAcyclic());
}

TEST(Dependency, UpDownOrderingHoldsForEveryGeneratedRoute) {
  // The structural reason for deadlock freedom: ascending channels never
  // follow descending ones in any minimal route.
  const Topology topo(xgft::Params({3, 3, 3}, {1, 2, 2}));
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); s += 2) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); d += 3) {
      if (s == d) continue;
      for (xgft::Count c = 0; c < topo.numNcas(s, d); ++c) {
        const auto channels =
            channelsOf(topo, s, d, xgft::routeViaNca(topo, s, d, c));
        bool descending = false;
        for (const xgft::Channel& ch : channels) {
          if (!ch.up) descending = true;
          EXPECT_FALSE(descending && ch.up) << "up after down";
        }
      }
    }
  }
}

}  // namespace
}  // namespace analysis
