// Unit tests for engine::ExperimentSpec: canonical-line round-trips, the
// campaign sweep expansion (lists, ranges, cross-product order), workload
// instantiation and the stability of per-role seed derivation.
#include "engine/spec.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "patterns/applications.hpp"

namespace engine {
namespace {

TEST(Spec, ToLineParsesBack) {
  ExperimentSpec spec;
  spec.topo = xgft::xgft2(16, 16, 10);
  spec.pattern = "cg128";
  spec.routing = "r-NCA-d";
  spec.msgScale = 0.125;
  spec.seed = 7;
  EXPECT_EQ(parseSpecLine(spec.toLine()), spec);
}

TEST(Spec, ToLineRoundTripsEveryRegisteredSchemeAndAwkwardScales) {
  const auto schemes = core::schemeRegistry().names();
  for (const std::string& scheme : *schemes) {
    for (const double scale : {1.0, 0.1, 0.03125, 3.14159}) {
      ExperimentSpec spec;
      spec.routing = scheme;
      spec.msgScale = scale;
      EXPECT_EQ(parseSpecLine(spec.toLine()), spec) << spec.toLine();
    }
  }
}

TEST(Spec, ParseCanonicalizesSchemeSpellings) {
  EXPECT_EQ(parseSpecLine("routing=random").routing, "Random");
  EXPECT_EQ(parseSpecLine("routing=Random").routing, "Random");
}

TEST(Spec, UnknownNamesSurfaceTheRegistryListing) {
  // Satellite of the registry redesign: scheme and pattern typos produce
  // the one uniform error shape, including the registered names.
  for (const char* line : {"routing=magic", "pattern=nonsense"}) {
    try {
      (void)parseSpecLine(line);
      FAIL() << "expected invalid_argument for " << line;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("unknown "), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("(registered: "),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Spec, TopoAcceptsRegisteredPresets) {
  EXPECT_EQ(parseSpecLine("topo=paper-slim").topo, xgft::xgft2(16, 16, 10));
  EXPECT_EQ(parseSpecLine("topo=xgft2:8:8:4").topo, xgft::xgft2(8, 8, 4));
  EXPECT_EQ(parseSpecLine("topo=kary:4:2").topo, xgft::karyNTree(4, 2));
  EXPECT_THROW(parseSpecLine("topo=notatopo"), std::invalid_argument);
}

TEST(Spec, ParseAppliesDefaults) {
  const ExperimentSpec spec = parseSpecLine("pattern=ring:64");
  EXPECT_EQ(spec.topo, xgft::karyNTree(16, 2));
  EXPECT_EQ(spec.routing, "d-mod-k");
  EXPECT_EQ(spec.msgScale, 1.0);
  EXPECT_EQ(spec.seed, 1u);
}

TEST(Spec, FamilyKeysBuildTwoLevelTree) {
  const ExperimentSpec spec = parseSpecLine("m1=8 m2=8 w2=4");
  EXPECT_EQ(spec.topo, xgft::xgft2(8, 8, 4));
}

TEST(Spec, TopoAndFamilyAreMutuallyExclusive) {
  EXPECT_THROW(parseSpecLine("topo=\"XGFT(2; 8,8; 1,4)\" w2=2"),
               std::invalid_argument);
}

TEST(Spec, RejectsMalformedInput) {
  EXPECT_THROW(parseSpecLine("notakeyvalue"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("pattern="), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("routing=magic"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("msg_scale=0"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("seed=abc"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("topo=\"XGFT(2; 8,8"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("seed=1..4"), std::invalid_argument);
}

TEST(Spec, OpenLoopKeysParseAndRoundTrip) {
  const ExperimentSpec spec =
      parseSpecLine("topo=paper-slim source=poisson:uniform load=0.3 "
                    "routing=Random seed=9");
  EXPECT_EQ(spec.source, "poisson:uniform");
  EXPECT_EQ(spec.load, 0.3);
  EXPECT_EQ(parseSpecLine(spec.toLine()), spec);
  // Closed-loop lines never mention source/load (the historical format).
  EXPECT_EQ(parseSpecLine("pattern=ring:64").toLine().find("source"),
            std::string::npos);
}

TEST(Spec, OpenLoopKeysValidate) {
  // Unknown source names surface the registry's uniform error.
  try {
    (void)parseSpecLine("source=magic load=0.5");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown traffic source"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(registered: "), std::string::npos);
  }
  // load needs a source; pattern and source are mutually exclusive; load
  // bounds.
  EXPECT_THROW(parseSpecLine("load=0.5"), std::invalid_argument);
  EXPECT_THROW(parseSpecLine("pattern=ring:64 source=poisson:uniform"),
               std::invalid_argument);
  EXPECT_THROW(parseSpecLine("source=poisson:uniform load=0"),
               std::invalid_argument);
  EXPECT_THROW(parseSpecLine("source=poisson:uniform load=5"),
               std::invalid_argument);
}

TEST(Spec, LoadSweepsExpandLikeAnyAxis) {
  const auto jobs = expandCampaignLine(
      "source=poisson:uniform load={0.1,0.2,0.3} routing=d-mod-k");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].load, 0.1);
  EXPECT_EQ(jobs[2].load, 0.3);
}

TEST(Spec, RangeExpansionIsInclusiveBothDirections) {
  const auto up = expandCampaignLine("seed=2..5");
  ASSERT_EQ(up.size(), 4u);
  EXPECT_EQ(up.front().seed, 2u);
  EXPECT_EQ(up.back().seed, 5u);
  const auto down = expandCampaignLine("w2=4..1");
  ASSERT_EQ(down.size(), 4u);
  EXPECT_EQ(down.front().topo, xgft::xgft2(16, 16, 4));
  EXPECT_EQ(down.back().topo, xgft::xgft2(16, 16, 1));
}

TEST(Spec, CrossProductVariesLastKeyFastest) {
  const auto jobs =
      expandCampaignLine("routing={s-mod-k,Random} seed=1..3");
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].routing, "s-mod-k");
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[2].seed, 3u);
  EXPECT_EQ(jobs[3].routing, "Random");
  EXPECT_EQ(jobs[3].seed, 1u);
}

TEST(Spec, CampaignSkipsCommentsAndBlankLines) {
  const auto jobs = parseCampaign(
      "# a comment\n"
      "\n"
      "pattern=ring:32 seed=1..2   # trailing comment\n"
      "pattern=ring:16\n");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].pattern, "ring:32");
  EXPECT_EQ(jobs[2].pattern, "ring:16");
}

TEST(Spec, CampaignErrorsCarryLineNumbers) {
  try {
    (void)parseCampaign("pattern=ring:8\nbogus=1\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Spec, FigureSweepExpandsToTheExpectedJobCount) {
  // The Fig. 5 campaign shape: 16 w2 x 3 centered + 16 w2 x 3 algos x 10
  // seeds.
  const auto jobs = parseCampaign(
      "pattern=cg128 w2=16..1 routing={s-mod-k,d-mod-k,colored} seed=1\n"
      "pattern=cg128 w2=16..1 routing={Random,r-NCA-u,r-NCA-d} seed=1..10\n");
  EXPECT_EQ(jobs.size(), 16u * 3u + 16u * 3u * 10u);
}

TEST(Spec, FaultsKeyParsesCanonicalizesAndRoundTrips) {
  const ExperimentSpec spec = parseSpecLine(
      "source=poisson:uniform load=0.3 faults=links:10");
  EXPECT_EQ(spec.faults, "links:10");
  EXPECT_EQ(parseSpecLine(spec.toLine()), spec);
  // faults=none is byte-for-byte the absent key: healthy campaign lines
  // (and their cache keys) never change spelling.
  EXPECT_EQ(parseSpecLine("pattern=ring:8 faults=none").faults, "");
  EXPECT_EQ(parseSpecLine("pattern=ring:8 faults=none").toLine(),
            parseSpecLine("pattern=ring:8").toLine());
  EXPECT_EQ(parseSpecLine("pattern=ring:8").toLine().find("faults"),
            std::string::npos);
}

TEST(Spec, FaultsKeyRejectsUnknownModelsWithTheRegistryListing) {
  try {
    (void)parseSpecLine("pattern=ring:8 faults=meteor:3");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown fault model"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("(registered: "), std::string::npos);
  }
}

TEST(Spec, FaultsSweepExpandsLikeAnyAxis) {
  const auto jobs = expandCampaignLine(
      "source=poisson:uniform load=0.4 faults={none,links:5,links:10}");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].faults, "");
  EXPECT_EQ(jobs[1].faults, "links:5");
  EXPECT_EQ(jobs[2].faults, "links:10");
}

TEST(Spec, DuplicateKeysFailLoudly) {
  // Last-wins would silently drop the first assignment of a typo'd sweep
  // line; the parser must reject it instead.
  for (const char* line :
       {"seed=1 seed=2", "pattern=ring:8 pattern=ring:16",
        "routing=d-mod-k msg_scale=0.5 routing=Random"}) {
    try {
      (void)parseSpecLine(line);
      FAIL() << "expected invalid_argument for " << line;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate key '"),
                std::string::npos)
          << e.what();
    }
  }
  EXPECT_THROW(parseSpecLine("seed=1 seed=1"), std::invalid_argument);
}

TEST(Spec, DeriveSeedIsStable) {
  // Pinned values: campaign outputs (seeded patterns, spray choices) must
  // replay identically across platforms and releases.
  EXPECT_EQ(deriveSeed(1, "pattern"), 13362491538261306851ULL);
  EXPECT_EQ(deriveSeed(1, "spray"), 18430719551283032133ULL);
  EXPECT_EQ(deriveSeed(42, "pattern"), 8884445026359647558ULL);
}

TEST(Spec, DeriveSeedSeparatesRolesAndBases) {
  EXPECT_NE(deriveSeed(1, "pattern"), deriveSeed(1, "spray"));
  EXPECT_NE(deriveSeed(1, "pattern"), deriveSeed(2, "pattern"));
}

TEST(Spec, MakeWorkloadBuildsTheBuiltins) {
  ExperimentSpec spec;
  spec.pattern = "cg128";
  EXPECT_EQ(makeWorkload(spec).numRanks, 128u);
  EXPECT_EQ(makeWorkload(spec).phases.size(), 5u);
  spec.pattern = "wrf256";
  EXPECT_EQ(makeWorkload(spec).numRanks, 256u);
  spec.pattern = "ring:48";
  EXPECT_EQ(makeWorkload(spec).numRanks, 48u);
  spec.pattern = "stencil:4:8";
  EXPECT_EQ(makeWorkload(spec).numRanks, 32u);
  spec.pattern = "shift:8";
  EXPECT_EQ(makeWorkload(spec).phases.size(), 7u);
}

TEST(Spec, MakeWorkloadScalesMessages) {
  ExperimentSpec spec;
  spec.pattern = "cg128";
  spec.msgScale = 0.5;
  const patterns::PhasedPattern app = makeWorkload(spec);
  EXPECT_EQ(app.phases.at(0).flows().at(0).bytes,
            patterns::kCgMessageBytes / 2);
}

TEST(Spec, MakeWorkloadSeededPatternsFollowTheJobSeed) {
  ExperimentSpec a;
  a.pattern = "uniform:64:2";
  ExperimentSpec b = a;
  b.seed = 2;
  EXPECT_EQ(makeWorkload(a).flattened().flows(),
            makeWorkload(a).flattened().flows());
  EXPECT_NE(makeWorkload(a).flattened().flows(),
            makeWorkload(b).flattened().flows());
  EXPECT_TRUE(a.scenario().patternSeeded());
  ExperimentSpec cg;
  cg.pattern = "cg128";
  EXPECT_FALSE(cg.scenario().patternSeeded());
}

TEST(Spec, MakeWorkloadRejectsUnknownPatterns) {
  ExperimentSpec spec;
  spec.pattern = "nonsense";
  EXPECT_THROW(makeWorkload(spec), std::invalid_argument);
  spec.pattern = "ring";  // Missing argument.
  EXPECT_THROW(makeWorkload(spec), std::invalid_argument);
  spec.pattern = "ring:8:9";  // Too many arguments.
  EXPECT_THROW(makeWorkload(spec), std::invalid_argument);
}

}  // namespace
}  // namespace engine
