// Locale-independence regression for campaign CSV output: a process
// running under a comma-decimal, digit-grouping locale must produce the
// exact same CSV bytes as the "C" locale, or golden-CSV comparisons (and
// any downstream parser) silently break.  Guards the std::to_chars float
// rendering in engine/results.cpp and the classic-locale imbue in
// writeCsv.
//
// The test installs the hostile locale twice over: std::locale::global
// with custom numpunct facets (always available — covers iostream
// formatting) and, when the host has it, setlocale(LC_ALL, "de_DE.UTF-8")
// (covers the printf/strtod family).
#include <gtest/gtest.h>

#include <clocale>
#include <fstream>
#include <locale>
#include <sstream>

#include "engine/campaigns.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"

#ifndef XGFT_TESTS_DIR
#error "XGFT_TESTS_DIR must point at the source tests/ directory"
#endif

namespace engine {
namespace {

/// 1.234.567,89-style numeric formatting, no locale data needed.
template <typename Base>
class CommaDecimal : public Base {
 public:
  using Base::Base;

 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class CommaLocale : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = std::locale::global(std::locale(
        std::locale::classic(), new CommaDecimal<std::numpunct<char>>()));
    previousC_ = std::setlocale(LC_ALL, nullptr);
    // Best effort: a real comma-decimal C locale too, if generated on the
    // host (covers snprintf-style formatting the facets cannot reach).
    if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr) {
      std::setlocale(LC_ALL, "fr_FR.UTF-8");
    }
  }
  void TearDown() override {
    std::locale::global(previous_);
    std::setlocale(LC_ALL, previousC_.c_str());
  }

 private:
  std::locale previous_{};
  std::string previousC_;
};

TEST_F(CommaLocale, NumbersWouldDriftWithoutTheGuards) {
  // Sanity: the hostile locale really does reformat numbers through
  // iostreams, so a pass below is meaningful.
  std::ostringstream os;
  os << 47232;
  EXPECT_EQ(os.str(), "47.232");
}

TEST_F(CommaLocale, SmokeCampaignCsvMatchesTheFixtureByteForByte) {
  std::ifstream fixture(
      std::string(XGFT_TESTS_DIR) + "/engine/data/smoke_campaign.csv",
      std::ios::binary);
  ASSERT_TRUE(fixture) << "missing smoke_campaign.csv fixture";
  std::ostringstream want;
  want << fixture.rdbuf();

  const CampaignOptions copt{/*seeds=*/2, /*msgScale=*/0.0625};
  const std::vector<ExperimentSpec> specs =
      parseCampaign(builtinCampaign("smoke", copt));
  ASSERT_FALSE(specs.empty());
  const CampaignResults results = Runner(RunnerOptions{}).run(specs);
  for (const JobResult& job : results.jobs) {
    ASSERT_TRUE(job.ok) << job.spec.toLine() << ": " << job.error;
  }
  EXPECT_EQ(results.toCsv(), want.str())
      << "campaign CSV depends on the process locale";
}

}  // namespace
}  // namespace engine
