// Engine-level tests of the faults= axis and the faultsweep builtin:
// byte-identical CSVs across thread counts and repeats, healthy-campaign
// output untouched by a faults=none key, monotone accepted-throughput
// degradation with the failure rate, the conditional fault CSV columns,
// manifest schema gating, and fault-job error shapes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/degradation.hpp"
#include "engine/campaigns.hpp"
#include "engine/manifest.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace engine {
namespace {

/// Small fast sweep mirroring the faultsweep builtin's shape: one moderate
/// operating point per (scheme, plan) cell on a 64-host slimmed tree.
constexpr const char* kSweep =
    "m1=8 m2=8 w2=4 source=poisson:uniform load=0.45 "
    "routing={d-mod-k,Random} faults={none,links:10,links:30,links:60} "
    "seed=1\n";

RunnerOptions fastOptions(std::uint32_t threads) {
  RunnerOptions opt;
  opt.threads = threads;
  opt.openLoopWarmupNs = 100'000;
  opt.openLoopMeasureNs = 500'000;
  return opt;
}

TEST(FaultSweep, BuiltinExpandsTheSchemeByPlanCrossProduct) {
  const std::vector<ExperimentSpec> specs =
      parseCampaign(builtinCampaign("faultsweep", CampaignOptions{}));
  ASSERT_EQ(specs.size(), 2u * 5u);
  EXPECT_EQ(specs[0].faults, "");  // The healthy baseline cell.
  EXPECT_EQ(specs[1].faults, "links:5");
  EXPECT_EQ(specs[4].faults, "links:30");
  EXPECT_EQ(specs[5].routing, "Random");
  for (const ExperimentSpec& spec : specs) {
    EXPECT_EQ(spec.source, "poisson:uniform");
  }
}

TEST(FaultSweep, CsvIsThreadCountAndRepeatDeterministic) {
  const std::vector<ExperimentSpec> specs = parseCampaign(std::string(kSweep));
  Runner serial(fastOptions(1));
  Runner parallel(fastOptions(4));
  const std::string a = serial.run(specs).toCsv();
  const std::string b = parallel.run(specs).toCsv();
  const std::string c = parallel.run(specs).toCsv();  // Warm cache repeat.
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(FaultSweep, AcceptedThroughputDegradesMonotonically) {
  const std::vector<ExperimentSpec> specs = parseCampaign(std::string(kSweep));
  Runner runner(fastOptions(0));
  const CampaignResults results = runner.run(specs);
  std::vector<analysis::DegradationPoint> points;
  for (const JobResult& job : results.jobs) {
    ASSERT_TRUE(job.ok) << job.spec.toLine() << ": " << job.error;
    points.push_back(analysis::DegradationPoint{
        job.spec.routing, job.spec.faults.empty() ? "none" : job.spec.faults,
        job.acceptedLoad, job.latencyP99Ns, job.net.messagesDropped});
  }
  const auto curves = analysis::degradationCurves(points);
  ASSERT_EQ(curves.size(), 2u);
  for (const analysis::DegradationCurve& curve : curves) {
    SCOPED_TRACE(curve.scheme);
    ASSERT_EQ(curve.cells.size(), 4u);
    // Small tolerance: the operating points are measured, not computed.
    EXPECT_TRUE(analysis::acceptedLoadMonotone(curve, 0.02));
    // The harshest plan must show real degradation, not noise.
    EXPECT_LT(curve.cells.back().acceptedLoad,
              curve.cells.front().acceptedLoad - 0.05);
  }
  EXPECT_GT(results.cache.degradedMisses, 0u);
}

TEST(FaultSweep, FaultsNoneIsByteIdenticalToTheAbsentKey) {
  // faults=none must leave healthy campaigns untouched: same CSV bytes,
  // same (v1) manifest schema, no fault columns.
  const std::string base =
      "m1=8 m2=8 w2=4 source=poisson:uniform load=0.3 routing=d-mod-k "
      "seed=1\n";
  const std::string withNone =
      "m1=8 m2=8 w2=4 source=poisson:uniform load=0.3 routing=d-mod-k "
      "faults=none seed=1\n";
  Runner runner(fastOptions(1));
  const CampaignResults a = runner.run(parseCampaign(base));
  const CampaignResults b = runner.run(parseCampaign(withNone));
  EXPECT_EQ(a.toCsv(), b.toCsv());
  EXPECT_FALSE(b.hasFaultJobs());
  EXPECT_EQ(b.toCsv().find("segments_stranded"), std::string::npos);
  std::ostringstream ma;
  writeManifest(ma, b);
  EXPECT_NE(ma.str().find("xgft-manifest-v1"), std::string::npos);
}

TEST(FaultSweep, FaultColumnsAndManifestBlockAppearOnlyWhenFaulted) {
  Runner runner(fastOptions(1));
  const CampaignResults results = runner.run(parseCampaign(std::string(
      "m1=8 m2=8 w2=4 source=poisson:uniform load=0.3 routing=d-mod-k "
      "faults={none,links:30} seed=1\n")));
  ASSERT_EQ(results.jobs.size(), 2u);
  ASSERT_TRUE(results.jobs[0].ok && results.jobs[1].ok);
  EXPECT_TRUE(results.hasFaultJobs());
  const std::string csv = results.toCsv();
  EXPECT_NE(csv.find("faults"), std::string::npos);
  EXPECT_NE(csv.find("segments_rerouted"), std::string::npos);
  EXPECT_NE(csv.find("link_down_ns"), std::string::npos);
  // Healthy rows in a faulted campaign carry the explicit "none" cell.
  EXPECT_NE(csv.find(",none,"), std::string::npos);
  std::ostringstream manifest;
  writeManifest(manifest, results);
  EXPECT_NE(manifest.str().find("xgft-manifest-v2"), std::string::npos);
  EXPECT_NE(manifest.str().find("\"faults\""), std::string::npos);
}

TEST(FaultSweep, PerSegmentSchemesAreRejectedAsJobErrors) {
  Runner runner(fastOptions(1));
  const CampaignResults results = runner.run(parseCampaign(std::string(
      "m1=8 m2=8 w2=4 source=poisson:uniform load=0.3 routing=adaptive "
      "faults=links:10 seed=1\n")));
  ASSERT_EQ(results.jobs.size(), 1u);
  EXPECT_FALSE(results.jobs[0].ok);
  EXPECT_NE(results.jobs[0].error.find("degraded"), std::string::npos)
      << results.jobs[0].error;
}

TEST(FaultSweep, ClosedLoopJobsRejectTimedPlansButRunStaticOnes) {
  Runner runner(fastOptions(1));
  // Timed plans need the open-loop machinery (a lost message would stall
  // the phase barrier): rejected as a job error, never a hang.
  const CampaignResults timed = runner.run(parseCampaign(std::string(
      "pattern=ring:16 m1=4 m2=4 w2=2 routing=d-mod-k faults=timed:5:1000 "
      "seed=1\n")));
  ASSERT_EQ(timed.jobs.size(), 1u);
  EXPECT_FALSE(timed.jobs[0].ok);
  EXPECT_NE(timed.jobs[0].error.find("open-loop"), std::string::npos)
      << timed.jobs[0].error;
  // A static plan replays the workload on the recompiled (kThrow) tables.
  // w2=4, links:10 -> 3 of 32 fabric links: cannot cover any switch's full
  // up-port set, so no pair partitions and kThrow compilation succeeds.
  const CampaignResults statics = runner.run(parseCampaign(std::string(
      "pattern=ring:16 m1=8 m2=8 w2=4 routing=d-mod-k faults=links:10 "
      "seed=1\n")));
  ASSERT_EQ(statics.jobs.size(), 1u);
  ASSERT_TRUE(statics.jobs[0].ok) << statics.jobs[0].error;
  EXPECT_GT(statics.jobs[0].makespanNs, 0u);
  EXPECT_EQ(statics.jobs[0].net.messagesDropped, 0u);
}

}  // namespace
}  // namespace engine
