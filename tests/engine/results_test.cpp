// Tests for the deterministic CSV aggregation layer.
#include "engine/results.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace engine {
namespace {

JobResult makeJob(std::uint32_t index) {
  JobResult job;
  job.jobIndex = index;
  job.spec.pattern = "ring:8";
  job.spec.seed = index;
  job.ok = true;
  job.makespanNs = 1000 + index;
  job.slowdown = 1.5;
  return job;
}

TEST(Results, CsvRowsAreSortedByJobIndex) {
  CampaignResults results;
  results.jobs.push_back(makeJob(2));
  results.jobs.push_back(makeJob(0));
  results.jobs.push_back(makeJob(1));
  const std::string csv = results.toCsv();
  const std::size_t r0 = csv.find("\n0,");
  const std::size_t r1 = csv.find("\n1,");
  const std::size_t r2 = csv.find("\n2,");
  ASSERT_NE(r0, std::string::npos);
  EXPECT_LT(r0, r1);
  EXPECT_LT(r1, r2);
  // writeCsv must not mutate the stored order (sorting is on a view).
  EXPECT_EQ(results.jobs.front().jobIndex, 2u);
}

TEST(Results, HeaderArityMatchesRows) {
  CampaignResults results;
  results.jobs.push_back(makeJob(0));
  std::istringstream csv(results.toCsv());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(csv, header));
  ASSERT_TRUE(std::getline(csv, row));
  const auto count = [](const std::string& line) {
    // Count unquoted commas.
    std::size_t n = 0;
    bool quoted = false;
    for (const char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(header), count(row));
}

TEST(Results, FieldsWithCommasAreQuoted) {
  CampaignResults results;
  JobResult job = makeJob(0);
  job.spec.topo = xgft::xgft2(8, 8, 4);  // "XGFT(2; 8,8; 1,4)"
  job.ok = false;
  job.error = "bad things, with \"quotes\"";
  results.jobs.push_back(job);
  const std::string csv = results.toCsv();
  EXPECT_NE(csv.find("\"XGFT(2; 8,8; 1,4)\""), std::string::npos);
  EXPECT_NE(csv.find("\"bad things, with \"\"quotes\"\"\""),
            std::string::npos);
  EXPECT_NE(csv.find(",error,"), std::string::npos);
}

TEST(Results, DoublesUseFixedPrecision) {
  CampaignResults results;
  JobResult job = makeJob(0);
  job.slowdown = 1.0 / 3.0;
  results.jobs.push_back(job);
  EXPECT_NE(results.toCsv().find("0.333333"), std::string::npos);
}

TEST(Results, FindLocatesExactSpecs) {
  CampaignResults results;
  results.jobs.push_back(makeJob(0));
  results.jobs.push_back(makeJob(1));
  ExperimentSpec probe = results.jobs[1].spec;
  ASSERT_NE(results.find(probe), nullptr);
  EXPECT_EQ(results.find(probe)->jobIndex, 1u);
  probe.seed = 99;
  EXPECT_EQ(results.find(probe), nullptr);
}

TEST(Results, SortByIndexIsIdempotent) {
  CampaignResults results;
  results.jobs.push_back(makeJob(1));
  results.jobs.push_back(makeJob(0));
  results.sortByIndex();
  results.sortByIndex();
  EXPECT_EQ(results.jobs.front().jobIndex, 0u);
}

}  // namespace
}  // namespace engine
