// Shard-count byte-identity at the campaign level: every builtin campaign
// must emit byte-identical CSVs and (includeHost=false) manifests whether
// each job's event core runs serial or sharded (sim_threads 1/2/4).  For
// closed-loop and faulted campaigns the engine falls back to the serial
// core, so identity is structural; for the open-loop loadsweep the sharded
// path genuinely executes — this is the engine-level pin of the
// determinism contract in sim/shard.hpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/campaigns.hpp"
#include "engine/manifest.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace engine {
namespace {

/// Trimmed campaign instances (two seeds, 1/32 message scale, short
/// open-loop windows) — the shapes stay real, the runtime stays test-sized.
std::vector<ExperimentSpec> smallCampaign(const std::string& name) {
  const CampaignOptions copt{/*seeds=*/2, /*msgScale=*/0.03125};
  return parseCampaign(builtinCampaign(name, copt));
}

RunnerOptions optionsWith(std::uint32_t simThreads) {
  RunnerOptions opt;
  opt.threads = 1;  // One job at a time; sim_threads is the varied axis.
  opt.simThreads = simThreads;
  opt.openLoopWarmupNs = 50'000;
  opt.openLoopMeasureNs = 200'000;
  return opt;
}

struct CampaignOutput {
  std::string csv;
  std::string manifest;
};

CampaignOutput runCampaign(const std::string& name,
                           std::uint32_t simThreads) {
  Runner runner(optionsWith(simThreads));
  const CampaignResults results = runner.run(smallCampaign(name));
  for (const JobResult& job : results.jobs) {
    EXPECT_TRUE(job.ok) << name << ": " << job.error;
  }
  ManifestOptions mopt;
  mopt.includeHost = false;  // The byte-identity form.
  return CampaignOutput{results.toCsv(), manifestToJson(results, mopt)};
}

class ParallelIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelIdentity, CsvAndManifestAreByteIdenticalAcrossSimThreads) {
  const std::string name = GetParam();
  const CampaignOutput serial = runCampaign(name, 1);
  EXPECT_NE(serial.csv.find('\n'), std::string::npos);
  for (const std::uint32_t simThreads : {2u, 4u}) {
    SCOPED_TRACE(simThreads);
    const CampaignOutput sharded = runCampaign(name, simThreads);
    EXPECT_EQ(serial.csv, sharded.csv);
    EXPECT_EQ(serial.manifest, sharded.manifest);
  }
}

INSTANTIATE_TEST_SUITE_P(Builtins, ParallelIdentity,
                         ::testing::Values("fig2-cg", "fig4", "fig5-cg",
                                           "smoke", "loadsweep",
                                           "faultsweep"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ParallelIdentity, SpecLevelSimThreadsKeyOverridesTheRunner) {
  // sim_threads= inside a spec line parses, overrides the runner budget,
  // and stays out of the canonical line form (host-volatile).
  const ExperimentSpec spec =
      parseSpecLine("m1=8 m2=8 w2=2 source=poisson:uniform load=0.6 "
                    "routing=d-mod-k sim_threads=4");
  EXPECT_EQ(spec.simThreads, 4u);
  EXPECT_EQ(spec.toLine().find("sim_threads"), std::string::npos);
  // And the measured configuration compares equal across the knob.
  ExperimentSpec serial = spec;
  serial.simThreads = 0;
  EXPECT_EQ(serial, spec);
}

}  // namespace
}  // namespace engine
