// Tests for per-job run manifests: determinism across worker-thread counts
// (the contract engine/manifest.hpp pins with includeHost=false), the
// host-volatile fields gated by includeHost, the telemetry= spec key, and
// the invariant that telemetry never changes the campaign CSV.
#include "engine/manifest.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "engine/runner.hpp"
#include "engine/spec.hpp"
#include "obs/recorder.hpp"

namespace engine {
namespace {

std::vector<ExperimentSpec> smallCampaign() {
  return parseCampaign(
      "pattern=ring:64 msg_scale=0.0625 m1=8 m2=8 w2={4,2} "
      "routing={d-mod-k,Random} seed=1\n");
}

CampaignResults runWith(std::uint32_t threads, TelemetryLevel level) {
  RunnerOptions opt;
  opt.threads = threads;
  opt.telemetry = level;
  return Runner(opt).run(smallCampaign());
}

TEST(Manifest, ByteIdenticalAcrossThreadCountsWithoutHostFields) {
  ManifestOptions opt;
  opt.includeHost = false;
  const std::string one =
      manifestToJson(runWith(1, TelemetryLevel::kSummary), opt);
  const std::string three =
      manifestToJson(runWith(3, TelemetryLevel::kSummary), opt);
  EXPECT_EQ(one, three);
  EXPECT_NE(one.find("\"schema\": \"xgft-manifest-v1\""), std::string::npos);
  EXPECT_NE(one.find("\"telemetry\": {"), std::string::npos);
  // Host-volatile fields must be absent in the deterministic form.
  EXPECT_EQ(one.find("wall_ms"), std::string::npos);
  EXPECT_EQ(one.find("threads"), std::string::npos);
  EXPECT_EQ(one.find("events_per_sec"), std::string::npos);
}

TEST(Manifest, HostFieldsAppearWhenRequested) {
  const CampaignResults results = runWith(2, TelemetryLevel::kOff);
  std::ostringstream os;
  writeManifest(os, results, ManifestOptions{});  // includeHost defaults on.
  const std::string json = os.str();
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("wall_ms"), std::string::npos);
  EXPECT_NE(json.find("events_per_sec"), std::string::npos);
  // No recorder attached: no telemetry blocks.
  EXPECT_EQ(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

TEST(Manifest, JobsAreOrderedAndKeyedBySpecLine) {
  const CampaignResults results = runWith(2, TelemetryLevel::kOff);
  const std::string json = manifestToJson(results, ManifestOptions{});
  // Job 0 (d-mod-k) must be rendered before job 1 (Random).
  const std::size_t first = json.find("\"job\": 0");
  const std::size_t second = json.find("\"job\": 1");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_NE(json.find("routing=d-mod-k"), std::string::npos);
}

TEST(Manifest, FailedJobsCarryTheirError) {
  std::vector<ExperimentSpec> specs = smallCampaign();
  specs[0].routing = "no-such-scheme";
  RunnerOptions opt;
  opt.threads = 1;
  const CampaignResults results = Runner(opt).run(specs);
  ManifestOptions mopt;
  mopt.includeHost = false;
  const std::string json = manifestToJson(results, mopt);
  EXPECT_NE(json.find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"error\": "), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

TEST(Spec, TelemetryKeyRoundTrips) {
  const std::vector<ExperimentSpec> specs = parseCampaign(
      "pattern=ring:16 m1=4 m2=4 w2=2 routing=d-mod-k telemetry=trace\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].telemetry, TelemetryLevel::kTrace);
  const std::string line = specs[0].toLine();
  EXPECT_NE(line.find("telemetry=trace"), std::string::npos);
  const std::vector<ExperimentSpec> reparsed = parseCampaign(line + "\n");
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0], specs[0]);
}

TEST(Spec, DefaultTelemetryIsOffAndOmittedFromTheLine) {
  const std::vector<ExperimentSpec> specs = parseCampaign(
      "pattern=ring:16 m1=4 m2=4 w2=2 routing=d-mod-k\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].telemetry, TelemetryLevel::kOff);
  EXPECT_EQ(specs[0].toLine().find("telemetry"), std::string::npos);
}

TEST(Runner, TelemetryLevelNeverChangesTheCsv) {
  const std::string off = runWith(2, TelemetryLevel::kOff).toCsv();
  const std::string summary = runWith(2, TelemetryLevel::kSummary).toCsv();
  const std::string trace = runWith(2, TelemetryLevel::kTrace).toCsv();
  EXPECT_EQ(off, summary);
  EXPECT_EQ(off, trace);
}

TEST(Runner, TelemetryRecorderIsAttachedPerLevel) {
  const CampaignResults off = runWith(1, TelemetryLevel::kOff);
  for (const JobResult& job : off.jobs) EXPECT_EQ(job.telemetry, nullptr);

  const CampaignResults summary = runWith(1, TelemetryLevel::kSummary);
  for (const JobResult& job : summary.jobs) {
    ASSERT_NE(job.telemetry, nullptr);
    EXPECT_FALSE(job.telemetry->config().recordEvents);
    EXPECT_GT(job.telemetry->summary().samples, 0u);
  }

  const CampaignResults trace = runWith(1, TelemetryLevel::kTrace);
  for (const JobResult& job : trace.jobs) {
    ASSERT_NE(job.telemetry, nullptr);
    EXPECT_TRUE(job.telemetry->config().recordEvents);
    EXPECT_GT(job.telemetry->summary().eventsRecorded, 0u);
  }
}

}  // namespace
}  // namespace engine
