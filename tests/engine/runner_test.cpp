// Tests for the campaign engine: thread-count-independent results, cache
// hit/miss behaviour (including shared in-flight builds), failure capture
// and the single-job execution path.
#include "engine/runner.hpp"

#include <gtest/gtest.h>

#include "engine/spec.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

namespace engine {
namespace {

/// A cheap but non-trivial campaign: two small topologies, three algorithms,
/// two seeds, scaled-down ring traffic.
std::vector<ExperimentSpec> smallCampaign() {
  return parseCampaign(
      "pattern=ring:64 msg_scale=0.0625 m1=8 m2=8 w2={4,2} "
      "routing={d-mod-k,Random,adaptive} seed=1..2\n");
}

TEST(Runner, CsvIsByteIdenticalAcrossThreadCounts) {
  const std::vector<ExperimentSpec> specs = smallCampaign();
  ASSERT_EQ(specs.size(), 12u);
  std::string csv1;
  std::string csv4;
  {
    RunnerOptions opt;
    opt.threads = 1;
    csv1 = Runner(opt).run(specs).toCsv();
  }
  {
    RunnerOptions opt;
    opt.threads = 4;
    csv4 = Runner(opt).run(specs).toCsv();
  }
  EXPECT_EQ(csv1, csv4);
  EXPECT_NE(csv1.find("ok"), std::string::npos);
}

TEST(Runner, ResultsAreSortedByJobIndexRegardlessOfCompletionOrder) {
  RunnerOptions opt;
  opt.threads = 4;
  const CampaignResults results = Runner(opt).run(smallCampaign());
  ASSERT_EQ(results.jobs.size(), 12u);
  for (std::size_t i = 0; i < results.jobs.size(); ++i) {
    EXPECT_EQ(results.jobs[i].jobIndex, i);
    EXPECT_TRUE(results.jobs[i].ok) << results.jobs[i].error;
  }
}

TEST(Runner, MatchesTheSerialHarness) {
  // The engine must reproduce trace::runApp / slowdownVsCrossbar exactly.
  ExperimentSpec spec;
  spec.topo = xgft::xgft2(8, 8, 4);
  spec.pattern = "ring:64";
  spec.routing = "d-mod-k";
  spec.msgScale = 0.0625;
  RunnerOptions opt;
  opt.threads = 1;
  const CampaignResults results = Runner(opt).run({spec});
  ASSERT_TRUE(results.jobs.at(0).ok);

  const xgft::Topology topo(spec.topo);
  const patterns::PhasedPattern app = makeWorkload(spec);
  const routing::RouterPtr router = routing::makeDModK(topo);
  const trace::RunResult expected = trace::runApp(topo, *router, app);
  EXPECT_EQ(results.jobs.at(0).makespanNs, expected.makespanNs);
  EXPECT_DOUBLE_EQ(results.jobs.at(0).slowdown,
                   trace::slowdownVsCrossbar(topo, *router, app));
}

TEST(Runner, CacheReusesTopologiesRoutersAndReferences) {
  const std::vector<ExperimentSpec> specs = smallCampaign();
  RunnerOptions opt;
  opt.threads = 2;
  Runner runner(opt);
  const CampaignResults results = runner.run(specs);
  const CacheStats& c = results.cache;
  // 12 jobs over 2 distinct topologies -> 2 misses, the rest hits.  (Every
  // job takes a topology exactly once.)
  EXPECT_EQ(c.topologyMisses, 2u);
  EXPECT_EQ(c.topologyHits, 10u);
  // Routers per topology: d-mod-k (1, shared by both seeds AND by the
  // adaptive jobs' placeholder) + Random seeds 1,2 -> 3 distinct per topo.
  EXPECT_EQ(c.routerMisses, 6u);
  EXPECT_EQ(c.routerHits, 6u);
  // One crossbar reference for the whole campaign: same pattern and scale.
  EXPECT_EQ(c.referenceMisses, 1u);
  EXPECT_EQ(c.referenceHits, 11u);
}

TEST(Runner, CacheStaysWarmAcrossCampaigns) {
  RunnerOptions opt;
  opt.threads = 1;
  Runner runner(opt);
  (void)runner.run(smallCampaign());
  const CampaignResults again = runner.run(smallCampaign());
  EXPECT_EQ(again.cache.topologyMisses, 2u);   // No new misses.
  EXPECT_EQ(again.cache.topologyHits, 22u);
  EXPECT_EQ(again.cache.referenceMisses, 1u);
}

TEST(Runner, SeededRoutersGetDistinctCacheEntries) {
  CampaignCache cache;
  ExperimentSpec spec;
  spec.topo = xgft::xgft2(4, 4, 2);
  spec.routing = "Random";
  const patterns::PhasedPattern app = makeWorkload(spec);
  const auto topo = cache.topology(spec.topo);
  const auto r1 = cache.router(spec, topo, app);
  spec.seed = 2;
  const auto r2 = cache.router(spec, topo, app);
  EXPECT_NE(r1.get(), r2.get());
  spec.seed = 1;
  EXPECT_EQ(cache.router(spec, topo, app).get(), r1.get());
  EXPECT_EQ(cache.stats().routerMisses, 2u);
  EXPECT_EQ(cache.stats().routerHits, 1u);
}

TEST(Runner, UnseededRoutersAreSharedAcrossSeeds) {
  CampaignCache cache;
  ExperimentSpec spec;
  spec.topo = xgft::xgft2(4, 4, 2);
  spec.routing = "s-mod-k";
  const patterns::PhasedPattern app = makeWorkload(spec);
  const auto topo = cache.topology(spec.topo);
  const auto r1 = cache.router(spec, topo, app);
  spec.seed = 99;
  EXPECT_EQ(cache.router(spec, topo, app).get(), r1.get());
}

TEST(Runner, FailedJobsAreCapturedNotThrown) {
  // 128 ranks cannot fit on a 16-host tree.
  ExperimentSpec bad;
  bad.topo = xgft::xgft2(4, 4, 2);
  bad.pattern = "cg128";
  ExperimentSpec good;
  good.topo = xgft::xgft2(4, 4, 2);
  good.pattern = "ring:16";
  good.msgScale = 0.0625;
  RunnerOptions opt;
  opt.threads = 2;
  const CampaignResults results = Runner(opt).run({bad, good});
  EXPECT_FALSE(results.jobs.at(0).ok);
  EXPECT_NE(results.jobs.at(0).error.find("ranks"), std::string::npos);
  EXPECT_TRUE(results.jobs.at(1).ok) << results.jobs.at(1).error;
}

TEST(Runner, RunJobPopulatesUtilizationAndContention) {
  ExperimentSpec spec;
  spec.topo = xgft::xgft2(4, 4, 4);
  spec.pattern = "alltoall:16";
  spec.msgScale = 0.0625;
  CampaignCache cache;
  const RunnerOptions opt;
  const JobResult job = runJob(spec, 0, cache, opt);
  ASSERT_TRUE(job.ok) << job.error;
  EXPECT_GT(job.makespanNs, 0u);
  EXPECT_GE(job.slowdown, 1.0);
  EXPECT_GT(job.utilMax, 0.0);
  EXPECT_LE(job.utilMax, 1.0);
  EXPECT_GT(job.utilMean, 0.0);
  EXPECT_LE(job.utilMean, job.utilMax);
  EXPECT_GT(job.maxFlowsPerChannel, 0u);
  EXPECT_GT(job.maxDemand, 0.9);  // ~1.0 up to accumulated rounding.
  // All-to-all uses every root; census extremes are populated and sane.
  EXPECT_GT(job.ncaRoutesMax, 0u);
  EXPECT_LE(job.ncaRoutesMin, job.ncaRoutesMax);
}

TEST(Runner, PerSegmentAlgorithmsSkipStaticContention) {
  ExperimentSpec spec;
  spec.topo = xgft::xgft2(4, 4, 4);
  spec.pattern = "alltoall:16";
  spec.msgScale = 0.0625;
  spec.routing = "spray";
  CampaignCache cache;
  const RunnerOptions opt;
  const JobResult job = runJob(spec, 0, cache, opt);
  ASSERT_TRUE(job.ok) << job.error;
  EXPECT_EQ(job.maxFlowsPerChannel, 0u);
  EXPECT_EQ(job.maxDemand, 0.0);
  EXPECT_GT(job.makespanNs, 0u);
}

TEST(Runner, ThreadCountDefaultsAndClamping) {
  RunnerOptions opt;
  opt.threads = 64;  // Far more threads than jobs: must clamp, not crash.
  const CampaignResults results = Runner(opt).run(
      parseCampaign("pattern=ring:16 msg_scale=0.0625 m1=4 m2=4 w2=2\n"));
  EXPECT_EQ(results.threadsUsed, 1u);
  EXPECT_TRUE(results.jobs.at(0).ok);
}

}  // namespace
}  // namespace engine
