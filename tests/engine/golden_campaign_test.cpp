// Golden-CSV regression for the registry-driven Scenario path: replays the
// "smoke" builtin campaign through the engine and byte-compares the CSV
// against a checked-in fixture.  This pins the engine's determinism
// contract (PR 1) across construction-path refactors: topology, pattern
// and router construction, compiled forwarding tables, the simulator's
// event ordering, and the CSV formatting all feed this byte stream.
//
// Regenerate the fixture ONLY for an intentional behaviour change:
//   ./build/campaign_cli --builtin smoke --seeds 2 --msg-scale 0.0625
//       --quiet --out tests/engine/data/smoke_campaign.csv   (one line)
// and explain the change in the commit message.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "engine/campaigns.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"

#ifndef XGFT_TESTS_DIR
#error "XGFT_TESTS_DIR must point at the source tests/ directory"
#endif

namespace engine {
namespace {

std::string fixturePath() {
  return std::string(XGFT_TESTS_DIR) + "/engine/data/smoke_campaign.csv";
}

TEST(GoldenCampaign, SmokeCsvIsByteIdenticalToTheFixture) {
  std::ifstream fixture(fixturePath(), std::ios::binary);
  ASSERT_TRUE(fixture) << "missing fixture " << fixturePath();
  std::ostringstream want;
  want << fixture.rdbuf();

  const CampaignOptions copt{/*seeds=*/2, /*msgScale=*/0.0625};
  const std::vector<ExperimentSpec> specs =
      parseCampaign(builtinCampaign("smoke", copt));
  ASSERT_FALSE(specs.empty());

  RunnerOptions ropt;  // campaign_cli defaults: contention on.
  const CampaignResults results = Runner(ropt).run(specs);
  for (const JobResult& job : results.jobs) {
    EXPECT_TRUE(job.ok) << job.spec.toLine() << ": " << job.error;
  }
  EXPECT_EQ(results.toCsv(), want.str())
      << "smoke campaign CSV drifted from the checked-in fixture — if this "
         "is an intentional behaviour change, regenerate it (see the "
         "comment at the top of this test)";
}

TEST(GoldenCampaign, VirtualAndCompiledPathsProduceTheSameCsv) {
  // The compiled forwarding tables must be a pure optimization.
  const CampaignOptions copt{/*seeds=*/1, /*msgScale=*/0.0625};
  const std::vector<ExperimentSpec> specs =
      parseCampaign(builtinCampaign("smoke", copt));
  RunnerOptions withTables;
  RunnerOptions without;
  without.compileRoutes = false;
  const std::string a = Runner(withTables).run(specs).toCsv();
  const std::string b = Runner(without).run(specs).toCsv();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace engine
