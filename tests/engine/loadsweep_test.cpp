// Engine-level tests of the open-loop (source=/load=) path: thread-count
// and repeat determinism of the load-sweep CSV, the conditional extended
// columns, monotone tail latency in offered load, and open-loop error
// shapes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace engine {
namespace {

/// A small, fast sweep: 64 hosts, slimmed (w2 = 2 of 8) so saturation is
/// reachable, short windows.
constexpr const char* kSweep =
    "m1=8 m2=8 w2=2 source=poisson:uniform load={0.1,0.3,0.6,1,1.5} "
    "routing=d-mod-k seed=1\n";

RunnerOptions fastOptions(std::uint32_t threads) {
  RunnerOptions opt;
  opt.threads = threads;
  opt.openLoopWarmupNs = 100'000;
  opt.openLoopMeasureNs = 500'000;
  return opt;
}

TEST(LoadSweep, CsvIsThreadCountAndRepeatDeterministic) {
  const std::vector<ExperimentSpec> specs = parseCampaign(std::string(kSweep));
  Runner serial(fastOptions(1));
  Runner parallel(fastOptions(4));
  const std::string a = serial.run(specs).toCsv();
  const std::string b = parallel.run(specs).toCsv();
  const std::string c = parallel.run(specs).toCsv();  // Warm cache repeat.
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(LoadSweep, TailLatencyIsMonotoneWithASaturationKnee) {
  const std::vector<ExperimentSpec> specs = parseCampaign(std::string(kSweep));
  Runner runner(fastOptions(0));
  const CampaignResults results = runner.run(specs);
  ASSERT_EQ(results.jobs.size(), 5u);
  double lastP99 = 0.0;
  for (const JobResult& job : results.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_TRUE(job.openLoop);
    EXPECT_GT(job.latencySamples, 0u);
    EXPECT_GE(static_cast<double>(job.latencyP99Ns), lastP99);
    lastP99 = static_cast<double>(job.latencyP99Ns);
  }
  // Below saturation accepted tracks offered; far beyond it the network
  // saturates (accepted plateaus under 1.0) and the tail explodes.
  EXPECT_NEAR(results.jobs[0].acceptedLoad, 0.1, 0.02);
  EXPECT_LT(results.jobs[4].acceptedLoad, 1.0);
  EXPECT_GT(results.jobs[4].latencyP99Ns, 10 * results.jobs[0].latencyP99Ns);
}

TEST(LoadSweep, ExtendedColumnsOnlyForOpenLoopCampaigns) {
  // Closed-loop campaigns keep the historical header byte-for-byte.
  EXPECT_EQ(CampaignResults::csvHeader(),
            CampaignResults::csvHeader(false));
  EXPECT_EQ(CampaignResults::csvHeader(true)
                .find(CampaignResults::csvHeader(false)),
            0u);
  Runner runner(fastOptions(1));
  const auto closed = runner.run(parseCampaign(
      std::string("pattern=ring:16 m1=4 m2=4 w2=2 routing=d-mod-k\n")));
  EXPECT_FALSE(closed.hasOpenLoopJobs());
  EXPECT_EQ(closed.toCsv().find("lat_p99_ns"), std::string::npos);
  const auto open = runner.run(parseCampaign(
      std::string("m1=4 m2=4 w2=2 source=poisson:uniform load=0.2 "
                  "routing=d-mod-k\n")));
  EXPECT_TRUE(open.hasOpenLoopJobs());
  EXPECT_NE(open.toCsv().find("lat_p99_ns"), std::string::npos);
  // Mixed campaigns extend every row; closed rows carry empty cells.
  const auto mixed = runner.run(parseCampaign(std::string(
      "pattern=ring:16 m1=4 m2=4 w2=2 routing=d-mod-k\n"
      "m1=4 m2=4 w2=2 source=poisson:uniform load=0.2 routing=d-mod-k\n")));
  ASSERT_EQ(mixed.jobs.size(), 2u);
  const std::string csv = mixed.toCsv();
  EXPECT_NE(csv.find(",,,,,,,,,"), std::string::npos);
}

TEST(LoadSweep, PatternAwareSchemesAreRejectedAsJobErrors) {
  Runner runner(fastOptions(1));
  const auto results = runner.run(parseCampaign(std::string(
      "m1=4 m2=4 w2=2 source=poisson:uniform load=0.2 routing=colored\n")));
  ASSERT_EQ(results.jobs.size(), 1u);
  EXPECT_FALSE(results.jobs[0].ok);
  EXPECT_NE(results.jobs[0].error.find("pattern-aware"), std::string::npos);
}

TEST(LoadSweep, SeedsShiftTheOperatingPointSlightly) {
  // Different seeds give statistically different streams (different event
  // counts) but comparable accepted load — the sweep is reproducible
  // noise, not a different experiment.
  Runner runner(fastOptions(0));
  const auto results = runner.run(parseCampaign(std::string(
      "m1=8 m2=8 w2=4 source=poisson:uniform load=0.3 routing=Random "
      "seed=1..2\n")));
  ASSERT_EQ(results.jobs.size(), 2u);
  ASSERT_TRUE(results.jobs[0].ok && results.jobs[1].ok);
  EXPECT_NE(results.jobs[0].net.eventsProcessed,
            results.jobs[1].net.eventsProcessed);
  EXPECT_NEAR(results.jobs[0].acceptedLoad, results.jobs[1].acceptedLoad,
              0.05);
}

}  // namespace
}  // namespace engine
