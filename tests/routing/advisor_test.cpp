// Tests for the Sec. VII-C scheme-selection heuristic.
#include "routing/advisor.hpp"

#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "patterns/synthetic.hpp"

namespace routing {
namespace {

TEST(Advisor, SymmetricPatternsAreTies) {
  // WRF and CG are symmetric: the paper proves equivalence there.
  EXPECT_EQ(adviseScheme(patterns::wrf256(1).phases[0]).advice,
            SchemeAdvice::kEither);
  EXPECT_EQ(adviseScheme(patterns::cgD128(1).flattened()).advice,
            SchemeAdvice::kEither);
  EXPECT_TRUE(adviseScheme(patterns::allToAll(16, 1)).symmetric);
}

TEST(Advisor, ScatterPrefersSModK) {
  // One source, many destinations: destination-dominated per the paper's
  // wording -> concentrate at the source.
  patterns::Pattern scatter(16);
  for (patterns::Rank d = 1; d < 16; ++d) scatter.add(0, d, 100);
  const DominanceReport r = adviseScheme(scatter);
  EXPECT_GT(r.meanFanOut, r.meanFanIn);
  EXPECT_EQ(r.advice, SchemeAdvice::kPreferSModK);
}

TEST(Advisor, GatherPrefersDModK) {
  const DominanceReport r = adviseScheme(patterns::hotspot(16, 3, 100));
  EXPECT_GT(r.meanFanIn, r.meanFanOut);
  EXPECT_EQ(r.advice, SchemeAdvice::kPreferDModK);
}

TEST(Advisor, BalancedAsymmetricPatternWithinBiasIsATie) {
  // A non-symmetric permutation: fan-out == fan-in == 1 everywhere.
  patterns::Pattern shift(8);
  for (patterns::Rank s = 0; s < 8; ++s) shift.add(s, (s + 1) % 8, 1);
  const DominanceReport r = adviseScheme(shift);
  EXPECT_FALSE(r.symmetric);
  EXPECT_EQ(r.advice, SchemeAdvice::kEither);
}

TEST(Advisor, BiasControlsTheThreshold) {
  // 2:1 fan-out dominance: advised at bias 1.25, tie at bias 3.
  patterns::Pattern p(8);
  p.add(0, 1, 1);
  p.add(0, 2, 1);
  p.add(3, 1, 1);  // Dest 1 has fan-in 2; dest 2 fan-in 1.
  p.add(4, 5, 1);
  p.add(4, 6, 1);
  const DominanceReport strict = adviseScheme(p, 10.0);
  EXPECT_EQ(strict.advice, SchemeAdvice::kEither);
}

TEST(Advisor, EmptyPatternIsATie) {
  EXPECT_EQ(adviseScheme(patterns::Pattern(4)).advice,
            SchemeAdvice::kEither);
}

TEST(Advisor, ToStringCoversAllValues) {
  EXPECT_EQ(toString(SchemeAdvice::kEither), "either (equivalent)");
  EXPECT_EQ(toString(SchemeAdvice::kPreferSModK), "prefer s-mod-k");
  EXPECT_EQ(toString(SchemeAdvice::kPreferDModK), "prefer d-mod-k");
}

}  // namespace
}  // namespace routing
