// Tests for the pattern-aware Colored router.
#include "routing/colored.hpp"

#include <gtest/gtest.h>

#include "analysis/contention.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "patterns/synthetic.hpp"
#include "routing/relabel.hpp"
#include "xgft/route.hpp"

namespace routing {
namespace {

using xgft::NodeIndex;
using xgft::Topology;

TEST(Colored, PermutationOnFullTreeIsContentionFree) {
  // A full k-ary 2-tree is rearrangeable (Sec. II): any permutation routes
  // without two flows sharing a channel.  Colored must find such routes.
  const Topology topo(xgft::karyNTree(8, 2));
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const patterns::Pattern perm =
        patterns::randomPermutation(64, seed).toPattern(1000);
    const ColoredRouter router(topo, perm);
    EXPECT_LE(router.estimatedMaxDemand(), 1.0 + 1e-9);
    const analysis::LoadSummary loads =
        analysis::computeLoads(topo, perm, router);
    EXPECT_LE(loads.maxFlowsPerChannel, 1u) << "seed " << seed;
  }
}

TEST(Colored, SlimmedTreePermutationReachesCeilBound) {
  // With w2 roots and Δ flows per switch, the best possible max link load
  // is ceil(Δ / w2); the König seed guarantees Colored reaches it.
  const Topology topo(xgft::xgft2(16, 16, 10));
  const patterns::Pattern perm =
      patterns::shiftPermutation(256, 16).toPattern(1000);
  const ColoredRouter router(topo, perm);
  const analysis::LoadSummary loads =
      analysis::computeLoads(topo, perm, router);
  // Every switch has 16 outgoing top-level flows over 10 roots -> 2.
  EXPECT_LE(loads.maxFlowsPerChannel, 2u);
}

TEST(Colored, CgPhase5AvoidsTheModKPathology) {
  const Topology topo(xgft::karyNTree(16, 2));
  const patterns::PhasedPattern cg = patterns::cgD128(1000);
  const ColoredRouter colored(topo, cg);
  const RouterPtr dmodk = makeDModK(topo);
  const patterns::Pattern& phase5 = cg.phases[4];
  const auto coloredLoads = analysis::computeLoads(topo, phase5, colored);
  const auto dmodkLoads = analysis::computeLoads(topo, phase5, *dmodk);
  // The Sec. VII-A pathology: 14 non-self flows per switch on 2 uplinks.
  EXPECT_EQ(dmodkLoads.maxFlowsPerChannel, 7u);
  EXPECT_LE(coloredLoads.maxFlowsPerChannel, 1u);
}

TEST(Colored, NotOblivious) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const ColoredRouter router(topo, patterns::Pattern(16));
  EXPECT_FALSE(router.isOblivious());
  EXPECT_EQ(router.name(), "colored");
}

TEST(Colored, FallsBackToDmodKForUnknownPairs) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  patterns::Pattern p(64);
  p.add(0, 9, 100);
  const ColoredRouter router(topo, p);
  const RouterPtr dmodk = makeDModK(topo);
  EXPECT_EQ(router.numOptimizedPairs(), 1u);
  // A pair absent from the pattern routes exactly like D-mod-k.
  EXPECT_EQ(router.route(5, 60), dmodk->route(5, 60));
}

TEST(Colored, RoutesAreStableAcrossPhases) {
  // A pair appearing in two phases keeps the first phase's route (static
  // tables).
  const Topology topo(xgft::xgft2(8, 8, 4));
  patterns::PhasedPattern app;
  app.numRanks = 64;
  patterns::Pattern p1(64);
  p1.add(0, 9, 100);
  patterns::Pattern p2(64);
  p2.add(0, 9, 100);
  p2.add(1, 8, 100);
  app.phases = {p1, p2};
  const ColoredRouter joint(topo, app);
  const ColoredRouter alone(topo, p1);
  EXPECT_EQ(joint.route(0, 9), alone.route(0, 9));
}

TEST(Colored, AllRoutesValidOnGeneralPatterns) {
  const Topology topo(xgft::Params({4, 3, 2}, {1, 2, 3}));
  const patterns::Pattern p = patterns::uniformRandom(24, 3, 100, 9);
  const ColoredRouter router(topo, p);
  for (const patterns::Flow& f : p.flows()) {
    if (f.src == f.dst) continue;
    std::string error;
    EXPECT_TRUE(
        validateRoute(topo, f.src, f.dst, router.route(f.src, f.dst), &error))
        << error;
  }
}

TEST(Colored, NeverWorseThanObliviousOnEffectiveDemand) {
  // Colored optimizes the Sec. IV metric directly, and its trials include
  // the S/D-mod-k assignments — so it can never lose to them on it.
  for (const std::uint32_t w2 : {16u, 10u, 4u}) {
    const Topology topo(xgft::xgft2(16, 16, w2));
    for (const patterns::PhasedPattern& app :
         {patterns::cgD128(1000), patterns::wrf256(1000)}) {
      const ColoredRouter colored(topo, app);
      const RouterPtr smodk = makeSModK(topo);
      const RouterPtr dmodk = makeDModK(topo);
      for (const patterns::Pattern& phase : app.phases) {
        const double coloredDemand =
            analysis::computeLoads(topo, phase, colored).maxDemand;
        const double best = std::min(
            analysis::computeLoads(topo, phase, *smodk).maxDemand,
            analysis::computeLoads(topo, phase, *dmodk).maxDemand);
        EXPECT_LE(coloredDemand, best + 1e-9)
            << app.name << " w2=" << w2;
      }
    }
  }
}

TEST(Colored, ForcedSeedStrategiesAreValidAndBestWins) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  const patterns::PhasedPattern cg = patterns::cgD128(1024);
  ColoredOptions best;
  best.seedStrategy = ColoredSeed::kBest;
  const ColoredRouter bestRouter(topo, cg, best);
  for (const ColoredSeed strategy :
       {ColoredSeed::kEdgeColoring, ColoredSeed::kDModK, ColoredSeed::kSModK,
        ColoredSeed::kGreedy}) {
    ColoredOptions options;
    options.seedStrategy = strategy;
    const ColoredRouter forced(topo, cg, options);
    // Every forced strategy yields valid routes...
    for (const patterns::Flow& f : cg.phases[4].flows()) {
      if (f.src == f.dst) continue;
      std::string error;
      EXPECT_TRUE(validateRoute(topo, f.src, f.dst,
                                forced.route(f.src, f.dst), &error))
          << error;
    }
    // ...and the default never does worse than any single strategy.
    EXPECT_LE(bestRouter.estimatedMaxDemand(),
              forced.estimatedMaxDemand() + 1e-9);
  }
}

TEST(Colored, HandlesTallTreesViaGreedy) {
  const Topology topo(xgft::Params({4, 4, 4}, {1, 2, 2}));
  const patterns::Pattern perm =
      patterns::randomPermutation(64, 5).toPattern(1000);
  const ColoredRouter router(topo, perm);
  const RouterPtr dmodk = makeDModK(topo);
  const double coloredDemand =
      analysis::computeLoads(topo, perm, router).maxDemand;
  const double dmodkDemand =
      analysis::computeLoads(topo, perm, *dmodk).maxDemand;
  EXPECT_LE(coloredDemand, dmodkDemand + 1e-9);
  for (const patterns::Flow& f : perm.flows()) {
    std::string error;
    EXPECT_TRUE(
        validateRoute(topo, f.src, f.dst, router.route(f.src, f.dst), &error))
        << error;
  }
}

}  // namespace
}  // namespace routing
