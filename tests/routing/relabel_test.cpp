// Tests for the relabeling framework: S-mod-k / D-mod-k as the modulo
// members, r-NCA-u / r-NCA-d as the balanced-random members (Sec. VIII).
#include "routing/relabel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "xgft/route.hpp"

namespace routing {
namespace {

using xgft::NodeIndex;
using xgft::Topology;

TEST(ModK, SModKMatchesPaperFormulaOnKaryTree) {
  // k-ary n-tree: S-mod-k chooses parent floor(s / k^{l-1}) mod k at hop l.
  const Topology topo(xgft::karyNTree(4, 3));
  const RouterPtr router = makeSModK(topo);
  for (NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (NodeIndex d : {NodeIndex{0}, NodeIndex{21}, NodeIndex{63}}) {
      const xgft::Route r = router->route(s, d);
      ASSERT_EQ(r.ncaLevel(), topo.ncaLevel(s, d));
      // up[0] is the host uplink (w1 = 1): always 0.
      if (r.ncaLevel() >= 1) {
        EXPECT_EQ(r.up[0], 0u);
      }
      for (std::uint32_t l = 1; l < r.ncaLevel(); ++l) {
        // Digit M_l of s in base k=4 chooses the parent at level l.
        EXPECT_EQ(r.up[l], (s >> (2 * (l - 1))) % 4)
            << "s=" << s << " level " << l;
      }
    }
  }
}

TEST(ModK, DModKMatchesPaperFormulaOnKaryTree) {
  const Topology topo(xgft::karyNTree(4, 2));
  const RouterPtr router = makeDModK(topo);
  for (NodeIndex s : {NodeIndex{0}, NodeIndex{7}}) {
    for (NodeIndex d = 0; d < topo.numHosts(); ++d) {
      if (topo.ncaLevel(s, d) != 2) continue;
      const xgft::Route r = router->route(s, d);
      // r1 = d mod k is the root-level choice (Sec. VII-A uses exactly
      // this to explain the CG pathology).
      EXPECT_EQ(r.up[1], d % 4);
    }
  }
}

TEST(ModK, XGFTUsesDigitModW) {
  // Slimmed tree: the operation is M_l mod w_{l+1} (Sec. V).
  const Topology topo(xgft::xgft2(16, 16, 10));
  const RouterPtr router = makeDModK(topo);
  for (NodeIndex d = 0; d < topo.numHosts(); d += 3) {
    const xgft::Route r = router->route((d + 16) % 256, d);
    ASSERT_EQ(r.ncaLevel(), 2u);
    EXPECT_EQ(r.up[1], (d % 16) % 10);
  }
}

TEST(ModK, SModKGivesEverySourceAUniquePathUp) {
  // "every source is assigned a unique path up regardless of the
  // destination" (Sec. VII).
  const Topology topo(xgft::xgft2(8, 8, 5));
  const RouterPtr router = makeSModK(topo);
  for (NodeIndex s = 0; s < topo.numHosts(); ++s) {
    std::set<std::vector<std::uint32_t>> prefixes;
    for (NodeIndex d = 0; d < topo.numHosts(); ++d) {
      if (topo.ncaLevel(s, d) != 2) continue;
      prefixes.insert(router->route(s, d).up);
    }
    EXPECT_EQ(prefixes.size(), 1u) << "source " << s;
  }
}

TEST(ModK, DModKGivesEveryDestinationAUniquePathDown) {
  const Topology topo(xgft::xgft2(8, 8, 5));
  const RouterPtr router = makeDModK(topo);
  for (NodeIndex d = 0; d < topo.numHosts(); ++d) {
    std::set<xgft::NodeIndex> ncas;
    for (NodeIndex s = 0; s < topo.numHosts(); ++s) {
      if (topo.ncaLevel(s, d) != 2) continue;
      ncas.insert(ncaOf(topo, s, router->route(s, d)));
    }
    // All top-level traffic to d converges on a single root.
    EXPECT_EQ(ncas.size(), 1u) << "destination " << d;
  }
}

TEST(ModK, RoutesAreAlwaysValid) {
  for (const xgft::Params& params :
       {xgft::karyNTree(4, 3), xgft::xgft2(16, 16, 7),
        xgft::Params({4, 3, 2}, {1, 2, 3}), xgft::Params({3, 4}, {2, 3})}) {
    const Topology topo(params);
    for (const auto& make : {makeSModK, makeDModK}) {
      const RouterPtr router = make(topo);
      for (NodeIndex s = 0; s < topo.numHosts(); s += 3) {
        for (NodeIndex d = 0; d < topo.numHosts(); d += 5) {
          std::string error;
          EXPECT_TRUE(validateRoute(topo, s, d, router->route(s, d), &error))
              << params.toString() << ": " << error;
        }
      }
    }
  }
}

TEST(RelabelScheme, ModSchemeIsBalanced) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  EXPECT_TRUE(RelabelScheme::mod(topo).isBalanced());
}

TEST(RelabelScheme, BalancedRandomIsBalanced) {
  for (const xgft::Params& params :
       {xgft::xgft2(16, 16, 10), xgft::xgft2(16, 16, 7),
        xgft::Params({4, 3, 2}, {1, 2, 3})}) {
    const Topology topo(params);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      EXPECT_TRUE(RelabelScheme::balancedRandom(topo, seed).isBalanced())
          << params.toString() << " seed " << seed;
    }
  }
}

TEST(RelabelScheme, FromTablesValidates) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  // Both levels consult digit M1 (radix 4) under m2 = 4 subtree contexts:
  // 16 entries each; level 0 maps into w1 = 1 ports, level 1 into w2 = 2.
  std::vector<std::vector<std::uint32_t>> tables(2);
  tables[0].assign(16, 0);
  tables[1] = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NO_THROW(RelabelScheme::fromTables(topo, tables));
  tables[1][3] = 2;  // Port 2 out of range for w2 = 2.
  EXPECT_THROW(RelabelScheme::fromTables(topo, tables),
               std::invalid_argument);
  tables[1] = {0, 1};  // Wrong size.
  EXPECT_THROW(RelabelScheme::fromTables(topo, tables),
               std::invalid_argument);
  EXPECT_THROW(RelabelScheme::fromTables(topo, {}), std::invalid_argument);
}

TEST(RelabelScheme, FromTablesReproducesModExactly) {
  const Topology topo(xgft::xgft2(8, 8, 5));
  std::vector<std::vector<std::uint32_t>> tables(2);
  tables[0].assign(8 * 8, 0);  // w1 = 1.
  tables[1].resize(8 * 8);     // 8 contexts x digit radix 8.
  for (std::uint32_t c = 0; c < 8; ++c) {
    for (std::uint32_t v = 0; v < 8; ++v) tables[1][c * 8 + v] = v % 5;
  }
  const RelabelRouter custom(topo, RelabelScheme::fromTables(topo, tables),
                             Guide::Destination, "custom");
  const RouterPtr dmodk = makeDModK(topo);
  for (NodeIndex s = 0; s < 64; s += 3) {
    for (NodeIndex d = 0; d < 64; d += 2) {
      EXPECT_EQ(custom.route(s, d), dmodk->route(s, d));
    }
  }
}

TEST(RNca, DeterministicPerSeed) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  const RouterPtr a = makeRNcaUp(topo, 99);
  const RouterPtr b = makeRNcaUp(topo, 99);
  const RouterPtr c = makeRNcaUp(topo, 100);
  bool anyDifferent = false;
  for (NodeIndex s = 0; s < 256; s += 7) {
    for (NodeIndex d = 0; d < 256; d += 5) {
      EXPECT_EQ(a->route(s, d), b->route(s, d));
      anyDifferent |= !(a->route(s, d) == c->route(s, d));
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(RNca, ConcentratesEndpointContentionLikeModK) {
  // r-NCA-u keeps the S-mod-k concentration property: one ascent per
  // source; r-NCA-d keeps one root per destination.
  const Topology topo(xgft::xgft2(8, 8, 5));
  const RouterPtr up = makeRNcaUp(topo, 3);
  const RouterPtr down = makeRNcaDown(topo, 3);
  for (NodeIndex x = 0; x < topo.numHosts(); ++x) {
    std::set<std::vector<std::uint32_t>> ascents;
    std::set<xgft::NodeIndex> roots;
    for (NodeIndex y = 0; y < topo.numHosts(); ++y) {
      if (topo.ncaLevel(x, y) != 2) continue;
      ascents.insert(up->route(x, y).up);
      roots.insert(ncaOf(topo, y, down->route(y, x)));
    }
    EXPECT_EQ(ascents.size(), 1u) << "source " << x;
    EXPECT_EQ(roots.size(), 1u) << "destination " << x;
  }
}

TEST(RNca, RoutesAreValidAcrossShapes) {
  for (const xgft::Params& params :
       {xgft::xgft2(16, 16, 3), xgft::Params({4, 3, 2}, {1, 2, 3}),
        xgft::Params({3, 4}, {2, 3})}) {
    const Topology topo(params);
    for (const std::uint64_t seed : {1ull, 2ull}) {
      for (const auto& make : {makeRNcaUp, makeRNcaDown}) {
        const RouterPtr router = make(topo, seed);
        for (NodeIndex s = 0; s < topo.numHosts(); s += 2) {
          for (NodeIndex d = 0; d < topo.numHosts(); d += 3) {
            std::string error;
            EXPECT_TRUE(
                validateRoute(topo, s, d, router->route(s, d), &error))
                << params.toString() << ": " << error;
          }
        }
      }
    }
  }
}

TEST(RNca, SubtreeMapsAreIndependentAcrossContexts) {
  // Different first-level switches should (almost always) scramble their
  // digits differently — that is what breaks CG's congruence.
  const Topology topo(xgft::xgft2(16, 16, 16));
  const RouterPtr router = makeRNcaDown(topo, 12345);
  std::set<std::vector<std::uint32_t>> perSwitchAssignments;
  for (NodeIndex sw = 0; sw < 16; ++sw) {
    std::vector<std::uint32_t> assignment;
    for (NodeIndex j = 0; j < 16; ++j) {
      const NodeIndex d = sw * 16 + j;
      // Any source in another switch reaches d through the same root.
      const NodeIndex s = (sw == 0) ? 16 : 0;
      assignment.push_back(
          static_cast<std::uint32_t>(ncaOf(topo, s, router->route(s, d))));
    }
    perSwitchAssignments.insert(assignment);
  }
  // 16 random bijections on 16 elements collide with probability ~0.
  EXPECT_GT(perSwitchAssignments.size(), 12u);
}

TEST(Router, NamesAndObliviousness) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  EXPECT_EQ(makeSModK(topo)->name(), "s-mod-k");
  EXPECT_EQ(makeDModK(topo)->name(), "d-mod-k");
  EXPECT_EQ(makeRNcaUp(topo, 1)->name(), "r-NCA-u");
  EXPECT_EQ(makeRNcaDown(topo, 1)->name(), "r-NCA-d");
  EXPECT_TRUE(makeSModK(topo)->isOblivious());
  EXPECT_TRUE(makeRNcaDown(topo, 1)->isOblivious());
}

}  // namespace
}  // namespace routing
