// Tests for the König bipartite edge-coloring substrate.
#include "routing/edge_coloring.hpp"

#include <gtest/gtest.h>

#include "patterns/permutation.hpp"
#include "xgft/rng.hpp"

namespace routing {
namespace {

TEST(EdgeColoring, EmptyGraph) {
  BipartiteMultigraph g;
  g.numLeft = g.numRight = 3;
  EXPECT_EQ(maxDegree(g), 0u);
  EXPECT_TRUE(colorBipartiteEdges(g).empty());
}

TEST(EdgeColoring, SingleEdge) {
  BipartiteMultigraph g;
  g.numLeft = g.numRight = 2;
  g.edges = {{0, 1}};
  const auto colors = colorBipartiteEdges(g);
  EXPECT_EQ(colors, std::vector<std::uint32_t>{0});
  EXPECT_TRUE(isProperEdgeColoring(g, colors));
}

TEST(EdgeColoring, ParallelEdgesGetDistinctColors) {
  BipartiteMultigraph g;
  g.numLeft = g.numRight = 1;
  g.edges = {{0, 0}, {0, 0}, {0, 0}};
  const auto colors = colorBipartiteEdges(g);
  EXPECT_TRUE(isProperEdgeColoring(g, colors));
  for (const auto c : colors) EXPECT_LT(c, 3u);
}

TEST(EdgeColoring, CompleteBipartiteUsesExactlyDeltaColors) {
  BipartiteMultigraph g;
  g.numLeft = g.numRight = 5;
  for (std::uint32_t u = 0; u < 5; ++u) {
    for (std::uint32_t v = 0; v < 5; ++v) g.edges.emplace_back(u, v);
  }
  EXPECT_EQ(maxDegree(g), 5u);
  const auto colors = colorBipartiteEdges(g);
  EXPECT_TRUE(isProperEdgeColoring(g, colors));
  for (const auto c : colors) EXPECT_LT(c, 5u);
}

TEST(EdgeColoring, ProperCheckerRejectsConflicts) {
  BipartiteMultigraph g;
  g.numLeft = g.numRight = 2;
  g.edges = {{0, 0}, {0, 1}};
  EXPECT_FALSE(isProperEdgeColoring(g, {0, 0}));  // Shared left vertex.
  EXPECT_TRUE(isProperEdgeColoring(g, {0, 1}));
  EXPECT_FALSE(isProperEdgeColoring(g, {0}));  // Arity mismatch.
}

TEST(EdgeColoring, PermutationTrafficNeedsOneColorPerParallelClass) {
  // A permutation between 16-host switches: each switch pair multigraph
  // degree equals the flows per switch; Δ colors suffice (König).
  const patterns::Permutation perm = patterns::randomPermutation(256, 11);
  BipartiteMultigraph g;
  g.numLeft = g.numRight = 16;
  for (std::uint32_t s = 0; s < 256; ++s) {
    if (perm(s) == s) continue;
    g.edges.emplace_back(s / 16, perm(s) / 16);
  }
  const std::uint32_t delta = maxDegree(g);
  const auto colors = colorBipartiteEdges(g);
  ASSERT_TRUE(isProperEdgeColoring(g, colors));
  for (const auto c : colors) EXPECT_LT(c, delta);
}

// Property sweep: random multigraphs of growing size stay properly colored
// with exactly Δ colors.
class EdgeColoringRandom : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EdgeColoringRandom, AlwaysProperWithDeltaColors) {
  const std::uint32_t seed = GetParam();
  xgft::Rng rng(seed);
  BipartiteMultigraph g;
  g.numLeft = 8 + static_cast<std::uint32_t>(rng.below(16));
  g.numRight = 8 + static_cast<std::uint32_t>(rng.below(16));
  const std::size_t numEdges = 200 + rng.below(400);
  for (std::size_t e = 0; e < numEdges; ++e) {
    g.edges.emplace_back(static_cast<std::uint32_t>(rng.below(g.numLeft)),
                         static_cast<std::uint32_t>(rng.below(g.numRight)));
  }
  const std::uint32_t delta = maxDegree(g);
  const auto colors = colorBipartiteEdges(g);
  ASSERT_TRUE(isProperEdgeColoring(g, colors));
  for (const auto c : colors) EXPECT_LT(c, delta);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeColoringRandom,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace routing
