// Property tests for the combinatorial equivalence results of Sec. VII-B/C:
// S-mod-k routing a pattern P behaves exactly like D-mod-k routing the
// inverse pattern P^{-1} — same contention-level distribution — and hence
// the two schemes are statistically identical over random workloads and
// *exactly* identical on symmetric patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/contention.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "patterns/synthetic.hpp"
#include "routing/relabel.hpp"

namespace routing {
namespace {

using xgft::Topology;

/// Sorted multiset of per-NCA contention values (the distribution the
/// paper's argument equates).
std::vector<std::uint32_t> contentionDistribution(
    const Topology& topo, const patterns::Pattern& p, const Router& router) {
  std::vector<std::uint32_t> values;
  for (const auto& [nca, c] : analysis::ncaContention(topo, p, router)) {
    values.push_back(c);
  }
  std::sort(values.begin(), values.end());
  return values;
}

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Equivalence, SmodkOnPEqualsDmodkOnInverseForPermutations) {
  // Sec. VII-B: for every permutation P, the contention levels per NCA of
  // S-mod-k on P equal those of D-mod-k on P^{-1}.
  const Topology topo(xgft::xgft2(16, 16, 10));
  const RouterPtr smodk = makeSModK(topo);
  const RouterPtr dmodk = makeDModK(topo);
  const patterns::Permutation perm =
      patterns::randomPermutation(256, GetParam());
  const patterns::Pattern p = perm.toPattern(1000);
  const patterns::Pattern pInv = perm.inverse().toPattern(1000);
  EXPECT_EQ(contentionDistribution(topo, p, *smodk),
            contentionDistribution(topo, pInv, *dmodk));
  // And symmetrically the other way around.
  EXPECT_EQ(contentionDistribution(topo, p, *dmodk),
            contentionDistribution(topo, pInv, *smodk));
}

TEST_P(Equivalence, HoldsForGeneralPatternsToo) {
  // Sec. VII-C: generalizes to unions of permutations (maximum network
  // contention per NCA, endpoint contention excluded).
  const Topology topo(xgft::xgft2(16, 16, 7));
  const RouterPtr smodk = makeSModK(topo);
  const RouterPtr dmodk = makeDModK(topo);
  const patterns::Pattern g =
      patterns::unionOfRandomPermutations(256, 3, 1000, GetParam());
  EXPECT_EQ(contentionDistribution(topo, g, *smodk),
            contentionDistribution(topo, g.inverse(), *dmodk));
}

TEST_P(Equivalence, MaxContentionLevelMatches) {
  const Topology topo(xgft::xgft2(16, 16, 4));
  const RouterPtr smodk = makeSModK(topo);
  const RouterPtr dmodk = makeDModK(topo);
  const patterns::Pattern p =
      patterns::randomPermutation(256, GetParam() + 100).toPattern(1);
  EXPECT_EQ(analysis::contentionLevel(topo, p, *smodk),
            analysis::contentionLevel(topo, p.inverse(), *dmodk));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Range(std::uint64_t{0},
                                          std::uint64_t{10}));

TEST(Equivalence, SymmetricPatternsRouteIdenticallyUnderBothSchemes) {
  // "if the pattern is symmetric, the inverse is itself, so the number of
  // expected conflicts is the same under both routing schemes" (VII-C).
  const Topology topo(xgft::xgft2(16, 16, 10));
  const RouterPtr smodk = makeSModK(topo);
  const RouterPtr dmodk = makeDModK(topo);
  for (const patterns::Pattern& p :
       {patterns::wrf256(1000).phases[0], patterns::cgD128(1000).phases[4],
        patterns::allToAll(256, 1)}) {
    ASSERT_TRUE(p.isSymmetric());
    EXPECT_EQ(contentionDistribution(topo, p, *smodk),
              contentionDistribution(topo, p, *dmodk));
  }
}

TEST(Equivalence, HoldsOnTallerTrees) {
  const Topology topo(xgft::Params({4, 4, 4}, {1, 3, 2}));
  const RouterPtr smodk = makeSModK(topo);
  const RouterPtr dmodk = makeDModK(topo);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const patterns::Permutation perm = patterns::randomPermutation(64, seed);
    EXPECT_EQ(
        contentionDistribution(topo, perm.toPattern(1), *smodk),
        contentionDistribution(topo, perm.inverse().toPattern(1), *dmodk));
  }
}

}  // namespace
}  // namespace routing
