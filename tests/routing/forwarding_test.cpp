// Tests for destination-indexed forwarding tables (LFT export).
#include "routing/forwarding.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "patterns/applications.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"

namespace routing {
namespace {

using xgft::Topology;

TEST(Forwarding, DmodKIsDestinationBased) {
  const Topology topo(xgft::xgft2(8, 8, 5));
  EXPECT_TRUE(
      ForwardingTables::isDestinationBased(topo, *makeDModK(topo)));
}

TEST(Forwarding, RNcaDownIsDestinationBased) {
  const Topology topo(xgft::xgft2(8, 8, 5));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_TRUE(ForwardingTables::isDestinationBased(
        topo, *makeRNcaDown(topo, seed)))
        << "seed " << seed;
  }
}

TEST(Forwarding, SourceGuidedSchemesAreNot) {
  // S-mod-k picks the ascent from the *source* label: two sources behind
  // different... the conflict shows at a shared ascent switch, which is why
  // such schemes need source routing rather than LFTs.
  const Topology topo(xgft::xgft2(8, 8, 5));
  EXPECT_FALSE(
      ForwardingTables::isDestinationBased(topo, *makeSModK(topo)));
  EXPECT_FALSE(
      ForwardingTables::isDestinationBased(topo, *makeRNcaUp(topo, 1)));
  EXPECT_FALSE(
      ForwardingTables::isDestinationBased(topo, *makeRandom(topo, 1)));
}

TEST(Forwarding, BuildThrowsForInconsistentSchemes) {
  const Topology topo(xgft::xgft2(8, 8, 5));
  EXPECT_THROW(ForwardingTables::build(topo, *makeSModK(topo)),
               std::invalid_argument);
}

TEST(Forwarding, WalkReachesEveryDestination) {
  const Topology topo(xgft::xgft2(8, 8, 5));
  const RouterPtr router = makeDModK(topo);
  const ForwardingTables ft = ForwardingTables::build(topo, *router);
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
      const auto hops = ft.walk(s, d);
      ASSERT_TRUE(hops.has_value()) << s << " -> " << d;
      // Minimal route: 2 * ncaLevel hops (0 for self).
      EXPECT_EQ(*hops, 2 * topo.ncaLevel(s, d));
    }
  }
}

TEST(Forwarding, WalkMatchesOnTallTrees) {
  const Topology topo(xgft::Params({4, 3, 2}, {1, 2, 3}));
  const RouterPtr router = makeDModK(topo);
  const ForwardingTables ft = ForwardingTables::build(topo, *router);
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
      const auto hops = ft.walk(s, d);
      ASSERT_TRUE(hops.has_value());
      EXPECT_EQ(*hops, 2 * topo.ncaLevel(s, d));
    }
  }
}

TEST(Forwarding, EntryCountsMatchReachability) {
  // Every (switch, dest) pair on some route gets exactly one entry; level-1
  // switches see all destinations (they are on the descent of their own
  // hosts and the ascent of the others).
  const Topology topo(xgft::karyNTree(4, 2));
  const ForwardingTables ft =
      ForwardingTables::build(topo, *makeDModK(topo));
  EXPECT_GT(ft.numEntries(), 0u);
  // Roots forward down only: every root used by some dest has an entry per
  // dest it serves; with D-mod-k each dest is served by exactly one root.
  std::uint64_t rootEntries = 0;
  for (xgft::NodeIndex sw = 0; sw < topo.nodesAtLevel(2); ++sw) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
      if (ft.port(2, sw, d) != ForwardingTables::kUnused) ++rootEntries;
    }
  }
  EXPECT_EQ(rootEntries, topo.numHosts());
}

TEST(Forwarding, ColoredIsPatternDependent) {
  // Colored's optimized pairs may split one destination across roots, so
  // it is generally not LFT-implementable either.
  const Topology topo(xgft::karyNTree(8, 2));
  const patterns::PhasedPattern cg = patterns::cgPhases(32, 8, 1024);
  const ColoredRouter colored(topo, cg);
  // Not asserting a fixed truth value (it depends on the optimizer's
  // choices); just exercising the probe on a non-oblivious router.
  (void)ForwardingTables::isDestinationBased(topo, colored);
}

TEST(Forwarding, PrintSwitchRendersPorts) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const ForwardingTables ft =
      ForwardingTables::build(topo, *makeDModK(topo));
  std::ostringstream os;
  ft.printSwitch(1, 0, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("down port"), std::string::npos);
  EXPECT_NE(out.find("up port"), std::string::npos);
}

TEST(Forwarding, PortValidation) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const ForwardingTables ft =
      ForwardingTables::build(topo, *makeDModK(topo));
  EXPECT_THROW((void)ft.port(0, 0, 0), std::out_of_range);
  EXPECT_THROW((void)ft.port(3, 0, 0), std::out_of_range);
}

}  // namespace
}  // namespace routing
