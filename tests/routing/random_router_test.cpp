// Tests for static Random routing.
#include "routing/random_router.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "xgft/route.hpp"

namespace routing {
namespace {

using xgft::NodeIndex;
using xgft::Topology;

TEST(RandomRouter, DeterministicPerSeedAndPair) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  const RouterPtr a = makeRandom(topo, 7);
  const RouterPtr b = makeRandom(topo, 7);
  for (NodeIndex s = 0; s < 256; s += 11) {
    for (NodeIndex d = 0; d < 256; d += 7) {
      EXPECT_EQ(a->route(s, d), b->route(s, d));
      // Repeated calls are stable (pure function of (seed, s, d)).
      EXPECT_EQ(a->route(s, d), a->route(s, d));
    }
  }
}

TEST(RandomRouter, DifferentSeedsDiffer) {
  const Topology topo(xgft::xgft2(16, 16, 10));
  const RouterPtr a = makeRandom(topo, 7);
  const RouterPtr b = makeRandom(topo, 8);
  std::uint32_t differing = 0;
  for (NodeIndex s = 0; s < 256; s += 3) {
    for (NodeIndex d = 0; d < 256; d += 3) {
      if (!(a->route(s, d) == b->route(s, d))) ++differing;
    }
  }
  EXPECT_GT(differing, 1000u);
}

TEST(RandomRouter, RoutesAreValid) {
  const Topology topo(xgft::Params({4, 3, 2}, {1, 2, 3}));
  const RouterPtr router = makeRandom(topo, 3);
  for (NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (NodeIndex d = 0; d < topo.numHosts(); ++d) {
      std::string error;
      EXPECT_TRUE(validateRoute(topo, s, d, router->route(s, d), &error))
          << error;
    }
  }
}

TEST(RandomRouter, UsesAllNcasRoughlyUniformly) {
  // Fig. 4: Random spreads routes evenly over the roots.
  const Topology topo(xgft::xgft2(16, 16, 16));
  const RouterPtr router = makeRandom(topo, 1);
  std::map<NodeIndex, std::uint64_t> census;
  std::uint64_t total = 0;
  for (NodeIndex s = 0; s < 256; ++s) {
    for (NodeIndex d = 0; d < 256; ++d) {
      if (topo.ncaLevel(s, d) != 2) continue;
      ++census[ncaOf(topo, s, router->route(s, d))];
      ++total;
    }
  }
  ASSERT_EQ(census.size(), 16u);  // Every root used.
  const double expected = static_cast<double>(total) / 16.0;
  for (const auto& [root, count] : census) {
    EXPECT_NEAR(static_cast<double>(count), expected, 0.05 * expected)
        << "root " << root;
  }
}

TEST(RandomRouter, DoesNotConcentrateEndpointContention) {
  // Unlike S-mod-k, a source's flows to different destinations usually
  // take different ascents — the paper's explanation for Random's poor
  // behaviour on WRF.
  const Topology topo(xgft::xgft2(16, 16, 16));
  const RouterPtr router = makeRandom(topo, 2);
  std::set<std::vector<std::uint32_t>> ascents;
  for (NodeIndex d = 16; d < 256; d += 16) {
    ascents.insert(router->route(0, d).up);
  }
  EXPECT_GT(ascents.size(), 5u);
}

}  // namespace
}  // namespace routing
