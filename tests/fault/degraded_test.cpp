// Tests for degraded-topology routing: the failed-link view, table
// recompilation around failures for every registered table scheme, the
// sibling-survival and full-partition edge cases, and both unreachable
// policies (throw vs. drop — never a hang, never a silent loss).
#include "fault/degraded.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/scenario.hpp"
#include "fault/plan.hpp"
#include "patterns/pattern.hpp"
#include "xgft/params.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace fault {
namespace {

using xgft::Topology;

/// Builds the (table-mode) scheme @p name through the registry, supplying
/// a small workload for pattern-aware schemes (Colored).
std::shared_ptr<const routing::Router> buildScheme(const std::string& name,
                                                   const Topology& topo) {
  core::Scenario scen;
  scen.topo = topo.params();
  scen.routing = name;
  scen.pattern = "ring:8";
  scen.seed = 1;
  const patterns::PhasedPattern app = scen.makeWorkload();
  return scen.makeRouter(topo, app);
}

/// Every ordered pair's compiled route avoids all failed links (unroutable
/// pairs excepted) and is a valid minimal route.
void expectTableAvoidsFailures(const core::CompiledRoutes& table,
                               const DegradedTopology& view,
                               const Topology& topo) {
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
      if (s == d || table.unroutable(s, d)) continue;
      const xgft::Route r = table.route(s, d);
      std::string err;
      ASSERT_TRUE(xgft::validateRoute(topo, s, d, r, &err))
          << s << "->" << d << ": " << err;
      EXPECT_FALSE(view.routeBlocked(s, d, r))
          << s << "->" << d << " still crosses a failed link";
    }
  }
}

TEST(DegradedTopology, ValidatesAndDeduplicatesFailedLinks) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const std::vector<xgft::LinkId> failed = {3, 3, 7};
  const DegradedTopology view(topo, failed);
  EXPECT_EQ(view.numFailed(), 2u);
  EXPECT_TRUE(view.linkFailed(3));
  EXPECT_TRUE(view.linkFailed(7));
  EXPECT_FALSE(view.linkFailed(4));
  const std::vector<xgft::LinkId> bad = {topo.numLinks()};
  EXPECT_THROW(DegradedTopology(topo, bad), std::invalid_argument);
}

TEST(DegradedTopology, RouteBlockedSeesExactlyTheCrossedLinks) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const xgft::Route r = xgft::routeViaNca(topo, 0, 5, 0);
  const auto channels = xgft::channelsOf(topo, 0, 5, r);
  ASSERT_FALSE(channels.empty());
  const std::vector<xgft::LinkId> onPath = {channels[1].link};
  EXPECT_TRUE(DegradedTopology(topo, onPath).routeBlocked(0, 5, r));
  // A link the route does not cross never blocks it.
  std::vector<xgft::LinkId> offPath;
  for (xgft::LinkId l = 0; l < topo.numLinks(); ++l) {
    bool crossed = false;
    for (const xgft::Channel& ch : channels) crossed |= (ch.link == l);
    if (!crossed) {
      offPath.push_back(l);
      break;
    }
  }
  ASSERT_FALSE(offPath.empty());
  EXPECT_FALSE(DegradedTopology(topo, offPath).routeBlocked(0, 5, r));
}

TEST(DegradedRouting, SiblingsKeepEveryPairReachable) {
  // w1 = 2: each host has a second level-1 parent, so killing every
  // up-link of one level-1 switch reroutes around it without losing any
  // pair (the satellite edge case the subsystem must get right).
  const Topology topo(xgft::Params({4, 4}, {2, 2}));
  const FaultPlan plan = makeFaultPlan("uplinks-of:1:0", topo, 1);
  const DegradedTopology view(topo, plan.failedAt(0));
  const DegradedRoutes degraded = compileDegraded(
      buildScheme("d-mod-k", topo), view, UnreachablePolicy::kThrow);
  EXPECT_TRUE(degraded.unreachable.empty());
  expectTableAvoidsFailures(*degraded.table, view, topo);
}

TEST(DegradedRouting, EveryTableSchemeCompilesAroundFailures) {
  const Topology topo(xgft::Params({4, 4}, {2, 2}));
  const FaultPlan plan = makeFaultPlan("links:25", topo, 5);
  const DegradedTopology view(topo, plan.failedAt(0));
  // Which pairs lose all their minimal routes is a property of the failed
  // set, not of the scheme: every table scheme must compile and report the
  // exact same unreachable set, and every surviving route must be clean.
  std::vector<std::pair<xgft::NodeIndex, xgft::NodeIndex>> expected;
  bool first = true;
  const auto names = core::schemeRegistry().names();
  for (const std::string& name : *names) {
    if (core::schemeRegistry().at(name).mode != core::RouteMode::kTable) {
      continue;
    }
    SCOPED_TRACE(name);
    const DegradedRoutes degraded = compileDegraded(
        buildScheme(name, topo), view, UnreachablePolicy::kDrop);
    if (first) {
      expected = degraded.unreachable;
      first = false;
    } else {
      EXPECT_EQ(degraded.unreachable, expected);
    }
    expectTableAvoidsFailures(*degraded.table, view, topo);
  }
  EXPECT_FALSE(first);  // At least one table scheme is registered.
}

TEST(DegradedRouting, CompressedLayoutMatchesFlatAroundFailures) {
  // The interval-compressed layout must reproduce the flat degraded table
  // pair-for-pair: same surviving routes, same unreachable set (compressed
  // len-0 runs cover both the diagonal and dropped pairs).
  const Topology topo(xgft::Params({4, 4}, {2, 2}));
  const FaultPlan plan = makeFaultPlan("links:25", topo, 5);
  const DegradedTopology view(topo, plan.failedAt(0));
  for (const char* scheme : {"d-mod-k", "Random"}) {
    SCOPED_TRACE(scheme);
    const DegradedRoutes flat =
        compileDegraded(buildScheme(scheme, topo), view,
                        UnreachablePolicy::kDrop, 1, core::TableLayout::kFlat);
    const DegradedRoutes packed = compileDegraded(
        buildScheme(scheme, topo), view, UnreachablePolicy::kDrop, 2,
        core::TableLayout::kCompressed);
    EXPECT_FALSE(flat.table->compressed());
    ASSERT_TRUE(packed.table->compressed());
    EXPECT_EQ(packed.unreachable, flat.unreachable);
    // Overridden tables compile eagerly — no chunk may outlive the view.
    EXPECT_EQ(packed.table->builtChunks(), packed.table->numChunks());
    for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
      for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
        const auto a = flat.table->upPorts(s, d);
        const auto b = packed.table->upPorts(s, d);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
            << s << " -> " << d;
      }
    }
    expectTableAvoidsFailures(*packed.table, view, topo);
  }
}

TEST(DegradedRouting, HealthyRoutesAreKeptVerbatim) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const auto router = buildScheme("d-mod-k", topo);
  // Fail one level-1 up-link: pairs not crossing it keep the scheme's own
  // choice (the degraded table only deviates where it must).
  const std::vector<xgft::LinkId> failed = {topo.upLink(1, 0, 0)};
  const DegradedTopology view(topo, failed);
  const DegradedRoutes degraded =
      compileDegraded(router, view, UnreachablePolicy::kThrow);
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
      if (s == d) continue;
      const xgft::Route own = router->route(s, d);
      if (!view.routeBlocked(s, d, own)) {
        EXPECT_EQ(degraded.table->route(s, d), own) << s << "->" << d;
      }
    }
  }
}

TEST(DegradedRouting, PartitionedPairThrowsUnderThrowPolicy) {
  // w1 = 1: the host's single up-link is its only way out, so failing all
  // up-links of its level-1 switch partitions that whole subtree from the
  // rest of the tree.
  const Topology topo(xgft::Params({4, 4}, {1, 4}));
  const FaultPlan plan = makeFaultPlan("uplinks-of:1:0", topo, 1);
  const DegradedTopology view(topo, plan.failedAt(0));
  try {
    (void)compileDegraded(buildScheme("d-mod-k", topo), view,
                          UnreachablePolicy::kThrow);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unreachable"), std::string::npos)
        << e.what();
  }
}

TEST(DegradedRouting, PartitionedPairsAreReportedUnderDropPolicy) {
  const Topology topo(xgft::Params({4, 4}, {1, 4}));
  const FaultPlan plan = makeFaultPlan("uplinks-of:1:0", topo, 1);
  const DegradedTopology view(topo, plan.failedAt(0));
  const DegradedRoutes degraded = compileDegraded(
      buildScheme("d-mod-k", topo), view, UnreachablePolicy::kDrop);
  // Hosts 0..3 hang off the dead switch: every pair crossing the cut is
  // unreachable (4 inside x 12 outside, both directions), intra-subtree
  // pairs survive.
  EXPECT_EQ(degraded.unreachable.size(), 2u * 4u * 12u);
  EXPECT_TRUE(degraded.table->unroutable(0, 4));
  EXPECT_TRUE(degraded.table->unroutable(4, 0));
  EXPECT_FALSE(degraded.table->unroutable(0, 1));
  EXPECT_FALSE(degraded.table->unroutable(4, 5));
  // Sorted by (src, dst) and deterministic across thread counts.
  const DegradedRoutes threaded = compileDegraded(
      buildScheme("d-mod-k", topo), view, UnreachablePolicy::kDrop, 4);
  EXPECT_EQ(degraded.unreachable, threaded.unreachable);
}

TEST(DegradedRouting, CompileIsDeterministicAcrossThreadCounts) {
  const Topology topo(xgft::Params({4, 4}, {2, 2}));
  const FaultPlan plan = makeFaultPlan("links:25", topo, 9);
  const DegradedTopology view(topo, plan.failedAt(0));
  const auto a = compileDegraded(buildScheme("Random", topo), view,
                                 UnreachablePolicy::kThrow, 1);
  const auto b = compileDegraded(buildScheme("Random", topo), view,
                                 UnreachablePolicy::kThrow, 4);
  for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
    for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
      if (s == d) continue;
      ASSERT_EQ(a.table->route(s, d), b.table->route(s, d));
    }
  }
}

TEST(DegradedRouting, RequireDegradableRejectsPerSegmentSchemes) {
  EXPECT_EQ(fault::requireDegradable("d-mod-k").mode,
            core::RouteMode::kTable);
  const auto names = core::schemeRegistry().names();
  for (const std::string& name : *names) {
    if (core::schemeRegistry().at(name).mode == core::RouteMode::kTable) {
      continue;
    }
    try {
      (void)requireDegradable(name);
      FAIL() << "expected invalid_argument for " << name;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("cannot run on a degraded"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("degradable: "), std::string::npos)
          << e.what();
    }
  }
}

TEST(DegradedRouting, CompileRejectsMismatchedInputs) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const Topology other(xgft::xgft2(4, 4, 1));
  const DegradedTopology view(other, std::vector<xgft::LinkId>{});
  EXPECT_THROW(
      (void)compileDegraded(nullptr, view, UnreachablePolicy::kThrow),
      std::invalid_argument);
  EXPECT_THROW((void)compileDegraded(buildScheme("d-mod-k", topo), view,
                                     UnreachablePolicy::kThrow),
               std::invalid_argument);
}

}  // namespace
}  // namespace fault
