// Unit tests for fault::FaultPlan and the failure-model registry: spec
// parsing/canonicalization, seeded-selection determinism, the failedAt /
// transitionTimes / hasTimed algebra, validation errors and the uniform
// registry error shape.
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "xgft/params.hpp"
#include "xgft/topology.hpp"

namespace fault {
namespace {

using xgft::Topology;

TEST(FaultPlan, NoneAndEmptySpecYieldTheEmptyPlan) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  for (const char* spec : {"", "none"}) {
    const FaultPlan plan = makeFaultPlan(spec, topo, 1);
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.hasTimed());
    EXPECT_TRUE(plan.failedAt(0).empty());
    EXPECT_TRUE(plan.transitionTimes().empty());
  }
}

TEST(FaultPlan, UnknownModelSurfacesTheRegistryListing) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  try {
    (void)makeFaultPlan("meteor:3", topo, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown fault model"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("(registered: "), std::string::npos);
  }
}

TEST(FaultPlan, LinksPctSelectsTheRoundedFabricFraction) {
  // XGFT(2; 4,4; 1,2): fabric (switch-to-switch) links are the level-1
  // up-links only: 4 switches x 2 up-ports = 8; 25% -> 2 links.
  const Topology topo(xgft::xgft2(4, 4, 2));
  const FaultPlan plan = makeFaultPlan("links:25", topo, 7);
  EXPECT_EQ(plan.spec, "links:25");
  ASSERT_EQ(plan.faults.size(), 2u);
  for (const LinkFault& f : plan.faults) {
    EXPECT_LT(f.link, topo.numLinks());
    EXPECT_EQ(f.downNs, 0u);         // Static: down from the start...
    EXPECT_EQ(f.upNs, kNeverNs);     // ...and never restored.
    // Fabric only: the child endpoint is a switch, not a host.
    EXPECT_GE(topo.linkInfo(f.link).level, 1u);
  }
  EXPECT_FALSE(plan.hasTimed());
  EXPECT_EQ(plan.failedAt(0).size(), 2u);
  EXPECT_TRUE(plan.transitionTimes().empty());
}

TEST(FaultPlan, SeededSelectionIsDeterministicPerSeed) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  const FaultPlan a1 = makeFaultPlan("links:20", topo, 42);
  const FaultPlan a2 = makeFaultPlan("links:20", topo, 42);
  const FaultPlan b = makeFaultPlan("links:20", topo, 43);
  EXPECT_EQ(a1.faults, a2.faults);
  EXPECT_NE(a1.faults, b.faults);
  EXPECT_TRUE(planRegistry().at("links").seeded);
  EXPECT_TRUE(planRegistry().at("switches").seeded);
  EXPECT_FALSE(planRegistry().at("uplinks-of").seeded);
  EXPECT_FALSE(planRegistry().at("timed").seeded);
}

TEST(FaultPlan, SwitchesPctFailsEveryIncidentLinkDeduplicated) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  // 100% of switches: every link in the tree is incident to some switch.
  const FaultPlan plan = makeFaultPlan("switches:100", topo, 1);
  EXPECT_EQ(plan.faults.size(), topo.numLinks());
  // Deduplicated and sorted: strictly increasing link ids.
  for (std::size_t i = 1; i < plan.faults.size(); ++i) {
    EXPECT_LT(plan.faults[i - 1].link, plan.faults[i].link);
  }
}

TEST(FaultPlan, UplinksOfFailsExactlyTheSwitchUpPorts) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const FaultPlan plan = makeFaultPlan("uplinks-of:1:3", topo, 1);
  ASSERT_EQ(plan.faults.size(), 2u);  // w2 = 2 up-links.
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_EQ(plan.faults[p].link, topo.upLink(1, 3, p));
  }
}

TEST(FaultPlan, UplinksOfValidatesLevelAndIndex) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  EXPECT_THROW((void)makeFaultPlan("uplinks-of:0:0", topo, 1),
               std::invalid_argument);  // Hosts are not switches.
  EXPECT_THROW((void)makeFaultPlan("uplinks-of:2:0", topo, 1),
               std::invalid_argument);  // Top switches have no up-links.
  EXPECT_THROW((void)makeFaultPlan("uplinks-of:1:99", topo, 1),
               std::invalid_argument);  // Index out of range.
  EXPECT_THROW((void)makeFaultPlan("uplinks-of:1", topo, 1),
               std::invalid_argument);  // Arity.
}

TEST(FaultPlan, TimedPlanAlgebra) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const FaultPlan plan = makeFaultPlan("timed:5:1000:3000", topo, 1);
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_TRUE(plan.hasTimed());
  EXPECT_TRUE(plan.failedAt(0).empty());
  EXPECT_TRUE(plan.failedAt(999).empty());
  EXPECT_EQ(plan.failedAt(1000), std::vector<xgft::LinkId>{5});
  EXPECT_EQ(plan.failedAt(2999), std::vector<xgft::LinkId>{5});
  EXPECT_TRUE(plan.failedAt(3000).empty());  // Restored at its up instant.
  EXPECT_EQ(plan.transitionTimes(), (std::vector<sim::TimeNs>{1000, 3000}));

  const FaultPlan forever = makeFaultPlan("timed:5:1000", topo, 1);
  EXPECT_TRUE(forever.hasTimed());
  EXPECT_EQ(forever.failedAt(1u << 30), std::vector<xgft::LinkId>{5});
  EXPECT_EQ(forever.transitionTimes(), (std::vector<sim::TimeNs>{1000}));
}

TEST(FaultPlan, TimedPlanRejectsMalformedArguments) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  EXPECT_THROW((void)makeFaultPlan("timed:5", topo, 1),
               std::invalid_argument);  // Arity.
  EXPECT_THROW((void)makeFaultPlan("timed:5:abc", topo, 1),
               std::invalid_argument);  // Malformed integer.
  EXPECT_THROW((void)makeFaultPlan("timed:5:2000:1000", topo, 1),
               std::invalid_argument);  // Restores before it fails.
  EXPECT_THROW((void)makeFaultPlan("timed:9999:0:1", topo, 1),
               std::invalid_argument);  // Unknown link (validate()).
  EXPECT_THROW((void)makeFaultPlan("links:101", topo, 1),
               std::invalid_argument);  // Percentage out of range.
  EXPECT_THROW((void)makeFaultPlan("links:x", topo, 1),
               std::invalid_argument);  // Malformed number.
}

TEST(FaultPlan, ValidateChecksHandBuiltPlans) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  FaultPlan plan;
  plan.spec = "custom";
  plan.faults.push_back(LinkFault{topo.numLinks(), 0, kNeverNs});
  EXPECT_THROW(plan.validate(topo), std::invalid_argument);
  plan.faults = {LinkFault{0, 100, 100}};
  EXPECT_THROW(plan.validate(topo), std::invalid_argument);
  plan.faults = {LinkFault{0, 100, 200}};
  EXPECT_NO_THROW(plan.validate(topo));
}

TEST(FaultPlan, FailedAtMergesOverlappingOutagesOfOneLink) {
  FaultPlan plan;
  plan.faults = {LinkFault{3, 0, 1000}, LinkFault{3, 500, 2000}};
  EXPECT_EQ(plan.failedAt(700), std::vector<xgft::LinkId>{3});  // Deduped.
  EXPECT_EQ(plan.failedAt(1500), std::vector<xgft::LinkId>{3});
  EXPECT_TRUE(plan.failedAt(2000).empty());
}

}  // namespace
}  // namespace fault
