// Tests for the experiment harness: crossbar reference sanity and the
// slowdown measurement the figure benches rely on.
#include "trace/harness.hpp"

#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "patterns/synthetic.hpp"
#include "routing/colored.hpp"
#include "routing/relabel.hpp"

namespace trace {
namespace {

using xgft::Topology;

patterns::PhasedPattern singlePhase(patterns::Pattern p, std::string name) {
  patterns::PhasedPattern app;
  app.name = std::move(name);
  app.numRanks = p.numRanks();
  app.phases.push_back(std::move(p));
  return app;
}

TEST(Crossbar, PermutationRunsAtLineRate) {
  // On the ideal crossbar a permutation has zero contention: the makespan
  // is one message time (+ the pipeline tail segment).
  const auto app = singlePhase(
      patterns::shiftPermutation(32, 5).toPattern(64 * 1024), "shift");
  sim::SimConfig cfg;
  cfg.headerBytes = 0;
  const RunResult r = runCrossbarReference(app, cfg);
  const sim::TimeNs oneMessage = 64u * 4096;
  EXPECT_GE(r.makespanNs, oneMessage);
  EXPECT_LE(r.makespanNs, oneMessage + 2u * 4096);
}

TEST(Crossbar, HotspotSerializesAtTheDestination) {
  const auto app =
      singlePhase(patterns::hotspot(16, 0, 16 * 1024), "hotspot");
  sim::SimConfig cfg;
  cfg.headerBytes = 0;
  const RunResult r = runCrossbarReference(app, cfg);
  // 15 senders x 16 segments funnel into one host link.
  const sim::TimeNs lowerBound = 15u * 16 * 4096;
  EXPECT_GE(r.makespanNs, lowerBound);
  EXPECT_LE(r.makespanNs, lowerBound + 3u * 4096);
}

TEST(Slowdown, FullTreeWithColoredIsNearCrossbar) {
  // A full k-ary 2-tree is rearrangeable: pattern-aware routing of a
  // permutation should be within a few percent of the crossbar.
  const Topology topo(xgft::karyNTree(8, 2));
  const auto app = singlePhase(
      patterns::randomPermutation(64, 3).toPattern(64 * 1024), "perm");
  const routing::ColoredRouter colored(topo, app);
  const double slowdown = slowdownVsCrossbar(topo, colored, app);
  EXPECT_GE(slowdown, 0.99);
  EXPECT_LE(slowdown, 1.10);
}

TEST(Slowdown, SingleRootTreeSlowsDownByRemoteFraction) {
  // With one root, all inter-switch traffic serializes through it.
  const Topology topo(xgft::xgft2(4, 4, 1));
  const auto app = singlePhase(
      patterns::shiftPermutation(16, 4).toPattern(32 * 1024), "shift4");
  const routing::RouterPtr router = routing::makeDModK(topo);
  const double slowdown = slowdownVsCrossbar(topo, *router, app);
  // 16 remote messages share 1 root: 16/4 = 4x the per-switch uplink... at
  // minimum the slowdown is substantially above 3.
  EXPECT_GE(slowdown, 3.0);
}

TEST(Slowdown, CustomMappingChangesLocality) {
  // CG's first four phases are switch-local under the sequential mapping;
  // a strided mapping destroys that locality and must be slower.
  const Topology topo(xgft::karyNTree(4, 2));
  patterns::Pattern p(16);
  for (patterns::Rank r = 0; r < 16; ++r) {
    p.add(r, r ^ 1u, 64 * 1024);  // Pairwise, switch-local sequentially.
  }
  const auto app = singlePhase(p, "pairwise");
  const routing::RouterPtr router = routing::makeDModK(topo);
  const sim::TimeNs seq =
      runApp(topo, *router, app, Mapping::sequential(16), sim::SimConfig{})
          .makespanNs;
  std::vector<xgft::NodeIndex> strided(16);
  for (patterns::Rank r = 0; r < 16; ++r) strided[r] = (r % 4) * 4 + r / 4;
  const sim::TimeNs str =
      runApp(topo, *router, app, Mapping::custom(strided), sim::SimConfig{})
          .makespanNs;
  EXPECT_GT(str, seq);
}

TEST(ScaleMessages, ScalesAndClamps) {
  patterns::PhasedPattern app = singlePhase(
      patterns::shiftPermutation(4, 1).toPattern(1000), "tiny");
  const patterns::PhasedPattern half = scaleMessages(app, 0.5);
  EXPECT_EQ(half.phases[0].flows()[0].bytes, 500u);
  const patterns::PhasedPattern tiny = scaleMessages(app, 1e-9);
  EXPECT_EQ(tiny.phases[0].flows()[0].bytes, 1u);  // Clamped.
}

TEST(ScaleMessages, SlowdownIsInsensitiveToScale) {
  // The substitution argument of DESIGN.md: slowdown ratios barely move
  // when messages shrink (bandwidth-dominated regime).
  const Topology topo(xgft::xgft2(8, 8, 4));
  const auto app = singlePhase(
      patterns::randomPermutation(64, 9).toPattern(256 * 1024), "perm");
  const routing::RouterPtr router = routing::makeDModK(topo);
  const double full = slowdownVsCrossbar(topo, *router, app);
  const double quarter =
      slowdownVsCrossbar(topo, *router, scaleMessages(app, 0.25));
  EXPECT_NEAR(full, quarter, 0.12 * full);
}

}  // namespace
}  // namespace trace
