// Tests for the trace IR and the replay engine's MPI-like semantics.
#include "trace/replayer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "patterns/applications.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

namespace trace {
namespace {

using xgft::Topology;

TEST(Trace, FromPhasesStructure) {
  const patterns::PhasedPattern cg = patterns::cgD128(1024);
  const Trace t = traceFromPhases(cg);
  EXPECT_EQ(t.numRanks, 128u);
  // Four full phases of 128 plus phase 5's 112 non-self flows.
  EXPECT_EQ(t.numMessages(), 4u * 128u + 112u);
  // Every rank's program ends with WaitAll + Barrier.
  for (const auto& program : t.programs) {
    ASSERT_GE(program.size(), 2u);
    EXPECT_EQ(program[program.size() - 2].kind, OpKind::kWaitAll);
    EXPECT_EQ(program.back().kind, OpKind::kBarrier);
  }
}

TEST(Trace, SelfFlowsAreDropped) {
  patterns::Pattern p(4);
  p.add(2, 2, 100);
  p.add(0, 1, 100);
  const Trace t = traceFromPattern(p);
  EXPECT_EQ(t.numMessages(), 1u);
}

TEST(Replayer, SingleExchangeCompletes) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  patterns::Pattern p(16);
  p.add(0, 9, 4096);
  p.add(9, 0, 4096);
  sim::Network net(topo, sim::SimConfig{});
  const Trace t = traceFromPattern(p);
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(16);
  Replayer replayer(net, t, mapping, *router);
  const sim::TimeNs makespan = replayer.run();
  EXPECT_GT(makespan, 0u);
  EXPECT_EQ(net.stats().messagesDelivered, 2u);
  // Both ranks finish at the barrier, i.e. at the same time.
  EXPECT_EQ(replayer.finishTimeOf(0), replayer.finishTimeOf(9));
}

TEST(Replayer, PhasesDoNotOverlap) {
  // Two identical phases must take (almost exactly) twice one phase.
  const Topology topo(xgft::xgft2(4, 4, 4));
  patterns::Pattern p(16);
  for (patterns::Rank r = 0; r < 16; ++r) p.add(r, (r + 4) % 16, 64 * 1024);
  const routing::RouterPtr router = routing::makeDModK(topo);

  const auto timeOf = [&](std::uint32_t phases) {
    patterns::PhasedPattern app;
    app.numRanks = 16;
    for (std::uint32_t i = 0; i < phases; ++i) app.phases.push_back(p);
    return runApp(topo, *router, app).makespanNs;
  };
  const sim::TimeNs one = timeOf(1);
  const sim::TimeNs two = timeOf(2);
  EXPECT_NEAR(static_cast<double>(two), 2.0 * static_cast<double>(one),
              0.02 * static_cast<double>(one));
}

TEST(Replayer, BarrierSynchronizesUnequalRanks) {
  // Rank 0 computes for 1 ms while the others idle at the barrier; all
  // finish together at ~1 ms.
  const Topology topo(xgft::xgft2(4, 4, 2));
  Trace t;
  t.numRanks = 4;
  t.programs.resize(4);
  t.programs[0].push_back(Op::compute(1'000'000));
  for (patterns::Rank r = 0; r < 4; ++r) {
    t.programs[r].push_back(Op::barrier());
  }
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(4);
  Replayer replayer(net, t, mapping, *router);
  EXPECT_EQ(replayer.run(), 1'000'000u);
  for (patterns::Rank r = 0; r < 4; ++r) {
    EXPECT_EQ(replayer.finishTimeOf(r), 1'000'000u);
  }
}

TEST(Replayer, BlockingSendRecvPair) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Trace t;
  t.numRanks = 2;
  t.programs.resize(2);
  t.programs[0].push_back(Op::send(1, 1024, 7));
  t.programs[0].push_back(Op::compute(100));
  t.programs[1].push_back(Op::recv(0, 7));
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(2);
  Replayer replayer(net, t, mapping, *router);
  const sim::TimeNs makespan = replayer.run();
  // Rank 0's compute starts only after the delivery.
  EXPECT_EQ(makespan, net.stats().lastDeliveryNs + 100);
}

TEST(Replayer, UnexpectedMessagesBufferUntilPosted) {
  // The receive is posted after a compute delay longer than the message's
  // flight time: the arrival must be buffered and matched on post.
  const Topology topo(xgft::xgft2(4, 4, 2));
  Trace t;
  t.numRanks = 2;
  t.programs.resize(2);
  t.programs[0].push_back(Op::isend(1, 1024, 0));
  t.programs[0].push_back(Op::waitAll());
  t.programs[1].push_back(Op::compute(10'000'000));
  t.programs[1].push_back(Op::recv(0, 0));
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(2);
  Replayer replayer(net, t, mapping, *router);
  EXPECT_EQ(replayer.run(), 10'000'000u);
}

TEST(Replayer, UnmatchedReceiveThrows) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  Trace t;
  t.numRanks = 2;
  t.programs.resize(2);
  t.programs[1].push_back(Op::recv(0, 0));  // Nobody sends.
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(2);
  Replayer replayer(net, t, mapping, *router);
  EXPECT_THROW(replayer.run(), std::runtime_error);
}

TEST(Replayer, SingleUse) {
  // The replayer is documented single-use: a second run() must throw
  // (regression: it used to re-walk consumed rank state and return silent
  // garbage) and must leave the first run's results readable.
  const Topology topo(xgft::xgft2(4, 4, 2));
  patterns::Pattern p(4);
  p.add(0, 3, 4096);
  const Trace t = traceFromPattern(p);
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(4);
  Replayer replayer(net, t, mapping, *router);
  const sim::TimeNs makespan = replayer.run();
  EXPECT_GT(makespan, 0u);
  EXPECT_THROW(replayer.run(), std::logic_error);
  EXPECT_THROW(replayer.run(), std::logic_error);  // Still, on every retry.
  // The failed re-runs perturbed nothing.
  EXPECT_EQ(replayer.finishTimeOf(0), makespan);
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

TEST(Replayer, TagsDisambiguateSameSourceMessages) {
  // Two messages of different sizes with distinct tags; the receiver posts
  // them in reverse order — counts must still match up.
  const Topology topo(xgft::xgft2(4, 4, 2));
  Trace t;
  t.numRanks = 2;
  t.programs.resize(2);
  t.programs[0].push_back(Op::isend(1, 1024, 1));
  t.programs[0].push_back(Op::isend(1, 2048, 2));
  t.programs[0].push_back(Op::waitAll());
  t.programs[1].push_back(Op::irecv(0, 2));
  t.programs[1].push_back(Op::irecv(0, 1));
  t.programs[1].push_back(Op::waitAll());
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping mapping = Mapping::sequential(2);
  Replayer replayer(net, t, mapping, *router);
  EXPECT_GT(replayer.run(), 0u);
  EXPECT_EQ(net.stats().messagesDelivered, 2u);
}

TEST(Replayer, RejectedConstructionLeavesNoSinkBehind) {
  // A throwing constructor must not leave the network pointing at the
  // destroyed replayer's injection process (regression: the rank-mismatch
  // check used to run after the sink was installed).
  const Topology topo(xgft::xgft2(4, 4, 2));
  Trace t;
  t.numRanks = 2;
  t.programs.resize(2);
  sim::Network net(topo, sim::SimConfig{});
  const routing::RouterPtr router = routing::makeDModK(topo);
  const Mapping tooSmall = Mapping::sequential(1);
  EXPECT_THROW(Replayer(net, t, tooSmall, *router), std::invalid_argument);
  // Driving the network directly afterwards must not touch a dangling
  // sink.
  const sim::MsgId m = net.addMessage(0, 1, 1024, router->route(0, 1));
  net.release(m, 0);
  net.run();
  EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

TEST(Mapping, SequentialAndValidation) {
  const Mapping m = Mapping::sequential(8);
  EXPECT_EQ(m.numRanks(), 8u);
  EXPECT_EQ(m.hostOf(5), 5u);
  EXPECT_THROW(Mapping::custom({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(Mapping::random(10, 5, 1), std::invalid_argument);
}

TEST(Mapping, RandomIsInjectiveAndDeterministic) {
  const Mapping a = Mapping::random(64, 256, 9);
  const Mapping b = Mapping::random(64, 256, 9);
  std::set<xgft::NodeIndex> hosts;
  for (patterns::Rank r = 0; r < 64; ++r) {
    EXPECT_EQ(a.hostOf(r), b.hostOf(r));
    EXPECT_TRUE(hosts.insert(a.hostOf(r)).second);
    EXPECT_LT(a.hostOf(r), 256u);
  }
}

}  // namespace
}  // namespace trace
