// Tests for the windowed open-loop runner: accepted throughput tracking
// below saturation, the saturation plateau, warmup/drain exclusion and
// run-to-run determinism of the full measurement pipeline.
#include "trace/openloop.hpp"

#include <gtest/gtest.h>

#include "patterns/source.hpp"
#include "routing/relabel.hpp"
#include "xgft/topology.hpp"

namespace trace {
namespace {

using xgft::Topology;

patterns::OpenLoopSource makeSource(const Topology& topo, double load,
                                    sim::TimeNs stopNs,
                                    std::uint64_t seed = 1) {
  patterns::OpenLoopConfig cfg;
  cfg.numRanks = static_cast<patterns::Rank>(topo.numHosts());
  cfg.load = load;
  cfg.messageBytes = 1024;
  cfg.stopNs = stopNs;
  cfg.seed = seed;
  return patterns::OpenLoopSource(cfg);
}

OpenLoopOptions fastWindows() {
  OpenLoopOptions opt;
  opt.warmupNs = 200'000;
  opt.measureNs = 1'000'000;
  return opt;
}

TEST(OpenLoop, AcceptedTracksOfferedBelowSaturation) {
  const Topology topo(xgft::xgft2(4, 4, 4));  // Full bisection.
  const routing::RouterPtr router = routing::makeDModK(topo);
  const OpenLoopOptions opt = fastWindows();
  for (const double load : {0.1, 0.3}) {
    patterns::OpenLoopSource src =
        makeSource(topo, load, opt.warmupNs + opt.measureNs);
    const OpenLoopResult r = runOpenLoop(topo, *router, src, opt);
    // 16 hosts over a 1 ms window is a small sample; the Poisson count
    // fluctuation alone is several percent.
    EXPECT_NEAR(r.acceptedLoad, load, 0.15 * load) << "load " << load;
    EXPECT_GT(r.latency.samples, 100u);
    EXPECT_GE(r.latency.p99Ns, r.latency.p50Ns);
    EXPECT_GE(r.latency.p50Ns, r.latency.minNs);
    EXPECT_GE(r.latency.maxNs, r.latency.p99Ns);
  }
}

TEST(OpenLoop, OverloadSaturatesAndInflatesTail) {
  // Offered 1.5x the link rate cannot be accepted; the network must
  // saturate below 1.0 and the p99 of an overloaded run must dwarf the
  // uncontended one.
  const Topology topo(xgft::xgft2(4, 4, 2));  // Slimmed: saturates early.
  const routing::RouterPtr router = routing::makeDModK(topo);
  const OpenLoopOptions opt = fastWindows();
  patterns::OpenLoopSource light =
      makeSource(topo, 0.1, opt.warmupNs + opt.measureNs);
  patterns::OpenLoopSource heavy =
      makeSource(topo, 1.5, opt.warmupNs + opt.measureNs);
  const OpenLoopResult lo = runOpenLoop(topo, *router, light, opt);
  const OpenLoopResult hi = runOpenLoop(topo, *router, heavy, opt);
  EXPECT_LT(hi.acceptedLoad, 1.0);
  EXPECT_GT(hi.acceptedLoad, 0.2);
  EXPECT_GT(hi.latency.p99Ns, 5 * lo.latency.p99Ns);
  // Open loop drains past the horizon: the backlog completes after the
  // sources stop.
  EXPECT_GT(hi.lastDeliveryNs, opt.warmupNs + opt.measureNs);
  // Every injected message is eventually delivered (drain is complete).
  EXPECT_EQ(hi.stats.messagesDelivered,
            hi.windows[0].messages + hi.windows[1].messages +
                hi.windows[2].messages);
}

TEST(OpenLoop, RepeatRunsAreBitIdentical) {
  const Topology topo(xgft::xgft2(4, 4, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const OpenLoopOptions opt = fastWindows();
  auto once = [&] {
    patterns::OpenLoopSource src =
        makeSource(topo, 0.6, opt.warmupNs + opt.measureNs);
    return runOpenLoop(topo, *router, src, opt);
  };
  const OpenLoopResult a = once();
  const OpenLoopResult b = once();
  EXPECT_EQ(a.stats.eventsProcessed, b.stats.eventsProcessed);
  EXPECT_EQ(a.lastDeliveryNs, b.lastDeliveryNs);
  EXPECT_EQ(a.latency.samples, b.latency.samples);
  EXPECT_EQ(a.latency.p50Ns, b.latency.p50Ns);
  EXPECT_EQ(a.latency.p99Ns, b.latency.p99Ns);
  EXPECT_EQ(a.acceptedLoad, b.acceptedLoad);
}

TEST(OpenLoop, WindowsPartitionDeliveries) {
  const Topology topo(xgft::xgft2(4, 4, 4));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const OpenLoopOptions opt = fastWindows();
  patterns::OpenLoopSource src =
      makeSource(topo, 0.4, opt.warmupNs + opt.measureNs);
  const OpenLoopResult r = runOpenLoop(topo, *router, src, opt);
  ASSERT_EQ(r.windows.size(), 3u);
  EXPECT_EQ(r.windows[0].beginNs, 0u);
  EXPECT_EQ(r.windows[0].endNs, opt.warmupNs);
  EXPECT_EQ(r.windows[1].beginNs, opt.warmupNs);
  EXPECT_EQ(r.windows[1].endNs, opt.warmupNs + opt.measureNs);
  // Warmup and measurement both saw traffic; the drain tail is short but
  // non-empty at this load (in-flight messages at the horizon).
  EXPECT_GT(r.windows[0].messages, 0u);
  EXPECT_GT(r.windows[1].messages, 0u);
  // Boundary samples: events accumulate across the partial runs.
  EXPECT_GT(r.windows[0].eventsAtEnd, 0u);
  EXPECT_GT(r.windows[1].eventsAtEnd, r.windows[0].eventsAtEnd);
  EXPECT_EQ(r.windows[2].eventsAtEnd, r.stats.eventsProcessed);
  // The measured offered load tracks the configured nominal.
  EXPECT_NEAR(r.offeredLoad, 0.4, 0.06);
  // Latency samples come only from measurement-window injections, so they
  // are bounded by (and close to) the measurement window's deliveries.
  EXPECT_LE(r.latency.samples,
            r.windows[1].messages + r.windows[2].messages);
  EXPECT_GT(r.latency.samples, r.windows[1].messages / 2);
}

TEST(OpenLoop, SpraySourcesAlsoStream) {
  // Per-segment modes run through the same process: spraying an open-loop
  // stream must work and deliver everything.
  const Topology topo(xgft::xgft2(4, 4, 4));
  const routing::RouterPtr router = routing::makeDModK(topo);
  OpenLoopOptions opt = fastWindows();
  opt.spray.enabled = true;
  opt.spray.seed = 3;
  patterns::OpenLoopSource src =
      makeSource(topo, 0.3, opt.warmupNs + opt.measureNs);
  const OpenLoopResult r = runOpenLoop(topo, *router, src, opt);
  EXPECT_NEAR(r.acceptedLoad, 0.3, 0.05);
  EXPECT_GT(r.latency.samples, 0u);
}

TEST(OpenLoop, RejectsOversizedSources) {
  const Topology topo(xgft::xgft2(2, 2, 1));  // 4 hosts.
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::OpenLoopConfig cfg;
  cfg.numRanks = 16;
  cfg.stopNs = 1'000'000;
  patterns::OpenLoopSource src(cfg);
  EXPECT_THROW((void)runOpenLoop(topo, *router, src, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace trace
