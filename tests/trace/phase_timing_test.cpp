// Tests for the per-phase timing breakdown (Replayer::barrierTimes),
// including the Sec. VII-A per-phase analysis of CG under D-mod-k.
#include <gtest/gtest.h>

#include "patterns/applications.hpp"
#include "routing/colored.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "trace/replayer.hpp"

namespace trace {
namespace {

using xgft::Topology;

std::vector<sim::TimeNs> phaseDurations(const Topology& topo,
                                        const routing::Router& router,
                                        const patterns::PhasedPattern& app) {
  sim::Network net(topo, sim::SimConfig{});
  const Trace t = traceFromPhases(app);
  const Mapping mapping = Mapping::sequential(app.numRanks);
  Replayer replayer(net, t, mapping, router);
  replayer.run();
  const std::vector<sim::TimeNs>& barriers = replayer.barrierTimes();
  std::vector<sim::TimeNs> durations(barriers.size());
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    durations[i] = barriers[i] - (i == 0 ? 0 : barriers[i - 1]);
  }
  return durations;
}

TEST(PhaseTiming, OneBarrierPerPhase) {
  const Topology topo(xgft::karyNTree(16, 2));
  const auto cg = scaleMessages(patterns::cgD128(), 1.0 / 16);
  const auto durations =
      phaseDurations(topo, *routing::makeDModK(topo), cg);
  ASSERT_EQ(durations.size(), 5u);
}

TEST(PhaseTiming, CgDegradationIsEntirelyInPhase5) {
  // Sec. VII-A: "whatever degradation this application might suffer due to
  // the routing decision exclusively corresponds to the fifth exchange
  // phase" — phases 1-4 are switch-local and identical under both schemes;
  // phase 5 explodes under D-mod-k and not under Colored.
  const Topology topo(xgft::karyNTree(16, 2));
  const auto cg = scaleMessages(patterns::cgD128(), 1.0 / 16);
  const auto dmodk = phaseDurations(topo, *routing::makeDModK(topo), cg);
  const routing::ColoredRouter colored(topo, cg);
  const auto best = phaseDurations(topo, colored, cg);
  for (std::size_t phase = 0; phase < 4; ++phase) {
    EXPECT_EQ(dmodk[phase], best[phase]) << "local phase " << phase;
  }
  // Phase 5: ~7x under D-mod-k (two uplinks for 14 flows), ~1x for Colored.
  EXPECT_GT(static_cast<double>(dmodk[4]),
            5.0 * static_cast<double>(best[4]));
}

TEST(PhaseTiming, LocalPhasesAreRoutingInvariant) {
  const Topology topo(xgft::karyNTree(16, 2));
  const auto cg = scaleMessages(patterns::cgD128(), 1.0 / 16);
  const auto a = phaseDurations(topo, *routing::makeSModK(topo), cg);
  const auto b = phaseDurations(topo, *routing::makeRNcaDown(topo, 3), cg);
  for (std::size_t phase = 0; phase < 4; ++phase) {
    EXPECT_EQ(a[phase], b[phase]);
  }
}

TEST(PhaseTiming, BarrierTimesAreMonotone) {
  const Topology topo(xgft::xgft2(8, 8, 4));
  const auto app = scaleMessages(patterns::wrfHalo(8, 8, 64 * 1024), 0.5);
  sim::Network net(topo, sim::SimConfig{});
  const Trace t = traceFromPhases(app);
  const Mapping mapping = Mapping::sequential(app.numRanks);
  const routing::RouterPtr router = routing::makeDModK(topo);
  Replayer replayer(net, t, mapping, *router);
  const sim::TimeNs makespan = replayer.run();
  const auto& barriers = replayer.barrierTimes();
  ASSERT_FALSE(barriers.empty());
  for (std::size_t i = 1; i < barriers.size(); ++i) {
    EXPECT_LE(barriers[i - 1], barriers[i]);
  }
  EXPECT_EQ(barriers.back(), makespan);
}

}  // namespace
}  // namespace trace
