// Unit tests for minimal up/down routes: NCA reachability, channel
// expansion, hop expansion and validation.
#include "xgft/route.hpp"

#include <gtest/gtest.h>

#include <set>

namespace xgft {
namespace {

TEST(Route, EmptyRouteForSameLeaf) {
  const Topology t(karyNTree(4, 2));
  const Route r = routeViaNca(t, 5, 5, 0);
  EXPECT_EQ(r.ncaLevel(), 0u);
  EXPECT_TRUE(validateRoute(t, 5, 5, r));
  EXPECT_TRUE(channelsOf(t, 5, 5, r).empty());
  EXPECT_TRUE(hopsOf(t, 5, 5, r).empty());
}

TEST(Route, RouteViaNcaEnumeratesDistinctAncestors) {
  const Topology t(karyNTree(4, 2));
  std::set<NodeIndex> ncas;
  for (Count c = 0; c < t.numNcas(0, 4); ++c) {
    const Route r = routeViaNca(t, 0, 4, c);
    EXPECT_TRUE(validateRoute(t, 0, 4, r));
    ncas.insert(ncaOf(t, 0, r));
  }
  EXPECT_EQ(ncas.size(), 4u);  // All w2 = 4 roots reachable.
  EXPECT_THROW(routeViaNca(t, 0, 4, 4), std::out_of_range);
}

TEST(Route, NcaIsAncestorOfBothEndpoints) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  for (NodeIndex s = 0; s < t.numHosts(); s += 3) {
    for (NodeIndex d = 0; d < t.numHosts(); d += 5) {
      if (s == d) continue;
      for (Count c = 0; c < t.numNcas(s, d); ++c) {
        const Route r = routeViaNca(t, s, d, c);
        const std::uint32_t level = r.ncaLevel();
        const NodeIndex nca = ncaOf(t, s, r);
        // Descending from the NCA with either endpoint's digits must land
        // on that endpoint.
        for (const NodeIndex leaf : {s, d}) {
          NodeIndex node = nca;
          for (std::uint32_t j = level; j >= 1; --j) {
            node = t.childIndex(j, node, t.digit(0, leaf, j));
          }
          EXPECT_EQ(node, leaf);
        }
      }
    }
  }
}

TEST(Route, ChannelsFormConnectedUpDownPath) {
  const Topology t(xgft2(16, 16, 10));
  const Route r = routeViaNca(t, 3, 250, 7);
  const auto channels = channelsOf(t, 3, 250, r);
  ASSERT_EQ(channels.size(), 4u);  // 2 up + 2 down.
  EXPECT_TRUE(channels[0].up);
  EXPECT_TRUE(channels[1].up);
  EXPECT_FALSE(channels[2].up);
  EXPECT_FALSE(channels[3].up);
  // The ascent's top link and the descent's top link meet at the same root.
  EXPECT_EQ(t.linkInfo(channels[1].link).parent,
            t.linkInfo(channels[2].link).parent);
  // First channel leaves the source; last channel enters the destination.
  EXPECT_EQ(t.linkInfo(channels[0].link).child, 3u);
  EXPECT_EQ(t.linkInfo(channels[3].link).child, 250u);
}

TEST(Route, HopsMatchChannels) {
  const Topology t(Params({4, 4, 4}, {1, 2, 3}));
  const NodeIndex s = 1;
  const NodeIndex d = 62;
  ASSERT_EQ(t.ncaLevel(s, d), 3u);
  const Route r = routeViaNca(t, s, d, 4);
  const auto hops = hopsOf(t, s, d, r);
  const auto channels = channelsOf(t, s, d, r);
  ASSERT_EQ(hops.size(), channels.size());
  ASSERT_EQ(hops.size(), 6u);
  // Hop 0 leaves the source host.
  EXPECT_EQ(hops[0].level, 0u);
  EXPECT_EQ(hops[0].node, s);
  // Ascending hops use up ports (>= m_l for switches), descending hops use
  // down ports (< m_l).
  for (std::size_t i = 1; i < hops.size(); ++i) {
    const std::uint32_t m = t.params().m(hops[i].level);
    if (channels[i].up) {
      EXPECT_GE(hops[i].outPort, m);
    } else {
      EXPECT_LT(hops[i].outPort, m);
    }
  }
}

TEST(Route, ValidateRejectsWrongLength) {
  const Topology t(karyNTree(4, 2));
  std::string error;
  Route tooShort;  // NCA level for (0, 4) is 2.
  EXPECT_FALSE(validateRoute(t, 0, 4, tooShort, &error));
  EXPECT_NE(error.find("NCA level"), std::string::npos);
  Route tooLong;
  tooLong.up = {0, 0};
  EXPECT_FALSE(validateRoute(t, 0, 1, tooLong, &error));
}

TEST(Route, ValidateRejectsOutOfRangePort) {
  const Topology t(karyNTree(4, 2));
  Route r;
  r.up = {0, 7};  // w2 = 4.
  std::string error;
  EXPECT_FALSE(validateRoute(t, 0, 4, r, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(Route, UpPortsEqualNcaWDigits) {
  // The route <-> NCA bijection: the chosen ports are exactly the NCA's
  // W digits.
  const Topology t(Params({3, 3, 3}, {2, 2, 2}));
  const NodeIndex s = 0;
  const NodeIndex d = 26;
  ASSERT_EQ(t.ncaLevel(s, d), 3u);
  for (Count c = 0; c < t.numNcas(s, d); ++c) {
    const Route r = routeViaNca(t, s, d, c);
    const NodeIndex nca = ncaOf(t, s, r);
    for (std::uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(r.up[i], t.digit(3, nca, i + 1));
    }
  }
}

TEST(Route, AllRoutesAreMinimal) {
  // Every generated route has exactly 2 * ncaLevel channels: no detours.
  const Topology t(xgft2(8, 8, 3));
  for (NodeIndex s = 0; s < t.numHosts(); s += 5) {
    for (NodeIndex d = 0; d < t.numHosts(); d += 7) {
      if (s == d) continue;
      const Route r = routeViaNca(t, s, d, t.numNcas(s, d) - 1);
      EXPECT_EQ(channelsOf(t, s, d, r).size(), 2u * t.ncaLevel(s, d));
    }
  }
}

}  // namespace
}  // namespace xgft
