// Unit tests for the Table-I mixed-radix label algebra.
#include "xgft/labels.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xgft {
namespace {

TEST(Labels, LeafLabelIsBaseKExpansionInKaryTree) {
  const Params p = karyNTree(4, 3);
  // Leaf 27 = 1*16 + 2*4 + 3 in base 4 -> digits M1=3, M2=2, M3=1.
  const Label l = labelOf(p, 0, 27);
  EXPECT_EQ(l.digit(1), 3u);
  EXPECT_EQ(l.digit(2), 2u);
  EXPECT_EQ(l.digit(3), 1u);
}

TEST(Labels, RoundTripAllLevels) {
  const Params p({4, 3, 2}, {1, 2, 3});
  for (std::uint32_t level = 0; level <= p.height(); ++level) {
    for (NodeIndex i = 0; i < p.nodesAtLevel(level); ++i) {
      const Label l = labelOf(p, level, i);
      EXPECT_EQ(indexOf(p, l), i) << "level " << level << " index " << i;
    }
  }
}

TEST(Labels, RadixSwitchesFromMToWAtLevel) {
  const Params p({16, 16}, {1, 10});
  // Level-2 (root) labels: digit 1 has radix w1=1, digit 2 radix w2=10.
  EXPECT_EQ(Label::radix(p, 2, 1), 1u);
  EXPECT_EQ(Label::radix(p, 2, 2), 10u);
  // Level-1 labels: digit 1 radix w1=1, digit 2 radix m2=16.
  EXPECT_EQ(Label::radix(p, 1, 1), 1u);
  EXPECT_EQ(Label::radix(p, 1, 2), 16u);
  // Leaf labels: both M radices.
  EXPECT_EQ(Label::radix(p, 0, 1), 16u);
  EXPECT_EQ(Label::radix(p, 0, 2), 16u);
}

TEST(Labels, OutOfRangeInputsThrow) {
  const Params p({4, 4}, {1, 4});
  EXPECT_THROW(labelOf(p, 3, 0), std::out_of_range);
  EXPECT_THROW(labelOf(p, 0, 16), std::out_of_range);
  EXPECT_THROW((void)indexOf(p, Label(0, {4, 0})), std::invalid_argument);
  EXPECT_THROW((void)indexOf(p, Label(0, {0})), std::invalid_argument);
}

TEST(Labels, LeafDigitMatchesLabelOf) {
  const Params p({5, 3, 4}, {1, 2, 2});
  for (NodeIndex leaf = 0; leaf < p.numLeaves(); ++leaf) {
    const Label l = labelOf(p, 0, leaf);
    for (std::uint32_t i = 1; i <= p.height(); ++i) {
      EXPECT_EQ(leafDigit(p, leaf, i), l.digit(i));
    }
  }
}

TEST(Labels, LeafDigitsVectorMatchesScalar) {
  const Params p({5, 3, 4}, {1, 2, 2});
  for (NodeIndex leaf = 0; leaf < p.numLeaves(); leaf += 7) {
    const auto digits = leafDigits(p, leaf);
    ASSERT_EQ(digits.size(), p.height());
    for (std::uint32_t i = 1; i <= p.height(); ++i) {
      EXPECT_EQ(digits[i - 1], leafDigit(p, leaf, i));
    }
  }
}

TEST(Labels, ToStringShowsMostSignificantFirst) {
  const Params p({16, 16}, {1, 10});
  EXPECT_EQ(labelOf(p, 0, 17).toString(), "<M2=1,M1=1>");
  EXPECT_EQ(labelOf(p, 2, 3).toString(), "<W2=3,W1=0>");
}

// Parameterized sweep: labels are a bijection between [0, count) and the
// digit tuples, at every level and for several tree shapes.
class LabelBijection : public ::testing::TestWithParam<Params> {};

TEST_P(LabelBijection, EveryLabelDistinct) {
  const Params& p = GetParam();
  for (std::uint32_t level = 0; level <= p.height(); ++level) {
    std::set<std::vector<std::uint32_t>> seen;
    for (NodeIndex i = 0; i < p.nodesAtLevel(level); ++i) {
      EXPECT_TRUE(seen.insert(labelOf(p, level, i).digits()).second);
    }
    EXPECT_EQ(seen.size(), p.nodesAtLevel(level));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LabelBijection,
    ::testing::Values(karyNTree(2, 3), karyNTree(4, 2), xgft2(16, 16, 10),
                      Params({4, 3, 2}, {1, 2, 3}),
                      Params({3, 3, 3}, {2, 2, 2}),
                      Params({6, 2}, {1, 5})));

}  // namespace
}  // namespace xgft
