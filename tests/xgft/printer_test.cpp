// Tests for the topology renderings.
#include "xgft/printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace xgft {
namespace {

TEST(Printer, SummaryMentionsCountsAndFlags) {
  const Topology full(karyNTree(16, 2));
  const std::string s = summary(full);
  EXPECT_NE(s.find("256 hosts"), std::string::npos);
  EXPECT_NE(s.find("32 switches"), std::string::npos);
  EXPECT_NE(s.find("512 links"), std::string::npos);
  EXPECT_NE(s.find("k-ary n-tree"), std::string::npos);
  EXPECT_EQ(s.find("slimmed"), std::string::npos);

  const Topology slim(xgft2(16, 16, 10));
  EXPECT_NE(summary(slim).find("slimmed"), std::string::npos);
}

TEST(Printer, LevelTableHasOneRowPerLevel) {
  const Topology topo(Params({4, 3, 2}, {1, 2, 3}));
  std::ostringstream os;
  printLevelTable(topo, os);
  const std::string out = os.str();
  // Summary + header + h+1 level rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2 + 4);
}

TEST(Printer, LevelTableShowsLabelTemplates) {
  const Topology topo(xgft2(16, 16, 10));
  std::ostringstream os;
  printLevelTable(topo, os);
  EXPECT_NE(os.str().find("M2[0,15]"), std::string::npos);
  EXPECT_NE(os.str().find("W2[0,9]"), std::string::npos);
}

TEST(Printer, AllLabelsGuardsAgainstHugeTrees) {
  const Topology big(karyNTree(16, 3));  // 4096 hosts + switches.
  std::ostringstream os;
  EXPECT_THROW(printAllLabels(big, os, /*maxNodes=*/100),
               std::invalid_argument);
  const Topology small(karyNTree(2, 2));
  printAllLabels(small, os);
  EXPECT_NE(os.str().find("level 0 (hosts)"), std::string::npos);
}

TEST(Printer, DotOutputIsWellFormed) {
  const Topology topo(xgft2(2, 2, 1));
  std::ostringstream os;
  printDot(topo, os);
  const std::string dot = os.str();
  EXPECT_EQ(dot.find("graph xgft {"), 0u);
  EXPECT_NE(dot.find("}"), std::string::npos);
  // One edge line per link.
  std::size_t edges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, topo.numLinks());
}

}  // namespace
}  // namespace xgft
