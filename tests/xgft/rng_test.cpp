// Tests for the deterministic RNG utilities every randomized component
// builds on.
#include "xgft/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

namespace xgft {
namespace {

TEST(Rng, SplitmixIsAFixedFunction) {
  // Platform-independent reproducibility is the whole point: pin a value.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
}

TEST(Rng, HashMixSeparatesArguments) {
  // (a, b) and (b, a) must hash differently, as must different arities.
  std::set<std::uint64_t> values;
  values.insert(hashMix(1, 2));
  values.insert(hashMix(2, 1));
  values.insert(hashMix(1, 2, 3));
  values.insert(hashMix(1, 3, 2));
  values.insert(hashMix(3, 1, 2));
  values.insert(hashMix(1, 2, 3, 4));
  values.insert(hashMix(1, 4, 3, 2));
  EXPECT_EQ(values.size(), 7u);
}

TEST(Rng, StreamsAreSeedDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool anyDifferent = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    anyDifferent |= va != c.next();
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(3);
  std::vector<std::uint32_t> counts(8, 0);
  const int samples = 8000;
  for (int i = 0; i < samples; ++i) ++counts[rng.below(8)];
  for (const std::uint32_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), samples / 8.0, 0.15 * samples / 8.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(11);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
  // And actually permutes (astronomically unlikely to be identity).
  std::vector<int> identity(50);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

TEST(Rng, DerivedStreamSeedingIsPinned) {
  // The open-loop traffic sources seed rank r's stream with
  // hashMix(sourceSeed, r) (patterns/source.cpp); golden values pin that
  // scheme so a silent change to the derivation breaks here, not in a
  // campaign CSV.
  EXPECT_EQ(hashMix(1, 0), 0x5e41ab087439611eULL);
  EXPECT_EQ(hashMix(1, 1), 0xe9fd6049d65af21eULL);
  EXPECT_EQ(hashMix(42, 7), 0x16062d6c1339e500ULL);
}

TEST(Rng, DerivedStreamsDoNotCollide) {
  // Per-rank (and per-role) derived seeds must be pairwise distinct, and
  // no two derived streams may share a prefix — a collision would
  // correlate the traffic of two ranks exactly.
  constexpr std::uint32_t kStreams = 256;
  constexpr int kPrefix = 16;
  std::set<std::uint64_t> seen;
  for (std::uint32_t r = 0; r < kStreams; ++r) {
    Rng stream(hashMix(9001, r));
    for (int i = 0; i < kPrefix; ++i) {
      EXPECT_TRUE(seen.insert(stream.next()).second)
          << "streams " << r << " collide within " << kPrefix << " draws";
    }
  }
}

TEST(Rng, DerivedStreamsAreBitwiseUncorrelated) {
  // Adjacent ranks draw from seeds that differ by one counter step; their
  // outputs must still look independent.  Matching-bit counts between the
  // i-th draws of neighbouring streams average 32/64 for independent
  // uniform words; a systematic correlation would push the mean far off.
  constexpr std::uint32_t kStreams = 64;
  constexpr int kDraws = 64;
  std::uint64_t agreeing = 0;
  for (std::uint32_t r = 0; r + 1 < kStreams; ++r) {
    Rng a(hashMix(1, r));
    Rng b(hashMix(1, r + 1));
    for (int i = 0; i < kDraws; ++i) {
      agreeing += static_cast<std::uint64_t>(
          __builtin_popcountll(~(a.next() ^ b.next())));
    }
  }
  const double total = 64.0 * kDraws * (kStreams - 1);
  const double fraction = static_cast<double>(agreeing) / total;
  // ~500k Bernoulli(0.5) trials: 1% is > 14 standard deviations.
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(Rng, ShuffleHandlesDegenerateSizes) {
  std::vector<int> empty;
  std::vector<int> one{7};
  Rng rng(1);
  rng.shuffle(empty);
  rng.shuffle(one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 7);
}

}  // namespace
}  // namespace xgft
