// Unit tests for xgft::Topology: adjacency, link identification, NCA
// algebra, and global ids.
#include "xgft/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace xgft {
namespace {

TEST(Topology, CountsMatchParams) {
  const Topology t(xgft2(16, 16, 10));
  EXPECT_EQ(t.numHosts(), 256u);
  EXPECT_EQ(t.numSwitches(), 26u);
  EXPECT_EQ(t.numNodes(), 282u);
  EXPECT_EQ(t.numLinks(), 256u + 160u);
}

TEST(Topology, ParentChildAreInverse) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  for (std::uint32_t l = 0; l < t.height(); ++l) {
    for (NodeIndex idx = 0; idx < t.nodesAtLevel(l); ++idx) {
      for (std::uint32_t p = 0; p < t.params().w(l + 1); ++p) {
        const NodeIndex parent = t.parentIndex(l, idx, p);
        ASSERT_LT(parent, t.nodesAtLevel(l + 1));
        const std::uint32_t down = t.downPortOf(l + 1, idx);
        EXPECT_EQ(t.childIndex(l + 1, parent, down), idx)
            << "level " << l << " node " << idx << " port " << p;
      }
    }
  }
}

TEST(Topology, EveryParentHasExactlyMChildren) {
  const Topology t(Params({4, 3}, {1, 2}));
  for (NodeIndex parent = 0; parent < t.nodesAtLevel(1); ++parent) {
    std::set<NodeIndex> children;
    for (std::uint32_t c = 0; c < t.params().m(1); ++c) {
      children.insert(t.childIndex(1, parent, c));
    }
    EXPECT_EQ(children.size(), t.params().m(1));
  }
}

TEST(Topology, PortRangeChecks) {
  const Topology t(xgft2(4, 4, 2));
  EXPECT_THROW((void)t.parentIndex(0, 0, 1), std::out_of_range);  // w1 = 1.
  EXPECT_THROW((void)t.parentIndex(2, 0, 0), std::out_of_range);  // Roots.
  EXPECT_THROW((void)t.childIndex(0, 0, 0), std::out_of_range);   // Hosts.
  EXPECT_THROW((void)t.childIndex(1, 0, 4), std::out_of_range);   // m1 = 4.
}

TEST(Topology, LinkIdsAreDenseAndInvertible) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  std::set<LinkId> seen;
  for (std::uint32_t l = 0; l < t.height(); ++l) {
    for (NodeIndex idx = 0; idx < t.nodesAtLevel(l); ++idx) {
      for (std::uint32_t p = 0; p < t.params().w(l + 1); ++p) {
        const LinkId id = t.upLink(l, idx, p);
        ASSERT_LT(id, t.numLinks());
        EXPECT_TRUE(seen.insert(id).second) << "duplicate link id " << id;
        const LinkInfo info = t.linkInfo(id);
        EXPECT_EQ(info.level, l);
        EXPECT_EQ(info.child, idx);
        EXPECT_EQ(info.parentPort, p);
        EXPECT_EQ(info.parent, t.parentIndex(l, idx, p));
      }
    }
  }
  EXPECT_EQ(seen.size(), t.numLinks());
}

TEST(Topology, DownLinkNamesTheSameWireAsUpLink) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  for (std::uint32_t l = 1; l <= t.height(); ++l) {
    for (NodeIndex parent = 0; parent < t.nodesAtLevel(l); ++parent) {
      for (std::uint32_t c = 0; c < t.params().m(l); ++c) {
        const LinkId id = t.downLink(l, parent, c);
        const LinkInfo info = t.linkInfo(id);
        EXPECT_EQ(info.parent, parent);
        EXPECT_EQ(info.level, l - 1);
        EXPECT_EQ(info.childPort, c);
      }
    }
  }
}

TEST(Topology, NcaLevelIsHighestDifferingDigit) {
  const Topology t(Topology(karyNTree(4, 3)));
  EXPECT_EQ(t.ncaLevel(0, 0), 0u);
  EXPECT_EQ(t.ncaLevel(0, 1), 1u);    // Differ in digit 1.
  EXPECT_EQ(t.ncaLevel(0, 4), 2u);    // Differ in digit 2.
  EXPECT_EQ(t.ncaLevel(0, 16), 3u);   // Differ in digit 3.
  EXPECT_EQ(t.ncaLevel(5, 7), 1u);    // 11 vs 13 base 4.
  EXPECT_EQ(t.ncaLevel(63, 0), 3u);
}

TEST(Topology, NcaLevelIsSymmetric) {
  const Topology t(xgft2(4, 4, 3));
  for (NodeIndex s = 0; s < t.numHosts(); ++s) {
    for (NodeIndex d = 0; d < t.numHosts(); ++d) {
      EXPECT_EQ(t.ncaLevel(s, d), t.ncaLevel(d, s));
    }
  }
}

TEST(Topology, NumNcasIsProductOfWUpToNcaLevel) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  // Same leaf: no NCA needed.
  EXPECT_EQ(t.numNcas(0, 0), 1u);
  // Level 1: w1 = 1 ancestor.
  EXPECT_EQ(t.numNcas(0, 1), 1u);
  // Level 2: w1*w2 = 2.
  EXPECT_EQ(t.numNcas(0, 4), 2u);
  // Level 3: w1*w2*w3 = 6.
  EXPECT_EQ(t.numNcas(0, 12), 6u);
}

TEST(Topology, SixteenAry2TreeHas16RootsPerPairAcrossSwitches) {
  const Topology t(Topology(karyNTree(16, 2)));
  EXPECT_EQ(t.numNcas(0, 16), 16u);   // Different switches.
  EXPECT_EQ(t.numNcas(0, 1), 1u);     // Same switch.
}

TEST(Topology, GlobalIdsRoundTrip) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  GlobalNodeId expected = 0;
  for (std::uint32_t l = 0; l <= t.height(); ++l) {
    for (NodeIndex idx = 0; idx < t.nodesAtLevel(l); ++idx) {
      const GlobalNodeId id = t.globalId(l, idx);
      EXPECT_EQ(id, expected++);
      const NodeAddr addr = t.addrOf(id);
      EXPECT_EQ(addr.level, l);
      EXPECT_EQ(addr.index, idx);
    }
  }
  EXPECT_THROW((void)t.addrOf(expected), std::out_of_range);
}

TEST(Topology, NumPortsPerLevel) {
  const Topology t(Params({4, 3, 2}, {1, 2, 3}));
  EXPECT_EQ(t.numPorts(0), 1u);       // w1.
  EXPECT_EQ(t.numPorts(1), 4u + 2u);  // m1 + w2.
  EXPECT_EQ(t.numPorts(2), 3u + 3u);  // m2 + w3.
  EXPECT_EQ(t.numPorts(3), 2u);       // Roots: m3 down only.
}

// Property sweep: digit() agrees with the label decoder for every node.
class TopologyDigits : public ::testing::TestWithParam<Params> {};

TEST_P(TopologyDigits, DigitMatchesLabel) {
  const Topology t(GetParam());
  for (std::uint32_t l = 0; l <= t.height(); ++l) {
    for (NodeIndex idx = 0; idx < t.nodesAtLevel(l); ++idx) {
      const Label label = labelOf(t.params(), l, idx);
      for (std::uint32_t i = 1; i <= t.height(); ++i) {
        EXPECT_EQ(t.digit(l, idx, i), label.digit(i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyDigits,
    ::testing::Values(karyNTree(2, 4), xgft2(16, 16, 5),
                      Params({4, 3, 2}, {1, 2, 3}),
                      Params({2, 3, 4}, {2, 3, 4})));

}  // namespace
}  // namespace xgft
