// Tests for the topology-notation parser.
#include "xgft/io.hpp"

#include <gtest/gtest.h>

namespace xgft {
namespace {

TEST(TopologyIo, ParsesPaperNotation) {
  const Params p = parseParams("XGFT(2; 16,16; 1,10)");
  EXPECT_EQ(p, xgft2(16, 16, 10));
}

TEST(TopologyIo, RoundTripsToString) {
  for (const Params& p :
       {karyNTree(16, 2), xgft2(16, 16, 7), Params({4, 3, 2}, {1, 2, 3})}) {
    EXPECT_EQ(parseParams(p.toString()), p);
  }
}

TEST(TopologyIo, WhitespaceFlexible) {
  EXPECT_EQ(parseParams("  xgft( 3 ;4 , 3,2 ; 1,2 , 3 )  "),
            Params({4, 3, 2}, {1, 2, 3}));
}

TEST(TopologyIo, KaryShorthand) {
  EXPECT_EQ(parseParams("kary(16, 2)"), karyNTree(16, 2));
  EXPECT_EQ(parseParams("kary(4,3)"), karyNTree(4, 3));
}

TEST(TopologyIo, RejectsMalformedInput) {
  const std::vector<std::string> inputs{
      "", "XGFT", "XGFT(2; 16,16)", "XGFT(2; 16; 1,10)",
      "XGFT(3; 16,16; 1,10)", "XGFT(2; 16,16; 1,10) extra",
      "FOO(2; 16,16; 1,10)", "XGFT(2; 16,x; 1,10)",
      "XGFT(2; 16,16; 1,99999999999)", "kary(4)"};
  for (const std::string& bad : inputs) {
    EXPECT_THROW(parseParams(bad), std::invalid_argument) << bad;
    EXPECT_FALSE(tryParseParams(bad).has_value()) << bad;
  }
}

TEST(TopologyIo, TryParseReturnsValue) {
  const auto p = tryParseParams("XGFT(2; 8,8; 1,4)");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, xgft2(8, 8, 4));
}

TEST(TopologyIo, ErrorsCarryPosition) {
  try {
    (void)parseParams("XGFT(2; 16,16; 1,10");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

}  // namespace
}  // namespace xgft
