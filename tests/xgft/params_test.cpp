// Unit tests for xgft::Params: constructor validation, the counting
// formulas of Sec. II (including Eq. (1)), and the factory functions.
#include "xgft/params.hpp"

#include <gtest/gtest.h>

namespace xgft {
namespace {

TEST(Params, RejectsEmptyVectors) {
  EXPECT_THROW(Params({}, {}), std::invalid_argument);
}

TEST(Params, RejectsMismatchedLengths) {
  EXPECT_THROW(Params({2, 2}, {1}), std::invalid_argument);
}

TEST(Params, RejectsZeroEntries) {
  EXPECT_THROW(Params({2, 0}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(Params({2, 2}, {0, 2}), std::invalid_argument);
}

TEST(Params, RejectsOverflowingTrees) {
  // 2^40 leaves would overflow intermediate products.
  std::vector<std::uint32_t> m(64, 4);
  std::vector<std::uint32_t> w(64, 4);
  EXPECT_THROW(Params(m, w), std::invalid_argument);
}

TEST(Params, AccessorsMatchConstruction) {
  const Params p({4, 3, 2}, {1, 2, 3});
  EXPECT_EQ(p.height(), 3u);
  EXPECT_EQ(p.m(1), 4u);
  EXPECT_EQ(p.m(2), 3u);
  EXPECT_EQ(p.m(3), 2u);
  EXPECT_EQ(p.w(1), 1u);
  EXPECT_EQ(p.w(2), 2u);
  EXPECT_EQ(p.w(3), 3u);
}

TEST(Params, LeafCountIsProductOfChildCounts) {
  EXPECT_EQ(Params({4, 3, 2}, {1, 2, 3}).numLeaves(), 24u);
  EXPECT_EQ(Params({16, 16}, {1, 16}).numLeaves(), 256u);
}

TEST(Params, NodesAtLevelMatchesTableI) {
  // XGFT(2; 16,16; 1,10): level 0 = 256 hosts, level 1 = 16 switches
  // (m2 copies of w1), level 2 = 10 roots (w1*w2).
  const Params p({16, 16}, {1, 10});
  EXPECT_EQ(p.nodesAtLevel(0), 256u);
  EXPECT_EQ(p.nodesAtLevel(1), 16u);
  EXPECT_EQ(p.nodesAtLevel(2), 10u);
  EXPECT_THROW((void)p.nodesAtLevel(3), std::out_of_range);
}

TEST(Params, Equation1InnerSwitchCount) {
  // Eq. (1): I = sum_i prod_{j>i} m_j * prod_{j<=i} w_j.
  // Full 16-ary 2-tree: 16 + 16 = 32 switches.
  EXPECT_EQ(karyNTree(16, 2).numInnerSwitches(), 32u);
  // Slimmed to w2 = 10: 16 + 10 = 26.
  EXPECT_EQ(xgft2(16, 16, 10).numInnerSwitches(), 26u);
  // k-ary n-tree closed form: n * k^(n-1).
  EXPECT_EQ(karyNTree(4, 3).numInnerSwitches(), 3u * 16u);
  EXPECT_EQ(karyNTree(2, 4).numInnerSwitches(), 4u * 8u);
}

TEST(Params, LinkCounts) {
  const Params p({16, 16}, {1, 16});  // 16-ary 2-tree.
  EXPECT_EQ(p.numUpLinks(0), 256u);        // Host uplinks (w1 = 1 each).
  EXPECT_EQ(p.numUpLinks(1), 16u * 16u);   // 16 switches x 16 parents.
  EXPECT_EQ(p.numLinks(), 256u + 256u);
  EXPECT_THROW((void)p.numUpLinks(2), std::out_of_range);
}

TEST(Params, UpAndDownLinkCountsAgreeBetweenLevels) {
  // "the number of links up from level i equals the number of links down
  // from level i + 1" (Table I): down links of level l+1 are
  // nodesAtLevel(l+1) * m_{l+1}.
  const Params p({4, 3, 2}, {1, 2, 3});
  for (std::uint32_t l = 0; l + 1 <= p.height(); ++l) {
    EXPECT_EQ(p.numUpLinks(l), p.nodesAtLevel(l + 1) * p.m(l + 1))
        << "level " << l;
  }
}

TEST(Params, KaryNTreeRecognition) {
  EXPECT_TRUE(karyNTree(16, 2).isKaryNTree());
  EXPECT_TRUE(karyNTree(2, 5).isKaryNTree());
  EXPECT_FALSE(xgft2(16, 16, 10).isKaryNTree());
  EXPECT_FALSE(Params({4, 3}, {1, 4}).isKaryNTree());  // m not constant.
}

TEST(Params, SlimmedRecognition) {
  EXPECT_FALSE(karyNTree(16, 2).isSlimmed());
  EXPECT_TRUE(xgft2(16, 16, 10).isSlimmed());
  EXPECT_TRUE(slimmedKaryNTree(4, 3, {4, 2}).isSlimmed());
  EXPECT_FALSE(slimmedKaryNTree(4, 3, {4, 4}).isSlimmed());
}

TEST(Params, SlimmedFactoryValidation) {
  EXPECT_THROW(slimmedKaryNTree(4, 3, {4}), std::invalid_argument);
  const Params p = slimmedKaryNTree(4, 3, {3, 2});
  EXPECT_EQ(p.w(1), 1u);
  EXPECT_EQ(p.w(2), 3u);
  EXPECT_EQ(p.w(3), 2u);
}

TEST(Params, ToStringUsesPaperNotation) {
  EXPECT_EQ(xgft2(16, 16, 10).toString(), "XGFT(2; 16,16; 1,10)");
  EXPECT_EQ(karyNTree(4, 3).toString(), "XGFT(3; 4,4,4; 1,4,4)");
}

TEST(Params, ProgressiveSlimmingSweepMatchesFig2Axis) {
  // The x-axis of Figs. 2/5: XGFT(2;16,16;1,w2) for w2 = 16..1.
  for (std::uint32_t w2 = 1; w2 <= 16; ++w2) {
    const Params p = xgft2(16, 16, w2);
    EXPECT_EQ(p.numLeaves(), 256u);
    EXPECT_EQ(p.nodesAtLevel(2), w2);
    EXPECT_EQ(p.numInnerSwitches(), 16u + w2);
  }
}

}  // namespace
}  // namespace xgft
