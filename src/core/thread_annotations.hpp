// thread_annotations.hpp — Clang Thread Safety Analysis attribute macros.
//
// The engine's reproducibility contract (byte-identical CSVs across
// --threads values) rests on data-race freedom in the shared surfaces:
// core::Registry, engine::CampaignCache, the Runner's work-stealing pool.
// These macros let the compiler *prove* every access to a guarded member
// happens under its lock: build with Clang and -Wthread-safety (the
// XGFT_THREAD_SAFETY CMake option turns it into -Werror=thread-safety in
// CI) and deleting a lock acquisition becomes a compile error, not a
// latent race for TSan to hopefully catch.
//
// Off Clang every macro expands to nothing, so GCC builds are unaffected.
// Annotate new shared state like this (see DESIGN.md §11):
//
//   class Cache {
//     core::Mutex mu_;
//     std::map<K, V> entries_ XGFT_GUARDED_BY(mu_);
//   public:
//     V get(const K& k) {
//       core::LockGuard lock(mu_);   // scoped: analysis sees acquire+release
//       return entries_[k];
//     }
//   };
//
// Naming and semantics follow the canonical mutex.h from the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#pragma once

#if defined(__clang__)
#define XGFT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define XGFT_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex").
#define XGFT_CAPABILITY(x) XGFT_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define XGFT_SCOPED_CAPABILITY XGFT_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define XGFT_GUARDED_BY(x) XGFT_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define XGFT_PT_GUARDED_BY(x) XGFT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability held exclusively (not acquired by it).
#define XGFT_REQUIRES(...) \
  XGFT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared.
#define XGFT_REQUIRES_SHARED(...) \
  XGFT_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and does not release it.
#define XGFT_ACQUIRE(...) \
  XGFT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define XGFT_ACQUIRE_SHARED(...) \
  XGFT_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define XGFT_RELEASE(...) \
  XGFT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases a shared hold on the capability.
#define XGFT_RELEASE_SHARED(...) \
  XGFT_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define XGFT_TRY_ACQUIRE(...) \
  XGFT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant lock deadlock guard).
#define XGFT_EXCLUDES(...) XGFT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define XGFT_RETURN_CAPABILITY(x) XGFT_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: turns the analysis off for one function.  Every use needs
/// a comment explaining why the access is safe (DESIGN.md §11 policy).
#define XGFT_NO_THREAD_SAFETY_ANALYSIS \
  XGFT_THREAD_ANNOTATION__(no_thread_safety_analysis)
