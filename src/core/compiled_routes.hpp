// compiled_routes.hpp — Flat per-(src, dst) forwarding tables compiled from
// any Router.
//
// Every simulated message used to pay a virtual Router::route(s, d) call
// (plus route validation and hop expansion) on the replayer's hot path.  A
// CompiledRoutes handle is the compile-once/route-many split packet-routing
// simulators rely on: the table is built once per (topology, scheme, seed)
// — in parallel when asked — by querying the router for every ordered host
// pair, validating each route exactly once, and storing the ascending
// port choices in one flat array:
//
//   ports_[(s * numHosts + d) * stride + i]  =  up-port taken at level i,
//   lens_ [ s * numHosts + d]                =  route length (= NCA level).
//
// The handle is immutable after compile() and therefore freely shared
// across threads and campaign jobs (the engine memoizes it next to the
// router).  sim::Network::addMessageCompiled consumes upPorts() spans
// directly — a table lookup instead of virtual dispatch per message — and
// the trace replayer goes one step further (Replayer::routeSetFor): the
// span is expanded and interned into the network's RouteStore once per
// (src, dst) pair, so repeat sends between the same endpoints are a pure
// record append with no per-message table walk at all.  The same per-pair
// interning backs the virtual-route fallback for topologies whose table
// would exceed the engine's memory budget, which keeps route construction
// off the per-message hot path in every mode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "routing/router.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace core {

class CompiledRoutes {
 public:
  /// Compiles the full ordered-pair table from @p router, splitting the
  /// source rows across @p threads workers (0 means hardware concurrency;
  /// the result is identical for any thread count).  Every route is
  /// validated against the topology; a malformed route throws
  /// std::invalid_argument.  The router (and through it the topology) is
  /// kept alive by the returned handle.
  [[nodiscard]] static std::shared_ptr<const CompiledRoutes> compile(
      std::shared_ptr<const routing::Router> router, std::uint32_t threads = 1);

  /// Per-pair override: the route to store for (s, d), or std::nullopt to
  /// mark the pair unroutable (upPorts() returns an empty span and
  /// unroutable() is true).  Called concurrently from the compile workers,
  /// so it must be thread-safe; s != d always.
  using RouteOverride = std::function<std::optional<xgft::Route>(
      xgft::NodeIndex, xgft::NodeIndex)>;

  /// compile() with @p routeFor supplying each pair's route instead of the
  /// router's own — the degraded-topology recompilation path
  /// (fault::compileDegraded).  Returned routes are validated exactly like
  /// compile(); nullopt pairs are recorded unroutable instead of throwing.
  [[nodiscard]] static std::shared_ptr<const CompiledRoutes> compileWith(
      std::shared_ptr<const routing::Router> router,
      const RouteOverride& routeFor, std::uint32_t threads = 1);

  /// Table size in bytes for a topology, before building — callers bound
  /// memory with this (the engine falls back to virtual routing above its
  /// limit).
  [[nodiscard]] static std::uint64_t tableBytes(const xgft::Topology& topo);

  /// The ascending port choices for (s, d); length == ncaLevel(s, d), empty
  /// when s == d — and also empty for pairs a compileWith override marked
  /// unroutable.  Valid for the handle's lifetime.
  [[nodiscard]] std::span<const std::uint32_t> upPorts(
      xgft::NodeIndex s, xgft::NodeIndex d) const {
    const std::size_t pair = static_cast<std::size_t>(s) * numHosts_ + d;
    return {ports_.data() + pair * stride_, lens_[pair]};
  }

  /// True iff a compileWith override declared (s, d) unreachable.  A valid
  /// route for s != d always has length ncaLevel(s, d) >= 1, so a zero
  /// length is unambiguous.
  [[nodiscard]] bool unroutable(xgft::NodeIndex s, xgft::NodeIndex d) const {
    return s != d && lens_[static_cast<std::size_t>(s) * numHosts_ + d] == 0;
  }

  /// Materializes the xgft::Route for (s, d) — for analysis-style callers.
  [[nodiscard]] xgft::Route route(xgft::NodeIndex s, xgft::NodeIndex d) const;

  [[nodiscard]] const routing::Router& router() const { return *router_; }
  [[nodiscard]] const xgft::Topology& topology() const {
    return router_->topology();
  }
  [[nodiscard]] std::size_t numHosts() const { return numHosts_; }
  [[nodiscard]] std::uint32_t stride() const { return stride_; }

 private:
  explicit CompiledRoutes(std::shared_ptr<const routing::Router> router);

  std::shared_ptr<const routing::Router> router_;
  std::size_t numHosts_ = 0;
  std::uint32_t stride_ = 0;           ///< Tree height.
  std::vector<std::uint32_t> ports_;   ///< numHosts^2 * stride.
  std::vector<std::uint8_t> lens_;     ///< numHosts^2 route lengths.
};

}  // namespace core
