// compiled_routes.hpp — Per-(src, dst) forwarding tables compiled from any
// Router, in a flat or an interval-compressed layout.
//
// Every simulated message used to pay a virtual Router::route(s, d) call
// (plus route validation and hop expansion) on the replayer's hot path.  A
// CompiledRoutes handle is the compile-once/route-many split packet-routing
// simulators rely on: routes are built once per (topology, scheme, seed),
// validated exactly once, and looked up by (s, d) afterwards.  Two layouts
// serve two scales:
//
//  * Flat (small topologies).  One dense O(H^2) array —
//
//      ports_[(s * numHosts + d) * stride + i]  =  up-port taken at level i,
//      lens_ [ s * numHosts + d]                =  route length (NCA level),
//
//    compiled eagerly (in parallel when asked), O(1) lookup.
//
//  * Interval-compressed (large topologies).  The paper's oblivious schemes
//    choose up-ports by arithmetic on node labels, so for a fixed guide
//    column (the destination for d-mod-k-style schemes, the source for
//    s-mod-k-style ones — chosen by deterministic sampling) the route is
//    piecewise-constant in the other endpoint: consecutive ranks sharing
//    the same up-port vector collapse into sorted half-open intervals, each
//    carrying one copy of the ports.  lookup(s, d) is a branch-free binary
//    search over the column's intervals.  Columns compile lazily in
//    64-column chunks on first touch — a sweep job only pays for the
//    destinations it routes to — and compileAll() preserves the eager path
//    for replays that touch every pair.  Tables shrink from O(H^2) entries
//    to O(H * levels * distinct-choices); schemes with per-pair randomness
//    (Random) do not compress, which estimateCompressedBytes() detects so
//    the engine can keep its virtual-routing fallback for them.
//
// The handle is immutable after compile() up to the lazily-built chunks,
// which are published atomically and never mutated afterwards, so it is
// freely shared across threads and campaign jobs (the engine memoizes it
// next to the router).  sim::Network::addMessageCompiled consumes upPorts()
// spans directly — a table lookup instead of virtual dispatch per message —
// and the trace replayer goes one step further (RouteSetResolver): the span
// is expanded and interned into the network's RouteStore once per shared
// route set, so repeat sends are a pure record append with no per-message
// table walk at all.  The same per-pair interning backs the virtual-route
// fallback for topologies whose table would exceed every layout's memory
// budget, which keeps route construction off the per-message hot path in
// every mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"
#include "routing/router.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace core {

/// Which representation compile() builds.  kAuto picks kFlat below an
/// 8 MiB flat-table footprint and kCompressed above it, so small paper
/// topologies keep the exact historical layout.
enum class TableLayout : std::uint8_t { kAuto, kFlat, kCompressed };

class CompiledRoutes {
 public:
  /// Destinations per lazily-compiled chunk in the compressed layout.
  static constexpr std::uint32_t kChunkCols = 64;

  /// Compiles the ordered-pair table from @p router, splitting the work
  /// across @p threads workers (0 means hardware concurrency; the result is
  /// identical for any thread count).  Every route is validated against the
  /// topology; a malformed route throws std::invalid_argument.  The router
  /// (and through it the topology) is kept alive by the returned handle.
  /// In the compressed layout nothing compiles up front: chunks build on
  /// first lookup (see compileAll()).
  [[nodiscard]] static std::shared_ptr<const CompiledRoutes> compile(
      std::shared_ptr<const routing::Router> router, std::uint32_t threads = 1,
      TableLayout layout = TableLayout::kAuto);

  /// Per-pair override: the route to store for (s, d), or std::nullopt to
  /// mark the pair unroutable (upPorts() returns an empty span and
  /// unroutable() is true).  Called concurrently from the compile workers,
  /// so it must be thread-safe; s != d always, and every ordered pair is
  /// queried exactly once.
  using RouteOverride = std::function<std::optional<xgft::Route>(
      xgft::NodeIndex, xgft::NodeIndex)>;

  /// compile() with @p routeFor supplying each pair's route instead of the
  /// router's own — the degraded-topology recompilation path
  /// (fault::compileDegraded).  Returned routes are validated exactly like
  /// compile(); nullopt pairs are recorded unroutable instead of throwing.
  /// Overridden tables always compile eagerly — @p routeFor may reference
  /// caller-stack state, so no lazy chunk may outlive this call.
  [[nodiscard]] static std::shared_ptr<const CompiledRoutes> compileWith(
      std::shared_ptr<const routing::Router> router,
      const RouteOverride& routeFor, std::uint32_t threads = 1,
      TableLayout layout = TableLayout::kAuto);

  /// Flat-layout size in bytes for a topology, before building — callers
  /// bound memory with this (the engine tries the compressed layout above
  /// its limit, then falls back to virtual routing).
  [[nodiscard]] static std::uint64_t tableBytes(const xgft::Topology& topo);

  /// Deterministic sampled estimate of the compressed-layout footprint for
  /// @p router's scheme: a handful of guide columns are compiled both ways
  /// and the denser axis' per-column bytes extrapolate to the full table.
  /// Schemes with per-pair randomness estimate near the flat size, which is
  /// how the engine keeps its virtual-routing fallback for them.
  [[nodiscard]] static std::uint64_t estimateCompressedBytes(
      const routing::Router& router);

  /// The ascending port choices for (s, d); length == ncaLevel(s, d), empty
  /// when s == d — and also empty for pairs a compileWith override marked
  /// unroutable.  Valid for the handle's lifetime.  In the compressed
  /// layout a first touch of an uncompiled column builds its chunk (and may
  /// throw what compilation would have thrown).
  [[nodiscard]] std::span<const std::uint32_t> upPorts(
      xgft::NodeIndex s, xgft::NodeIndex d) const {
    if (!compressed_) {
      const std::size_t pair = static_cast<std::size_t>(s) * numHosts_ + d;
      return {ports_.data() + pair * stride_, lens_[pair]};
    }
    return compressedLookup(s, d);
  }

  /// True iff a compileWith override declared (s, d) unreachable.  A valid
  /// route for s != d always has length ncaLevel(s, d) >= 1, so a zero
  /// length is unambiguous.
  [[nodiscard]] bool unroutable(xgft::NodeIndex s, xgft::NodeIndex d) const {
    return s != d && upPorts(s, d).empty();
  }

  /// Materializes the xgft::Route for (s, d) — for analysis-style callers.
  [[nodiscard]] xgft::Route route(xgft::NodeIndex s, xgft::NodeIndex d) const;

  /// Compiles every not-yet-built chunk (no-op in the flat layout), across
  /// @p threads workers; chunk contents are thread-count independent.
  /// Replay-style callers that touch all pairs use this to keep compilation
  /// off the simulation path.
  void compileAll(std::uint32_t threads = 1) const;

  /// The representative source whose (rep, d) route set is bit-identical to
  /// (s, d)'s: the start of s's source interval, clipped to s's leaf group
  /// (same leaf switch + same up-ports => same switch-tail path).  Resolvers
  /// key their per-pair memos by (rep, d) so every source in the interval
  /// shares one interned route set.  s itself in the flat layout, in the
  /// source-oriented compressed layout, and for s == d.
  [[nodiscard]] xgft::NodeIndex shareRep(xgft::NodeIndex s,
                                         xgft::NodeIndex d) const;

  [[nodiscard]] bool compressed() const { return compressed_; }
  /// Bytes currently resident for the forwarding state: the dense arrays in
  /// the flat layout, the built chunks' intervals + port arenas in the
  /// compressed one (grows as lazy chunks build; equals the full footprint
  /// after compileAll()).
  [[nodiscard]] std::uint64_t forwardingBytes() const;
  /// Chunks built so far (always 0 in the flat layout).
  [[nodiscard]] std::size_t builtChunks() const;
  [[nodiscard]] std::size_t numChunks() const { return numChunks_; }

  [[nodiscard]] const routing::Router& router() const { return *router_; }
  [[nodiscard]] const xgft::Topology& topology() const {
    return router_->topology();
  }
  [[nodiscard]] std::size_t numHosts() const { return numHosts_; }
  [[nodiscard]] std::uint32_t stride() const { return stride_; }

 private:
  /// Which endpoint indexes the compressed columns: guide = destination
  /// (runs over sources — destination-oriented schemes like d-mod-k) or
  /// guide = source (runs over destinations — s-mod-k and friends).
  enum class Axis : std::uint8_t { kByDst, kBySrc };

  /// One maximal run of ranks sharing a route within a guide column.
  struct Interval {
    std::uint32_t begin = 0;     ///< First rank of the run.
    std::uint32_t portsOff = 0;  ///< Offset of the ports in Chunk::ports.
    std::uint32_t len = 0;       ///< Route length; 0 = unroutable/diagonal.
  };

  /// kChunkCols consecutive guide columns, immutable once published.
  struct Chunk {
    std::vector<std::uint32_t> colOff;  ///< Per-local-column interval bounds.
    std::vector<Interval> intervals;
    std::vector<std::uint32_t> ports;
  };

  /// Route supplier used by every compile path: fills @p route for (s, d)
  /// or returns false for an unroutable pair.
  using PairRoute =
      std::function<bool(xgft::NodeIndex, xgft::NodeIndex, xgft::Route&)>;

  explicit CompiledRoutes(std::shared_ptr<const routing::Router> router);

  [[nodiscard]] std::span<const std::uint32_t> compressedLookup(
      xgft::NodeIndex s, xgft::NodeIndex d) const;
  [[nodiscard]] const Interval& intervalOf(const Chunk& chunk,
                                           std::uint32_t guide,
                                           std::uint32_t pos) const;
  /// The chunk covering guide column @p guide, building it on first touch.
  [[nodiscard]] const Chunk& chunkFor(std::uint32_t guide) const;
  /// Appends column @p guide's intervals and ports to @p chunk.
  void appendColumn(std::uint32_t guide, const PairRoute& routeOf,
                    Chunk& chunk) const;
  [[nodiscard]] std::unique_ptr<Chunk> makeChunk(
      std::size_t idx, const PairRoute& routeOf) const;
  /// Publishes @p chunk as chunk @p idx unless one is already installed.
  const Chunk& publishChunk(std::size_t idx,
                            std::unique_ptr<Chunk> chunk) const;
  void compileAllWith(const PairRoute& routeOf, std::uint32_t threads) const;
  [[nodiscard]] PairRoute routerPairRoute() const;

  std::shared_ptr<const routing::Router> router_;
  std::size_t numHosts_ = 0;
  std::uint32_t stride_ = 0;           ///< Tree height.

  // Flat layout.
  std::vector<std::uint32_t> ports_;   ///< numHosts^2 * stride.
  std::vector<std::uint8_t> lens_;     ///< numHosts^2 route lengths.

  // Compressed layout.
  bool compressed_ = false;
  Axis axis_ = Axis::kByDst;
  std::size_t numChunks_ = 0;
  /// Built chunks, published with release ordering; null until built.
  std::unique_ptr<std::atomic<const Chunk*>[]> chunks_;
  mutable Mutex chunkMu_;
  /// Owns every published chunk (readers go through chunks_, never here).
  mutable std::vector<std::unique_ptr<const Chunk>> chunkOwner_
      XGFT_GUARDED_BY(chunkMu_);
  mutable std::atomic<std::uint64_t> compressedBytes_{0};
  mutable std::atomic<std::size_t> builtChunks_{0};
};

}  // namespace core
