// scenario.hpp — The registry-driven Scenario construction API.
//
// The paper's evaluation is a cross-product of {topology, routing scheme,
// traffic pattern} (Figs. 2/4/5).  This layer makes each axis an open,
// string-keyed registry instead of a hard-coded if-chain:
//
//  * schemeRegistry()   "d-mod-k", "Random", "colored", ... -> SchemeInfo
//  * patternRegistry()  "cg128", "ring", "uniform", ...     -> PatternInfo
//  * topologyRegistry() "xgft2", "kary", "paper-slim", ...  -> TopologyInfo
//  * sourceRegistry()   "poisson", "bursty", ...            -> SourceInfo
//
// The built-in entries self-register from their home modules (see
// routing/register.cpp, patterns/register.cpp, xgft/register.cpp), so
// adding a scheme or workload is one file in its own module — the engine,
// CLI and bench harnesses consume names only.  A Scenario is the value type
// tying one of each together (plus message scale, seed and simulator
// config); its make*() methods are the single construction path everything
// above the registries uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "patterns/pattern.hpp"
#include "patterns/source.hpp"
#include "routing/router.hpp"
#include "sim/config.hpp"
#include "xgft/params.hpp"

namespace core {

/// How the simulator consumes a scheme.  kTable schemes assign one static
/// route per (s, d) pair — they build a Router and can be compiled to flat
/// forwarding tables (CompiledRoutes).  kAdaptive and kSpray route per
/// segment inside the simulator; they have no Router factory and no static
/// contention analysis.
enum class RouteMode : std::uint8_t { kTable, kAdaptive, kSpray };

/// Everything a Router factory may consult besides the topology.
struct RouterContext {
  std::uint64_t seed = 1;
  /// The workload, for pattern-aware schemes (Colored); null otherwise.
  const patterns::PhasedPattern* app = nullptr;
};

/// One registered routing scheme: behavioural traits plus the factory.
struct SchemeInfo {
  RouteMode mode = RouteMode::kTable;
  /// Route choice depends on the seed (Random, r-NCA-u/d, spray).
  bool seeded = false;
  /// Construction consults the workload (Colored) — cache keys must then
  /// include the pattern, scale and seed.
  bool patternAware = false;
  std::string summary;  ///< One line for --list-schemes.
  /// Builds the router; null for per-segment schemes (kAdaptive/kSpray).
  std::function<routing::RouterPtr(const xgft::Topology&,
                                   const RouterContext&)>
      make;
};

/// Seed handed to seeded pattern factories (derived from the job seed).
struct PatternContext {
  std::uint64_t seed = 1;
};

/// One registered workload family, keyed by the name before the first ':'.
struct PatternInfo {
  std::string usage;    ///< e.g. "ring:N" — shown by --list-patterns.
  std::string summary;  ///< One line for --list-patterns.
  /// The generated flows depend on PatternContext::seed (uniform,
  /// permutations) — such workloads cannot share a crossbar reference
  /// across seeds.
  bool seeded = false;
  std::function<patterns::PhasedPattern(const std::vector<std::string>& args,
                                        const PatternContext&)>
      make;
};

/// One registered topology preset, keyed like patterns ("xgft2:16:16:10").
struct TopologyInfo {
  std::string usage;
  std::string summary;
  std::function<xgft::Params(const std::vector<std::string>& args)> make;
};

/// Everything a traffic-source factory needs besides its spec args: the
/// run-derived parameters (rank count, offered load, message size, link
/// rate, measurement horizon) come from the Scenario, not the spec string,
/// so one registered source serves every topology and load point.
struct SourceContext {
  patterns::Rank numRanks = 0;
  double load = 0.5;  ///< Offered fraction of the per-host link rate.
  patterns::Bytes messageBytes = 4096;
  double hostBytesPerNs = 0.25;  ///< linkGbps / 8.
  sim::TimeNs startNs = 0;
  sim::TimeNs stopNs = 0;  ///< Arrivals stop here (end of measurement).
  std::uint64_t seed = 1;  ///< Already derived for the "source" role.
};

/// One registered open-loop traffic-source family ("poisson:uniform").
struct SourceInfo {
  std::string usage;    ///< e.g. "poisson:hotspot:PCT" — for --list-sources.
  std::string summary;  ///< One line for --list-sources.
  std::function<std::unique_ptr<patterns::TrafficSource>(
      const std::vector<std::string>& args, const SourceContext&)>
      make;
};

/// The process-wide registries.  First access registers the built-ins from
/// routing/, patterns/ and xgft/; later self-registrations (plugins, tests)
/// may add entries at any time — lookups are thread-safe.
[[nodiscard]] Registry<SchemeInfo>& schemeRegistry();
[[nodiscard]] Registry<PatternInfo>& patternRegistry();
[[nodiscard]] Registry<TopologyInfo>& topologyRegistry();
[[nodiscard]] Registry<SourceInfo>& sourceRegistry();

/// A colon-separated spec "name:arg1:arg2" split for registry dispatch.
struct SpecName {
  std::string full;
  std::string name;
  std::vector<std::string> args;

  /// Throws std::invalid_argument unless exactly @p n args were given.
  void requireArity(std::size_t n) const;

  /// Arg @p i parsed as u32; throws std::invalid_argument on malformed or
  /// missing values.
  [[nodiscard]] std::uint32_t argU32(std::size_t i) const;
};

[[nodiscard]] SpecName splitSpec(const std::string& spec);

/// Reassembles a SpecName from a registry key and its raw args (the inverse
/// of splitSpec) — used by factory adapters to report the full spec in
/// arity/parse errors.
[[nodiscard]] SpecName joinSpec(std::string name,
                                std::vector<std::string> args);

/// Resolves a topology spec: the paper notation "XGFT(h; m...; w...)" goes
/// through xgft::parseParams, anything else through topologyRegistry().
[[nodiscard]] xgft::Params makeTopoParams(const std::string& spec);

/// Derives an independent sub-seed for a named role ("pattern", "spray",
/// ...) from a base seed.  Stable across platforms and releases: FNV-1a
/// over the role name mixed through SplitMix64.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t base,
                                       std::string_view role);

/// The scheme whose Router the routing name @p routing actually builds:
/// table schemes build themselves, per-segment schemes (adaptive, spray)
/// build the inert d-mod-k placeholder the replayer interface wants.  The
/// single source of that fallback rule — Scenario::makeRouter constructs
/// with it and the engine derives router cache keys from it, so keys and
/// built routers cannot diverge.  Stores the build scheme's canonical name
/// in @p name when non-null.
[[nodiscard]] const SchemeInfo& routerBuildScheme(const std::string& routing,
                                                  std::string* name = nullptr);

/// One fully-specified simulation scenario: the unit the engine runs, the
/// CLI sweeps and the bench harnesses construct.
struct Scenario {
  xgft::Params topo = xgft::karyNTree(16, 2);
  std::string pattern = "cg128";     ///< patternRegistry() spec.
  std::string routing = "d-mod-k";   ///< schemeRegistry() name (canonical).
  double msgScale = 1.0;
  std::uint64_t seed = 1;
  sim::SimConfig sim = {};

  /// Open-loop streaming workload: a sourceRegistry() spec, or empty for
  /// closed-loop phase replay of `pattern`.  `load` is the offered load
  /// per host as a fraction of the link rate (only meaningful with a
  /// source).
  std::string source;
  double load = 0.5;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// Traits of the configured scheme (throws on unknown names).
  [[nodiscard]] const SchemeInfo& schemeInfo() const;

  /// True when the workload's flows depend on the job seed.
  [[nodiscard]] bool patternSeeded() const;

  /// Instantiates the workload with message sizes already scaled by
  /// msgScale; seeded patterns draw from deriveSeed(seed, "pattern").
  [[nodiscard]] patterns::PhasedPattern makeWorkload() const;

  /// Builds the router on @p t.  Per-segment schemes (adaptive, spray) get
  /// the inert d-mod-k placeholder the replayer interface wants.  @p app is
  /// only consulted by pattern-aware schemes.
  [[nodiscard]] routing::RouterPtr makeRouter(
      const xgft::Topology& t, const patterns::PhasedPattern& app) const;

  /// Instantiates the open-loop source named by `source` for @p numRanks
  /// injecting hosts, offering in [startNs, stopNs).  Message size is
  /// 4096 bytes scaled by msgScale; the seed is deriveSeed(seed, "source").
  /// Throws on an empty/unknown source spec.
  [[nodiscard]] std::unique_ptr<patterns::TrafficSource> makeSource(
      patterns::Rank numRanks, sim::TimeNs startNs, sim::TimeNs stopNs) const;
};

}  // namespace core
