// mutex.hpp — Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// Thin, zero-overhead shims over std::mutex / std::shared_mutex whose
// lock/unlock methods carry the capability attributes the analysis needs
// (the standard-library types are unannotated, so locking them is
// invisible to -Wthread-safety).  All project code that guards shared
// state uses these types plus the scoped guards below; std::lock_guard /
// std::unique_lock on a raw std::mutex would compile but leave the guarded
// members unprotected as far as the analysis can see, so the determinism
// linter has no rule for it — the thread-safety build itself fails when a
// XGFT_GUARDED_BY member is touched without a core guard in scope.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "core/thread_annotations.hpp"

namespace core {

/// std::mutex with capability annotations.
class XGFT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XGFT_ACQUIRE() { mu_.lock(); }
  void unlock() XGFT_RELEASE() { mu_.unlock(); }
  bool try_lock() XGFT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations (reader/writer lock).
class XGFT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() XGFT_ACQUIRE() { mu_.lock(); }
  void unlock() XGFT_RELEASE() { mu_.unlock(); }
  void lock_shared() XGFT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() XGFT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a core::Mutex (std::lock_guard shape).
class XGFT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) XGFT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() XGFT_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) lock on a core::SharedMutex.
class XGFT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) XGFT_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() XGFT_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a core::SharedMutex.
class XGFT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) XGFT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() XGFT_RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace core
