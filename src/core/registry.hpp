// registry.hpp — String-keyed factory registries (the open construction
// API of the scenario layer).
//
// A Registry<Value> maps names to immutable entries (factories plus their
// traits).  Producers self-register — the routing/, patterns/ and xgft/
// modules each expose a registerBuiltin*() hook that core/scenario.cpp runs
// exactly once — and consumers (engine, CLI, benches) only ever look names
// up, so adding a scheme or workload touches one file in its own module and
// nothing else.
//
// Contracts:
//  * Names are unique; re-registering a taken name (or alias) throws.
//  * Aliases resolve to a canonical name ("random" -> "Random"), so user
//    spellings normalize before they reach cache keys or CSV cells.
//  * Lookups are thread-safe against concurrent registration (shared
//    mutex); entry references stay valid forever (std::map nodes are
//    stable), so a caller may hold a `const Value&` without the lock.
//  * Every lookup failure throws the same std::invalid_argument shape:
//      unknown <kind> '<name>' (registered: a, b, c)
//    — one consistent error wherever a bad name enters the system.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"

namespace core {

template <typename Value>
class Registry {
 public:
  /// @p kind is the human-readable noun used in error messages
  /// ("routing scheme", "pattern", "topology preset").
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers @p value under @p name.  Throws std::invalid_argument if the
  /// name (or an alias spelled the same) is already taken.
  void add(std::string name, Value value) {
    WriterLock lock(mu_);
    if (spellings_.count(name) != 0) {
      throw std::invalid_argument("duplicate " + kind_ + " registration '" +
                                  name + "'");
    }
    // Entry first, spelling second (with rollback): every spelling present
    // in spellings_ must resolve to an entry even if an insertion throws.
    const auto entry = entries_.emplace(name, std::move(value)).first;
    try {
      spellings_.emplace(std::move(name), entry->first);
    } catch (...) {
      entries_.erase(entry);
      throw;
    }
    namesCache_.reset();  // The canonical-name set changed.
  }

  /// Registers @p alt as an alternate spelling of the already-registered
  /// @p canonical name.  Lookups under @p alt resolve to the canonical
  /// entry; names() lists only canonical names.
  void alias(std::string alt, const std::string& canonical) {
    WriterLock lock(mu_);
    if (entries_.count(canonical) == 0) {
      throw std::invalid_argument("alias '" + alt + "' for unregistered " +
                                  kind_ + " '" + canonical + "'");
    }
    if (spellings_.count(alt) != 0) {
      throw std::invalid_argument("duplicate " + kind_ + " registration '" +
                                  alt + "'");
    }
    spellings_.emplace(std::move(alt), canonical);
  }

  /// The entry registered under @p name (any accepted spelling).  The
  /// returned reference is stable for the registry's lifetime.
  [[nodiscard]] const Value& at(const std::string& name) const {
    ReaderLock lock(mu_);
    const auto spelling = spellings_.find(name);
    if (spelling == spellings_.end()) throw unknown(name);
    return entries_.find(spelling->second)->second;
  }

  /// Like at(), but nullptr instead of throwing.
  [[nodiscard]] const Value* find(const std::string& name) const {
    ReaderLock lock(mu_);
    const auto spelling = spellings_.find(name);
    if (spelling == spellings_.end()) return nullptr;
    return &entries_.find(spelling->second)->second;
  }

  /// Resolves @p name to its canonical spelling; throws like at() when
  /// unknown.
  [[nodiscard]] std::string canonical(const std::string& name) const {
    ReaderLock lock(mu_);
    const auto spelling = spellings_.find(name);
    if (spelling == spellings_.end()) throw unknown(name);
    return spelling->second;
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    ReaderLock lock(mu_);
    return spellings_.count(name) != 0;
  }

  /// Canonical names in sorted order — registration order never matters.
  /// Returns a shared immutable snapshot, rebuilt only after a
  /// registration: it sits on the pre-flight and error paths of every CLI
  /// run, where the per-call copy under the shared lock used to dominate.
  /// (alias() never invalidates — it adds spellings, not canonical names.)
  [[nodiscard]] std::shared_ptr<const std::vector<std::string>> names()
      const {
    {
      ReaderLock lock(mu_);
      if (namesCache_ != nullptr) return namesCache_;
    }
    WriterLock lock(mu_);
    if (namesCache_ == nullptr) {
      auto out = std::make_shared<std::vector<std::string>>();
      out->reserve(entries_.size());
      for (const auto& [name, value] : entries_) out->push_back(name);
      namesCache_ = std::move(out);
    }
    return namesCache_;
  }

  [[nodiscard]] const std::string& kind() const { return kind_; }

 private:
  /// Builds the uniform lookup-failure error; needs at least a reader hold
  /// because it walks entries_ for the "(registered: ...)" suffix.
  [[nodiscard]] std::invalid_argument unknown(const std::string& name) const
      XGFT_REQUIRES_SHARED(mu_) {
    std::string msg = "unknown " + kind_ + " '" + name + "' (registered:";
    bool first = true;
    for (const auto& [canon, value] : entries_) {
      msg += first ? " " : ", ";
      msg += canon;
      first = false;
    }
    msg += ")";
    return std::invalid_argument(msg);
  }

  mutable SharedMutex mu_;
  std::string kind_;
  /// Spelling -> canonical.
  std::map<std::string, std::string> spellings_ XGFT_GUARDED_BY(mu_);
  /// Canonical -> value.  Nodes are stable, so at()/find() may hand out
  /// references that outlive the lock (see the class contract above).
  std::map<std::string, Value> entries_ XGFT_GUARDED_BY(mu_);
  /// Sorted-names snapshot, lazily (re)built by names(); holders keep
  /// their copy alive through any later registration.
  mutable std::shared_ptr<const std::vector<std::string>> namesCache_
      XGFT_GUARDED_BY(mu_);
};

/// The one-time-populated process-wide registry instance behind accessors
/// like schemeRegistry().  Keyed by the populate hook (a distinct hook gets
/// a distinct instance), thread-safe via static initialization.  Populate
/// hooks must not throw: an exception would leave the instance partially
/// filled and every retried initialization failing on duplicates.
template <typename Value, void (*Populate)(Registry<Value>&)>
[[nodiscard]] Registry<Value>& populatedRegistry(const char* kind) {
  static Registry<Value> reg{std::string(kind)};
  static const bool once = (Populate(reg), true);
  (void)once;
  return reg;
}

}  // namespace core
