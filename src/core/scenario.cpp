#include "core/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "patterns/register.hpp"
#include "routing/register.hpp"
#include "trace/harness.hpp"
#include "xgft/io.hpp"
#include "xgft/register.hpp"
#include "xgft/rng.hpp"

namespace core {

Registry<SchemeInfo>& schemeRegistry() {
  return populatedRegistry<SchemeInfo, routing::registerBuiltinSchemes>(
      "routing scheme");
}

Registry<PatternInfo>& patternRegistry() {
  return populatedRegistry<PatternInfo, patterns::registerBuiltinPatterns>(
      "pattern");
}

Registry<TopologyInfo>& topologyRegistry() {
  return populatedRegistry<TopologyInfo, xgft::registerBuiltinTopologies>(
      "topology preset");
}

Registry<SourceInfo>& sourceRegistry() {
  return populatedRegistry<SourceInfo, patterns::registerBuiltinSources>(
      "traffic source");
}

void SpecName::requireArity(std::size_t n) const {
  if (args.size() != n) {
    throw std::invalid_argument("'" + full + "' wants " + std::to_string(n) +
                                " argument(s), got " +
                                std::to_string(args.size()));
  }
}

std::uint32_t SpecName::argU32(std::size_t i) const {
  if (i >= args.size()) {
    throw std::invalid_argument("'" + full + "' is missing argument " +
                                std::to_string(i + 1));
  }
  const std::string& a = args[i];
  std::uint32_t v = 0;
  const auto [p, ec] = std::from_chars(a.data(), a.data() + a.size(), v);
  if (ec != std::errc{} || p != a.data() + a.size()) {
    throw std::invalid_argument("'" + full + "': argument '" + a +
                                "' wants an integer");
  }
  return v;
}

SpecName splitSpec(const std::string& spec) {
  SpecName out;
  out.full = spec;
  std::size_t start = 0;
  bool first = true;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    std::string part = spec.substr(
        start, colon == std::string::npos ? colon : colon - start);
    if (first) {
      out.name = std::move(part);
      first = false;
    } else {
      out.args.push_back(std::move(part));
    }
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return out;
}

SpecName joinSpec(std::string name, std::vector<std::string> args) {
  SpecName s;
  s.full = name;
  for (const std::string& a : args) s.full += ":" + a;
  s.name = std::move(name);
  s.args = std::move(args);
  return s;
}

xgft::Params makeTopoParams(const std::string& spec) {
  if (spec.rfind("XGFT(", 0) == 0) return xgft::parseParams(spec);
  const SpecName parsed = splitSpec(spec);
  return topologyRegistry().at(parsed.name).make(parsed.args);
}

std::uint64_t deriveSeed(std::uint64_t base, std::string_view role) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64 offset basis.
  for (const char c : role) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a 64 prime.
  }
  return xgft::hashMix(base, h);
}

const SchemeInfo& routerBuildScheme(const std::string& routing,
                                    std::string* name) {
  const SchemeInfo& info = schemeRegistry().at(routing);
  if (info.mode != RouteMode::kTable) {
    if (name != nullptr) *name = "d-mod-k";
    return schemeRegistry().at("d-mod-k");
  }
  if (name != nullptr) *name = routing;
  return info;
}

const SchemeInfo& Scenario::schemeInfo() const {
  return schemeRegistry().at(routing);
}

bool Scenario::patternSeeded() const {
  return patternRegistry().at(splitSpec(pattern).name).seeded;
}

patterns::PhasedPattern Scenario::makeWorkload() const {
  const SpecName parsed = splitSpec(pattern);
  const PatternInfo& info = patternRegistry().at(parsed.name);
  PatternContext ctx;
  ctx.seed = deriveSeed(seed, "pattern");
  patterns::PhasedPattern app = info.make(parsed.args, ctx);
  app.name = pattern;
  if (msgScale != 1.0) {
    app = trace::scaleMessages(app, msgScale);
    app.name = pattern;
  }
  return app;
}

routing::RouterPtr Scenario::makeRouter(
    const xgft::Topology& t, const patterns::PhasedPattern& app) const {
  const SchemeInfo& build = routerBuildScheme(routing);
  RouterContext ctx;
  ctx.seed = seed;
  ctx.app = &app;
  return build.make(t, ctx);
}

std::unique_ptr<patterns::TrafficSource> Scenario::makeSource(
    patterns::Rank numRanks, sim::TimeNs startNs, sim::TimeNs stopNs) const {
  const SpecName parsed = splitSpec(source);
  const SourceInfo& info = sourceRegistry().at(parsed.name);
  SourceContext ctx;
  ctx.numRanks = numRanks;
  ctx.load = load;
  ctx.messageBytes = static_cast<patterns::Bytes>(
      std::max(1.0, 4096.0 * msgScale));
  ctx.hostBytesPerNs = sim.linkGbps / 8.0;
  ctx.startNs = startNs;
  ctx.stopNs = stopNs;
  ctx.seed = deriveSeed(seed, "source");
  return info.make(parsed.args, ctx);
}

}  // namespace core
