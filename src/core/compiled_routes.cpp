#include "core/compiled_routes.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"

namespace core {

namespace {

/// First exception thrown by any compile worker (annotated so the
/// thread-safety build proves every access happens under the lock).
struct FailureSink {
  Mutex mu;
  std::exception_ptr first XGFT_GUARDED_BY(mu);

  void capture(std::exception_ptr e) {
    LockGuard lock(mu);
    if (!first) first = std::move(e);
  }
  void rethrowIfSet() {
    LockGuard lock(mu);
    if (first) std::rethrow_exception(first);
  }
};

}  // namespace

CompiledRoutes::CompiledRoutes(std::shared_ptr<const routing::Router> router)
    : router_(std::move(router)) {
  const xgft::Topology& topo = router_->topology();
  numHosts_ = static_cast<std::size_t>(topo.numHosts());
  stride_ = topo.height();
  if (stride_ > 0xff) {
    throw std::invalid_argument("CompiledRoutes: tree higher than 255 levels");
  }
  ports_.resize(numHosts_ * numHosts_ * stride_);
  lens_.resize(numHosts_ * numHosts_);
}

std::uint64_t CompiledRoutes::tableBytes(const xgft::Topology& topo) {
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(topo.numHosts()) * topo.numHosts();
  return pairs * (static_cast<std::uint64_t>(topo.height()) *
                      sizeof(std::uint32_t) +
                  sizeof(std::uint8_t));
}

std::shared_ptr<const CompiledRoutes> CompiledRoutes::compile(
    std::shared_ptr<const routing::Router> router, std::uint32_t threads) {
  return compileWith(std::move(router), RouteOverride{}, threads);
}

std::shared_ptr<const CompiledRoutes> CompiledRoutes::compileWith(
    std::shared_ptr<const routing::Router> router,
    const RouteOverride& routeFor, std::uint32_t threads) {
  if (!router) {
    throw std::invalid_argument("CompiledRoutes::compile: null router");
  }
  auto table = std::shared_ptr<CompiledRoutes>(
      new CompiledRoutes(std::move(router)));
  const routing::Router& r = *table->router_;
  const xgft::Topology& topo = r.topology();
  const std::size_t n = table->numHosts_;
  const std::uint32_t stride = table->stride_;

  // Each worker fills disjoint source rows, so no synchronization is needed
  // and the table contents are thread-count independent (routers are
  // required to be deterministic and immutable after construction; a
  // routeFor override must uphold the same).
  const auto fillRows = [&](std::size_t sBegin, std::size_t sEnd) {
    for (std::size_t s = sBegin; s < sEnd; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        const std::size_t pair = s * n + d;
        if (s == d) {
          table->lens_[pair] = 0;
          continue;
        }
        xgft::Route route;
        if (routeFor) {
          std::optional<xgft::Route> chosen =
              routeFor(static_cast<xgft::NodeIndex>(s),
                       static_cast<xgft::NodeIndex>(d));
          if (!chosen.has_value()) {
            table->lens_[pair] = 0;  // Unroutable (upPorts() empty span).
            continue;
          }
          route = std::move(*chosen);
        } else {
          route = r.route(static_cast<xgft::NodeIndex>(s),
                          static_cast<xgft::NodeIndex>(d));
        }
        std::string error;
        if (!xgft::validateRoute(topo, static_cast<xgft::NodeIndex>(s),
                                 static_cast<xgft::NodeIndex>(d), route,
                                 &error)) {
          throw std::invalid_argument("CompiledRoutes(" + r.name() +
                                      "): " + error);
        }
        table->lens_[pair] = static_cast<std::uint8_t>(route.up.size());
        std::copy(route.up.begin(), route.up.end(),
                  table->ports_.begin() +
                      static_cast<std::ptrdiff_t>(pair * stride));
      }
    }
  };

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, std::max<std::size_t>(1, n)));
  if (threads <= 1 || n < 2) {
    fillRows(0, n);
  } else {
    std::vector<std::thread> pool;
    FailureSink failure;
    pool.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (std::uint32_t w = 0; w < threads; ++w) {
      const std::size_t begin = std::min(n, static_cast<std::size_t>(w) * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back([&, begin, end] {
        try {
          fillRows(begin, end);
        } catch (...) {
          failure.capture(std::current_exception());
        }
      });
    }
    for (std::thread& t : pool) t.join();
    failure.rethrowIfSet();
  }
  return table;
}

xgft::Route CompiledRoutes::route(xgft::NodeIndex s, xgft::NodeIndex d) const {
  const std::span<const std::uint32_t> ports = upPorts(s, d);
  xgft::Route r;
  r.up.assign(ports.begin(), ports.end());
  return r;
}

}  // namespace core
