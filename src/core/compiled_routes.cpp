#include "core/compiled_routes.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace core {

namespace {

/// kAuto layout cutover: flat tables up to this footprint keep the exact
/// historical representation (and its O(1) lookup); larger ones compress.
constexpr std::uint64_t kAutoCompressBytes = 8ull << 20;

/// First exception thrown by any compile worker (annotated so the
/// thread-safety build proves every access happens under the lock).
struct FailureSink {
  Mutex mu;
  std::exception_ptr first XGFT_GUARDED_BY(mu);

  void capture(std::exception_ptr e) {
    LockGuard lock(mu);
    if (!first) first = std::move(e);
  }
  void rethrowIfSet() {
    LockGuard lock(mu);
    if (first) std::rethrow_exception(first);
  }
};

/// Interval runs and stored port words one guide column would compress to.
/// Router-only (no override, no validation): used for axis sampling and
/// footprint estimation, where calling a RouteOverride would double-trigger
/// its side effects (fault::compileDegraded records unreachable pairs).
struct ColumnCost {
  std::uint64_t intervals = 0;
  std::uint64_t portWords = 0;
};

ColumnCost scanColumn(const routing::Router& r, bool byDst,
                      std::uint32_t guide, std::uint32_t numHosts) {
  ColumnCost cost;
  xgft::Route prev;
  bool havePrev = false;
  for (std::uint32_t pos = 0; pos < numHosts; ++pos) {
    if (pos == guide) {  // Diagonal: its own zero-length run.
      ++cost.intervals;
      havePrev = false;
      continue;
    }
    xgft::Route cur = byDst ? r.route(pos, guide) : r.route(guide, pos);
    if (!havePrev || cur.up != prev.up) {
      ++cost.intervals;
      cost.portWords += cur.up.size();
      prev = std::move(cur);
      havePrev = true;
    }
  }
  return cost;
}

}  // namespace

CompiledRoutes::CompiledRoutes(std::shared_ptr<const routing::Router> router)
    : router_(std::move(router)) {
  const xgft::Topology& topo = router_->topology();
  numHosts_ = static_cast<std::size_t>(topo.numHosts());
  stride_ = topo.height();
  if (stride_ > 0xff) {
    throw std::invalid_argument("CompiledRoutes: tree higher than 255 levels");
  }
}

std::uint64_t CompiledRoutes::tableBytes(const xgft::Topology& topo) {
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(topo.numHosts()) * topo.numHosts();
  return pairs * (static_cast<std::uint64_t>(topo.height()) *
                      sizeof(std::uint32_t) +
                  sizeof(std::uint8_t));
}

std::uint64_t CompiledRoutes::estimateCompressedBytes(
    const routing::Router& router) {
  const std::uint32_t n =
      static_cast<std::uint32_t>(router.topology().numHosts());
  if (n == 0) return 0;
  // Up to 8 evenly spaced guide columns per axis; the cheaper axis' average
  // per-column bytes extrapolates to all n columns — mirroring the axis
  // choice compile() makes, so the estimate tracks the real footprint.
  std::uint64_t best = ~0ull;
  for (const bool byDst : {true, false}) {
    std::uint64_t bytes = 0;
    std::uint64_t sampled = 0;
    std::uint32_t last = ~0u;
    for (std::uint32_t i = 0; i < 8; ++i) {
      const std::uint32_t guide =
          n < 2 ? 0
                : static_cast<std::uint32_t>(
                      static_cast<std::uint64_t>(i) * (n - 1) / 7);
      if (guide == last) continue;
      last = guide;
      const ColumnCost cost = scanColumn(router, byDst, guide, n);
      bytes += sizeof(std::uint32_t) + cost.intervals * sizeof(Interval) +
               cost.portWords * sizeof(std::uint32_t);
      ++sampled;
    }
    best = std::min(best, bytes / sampled * n);
  }
  return best;
}

std::shared_ptr<const CompiledRoutes> CompiledRoutes::compile(
    std::shared_ptr<const routing::Router> router, std::uint32_t threads,
    TableLayout layout) {
  return compileWith(std::move(router), RouteOverride{}, threads, layout);
}

std::shared_ptr<const CompiledRoutes> CompiledRoutes::compileWith(
    std::shared_ptr<const routing::Router> router,
    const RouteOverride& routeFor, std::uint32_t threads, TableLayout layout) {
  if (!router) {
    throw std::invalid_argument("CompiledRoutes::compile: null router");
  }
  const bool compress =
      layout == TableLayout::kCompressed ||
      (layout == TableLayout::kAuto &&
       tableBytes(router->topology()) > kAutoCompressBytes);
  auto table =
      std::shared_ptr<CompiledRoutes>(new CompiledRoutes(std::move(router)));
  const routing::Router& r = *table->router_;
  const xgft::Topology& topo = r.topology();
  const std::size_t n = table->numHosts_;
  const std::uint32_t stride = table->stride_;

  if (compress) {
    table->compressed_ = true;
    table->numChunks_ = (n + kChunkCols - 1) / kChunkCols;
    table->chunks_ =
        std::make_unique<std::atomic<const Chunk*>[]>(table->numChunks_);
    // Axis by deterministic sampling: three spread guide columns scanned
    // both ways; fewer total runs wins, a tie keeps kByDst.  Always scans
    // the healthy router — a degraded table differs from it on few pairs,
    // and a RouteOverride must not be probed twice for any pair.
    const std::uint32_t hosts = static_cast<std::uint32_t>(n);
    std::uint64_t byDstRuns = 0;
    std::uint64_t bySrcRuns = 0;
    std::uint32_t last = ~0u;
    for (const std::uint32_t guide :
         {0u, hosts / 2, hosts == 0 ? 0u : hosts - 1}) {
      if (guide == last) continue;
      last = guide;
      byDstRuns += scanColumn(r, true, guide, hosts).intervals;
      bySrcRuns += scanColumn(r, false, guide, hosts).intervals;
    }
    table->axis_ = bySrcRuns < byDstRuns ? Axis::kBySrc : Axis::kByDst;
    if (routeFor) {
      // Overridden tables never compile lazily: routeFor may reference
      // caller-stack state (fault::compileDegraded's degraded view), so
      // every chunk must be built before this call returns.
      const PairRoute routeOf = [&r, &topo, &routeFor](xgft::NodeIndex s,
                                                       xgft::NodeIndex d,
                                                       xgft::Route& route) {
        std::optional<xgft::Route> chosen = routeFor(s, d);
        if (!chosen.has_value()) return false;
        route = std::move(*chosen);
        std::string error;
        if (!xgft::validateRoute(topo, s, d, route, &error)) {
          throw std::invalid_argument("CompiledRoutes(" + r.name() +
                                      "): " + error);
        }
        return true;
      };
      table->compileAllWith(routeOf, threads);
    }
    return table;
  }

  table->ports_.resize(n * n * stride);
  table->lens_.resize(n * n);

  // Each worker fills disjoint source rows, so no synchronization is needed
  // and the table contents are thread-count independent (routers are
  // required to be deterministic and immutable after construction; a
  // routeFor override must uphold the same).
  const auto fillRows = [&](std::size_t sBegin, std::size_t sEnd) {
    for (std::size_t s = sBegin; s < sEnd; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        const std::size_t pair = s * n + d;
        if (s == d) {
          table->lens_[pair] = 0;
          continue;
        }
        xgft::Route route;
        if (routeFor) {
          std::optional<xgft::Route> chosen =
              routeFor(static_cast<xgft::NodeIndex>(s),
                       static_cast<xgft::NodeIndex>(d));
          if (!chosen.has_value()) {
            table->lens_[pair] = 0;  // Unroutable (upPorts() empty span).
            continue;
          }
          route = std::move(*chosen);
        } else {
          route = r.route(static_cast<xgft::NodeIndex>(s),
                          static_cast<xgft::NodeIndex>(d));
        }
        std::string error;
        if (!xgft::validateRoute(topo, static_cast<xgft::NodeIndex>(s),
                                 static_cast<xgft::NodeIndex>(d), route,
                                 &error)) {
          throw std::invalid_argument("CompiledRoutes(" + r.name() +
                                      "): " + error);
        }
        table->lens_[pair] = static_cast<std::uint8_t>(route.up.size());
        std::copy(route.up.begin(), route.up.end(),
                  table->ports_.begin() +
                      static_cast<std::ptrdiff_t>(pair * stride));
      }
    }
  };

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, std::max<std::size_t>(1, n)));
  if (threads <= 1 || n < 2) {
    fillRows(0, n);
  } else {
    std::vector<std::thread> pool;
    FailureSink failure;
    pool.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (std::uint32_t w = 0; w < threads; ++w) {
      const std::size_t begin = std::min(n, static_cast<std::size_t>(w) * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back([&, begin, end] {
        try {
          fillRows(begin, end);
        } catch (...) {
          failure.capture(std::current_exception());
        }
      });
    }
    for (std::thread& t : pool) t.join();
    failure.rethrowIfSet();
  }
  return table;
}

CompiledRoutes::PairRoute CompiledRoutes::routerPairRoute() const {
  return [this](xgft::NodeIndex s, xgft::NodeIndex d, xgft::Route& route) {
    const routing::Router& r = *router_;
    route = r.route(s, d);
    std::string error;
    if (!xgft::validateRoute(r.topology(), s, d, route, &error)) {
      throw std::invalid_argument("CompiledRoutes(" + r.name() +
                                  "): " + error);
    }
    return true;
  };
}

void CompiledRoutes::appendColumn(std::uint32_t guide,
                                  const PairRoute& routeOf,
                                  Chunk& chunk) const {
  const std::uint32_t n = static_cast<std::uint32_t>(numHosts_);
  xgft::Route route;
  std::uint32_t prevOff = 0;
  std::uint32_t prevLen = 0;
  bool havePrev = false;
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    bool routable = false;
    if (pos != guide) {
      const xgft::NodeIndex s = axis_ == Axis::kByDst ? pos : guide;
      const xgft::NodeIndex d = axis_ == Axis::kByDst ? guide : pos;
      routable = routeOf(s, d, route);
    }
    if (routable) {
      const std::uint32_t len = static_cast<std::uint32_t>(route.up.size());
      if (havePrev && prevLen == len &&
          std::equal(route.up.begin(), route.up.end(),
                     chunk.ports.begin() + prevOff)) {
        continue;  // Extends the previous run.
      }
      prevOff = static_cast<std::uint32_t>(chunk.ports.size());
      prevLen = len;
      havePrev = true;
      chunk.intervals.push_back({pos, prevOff, len});
      chunk.ports.insert(chunk.ports.end(), route.up.begin(), route.up.end());
    } else {  // Diagonal or override-declared unroutable: zero-length run.
      if (havePrev && prevLen == 0) continue;
      prevLen = 0;
      havePrev = true;
      chunk.intervals.push_back({pos, 0, 0});
    }
  }
}

std::unique_ptr<CompiledRoutes::Chunk> CompiledRoutes::makeChunk(
    std::size_t idx, const PairRoute& routeOf) const {
  auto chunk = std::make_unique<Chunk>();
  const std::uint32_t gBegin = static_cast<std::uint32_t>(idx * kChunkCols);
  const std::uint32_t gEnd = static_cast<std::uint32_t>(
      std::min(numHosts_, (idx + 1) * static_cast<std::size_t>(kChunkCols)));
  chunk->colOff.reserve(gEnd - gBegin + 1);
  chunk->colOff.push_back(0);
  for (std::uint32_t guide = gBegin; guide < gEnd; ++guide) {
    appendColumn(guide, routeOf, *chunk);
    chunk->colOff.push_back(
        static_cast<std::uint32_t>(chunk->intervals.size()));
  }
  return chunk;
}

const CompiledRoutes::Chunk& CompiledRoutes::publishChunk(
    std::size_t idx, std::unique_ptr<Chunk> chunk) const {
  LockGuard lock(chunkMu_);
  if (const Chunk* existing = chunks_[idx].load(std::memory_order_relaxed)) {
    return *existing;  // Raced build: identical content, drop the duplicate.
  }
  compressedBytes_.fetch_add(
      chunk->colOff.size() * sizeof(std::uint32_t) +
          chunk->intervals.size() * sizeof(Interval) +
          chunk->ports.size() * sizeof(std::uint32_t),
      std::memory_order_relaxed);
  builtChunks_.fetch_add(1, std::memory_order_relaxed);
  const Chunk* raw = chunk.get();
  chunkOwner_.push_back(std::move(chunk));
  chunks_[idx].store(raw, std::memory_order_release);
  return *raw;
}

const CompiledRoutes::Chunk& CompiledRoutes::chunkFor(
    std::uint32_t guide) const {
  const std::size_t idx = guide / kChunkCols;
  if (const Chunk* built = chunks_[idx].load(std::memory_order_acquire)) {
    return *built;
  }
  // First touch: build outside the lock (a concurrent first touch builds a
  // bit-identical duplicate that publishChunk then discards).
  return publishChunk(idx, makeChunk(idx, routerPairRoute()));
}

const CompiledRoutes::Interval& CompiledRoutes::intervalOf(
    const Chunk& chunk, std::uint32_t localCol, std::uint32_t pos) const {
  const std::uint32_t first = chunk.colOff[localCol];
  // Branch-free lower bound over the column's sorted interval begins: every
  // column covers rank 0, so count >= 1 and the loop lands on the last
  // interval with begin <= pos.
  const Interval* base = chunk.intervals.data() + first;
  std::size_t count = chunk.colOff[localCol + 1] - first;
  while (count > 1) {
    const std::size_t half = count / 2;
    base += (base[half].begin <= pos) ? half : 0;
    count -= half;
  }
  return *base;
}

std::span<const std::uint32_t> CompiledRoutes::compressedLookup(
    xgft::NodeIndex s, xgft::NodeIndex d) const {
  const std::uint32_t guide = axis_ == Axis::kByDst ? d : s;
  const std::uint32_t pos = axis_ == Axis::kByDst ? s : d;
  const Chunk& chunk = chunkFor(guide);
  const Interval& run = intervalOf(chunk, guide % kChunkCols, pos);
  return {chunk.ports.data() + run.portsOff, run.len};
}

xgft::NodeIndex CompiledRoutes::shareRep(xgft::NodeIndex s,
                                         xgft::NodeIndex d) const {
  if (!compressed_ || axis_ == Axis::kBySrc || s == d) return s;
  const Chunk& chunk = chunkFor(d);
  const Interval& run = intervalOf(chunk, d % kChunkCols, s);
  // Same interval => same up-ports; clipping to s's leaf group also pins
  // the level-1 switch, so (rep, d)'s switch-tail path is bit-identical.
  const std::uint32_t m1 = topology().params().m(1);
  const xgft::NodeIndex leafBase = s - (s % m1);
  return std::max<xgft::NodeIndex>(run.begin, leafBase);
}

void CompiledRoutes::compileAll(std::uint32_t threads) const {
  if (!compressed_) return;
  compileAllWith(routerPairRoute(), threads);
}

void CompiledRoutes::compileAllWith(const PairRoute& routeOf,
                                    std::uint32_t threads) const {
  std::vector<std::size_t> pending;
  pending.reserve(numChunks_);
  for (std::size_t i = 0; i < numChunks_; ++i) {
    if (!chunks_[i].load(std::memory_order_acquire)) pending.push_back(i);
  }
  if (pending.empty()) return;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, pending.size()));
  const auto buildRange = [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      publishChunk(pending[k], makeChunk(pending[k], routeOf));
    }
  };
  if (threads <= 1) {
    buildRange(0, pending.size());
    return;
  }
  std::vector<std::thread> pool;
  FailureSink failure;
  pool.reserve(threads);
  const std::size_t step = (pending.size() + threads - 1) / threads;
  for (std::uint32_t w = 0; w < threads; ++w) {
    const std::size_t begin =
        std::min(pending.size(), static_cast<std::size_t>(w) * step);
    const std::size_t end = std::min(pending.size(), begin + step);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        buildRange(begin, end);
      } catch (...) {
        failure.capture(std::current_exception());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  failure.rethrowIfSet();
}

std::uint64_t CompiledRoutes::forwardingBytes() const {
  if (!compressed_) {
    return ports_.size() * sizeof(std::uint32_t) +
           lens_.size() * sizeof(std::uint8_t);
  }
  return compressedBytes_.load(std::memory_order_relaxed) +
         numChunks_ * sizeof(std::atomic<const Chunk*>);
}

std::size_t CompiledRoutes::builtChunks() const {
  return builtChunks_.load(std::memory_order_relaxed);
}

xgft::Route CompiledRoutes::route(xgft::NodeIndex s, xgft::NodeIndex d) const {
  const std::span<const std::uint32_t> ports = upPorts(s, d);
  xgft::Route r;
  r.up.assign(ports.begin(), ports.end());
  return r;
}

}  // namespace core
