// network.hpp — Event-driven XGFT network simulator (the Venus substitute).
//
// Model (see DESIGN.md for the substitution rationale):
//
//  * Source routing.  A message carries its precomputed output-port path
//    (host NIC port, then one output port per switch).
//  * Adapters.  Each host NIC keeps a round-robin list of active messages
//    per port; whenever the host link is free (and the first switch has
//    buffer credit) the NIC emits the *next segment of the next message* —
//    the per-segment interleaving of Sec. VI-B.
//  * Switches.  Input- and output-buffered: segments arriving on an input
//    port move (after the switch latency) into the FIFO output buffer of
//    their next hop when it has space; otherwise they wait in the input
//    buffer, and inputs blocked on the same output are served round-robin
//    as slots free up.  Input buffer occupancy is governed by credits, so
//    an upstream transmitter never overruns a full input buffer.
//  * Wires.  One segment at a time, serialization time exact in flit
//    arithmetic, plus a propagation latency.
//
// Up/down routes on a tree give an acyclic channel-dependency graph, so the
// credit protocol cannot deadlock; run() checks full drainage and throws on
// any stranded segment (a routing-table bug would surface here, not hang).
// On runs where link faults occurred (scheduleLinkDown) stranded traffic is
// expected, so the drain check converts it to dropped-message accounting
// instead of throwing (DESIGN.md §10).
//
// Data layout (DESIGN.md §7): the inner loop runs entirely over flat
// storage — POD events in a calendar queue (event_queue.hpp), segments in a
// contiguous slot pool whose FIFO queues are intrusive `next` links (no
// per-port deques, no allocation after warm-up), and routes interned once
// in a shared arena (route_store.hpp) so messages/segments carry indices,
// never copied port vectors.
//
// Determinism: ties in the event queue break by insertion order, so equal
// configurations and inputs replay identically on every platform.
//
// Overflow semantics are hardened, not silent: message ids, segment counts,
// route arenas and the global-port space are 32-bit by design (the flat
// layout depends on it); any workload that would exceed them throws with a
// clear message instead of wrapping.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/route_store.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace sim {

using MsgId = std::uint32_t;
using Bytes = std::uint64_t;

class Probe;  // probe.hpp — observation hooks; sim never includes obs/.

/// How a multipath message distributes its segments over its routes.
/// Per-segment spraying is the packet-granular randomized routing of
/// Greenberg & Leiserson [16], provided as an extension (DESIGN.md):
/// segments of one message may arrive out of order, which the paper's
/// segment-reassembling adapters tolerate.
enum class SprayPolicy : std::uint8_t {
  kRoundRobin,  ///< Segment i takes route i mod |routes|.
  kRandom,      ///< Segment i takes a seeded pseudo-random route.
};

/// What the event core does with traffic that meets a dead link
/// (scheduleLinkDown).  In every policy an in-flight segment completes its
/// serialization (kWireFree/kWireArrive events already scheduled proceed)
/// and only then the port blocks.
enum class FaultPolicy : std::uint8_t {
  /// Traffic queues behind the dead port and waits for a scheduleLinkUp;
  /// if none ever fires, the affected messages are converted to dropped
  /// when the queue drains (run() never hangs or throws on faulted runs).
  kWait,
  /// Segments queued at or routed to the dead port are dropped immediately
  /// (counted in NetworkStats::segmentsStranded) and their messages marked
  /// dropped.
  kStrand,
  /// Ascending segments escape through the least-occupied live up-port of
  /// the same switch (counted in segmentsRerouted) and continue minimally
  /// adaptive from there; descending segments have a unique minimal path,
  /// so they strand as under kStrand.
  kReroute,
};

/// Receives end-to-end message completions (the Dimemas coupling point).
class TrafficSink {
 public:
  virtual ~TrafficSink() = default;
  virtual void onMessageDelivered(MsgId msg, TimeNs time) = 0;

  /// A sink that returns true promises onMessageDelivered never mutates the
  /// network (no release/addMessage*/scheduleCallback, no run) — it only
  /// records the completion.  The parallel runner (shard.hpp) relies on this
  /// to defer sink notifications to deterministic flush points; sinks that
  /// drive the simulation (closed-loop replay) keep the default false and
  /// force the serial engine.
  [[nodiscard]] virtual bool deliveriesDeferrable() const { return false; }
};

/// Aggregate counters exposed after (or during) a run.
///
/// Validity contract (pinned by tests/sim/stats_test.cpp): every field is
/// meaningful at any Network::run(until) boundary, not only after a full
/// drain, and every field is monotone non-decreasing across resumed runs.
/// Mid-run they describe the prefix of the simulation processed so far:
///
///  * segmentsInjected / segmentsDelivered — cumulative counts; mid-run
///    `delivered <= injected` always holds and the difference is the number
///    of segments currently inside the network (in-flight invariant).
///    After a clean full drain the two are equal.
///  * messagesDelivered — cumulative completions, including src == dst
///    local deliveries (which never touch segment counters).
///  * eventsProcessed — calendar events handled.  Telemetry sampling events
///    (Probe) are explicitly excluded, so the count is identical with and
///    without a probe attached; it feeds the campaign CSV `events` column.
///  * lastDeliveryNs — time of the latest completion so far; only after the
///    queue drains is it the makespan.
///  * maxOutputQueueDepth / maxInputQueueDepth — high-water marks over the
///    prefix, not current occupancy (Network::outputQueueDepth /
///    inputQueueDepth expose instantaneous depths).
///  * segmentsRerouted / segmentsStranded / messagesDropped — fault
///    accounting (scheduleLinkDown + FaultPolicy); all zero on healthy
///    runs.  A stranded segment never delivers, so the in-flight invariant
///    weakens to `delivered + stranded <= injected` once faults occur.
///  * linkDownNs — cumulative down-time summed over links (a link down for
///    d ns contributes d once, not once per direction), accrued up to the
///    current run() boundary, so it is monotone across resumes.
struct NetworkStats {
  std::uint64_t segmentsInjected = 0;
  std::uint64_t segmentsDelivered = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t eventsProcessed = 0;
  TimeNs lastDeliveryNs = 0;
  std::uint32_t maxOutputQueueDepth = 0;
  std::uint32_t maxInputQueueDepth = 0;
  std::uint64_t segmentsRerouted = 0;
  std::uint64_t segmentsStranded = 0;
  std::uint64_t messagesDropped = 0;
  TimeNs linkDownNs = 0;
};

class Network {
 public:
  /// Builds the port-level machine for @p topo.  The topology reference must
  /// outlive the Network.  Throws std::invalid_argument if the topology's
  /// port count does not fit the 32-bit global-port space.
  Network(const xgft::Topology& topo, SimConfig cfg);

  /// Registers the completion listener (optional).
  void setSink(TrafficSink* sink) { sink_ = sink; }

  /// Attaches an observation probe (optional; nullptr detaches).  Hooks
  /// fire synchronously from the event core; if the probe samples
  /// (samplePeriodNs() > 0) a dedicated calendar event drives periodic
  /// onSample calls.  Observation is guaranteed non-perturbing: makespan,
  /// NetworkStats (including eventsProcessed) and per-wire busy times are
  /// identical with and without a probe.  The probe must outlive the runs
  /// it observes.
  void setProbe(Probe* probe);

  /// Registers a message and its minimal up/down route; the message starts
  /// injecting only after release().  s == d messages are legal and complete
  /// instantly upon release (local delivery, no network traversal).
  MsgId addMessage(xgft::NodeIndex src, xgft::NodeIndex dst, Bytes bytes,
                   const xgft::Route& route);

  /// Fast-path variant of addMessage consuming a compiled forwarding-table
  /// entry (core::CompiledRoutes::upPorts): the ascending port choices are
  /// expanded straight into the global-port path with no route validation
  /// and no intermediate Route object.  Precondition: @p upPorts came from
  /// a table compiled against this network's topology (validated once at
  /// compile time).  Produces the identical event sequence as addMessage
  /// with the equivalent Route.
  MsgId addMessageCompiled(xgft::NodeIndex src, xgft::NodeIndex dst,
                           Bytes bytes,
                           std::span<const std::uint32_t> upPorts);

  /// Registers a multipath message: each segment is sprayed over one of the
  /// given routes per @p policy.  All routes must share the same first-hop
  /// (host) port.  At least one route is required.
  MsgId addMessageMultipath(xgft::NodeIndex src, xgft::NodeIndex dst,
                            Bytes bytes,
                            const std::vector<xgft::Route>& routes,
                            SprayPolicy policy,
                            std::uint64_t spraySeed = 1);

  /// Registers a minimally-adaptive message (the adaptive routing the
  /// paper's Sec. I discusses via Gómez et al. [6]): no precomputed route —
  /// at every switch on the ascent the segment picks the least-occupied
  /// up-port (round-robin tie-breaking per switch) until it reaches an
  /// ancestor of the destination, then descends deterministically.  Routes
  /// stay minimal, so deadlock freedom is preserved.
  MsgId addMessageAdaptive(xgft::NodeIndex src, xgft::NodeIndex dst,
                           Bytes bytes);

  // ---- Interned-route fast path (route_store.hpp) --------------------------
  //
  // Callers that send many messages between the same endpoints (the trace
  // replayer) intern the route material once per (src, dst) pair and then
  // add messages by set id: validation, hop expansion and route storage all
  // happen exactly once per distinct route set, and addMessageSet is a pure
  // O(1) record append.  Produces the identical event sequence as the
  // equivalent addMessage/addMessageMultipath calls.

  /// Interns the validated global-port paths of @p routes (the
  /// addMessageMultipath rules: >= 1 route, shared first-hop port) and
  /// returns the set handle.  For src == dst returns RouteStore::kNone
  /// (local delivery needs no routes, matching addMessageMultipath).
  RouteSetId internRoutes(xgft::NodeIndex src, xgft::NodeIndex dst,
                          const std::vector<xgft::Route>& routes);

  /// internRoutes for one compiled forwarding-table entry (no validation,
  /// same contract as addMessageCompiled).
  RouteSetId internCompiledPath(xgft::NodeIndex src, xgft::NodeIndex dst,
                                std::span<const std::uint32_t> upPorts);

  /// Registers a message over a previously interned route set.  @p set must
  /// come from internRoutes/internCompiledPath for the same (src, dst), or
  /// be RouteStore::kNone iff src == dst.
  MsgId addMessageSet(xgft::NodeIndex src, xgft::NodeIndex dst, Bytes bytes,
                      RouteSetId set,
                      SprayPolicy policy = SprayPolicy::kRoundRobin,
                      std::uint64_t spraySeed = 1);

  /// Makes the message visible to the source adapter at time @p t (must not
  /// precede the current simulation time).
  void release(MsgId msg, TimeNs t);

  /// Schedules an arbitrary callback (trace compute/barrier hooks).
  void scheduleCallback(TimeNs t, std::function<void()> fn);

  // ---- Link faults (src/fault/ drives these) -------------------------------

  /// How traffic that meets a dead link is handled; may be changed between
  /// runs (takes effect from the next fault transition processed).
  void setFaultPolicy(FaultPolicy policy) { faultPolicy_ = policy; }
  [[nodiscard]] FaultPolicy faultPolicy() const { return faultPolicy_; }

  /// Schedules the bidirectional link @p link to fail at time @p t: any
  /// segment serializing on either wire completes (and its arrival is
  /// honoured), then both directions block.  Queued/arriving traffic is
  /// handled per the FaultPolicy.  Failing an already-down link is a no-op
  /// at processing time.  Throws std::invalid_argument for an unknown link
  /// or a time in the past.
  void scheduleLinkDown(TimeNs t, xgft::LinkId link);

  /// Schedules @p link to come back into service at @p t; queued traffic
  /// behind it resumes.  Restoring an up link is a no-op.
  void scheduleLinkUp(TimeNs t, xgft::LinkId link);

  /// Is @p link currently failed?  (Reflects processed events only, not
  /// scheduled future transitions.)
  [[nodiscard]] bool linkIsDown(xgft::LinkId link) const;

  /// External drop accounting: a routing layer that refuses a message (an
  /// unreachable pair on a degraded topology) records it here so
  /// NetworkStats::messagesDropped covers both in-network strands and
  /// never-injected refusals.
  void noteMessageDropped() { ++stats_.messagesDropped; }

  /// Processes events until the queue drains (or @p until, if given).
  /// Throws std::runtime_error if released traffic is left stranded once
  /// the queue is empty — unless link faults occurred this run, in which
  /// case stuck messages are expected and are converted to dropped/stranded
  /// counts instead (faulted runs report, never hang or throw).
  void run(TimeNs until = std::numeric_limits<TimeNs>::max());

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] const xgft::Topology& topology() const { return *topo_; }
  [[nodiscard]] const RouteStore& routes() const { return routes_; }

  /// Completion time of a delivered message; throws if not yet delivered.
  [[nodiscard]] TimeNs deliveryTime(MsgId msg) const;

  /// Busy (serializing) nanoseconds of the wire leaving global port @p gport.
  [[nodiscard]] TimeNs wireBusyNs(std::uint32_t gport) const;

  /// Global output-port id crossed by hop (level, node, outPort) — exposed
  /// for utilization reports.
  [[nodiscard]] std::uint32_t globalPort(std::uint32_t level,
                                         xgft::NodeIndex node,
                                         std::uint32_t port) const;

  [[nodiscard]] std::uint32_t numGlobalPorts() const {
    return static_cast<std::uint32_t>(peer_.size());
  }

  /// Reverse port lookup: which node owns a global port.
  struct PortOwner {
    std::uint32_t level = 0;
    xgft::NodeIndex node = 0;
    std::uint32_t localPort = 0;
  };
  [[nodiscard]] const PortOwner& portOwnerOf(std::uint32_t gport) const {
    return portOwner_[gport];
  }

  /// Instantaneous buffer occupancies (segments) — probe/report queries;
  /// NetworkStats keeps the high-water marks.
  [[nodiscard]] std::uint32_t inputQueueDepth(std::uint32_t gport) const {
    return ports_[gport].inCount;
  }
  [[nodiscard]] std::uint32_t outputQueueDepth(std::uint32_t gport) const {
    return ports_[gport].outCount;
  }

 private:
  /// The conservative parallel engine (shard.hpp) replicates the healthy-run
  /// handlers over sharded port state and must reach the flat storage and
  /// the private helpers; it is the only other writer of network state.
  friend class ParallelRunner;

  /// Intrusive-list terminator for segment/message/port links.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // The calendar queue packs the kind into 3 bits (event_queue.hpp), so at
  // most 8 kinds exist; kLinkDown/kLinkUp fill the space exactly.
  enum class Kind : std::uint8_t {
    kRelease,
    kWireArrive,
    kWireFree,
    kTransfer,
    kCallback,
    kSample,    ///< Probe sampling tick — excluded from eventsProcessed.
    kLinkDown,  ///< a = LinkId (fits: links < ports < 2^32).
    kLinkUp,    ///< a = LinkId.
  };

  /// One in-flight segment in the contiguous slot pool.  `next` threads the
  /// FIFO queue (input or output buffer) the segment currently sits in — a
  /// segment is in at most one queue at a time, so one link suffices.
  /// Segment::flags bit: the segment escaped a dead output port
  /// (FaultPolicy::kReroute) and finishes its journey adaptively — its
  /// interned route no longer describes the remaining hops.
  static constexpr std::uint32_t kSegEscaped = 1u;

  struct Segment {
    MsgId msg = 0;
    RouteId route = 0;          ///< Interned path this segment follows.
    std::uint32_t hop = 0;      ///< Hops completed so far.
    std::uint32_t payloadBytes = 0;
    std::uint32_t resolvedOut = 0;  ///< Output gport chosen at this switch.
    std::uint32_t next = kNil;      ///< Intrusive FIFO link / free-list link.
    std::uint32_t flags = 0;        ///< kSegEscaped.
  };

  /// POD message record; routes live in the interned store (set).  The
  /// single-route fast path (`setSize` == 1) keeps the route id inline so
  /// injection never touches the set arena.
  struct Message {
    xgft::NodeIndex src = 0;
    xgft::NodeIndex dst = 0;
    Bytes bytes = 0;
    std::uint32_t numSegments = 0;
    std::uint32_t injectedSegments = 0;
    std::uint32_t deliveredSegments = 0;
    RouteSetId set = RouteStore::kNone;  ///< Candidate routes (kNone: local).
    std::uint32_t setSize = 0;           ///< |set| (0 for local delivery).
    RouteId route0 = 0;                  ///< set[0], inline.
    std::uint32_t hostPort = 0;  ///< Source NIC gport (paths store tails).
    std::uint32_t nextActive = kNil;     ///< Host-adapter round-robin link.
    std::uint64_t spraySeed = 1;
    TimeNs deliveredAt = 0;
    SprayPolicy policy = SprayPolicy::kRoundRobin;
    bool released = false;
    bool delivered = false;
    bool adaptive = false;
    bool dropped = false;  ///< Lost to a fault; will never complete.
  };

  /// Flat per-port state: all queues are intrusive head/tail links into the
  /// segment pool (inQ/outQ), the port array itself (waiting inputs) or the
  /// message table (host-adapter round robin).  Exactly one cache line per
  /// port — the waiting-list link lives in the cold side array waitLink_.
  struct PortState {
    std::uint32_t peer = 0;  ///< The gport this port's wire ends at.
    // Output side.
    std::uint32_t outHead = kNil;  ///< FIFO of segment pool indices.
    std::uint32_t outTail = kNil;
    std::uint32_t waitHead = kNil;  ///< Blocked input gports (RR order).
    std::uint32_t waitTail = kNil;
    std::uint32_t reserved = 0;  ///< Transfers in flight into the out FIFO.
    std::uint32_t credits = 0;   ///< Free slots at the peer's input buffer.
    std::uint32_t outCount = 0;
    // Input side.
    std::uint32_t inHead = kNil;  ///< FIFO of segment pool indices.
    std::uint32_t inTail = kNil;
    std::uint32_t inCount = 0;
    // Host adapter (host ports only): active-message round robin.
    std::uint32_t activeHead = kNil;  ///< FIFO of MsgIds.
    std::uint32_t activeTail = kNil;
    bool wireBusy = false;
    bool transferring = false;
    bool queuedWaiting = false;  ///< Already parked in some waiting list.
    bool down = false;           ///< This port's link is failed (both ends).
    // Accounting.
    TimeNs busyNs = 0;
  };
  static_assert(sizeof(PortState) == 64, "PortState must stay one cache line");

  void schedule(TimeNs t, Kind kind, std::uint32_t a, std::uint32_t seg = 0) {
    queue_.push(t, static_cast<std::uint8_t>(kind), a, seg);
  }
  void handle(const EventRecord& ev);
  /// (Re)schedules the probe's next sampling tick at now_ + period.
  void scheduleSample();
  /// The run() epilogue shared with the parallel engine: accrues pending
  /// link-outage time and performs the stranded-traffic drain check.
  void finishRun();

  void handleRelease(MsgId msg);
  void handleWireArrive(std::uint32_t gInPort, std::uint32_t seg);
  void handleWireFree(std::uint32_t gOutPort);
  void handleTransfer(std::uint32_t gInPort, std::uint32_t seg);
  void handleLinkDown(std::uint32_t link);
  void handleLinkUp(std::uint32_t link);

  void tryInjectHost(std::uint32_t gOutPort);
  void tryTransmitSwitch(std::uint32_t gOutPort);
  void startTransmission(std::uint32_t gOutPort, std::uint32_t seg);
  void tryAdvanceInput(std::uint32_t gInPort);
  /// tryAdvanceInput for an input woken from a waiting list: the blocked
  /// front segment's resolved output is still valid for static routes, so
  /// only adaptive segments re-resolve.
  void wakeInput(std::uint32_t gInPort);
  /// Shared tail of tryAdvanceInput/wakeInput: reserve the output slot or
  /// park the input in @p out's waiting list.
  void advanceInputTo(std::uint32_t gInPort, std::uint32_t seg,
                      std::uint32_t out);
  void serveWaitingInputs(std::uint32_t gOutPort);
  void returnCredit(std::uint32_t gOutPort);
  void deliverSegment(std::uint32_t gInPort, std::uint32_t seg);
  void outputDispatch(std::uint32_t gOutPort);

  // ---- fault machinery -----------------------------------------------------

  /// The child-side global port of @p link (its peer is the parent side).
  [[nodiscard]] std::uint32_t linkChildGport(std::uint32_t link) const;
  /// Strand-or-escape every segment queued in the dead output @p gOutPort
  /// (kStrand/kReroute only).
  void processDeadOutput(std::uint32_t gOutPort);
  /// Re-runs every input parked on the dead output @p gOutPort so its head
  /// segment is stranded or rerouted instead of waiting forever.
  void flushDeadWaiters(std::uint32_t gOutPort);
  /// Drops the head segment of @p gInPort's input queue (strand path).
  void strandInputHead(std::uint32_t gInPort);
  /// Least-occupied live up-port of the switch owning the dead output
  /// @p gOutPort, or kNil when the output descends (unique minimal path) or
  /// no live up-port remains.
  [[nodiscard]] std::uint32_t rerouteAlternative(std::uint32_t gOutPort);
  void dropMessage(MsgId msg);
  /// Folds the pending down-time of currently-down links into
  /// stats_.linkDownNs (called at run() boundaries and on restore).
  void accrueLinkDownTo(TimeNs t);
  [[nodiscard]] bool segAdaptive(const Segment& seg) const {
    return messages_[seg.msg].adaptive || (seg.flags & kSegEscaped) != 0;
  }

  // Intrusive FIFO helpers over the segment pool / message table.
  void segPushBack(std::uint32_t& head, std::uint32_t& tail,
                   std::uint32_t seg) {
    segments_[seg].next = kNil;
    if (tail == kNil) {
      head = seg;
    } else {
      segments_[tail].next = seg;
    }
    tail = seg;
  }
  std::uint32_t segPopFront(std::uint32_t& head, std::uint32_t& tail) {
    const std::uint32_t seg = head;
    head = segments_[seg].next;
    if (head == kNil) tail = kNil;
    return seg;
  }
  /// Appends @p msg to a host port's active-message round-robin FIFO.
  void activePushBack(PortState& port, MsgId msg) {
    messages_[msg].nextActive = kNil;
    if (port.activeTail == kNil) {
      port.activeHead = msg;
    } else {
      messages_[port.activeTail].nextActive = msg;
    }
    port.activeTail = msg;
  }

  /// Appends the message/segment bookkeeping shared by every addMessage*
  /// flavour; guards the 32-bit id and segment-count spaces.
  MsgId addRecord(xgft::NodeIndex src, xgft::NodeIndex dst, Bytes bytes,
                  RouteSetId set, SprayPolicy policy, std::uint64_t spraySeed,
                  bool adaptive);

  [[nodiscard]] std::uint32_t allocSegment(MsgId msg, RouteId route,
                                           std::uint32_t bytes);
  [[nodiscard]] std::span<const std::uint32_t> pathOf(
      const Segment& seg) const {
    return routes_.path(seg.route);
  }
  /// Picks the output gport for an adaptive segment sitting at the node
  /// owning @p gInPort.
  [[nodiscard]] std::uint32_t resolveAdaptive(std::uint32_t gInPort,
                                              const Segment& seg);
  void freeSegment(std::uint32_t seg) {
    segments_[seg].next = freeSegments_;
    freeSegments_ = seg;
  }
  [[nodiscard]] bool isHostPort(std::uint32_t gport) const {
    return gport < hostPortEnd_;
  }
  [[nodiscard]] std::uint32_t segmentPayload(const Message& m,
                                             std::uint32_t index) const;
  [[nodiscard]] std::uint32_t segmentCountOf(Bytes bytes) const;

  const xgft::Topology* topo_;
  SimConfig cfg_;
  TimeNs serFullNs_ = 0;  ///< serializationNs(segmentBytes), precomputed.
  TrafficSink* sink_ = nullptr;
  Probe* probe_ = nullptr;     ///< Cached enabled flag: null == disabled.
  bool samplePending_ = false; ///< A kSample event sits in the queue.

  std::vector<std::uint64_t> portBase_;  ///< Per global node id.
  std::vector<std::uint32_t> peer_;      ///< Peer gport per gport.
  std::vector<PortOwner> portOwner_;     ///< Owning node per gport.
  std::vector<std::uint32_t> adaptiveRR_;  ///< Per-node tie-break rotor.
  std::uint32_t hostPortEnd_ = 0;        ///< Host ports occupy [0, end).

  std::vector<PortState> ports_;
  std::vector<std::uint32_t> waitLink_;  ///< Per-port waiting-list link.
  std::vector<Message> messages_;
  std::vector<Segment> segments_;        ///< Slot pool.
  std::uint32_t freeSegments_ = kNil;    ///< Free-list head (next links).

  RouteStore routes_;
  std::vector<std::uint32_t> scratchPath_;  ///< Reused path-building buffer.
  std::vector<RouteId> scratchSet_;         ///< Reused set-building buffer.

  EventQueue queue_;
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::uint32_t> freeCallbackSlots_;
  TimeNs now_ = 0;
  NetworkStats stats_;

  /// A currently-down link and when its latest outage started (or the last
  /// run() boundary that already accrued it).
  struct DownLink {
    std::uint32_t link = 0;
    TimeNs since = 0;
  };
  std::vector<DownLink> downLinks_;
  FaultPolicy faultPolicy_ = FaultPolicy::kWait;
  bool faultsSeen_ = false;  ///< Any kLinkDown ever processed.
  /// Any kLinkDown/kLinkUp ever *scheduled* — sticky, set at schedule time.
  /// The parallel engine keys off this: pending fault transitions shrink the
  /// guaranteed lookahead to zero, so it falls back (or aborts mid-run) to
  /// the serial core the moment one appears.
  bool faultEventsScheduled_ = false;
};

/// Wire utilization over @p spanNs from Network::wireBusyNs: the busy
/// fraction of the busiest wire and the mean over wires that carried
/// traffic.  The single implementation behind the engine's util_max /
/// util_mean CSV columns and the open-loop runner.
struct WireUtilization {
  double max = 0.0;
  double mean = 0.0;
};
[[nodiscard]] WireUtilization wireUtilization(const Network& net,
                                              TimeNs spanNs);

}  // namespace sim
