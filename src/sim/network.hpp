// network.hpp — Event-driven XGFT network simulator (the Venus substitute).
//
// Model (see DESIGN.md for the substitution rationale):
//
//  * Source routing.  A message carries its precomputed output-port path
//    (host NIC port, then one output port per switch).
//  * Adapters.  Each host NIC keeps a round-robin list of active messages
//    per port; whenever the host link is free (and the first switch has
//    buffer credit) the NIC emits the *next segment of the next message* —
//    the per-segment interleaving of Sec. VI-B.
//  * Switches.  Input- and output-buffered: segments arriving on an input
//    port move (after the switch latency) into the FIFO output buffer of
//    their next hop when it has space; otherwise they wait in the input
//    buffer, and inputs blocked on the same output are served round-robin
//    as slots free up.  Input buffer occupancy is governed by credits, so
//    an upstream transmitter never overruns a full input buffer.
//  * Wires.  One segment at a time, serialization time exact in flit
//    arithmetic, plus a propagation latency.
//
// Up/down routes on a tree give an acyclic channel-dependency graph, so the
// credit protocol cannot deadlock; run() checks full drainage and throws on
// any stranded segment (a routing-table bug would surface here, not hang).
//
// Determinism: ties in the event queue break by insertion order, so equal
// configurations and inputs replay identically on every platform.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace sim {

using MsgId = std::uint32_t;
using Bytes = std::uint64_t;

/// How a multipath message distributes its segments over its routes.
/// Per-segment spraying is the packet-granular randomized routing of
/// Greenberg & Leiserson [16], provided as an extension (DESIGN.md):
/// segments of one message may arrive out of order, which the paper's
/// segment-reassembling adapters tolerate.
enum class SprayPolicy : std::uint8_t {
  kRoundRobin,  ///< Segment i takes route i mod |routes|.
  kRandom,      ///< Segment i takes a seeded pseudo-random route.
};

/// Receives end-to-end message completions (the Dimemas coupling point).
class TrafficSink {
 public:
  virtual ~TrafficSink() = default;
  virtual void onMessageDelivered(MsgId msg, TimeNs time) = 0;
};

/// Aggregate counters exposed after (or during) a run.
struct NetworkStats {
  std::uint64_t segmentsInjected = 0;
  std::uint64_t segmentsDelivered = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t eventsProcessed = 0;
  TimeNs lastDeliveryNs = 0;
  std::uint32_t maxOutputQueueDepth = 0;
  std::uint32_t maxInputQueueDepth = 0;
};

class Network {
 public:
  /// Builds the port-level machine for @p topo.  The topology reference must
  /// outlive the Network.
  Network(const xgft::Topology& topo, SimConfig cfg);

  /// Registers the completion listener (optional).
  void setSink(TrafficSink* sink) { sink_ = sink; }

  /// Registers a message and its minimal up/down route; the message starts
  /// injecting only after release().  s == d messages are legal and complete
  /// instantly upon release (local delivery, no network traversal).
  MsgId addMessage(xgft::NodeIndex src, xgft::NodeIndex dst, Bytes bytes,
                   const xgft::Route& route);

  /// Fast-path variant of addMessage consuming a compiled forwarding-table
  /// entry (core::CompiledRoutes::upPorts): the ascending port choices are
  /// expanded straight into the global-port path with no route validation
  /// and no intermediate Route object.  Precondition: @p upPorts came from
  /// a table compiled against this network's topology (validated once at
  /// compile time).  Produces the identical event sequence as addMessage
  /// with the equivalent Route.
  MsgId addMessageCompiled(xgft::NodeIndex src, xgft::NodeIndex dst,
                           Bytes bytes,
                           std::span<const std::uint32_t> upPorts);

  /// Registers a multipath message: each segment is sprayed over one of the
  /// given routes per @p policy.  All routes must share the same first-hop
  /// (host) port.  At least one route is required.
  MsgId addMessageMultipath(xgft::NodeIndex src, xgft::NodeIndex dst,
                            Bytes bytes,
                            const std::vector<xgft::Route>& routes,
                            SprayPolicy policy,
                            std::uint64_t spraySeed = 1);

  /// Registers a minimally-adaptive message (the adaptive routing the
  /// paper's Sec. I discusses via Gómez et al. [6]): no precomputed route —
  /// at every switch on the ascent the segment picks the least-occupied
  /// up-port (round-robin tie-breaking per switch) until it reaches an
  /// ancestor of the destination, then descends deterministically.  Routes
  /// stay minimal, so deadlock freedom is preserved.
  MsgId addMessageAdaptive(xgft::NodeIndex src, xgft::NodeIndex dst,
                           Bytes bytes);

  /// Makes the message visible to the source adapter at time @p t (must not
  /// precede the current simulation time).
  void release(MsgId msg, TimeNs t);

  /// Schedules an arbitrary callback (trace compute/barrier hooks).
  void scheduleCallback(TimeNs t, std::function<void()> fn);

  /// Processes events until the queue drains (or @p until, if given).
  /// Throws std::runtime_error if released traffic is left stranded once
  /// the queue is empty.
  void run(TimeNs until = std::numeric_limits<TimeNs>::max());

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] const xgft::Topology& topology() const { return *topo_; }

  /// Completion time of a delivered message; throws if not yet delivered.
  [[nodiscard]] TimeNs deliveryTime(MsgId msg) const;

  /// Busy (serializing) nanoseconds of the wire leaving global port @p gport.
  [[nodiscard]] TimeNs wireBusyNs(std::uint32_t gport) const;

  /// Global output-port id crossed by hop (level, node, outPort) — exposed
  /// for utilization reports.
  [[nodiscard]] std::uint32_t globalPort(std::uint32_t level,
                                         xgft::NodeIndex node,
                                         std::uint32_t port) const;

  [[nodiscard]] std::uint32_t numGlobalPorts() const {
    return static_cast<std::uint32_t>(peer_.size());
  }

 private:
  enum class Kind : std::uint8_t {
    kRelease,
    kWireArrive,
    kWireFree,
    kTransfer,
    kCallback,
  };

  struct Event {
    TimeNs t = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kRelease;
    std::uint32_t a = 0;    ///< Port / message / callback index.
    std::uint32_t seg = 0;  ///< Segment pool index where applicable.

    bool operator>(const Event& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  struct Segment {
    MsgId msg = 0;
    std::uint32_t hop = 0;      ///< Hops completed so far.
    std::uint32_t pathIdx = 0;  ///< Which of the message's routes.
    std::uint32_t payloadBytes = 0;
    std::uint32_t resolvedOut = 0;  ///< Output gport chosen at this switch.
  };

  struct Message {
    xgft::NodeIndex src = 0;
    xgft::NodeIndex dst = 0;
    Bytes bytes = 0;
    std::uint32_t numSegments = 0;
    std::uint32_t injectedSegments = 0;
    std::uint32_t deliveredSegments = 0;
    bool released = false;
    bool delivered = false;
    bool adaptive = false;
    SprayPolicy policy = SprayPolicy::kRoundRobin;
    std::uint64_t spraySeed = 1;
    TimeNs deliveredAt = 0;
    /// Global output ports per hop, one sequence per candidate route
    /// (empty for adaptive messages).
    std::vector<std::vector<std::uint32_t>> paths;
  };

  /// Reverse port lookup: which node owns a global port.
  struct PortOwner {
    std::uint32_t level = 0;
    xgft::NodeIndex node = 0;
    std::uint32_t localPort = 0;
  };

  struct PortState {
    // Output side.
    std::deque<std::uint32_t> outQ;  ///< Segment pool indices.
    std::uint32_t reserved = 0;      ///< Transfers in flight into outQ.
    bool wireBusy = false;
    std::uint32_t credits = 0;  ///< Free slots at the peer's input buffer.
    std::deque<std::uint32_t> waitingInputs;  ///< Blocked inputs (RR order).
    // Input side.
    std::deque<std::uint32_t> inQ;
    bool transferring = false;
    bool queuedWaiting = false;  ///< Already parked in some waitingInputs.
    // Host adapter (host ports only): active-message round robin.
    std::deque<MsgId> active;
    // Accounting.
    TimeNs busyNs = 0;
  };

  void schedule(TimeNs t, Kind kind, std::uint32_t a, std::uint32_t seg = 0);
  void handle(const Event& ev);

  void handleRelease(MsgId msg);
  void handleWireArrive(std::uint32_t gInPort, std::uint32_t seg);
  void handleWireFree(std::uint32_t gOutPort);
  void handleTransfer(std::uint32_t gInPort, std::uint32_t seg);

  void tryInjectHost(std::uint32_t gOutPort);
  void tryTransmitSwitch(std::uint32_t gOutPort);
  void startTransmission(std::uint32_t gOutPort, std::uint32_t seg);
  void tryAdvanceInput(std::uint32_t gInPort);
  void serveWaitingInputs(std::uint32_t gOutPort);
  void returnCredit(std::uint32_t gOutPort);
  void deliverSegment(std::uint32_t gInPort, std::uint32_t seg);
  void outputDispatch(std::uint32_t gOutPort);

  [[nodiscard]] std::uint32_t allocSegment(MsgId msg, std::uint32_t pathIdx,
                                           std::uint32_t bytes);
  [[nodiscard]] const std::vector<std::uint32_t>& pathOf(
      const Segment& seg) const {
    return messages_[seg.msg].paths[seg.pathIdx];
  }
  /// Picks the output gport for an adaptive segment sitting at the node
  /// owning @p gInPort.
  [[nodiscard]] std::uint32_t resolveAdaptive(std::uint32_t gInPort,
                                              const Segment& seg);
  void freeSegment(std::uint32_t seg);
  [[nodiscard]] bool isHostPort(std::uint32_t gport) const {
    return gport < hostPortEnd_;
  }
  [[nodiscard]] std::uint32_t segmentPayload(const Message& m,
                                             std::uint32_t index) const;

  const xgft::Topology* topo_;
  SimConfig cfg_;
  TrafficSink* sink_ = nullptr;

  std::vector<std::uint64_t> portBase_;  ///< Per global node id.
  std::vector<std::uint32_t> peer_;      ///< Peer gport per gport.
  std::vector<PortOwner> portOwner_;     ///< Owning node per gport.
  std::vector<std::uint32_t> adaptiveRR_;  ///< Per-node tie-break rotor.
  std::uint32_t hostPortEnd_ = 0;        ///< Host ports occupy [0, end).

  std::vector<PortState> ports_;
  std::vector<Message> messages_;
  std::vector<Segment> segments_;
  std::vector<std::uint32_t> freeSegments_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::function<void()>> callbacks_;
  std::uint64_t nextSeq_ = 0;
  TimeNs now_ = 0;
  NetworkStats stats_;
};

}  // namespace sim
