#include "sim/injection.hpp"

#include <stdexcept>
#include <string>

#include "sim/shard.hpp"

namespace sim {

InjectionProcess::InjectionProcess(Network& net,
                                   patterns::TrafficSource& source,
                                   InjectionOptions opt)
    : net_(&net), src_(&source), opt_(std::move(opt)) {
  if (!opt_.adaptive && !opt_.routeSet) {
    throw std::invalid_argument(
        "InjectionProcess: need a route-set resolver unless adaptive");
  }
  net_->setSink(this);
}

void InjectionProcess::inject(const patterns::SourceMessage& m) {
  const xgft::NodeIndex src = opt_.hostOf ? opt_.hostOf(m.src) : m.src;
  const xgft::NodeIndex dst = opt_.hostOf ? opt_.hostOf(m.dst) : m.dst;
  MsgId id = 0;
  if (opt_.adaptive) {
    id = net_->addMessageAdaptive(src, dst, m.bytes);
  } else {
    const RouteSetId set = opt_.routeSet(src, dst);
    if (set == RouteStore::kUnroutable) {
      // The degraded forwarding table has no path for this pair: refuse the
      // message before it exists.  No MsgId is allocated, so the dense
      // token/latency vectors stay aligned, and closed-loop callers (which
      // would deadlock awaiting the delivery) must opt in via onDrop.
      if (!opt_.onDrop) {
        throw std::runtime_error(
            "InjectionProcess: pair " + std::to_string(src) + " -> " +
            std::to_string(dst) +
            " is unroutable and no onDrop handler is installed");
      }
      net_->noteMessageDropped();
      opt_.onDrop(m.token, m.bytes, src, dst);
      return;
    }
    id = net_->addMessageSet(src, dst, m.bytes, set, opt_.policy,
                             opt_.spraySeed);
  }
  if (id != tokenOf_.size()) {
    // Delivery lookup is a dense vector; a foreign addMessage* call in
    // between would silently misattribute completions.
    throw std::logic_error("InjectionProcess: non-dense message ids");
  }
  tokenOf_.push_back(m.token);
  injectNs_.push_back(net_->now());
  bytesOf_.push_back(m.bytes);
  net_->release(id, net_->now());
}

void InjectionProcess::pump() {
  if (exhausted_ || pendingFuture_) return;
  patterns::SourceMessage m;
  for (;;) {
    switch (src_->pull(net_->now(), m)) {
      case patterns::Pull::kMessage:
        if (m.time > net_->now()) {
          // Ask again only when its injection time is reached.
          future_ = m;
          pendingFuture_ = true;
          net_->scheduleCallback(m.time, [this] {
            pendingFuture_ = false;
            inject(future_);
            pump();
          });
          return;
        }
        inject(m);
        break;
      case patterns::Pull::kWake: {
        const std::uint64_t cookie = m.token;
        net_->scheduleCallback(m.time, [this, cookie] {
          src_->onWake(cookie, net_->now());
          pump();
        });
        break;
      }
      case patterns::Pull::kBlocked:
        return;
      case patterns::Pull::kExhausted:
        exhausted_ = true;
        return;
    }
  }
}

void InjectionProcess::onMessageDelivered(MsgId msg, TimeNs time) {
  const std::uint64_t token = tokenOf_[msg];
  if (onDelivery) onDelivery(token, bytesOf_[msg], injectNs_[msg], time);
  src_->onDelivered(token, time);
  pump();
}

void InjectionProcess::run(TimeNs until) {
  pump();
  if (simThreads_ > 1) {
    runParallel(*net_, until, simThreads_);
  } else {
    net_->run(until);
  }
}

}  // namespace sim
