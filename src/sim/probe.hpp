// probe.hpp — Observation hook points of the event core.
//
// A Probe attached via Network::setProbe observes the simulation without
// perturbing it: hooks fire at the event core's state transitions (segment
// enqueue/dequeue, wire busy/idle, message release/delivery, blocked-wake)
// and an optional periodic sample rides the calendar queue as a dedicated
// event kind that is excluded from NetworkStats::eventsProcessed and never
// keeps a drained queue alive — a run's measured results (makespan, event
// and queue counters, per-wire busy time) are byte-identical with and
// without a probe attached (pinned by tests/obs/recorder_test.cpp).
//
// The disabled hot path is a single cached-pointer null check per hook
// site; the interface lives here (not in obs/) so sim does not depend on
// any concrete recorder.  obs::Recorder is the standard implementation.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "xgft/topology.hpp"

namespace sim {

class Network;

/// Observation callbacks.  All hooks default to no-ops so implementations
/// override only what they consume.  Hooks run synchronously inside the
/// event core: they must not call back into the Network's mutating API
/// (read-only accessors are fine from onSample).
class Probe {
 public:
  virtual ~Probe() = default;

  /// Fired once by Network::setProbe — size per-port tables here.
  virtual void onAttach(const Network& /*net*/) {}

  /// A registered message became visible to its source adapter (both
  /// network-traversing and src == dst local deliveries).
  virtual void onMessageReleased(std::uint32_t /*msg*/,
                                 xgft::NodeIndex /*src*/,
                                 xgft::NodeIndex /*dst*/,
                                 std::uint64_t /*bytes*/, TimeNs /*t*/) {}

  /// All segments of the message arrived at its destination host.
  virtual void onMessageDelivered(std::uint32_t /*msg*/, TimeNs /*t*/) {}

  /// A segment joined a switch buffer FIFO; @p depth is the queue's
  /// occupancy including the new segment.  @p input distinguishes the
  /// input- from the output-buffer side of the port.
  virtual void onSegmentEnqueued(std::uint32_t /*gport*/, bool /*input*/,
                                 std::uint32_t /*depth*/, TimeNs /*t*/) {}

  /// A segment left a switch buffer FIFO; @p depth is the remaining
  /// occupancy.
  virtual void onSegmentDequeued(std::uint32_t /*gport*/, bool /*input*/,
                                 std::uint32_t /*depth*/, TimeNs /*t*/) {}

  /// The wire leaving @p gport started serializing a segment of message
  /// @p msg; it stays busy for @p serNs.
  virtual void onWireBusy(std::uint32_t /*gport*/, std::uint32_t /*msg*/,
                          TimeNs /*t*/, TimeNs /*serNs*/) {}

  /// The wire leaving @p gport finished serializing.
  virtual void onWireIdle(std::uint32_t /*gport*/, TimeNs /*t*/) {}

  /// Input @p gInPort parked in @p gOutPort's waiting list (head-of-line
  /// segment found the output buffer full) — the blocking attribution of
  /// queue buildup.
  virtual void onInputBlocked(std::uint32_t /*gInPort*/,
                              std::uint32_t /*gOutPort*/, TimeNs /*t*/) {}

  /// A previously parked input was woken round-robin by a freed output
  /// slot.
  virtual void onInputWoken(std::uint32_t /*gInPort*/, TimeNs /*t*/) {}

  /// The link @p link went down (scheduleLinkDown fired).  Fires once per
  /// transition — a kLinkDown for an already-down link is a no-op.
  virtual void onLinkDown(xgft::LinkId /*link*/, TimeNs /*t*/) {}

  /// The link @p link came back up (scheduleLinkUp fired).
  virtual void onLinkUp(xgft::LinkId /*link*/, TimeNs /*t*/) {}

  /// A segment queued at/behind the dead output @p gport was dropped under
  /// FaultPolicy::kStrand (or kReroute with no live alternative); its
  /// message is marked dropped and will never complete.
  virtual void onSegmentStranded(std::uint32_t /*gport*/,
                                 std::uint32_t /*msg*/, TimeNs /*t*/) {}

  /// A segment escaped a dead output under FaultPolicy::kReroute: it moved
  /// from @p fromGport to the live up-port @p toGport and continues
  /// adaptively (minimally) from there.
  virtual void onSegmentRerouted(std::uint32_t /*fromGport*/,
                                 std::uint32_t /*toGport*/,
                                 std::uint32_t /*msg*/, TimeNs /*t*/) {}

  /// Sampling cadence in simulated ns; 0 disables periodic sampling.
  /// Queried after every sample, so an implementation may stretch its
  /// cadence mid-run (the downsampling recorder does).
  [[nodiscard]] virtual TimeNs samplePeriodNs() const { return 0; }

  /// Periodic snapshot point, driven by the calendar queue.  @p net is
  /// safe for read-only queries (queue depths, wireBusyNs, stats).
  virtual void onSample(const Network& /*net*/, TimeNs /*t*/) {}
};

}  // namespace sim
