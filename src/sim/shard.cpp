#include "sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/network.hpp"
#include "xgft/rng.hpp"
#include "xgft/topology.hpp"

namespace sim {

namespace {

/// Below this many events in a batch, the dispatch round-trip costs more
/// than executing inline on the coordinator.  The result is identical
/// either way (the serial core *is* the reference semantics), so this is a
/// pure tuning constant.
constexpr std::size_t kMinParallelBatch = 16;

/// Port count under which shard bookkeeping cannot pay for itself; the
/// plan falls back rather than slow a small simulation down.
constexpr std::uint32_t kMinPortsForSharding = 256;

}  // namespace

/// The parallel engine (friend of Network).  One instance drives one
/// run-to-`until`: it owns the shard map, the K-1 worker threads and the
/// per-shard buffers; the calling thread doubles as the shard-0 worker and
/// the window coordinator.
class ParallelRunner {
 public:
  static ParallelPlan plan(const Network& net, std::uint32_t threads);

  ParallelRunner(Network& net, const ParallelPlan& plan,
                 ParallelRunStats* runStats);
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  void run(TimeNs until);

 private:
  using Kind = Network::Kind;
  static constexpr std::uint32_t kNil = Network::kNil;
  static constexpr std::uint32_t kNoShard = 0xffffffffu;

  /// One buffered event-queue push: replayed by the coordinator in exact
  /// serial order (position, then handler call order within the position).
  struct PushRec {
    TimeNs t = 0;
    std::uint32_t pos = 0;  ///< Batch-relative position that produced it.
    std::uint32_t a = 0;
    std::uint32_t seg = 0;
    std::uint8_t kind = 0;
  };

  /// A deferred TrafficSink::onMessageDelivered (at most one per position:
  /// an event delivers at most one message).
  struct SinkCall {
    MsgId msg = 0;
    TimeNs time = 0;
    bool pending = false;
  };

  /// Shard assignment of one batch position.  creditOwner is the shard of
  /// the upstream port receiving the zero-latency credit return (kTransfer
  /// and host-arrival kWireArrive only); when it differs from owner the
  /// position is split across the two shards.
  struct PosInfo {
    std::uint32_t owner = 0;
    std::uint32_t creditOwner = kNoShard;
    std::uint32_t creditPort = 0;  ///< Precomputed ports_[a].peer.
  };

  struct Shard {
    /// Epoch gate: the coordinator bumps `go` (release) after publishing a
    /// batch; the worker waits on it and publishes results through done_.
    alignas(64) std::atomic<std::uint64_t> go{0};
    std::vector<PushRec> pushes;
    /// Private segment-slot cache: pre-filled at the barrier so replicated
    /// handlers never touch the global pool; frees recycle into it.
    std::vector<std::uint32_t> segCache;
    std::size_t replayCursor = 0;
    NetworkStats stats;  ///< Per-batch delta; merged and zeroed at barrier.
  };

  /// Execution context threaded through the replicated handlers (one per
  /// participating shard per position — never shared across threads).
  struct Ctx {
    Shard* shard;
    TimeNs now;
    std::uint32_t pos;  ///< Batch-relative position.
  };

  [[nodiscard]] static bool isParallelKind(std::uint8_t kind) {
    switch (static_cast<Kind>(kind)) {
      case Kind::kRelease:
      case Kind::kWireArrive:
      case Kind::kWireFree:
      case Kind::kTransfer:
        return true;
      default:
        return false;
    }
  }

  void buildShardMap();
  void workerLoop(std::uint32_t s);

  /// Executes the chunk (all events of one closed window, already popped,
  /// in (t, tag) order).  Returns false when a mid-run fault schedule
  /// aborted to the serial core (which then ran to @p until).
  bool processChunk(TimeNs windowEnd, TimeNs until);
  void runBatch(std::size_t begin, std::size_t end);
  void classify(std::size_t begin, std::size_t end);
  void refillCaches();
  void executeShard(std::uint32_t s);
  void mergeStats();
  void replayPushes(std::size_t begin, std::size_t end);
  void drainPushes(Shard& sh, std::uint32_t rel);
  void flushSinks(std::size_t begin, std::size_t end);
  void abortToSerial(std::size_t from, TimeNs until);
  /// Returns every cached segment slot to the global free list (run end /
  /// abort) in shard order, keeping the pool state deterministic per
  /// (input, shard count).
  void spliceCaches();
  [[nodiscard]] std::uint32_t rawSegmentSlot();

  // ---- replicated healthy-run handlers --------------------------------
  //
  // Faithful transcriptions of the Network handlers with four systematic
  // substitutions: schedule() -> buffered pPush, stats_ -> per-shard
  // delta, sink_ -> deferred SinkCall slot, allocSegment/freeSegment ->
  // the shard's private cache.  Probe hooks and fault branches are
  // omitted outright — the plan guarantees probe_ == nullptr and that no
  // link ever failed (faultsSeen_ false, no down ports).

  void pPush(Ctx& c, TimeNs t, Kind kind, std::uint32_t a,
             std::uint32_t seg = 0) {
    c.shard->pushes.push_back(
        PushRec{t, c.pos, a, seg, static_cast<std::uint8_t>(kind)});
  }
  [[nodiscard]] std::uint32_t pAllocSegment(Ctx& c, MsgId msg, RouteId route,
                                            std::uint32_t bytes);
  void pHandleRelease(Ctx& c, MsgId msgId);
  void pHandleWireArrive(Ctx& c, std::uint32_t gInPort, std::uint32_t seg,
                         bool creditLocal);
  void pHandleWireFree(Ctx& c, std::uint32_t gOutPort);
  void pHandleTransfer(Ctx& c, std::uint32_t gInPort, std::uint32_t seg,
                       bool creditLocal);
  void pDeliverSegment(Ctx& c, std::uint32_t gInPort, std::uint32_t seg,
                       bool creditLocal);
  void pTryInjectHost(Ctx& c, std::uint32_t gOutPort);
  void pStartTransmission(Ctx& c, std::uint32_t gOutPort, std::uint32_t seg);
  void pTryTransmitSwitch(Ctx& c, std::uint32_t gOutPort);
  void pTryAdvanceInput(Ctx& c, std::uint32_t gInPort);
  void pWakeInput(Ctx& c, std::uint32_t gInPort);
  void pAdvanceInputTo(Ctx& c, std::uint32_t gInPort, std::uint32_t seg,
                       std::uint32_t out);
  void pServeWaitingInputs(Ctx& c, std::uint32_t gOutPort);
  void pReturnCredit(Ctx& c, std::uint32_t gOutPort);
  void pOutputDispatch(Ctx& c, std::uint32_t gOutPort);

  Network* net_;
  std::uint32_t numShards_;
  TimeNs window_;
  std::vector<std::uint32_t> nodeShard_;  ///< Per global node id.
  std::vector<std::uint32_t> portShard_;  ///< Per global port.
  std::vector<Shard> shards_;

  // Batch state, written by the coordinator between epochs and published
  // to the workers by the release-store on Shard::go.
  std::vector<EventRecord> chunk_;   ///< Current window's events, in order.
  std::vector<EventRecord> repop_;   ///< Scratch: post-callback re-pops.
  std::vector<PosInfo> posInfo_;     ///< Batch-relative.
  std::vector<std::size_t> need_;    ///< Per-shard segment-slot demand.
  std::vector<SinkCall> sinkCalls_;  ///< Batch-relative, one per position.
  std::size_t batchBegin_ = 0;
  std::size_t batchEnd_ = 0;

  std::uint64_t epoch_ = 0;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
  ParallelRunStats* runStats_;  ///< Optional diagnostics; may be null.
};

// ---- planning -----------------------------------------------------------

ParallelPlan ParallelRunner::plan(const Network& net, std::uint32_t threads) {
  ParallelPlan p;
  const auto fallback = [&p](const char* why) {
    p.parallel = false;
    p.shards = 1;
    p.windowNs = 0;
    p.fallbackReason = why;
    return p;
  };
  if (threads <= 1) return fallback("one thread requested");
  if (net.probe_ != nullptr) {
    return fallback("probe attached (hooks must fire in event order)");
  }
  if (net.sink_ != nullptr && !net.sink_->deliveriesDeferrable()) {
    return fallback("sink drives the simulation (closed loop)");
  }
  if (net.faultEventsScheduled_ || net.faultsSeen_ ||
      !net.downLinks_.empty()) {
    return fallback("fault transitions pending or processed (no lookahead)");
  }
  // Every parallel-class handler push lands at least W in the future:
  // kTransfer at +switchLatencyNs, wire events at +serialization (monotone
  // in payload, so the header-only segment bounds it) or later.
  const TimeNs w = std::min<TimeNs>(net.cfg_.switchLatencyNs,
                                    net.cfg_.serializationNs(0));
  if (w < 1) return fallback("zero minimum event latency (no window)");
  if (net.numGlobalPorts() < kMinPortsForSharding) {
    return fallback("topology too small to cut profitably");
  }
  // The cut is by leaf-switch group; more shards than leaves cannot help.
  const std::uint64_t leaves = net.topology().nodesAtLevel(1);
  const std::uint32_t shards =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(threads, leaves));
  if (shards <= 1) return fallback("single leaf switch (nothing to cut)");
  p.parallel = true;
  p.shards = shards;
  p.windowNs = w;
  p.fallbackReason = nullptr;
  return p;
}

// ---- construction / teardown --------------------------------------------

ParallelRunner::ParallelRunner(Network& net, const ParallelPlan& plan,
                               ParallelRunStats* runStats)
    : net_(&net), numShards_(plan.shards), window_(plan.windowNs),
      shards_(plan.shards), need_(plan.shards, 0), runStats_(runStats) {
  assert(plan.parallel && numShards_ >= 2 && window_ >= 1);
  buildShardMap();
  workers_.reserve(numShards_ - 1);
  for (std::uint32_t s = 1; s < numShards_; ++s) {
    workers_.emplace_back(&ParallelRunner::workerLoop, this, s);
  }
}

ParallelRunner::~ParallelRunner() {
  stop_.store(true, std::memory_order_release);
  ++epoch_;
  for (std::uint32_t s = 1; s < numShards_; ++s) {
    shards_[s].go.store(epoch_, std::memory_order_release);
    shards_[s].go.notify_one();
  }
  for (std::thread& t : workers_) t.join();
}

void ParallelRunner::buildShardMap() {
  const xgft::Topology& topo = net_->topology();
  const std::uint32_t h = topo.height();
  nodeShard_.resize(topo.numNodes());
  // Leaves split into K contiguous groups; upper switches likewise by
  // index (their down-ports talk to every group anyway, so any balanced
  // assignment works — contiguity keeps the map trivially reproducible).
  for (std::uint32_t l = 1; l <= h; ++l) {
    const std::uint64_t count = topo.nodesAtLevel(l);
    for (xgft::NodeIndex idx = 0; idx < count; ++idx) {
      nodeShard_[topo.globalId(l, idx)] = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(idx) * numShards_ / count);
    }
  }
  // Hosts co-locate with their first parent leaf, so for w1 == 1 trees the
  // whole NIC<->leaf edge is shard-local; extra NIC ports of w1 > 1 hosts
  // are covered by the split-credit machinery like any cross-shard edge.
  for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(0); ++idx) {
    nodeShard_[topo.globalId(0, idx)] =
        nodeShard_[topo.globalId(1, topo.parentIndex(0, idx, 0))];
  }
  portShard_.resize(net_->numGlobalPorts());
  for (std::uint32_t g = 0; g < portShard_.size(); ++g) {
    const Network::PortOwner& o = net_->portOwnerOf(g);
    portShard_[g] = nodeShard_[topo.globalId(o.level, o.node)];
  }
}

void ParallelRunner::workerLoop(std::uint32_t s) {
  Shard& sh = shards_[s];
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e;
    while ((e = sh.go.load(std::memory_order_acquire)) == seen) {
      sh.go.wait(seen, std::memory_order_acquire);
    }
    seen = e;
    if (stop_.load(std::memory_order_acquire)) return;
    executeShard(s);
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_one();
  }
}

// ---- the window loop ----------------------------------------------------

void ParallelRunner::run(TimeNs until) {
  Network& net = *net_;
  EventRecord ev;
  for (;;) {
    if (!net.queue_.popUntil(until, ev)) break;
    const TimeNs first = ev.t;
    constexpr TimeNs kMaxT = std::numeric_limits<TimeNs>::max();
    const TimeNs horizon =
        first > kMaxT - (window_ - 1) ? kMaxT : first + (window_ - 1);
    const TimeNs windowEnd = std::min(until, horizon);
    // Pop the whole closed window up front: executing these events can
    // only schedule beyond windowEnd (the lookahead argument), so the set
    // is complete — callbacks are the one exception, handled inside.
    chunk_.clear();
    chunk_.push_back(ev);
    while (net.queue_.popUntil(windowEnd, ev)) chunk_.push_back(ev);
    if (runStats_ != nullptr) ++runStats_->windows;
    if (!processChunk(windowEnd, until)) return;  // Aborted; serial ran.
  }
  spliceCaches();
  net.finishRun();
}

bool ParallelRunner::processChunk(TimeNs windowEnd, TimeNs until) {
  Network& net = *net_;
  std::size_t i = 0;
  while (i < chunk_.size()) {
    if (!isParallelKind(chunk_[i].kind())) {
      // Serial-class event (callback; in principle sample/fault edges):
      // shards are parked and all prior effects are merged, so the plain
      // handler runs on canonical state, exactly as in Network::run.
      const EventRecord se = chunk_[i];
      ++i;
      net.now_ = se.t;
      net.handle(se);
      ++net.stats_.eventsProcessed;
      if (runStats_ != nullptr) ++runStats_->serialEvents;
      if (net.faultEventsScheduled_) {
        // The callback scheduled a fault transition: the lookahead bound
        // no longer holds past it.  Hand everything back to the serial
        // core, which is exact under faults.
        if (runStats_ != nullptr) runStats_->aborted = true;
        abortToSerial(i, until);
        return false;
      }
      // The callback may have scheduled events inside this window
      // (releases at now, short-fuse callbacks): pop and merge them into
      // the unexecuted tail.  Their tags are fresh (larger), so a stable
      // (t, tag) merge keeps the total order exact.
      repop_.clear();
      EventRecord ev;
      while (net.queue_.popUntil(windowEnd, ev)) repop_.push_back(ev);
      if (!repop_.empty()) {
        // Take the midpoint as an index *before* inserting: the insert may
        // reallocate, invalidating any iterator taken earlier.
        const auto mid = static_cast<std::ptrdiff_t>(chunk_.size());
        chunk_.insert(chunk_.end(), repop_.begin(), repop_.end());
        std::inplace_merge(
            chunk_.begin() + static_cast<std::ptrdiff_t>(i),
            chunk_.begin() + mid, chunk_.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.t != b.t ? a.t < b.t : a.tag < b.tag;
            });
      }
      continue;
    }
    std::size_t j = i + 1;
    while (j < chunk_.size() && isParallelKind(chunk_[j].kind())) ++j;
    runBatch(i, j);
    i = j;
  }
  return true;
}

void ParallelRunner::abortToSerial(std::size_t from, TimeNs until) {
  Network& net = *net_;
  // Re-push the unexecuted remainder in order.  The tags come out fresh
  // but every other queued event lies beyond the window, and pushing in
  // chunk order keeps the relative order — the total order is unchanged.
  for (std::size_t p = from; p < chunk_.size(); ++p) {
    const EventRecord& e = chunk_[p];
    net.queue_.push(e.t, e.kind(), e.a, e.seg);
  }
  spliceCaches();
  net.run(until);
}

void ParallelRunner::spliceCaches() {
  for (Shard& sh : shards_) {
    for (const std::uint32_t seg : sh.segCache) net_->freeSegment(seg);
    sh.segCache.clear();
  }
}

// ---- one batch ----------------------------------------------------------

void ParallelRunner::runBatch(std::size_t begin, std::size_t end) {
  Network& net = *net_;
  if (end - begin < kMinParallelBatch) {
    // Tiny batch: run it inline on the coordinator through the serial
    // handlers — byte-identical by construction, no dispatch round-trip.
    for (std::size_t p = begin; p < end; ++p) {
      net.now_ = chunk_[p].t;
      net.handle(chunk_[p]);
      ++net.stats_.eventsProcessed;
    }
    if (runStats_ != nullptr) runStats_->inlineEvents += end - begin;
    return;
  }
  if (runStats_ != nullptr) {
    ++runStats_->parallelBatches;
    runStats_->parallelEvents += end - begin;
  }
  classify(begin, end);
  refillCaches();
  batchBegin_ = begin;
  batchEnd_ = end;
  for (Shard& sh : shards_) {
    sh.pushes.clear();
    sh.replayCursor = 0;
    sh.stats = NetworkStats{};
  }
  sinkCalls_.assign(end - begin, SinkCall{});
  done_.store(0, std::memory_order_relaxed);
  ++epoch_;
  for (std::uint32_t s = 1; s < numShards_; ++s) {
    shards_[s].go.store(epoch_, std::memory_order_release);
    shards_[s].go.notify_one();
  }
  executeShard(0);
  const std::uint64_t target = numShards_ - 1;
  std::uint64_t v;
  while ((v = done_.load(std::memory_order_acquire)) != target) {
    done_.wait(v, std::memory_order_acquire);
  }
  // Barrier reached: fold the shard effects back in canonical order.
  mergeStats();
  replayPushes(begin, end);
  net.stats_.eventsProcessed += end - begin;
  flushSinks(begin, end);
  net.now_ = chunk_[end - 1].t;
}

void ParallelRunner::classify(std::size_t begin, std::size_t end) {
  Network& net = *net_;
  posInfo_.resize(end - begin);
  std::fill(need_.begin(), need_.end(), std::size_t{0});
  for (std::size_t p = begin; p < end; ++p) {
    const EventRecord& e = chunk_[p];
    PosInfo info;
    switch (static_cast<Kind>(e.kind())) {
      case Kind::kRelease: {
        const Network::Message& m = net.messages_[e.a];
        info.owner = m.src == m.dst
                         ? nodeShard_[net.topology().globalId(0, m.src)]
                         : portShard_[m.hostPort];
        break;
      }
      case Kind::kWireFree:
        info.owner = portShard_[e.a];
        break;
      case Kind::kWireArrive:
        info.owner = portShard_[e.a];
        if (net.isHostPort(e.a)) {
          // Delivery returns a credit to the upstream switch port.
          info.creditPort = net.ports_[e.a].peer;
          info.creditOwner = portShard_[info.creditPort];
        }
        break;
      case Kind::kTransfer:
        info.owner = portShard_[e.a];
        info.creditPort = net.ports_[e.a].peer;
        info.creditOwner = portShard_[info.creditPort];
        break;
      default:
        assert(false && "serial-class event in a parallel batch");
    }
    posInfo_[p - begin] = info;
    // Each executed part injects at most one segment (tryInjectHost allocs
    // exactly one per call, reachable once per part).
    ++need_[info.owner];
    if (info.creditOwner != kNoShard && info.creditOwner != info.owner) {
      ++need_[info.creditOwner];
    }
  }
}

std::uint32_t ParallelRunner::rawSegmentSlot() {
  Network& net = *net_;
  if (net.freeSegments_ != kNil) {
    const std::uint32_t idx = net.freeSegments_;
    net.freeSegments_ = net.segments_[idx].next;
    return idx;
  }
  if (net.segments_.size() >= kNil) {
    throw std::length_error("Network: segment pool exhausted (2^32 - 1 slots)");
  }
  net.segments_.emplace_back();
  return static_cast<std::uint32_t>(net.segments_.size() - 1);
}

void ParallelRunner::refillCaches() {
  // Top the caches up while the shards are parked (the pool may grow, the
  // caches themselves are the owning shard's private state afterwards).
  for (std::uint32_t s = 0; s < numShards_; ++s) {
    std::vector<std::uint32_t>& cache = shards_[s].segCache;
    while (cache.size() < need_[s]) cache.push_back(rawSegmentSlot());
  }
}

void ParallelRunner::executeShard(std::uint32_t s) {
  Shard& sh = shards_[s];
  Ctx ctx{&sh, 0, 0};
  for (std::size_t p = batchBegin_; p < batchEnd_; ++p) {
    const PosInfo& info = posInfo_[p - batchBegin_];
    const bool ownerHere = info.owner == s;
    const bool creditHere = info.creditOwner == s;
    if (!ownerHere && !creditHere) continue;
    const EventRecord& e = chunk_[p];
    ctx.now = e.t;
    ctx.pos = static_cast<std::uint32_t>(p - batchBegin_);
    if (!ownerHere) {
      // Credit half of a split position: return the credit at the
      // upstream port (this shard's state) and cascade locally.  Its
      // buffered pushes replay before the owner half's — matching the
      // serial handler, where returnCredit precedes the local pushes.
      pReturnCredit(ctx, info.creditPort);
      continue;
    }
    const bool creditLocal = info.creditOwner == kNoShard || creditHere;
    switch (static_cast<Kind>(e.kind())) {
      case Kind::kRelease:
        pHandleRelease(ctx, e.a);
        break;
      case Kind::kWireArrive:
        pHandleWireArrive(ctx, e.a, e.seg, creditLocal);
        break;
      case Kind::kWireFree:
        pHandleWireFree(ctx, e.a);
        break;
      case Kind::kTransfer:
        pHandleTransfer(ctx, e.a, e.seg, creditLocal);
        break;
      default:
        break;
    }
  }
}

void ParallelRunner::mergeStats() {
  NetworkStats& g = net_->stats_;
  for (Shard& sh : shards_) {
    const NetworkStats& d = sh.stats;
    g.segmentsInjected += d.segmentsInjected;
    g.segmentsDelivered += d.segmentsDelivered;
    g.messagesDelivered += d.messagesDelivered;
    g.lastDeliveryNs = std::max(g.lastDeliveryNs, d.lastDeliveryNs);
    g.maxOutputQueueDepth =
        std::max(g.maxOutputQueueDepth, d.maxOutputQueueDepth);
    g.maxInputQueueDepth =
        std::max(g.maxInputQueueDepth, d.maxInputQueueDepth);
  }
  // The in-flight invariant only holds on the merged totals, which is why
  // the replicated deliver handler cannot assert it per shard.
  assert(g.segmentsDelivered <= g.segmentsInjected);
}

void ParallelRunner::drainPushes(Shard& sh, std::uint32_t rel) {
  while (sh.replayCursor < sh.pushes.size() &&
         sh.pushes[sh.replayCursor].pos == rel) {
    const PushRec& r = sh.pushes[sh.replayCursor++];
    net_->queue_.push(r.t, r.kind, r.a, r.seg);
  }
}

void ParallelRunner::replayPushes(std::size_t begin, std::size_t end) {
  // Replaying in position order, credit half before owner half, repeats
  // the serial push sequence exactly — so the queue's insertion-sequence
  // tags (and therefore all later tie-breaks) come out bit-identical.
  for (std::size_t p = begin; p < end; ++p) {
    const PosInfo& info = posInfo_[p - begin];
    const std::uint32_t rel = static_cast<std::uint32_t>(p - begin);
    if (info.creditOwner != kNoShard && info.creditOwner != info.owner) {
      drainPushes(shards_[info.creditOwner], rel);
    }
    drainPushes(shards_[info.owner], rel);
  }
}

void ParallelRunner::flushSinks(std::size_t begin, std::size_t end) {
  Network& net = *net_;
  if (net.sink_ == nullptr) return;
  for (std::size_t p = begin; p < end; ++p) {
    const SinkCall& call = sinkCalls_[p - begin];
    if (!call.pending) continue;
    net.now_ = call.time;
    net.sink_->onMessageDelivered(call.msg, call.time);
  }
}

// ---- replicated handlers ------------------------------------------------

std::uint32_t ParallelRunner::pAllocSegment(Ctx& c, MsgId msg, RouteId route,
                                            std::uint32_t bytes) {
  std::vector<std::uint32_t>& cache = c.shard->segCache;
  assert(!cache.empty() && "segment cache underfilled for this batch");
  const std::uint32_t idx = cache.back();
  cache.pop_back();
  net_->segments_[idx] = Network::Segment{msg, route, 0, bytes, 0, kNil};
  return idx;
}

void ParallelRunner::pHandleRelease(Ctx& c, MsgId msgId) {
  Network& n = *net_;
  Network::Message& m = n.messages_[msgId];
  m.released = true;
  if (m.src == m.dst) {
    m.delivered = true;
    m.deliveredAt = c.now;
    ++c.shard->stats.messagesDelivered;
    c.shard->stats.lastDeliveryNs =
        std::max(c.shard->stats.lastDeliveryNs, c.now);
    if (n.sink_ != nullptr) sinkCalls_[c.pos] = SinkCall{msgId, c.now, true};
    return;
  }
  const std::uint32_t hostPort = m.hostPort;
  n.activePushBack(n.ports_[hostPort], msgId);
  pTryInjectHost(c, hostPort);
}

void ParallelRunner::pTryInjectHost(Ctx& c, std::uint32_t gOutPort) {
  Network& n = *net_;
  Network::PortState& port = n.ports_[gOutPort];
  if (port.wireBusy || port.credits == 0 || port.activeHead == kNil) return;
  const MsgId msgId = port.activeHead;
  Network::Message& m = n.messages_[msgId];
  port.activeHead = m.nextActive;
  if (port.activeHead == kNil) port.activeTail = kNil;
  const std::uint32_t payload = n.segmentPayload(m, m.injectedSegments);
  RouteId route = m.route0;
  if (m.setSize > 1) {
    std::uint32_t pathIdx = 0;
    switch (m.policy) {
      case SprayPolicy::kRoundRobin:
        pathIdx = m.injectedSegments % m.setSize;
        break;
      case SprayPolicy::kRandom:
        pathIdx = static_cast<std::uint32_t>(
            xgft::hashMix(m.spraySeed, msgId, m.injectedSegments) %
            m.setSize);
        break;
    }
    route = n.routes_.set(m.set)[pathIdx];
  }
  const std::uint32_t seg = pAllocSegment(c, msgId, route, payload);
  ++m.injectedSegments;
  ++c.shard->stats.segmentsInjected;
  if (m.injectedSegments < m.numSegments) n.activePushBack(port, msgId);
  pStartTransmission(c, gOutPort, seg);
}

void ParallelRunner::pStartTransmission(Ctx& c, std::uint32_t gOutPort,
                                        std::uint32_t seg) {
  Network& n = *net_;
  Network::PortState& port = n.ports_[gOutPort];
  assert(!port.wireBusy && port.credits > 0);
  port.wireBusy = true;
  --port.credits;
  const std::uint32_t payload = n.segments_[seg].payloadBytes;
  const TimeNs ser = payload == n.cfg_.segmentBytes
                         ? n.serFullNs_
                         : n.cfg_.serializationNs(payload);
  port.busyNs += ser;
  pPush(c, c.now + ser, Kind::kWireFree, gOutPort);
  pPush(c, c.now + ser + n.cfg_.linkLatencyNs, Kind::kWireArrive, port.peer,
        seg);
}

void ParallelRunner::pOutputDispatch(Ctx& c, std::uint32_t gOutPort) {
  if (net_->isHostPort(gOutPort)) {
    pTryInjectHost(c, gOutPort);
  } else {
    pTryTransmitSwitch(c, gOutPort);
  }
}

void ParallelRunner::pHandleWireFree(Ctx& c, std::uint32_t gOutPort) {
  net_->ports_[gOutPort].wireBusy = false;
  pOutputDispatch(c, gOutPort);
}

void ParallelRunner::pTryTransmitSwitch(Ctx& c, std::uint32_t gOutPort) {
  Network& n = *net_;
  Network::PortState& port = n.ports_[gOutPort];
  if (port.wireBusy || port.credits == 0 || port.outHead == kNil) return;
  const std::uint32_t seg = n.segPopFront(port.outHead, port.outTail);
  --port.outCount;
  pStartTransmission(c, gOutPort, seg);
  pServeWaitingInputs(c, gOutPort);
}

void ParallelRunner::pHandleWireArrive(Ctx& c, std::uint32_t gInPort,
                                       std::uint32_t seg, bool creditLocal) {
  Network& n = *net_;
  ++n.segments_[seg].hop;
  if (n.isHostPort(gInPort)) {
    pDeliverSegment(c, gInPort, seg, creditLocal);
    return;
  }
  Network::PortState& port = n.ports_[gInPort];
  n.segPushBack(port.inHead, port.inTail, seg);
  ++port.inCount;
  c.shard->stats.maxInputQueueDepth =
      std::max(c.shard->stats.maxInputQueueDepth, port.inCount);
  pTryAdvanceInput(c, gInPort);
}

void ParallelRunner::pDeliverSegment(Ctx& c, std::uint32_t gInPort,
                                     std::uint32_t seg, bool creditLocal) {
  Network& n = *net_;
  const MsgId msgId = n.segments_[seg].msg;
  c.shard->segCache.push_back(seg);  // Freed slots recycle shard-locally.
  if (creditLocal) pReturnCredit(c, n.ports_[gInPort].peer);
  ++c.shard->stats.segmentsDelivered;
  Network::Message& m = n.messages_[msgId];
  ++m.deliveredSegments;
  if (m.deliveredSegments == m.numSegments && !m.dropped) {
    m.delivered = true;
    m.deliveredAt = c.now;
    ++c.shard->stats.messagesDelivered;
    c.shard->stats.lastDeliveryNs =
        std::max(c.shard->stats.lastDeliveryNs, c.now);
    if (n.sink_ != nullptr) sinkCalls_[c.pos] = SinkCall{msgId, c.now, true};
  }
}

void ParallelRunner::pTryAdvanceInput(Ctx& c, std::uint32_t gInPort) {
  Network& n = *net_;
  Network::PortState& port = n.ports_[gInPort];
  if (port.transferring || port.inHead == kNil) return;
  const std::uint32_t seg = port.inHead;
  Network::Segment& segment = n.segments_[seg];
  // Tail paths: word hop - 1 is the port taken after the hop-th arrival
  // (hop >= 1 here), mirroring Network::tryAdvanceInput.
  const std::uint32_t out = n.segAdaptive(segment)
                                ? n.resolveAdaptive(gInPort, segment)
                                : n.pathOf(segment)[segment.hop - 1];
  segment.resolvedOut = out;
  pAdvanceInputTo(c, gInPort, seg, out);
}

void ParallelRunner::pWakeInput(Ctx& c, std::uint32_t gInPort) {
  Network& n = *net_;
  Network::PortState& port = n.ports_[gInPort];
  if (port.transferring || port.inHead == kNil) return;
  const std::uint32_t seg = port.inHead;
  Network::Segment& segment = n.segments_[seg];
  std::uint32_t out = segment.resolvedOut;
  if (n.segAdaptive(segment)) {
    out = n.resolveAdaptive(gInPort, segment);
    segment.resolvedOut = out;
  }
  pAdvanceInputTo(c, gInPort, seg, out);
}

void ParallelRunner::pAdvanceInputTo(Ctx& c, std::uint32_t gInPort,
                                     std::uint32_t seg, std::uint32_t out) {
  Network& n = *net_;
  // No fault branch: the plan guarantees no link has ever failed.
  Network::PortState& port = n.ports_[gInPort];
  Network::PortState& outPort = n.ports_[out];
  if (outPort.outCount + outPort.reserved < n.cfg_.outputBufferSegments) {
    ++outPort.reserved;
    port.transferring = true;
    pPush(c, c.now + n.cfg_.switchLatencyNs, Kind::kTransfer, gInPort, seg);
  } else if (!port.queuedWaiting) {
    n.waitLink_[gInPort] = kNil;
    if (outPort.waitTail == kNil) {
      outPort.waitHead = gInPort;
    } else {
      n.waitLink_[outPort.waitTail] = gInPort;
    }
    outPort.waitTail = gInPort;
    port.queuedWaiting = true;
  }
}

void ParallelRunner::pHandleTransfer(Ctx& c, std::uint32_t gInPort,
                                     std::uint32_t seg, bool creditLocal) {
  Network& n = *net_;
  Network::PortState& port = n.ports_[gInPort];
  const Network::Segment& segment = n.segments_[seg];
  const std::uint32_t out = segment.resolvedOut;
  Network::PortState& outPort = n.ports_[out];
  --outPort.reserved;
  assert(port.inHead == seg);
  const std::uint32_t front = n.segPopFront(port.inHead, port.inTail);
  (void)front;
  --port.inCount;
  n.segPushBack(outPort.outHead, outPort.outTail, seg);
  ++outPort.outCount;
  c.shard->stats.maxOutputQueueDepth =
      std::max(c.shard->stats.maxOutputQueueDepth, outPort.outCount);
  port.transferring = false;
  if (creditLocal) pReturnCredit(c, port.peer);
  pTryAdvanceInput(c, gInPort);
  pTryTransmitSwitch(c, out);
}

void ParallelRunner::pServeWaitingInputs(Ctx& c, std::uint32_t gOutPort) {
  Network& n = *net_;
  Network::PortState& outPort = n.ports_[gOutPort];
  while (outPort.waitHead != kNil &&
         outPort.outCount + outPort.reserved < n.cfg_.outputBufferSegments) {
    const std::uint32_t gInPort = outPort.waitHead;
    outPort.waitHead = n.waitLink_[gInPort];
    if (outPort.waitHead == kNil) outPort.waitTail = kNil;
    n.ports_[gInPort].queuedWaiting = false;
    pWakeInput(c, gInPort);
  }
}

void ParallelRunner::pReturnCredit(Ctx& c, std::uint32_t gOutPort) {
  ++net_->ports_[gOutPort].credits;
  pOutputDispatch(c, gOutPort);
}

// ---- public entry points ------------------------------------------------

ParallelPlan planParallelRun(const Network& net, std::uint32_t threads) {
  return ParallelRunner::plan(net, threads);
}

void runParallel(Network& net, TimeNs until, std::uint32_t threads,
                 ParallelRunStats* runStats) {
  if (runStats != nullptr) *runStats = ParallelRunStats{};
  const ParallelPlan plan = ParallelRunner::plan(net, threads);
  if (!plan.parallel) {
    if (runStats != nullptr) runStats->fellBack = true;
    net.run(until);
    return;
  }
  ParallelRunner runner(net, plan, runStats);
  runner.run(until);
}

}  // namespace sim
