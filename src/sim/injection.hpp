// injection.hpp — The pull-based injection process.
//
// One mechanism drives every traffic shape through the simulator: an
// InjectionProcess pumps a patterns::TrafficSource and turns its actions
// into Network calls, scheduled on the calendar queue —
//
//  * kMessage at the current time injects immediately (addMessageSet /
//    addMessageAdaptive + release);
//  * kMessage with a future time parks until a calendar callback reaches
//    it, so the source is asked for its next message only when the
//    previous one's injection time arrived — open-loop streams are never
//    materialized;
//  * kWake schedules a timer callback that re-enters the source
//    (closed-loop compute delays);
//  * kBlocked pauses the pump until a completion re-triggers it (the
//    process is the network's TrafficSink and re-pumps after forwarding
//    every delivery to the source).
//
// Closed-loop phase replay (trace::Replayer implements TrafficSource) and
// open-loop streaming (patterns::OpenLoopSource) are both instances of
// this process; neither owns a private injection path.
//
// Route construction stays out of this layer: the caller supplies a
// resolver mapping (src, dst) host pairs to interned route sets (see
// trace::RouteSetResolver) or opts into per-hop adaptive routing.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "patterns/source.hpp"
#include "sim/network.hpp"

namespace sim {

struct InjectionOptions {
  /// Spray policy/seed applied to multi-route sets (single-route sets
  /// ignore them), mirroring trace::SprayConfig.
  SprayPolicy policy = SprayPolicy::kRoundRobin;
  std::uint64_t spraySeed = 1;
  /// Per-hop minimally-adaptive routing instead of resolved route sets.
  bool adaptive = false;

  /// Maps a source rank to its host node; identity when null.
  std::function<xgft::NodeIndex(patterns::Rank)> hostOf;

  /// Interned route set for a (src, dst) host pair; required unless
  /// adaptive.  Called once per injected message (resolvers memoize).
  /// May return RouteStore::kUnroutable for a pair the active (degraded)
  /// forwarding table cannot reach — the message is then refused, not
  /// enqueued.
  std::function<RouteSetId(xgft::NodeIndex, xgft::NodeIndex)> routeSet;

  /// Invoked for every refused message: (source token, bytes, src host,
  /// dst host).  The refusal is counted in NetworkStats::messagesDropped
  /// either way, but a closed-loop source would wait forever for the
  /// message's delivery — so a kUnroutable resolution without an onDrop
  /// handler throws std::runtime_error instead of hanging.
  std::function<void(std::uint64_t, Bytes, xgft::NodeIndex, xgft::NodeIndex)>
      onDrop;
};

class InjectionProcess final : public TrafficSink {
 public:
  /// Installs itself as @p net's sink.  All references must outlive the
  /// process.
  InjectionProcess(Network& net, patterns::TrafficSource& source,
                   InjectionOptions opt);

  /// Pumps the source and processes events until the calendar queue drains
  /// (or @p until); resumable — the windowed measurement layer runs the
  /// same process across warmup/measurement/drain boundaries.
  void run(TimeNs until = std::numeric_limits<TimeNs>::max());

  /// True once the source returned kExhausted.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// Shard-worker budget for run(): values above 1 route event processing
  /// through sim::runParallel (which still falls back to the serial core
  /// whenever planParallelRun says sharding would be unprofitable or
  /// inexact).  Byte-identical results either way.
  void setSimThreads(std::uint32_t threads) {
    simThreads_ = threads == 0 ? 1 : threads;
  }

  /// Our deliveries only record completions and forward to the source;
  /// they drive the simulation only when the source reacts to them.
  [[nodiscard]] bool deliveriesDeferrable() const override {
    return src_->passiveDeliveries();
  }

  [[nodiscard]] std::uint64_t injectedMessages() const {
    return tokenOf_.size();
  }

  /// Optional per-delivery observer: (source token, message bytes,
  /// injection time, delivery time).  Runs before the source's
  /// onDelivered().
  std::function<void(std::uint64_t, Bytes, TimeNs, TimeNs)> onDelivery;

  void onMessageDelivered(MsgId msg, TimeNs time) override;

 private:
  /// Pulls until the source blocks, exhausts, or hands out a future-time
  /// message (which parks in pendingFuture_ behind a calendar callback).
  void pump();
  void inject(const patterns::SourceMessage& m);

  Network* net_;
  patterns::TrafficSource* src_;
  InjectionOptions opt_;

  std::vector<std::uint64_t> tokenOf_;  ///< MsgId -> source token.
  std::vector<TimeNs> injectNs_;        ///< MsgId -> release time.
  std::vector<Bytes> bytesOf_;          ///< MsgId -> message bytes.

  patterns::SourceMessage future_;  ///< Parked next message, if any.
  bool pendingFuture_ = false;
  bool exhausted_ = false;
  std::uint32_t simThreads_ = 1;
};

}  // namespace sim
