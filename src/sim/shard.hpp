// shard.hpp — Conservative parallel driver for sim::Network.
//
// runParallel() executes the same event stream as Network::run(), but fans
// the work of each conservative time window out over K shard workers.  The
// contract is strict: stats, per-message delivery times, per-wire busy
// times, sink notification order and the event-queue contents at every
// run(until) boundary are **byte-identical** to the serial engine for any
// shard count (pinned by tests/sim/parallel_run_test.cpp and the campaign
// suite in tests/engine/parallel_identity_test.cpp).
//
// How (DESIGN.md §12 has the full derivation):
//
//  * Window.  Every handler of a parallel-class event (kRelease,
//    kWireArrive, kWireFree, kTransfer) only schedules further events at
//    least W = min(switchLatencyNs, serializationNs(0)) ns in the future,
//    so the events in [T, T+W-1] form a closed set the moment they are
//    popped — no event executed inside the window can add to it.
//  * Shards.  Ports partition by owning node (hosts co-located with their
//    first parent leaf switch); every mutation of a port's state happens
//    on its owning shard, in global event order.  The one cross-shard
//    effect — the zero-latency credit return to the upstream port — is
//    split off and executed by the upstream port's shard at the same
//    position, so state touches stay disjoint.
//  * Determinism.  Shards buffer their event-queue pushes instead of
//    pushing; the coordinator replays them in exact serial push order at
//    the window barrier, reproducing the queue's insertion-sequence tags
//    bit for bit.  Sink completions are deferred the same way (legal only
//    when TrafficSink::deliveriesDeferrable()).
//
// Fallback.  planParallelRun() answers whether a parallel run would pay
// off *and* be exact; when it says no (one thread, probe attached,
// non-deferrable sink, fault transitions pending, zero lookahead, or a
// topology too small to cut), runParallel() simply calls Network::run() —
// the serial path is bit-for-bit untouched.  A fault transition scheduled
// *mid-run* (from a callback) aborts the window machinery and hands the
// remaining events back to the serial core, preserving the total order.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/config.hpp"

namespace sim {

class Network;

/// Decision record of planParallelRun — exposed so tests (and curious
/// callers) can check *why* a run stayed serial.
struct ParallelPlan {
  bool parallel = false;
  std::uint32_t shards = 1;  ///< Effective shard count (clamped to leaves).
  TimeNs windowNs = 0;       ///< Conservative lookahead W, parallel only.
  const char* fallbackReason = nullptr;  ///< Set iff !parallel.
};

/// Would runParallel(net, ·, threads) actually shard, and how?  Pure
/// query; inspects the network's current configuration (probe, sink,
/// pending faults, topology size) without touching it.
[[nodiscard]] ParallelPlan planParallelRun(const Network& net,
                                           std::uint32_t threads);

/// Execution diagnostics of one runParallel call — how much of the event
/// stream actually ran on shard workers.  Host-side introspection only
/// (wall-clock shaped, never part of simulated results); tests use it to
/// prove the sharded handlers were exercised, benches to report batch
/// shape.
struct ParallelRunStats {
  std::uint64_t windows = 0;         ///< Conservative windows processed.
  std::uint64_t parallelBatches = 0; ///< Batches fanned out to shards.
  std::uint64_t parallelEvents = 0;  ///< Events executed on shard workers.
  std::uint64_t inlineEvents = 0;    ///< Small-batch events run inline.
  std::uint64_t serialEvents = 0;    ///< Callback/sample events.
  bool fellBack = false;             ///< Whole run took the serial path.
  bool aborted = false;              ///< Mid-run fault hand-off happened.
};

/// Drop-in parallel replacement for net.run(until): identical observable
/// behaviour (byte-identical stats/outputs, same exceptions), up to
/// @p threads shard workers.  Falls back to the serial engine whenever
/// planParallelRun says so.  @p runStats, when given, receives execution
/// diagnostics (including for fallback runs).
void runParallel(Network& net,
                 TimeNs until = std::numeric_limits<TimeNs>::max(),
                 std::uint32_t threads = 1,
                 ParallelRunStats* runStats = nullptr);

}  // namespace sim
