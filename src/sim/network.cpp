#include "sim/network.hpp"

#include <cassert>

#include "xgft/rng.hpp"
#include <stdexcept>
#include <string>

namespace sim {

namespace {
constexpr std::uint32_t kNoPeer = 0xffffffffu;
}  // namespace

Network::Network(const xgft::Topology& topo, SimConfig cfg)
    : topo_(&topo), cfg_(cfg) {
  const std::uint32_t h = topo.height();
  // Port bases per global node (hosts first, then switches level by level).
  portBase_.resize(topo.numNodes());
  std::uint64_t base = 0;
  for (std::uint32_t l = 0; l <= h; ++l) {
    const std::uint32_t perNode = topo.numPorts(l);
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      portBase_[topo.globalId(l, idx)] = base;
      base += perNode;
    }
    if (l == 0) hostPortEnd_ = static_cast<std::uint32_t>(base);
  }
  if (base > 0xfffffff0ull) {
    throw std::invalid_argument("Network: topology too large (port count)");
  }
  ports_.resize(base);
  peer_.assign(base, kNoPeer);
  portOwner_.resize(base);
  for (std::uint32_t l = 0; l <= h; ++l) {
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      const std::uint64_t nodeBase = portBase_[topo.globalId(l, idx)];
      for (std::uint32_t p = 0; p < topo.numPorts(l); ++p) {
        portOwner_[nodeBase + p] = PortOwner{l, idx, p};
      }
    }
  }
  adaptiveRR_.assign(topo.numNodes(), 0);

  // Wire the peers: every up-link connects (child, upPort) <-> (parent,
  // downPort = child's M_{l+1} digit).
  for (std::uint32_t l = 0; l < h; ++l) {
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      for (std::uint32_t p = 0; p < topo.params().w(l + 1); ++p) {
        const std::uint32_t childGport = static_cast<std::uint32_t>(
            portBase_[topo.globalId(l, idx)] + topo.upPortBase(l) + p);
        const xgft::NodeIndex parent = topo.parentIndex(l, idx, p);
        const std::uint32_t downPort = topo.digit(l, idx, l + 1);
        const std::uint32_t parentGport = static_cast<std::uint32_t>(
            portBase_[topo.globalId(l + 1, parent)] + downPort);
        peer_[childGport] = parentGport;
        peer_[parentGport] = childGport;
      }
    }
  }
  for (std::uint32_t g = 0; g < peer_.size(); ++g) {
    if (peer_[g] == kNoPeer) {
      throw std::logic_error("Network: unwired port " + std::to_string(g));
    }
    ports_[g].credits = cfg_.inputBufferSegments;
  }
}

std::uint32_t Network::globalPort(std::uint32_t level, xgft::NodeIndex node,
                                  std::uint32_t port) const {
  return static_cast<std::uint32_t>(portBase_[topo_->globalId(level, node)] +
                                    port);
}

MsgId Network::addMessage(xgft::NodeIndex src, xgft::NodeIndex dst,
                          Bytes bytes, const xgft::Route& route) {
  return addMessageMultipath(src, dst, bytes, {route},
                             SprayPolicy::kRoundRobin);
}

MsgId Network::addMessageCompiled(xgft::NodeIndex src, xgft::NodeIndex dst,
                                  Bytes bytes,
                                  std::span<const std::uint32_t> upPorts) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.numSegments = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (bytes + cfg_.segmentBytes - 1) / cfg_.segmentBytes));
  if (src != dst) {
    // Same walk as hopsOf(), minus the Route materialization and the
    // re-validation (the compiled table was validated when it was built).
    const std::uint32_t L = static_cast<std::uint32_t>(upPorts.size());
    std::vector<std::uint32_t> path;
    path.reserve(2 * static_cast<std::size_t>(L));
    xgft::NodeIndex node = src;
    for (std::uint32_t i = 0; i < L; ++i) {
      path.push_back(
          globalPort(i, node, topo_->upPortBase(i) + upPorts[i]));
      node = topo_->parentIndex(i, node, upPorts[i]);
    }
    for (std::uint32_t j = L; j >= 1; --j) {
      const std::uint32_t port = topo_->digit(0, dst, j);
      path.push_back(globalPort(j, node, port));
      node = topo_->childIndex(j, node, port);
    }
    m.paths.push_back(std::move(path));
  }
  messages_.push_back(std::move(m));
  return static_cast<MsgId>(messages_.size() - 1);
}

MsgId Network::addMessageMultipath(xgft::NodeIndex src, xgft::NodeIndex dst,
                                   Bytes bytes,
                                   const std::vector<xgft::Route>& routes,
                                   SprayPolicy policy,
                                   std::uint64_t spraySeed) {
  if (routes.empty()) {
    throw std::invalid_argument("addMessageMultipath: need >= 1 route");
  }
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.policy = policy;
  m.spraySeed = spraySeed;
  m.numSegments = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (bytes + cfg_.segmentBytes - 1) / cfg_.segmentBytes));
  if (src != dst) {
    for (const xgft::Route& route : routes) {
      std::string error;
      if (!validateRoute(*topo_, src, dst, route, &error)) {
        throw std::invalid_argument("addMessage: " + error);
      }
      std::vector<std::uint32_t> path;
      for (const xgft::Hop& hop : hopsOf(*topo_, src, dst, route)) {
        path.push_back(globalPort(hop.level, hop.node, hop.outPort));
      }
      if (!m.paths.empty() && path[0] != m.paths[0][0]) {
        throw std::invalid_argument(
            "addMessageMultipath: routes must share the first-hop port");
      }
      m.paths.push_back(std::move(path));
    }
  }
  messages_.push_back(std::move(m));
  return static_cast<MsgId>(messages_.size() - 1);
}

MsgId Network::addMessageAdaptive(xgft::NodeIndex src, xgft::NodeIndex dst,
                                  Bytes bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.adaptive = true;
  m.numSegments = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (bytes + cfg_.segmentBytes - 1) / cfg_.segmentBytes));
  if (src != dst) {
    // The host uplink is fixed per message (w1 = 1 in the paper's trees;
    // for w1 > 1 messages stripe across NIC ports by id).
    const std::uint32_t port =
        static_cast<std::uint32_t>(messages_.size() % topo_->params().w(1));
    m.paths.push_back({globalPort(0, src, port)});
  }
  messages_.push_back(std::move(m));
  return static_cast<MsgId>(messages_.size() - 1);
}

void Network::release(MsgId msg, TimeNs t) {
  if (msg >= messages_.size()) {
    throw std::out_of_range("release: unknown message");
  }
  if (t < now_) {
    throw std::invalid_argument("release: time in the past");
  }
  schedule(t, Kind::kRelease, msg);
}

void Network::scheduleCallback(TimeNs t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("scheduleCallback: time in the past");
  }
  callbacks_.push_back(std::move(fn));
  schedule(t, Kind::kCallback,
           static_cast<std::uint32_t>(callbacks_.size() - 1));
}

void Network::run(TimeNs until) {
  while (!queue_.empty() && queue_.top().t <= until) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    handle(ev);
    ++stats_.eventsProcessed;
  }
  if (queue_.empty()) {
    std::uint64_t stranded = 0;
    for (const Message& m : messages_) {
      if (m.released && !m.delivered) ++stranded;
    }
    if (stranded > 0) {
      throw std::runtime_error(
          "Network::run: event queue drained with " +
          std::to_string(stranded) +
          " undelivered released message(s) — routing or flow-control bug");
    }
  }
}

TimeNs Network::deliveryTime(MsgId msg) const {
  const Message& m = messages_.at(msg);
  if (!m.delivered) {
    throw std::logic_error("deliveryTime: message not delivered");
  }
  return m.deliveredAt;
}

TimeNs Network::wireBusyNs(std::uint32_t gport) const {
  return ports_.at(gport).busyNs;
}

void Network::schedule(TimeNs t, Kind kind, std::uint32_t a,
                       std::uint32_t seg) {
  queue_.push(Event{t, nextSeq_++, kind, a, seg});
}

void Network::handle(const Event& ev) {
  switch (ev.kind) {
    case Kind::kRelease:
      handleRelease(ev.a);
      break;
    case Kind::kWireArrive:
      handleWireArrive(ev.a, ev.seg);
      break;
    case Kind::kWireFree:
      handleWireFree(ev.a);
      break;
    case Kind::kTransfer:
      handleTransfer(ev.a, ev.seg);
      break;
    case Kind::kCallback:
      callbacks_[ev.a]();
      break;
  }
}

void Network::handleRelease(MsgId msg) {
  Message& m = messages_[msg];
  m.released = true;
  if (m.src == m.dst) {
    // Local delivery: never enters the network (Sec. III self-flows).
    m.delivered = true;
    m.deliveredAt = now_;
    ++stats_.messagesDelivered;
    stats_.lastDeliveryNs = std::max(stats_.lastDeliveryNs, now_);
    if (sink_ != nullptr) sink_->onMessageDelivered(msg, now_);
    return;
  }
  ports_[m.paths[0][0]].active.push_back(msg);
  tryInjectHost(m.paths[0][0]);
}

std::uint32_t Network::segmentPayload(const Message& m,
                                      std::uint32_t index) const {
  const Bytes offset = static_cast<Bytes>(index) * cfg_.segmentBytes;
  const Bytes remaining = m.bytes > offset ? m.bytes - offset : 0;
  return static_cast<std::uint32_t>(
      std::min<Bytes>(remaining, cfg_.segmentBytes));
}

std::uint32_t Network::allocSegment(MsgId msg, std::uint32_t pathIdx,
                                    std::uint32_t bytes) {
  std::uint32_t idx;
  if (!freeSegments_.empty()) {
    idx = freeSegments_.back();
    freeSegments_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(segments_.size());
    segments_.emplace_back();
  }
  segments_[idx] = Segment{msg, 0, pathIdx, bytes};
  return idx;
}

void Network::freeSegment(std::uint32_t seg) { freeSegments_.push_back(seg); }

void Network::tryInjectHost(std::uint32_t gOutPort) {
  PortState& port = ports_[gOutPort];
  if (port.wireBusy || port.credits == 0 || port.active.empty()) return;
  const MsgId msgId = port.active.front();
  port.active.pop_front();
  Message& m = messages_[msgId];
  const std::uint32_t payload = segmentPayload(m, m.injectedSegments);
  std::uint32_t pathIdx = 0;
  if (m.paths.size() > 1) {
    switch (m.policy) {
      case SprayPolicy::kRoundRobin:
        pathIdx = m.injectedSegments % m.paths.size();
        break;
      case SprayPolicy::kRandom:
        pathIdx = static_cast<std::uint32_t>(
            xgft::hashMix(m.spraySeed, msgId, m.injectedSegments) %
            m.paths.size());
        break;
    }
  }
  const std::uint32_t seg = allocSegment(msgId, pathIdx, payload);
  ++m.injectedSegments;
  ++stats_.segmentsInjected;
  // Round robin: messages with segments left rejoin the tail, so concurrent
  // messages interleave segment by segment (Sec. VI-B).
  if (m.injectedSegments < m.numSegments) port.active.push_back(msgId);
  startTransmission(gOutPort, seg);
}

void Network::startTransmission(std::uint32_t gOutPort, std::uint32_t seg) {
  PortState& port = ports_[gOutPort];
  assert(!port.wireBusy && port.credits > 0);
  port.wireBusy = true;
  --port.credits;
  const TimeNs ser = cfg_.serializationNs(segments_[seg].payloadBytes);
  port.busyNs += ser;
  schedule(now_ + ser, Kind::kWireFree, gOutPort);
  schedule(now_ + ser + cfg_.linkLatencyNs, Kind::kWireArrive, peer_[gOutPort],
           seg);
}

void Network::outputDispatch(std::uint32_t gOutPort) {
  if (isHostPort(gOutPort)) {
    tryInjectHost(gOutPort);
  } else {
    tryTransmitSwitch(gOutPort);
  }
}

void Network::handleWireFree(std::uint32_t gOutPort) {
  ports_[gOutPort].wireBusy = false;
  outputDispatch(gOutPort);
}

void Network::tryTransmitSwitch(std::uint32_t gOutPort) {
  PortState& port = ports_[gOutPort];
  if (port.wireBusy || port.credits == 0 || port.outQ.empty()) return;
  const std::uint32_t seg = port.outQ.front();
  port.outQ.pop_front();
  startTransmission(gOutPort, seg);
  serveWaitingInputs(gOutPort);
}

void Network::handleWireArrive(std::uint32_t gInPort, std::uint32_t seg) {
  Segment& segment = segments_[seg];
  ++segment.hop;
  if (isHostPort(gInPort)) {
    // Arriving at a host means delivery (the descent always ends at the
    // destination; routes are validated or, for adaptive segments,
    // minimal by construction).
    deliverSegment(gInPort, seg);
    return;
  }
  PortState& port = ports_[gInPort];
  port.inQ.push_back(seg);
  stats_.maxInputQueueDepth = std::max(
      stats_.maxInputQueueDepth, static_cast<std::uint32_t>(port.inQ.size()));
  tryAdvanceInput(gInPort);
}

void Network::deliverSegment(std::uint32_t gInPort, std::uint32_t seg) {
  const MsgId msgId = segments_[seg].msg;
  freeSegment(seg);
  returnCredit(peer_[gInPort]);
  ++stats_.segmentsDelivered;
  Message& m = messages_[msgId];
  ++m.deliveredSegments;
  if (m.deliveredSegments == m.numSegments) {
    m.delivered = true;
    m.deliveredAt = now_;
    ++stats_.messagesDelivered;
    stats_.lastDeliveryNs = std::max(stats_.lastDeliveryNs, now_);
    if (sink_ != nullptr) sink_->onMessageDelivered(msgId, now_);
  }
}

void Network::tryAdvanceInput(std::uint32_t gInPort) {
  PortState& port = ports_[gInPort];
  if (port.transferring || port.inQ.empty()) return;
  const std::uint32_t seg = port.inQ.front();
  Segment& segment = segments_[seg];
  // Adaptive segments (re-)pick their output now; a segment woken after
  // blocking re-evaluates against current queue occupancies.
  const std::uint32_t out = messages_[segment.msg].adaptive
                                ? resolveAdaptive(gInPort, segment)
                                : pathOf(segment)[segment.hop];
  segment.resolvedOut = out;
  PortState& outPort = ports_[out];
  if (outPort.outQ.size() + outPort.reserved < cfg_.outputBufferSegments) {
    ++outPort.reserved;
    port.transferring = true;
    schedule(now_ + cfg_.switchLatencyNs, Kind::kTransfer, gInPort, seg);
  } else if (!port.queuedWaiting) {
    outPort.waitingInputs.push_back(gInPort);
    port.queuedWaiting = true;
  }
}

void Network::handleTransfer(std::uint32_t gInPort, std::uint32_t seg) {
  PortState& port = ports_[gInPort];
  const Segment& segment = segments_[seg];
  const std::uint32_t out = segment.resolvedOut;
  PortState& outPort = ports_[out];
  --outPort.reserved;
  outPort.outQ.push_back(seg);
  stats_.maxOutputQueueDepth =
      std::max(stats_.maxOutputQueueDepth,
               static_cast<std::uint32_t>(outPort.outQ.size()));
  assert(!port.inQ.empty() && port.inQ.front() == seg);
  port.inQ.pop_front();
  port.transferring = false;
  returnCredit(peer_[gInPort]);
  tryAdvanceInput(gInPort);
  tryTransmitSwitch(out);
}

std::uint32_t Network::resolveAdaptive(std::uint32_t gInPort,
                                       const Segment& seg) {
  const PortOwner owner = portOwner_[gInPort];
  const std::uint32_t level = owner.level;
  const Message& m = messages_[seg.msg];
  // Descend as soon as this switch is an ancestor of the destination: all
  // label digits above the switch's level must match the destination's.
  bool ancestor = true;
  for (std::uint32_t i = level + 1; i <= topo_->height(); ++i) {
    if (topo_->digit(level, owner.node, i) != topo_->digit(0, m.dst, i)) {
      ancestor = false;
      break;
    }
  }
  if (ancestor) {
    return globalPort(level, owner.node, topo_->digit(0, m.dst, level));
  }
  // Ascend through the least-occupied up-port; a per-switch rotor breaks
  // ties round-robin so symmetric traffic does not herd onto port 0.
  const std::uint32_t upBase = topo_->params().m(level);
  const std::uint32_t numUp = topo_->params().w(level + 1);
  const xgft::GlobalNodeId nid = topo_->globalId(level, owner.node);
  const std::uint32_t start = adaptiveRR_[nid]++ % numUp;
  std::uint32_t bestPort = 0;
  std::uint64_t bestScore = ~std::uint64_t{0};
  for (std::uint32_t i = 0; i < numUp; ++i) {
    const std::uint32_t p = (start + i) % numUp;
    const std::uint32_t gout = globalPort(level, owner.node, upBase + p);
    const PortState& out = ports_[gout];
    const std::uint64_t score =
        (static_cast<std::uint64_t>(out.outQ.size()) + out.reserved) * 2 +
        (out.wireBusy ? 1 : 0);
    if (score < bestScore) {
      bestScore = score;
      bestPort = gout;
    }
  }
  return bestPort;
}

void Network::returnCredit(std::uint32_t gOutPort) {
  ++ports_[gOutPort].credits;
  outputDispatch(gOutPort);
}

void Network::serveWaitingInputs(std::uint32_t gOutPort) {
  PortState& outPort = ports_[gOutPort];
  while (!outPort.waitingInputs.empty() &&
         outPort.outQ.size() + outPort.reserved <
             cfg_.outputBufferSegments) {
    const std::uint32_t gInPort = outPort.waitingInputs.front();
    outPort.waitingInputs.pop_front();
    ports_[gInPort].queuedWaiting = false;
    tryAdvanceInput(gInPort);
  }
}

}  // namespace sim
