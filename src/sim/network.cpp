#include "sim/network.hpp"

#include <algorithm>
#include <cassert>

#include "sim/probe.hpp"
#include "xgft/rng.hpp"
#include <stdexcept>
#include <string>

namespace sim {

namespace {
constexpr std::uint32_t kNoPeer = 0xffffffffu;
}  // namespace

Network::Network(const xgft::Topology& topo, SimConfig cfg)
    : topo_(&topo), cfg_(cfg),
      serFullNs_(cfg.serializationNs(cfg.segmentBytes)) {
  const std::uint32_t h = topo.height();
  // Port bases per global node (hosts first, then switches level by level).
  portBase_.resize(topo.numNodes());
  std::uint64_t base = 0;
  for (std::uint32_t l = 0; l <= h; ++l) {
    const std::uint32_t perNode = topo.numPorts(l);
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      portBase_[topo.globalId(l, idx)] = base;
      base += perNode;
    }
    if (l == 0) hostPortEnd_ = static_cast<std::uint32_t>(base);
  }
  if (base > 0xfffffff0ull) {
    throw std::invalid_argument(
        "Network: topology needs " + std::to_string(base) +
        " global ports — exceeds the 32-bit port-id space");
  }
  ports_.resize(base);
  peer_.assign(base, kNoPeer);
  portOwner_.resize(base);
  for (std::uint32_t l = 0; l <= h; ++l) {
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      const std::uint64_t nodeBase = portBase_[topo.globalId(l, idx)];
      for (std::uint32_t p = 0; p < topo.numPorts(l); ++p) {
        portOwner_[nodeBase + p] = PortOwner{l, idx, p};
      }
    }
  }
  adaptiveRR_.assign(topo.numNodes(), 0);

  // Wire the peers: every up-link connects (child, upPort) <-> (parent,
  // downPort = child's M_{l+1} digit).
  for (std::uint32_t l = 0; l < h; ++l) {
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      for (std::uint32_t p = 0; p < topo.params().w(l + 1); ++p) {
        const std::uint32_t childGport = static_cast<std::uint32_t>(
            portBase_[topo.globalId(l, idx)] + topo.upPortBase(l) + p);
        const xgft::NodeIndex parent = topo.parentIndex(l, idx, p);
        const std::uint32_t downPort = topo.digit(l, idx, l + 1);
        const std::uint32_t parentGport = static_cast<std::uint32_t>(
            portBase_[topo.globalId(l + 1, parent)] + downPort);
        peer_[childGport] = parentGport;
        peer_[parentGport] = childGport;
      }
    }
  }
  waitLink_.assign(base, kNil);
  for (std::uint32_t g = 0; g < peer_.size(); ++g) {
    if (peer_[g] == kNoPeer) {
      throw std::logic_error("Network: unwired port " + std::to_string(g));
    }
    ports_[g].peer = peer_[g];
    ports_[g].credits = cfg_.inputBufferSegments;
  }
}

std::uint32_t Network::globalPort(std::uint32_t level, xgft::NodeIndex node,
                                  std::uint32_t port) const {
  return static_cast<std::uint32_t>(portBase_[topo_->globalId(level, node)] +
                                    port);
}

std::uint32_t Network::segmentCountOf(Bytes bytes) const {
  const Bytes segments =
      std::max<Bytes>(1, (bytes + cfg_.segmentBytes - 1) / cfg_.segmentBytes);
  if (segments > 0xffffffffull) {
    throw std::invalid_argument(
        "Network: a " + std::to_string(bytes) + "-byte message needs " +
        std::to_string(segments) +
        " segments — exceeds the 32-bit segment counter; split the message "
        "or raise SimConfig::segmentBytes");
  }
  return static_cast<std::uint32_t>(segments);
}

MsgId Network::addRecord(xgft::NodeIndex src, xgft::NodeIndex dst, Bytes bytes,
                         RouteSetId set, SprayPolicy policy,
                         std::uint64_t spraySeed, bool adaptive) {
  if (messages_.size() >= 0xffffffffull) {
    throw std::length_error(
        "Network: message-id space exhausted (2^32 - 1 messages) — shard "
        "the workload across simulations or widen sim::MsgId");
  }
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.numSegments = segmentCountOf(bytes);
  m.set = set;
  if (set != RouteStore::kNone) {
    const std::span<const RouteId> routes = routes_.set(set);
    m.setSize = static_cast<std::uint32_t>(routes.size());
    m.route0 = routes[0];
    m.hostPort = globalPort(0, src, routes_.setFirstUp(set));
  }
  m.spraySeed = spraySeed;
  m.policy = policy;
  m.adaptive = adaptive;
  messages_.push_back(m);
  return static_cast<MsgId>(messages_.size() - 1);
}

MsgId Network::addMessage(xgft::NodeIndex src, xgft::NodeIndex dst,
                          Bytes bytes, const xgft::Route& route) {
  return addMessageMultipath(src, dst, bytes, {route},
                             SprayPolicy::kRoundRobin);
}

RouteSetId Network::internCompiledPath(xgft::NodeIndex src,
                                       xgft::NodeIndex dst,
                                       std::span<const std::uint32_t> upPorts) {
  if (src == dst) return RouteStore::kNone;
  // Same walk as hopsOf(), minus the Route materialization and the
  // re-validation (the compiled table was validated when it was built).
  // Only the switch tail is interned — the host hop (local port upPorts[0],
  // since upPortBase(0) == 0) goes into the set, so sources whose compiled
  // tails coincide (same leaf group, same up-ports) share one path.
  const std::uint32_t L = static_cast<std::uint32_t>(upPorts.size());
  scratchPath_.clear();
  xgft::NodeIndex node = topo_->parentIndex(0, src, upPorts[0]);
  for (std::uint32_t i = 1; i < L; ++i) {
    scratchPath_.push_back(
        globalPort(i, node, topo_->upPortBase(i) + upPorts[i]));
    node = topo_->parentIndex(i, node, upPorts[i]);
  }
  for (std::uint32_t j = L; j >= 1; --j) {
    const std::uint32_t port = topo_->digit(0, dst, j);
    scratchPath_.push_back(globalPort(j, node, port));
    node = topo_->childIndex(j, node, port);
  }
  scratchSet_.assign(1, routes_.internPath(scratchPath_));
  return routes_.internSet(upPorts[0], scratchSet_);
}

MsgId Network::addMessageCompiled(xgft::NodeIndex src, xgft::NodeIndex dst,
                                  Bytes bytes,
                                  std::span<const std::uint32_t> upPorts) {
  return addMessageSet(src, dst, bytes, internCompiledPath(src, dst, upPorts));
}

RouteSetId Network::internRoutes(xgft::NodeIndex src, xgft::NodeIndex dst,
                                 const std::vector<xgft::Route>& routes) {
  if (routes.empty()) {
    throw std::invalid_argument("addMessageMultipath: need >= 1 route");
  }
  if (src == dst) return RouteStore::kNone;
  scratchSet_.clear();
  std::uint32_t firstUp = kNil;
  for (const xgft::Route& route : routes) {
    std::string error;
    if (!validateRoute(*topo_, src, dst, route, &error)) {
      throw std::invalid_argument("addMessage: " + error);
    }
    // A valid route for src != dst has >= 1 hop; the first one leaves the
    // source host and lives in the set, not the interned (tail) path.
    scratchPath_.clear();
    for (const xgft::Hop& hop : hopsOf(*topo_, src, dst, route)) {
      scratchPath_.push_back(globalPort(hop.level, hop.node, hop.outPort));
    }
    if (firstUp == kNil) {
      firstUp = route.up[0];
    } else if (route.up[0] != firstUp) {
      throw std::invalid_argument(
          "addMessageMultipath: routes must share the first-hop port");
    }
    scratchSet_.push_back(routes_.internPath(
        std::span<const std::uint32_t>(scratchPath_).subspan(1)));
  }
  return routes_.internSet(firstUp, scratchSet_);
}

MsgId Network::addMessageMultipath(xgft::NodeIndex src, xgft::NodeIndex dst,
                                   Bytes bytes,
                                   const std::vector<xgft::Route>& routes,
                                   SprayPolicy policy,
                                   std::uint64_t spraySeed) {
  return addMessageSet(src, dst, bytes, internRoutes(src, dst, routes), policy,
                       spraySeed);
}

MsgId Network::addMessageSet(xgft::NodeIndex src, xgft::NodeIndex dst,
                             Bytes bytes, RouteSetId set, SprayPolicy policy,
                             std::uint64_t spraySeed) {
  if ((set == RouteStore::kNone) != (src == dst)) {
    throw std::invalid_argument(
        "addMessageSet: route set and endpoints disagree (kNone iff src == "
        "dst)");
  }
  if (set != RouteStore::kNone && set >= routes_.numSets()) {
    throw std::out_of_range("addMessageSet: unknown route set");
  }
  return addRecord(src, dst, bytes, set, policy, spraySeed,
                   /*adaptive=*/false);
}

MsgId Network::addMessageAdaptive(xgft::NodeIndex src, xgft::NodeIndex dst,
                                  Bytes bytes) {
  RouteSetId set = RouteStore::kNone;
  if (src != dst) {
    // The host uplink is fixed per message (w1 = 1 in the paper's trees;
    // for w1 > 1 messages stripe across NIC ports by id).
    const std::uint32_t port =
        static_cast<std::uint32_t>(messages_.size() % topo_->params().w(1));
    // Adaptive segments resolve every switch port on the fly, so the tail
    // path is empty; only the NIC port (in the set) is predetermined.
    scratchPath_.clear();
    scratchSet_.assign(1, routes_.internPath(scratchPath_));
    set = routes_.internSet(port, scratchSet_);
  }
  return addRecord(src, dst, bytes, set, SprayPolicy::kRoundRobin, 1,
                   /*adaptive=*/true);
}

void Network::release(MsgId msg, TimeNs t) {
  if (msg >= messages_.size()) {
    throw std::out_of_range("release: unknown message");
  }
  if (t < now_) {
    throw std::invalid_argument("release: time in the past");
  }
  schedule(t, Kind::kRelease, msg);
}

void Network::scheduleCallback(TimeNs t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("scheduleCallback: time in the past");
  }
  std::uint32_t slot;
  if (!freeCallbackSlots_.empty()) {
    slot = freeCallbackSlots_.back();
    freeCallbackSlots_.pop_back();
    callbacks_[slot] = std::move(fn);
  } else {
    if (callbacks_.size() >= 0xffffffffull) {
      throw std::length_error(
          "Network: callback-slot space exhausted (2^32 pending callbacks)");
    }
    slot = static_cast<std::uint32_t>(callbacks_.size());
    callbacks_.push_back(std::move(fn));
  }
  schedule(t, Kind::kCallback, slot);
}

std::uint32_t Network::linkChildGport(std::uint32_t link) const {
  const xgft::LinkInfo li = topo_->linkInfo(link);
  return static_cast<std::uint32_t>(
      portBase_[topo_->globalId(li.level, li.child)] +
      topo_->upPortBase(li.level) + li.parentPort);
}

void Network::scheduleLinkDown(TimeNs t, xgft::LinkId link) {
  if (link >= topo_->numLinks()) {
    throw std::invalid_argument(
        "scheduleLinkDown: link " + std::to_string(link) +
        " out of range (topology has " + std::to_string(topo_->numLinks()) +
        " links)");
  }
  if (t < now_) {
    throw std::invalid_argument("scheduleLinkDown: time in the past");
  }
  faultEventsScheduled_ = true;
  schedule(t, Kind::kLinkDown, static_cast<std::uint32_t>(link));
}

void Network::scheduleLinkUp(TimeNs t, xgft::LinkId link) {
  if (link >= topo_->numLinks()) {
    throw std::invalid_argument(
        "scheduleLinkUp: link " + std::to_string(link) +
        " out of range (topology has " + std::to_string(topo_->numLinks()) +
        " links)");
  }
  if (t < now_) {
    throw std::invalid_argument("scheduleLinkUp: time in the past");
  }
  faultEventsScheduled_ = true;
  schedule(t, Kind::kLinkUp, static_cast<std::uint32_t>(link));
}

bool Network::linkIsDown(xgft::LinkId link) const {
  if (link >= topo_->numLinks()) {
    throw std::invalid_argument("linkIsDown: link " + std::to_string(link) +
                                " out of range");
  }
  return ports_[linkChildGport(static_cast<std::uint32_t>(link))].down;
}

void Network::setProbe(Probe* probe) {
  probe_ = probe;
  if (probe_ == nullptr) return;
  probe_->onAttach(*this);
  if (probe_->samplePeriodNs() > 0 && !samplePending_) scheduleSample();
}

void Network::scheduleSample() {
  const TimeNs period = probe_->samplePeriodNs();
  schedule(now_ + period, Kind::kSample, 0);
  samplePending_ = true;
}

void Network::run(TimeNs until) {
  EventRecord ev;
  while (queue_.popUntil(until, ev)) {
    now_ = ev.t;
    handle(ev);
    ++stats_.eventsProcessed;
  }
  finishRun();
}

void Network::finishRun() {
  // Stats are valid at every run() boundary: fold pending outage time in.
  if (!downLinks_.empty()) accrueLinkDownTo(now_);
  if (queue_.empty()) {
    std::uint64_t stranded = 0;
    for (Message& m : messages_) {
      if (m.released && !m.delivered && !m.dropped) {
        if (faultsSeen_) {
          // Expected loss on a faulted run: traffic waiting behind a link
          // that never came back (or whose remaining segments were gated at
          // a down host port).  Segments still inside the network at drain
          // are stranded by definition.
          m.dropped = true;
          ++stats_.messagesDropped;
          stats_.segmentsStranded += m.injectedSegments - m.deliveredSegments;
        } else {
          ++stranded;
        }
      }
    }
    if (stranded > 0) {
      throw std::runtime_error(
          "Network::run: event queue drained with " +
          std::to_string(stranded) +
          " undelivered released message(s) — routing or flow-control bug");
    }
  }
}

void Network::accrueLinkDownTo(TimeNs t) {
  for (DownLink& dl : downLinks_) {
    stats_.linkDownNs += t - dl.since;
    dl.since = t;
  }
}

TimeNs Network::deliveryTime(MsgId msg) const {
  const Message& m = messages_.at(msg);
  if (!m.delivered) {
    throw std::logic_error("deliveryTime: message not delivered");
  }
  return m.deliveredAt;
}

TimeNs Network::wireBusyNs(std::uint32_t gport) const {
  return ports_.at(gport).busyNs;
}

void Network::handle(const EventRecord& ev) {
  switch (static_cast<Kind>(ev.kind())) {
    case Kind::kRelease:
      handleRelease(ev.a);
      break;
    case Kind::kWireArrive:
      handleWireArrive(ev.a, ev.seg);
      break;
    case Kind::kWireFree:
      handleWireFree(ev.a);
      break;
    case Kind::kTransfer:
      handleTransfer(ev.a, ev.seg);
      break;
    case Kind::kCallback: {
      // Move the closure out before invoking: the slot is recycled, and the
      // callback may itself schedule new callbacks into it.
      std::function<void()> fn = std::move(callbacks_[ev.a]);
      freeCallbackSlots_.push_back(ev.a);
      fn();
      break;
    }
    case Kind::kSample: {
      samplePending_ = false;
      if (probe_ != nullptr) {
        probe_->onSample(*this, now_);
        // Reschedule only while other events remain: the sampler can never
        // keep an otherwise drained queue alive, so termination and the
        // stranded-traffic check are unaffected.
        if (probe_->samplePeriodNs() > 0 && !queue_.empty()) scheduleSample();
      }
      // Sampling must not perturb measured results: pre-compensate the ++
      // the run() loop applies after handle(), so eventsProcessed never
      // counts probe ticks (unsigned wrap on the first-ever event is
      // well-defined and immediately undone).
      --stats_.eventsProcessed;
      break;
    }
    case Kind::kLinkDown:
      handleLinkDown(ev.a);
      break;
    case Kind::kLinkUp:
      handleLinkUp(ev.a);
      break;
  }
}

void Network::handleLinkDown(std::uint32_t link) {
  const std::uint32_t childG = linkChildGport(link);
  const std::uint32_t parentG = ports_[childG].peer;
  if (ports_[childG].down) return;  // Already failed: transition no-op.
  faultsSeen_ = true;
  ports_[childG].down = true;
  ports_[parentG].down = true;
  downLinks_.push_back(DownLink{link, now_});
  if (probe_ != nullptr) probe_->onLinkDown(link, now_);
  if (faultPolicy_ != FaultPolicy::kWait) {
    // Eagerly resolve everything queued at or parked on the dead outputs;
    // under kWait it all simply waits for a restore.
    processDeadOutput(childG);
    processDeadOutput(parentG);
    flushDeadWaiters(childG);
    flushDeadWaiters(parentG);
  }
}

void Network::handleLinkUp(std::uint32_t link) {
  const std::uint32_t childG = linkChildGport(link);
  const std::uint32_t parentG = ports_[childG].peer;
  if (!ports_[childG].down) return;  // Already up: transition no-op.
  for (std::size_t i = 0; i < downLinks_.size(); ++i) {
    if (downLinks_[i].link == link) {
      stats_.linkDownNs += now_ - downLinks_[i].since;
      downLinks_[i] = downLinks_.back();
      downLinks_.pop_back();
      break;
    }
  }
  ports_[childG].down = false;
  ports_[parentG].down = false;
  if (probe_ != nullptr) probe_->onLinkUp(link, now_);
  // Restart both directions: queued output segments transmit again and
  // parked inputs are served as slots free up.
  outputDispatch(childG);
  outputDispatch(parentG);
  serveWaitingInputs(childG);
  serveWaitingInputs(parentG);
}

void Network::dropMessage(MsgId msg) {
  Message& m = messages_[msg];
  if (m.dropped) return;
  m.dropped = true;
  ++stats_.messagesDropped;
}

std::uint32_t Network::rerouteAlternative(std::uint32_t gOutPort) {
  const PortOwner& owner = portOwner_[gOutPort];
  // Host NICs are gated, not rerouted (the NIC port is fixed per message),
  // and a descending output has a unique minimal continuation.
  if (owner.level == 0) return kNil;
  const std::uint32_t upBase = topo_->upPortBase(owner.level);
  if (owner.localPort < upBase) return kNil;
  // The dead output ascends, so this switch is not an ancestor of the
  // destination and *any* live up-port preserves minimality; pick the
  // least-occupied one like resolveAdaptive does.
  const std::uint32_t numUp = topo_->params().w(owner.level + 1);
  const xgft::GlobalNodeId nid = topo_->globalId(owner.level, owner.node);
  const std::uint32_t start = adaptiveRR_[nid]++ % numUp;
  std::uint32_t best = kNil;
  std::uint64_t bestScore = ~std::uint64_t{0};
  for (std::uint32_t i = 0; i < numUp; ++i) {
    const std::uint32_t p = (start + i) % numUp;
    const std::uint32_t gout = globalPort(owner.level, owner.node, upBase + p);
    const PortState& out = ports_[gout];
    if (out.down) continue;
    const std::uint64_t score =
        (static_cast<std::uint64_t>(out.outCount) + out.reserved) * 2 +
        (out.wireBusy ? 1 : 0);
    if (score < bestScore) {
      bestScore = score;
      best = gout;
    }
  }
  return best;
}

void Network::processDeadOutput(std::uint32_t gOutPort) {
  PortState& port = ports_[gOutPort];
  while (port.outHead != kNil) {
    const std::uint32_t seg = segPopFront(port.outHead, port.outTail);
    --port.outCount;
    if (probe_ != nullptr) {
      probe_->onSegmentDequeued(gOutPort, /*input=*/false, port.outCount,
                                now_);
    }
    std::uint32_t alt = kNil;
    if (faultPolicy_ == FaultPolicy::kReroute) {
      alt = rerouteAlternative(gOutPort);
      if (alt != kNil && ports_[alt].outCount + ports_[alt].reserved >=
                             cfg_.outputBufferSegments) {
        alt = kNil;  // The escape hatch is full; strand instead.
      }
    }
    if (alt == kNil) {
      ++stats_.segmentsStranded;
      if (probe_ != nullptr) {
        probe_->onSegmentStranded(gOutPort, segments_[seg].msg, now_);
      }
      dropMessage(segments_[seg].msg);
      freeSegment(seg);
      continue;
    }
    segments_[seg].flags |= kSegEscaped;
    segments_[seg].resolvedOut = alt;
    ++stats_.segmentsRerouted;
    PortState& altPort = ports_[alt];
    segPushBack(altPort.outHead, altPort.outTail, seg);
    ++altPort.outCount;
    stats_.maxOutputQueueDepth =
        std::max(stats_.maxOutputQueueDepth, altPort.outCount);
    if (probe_ != nullptr) {
      probe_->onSegmentRerouted(gOutPort, alt, segments_[seg].msg, now_);
      probe_->onSegmentEnqueued(alt, /*input=*/false, altPort.outCount, now_);
    }
    tryTransmitSwitch(alt);
  }
}

void Network::flushDeadWaiters(std::uint32_t gOutPort) {
  PortState& port = ports_[gOutPort];
  std::uint32_t in = port.waitHead;
  port.waitHead = kNil;
  port.waitTail = kNil;
  while (in != kNil) {
    const std::uint32_t next = waitLink_[in];
    ports_[in].queuedWaiting = false;
    if (probe_ != nullptr) probe_->onInputWoken(in, now_);
    // The woken input's head still resolves to the dead output, so
    // advanceInputTo's fault branch strands or reroutes it.
    wakeInput(in);
    in = next;
  }
}

void Network::strandInputHead(std::uint32_t gInPort) {
  PortState& port = ports_[gInPort];
  const std::uint32_t seg = segPopFront(port.inHead, port.inTail);
  --port.inCount;
  if (probe_ != nullptr) {
    probe_->onSegmentDequeued(gInPort, /*input=*/true, port.inCount, now_);
    probe_->onSegmentStranded(gInPort, segments_[seg].msg, now_);
  }
  ++stats_.segmentsStranded;
  dropMessage(segments_[seg].msg);
  freeSegment(seg);
  returnCredit(port.peer);
  tryAdvanceInput(gInPort);
}

void Network::handleRelease(MsgId msg) {
  Message& m = messages_[msg];
  m.released = true;
  if (probe_ != nullptr) {
    probe_->onMessageReleased(msg, m.src, m.dst, m.bytes, now_);
  }
  if (m.src == m.dst) {
    // Local delivery: never enters the network (Sec. III self-flows).
    m.delivered = true;
    m.deliveredAt = now_;
    ++stats_.messagesDelivered;
    stats_.lastDeliveryNs = std::max(stats_.lastDeliveryNs, now_);
    if (sink_ != nullptr) sink_->onMessageDelivered(msg, now_);
    if (probe_ != nullptr) probe_->onMessageDelivered(msg, now_);
    return;
  }
  const std::uint32_t hostPort = m.hostPort;
  activePushBack(ports_[hostPort], msg);
  tryInjectHost(hostPort);
}

std::uint32_t Network::segmentPayload(const Message& m,
                                      std::uint32_t index) const {
  const Bytes offset = static_cast<Bytes>(index) * cfg_.segmentBytes;
  const Bytes remaining = m.bytes > offset ? m.bytes - offset : 0;
  return static_cast<std::uint32_t>(
      std::min<Bytes>(remaining, cfg_.segmentBytes));
}

std::uint32_t Network::allocSegment(MsgId msg, RouteId route,
                                    std::uint32_t bytes) {
  std::uint32_t idx;
  if (freeSegments_ != kNil) {
    idx = freeSegments_;
    freeSegments_ = segments_[idx].next;
  } else {
    if (segments_.size() >= kNil) {
      throw std::length_error(
          "Network: segment pool exhausted (2^32 - 1 slots)");
    }
    idx = static_cast<std::uint32_t>(segments_.size());
    segments_.emplace_back();
  }
  segments_[idx] = Segment{msg, route, 0, bytes, 0, kNil};
  return idx;
}

void Network::tryInjectHost(std::uint32_t gOutPort) {
  PortState& port = ports_[gOutPort];
  if (faultsSeen_) {
    if (port.down) return;
    // Skip over messages dropped by a fault: their remaining segments are
    // never injected.
    while (port.activeHead != kNil && messages_[port.activeHead].dropped) {
      const MsgId dead = port.activeHead;
      port.activeHead = messages_[dead].nextActive;
      if (port.activeHead == kNil) port.activeTail = kNil;
    }
  }
  if (port.wireBusy || port.credits == 0 || port.activeHead == kNil) return;
  const MsgId msgId = port.activeHead;
  Message& m = messages_[msgId];
  port.activeHead = m.nextActive;
  if (port.activeHead == kNil) port.activeTail = kNil;
  const std::uint32_t payload = segmentPayload(m, m.injectedSegments);
  RouteId route = m.route0;
  if (m.setSize > 1) {
    std::uint32_t pathIdx = 0;
    switch (m.policy) {
      case SprayPolicy::kRoundRobin:
        pathIdx = m.injectedSegments % m.setSize;
        break;
      case SprayPolicy::kRandom:
        pathIdx = static_cast<std::uint32_t>(
            xgft::hashMix(m.spraySeed, msgId, m.injectedSegments) %
            m.setSize);
        break;
    }
    route = routes_.set(m.set)[pathIdx];
  }
  const std::uint32_t seg = allocSegment(msgId, route, payload);
  ++m.injectedSegments;
  ++stats_.segmentsInjected;
  // Round robin: messages with segments left rejoin the tail, so concurrent
  // messages interleave segment by segment (Sec. VI-B).
  if (m.injectedSegments < m.numSegments) activePushBack(port, msgId);
  startTransmission(gOutPort, seg);
}

void Network::startTransmission(std::uint32_t gOutPort, std::uint32_t seg) {
  PortState& port = ports_[gOutPort];
  assert(!port.wireBusy && port.credits > 0);
  port.wireBusy = true;
  --port.credits;
  // Full segments dominate; their serialization time is precomputed (the
  // floating-point flit arithmetic is off the hot path).
  const std::uint32_t payload = segments_[seg].payloadBytes;
  const TimeNs ser = payload == cfg_.segmentBytes
                         ? serFullNs_
                         : cfg_.serializationNs(payload);
  port.busyNs += ser;
  if (probe_ != nullptr) {
    probe_->onWireBusy(gOutPort, segments_[seg].msg, now_, ser);
  }
  schedule(now_ + ser, Kind::kWireFree, gOutPort);
  schedule(now_ + ser + cfg_.linkLatencyNs, Kind::kWireArrive, port.peer,
           seg);
}

void Network::outputDispatch(std::uint32_t gOutPort) {
  if (isHostPort(gOutPort)) {
    tryInjectHost(gOutPort);
  } else {
    tryTransmitSwitch(gOutPort);
  }
}

void Network::handleWireFree(std::uint32_t gOutPort) {
  ports_[gOutPort].wireBusy = false;
  if (probe_ != nullptr) probe_->onWireIdle(gOutPort, now_);
  outputDispatch(gOutPort);
}

void Network::tryTransmitSwitch(std::uint32_t gOutPort) {
  PortState& port = ports_[gOutPort];
  if (port.wireBusy || port.down || port.credits == 0 || port.outHead == kNil)
    return;
  const std::uint32_t seg = segPopFront(port.outHead, port.outTail);
  --port.outCount;
  if (probe_ != nullptr) {
    probe_->onSegmentDequeued(gOutPort, /*input=*/false, port.outCount, now_);
  }
  startTransmission(gOutPort, seg);
  serveWaitingInputs(gOutPort);
}

void Network::handleWireArrive(std::uint32_t gInPort, std::uint32_t seg) {
  Segment& segment = segments_[seg];
  ++segment.hop;
  if (isHostPort(gInPort)) {
    // Arriving at a host means delivery (the descent always ends at the
    // destination; routes are validated or, for adaptive segments,
    // minimal by construction).
    deliverSegment(gInPort, seg);
    return;
  }
  PortState& port = ports_[gInPort];
  segPushBack(port.inHead, port.inTail, seg);
  ++port.inCount;
  stats_.maxInputQueueDepth =
      std::max(stats_.maxInputQueueDepth, port.inCount);
  if (probe_ != nullptr) {
    probe_->onSegmentEnqueued(gInPort, /*input=*/true, port.inCount, now_);
  }
  tryAdvanceInput(gInPort);
}

void Network::deliverSegment(std::uint32_t gInPort, std::uint32_t seg) {
  const MsgId msgId = segments_[seg].msg;
  freeSegment(seg);
  returnCredit(ports_[gInPort].peer);
  ++stats_.segmentsDelivered;
  // In-flight invariant (see the NetworkStats contract).
  assert(stats_.segmentsDelivered <= stats_.segmentsInjected);
  Message& m = messages_[msgId];
  ++m.deliveredSegments;
  // A dropped message never completes, even if its surviving segments all
  // arrive (it lost at least one to a fault).
  if (m.deliveredSegments == m.numSegments && !m.dropped) {
    m.delivered = true;
    m.deliveredAt = now_;
    ++stats_.messagesDelivered;
    stats_.lastDeliveryNs = std::max(stats_.lastDeliveryNs, now_);
    if (sink_ != nullptr) sink_->onMessageDelivered(msgId, now_);
    if (probe_ != nullptr) probe_->onMessageDelivered(msgId, now_);
  }
}

void Network::tryAdvanceInput(std::uint32_t gInPort) {
  PortState& port = ports_[gInPort];
  if (port.transferring || port.inHead == kNil) return;
  const std::uint32_t seg = port.inHead;
  Segment& segment = segments_[seg];
  // Paths store switch tails (no host hop), so the port taken after the
  // segment's hop-th arrival is tail word hop - 1 (hop >= 1 here: it was
  // incremented when the segment reached this input).
  const std::uint32_t out = segAdaptive(segment)
                                ? resolveAdaptive(gInPort, segment)
                                : pathOf(segment)[segment.hop - 1];
  segment.resolvedOut = out;
  advanceInputTo(gInPort, seg, out);
}

void Network::wakeInput(std::uint32_t gInPort) {
  PortState& port = ports_[gInPort];
  if (port.transferring || port.inHead == kNil) return;
  const std::uint32_t seg = port.inHead;
  Segment& segment = segments_[seg];
  // The front segment is unchanged since it blocked (arrivals append, only
  // transfers pop), so a static route's resolved output is still right.
  // Adaptive segments re-pick against current queue occupancies.
  std::uint32_t out = segment.resolvedOut;
  if (segAdaptive(segment)) {
    out = resolveAdaptive(gInPort, segment);
    segment.resolvedOut = out;
  }
  advanceInputTo(gInPort, seg, out);
}

void Network::advanceInputTo(std::uint32_t gInPort, std::uint32_t seg,
                             std::uint32_t out) {
  PortState& port = ports_[gInPort];
  if (ports_[out].down && faultPolicy_ != FaultPolicy::kWait) {
    // Under kWait the segment queues behind the dead output like any full
    // buffer and resumes on restore; otherwise escape or strand it now.
    if (faultPolicy_ == FaultPolicy::kReroute) {
      const std::uint32_t alt = rerouteAlternative(out);
      if (alt != kNil) {
        Segment& segment = segments_[seg];
        segment.flags |= kSegEscaped;
        segment.resolvedOut = alt;
        ++stats_.segmentsRerouted;
        if (probe_ != nullptr) {
          probe_->onSegmentRerouted(out, alt, segment.msg, now_);
        }
        advanceInputTo(gInPort, seg, alt);  // alt is live: no recursion loop.
        return;
      }
    }
    strandInputHead(gInPort);
    return;
  }
  PortState& outPort = ports_[out];
  if (outPort.outCount + outPort.reserved < cfg_.outputBufferSegments) {
    ++outPort.reserved;
    port.transferring = true;
    schedule(now_ + cfg_.switchLatencyNs, Kind::kTransfer, gInPort, seg);
  } else if (!port.queuedWaiting) {
    waitLink_[gInPort] = kNil;
    if (outPort.waitTail == kNil) {
      outPort.waitHead = gInPort;
    } else {
      waitLink_[outPort.waitTail] = gInPort;
    }
    outPort.waitTail = gInPort;
    port.queuedWaiting = true;
    if (probe_ != nullptr) probe_->onInputBlocked(gInPort, out, now_);
  }
}

void Network::handleTransfer(std::uint32_t gInPort, std::uint32_t seg) {
  PortState& port = ports_[gInPort];
  const Segment& segment = segments_[seg];
  const std::uint32_t out = segment.resolvedOut;
  PortState& outPort = ports_[out];
  --outPort.reserved;
  assert(port.inHead == seg);
  const std::uint32_t front = segPopFront(port.inHead, port.inTail);
  (void)front;
  --port.inCount;
  segPushBack(outPort.outHead, outPort.outTail, seg);
  ++outPort.outCount;
  stats_.maxOutputQueueDepth =
      std::max(stats_.maxOutputQueueDepth, outPort.outCount);
  if (probe_ != nullptr) {
    probe_->onSegmentDequeued(gInPort, /*input=*/true, port.inCount, now_);
    probe_->onSegmentEnqueued(out, /*input=*/false, outPort.outCount, now_);
  }
  port.transferring = false;
  returnCredit(port.peer);
  tryAdvanceInput(gInPort);
  tryTransmitSwitch(out);
  // The output may have failed while this transfer was in flight; do not
  // let the segment sit in a dead queue under an eager policy.
  if (outPort.down && faultPolicy_ != FaultPolicy::kWait) {
    processDeadOutput(out);
  }
}

std::uint32_t Network::resolveAdaptive(std::uint32_t gInPort,
                                       const Segment& seg) {
  const PortOwner owner = portOwner_[gInPort];
  const std::uint32_t level = owner.level;
  const Message& m = messages_[seg.msg];
  // Descend as soon as this switch is an ancestor of the destination: all
  // label digits above the switch's level must match the destination's.
  bool ancestor = true;
  for (std::uint32_t i = level + 1; i <= topo_->height(); ++i) {
    if (topo_->digit(level, owner.node, i) != topo_->digit(0, m.dst, i)) {
      ancestor = false;
      break;
    }
  }
  if (ancestor) {
    return globalPort(level, owner.node, topo_->digit(0, m.dst, level));
  }
  // Ascend through the least-occupied up-port; a per-switch rotor breaks
  // ties round-robin so symmetric traffic does not herd onto port 0.
  const std::uint32_t upBase = topo_->params().m(level);
  const std::uint32_t numUp = topo_->params().w(level + 1);
  const xgft::GlobalNodeId nid = topo_->globalId(level, owner.node);
  const std::uint32_t start = adaptiveRR_[nid]++ % numUp;
  std::uint32_t bestPort = 0;
  std::uint64_t bestScore = ~std::uint64_t{0};
  for (std::uint32_t i = 0; i < numUp; ++i) {
    const std::uint32_t p = (start + i) % numUp;
    const std::uint32_t gout = globalPort(level, owner.node, upBase + p);
    const PortState& out = ports_[gout];
    std::uint64_t score =
        (static_cast<std::uint64_t>(out.outCount) + out.reserved) * 2 +
        (out.wireBusy ? 1 : 0);
    // Any live up-port beats every dead one; if all are dead the pick still
    // resolves and advanceInputTo's fault branch decides what happens.
    if (out.down) score |= std::uint64_t{1} << 63;
    if (score < bestScore) {
      bestScore = score;
      bestPort = gout;
    }
  }
  return bestPort;
}

void Network::returnCredit(std::uint32_t gOutPort) {
  ++ports_[gOutPort].credits;
  outputDispatch(gOutPort);
}

WireUtilization wireUtilization(const Network& net, TimeNs spanNs) {
  WireUtilization out;
  if (spanNs == 0) return out;
  double sum = 0.0;
  std::uint64_t used = 0;
  const double span = static_cast<double>(spanNs);
  for (std::uint32_t g = 0; g < net.numGlobalPorts(); ++g) {
    const TimeNs busy = net.wireBusyNs(g);
    if (busy == 0) continue;
    const double util = static_cast<double>(busy) / span;
    out.max = std::max(out.max, util);
    sum += util;
    ++used;
  }
  if (used > 0) out.mean = sum / static_cast<double>(used);
  return out;
}

void Network::serveWaitingInputs(std::uint32_t gOutPort) {
  PortState& outPort = ports_[gOutPort];
  while (outPort.waitHead != kNil &&
         outPort.outCount + outPort.reserved < cfg_.outputBufferSegments) {
    const std::uint32_t gInPort = outPort.waitHead;
    outPort.waitHead = waitLink_[gInPort];
    if (outPort.waitHead == kNil) outPort.waitTail = kNil;
    ports_[gInPort].queuedWaiting = false;
    if (probe_ != nullptr) probe_->onInputWoken(gInPort, now_);
    wakeInput(gInPort);
  }
}

}  // namespace sim
