// config.hpp — Simulator parameters (Sec. VI-B of the paper).
//
// The paper's network model: input/output-buffered switches, 2 Gbit/s
// links, 8-byte flits, 1 KB segments, round-robin interleaving of messages
// at the network adapter.  We clock transmissions in exact flit-derived
// times but move whole segments per event (see DESIGN.md for why this
// preserves the bandwidth-contention behaviour the paper measures).
#pragma once

#include <cstdint>

namespace sim {

/// Simulated time in nanoseconds.
using TimeNs = std::uint64_t;

struct SimConfig {
  /// Link rate in Gbit/s.  2 Gbit/s => an 8-byte flit serializes in 32 ns
  /// and a 1 KB segment in 4096 ns.
  double linkGbps = 2.0;

  /// Segmentation unit of the adapters: messages are chopped into segments
  /// of this size and concurrent messages interleave per segment.
  std::uint32_t segmentBytes = 1024;

  /// Per-segment header (one flit), serialized ahead of the payload.
  std::uint32_t headerBytes = 8;

  /// Switch traversal latency: input port to output queue.
  TimeNs switchLatencyNs = 100;

  /// Wire propagation latency.
  TimeNs linkLatencyNs = 20;

  /// Input buffer capacity per switch/host port, in segments.  This is the
  /// credit count the upstream transmitter sees.
  std::uint32_t inputBufferSegments = 4;

  /// Output buffer capacity per switch port, in segments.
  std::uint32_t outputBufferSegments = 4;

  friend bool operator==(const SimConfig&, const SimConfig&) = default;

  /// Serialization time of one segment carrying @p payloadBytes.
  [[nodiscard]] TimeNs serializationNs(std::uint32_t payloadBytes) const {
    const double bits = 8.0 * (payloadBytes + headerBytes);
    return static_cast<TimeNs>(bits / linkGbps + 0.5);
  }

  /// An effectively contention-free configuration used for the ideal
  /// Full-Crossbar reference: same link speeds, unbounded buffering so the
  /// single-stage switch is purely output-queued (no head-of-line blocking),
  /// zero switching overhead.
  [[nodiscard]] static SimConfig idealCrossbar() {
    SimConfig cfg;
    cfg.switchLatencyNs = 0;
    cfg.linkLatencyNs = 0;
    cfg.inputBufferSegments = 1u << 20;
    cfg.outputBufferSegments = 1u << 20;
    return cfg;
  }
};

}  // namespace sim
