// event_queue.hpp — Flat, deterministic event core for the simulator.
//
// A bucketed calendar queue (Brown, CACM'88) over POD event records: the
// timeline is cut into fixed-width slots (width = 2^log2WidthNs ns) and a
// power-of-two array of buckets holds every pending event in the bucket of
// its slot (slot & mask).  Future buckets are plain unsorted append-only
// vectors, so push is one bounds check and a 24-byte store.  When the
// cursor reaches a slot, that slot's events are extracted once into the
// `cur_` run, sorted by the total order (t, tag), and then served by a
// bump cursor — pops are a compare and an index increment.  Events pushed
// *into the slot currently being served* (schedule-at-now, zero-latency
// hops) are sorted-inserted into the live run; their insertion point is at
// or after the cursor because simulated time never runs backwards, and at
// the end of any equal-time group because `tag` grows monotonically — the
// common burst case appends, it does not shift.
//
// Two workload adaptations, both pure constant-tuning (the service order
// is the same total order either way):
//
//  * Small mode.  A simulation paced by a single saturated link keeps only
//    a handful of events pending (the calendar's slot machinery is all
//    overhead there), so below kSmallEnter events the queue degenerates to
//    one descending-sorted array: pop is a pop_back, push a short memmove.
//    Hysteresis (kSmallExit) keeps migrations rare.
//  * Width adaptation.  When empty-slot probes dominate pops, events are
//    far sparser than the slot width and the calendar quadruples its slot
//    width and re-buckets.
//
// Determinism is the contract (DESIGN.md §1/§7): `tag` packs a
// monotonically increasing insertion sequence number above the 3-bit event
// kind, giving a strict total order (t, seq) — equal-time events pop in
// exactly insertion order, bit-for-bit reproducing the std::priority_queue
// semantics this structure replaced.
//
// Sparse regions cost one empty-bucket probe per slot; after a fruitless
// full lap the cursor jumps straight to the earliest pending slot.  A push
// earlier than the cursor (legal: schedule-after-a-blocked-run(until))
// returns the unserved run to its bucket and rewinds — rare and O(run).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace sim {

/// One pending event: 24 bytes, trivially copyable, no indirection.
struct EventRecord {
  TimeNs t = 0;
  std::uint64_t tag = 0;  ///< (insertion seq << 3) | kind: orders ties.
  std::uint32_t a = 0;    ///< Port / message / callback-slot index.
  std::uint32_t seg = 0;  ///< Segment-pool index where applicable.

  [[nodiscard]] std::uint8_t kind() const {
    return static_cast<std::uint8_t>(tag & 7u);
  }
};

class EventQueue {
 public:
  /// @p log2WidthNs: log2 of the initial bucket width in nanoseconds.
  /// 256 ns suits the simulator's event spacing (20–4128 ns deltas); any
  /// value is correct, the width only shifts constants.  @p initialBuckets
  /// must be a power of two; the calendar doubles itself whenever occupancy
  /// exceeds kGrowOccupancy events per bucket.
  explicit EventQueue(std::uint32_t log2WidthNs = 8,
                      std::size_t initialBuckets = 256)
      : log2Width_(log2WidthNs), buckets_(initialBuckets) {}

  void push(TimeNs t, std::uint8_t kind, std::uint32_t a, std::uint32_t seg) {
    assert(kind < 8 && "EventQueue: kind must fit the 3-bit tag field");
    const EventRecord e{t, (seq_++ << 3) | kind, a, seg};
    ++size_;
    if (smallMode_) {
      if (size_ <= kSmallExit) {
        // Descending-sorted array: later events sit nearer the front.
        const auto it =
            std::upper_bound(small_.begin(), small_.end(), e, Later{});
        small_.insert(it, e);
        return;
      }
      migrateToCalendar();
    }
    const std::uint64_t slot = slotOf(t);
    if (slot == curSlot_ && draining_) {
      // Into the live run: keep it sorted.  The insertion point is >=
      // cursor_ (time is monotone) and after every equal-time entry (tag is
      // the largest yet), so bursts at one instant append in O(1).
      const auto it = std::upper_bound(cur_.begin() + cursor_, cur_.end(), e,
                                       Earlier{});
      cur_.insert(it, e);
      return;
    }
    if (slot < curSlot_) rewindTo(slot);
    if (size_ >= buckets_.size() * kGrowOccupancy &&
        buckets_.size() < kMaxBuckets) {
      grow();
    }
    buckets_[slot & mask()].push_back(e);
  }

  /// Extracts the earliest event — strict (t, insertion-seq) order — into
  /// @p out if its time is <= @p until.  Returns false (and removes
  /// nothing) when the queue is empty or the earliest event is later.
  [[nodiscard]] bool popUntil(TimeNs until, EventRecord& out) {
    if (smallMode_) {
      if (small_.empty() || small_.back().t > until) return false;
      out = small_.back();
      small_.pop_back();
      --size_;
      return true;
    }
    std::size_t probed = 0;
    for (;;) {
      if (draining_) {
        if (cursor_ < cur_.size()) {
          // Sorted run + slot partition order make this the global minimum.
          if (cur_[cursor_].t > until) return false;
          out = cur_[cursor_++];
          --size_;
          ++pops_;
          return true;
        }
        draining_ = false;
        cur_.clear();
        cursor_ = 0;
        ++curSlot_;
        if (size_ <= kSmallEnter) {
          migrateToSmall();
          if (small_.empty() || small_.back().t > until) return false;
          out = small_.back();
          small_.pop_back();
          --size_;
          return true;
        }
        if (idleProbes_ + pops_ >= kAdaptWindow) maybeWiden();
      }
      if (size_ == 0) return false;
      std::vector<EventRecord>& b = buckets_[curSlot_ & mask()];
      if (!b.empty()) {
        // Extract this slot's events (later laps stay) and sort them once.
        std::size_t keep = 0;
        for (const EventRecord& e : b) {
          if (slotOf(e.t) == curSlot_) {
            cur_.push_back(e);
          } else {
            b[keep++] = e;
          }
        }
        b.resize(keep);
        if (!cur_.empty()) {
          if (cur_.size() > 1) std::sort(cur_.begin(), cur_.end(), Earlier{});
          draining_ = true;
          continue;
        }
      }
      ++curSlot_;
      ++idleProbes_;
      if (++probed > buckets_.size()) {
        // A whole lap of empty slots: jump to the earliest pending slot.
        curSlot_ = earliestSlot();
        probed = 0;
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t numBuckets() const { return buckets_.size(); }

 private:
  static constexpr std::size_t kGrowOccupancy = 2;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr std::size_t kSmallEnter = 8;
  static constexpr std::size_t kSmallExit = 64;
  static constexpr std::uint64_t kAdaptWindow = 512;
  static constexpr std::uint32_t kMaxLog2Width = 20;

  /// The (t, tag) total order.
  struct Earlier {
    bool operator()(const EventRecord& a, const EventRecord& b) const {
      if (a.t != b.t) return a.t < b.t;
      return a.tag < b.tag;
    }
  };
  /// Inverse order: sorts descending, so the earliest event is at back().
  struct Later {
    bool operator()(const EventRecord& a, const EventRecord& b) const {
      return Earlier{}(b, a);
    }
  };

  [[nodiscard]] std::uint64_t slotOf(TimeNs t) const { return t >> log2Width_; }
  [[nodiscard]] std::uint64_t mask() const { return buckets_.size() - 1; }

  [[nodiscard]] std::uint64_t earliestSlot() const {
    std::uint64_t best = ~std::uint64_t{0};
    for (const std::vector<EventRecord>& b : buckets_) {
      for (const EventRecord& e : b) best = std::min(best, slotOf(e.t));
    }
    return best;
  }

  /// Returns the unserved tail of the live run to its bucket and moves the
  /// cursor back to @p slot (a push before the current slot — only possible
  /// after a blocked run(until), never on the hot path).
  void rewindTo(std::uint64_t slot) {
    if (draining_) {
      std::vector<EventRecord>& b = buckets_[curSlot_ & mask()];
      b.insert(b.end(), cur_.begin() + cursor_, cur_.end());
      cur_.clear();
      cursor_ = 0;
      draining_ = false;
    }
    curSlot_ = slot;
  }

  /// Spills the sorted array into the calendar (the queue outgrew small
  /// mode).  The cursor restarts at the earliest pending slot.
  void migrateToCalendar() {
    smallMode_ = false;
    draining_ = false;
    if (small_.empty()) return;
    curSlot_ = slotOf(small_.back().t);
    for (const EventRecord& e : small_) {
      buckets_[slotOf(e.t) & mask()].push_back(e);
    }
    small_.clear();
  }

  /// Collapses the nearly-drained calendar into the sorted array.  O(all
  /// buckets); the kSmallEnter/kSmallExit hysteresis keeps this rare.
  void migrateToSmall() {
    smallMode_ = true;
    small_.clear();
    for (std::vector<EventRecord>& b : buckets_) {
      small_.insert(small_.end(), b.begin(), b.end());
      b.clear();
    }
    std::sort(small_.begin(), small_.end(), Later{});
    cur_.clear();
    cursor_ = 0;
    draining_ = false;
    idleProbes_ = 0;
    pops_ = 0;
  }

  void grow() {
    std::vector<std::vector<EventRecord>> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, {});
    redistribute(old);
  }

  /// Widens the slots x4 when empty probes dominate pops — the events are
  /// far sparser than the slot width, so pay bigger sorted runs to skip
  /// less.  Called only between runs (cur_ empty), so remapping the cursor
  /// is a plain floor division and no event is skipped.
  void maybeWiden() {
    if (idleProbes_ > pops_ * 2 && log2Width_ + 2 <= kMaxLog2Width) {
      log2Width_ += 2;
      curSlot_ >>= 2;
      std::vector<std::vector<EventRecord>> old = std::move(buckets_);
      buckets_.assign(old.size(), {});
      redistribute(old);
    }
    idleProbes_ = 0;
    pops_ = 0;
  }

  void redistribute(std::vector<std::vector<EventRecord>>& old) {
    for (std::vector<EventRecord>& b : old) {
      for (const EventRecord& e : b) {
        buckets_[slotOf(e.t) & mask()].push_back(e);
      }
    }
  }

  std::uint32_t log2Width_;
  std::vector<std::vector<EventRecord>> buckets_;
  std::vector<EventRecord> cur_;  ///< Sorted run of the slot being served.
  std::size_t cursor_ = 0;        ///< Next unserved entry in cur_.
  bool draining_ = false;         ///< cur_ holds curSlot_'s events.
  std::vector<EventRecord> small_;  ///< Small mode: descending-sorted array.
  bool smallMode_ = true;           ///< Start small; most tests stay there.
  std::uint64_t curSlot_ = 0;
  std::uint64_t seq_ = 0;  ///< 61 usable bits — never wraps in practice.
  std::size_t size_ = 0;
  std::uint64_t pops_ = 0;        ///< Events served in the adapt window.
  std::uint64_t idleProbes_ = 0;  ///< Empty slots probed in the window.
};

}  // namespace sim
