// route_store.hpp — Interned message routes in flat arenas.
//
// Every message used to carry its own std::vector<std::vector<uint32_t>>
// copy of the global-port path(s) it traverses — one to two heap
// allocations per message on the replayer's hot path, and identical paths
// (every message of a (src, dst) pair, every segment of a sprayed set)
// duplicated thousands of times.  The RouteStore is the slot-pool
// counterpart for routes: paths live once in one contiguous uint32 arena,
// deduplicated by content, and messages/segments refer to them by index —
//
//   path  (RouteId):    one global-output-port sequence, switch tail only —
//                       the hops *after* the source host's NIC port,
//   set (RouteSetId):   the source NIC port all candidates leave through,
//                       then an ordered list of RouteIds (a multipath
//                       message's candidate routes; order matters for
//                       spraying).
//
// Paths deliberately exclude the first (host) hop: that port is unique per
// source, so storing it inside the path would defeat deduplication across
// the sources of an interval-compressed forwarding table, whose switch
// tails are bit-identical within a leaf group.  It lives once per *set*
// instead — word 0 of the set slice, so it participates in content
// interning (equal route lists leaving through different NIC ports stay
// distinct sets) — and messages cache the expanded global port.
//
// Ids are dense uint32 handles; spans stay valid for the store's lifetime
// (arenas only grow).  Exceeding the 32-bit arena or id space throws
// std::length_error instead of silently wrapping (the overflow-hardening
// contract of sim::Network).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace sim {

using RouteId = std::uint32_t;
using RouteSetId = std::uint32_t;

class RouteStore {
 public:
  /// Reserved "no route set" handle (messages delivered locally).
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Reserved "pair has no route" handle: a resolver returns this when the
  /// active forwarding table marks the pair unreachable (degraded-topology
  /// partitions).  Never produced by interning; injection layers must
  /// refuse such messages (InjectionOptions::onDrop), not enqueue them.
  static constexpr std::uint32_t kUnroutable = 0xfffffffeu;

  /// Interns one switch-tail global-port path (no host hop; empty for
  /// adaptive messages, whose switches pick ports on the fly); returns the
  /// id of the existing copy when an identical path was interned before.
  [[nodiscard]] RouteId internPath(std::span<const std::uint32_t> gports);

  /// Interns an ordered route-id list (deduplicated like paths) together
  /// with @p firstUp, the local NIC port every candidate leaves the source
  /// host through.
  [[nodiscard]] RouteSetId internSet(std::uint32_t firstUp,
                                     std::span<const RouteId> routes);

  [[nodiscard]] std::span<const std::uint32_t> path(RouteId id) const {
    const Slice s = paths_[id];
    return {pathData_.data() + s.off, s.len};
  }
  [[nodiscard]] std::span<const RouteId> set(RouteSetId id) const {
    const Slice s = sets_[id];
    return {setData_.data() + s.off + 1, s.len - 1};
  }
  /// The local source-NIC port of every route in the set.
  [[nodiscard]] std::uint32_t setFirstUp(RouteSetId id) const {
    return setData_[sets_[id].off];
  }

  [[nodiscard]] std::size_t numPaths() const { return paths_.size(); }
  [[nodiscard]] std::size_t numSets() const { return sets_.size(); }
  /// Total interned uint32 entries (arena footprint, for reports).
  [[nodiscard]] std::size_t arenaEntries() const {
    return pathData_.size() + setData_.size();
  }

 private:
  struct Slice {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };

  /// Generic content-hashed interning into (data, slices, index).
  static std::uint32_t intern(std::span<const std::uint32_t> value,
                              std::vector<std::uint32_t>& data,
                              std::vector<Slice>& slices,
                              std::unordered_map<std::uint64_t,
                                                 std::vector<std::uint32_t>>&
                                  index,
                              const char* what);

  std::vector<std::uint32_t> pathData_;
  std::vector<Slice> paths_;
  std::vector<std::uint32_t> setData_;
  std::vector<Slice> sets_;
  std::vector<std::uint32_t> scratch_;  ///< internSet staging buffer.
  // Content hash -> candidate ids (same-hash collisions are resolved by
  // comparing the stored bytes).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> pathIndex_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> setIndex_;
};

}  // namespace sim
