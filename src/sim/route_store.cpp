#include "sim/route_store.hpp"

#include <stdexcept>
#include <string>

#include "xgft/rng.hpp"

namespace sim {

namespace {

std::uint64_t hashSpan(std::span<const std::uint32_t> v) {
  // SplitMix chaining (xgft/rng.hpp): platform-independent, and the length
  // is folded in so a prefix never collides with its extension by design.
  std::uint64_t h = xgft::hashMix(0x9e3779b97f4a7c15ULL, v.size());
  for (const std::uint32_t x : v) h = xgft::hashMix(h, x);
  return h;
}

bool equalsSlice(std::span<const std::uint32_t> value,
                 const std::vector<std::uint32_t>& data, std::uint32_t off,
                 std::uint32_t len) {
  if (value.size() != len) return false;
  for (std::uint32_t i = 0; i < len; ++i) {
    if (data[off + i] != value[i]) return false;
  }
  return true;
}

}  // namespace

std::uint32_t RouteStore::intern(
    std::span<const std::uint32_t> value, std::vector<std::uint32_t>& data,
    std::vector<Slice>& slices,
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>& index,
    const char* what) {
  const std::uint64_t h = hashSpan(value);
  std::vector<std::uint32_t>& candidates = index[h];
  for (const std::uint32_t id : candidates) {
    const Slice s = slices[id];
    if (equalsSlice(value, data, s.off, s.len)) return id;
  }
  // New content: append to the arena, with checked 32-bit bounds instead of
  // a silent wrap on absurd scales.
  if (data.size() + value.size() > 0xffffffffull) {
    throw std::length_error(std::string("RouteStore: ") + what +
                            " arena exceeds 2^32 entries — shard the "
                            "workload across simulations");
  }
  if (slices.size() >= kNone) {
    throw std::length_error(std::string("RouteStore: ") + what +
                            " id space exhausted (2^32 - 1 entries)");
  }
  const Slice s{static_cast<std::uint32_t>(data.size()),
                static_cast<std::uint32_t>(value.size())};
  data.insert(data.end(), value.begin(), value.end());
  const std::uint32_t id = static_cast<std::uint32_t>(slices.size());
  slices.push_back(s);
  candidates.push_back(id);
  return id;
}

RouteId RouteStore::internPath(std::span<const std::uint32_t> gports) {
  return intern(gports, pathData_, paths_, pathIndex_, "path");
}

RouteSetId RouteStore::internSet(std::uint32_t firstUp,
                                 std::span<const RouteId> routes) {
  scratch_.assign(1, firstUp);
  scratch_.insert(scratch_.end(), routes.begin(), routes.end());
  return intern(scratch_, setData_, sets_, setIndex_, "route-set");
}

}  // namespace sim
