// inject.hpp — Wiring a FaultPlan into a live simulation.
//
// installFaultPlan() is the one call sites use to make a network honour a
// failure plan:
//
//  1. the network's FaultPolicy is set (what happens to segments already
//     committed to a dead port — wait / strand / reroute);
//  2. every LinkFault is scheduled on the calendar queue
//     (kLinkDown/kLinkUp events, FaultPlan::scheduleOn);
//  3. when a resolver is supplied, each transition instant additionally
//     gets a callback that recompiles the scheme's forwarding tables
//     against the then-failed link set (compileDegraded) and swaps them
//     into the resolver — messages injected after the transition route
//     around the failures, while in-flight route sets are immutable
//     snapshots and keep their old paths (that is what the reroute policy
//     is for).
//
// Table swaps happen after the same-instant link events (insertion order
// at equal timestamps), so a recompile always sees the network state it
// describes.  Identical failed-link sets share one compiled table.
//
// The returned handle owns the recompiled tables; keep it alive until the
// run completes (the resolver holds raw pointers into it).
#pragma once

#include <cstdint>
#include <memory>

#include "fault/degraded.hpp"
#include "fault/plan.hpp"
#include "routing/router.hpp"
#include "sim/network.hpp"
#include "trace/route_resolver.hpp"

namespace fault {

struct InstallOptions {
  /// Applied via sim::Network::setFaultPolicy before anything is scheduled.
  sim::FaultPolicy policy = sim::FaultPolicy::kReroute;

  /// What a recompile does with partitioned pairs.  kThrow aborts the run
  /// from inside the recompile callback (the error surfaces out of
  /// Network::run); kDrop marks them unroutable so injection refuses and
  /// counts them.
  UnreachablePolicy unreachable = UnreachablePolicy::kDrop;

  /// Worker threads per degraded-table compile (0 = hardware concurrency).
  std::uint32_t compileThreads = 1;

  /// Skip the t = 0 table swap (transitions > 0 still recompile).  Engines
  /// that memoize the static degraded table across jobs pass it to the run
  /// directly and set this false.
  bool applyStatic = true;
};

/// Installs @p plan on @p net as described above.  @p resolver may be null:
/// link events still fire and the fault policy still applies, but no table
/// recompilation happens (per-segment schemes, or closed-loop runs that
/// pre-compiled a static degraded table).  When @p resolver is non-null it
/// must be in compiled mode and @p router must be the scheme it resolves
/// for.  Returns the keep-alive handle owning every recompiled table.
std::shared_ptr<void> installFaultPlan(
    sim::Network& net, const FaultPlan& plan,
    std::shared_ptr<const routing::Router> router,
    trace::RouteSetResolver* resolver, const InstallOptions& opt = {});

}  // namespace fault
