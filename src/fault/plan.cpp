#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/network.hpp"
#include "xgft/rng.hpp"

namespace fault {

namespace {

double argF64(const core::SpecName& spec, std::size_t i) {
  if (i >= spec.args.size()) {
    throw std::invalid_argument("fault model '" + spec.full +
                                "': missing argument " + std::to_string(i + 1));
  }
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(spec.args[i], &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != spec.args[i].size()) {
    throw std::invalid_argument("fault model '" + spec.full +
                                "': malformed number '" + spec.args[i] + "'");
  }
  return value;
}

std::uint64_t argU64(const core::SpecName& spec, std::size_t i) {
  if (i >= spec.args.size()) {
    throw std::invalid_argument("fault model '" + spec.full +
                                "': missing argument " + std::to_string(i + 1));
  }
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(spec.args[i], &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != spec.args[i].size()) {
    throw std::invalid_argument("fault model '" + spec.full +
                                "': malformed integer '" + spec.args[i] + "'");
  }
  return value;
}

double percentArg(const core::SpecName& spec, std::size_t i) {
  const double pct = argF64(spec, i);
  if (!(pct >= 0.0 && pct <= 100.0)) {
    throw std::invalid_argument("fault model '" + spec.full +
                                "': percentage must be in [0, 100]");
  }
  return pct;
}

/// Seeded selection of round(pct% of |pool|) elements: Fisher–Yates under
/// the shared SplitMix64 stream, then sorted for a stable plan order.
template <typename T>
std::vector<T> pickPct(std::vector<T> pool, double pct, std::uint64_t seed) {
  const std::size_t k = static_cast<std::size_t>(
      std::llround(pct / 100.0 * static_cast<double>(pool.size())));
  xgft::Rng rng(seed);
  rng.shuffle(pool);
  pool.resize(std::min(k, pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

/// All switch-to-switch links (child endpoint at level >= 1).  Host
/// up-links are excluded: failing them removes hosts, not path diversity,
/// which is a different experiment (use switches:PCT or timed: for that).
std::vector<xgft::LinkId> fabricLinks(const xgft::Topology& topo) {
  std::vector<xgft::LinkId> out;
  for (std::uint32_t l = 1; l < topo.height(); ++l) {
    for (xgft::NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      for (std::uint32_t p = 0; p < topo.params().w(l + 1); ++p) {
        out.push_back(topo.upLink(l, idx, p));
      }
    }
  }
  return out;
}

std::vector<LinkFault> staticFaults(std::vector<xgft::LinkId> links) {
  std::vector<LinkFault> out;
  out.reserve(links.size());
  for (const xgft::LinkId link : links) {
    out.push_back(LinkFault{link, 0, kNeverNs});
  }
  return out;
}

/// Every link incident to the level-`level` switch @p idx.
void incidentLinks(const xgft::Topology& topo, std::uint32_t level,
                   xgft::NodeIndex idx, std::vector<xgft::LinkId>& out) {
  for (std::uint32_t c = 0; c < topo.params().m(level); ++c) {
    out.push_back(topo.downLink(level, idx, c));
  }
  if (level < topo.height()) {
    for (std::uint32_t p = 0; p < topo.params().w(level + 1); ++p) {
      out.push_back(topo.upLink(level, idx, p));
    }
  }
}

void registerBuiltinPlans(core::Registry<PlanInfo>& reg) {
  reg.add("none",
          PlanInfo{"none", "no failures (the healthy baseline)", false,
                   [](const core::SpecName& spec, const xgft::Topology&,
                      std::uint64_t) -> std::vector<LinkFault> {
                     spec.requireArity(0);
                     return {};
                   }});

  reg.add("links",
          PlanInfo{
              "links:PCT",
              "fail PCT% of the switch-to-switch links, seed-selected",
              true,
              [](const core::SpecName& spec, const xgft::Topology& topo,
                 std::uint64_t seed) {
                spec.requireArity(1);
                return staticFaults(
                    pickPct(fabricLinks(topo), percentArg(spec, 0), seed));
              }});

  reg.add("switches",
          PlanInfo{
              "switches:PCT",
              "fail every link of PCT% of the switches, seed-selected",
              true,
              [](const core::SpecName& spec, const xgft::Topology& topo,
                 std::uint64_t seed) {
                spec.requireArity(1);
                std::vector<std::pair<std::uint32_t, xgft::NodeIndex>> pool;
                for (std::uint32_t l = 1; l <= topo.height(); ++l) {
                  for (xgft::NodeIndex i = 0; i < topo.nodesAtLevel(l); ++i) {
                    pool.emplace_back(l, i);
                  }
                }
                std::vector<xgft::LinkId> links;
                for (const auto& [l, i] :
                     pickPct(std::move(pool), percentArg(spec, 0), seed)) {
                  incidentLinks(topo, l, i, links);
                }
                // Two dead switches can share a link.
                std::sort(links.begin(), links.end());
                links.erase(std::unique(links.begin(), links.end()),
                            links.end());
                return staticFaults(std::move(links));
              }});

  reg.add("uplinks-of",
          PlanInfo{
              "uplinks-of:LEVEL:INDEX",
              "fail all up-links of one switch (siblings keep subtrees "
              "reachable when w > 1)",
              false,
              [](const core::SpecName& spec, const xgft::Topology& topo,
                 std::uint64_t) {
                spec.requireArity(2);
                const std::uint32_t level = spec.argU32(0);
                const std::uint64_t index = argU64(spec, 1);
                if (level < 1 || level > topo.height()) {
                  throw std::invalid_argument(
                      "fault model '" + spec.full + "': level " +
                      std::to_string(level) + " is not a switch level (1.." +
                      std::to_string(topo.height()) + ")");
                }
                if (level == topo.height()) {
                  throw std::invalid_argument("fault model '" + spec.full +
                                              "': a level-" +
                                              std::to_string(level) +
                                              " (top) switch has no up-links");
                }
                if (index >= topo.nodesAtLevel(level)) {
                  throw std::invalid_argument(
                      "fault model '" + spec.full + "': switch index " +
                      std::to_string(index) + " out of range (level has " +
                      std::to_string(topo.nodesAtLevel(level)) + ")");
                }
                std::vector<xgft::LinkId> links;
                for (std::uint32_t p = 0; p < topo.params().w(level + 1);
                     ++p) {
                  links.push_back(topo.upLink(
                      level, static_cast<xgft::NodeIndex>(index), p));
                }
                return staticFaults(std::move(links));
              }});

  reg.add("timed",
          PlanInfo{
              "timed:LINK:DOWN_NS[:UP_NS]",
              "fail one specific link mid-run, optionally restoring it",
              false,
              [](const core::SpecName& spec, const xgft::Topology&,
                 std::uint64_t) {
                if (spec.args.size() != 2 && spec.args.size() != 3) {
                  throw std::invalid_argument(
                      "fault model '" + spec.full +
                      "': expected timed:LINK:DOWN_NS[:UP_NS]");
                }
                LinkFault f;
                f.link = argU64(spec, 0);
                f.downNs = argU64(spec, 1);
                if (spec.args.size() == 3) {
                  f.upNs = argU64(spec, 2);
                  if (f.upNs <= f.downNs) {
                    throw std::invalid_argument(
                        "fault model '" + spec.full +
                        "': restore time must be after the fail time");
                  }
                }
                return std::vector<LinkFault>{f};
              }});
}

}  // namespace

core::Registry<PlanInfo>& planRegistry() {
  return core::populatedRegistry<PlanInfo, registerBuiltinPlans>(
      "fault model");
}

bool FaultPlan::hasTimed() const {
  for (const LinkFault& f : faults) {
    if (f.downNs > 0 || f.upNs != kNeverNs) return true;
  }
  return false;
}

std::vector<xgft::LinkId> FaultPlan::failedAt(sim::TimeNs t) const {
  std::vector<xgft::LinkId> out;
  for (const LinkFault& f : faults) {
    if (f.downNs <= t && t < f.upNs) out.push_back(f.link);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<sim::TimeNs> FaultPlan::transitionTimes() const {
  std::vector<sim::TimeNs> out;
  for (const LinkFault& f : faults) {
    if (f.downNs > 0) out.push_back(f.downNs);
    if (f.upNs != kNeverNs) out.push_back(f.upNs);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void FaultPlan::validate(const xgft::Topology& topo) const {
  for (const LinkFault& f : faults) {
    if (f.link >= topo.numLinks()) {
      throw std::invalid_argument(
          "fault plan '" + spec + "': link " + std::to_string(f.link) +
          " out of range (topology has " + std::to_string(topo.numLinks()) +
          " links)");
    }
    if (f.upNs <= f.downNs) {
      throw std::invalid_argument("fault plan '" + spec + "': link " +
                                  std::to_string(f.link) +
                                  " restores before it fails");
    }
  }
}

void FaultPlan::scheduleOn(sim::Network& net) const {
  for (const LinkFault& f : faults) {
    net.scheduleLinkDown(f.downNs, f.link);
    if (f.upNs != kNeverNs) net.scheduleLinkUp(f.upNs, f.link);
  }
}

FaultPlan makeFaultPlan(const std::string& spec, const xgft::Topology& topo,
                        std::uint64_t seed) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  const core::SpecName name = core::splitSpec(spec);
  const PlanInfo& info = planRegistry().at(name.name);
  plan.spec = core::joinSpec(planRegistry().canonical(name.name), name.args)
                  .full;
  plan.faults = info.make(name, topo, seed);
  plan.validate(topo);
  return plan;
}

}  // namespace fault
