// degraded.hpp — Routing on a topology with failed links.
//
// A DegradedTopology is a read-only view of a Topology plus a failed-link
// mask; it does not rewrite the digit algebra (the wires still exist
// physically — they are just down), so every (level, index, port)
// computation stays valid and only route *selection* changes.
//
// compileDegraded() rebuilds a scheme's flat forwarding tables
// (core::CompiledRoutes) around the mask: each pair keeps its healthy route
// when unaffected, otherwise the minimal up/down alternatives are scanned
// in NCA order (xgft::routeViaNca) for the first one avoiding every failed
// link.  Pairs with no surviving minimal path are "unreachable" — reported
// explicitly per UnreachablePolicy, never silently dropped and never a
// hang:
//
//  * kThrow — compilation fails with the offending pair (closed-loop
//    campaigns, where a lost message would stall the phase barrier).
//  * kDrop  — the pair compiles to an empty (unroutable) entry; the
//    resolver maps it to RouteSetResolver::kUnroutable and the injection
//    layer counts the refused messages (open-loop campaigns).
//
// Only table-mode schemes (core::RouteMode::kTable) can be recompiled; the
// per-segment modes (adaptive, spray) pick ports inside the simulator and
// instead honour faults through sim::FaultPolicy.  requireDegradable()
// enforces this with the uniform registry-style error.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/compiled_routes.hpp"
#include "core/scenario.hpp"
#include "fault/plan.hpp"
#include "routing/router.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace fault {

/// Failed-link view over a Topology.  Immutable after construction; the
/// topology must outlive it.
class DegradedTopology {
 public:
  /// Throws std::invalid_argument on out-of-range link ids.
  DegradedTopology(const xgft::Topology& topo,
                   std::span<const xgft::LinkId> failedLinks);

  [[nodiscard]] const xgft::Topology& base() const { return *topo_; }
  [[nodiscard]] bool linkFailed(xgft::LinkId link) const {
    return failed_[link] != 0;
  }
  [[nodiscard]] std::uint64_t numFailed() const { return numFailed_; }

  /// Does route @p r from @p s to @p d cross any failed link?
  [[nodiscard]] bool routeBlocked(xgft::NodeIndex s, xgft::NodeIndex d,
                                  const xgft::Route& r) const;

 private:
  const xgft::Topology* topo_;
  std::vector<std::uint8_t> failed_;  ///< Indexed by LinkId.
  std::uint64_t numFailed_ = 0;
};

/// What compileDegraded does with a pair that has no surviving minimal
/// path.
enum class UnreachablePolicy : std::uint8_t { kThrow, kDrop };

/// A recompiled forwarding table plus the pairs it could not route
/// (non-empty only under UnreachablePolicy::kDrop; sorted by (src, dst)).
struct DegradedRoutes {
  std::shared_ptr<const core::CompiledRoutes> table;
  std::vector<std::pair<xgft::NodeIndex, xgft::NodeIndex>> unreachable;
};

/// Recompiles @p router's forwarding tables around @p degraded's failed
/// links (see the header comment for the pair-by-pair rules).  Deterministic
/// for any @p threads.  Throws std::invalid_argument for unreachable pairs
/// under kThrow, and propagates the router's own errors.  @p layout picks
/// the table representation exactly as for CompiledRoutes::compile();
/// degraded tables always compile eagerly (the degraded view is not kept
/// alive by the table), so lazy chunking does not apply.
[[nodiscard]] DegradedRoutes compileDegraded(
    std::shared_ptr<const routing::Router> router,
    const DegradedTopology& degraded, UnreachablePolicy policy,
    std::uint32_t threads = 1,
    core::TableLayout layout = core::TableLayout::kAuto);

/// Checks that the scheme @p routing can route on a degraded view (table
/// mode).  Returns its SchemeInfo; throws std::invalid_argument in the
/// registry-error shape, listing the degradable schemes, otherwise.
const core::SchemeInfo& requireDegradable(const std::string& routing);

}  // namespace fault
