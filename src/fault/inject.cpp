#include "fault/inject.hpp"

#include <map>
#include <utility>
#include <vector>

namespace fault {

namespace {

/// Owns every table compiled for the plan, keyed by failed-link set so
/// repeated sets (a link failing, restoring, failing again) share one
/// compile.  The resolver holds raw pointers into the values, which is why
/// the caller keeps the handle alive for the whole run.
struct InstalledState {
  std::map<std::vector<xgft::LinkId>,
           std::shared_ptr<const core::CompiledRoutes>>
      tables;
};

}  // namespace

std::shared_ptr<void> installFaultPlan(
    sim::Network& net, const FaultPlan& plan,
    std::shared_ptr<const routing::Router> router,
    trace::RouteSetResolver* resolver, const InstallOptions& opt) {
  net.setFaultPolicy(opt.policy);
  auto state = std::make_shared<InstalledState>();
  if (plan.empty()) return state;

  plan.scheduleOn(net);
  if (resolver == nullptr) return state;

  const auto tableFor =
      [state, router, &net,
       opt](std::vector<xgft::LinkId> failed) -> const core::CompiledRoutes* {
    auto it = state->tables.find(failed);
    if (it == state->tables.end()) {
      const DegradedTopology view(net.topology(), failed);
      it = state->tables
               .emplace(std::move(failed),
                        compileDegraded(router, view, opt.unreachable,
                                        opt.compileThreads)
                            .table)
               .first;
    }
    return it->second.get();
  };

  if (opt.applyStatic) {
    const std::vector<xgft::LinkId> atStart = plan.failedAt(0);
    if (!atStart.empty()) resolver->setCompiled(tableFor(atStart));
  }
  // Scheduled after scheduleOn's link events, so at an equal instant the
  // swap runs once the links have actually transitioned.  The failed set
  // at each transition is precomputed (it is a pure function of the plan),
  // so the callbacks do not reference the caller's plan object.
  for (const sim::TimeNs t : plan.transitionTimes()) {
    net.scheduleCallback(t, [resolver, tableFor,
                             failed = plan.failedAt(t)] {
      resolver->setCompiled(tableFor(failed));
    });
  }
  return state;
}

}  // namespace fault
