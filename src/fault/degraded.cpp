#include "fault/degraded.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"

namespace fault {

namespace {

/// Unreachable pairs reported by the compile workers.  Guarded: workers
/// for different source rows may discover unreachable pairs concurrently.
struct UnreachableSink {
  core::Mutex mu;
  std::vector<std::pair<xgft::NodeIndex, xgft::NodeIndex>> pairs
      XGFT_GUARDED_BY(mu);

  void add(xgft::NodeIndex s, xgft::NodeIndex d) {
    core::LockGuard lock(mu);
    pairs.emplace_back(s, d);
  }
  [[nodiscard]] std::vector<std::pair<xgft::NodeIndex, xgft::NodeIndex>>
  takeSorted() {
    core::LockGuard lock(mu);
    std::sort(pairs.begin(), pairs.end());
    return std::move(pairs);
  }
};

}  // namespace

DegradedTopology::DegradedTopology(const xgft::Topology& topo,
                                   std::span<const xgft::LinkId> failedLinks)
    : topo_(&topo), failed_(topo.numLinks(), 0) {
  for (const xgft::LinkId link : failedLinks) {
    if (link >= topo.numLinks()) {
      throw std::invalid_argument(
          "DegradedTopology: link " + std::to_string(link) +
          " out of range (topology has " + std::to_string(topo.numLinks()) +
          " links)");
    }
    if (failed_[link] == 0) {
      failed_[link] = 1;
      ++numFailed_;
    }
  }
}

bool DegradedTopology::routeBlocked(xgft::NodeIndex s, xgft::NodeIndex d,
                                    const xgft::Route& r) const {
  if (numFailed_ == 0) return false;
  for (const xgft::Channel& ch : xgft::channelsOf(*topo_, s, d, r)) {
    if (failed_[ch.link] != 0) return true;
  }
  return false;
}

DegradedRoutes compileDegraded(std::shared_ptr<const routing::Router> router,
                               const DegradedTopology& degraded,
                               UnreachablePolicy policy, std::uint32_t threads,
                               core::TableLayout layout) {
  if (!router) {
    throw std::invalid_argument("compileDegraded: null router");
  }
  const xgft::Topology& topo = router->topology();
  if (&topo != &degraded.base()) {
    throw std::invalid_argument(
        "compileDegraded: router and degraded view disagree on the topology");
  }

  DegradedRoutes out;
  UnreachableSink unreachable;
  const routing::Router& r = *router;

  // Per-pair rule: keep the scheme's own route when it survives, otherwise
  // take the first clean minimal alternative in NCA-enumeration order
  // (deterministic, scheme-independent, and identical for any thread
  // count).  No alternative -> unreachable.
  const auto routeFor =
      [&](xgft::NodeIndex s,
          xgft::NodeIndex d) -> std::optional<xgft::Route> {
    xgft::Route route = r.route(s, d);
    if (!degraded.routeBlocked(s, d, route)) return route;
    const xgft::Count ncas = topo.numNcas(s, d);
    for (xgft::Count c = 0; c < ncas; ++c) {
      xgft::Route alt = xgft::routeViaNca(topo, s, d, c);
      if (!degraded.routeBlocked(s, d, alt)) return alt;
    }
    if (policy == UnreachablePolicy::kThrow) {
      throw std::invalid_argument(
          "compileDegraded(" + r.name() + "): pair " + std::to_string(s) +
          " -> " + std::to_string(d) +
          " is unreachable on the degraded topology (" +
          std::to_string(degraded.numFailed()) + " links failed)");
    }
    unreachable.add(s, d);
    return std::nullopt;
  };

  out.table = core::CompiledRoutes::compileWith(std::move(router), routeFor,
                                                threads, layout);
  out.unreachable = unreachable.takeSorted();
  return out;
}

const core::SchemeInfo& requireDegradable(const std::string& routing) {
  const core::SchemeInfo& info = core::schemeRegistry().at(routing);
  if (info.mode != core::RouteMode::kTable) {
    std::string degradable;
    const auto names = core::schemeRegistry().names();
    for (const std::string& name : *names) {
      if (core::schemeRegistry().at(name).mode == core::RouteMode::kTable) {
        if (!degradable.empty()) degradable += ", ";
        degradable += name;
      }
    }
    throw std::invalid_argument(
        "routing scheme '" + routing +
        "' cannot run on a degraded topology: per-segment port selection "
        "(adaptive/spray) honours faults via the fault policy, not table "
        "recompilation (degradable: " +
        degradable + ")");
  }
  return info;
}

}  // namespace fault
