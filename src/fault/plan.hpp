// plan.hpp — Deterministic, seed-derived link-failure plans.
//
// A FaultPlan is the fault subsystem's workload analogue: a validated list
// of link outages (each with a fail time and an optional restore time)
// built from a string spec through a registry, exactly like routing schemes
// and traffic patterns:
//
//   planRegistry()  "links:PCT", "switches:PCT", "uplinks-of:L:I",
//                   "timed:LINK:DOWN[:UP]", "none"     -> PlanInfo
//
// Static models (links/switches/uplinks-of) fail their selection at t = 0
// and never restore — the degraded-routing layer (degraded.hpp) recompiles
// forwarding tables around them before traffic starts.  The timed model
// fails one specific link mid-run (and optionally restores it), exercising
// the event core's kLinkDown/kLinkUp machinery.
//
// Determinism: seeded models (links/switches) draw their selection from a
// caller-provided seed via the shared SplitMix64 generator, so a plan is a
// pure function of (spec, topology, seed) — byte-identical across
// platforms, thread counts and repeats.  The engine derives the seed as
// deriveSeed(jobSeed, "fault").
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "sim/config.hpp"
#include "xgft/topology.hpp"

namespace sim {
class Network;
}

namespace fault {

/// "Never restores" sentinel for LinkFault::upNs.
inline constexpr sim::TimeNs kNeverNs = std::numeric_limits<sim::TimeNs>::max();

/// One link outage: the link fails at downNs and restores at upNs
/// (kNeverNs: stays down for the rest of the run).
struct LinkFault {
  xgft::LinkId link = 0;
  sim::TimeNs downNs = 0;
  sim::TimeNs upNs = kNeverNs;

  friend bool operator==(const LinkFault&, const LinkFault&) = default;
};

/// A validated failure plan: which links fail, when, and whether they come
/// back.  Build through makeFaultPlan (registry specs) or aggregate-style
/// and call validate() before use.
struct FaultPlan {
  std::string spec;  ///< Canonical registry spec ("links:10"); "" for none.
  std::vector<LinkFault> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// Any fault whose transition happens after t = 0 (a mid-run failure or
  /// any restore)?  Static-only plans are fully handled by table
  /// recompilation; timed plans additionally need calendar events.
  [[nodiscard]] bool hasTimed() const;

  /// The links that are down at simulated time @p t, sorted ascending.
  [[nodiscard]] std::vector<xgft::LinkId> failedAt(sim::TimeNs t) const;

  /// Every distinct time > 0 at which the failed set changes (fail or
  /// restore instants), sorted ascending — the resolver-recompile points.
  [[nodiscard]] std::vector<sim::TimeNs> transitionTimes() const;

  /// Checks every link id against @p topo and every restore against its
  /// fail time; throws std::invalid_argument with the offending entry.
  void validate(const xgft::Topology& topo) const;

  /// Schedules every transition on @p net (scheduleLinkDown/scheduleLinkUp).
  /// The caller picks the sim::FaultPolicy separately.
  void scheduleOn(sim::Network& net) const;
};

/// One registered failure model, keyed by the name before the first ':'.
struct PlanInfo {
  std::string usage;    ///< e.g. "links:PCT" — shown by --list-faults.
  std::string summary;  ///< One line for --list-faults.
  /// The selection depends on the seed (percentage draws); deterministic
  /// models (uplinks-of, timed, none) ignore it, letting caches share the
  /// plan across seed sweeps.
  bool seeded = false;
  std::function<std::vector<LinkFault>(const core::SpecName& spec,
                                       const xgft::Topology& topo,
                                       std::uint64_t seed)>
      make;
};

/// The process-wide failure-model registry (uniform unknown-name errors,
/// same contract as core::schemeRegistry()).
[[nodiscard]] core::Registry<PlanInfo>& planRegistry();

/// Builds and validates the plan @p spec names against @p topo.  The spec
/// "none" (or "") yields an empty plan.  Seeded models draw from @p seed.
/// Throws the uniform registry error for unknown models and
/// std::invalid_argument for malformed arguments.
[[nodiscard]] FaultPlan makeFaultPlan(const std::string& spec,
                                      const xgft::Topology& topo,
                                      std::uint64_t seed);

}  // namespace fault
