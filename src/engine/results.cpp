#include "engine/results.hpp"

#include <algorithm>
#include <charconv>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace engine {

namespace {

/// Double-quotes a CSV field when it contains a delimiter, quote or space.
std::string csvEscape(const std::string& field) {
  if (field.find_first_of(",\" \n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Fixed six-decimal rendering for measured ratios: stable, comparable and
/// diff-friendly (shortest-round-trip would leak noise digits).  Rendered
/// via std::to_chars, which is locale-independent by specification — a
/// comma-decimal process locale must not break golden-CSV comparisons
/// (printf-family "%f" honours LC_NUMERIC and would).
std::string fixed6(double v) {
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, 6);
  if (ec != std::errc{}) {
    throw std::invalid_argument("fixed6: unformattable value");
  }
  return std::string(buf, end);
}

}  // namespace

void CampaignResults::sortByIndex() {
  std::sort(jobs.begin(), jobs.end(),
            [](const JobResult& a, const JobResult& b) {
              return a.jobIndex < b.jobIndex;
            });
}

const JobResult* CampaignResults::find(const ExperimentSpec& spec) const {
  for (const JobResult& job : jobs) {
    if (job.spec == spec) return &job;
  }
  return nullptr;
}

std::string CampaignResults::csvHeader() {
  return "job,topo,pattern,routing,msg_scale,seed,status,"
         "makespan_ns,slowdown,messages,segments,events,"
         "max_out_queue,max_in_queue,util_max,util_mean,"
         "max_flows_per_link,max_demand,nca_routes_min,nca_routes_max,error";
}

void CampaignResults::writeCsv(std::ostream& os) const {
  // The byte stream must not depend on the process locale: a global locale
  // with grouping would render "47232" as "47,232" through operator<<.
  // Restored on every exit path so the caller's stream keeps its locale.
  const std::locale prev = os.imbue(std::locale::classic());
  struct RestoreLocale {
    std::ostream& os;
    const std::locale& loc;
    ~RestoreLocale() { os.imbue(loc); }
  } restore{os, prev};
  std::vector<const JobResult*> ordered;
  ordered.reserve(jobs.size());
  for (const JobResult& job : jobs) ordered.push_back(&job);
  std::sort(ordered.begin(), ordered.end(),
            [](const JobResult* a, const JobResult* b) {
              return a->jobIndex < b->jobIndex;
            });
  os << csvHeader() << '\n';
  for (const JobResult* job : ordered) {
    const ExperimentSpec& s = job->spec;
    os << job->jobIndex << ',' << csvEscape(s.topo.toString()) << ','
       << csvEscape(s.pattern) << ',' << csvEscape(s.routing) << ','
       << formatShortest(s.msgScale) << ',' << s.seed << ','
       << (job->ok ? "ok" : "error") << ',' << job->makespanNs << ','
       << fixed6(job->slowdown) << ',' << job->net.messagesDelivered << ','
       << job->net.segmentsDelivered << ',' << job->net.eventsProcessed << ','
       << job->net.maxOutputQueueDepth << ',' << job->net.maxInputQueueDepth
       << ',' << fixed6(job->utilMax) << ',' << fixed6(job->utilMean) << ','
       << job->maxFlowsPerChannel << ',' << fixed6(job->maxDemand) << ','
       << job->ncaRoutesMin << ',' << job->ncaRoutesMax << ','
       << csvEscape(job->error) << '\n';
  }
}

std::string CampaignResults::toCsv() const {
  std::ostringstream os;
  writeCsv(os);
  return os.str();
}

}  // namespace engine
