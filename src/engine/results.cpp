#include "engine/results.hpp"

#include <algorithm>
#include <charconv>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace engine {

namespace {

/// Double-quotes a CSV field when it contains a delimiter, quote or space.
std::string csvEscape(const std::string& field) {
  if (field.find_first_of(",\" \n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Fixed six-decimal rendering for measured ratios: stable, comparable and
/// diff-friendly (shortest-round-trip would leak noise digits).  Rendered
/// via std::to_chars, which is locale-independent by specification — a
/// comma-decimal process locale must not break golden-CSV comparisons
/// (printf-family "%f" honours LC_NUMERIC and would).
std::string fixed6(double v) {
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, 6);
  if (ec != std::errc{}) {
    throw std::invalid_argument("fixed6: unformattable value");
  }
  return std::string(buf, end);
}

}  // namespace

void CampaignResults::sortByIndex() {
  std::sort(jobs.begin(), jobs.end(),
            [](const JobResult& a, const JobResult& b) {
              return a.jobIndex < b.jobIndex;
            });
}

const JobResult* CampaignResults::find(const ExperimentSpec& spec) const {
  for (const JobResult& job : jobs) {
    if (job.spec == spec) return &job;
  }
  return nullptr;
}

namespace {

/// The open-loop columns appended after `source` — the single list the
/// extended header and the closed-row empty cells both derive from, so
/// they cannot fall out of sync.
constexpr const char* kOpenLoopColumns[] = {
    "load",       "offered_load", "accepted_load", "lat_samples",
    "lat_min_ns", "lat_mean_ns",  "lat_p50_ns",    "lat_p99_ns",
    "lat_max_ns",
};

/// The failure columns appended when any job carries a fault plan, in the
/// same conditional-group style as the open-loop columns.
constexpr const char* kFaultColumns[] = {
    "faults",           "segments_rerouted", "segments_stranded",
    "messages_dropped", "link_down_ns",
};

}  // namespace

std::string CampaignResults::csvHeader(bool openLoop, bool faulted) {
  std::string header =
      "job,topo,pattern,routing,msg_scale,seed,status,"
      "makespan_ns,slowdown,messages,segments,events,"
      "max_out_queue,max_in_queue,util_max,util_mean,"
      "max_flows_per_link,max_demand,nca_routes_min,nca_routes_max,error";
  if (openLoop) {
    header += ",source";
    for (const char* column : kOpenLoopColumns) {
      header += ',';
      header += column;
    }
  }
  if (faulted) {
    for (const char* column : kFaultColumns) {
      header += ',';
      header += column;
    }
  }
  return header;
}

bool CampaignResults::hasOpenLoopJobs() const {
  for (const JobResult& job : jobs) {
    if (job.openLoop || !job.spec.source.empty()) return true;
  }
  return false;
}

bool CampaignResults::hasFaultJobs() const {
  for (const JobResult& job : jobs) {
    if (!job.spec.faults.empty()) return true;
  }
  return false;
}

void CampaignResults::writeCsv(std::ostream& os) const {
  // The byte stream must not depend on the process locale: a global locale
  // with grouping would render "47232" as "47,232" through operator<<.
  // Restored on every exit path so the caller's stream keeps its locale.
  const std::locale prev = os.imbue(std::locale::classic());
  struct RestoreLocale {
    std::ostream& os;
    const std::locale& loc;
    ~RestoreLocale() { os.imbue(loc); }
  } restore{os, prev};
  std::vector<const JobResult*> ordered;
  ordered.reserve(jobs.size());
  for (const JobResult& job : jobs) ordered.push_back(&job);
  std::sort(ordered.begin(), ordered.end(),
            [](const JobResult* a, const JobResult* b) {
              return a->jobIndex < b->jobIndex;
            });
  const bool openLoop = hasOpenLoopJobs();
  const bool faulted = hasFaultJobs();
  os << csvHeader(openLoop, faulted) << '\n';
  for (const JobResult* job : ordered) {
    const ExperimentSpec& s = job->spec;
    // Open-loop rows leave the (inert) pattern cell empty; their workload
    // is the source column.
    os << job->jobIndex << ',' << csvEscape(s.topo.toString()) << ','
       << csvEscape(s.source.empty() ? s.pattern : std::string()) << ','
       << csvEscape(s.routing) << ','
       << formatShortest(s.msgScale) << ',' << s.seed << ','
       << (job->ok ? "ok" : "error") << ',' << job->makespanNs << ','
       << fixed6(job->slowdown) << ',' << job->net.messagesDelivered << ','
       << job->net.segmentsDelivered << ',' << job->net.eventsProcessed << ','
       << job->net.maxOutputQueueDepth << ',' << job->net.maxInputQueueDepth
       << ',' << fixed6(job->utilMax) << ',' << fixed6(job->utilMean) << ','
       << job->maxFlowsPerChannel << ',' << fixed6(job->maxDemand) << ','
       << job->ncaRoutesMin << ',' << job->ncaRoutesMax << ','
       << csvEscape(job->error);
    if (openLoop) {
      // Closed-loop rows keep the extended cells empty — absent, not zero.
      os << ',' << csvEscape(s.source);
      if (job->openLoop) {
        os << ',' << formatShortest(s.load) << ','
           << fixed6(job->offeredLoad) << ',' << fixed6(job->acceptedLoad)
           << ',' << job->latencySamples << ',' << job->latencyMinNs << ','
           << fixed6(job->latencyMeanNs) << ',' << job->latencyP50Ns << ','
           << job->latencyP99Ns << ',' << job->latencyMaxNs;
      } else {
        for ([[maybe_unused]] const char* column : kOpenLoopColumns) {
          os << ',';
        }
      }
    }
    if (faulted) {
      // Healthy rows report the baseline explicitly (faults=none, zero
      // counters) — these are measurements, not absent cells.
      os << ',' << csvEscape(s.faults.empty() ? "none" : s.faults) << ','
         << job->net.segmentsRerouted << ',' << job->net.segmentsStranded
         << ',' << job->net.messagesDropped << ',' << job->net.linkDownNs;
    }
    os << '\n';
  }
}

std::string CampaignResults::toCsv() const {
  std::ostringstream os;
  writeCsv(os);
  return os.str();
}

}  // namespace engine
