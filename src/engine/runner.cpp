#include "engine/runner.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/contention.hpp"
#include "core/scenario.hpp"
#include "fault/inject.hpp"
#include "patterns/source.hpp"
#include "trace/harness.hpp"
#include "trace/mapping.hpp"
#include "trace/openloop.hpp"
#include "trace/replayer.hpp"
#include "trace/trace.hpp"

namespace engine {

namespace {

/// Serializes the simulator parameters that affect measured times, for use
/// in reference-cache keys (campaigns normally share one SimConfig, but the
/// cache must stay correct if a caller varies it).
std::string configKey(const sim::SimConfig& cfg) {
  std::ostringstream os;
  os << formatShortest(cfg.linkGbps) << '/' << cfg.segmentBytes << '/'
     << cfg.headerBytes
     << '/' << cfg.switchLatencyNs << '/' << cfg.linkLatencyNs << '/'
     << cfg.inputBufferSegments << '/' << cfg.outputBufferSegments;
  return os.str();
}

/// Cache key identifying a built router (and therefore its compiled
/// forwarding table): topology, the scheme the job actually builds
/// (core::routerBuildScheme — per-segment schemes share the d-mod-k
/// placeholder), and — only where they matter — seed, workload and scale.
std::string routerKey(const ExperimentSpec& spec, const xgft::Topology& topo) {
  std::string name;
  const core::SchemeInfo& scheme = core::routerBuildScheme(spec.routing, &name);
  std::ostringstream key;
  key << topo.params().toString() << '|' << name;
  if (scheme.seeded) key << "|seed=" << spec.seed;
  if (scheme.patternAware) {
    // Pattern-aware tables depend on the workload (and on the seed via
    // tie-breaking / sampling in the optimizer).
    key << "|app=" << spec.pattern << '|'
        << formatShortest(spec.msgScale) << "|seed=" << spec.seed;
  }
  return key.str();
}

/// The spray/adaptive configuration the scheme's route mode implies.
trace::SprayConfig sprayConfigFor(const core::SchemeInfo& scheme,
                                  const ExperimentSpec& spec) {
  trace::SprayConfig sprayCfg;
  if (scheme.mode == core::RouteMode::kAdaptive) {
    sprayCfg.adaptive = true;
  } else if (scheme.mode == core::RouteMode::kSpray) {
    sprayCfg.enabled = true;
    sprayCfg.seed = deriveSeed(spec.seed, "spray");
  }
  return sprayCfg;
}

}  // namespace

template <typename T>
template <typename Build>
T CampaignCache::Memo<T>::get(const std::string& key, Build&& build) {
  std::shared_future<T> future;
  std::shared_ptr<std::promise<T>> promise;
  {
    core::LockGuard lock(mu);
    auto it = entries.find(key);
    if (it != entries.end()) {
      ++hits;
      future = it->second;
    } else {
      ++misses;
      promise = std::make_shared<std::promise<T>>();
      future = promise->get_future().share();
      entries.emplace(key, future);
    }
  }
  if (promise) {
    try {
      promise->set_value(build());
    } catch (...) {
      promise->set_exception(std::current_exception());
      // Don't poison the key: current waiters see this failure, but a later
      // request retries the build (the failure may have been transient).
      core::LockGuard lock(mu);
      entries.erase(key);
    }
  }
  return future.get();  // Rethrows the builder's exception for every waiter.
}

std::shared_ptr<const xgft::Topology> CampaignCache::topology(
    const xgft::Params& params) {
  return topologies_.get(params.toString(), [&] {
    return std::make_shared<const xgft::Topology>(params);
  });
}

std::shared_ptr<const routing::Router> CampaignCache::router(
    const ExperimentSpec& spec,
    const std::shared_ptr<const xgft::Topology>& topo,
    const patterns::PhasedPattern& app) {
  return routers_.get(
      routerKey(spec, *topo),
      [&]() -> std::shared_ptr<const routing::Router> {
        // The registry factory is the single construction path (the same
        // one Scenario::makeRouter uses).
        routing::RouterPtr built = spec.scenario().makeRouter(*topo, app);
        // Tie the topology's lifetime to the router handed out: routers
        // hold a bare reference to their topology.
        const routing::Router* raw = built.release();
        return std::shared_ptr<const routing::Router>(
            raw, [topo](const routing::Router* r) { delete r; });
      });
}

std::shared_ptr<const core::CompiledRoutes> CampaignCache::compiledRoutes(
    const ExperimentSpec& spec,
    const std::shared_ptr<const routing::Router>& router,
    std::uint32_t threads) {
  return tables_.get(routerKey(spec, router->topology()), [&] {
    return core::CompiledRoutes::compile(router, threads);
  });
}

std::shared_ptr<const core::CompiledRoutes> CampaignCache::compressedRoutes(
    const ExperimentSpec& spec,
    const std::shared_ptr<const routing::Router>& router,
    std::uint64_t maxBytes) {
  return compressed_.get(
      routerKey(spec, router->topology()),
      [&]() -> std::shared_ptr<const core::CompiledRoutes> {
        // Deterministic sampled estimate first: a scheme that does not
        // compress (per-pair randomness) would blow the budget chunk by
        // chunk at simulation time, so refuse up front — the memoized
        // nullptr keeps such jobs on the virtual-routing path.
        if (core::CompiledRoutes::estimateCompressedBytes(*router) >
            maxBytes) {
          return nullptr;
        }
        return core::CompiledRoutes::compile(router, /*threads=*/1,
                                             core::TableLayout::kCompressed);
      });
}

std::shared_ptr<const core::CompiledRoutes> CampaignCache::degradedRoutes(
    const ExperimentSpec& spec,
    const std::shared_ptr<const routing::Router>& router,
    const fault::FaultPlan& plan, fault::UnreachablePolicy policy,
    std::uint32_t threads) {
  std::ostringstream key;
  key << routerKey(spec, router->topology()) << "|faults=" << plan.spec
      << "|unreachable="
      << (policy == fault::UnreachablePolicy::kThrow ? "throw" : "drop");
  if (fault::planRegistry().at(core::splitSpec(plan.spec).name).seeded) {
    key << "|fseed=" << deriveSeed(spec.seed, "fault");
  }
  return degraded_.get(key.str(), [&] {
    const std::vector<xgft::LinkId> failed = plan.failedAt(0);
    const fault::DegradedTopology view(router->topology(), failed);
    return fault::compileDegraded(router, view, policy, threads).table;
  });
}

sim::TimeNs CampaignCache::crossbarMakespan(const ExperimentSpec& spec,
                                            const patterns::PhasedPattern& app,
                                            const sim::SimConfig& cfg) {
  std::ostringstream key;
  key << spec.pattern << '|' << formatShortest(spec.msgScale) << '|'
      << configKey(cfg);
  if (core::patternRegistry().at(core::splitSpec(spec.pattern).name).seeded) {
    key << "|pseed=" << deriveSeed(spec.seed, "pattern");
  }
  return references_.get(key.str(), [&] {
    return trace::runCrossbarReference(app, cfg).makespanNs;
  });
}

CacheStats CampaignCache::stats() const {
  CacheStats s;
  {
    core::LockGuard lock(topologies_.mu);
    s.topologyHits = topologies_.hits;
    s.topologyMisses = topologies_.misses;
  }
  {
    core::LockGuard lock(routers_.mu);
    s.routerHits = routers_.hits;
    s.routerMisses = routers_.misses;
  }
  {
    core::LockGuard lock(tables_.mu);
    s.tableHits = tables_.hits;
    s.tableMisses = tables_.misses;
  }
  {
    core::LockGuard lock(references_.mu);
    s.referenceHits = references_.hits;
    s.referenceMisses = references_.misses;
  }
  {
    core::LockGuard lock(degraded_.mu);
    s.degradedHits = degraded_.hits;
    s.degradedMisses = degraded_.misses;
  }
  {
    core::LockGuard lock(compressed_.mu);
    s.compressedHits = compressed_.hits;
    s.compressedMisses = compressed_.misses;
  }
  return s;
}

ForwardingStats CampaignCache::forwardingStats() const {
  ForwardingStats f;
  core::LockGuard lock(compressed_.mu);
  // std::map: ordered iteration, deterministic sums.  Called after the pool
  // joined, so every future is ready (failed builds erased their entries).
  for (const auto& [key, future] : compressed_.entries) {
    const std::shared_ptr<const core::CompiledRoutes> table = future.get();
    if (!table) continue;  // Estimate exceeded the budget (virtual fallback).
    f.tableBytesFlat += core::CompiledRoutes::tableBytes(table->topology());
    f.tableBytesCompressed += table->forwardingBytes();
  }
  return f;
}

namespace {

/// The recorder for a job, or null when its effective level is off.  The
/// event log is only kept at kTrace — summary campaigns stay lean.
std::shared_ptr<obs::Recorder> makeRecorder(const ExperimentSpec& spec,
                                            const RunnerOptions& opt) {
  const TelemetryLevel level = std::max(spec.telemetry, opt.telemetry);
  if (level == TelemetryLevel::kOff) return nullptr;
  obs::RecorderConfig cfg = opt.recorder;
  cfg.recordEvents = level == TelemetryLevel::kTrace;
  return std::make_shared<obs::Recorder>(cfg);
}

/// The open-loop (source=) job path: no trace, no crossbar reference — the
/// streaming source runs through trace::runOpenLoop and the measurement
/// window's operating point fills the load–latency columns.
void runOpenLoopJob(const ExperimentSpec& spec, CampaignCache& cache,
                    const RunnerOptions& opt, JobResult& result) {
  const core::SchemeInfo& scheme = core::schemeRegistry().at(spec.routing);
  if (scheme.patternAware) {
    throw std::invalid_argument(
        "scheme '" + spec.routing +
        "' is pattern-aware and needs a closed-loop pattern= workload");
  }
  const std::shared_ptr<const xgft::Topology> topo =
      cache.topology(spec.topo);
  const trace::SprayConfig sprayCfg = sprayConfigFor(scheme, spec);
  // Oblivious routers never look at the workload, so the cached router is
  // shared with closed-loop jobs under the same key.
  const patterns::PhasedPattern noApp;
  const std::shared_ptr<const routing::Router> router =
      cache.router(spec, topo, noApp);

  // Fault plans route through recompiled tables, so a faulted job needs the
  // compiled path even when the campaign opted out of it.
  fault::FaultPlan plan;
  if (!spec.faults.empty()) {
    (void)fault::requireDegradable(spec.routing);
    plan = fault::makeFaultPlan(spec.faults, *topo,
                                deriveSeed(spec.seed, "fault"));
    if (core::CompiledRoutes::tableBytes(*topo) > opt.maxCompiledTableBytes) {
      throw std::invalid_argument(
          "fault plans need compiled forwarding tables, but this topology's "
          "table exceeds maxCompiledTableBytes");
    }
  }

  std::shared_ptr<const core::CompiledRoutes> compiled;
  if (scheme.mode == core::RouteMode::kTable &&
      (opt.compileRoutes || !plan.empty())) {
    if (core::CompiledRoutes::tableBytes(*topo) <= opt.maxCompiledTableBytes) {
      compiled = cache.compiledRoutes(spec, router,
                                      std::max(1u, opt.compileThreads));
    } else if (plan.empty()) {
      // Flat table over budget: try the interval-compressed layout, left
      // lazy on purpose — an open-loop sweep compiles only the destination
      // chunks its source actually touches.  nullptr (scheme does not
      // compress either) keeps the virtual-routing fallback.
      compiled = cache.compressedRoutes(spec, router,
                                        opt.maxCompiledTableBytes);
    }
  }
  // The t = 0 degraded table replaces the healthy one for static failures;
  // timed-only plans start healthy and swap tables at their transitions.
  std::shared_ptr<const core::CompiledRoutes> degradedTable;
  if (!plan.empty() && !plan.failedAt(0).empty()) {
    degradedTable =
        cache.degradedRoutes(spec, router, plan,
                             fault::UnreachablePolicy::kDrop,
                             std::max(1u, opt.compileThreads));
  }

  const sim::TimeNs stopNs = opt.openLoopWarmupNs + opt.openLoopMeasureNs;
  const std::unique_ptr<patterns::TrafficSource> source =
      spec.scenario(opt.sim).makeSource(
          static_cast<patterns::Rank>(topo->numHosts()), 0, stopNs);

  trace::OpenLoopOptions ol;
  ol.warmupNs = opt.openLoopWarmupNs;
  ol.measureNs = opt.openLoopMeasureNs;
  // The spec's own sim_threads= wins; otherwise the runner's idle-share
  // budget applies.  Either way the result bytes cannot depend on it.
  ol.simThreads =
      spec.simThreads != 0 ? spec.simThreads : std::max(1u, opt.simThreads);
  ol.spray = sprayCfg;
  ol.compiled = degradedTable ? degradedTable.get() : compiled.get();
  const std::shared_ptr<obs::Recorder> recorder = makeRecorder(spec, opt);
  ol.probe = recorder.get();
  // Owns every table recompiled at the plan's transition instants; must
  // outlive the run (the resolver holds raw pointers into it).
  std::shared_ptr<void> faultState;
  if (!plan.empty()) {
    ol.prepare = [&](sim::Network& net, trace::RouteSetResolver& resolver) {
      fault::InstallOptions io;
      io.policy = sim::FaultPolicy::kReroute;
      io.unreachable = fault::UnreachablePolicy::kDrop;
      io.compileThreads = std::max(1u, opt.compileThreads);
      io.applyStatic = false;  // The t = 0 table is already ol.compiled.
      faultState = fault::installFaultPlan(net, plan, router, &resolver, io);
    };
  }
  const trace::OpenLoopResult r =
      trace::runOpenLoop(*topo, *router, *source, ol, opt.sim);
  result.telemetry = recorder;

  result.makespanNs = r.lastDeliveryNs;
  result.net = r.stats;
  result.routeArenaEntries = r.routeArenaEntries;
  result.utilMax = r.utilMax;
  result.utilMean = r.utilMean;
  result.openLoop = true;
  // Measured, not the configured nominal: gap rounding and the bursty
  // line-rate clamp make the truly offered rate deviate from spec.load
  // (which the CSV reports separately in the `load` column).
  result.offeredLoad = r.offeredLoad;
  result.acceptedLoad = r.acceptedLoad;
  result.latencySamples = r.latency.samples;
  result.latencyMinNs = r.latency.minNs;
  result.latencyMeanNs = r.latency.meanNs;
  result.latencyP50Ns = r.latency.p50Ns;
  result.latencyP99Ns = r.latency.p99Ns;
  result.latencyMaxNs = r.latency.maxNs;
}

}  // namespace

JobResult runJob(const ExperimentSpec& spec, std::uint32_t jobIndex,
                 CampaignCache& cache, const RunnerOptions& opt) {
  const auto jobStart = std::chrono::steady_clock::now();
  JobResult result;
  result.jobIndex = jobIndex;
  result.spec = spec;
  try {
    if (!spec.source.empty()) {
      runOpenLoopJob(spec, cache, opt, result);
      result.ok = true;
      result.wallNs = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - jobStart)
              .count());
      return result;
    }
    const patterns::PhasedPattern app = makeWorkload(spec);
    const std::shared_ptr<const xgft::Topology> topo = cache.topology(spec.topo);
    if (app.numRanks > topo->numHosts()) {
      throw std::invalid_argument("workload has " +
                                  std::to_string(app.numRanks) +
                                  " ranks but the topology only " +
                                  std::to_string(topo->numHosts()) + " hosts");
    }

    const core::SchemeInfo& scheme = core::schemeRegistry().at(spec.routing);
    const trace::SprayConfig sprayCfg = sprayConfigFor(scheme, spec);
    // Per-segment algorithms never consult the router; the cache hands them
    // the inert d-mod-k placeholder the Replayer interface wants.
    const std::shared_ptr<const routing::Router> router =
        cache.router(spec, topo, app);

    // Static schemes route through the compiled forwarding table (shared
    // across every job with the same router key) unless the topology's
    // table would blow the memory budget — then the virtual path serves,
    // which since the interned-route rework costs one route() per distinct
    // (src, dst) pair rather than per message (Replayer::routeSetFor), so
    // the fallback is off every workload's per-message hot path.
    std::shared_ptr<const core::CompiledRoutes> compiled;
    if (scheme.mode == core::RouteMode::kTable && opt.compileRoutes) {
      if (core::CompiledRoutes::tableBytes(*topo) <=
          opt.maxCompiledTableBytes) {
        compiled = cache.compiledRoutes(spec, router,
                                        std::max(1u, opt.compileThreads));
      } else {
        compiled = cache.compressedRoutes(spec, router,
                                          opt.maxCompiledTableBytes);
        // Closed-loop replay touches essentially every pair of the
        // workload; build the remaining chunks eagerly (and in parallel)
        // rather than one lazy miss at a time on the simulation path.
        if (compiled) compiled->compileAll(std::max(1u, opt.compileThreads));
      }
    }

    // Closed-loop fault path: static plans only.  The degraded table is
    // compiled under kThrow (a partitioned pair would stall the phase
    // barrier forever, so it must fail loudly at compile time), and the
    // dead links still get their calendar events so linkDownNs accounts —
    // no traffic touches them, every recompiled route avoids the failures.
    fault::FaultPlan plan;
    std::shared_ptr<const core::CompiledRoutes> degradedTable;
    if (!spec.faults.empty()) {
      (void)fault::requireDegradable(spec.routing);
      plan = fault::makeFaultPlan(spec.faults, *topo,
                                  deriveSeed(spec.seed, "fault"));
      if (plan.hasTimed()) {
        throw std::invalid_argument(
            "timed fault plans need an open-loop job (source=): closed-loop "
            "phase replay cannot drop messages without stalling its barrier");
      }
      if (core::CompiledRoutes::tableBytes(*topo) >
          opt.maxCompiledTableBytes) {
        throw std::invalid_argument(
            "fault plans need compiled forwarding tables, but this "
            "topology's table exceeds maxCompiledTableBytes");
      }
      if (!plan.empty()) {
        degradedTable =
            cache.degradedRoutes(spec, router,
                                 plan, fault::UnreachablePolicy::kThrow,
                                 std::max(1u, opt.compileThreads));
      }
    }

    sim::Network net(*topo, opt.sim);
    if (!plan.empty()) plan.scheduleOn(net);
    const std::shared_ptr<obs::Recorder> recorder = makeRecorder(spec, opt);
    if (recorder) net.setProbe(recorder.get());
    result.telemetry = recorder;
    const trace::Trace t = trace::traceFromPhases(app);
    const trace::Mapping mapping = trace::Mapping::sequential(app.numRanks);
    trace::Replayer replayer(
        net, t, mapping, *router, sprayCfg,
        degradedTable ? degradedTable.get() : compiled.get());
    result.makespanNs = replayer.run();
    result.net = net.stats();
    result.routeArenaEntries = net.routes().arenaEntries();

    const sim::WireUtilization util =
        sim::wireUtilization(net, result.makespanNs);
    result.utilMax = util.max;
    result.utilMean = util.mean;

    const sim::TimeNs reference = cache.crossbarMakespan(spec, app, opt.sim);
    result.slowdown = reference == 0
                          ? 1.0
                          : static_cast<double>(result.makespanNs) /
                                static_cast<double>(reference);

    // Contention/census columns describe the healthy router's routes, which
    // a faulted job does not use — leave them at their defaults there.
    if (opt.collectContention && scheme.mode == core::RouteMode::kTable &&
        spec.faults.empty()) {
      const patterns::Pattern flat = app.flattened();
      const analysis::LoadSummary loads =
          analysis::computeLoads(*topo, flat, *router);
      result.maxFlowsPerChannel = loads.maxFlowsPerChannel;
      result.maxDemand = loads.maxDemand;
      const std::vector<std::uint64_t> census =
          analysis::ncaRouteCensusForPattern(*topo, flat, *router,
                                             topo->height());
      if (!census.empty()) {
        result.ncaRoutesMin = *std::min_element(census.begin(), census.end());
        result.ncaRoutesMax = *std::max_element(census.begin(), census.end());
      }
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown error";
  }
  result.wallNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - jobStart)
          .count());
  return result;
}

Runner::Runner(RunnerOptions opt) : opt_(std::move(opt)) {}

CampaignResults Runner::run(const std::vector<ExperimentSpec>& specs) {
  const auto start = std::chrono::steady_clock::now();
  CampaignResults results;
  results.jobs.resize(specs.size());

  std::uint32_t poolWidth = opt_.threads;
  if (poolWidth == 0) {
    poolWidth = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::uint32_t threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(poolWidth,
                            std::max<std::size_t>(std::size_t{1},
                                                  specs.size())));

  // Table compilations get the pool's idle share: with fewer jobs than
  // workers (threads < poolWidth) the spare threads speed up each compile,
  // with a saturated pool each worker compiles serially (no N^2 thread
  // blow-up).
  RunnerOptions jobOpt = opt_;
  jobOpt.compileThreads = std::max(1u, poolWidth / threads);
  // Shard workers get the same idle-share deal: a one-job campaign shards
  // its event core across the whole pool, a saturated campaign runs each
  // job's core serially.  An explicit --sim-threads budget wins.
  if (jobOpt.simThreads == 0) {
    jobOpt.simThreads = std::max(1u, poolWidth / threads);
  }

  core::Mutex doneMu;  // Serializes onJobDone.
  const auto finishJob = [&](std::uint32_t index) {
    JobResult job = runJob(specs[index], index, cache_, jobOpt);
    if (opt_.onJobDone) {
      core::LockGuard lock(doneMu);
      opt_.onJobDone(job);
      results.jobs[index] = std::move(job);
    } else {
      results.jobs[index] = std::move(job);
    }
  };

  if (threads <= 1) {
    for (std::uint32_t i = 0; i < specs.size(); ++i) finishJob(i);
  } else {
    // Work-stealing: jobs are dealt block-cyclically to per-worker deques;
    // a worker drains its own deque from the front and steals from the back
    // of the most loaded peer when empty.  Jobs never enqueue new jobs, so
    // once every deque is empty a worker can retire.
    struct WorkerQueue {
      core::Mutex mu;
      std::deque<std::uint32_t> q XGFT_GUARDED_BY(mu);
    };
    std::vector<WorkerQueue> queues(threads);
    for (std::uint32_t i = 0; i < specs.size(); ++i) {
      // Single-threaded dealing phase, but the guard keeps the analysis
      // exact (and it is uncontended, so it costs nothing).
      WorkerQueue& mine = queues[i % threads];
      core::LockGuard lock(mine.mu);
      mine.q.push_back(i);
    }

    const auto popOwn = [&](std::uint32_t w, std::uint32_t& out) {
      WorkerQueue& own = queues[w];
      core::LockGuard lock(own.mu);
      if (own.q.empty()) return false;
      out = own.q.front();
      own.q.pop_front();
      return true;
    };
    const auto steal = [&](std::uint32_t thief, std::uint32_t& out) {
      std::uint32_t victim = threads;
      std::size_t best = 0;
      for (std::uint32_t v = 0; v < threads; ++v) {
        if (v == thief) continue;
        WorkerQueue& peer = queues[v];
        core::LockGuard lock(peer.mu);
        if (peer.q.size() > best) {
          best = peer.q.size();
          victim = v;
        }
      }
      if (victim == threads) return false;
      WorkerQueue& loser = queues[victim];
      core::LockGuard lock(loser.mu);
      if (loser.q.empty()) return false;
      out = loser.q.back();
      loser.q.pop_back();
      return true;
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        std::uint32_t job = 0;
        while (popOwn(w, job) || steal(w, job)) finishJob(job);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  results.sortByIndex();
  results.threadsUsed = threads;
  results.simThreadsUsed = jobOpt.simThreads;
  results.cache = cache_.stats();
  results.forwarding = cache_.forwardingStats();
  results.wallTimeNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return results;
}

}  // namespace engine
