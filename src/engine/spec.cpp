#include "engine/spec.hpp"

#include <charconv>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "fault/plan.hpp"

namespace engine {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("campaign spec: " + what);
}

bool parseU64(std::string_view s, std::uint64_t& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && p == end;
}

std::uint64_t requireU64(const std::string& value, const std::string& key) {
  std::uint64_t v = 0;
  if (!parseU64(value, v)) fail("'" + key + "' wants an integer, got '" +
                                value + "'");
  return v;
}

std::uint32_t requireU32(const std::string& value, const std::string& key) {
  const std::uint64_t v = requireU64(value, key);
  if (v > 0xffffffffULL) fail("'" + key + "' out of range: " + value);
  return static_cast<std::uint32_t>(v);
}

double requireDouble(const std::string& value, const std::string& key) {
  double v = 0.0;
  const char* begin = value.data();
  const char* end = value.data() + value.size();
  const auto [p, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || p != end) {
    fail("'" + key + "' wants a number, got '" + value + "'");
  }
  return v;
}

/// Splits a line into ordered (key, rawValue) pairs.  Values may be quoted
/// with double quotes (the quotes are stripped); a '#' outside quotes starts
/// a comment.
std::vector<std::pair<std::string, std::string>> tokenize(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> tokens;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;
    const std::size_t eq = line.find('=', i);
    if (eq == std::string::npos ||
        line.find_first_of(" \t", i) < eq) {
      fail("expected key=value at '" + line.substr(i) + "'");
    }
    std::string key = line.substr(i, eq - i);
    std::string value;
    i = eq + 1;
    if (i < n && line[i] == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string::npos) fail("unterminated quote in '" + line +
                                           "'");
      value = line.substr(i + 1, close - i - 1);
      i = close + 1;
    } else {
      const std::size_t end = line.find_first_of(" \t#", i);
      value = line.substr(i, end == std::string::npos ? end : end - i);
      i = end == std::string::npos ? n : end;
    }
    if (value.empty()) fail("empty value for key '" + key + "'");
    for (const auto& [seen, unused] : tokens) {
      // Last-wins would silently ignore the earlier assignment — a typo'd
      // sweep line must fail loudly instead.
      if (seen == key) fail("duplicate key '" + key + "'");
    }
    tokens.emplace_back(std::move(key), std::move(value));
  }
  return tokens;
}

/// Expands one raw value into its sweep list: "{a,b,c}" splits on commas,
/// "lo..hi" (integers, either direction) expands inclusively, anything else
/// is a single value.
std::vector<std::string> expandValue(const std::string& raw) {
  if (raw.size() >= 2 && raw.front() == '{' && raw.back() == '}') {
    std::vector<std::string> values;
    std::string body = raw.substr(1, raw.size() - 2);
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = body.find(',', start);
      values.push_back(body.substr(start, comma == std::string::npos
                                              ? comma
                                              : comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    for (const std::string& v : values) {
      if (v.empty()) fail("empty element in list '" + raw + "'");
    }
    return values;
  }
  const std::size_t dots = raw.find("..");
  if (dots != std::string::npos) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (parseU64(raw.substr(0, dots), lo) &&
        parseU64(raw.substr(dots + 2), hi)) {
      std::vector<std::string> values;
      if (lo <= hi) {
        for (std::uint64_t v = lo; v <= hi; ++v) {
          values.push_back(std::to_string(v));
        }
      } else {
        for (std::uint64_t v = lo; v + 1 > hi; --v) {
          values.push_back(std::to_string(v));
        }
      }
      return values;
    }
    fail("malformed range '" + raw + "'");
  }
  return {raw};
}

ExperimentSpec specFromAssignments(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  ExperimentSpec spec;
  bool haveTopo = false;
  bool haveFamily = false;
  bool havePattern = false;
  bool haveLoad = false;
  std::uint32_t m1 = 16;
  std::uint32_t m2 = 16;
  std::uint32_t w2 = 16;
  for (const auto& [key, value] : kv) {
    if (key == "topo") {
      spec.topo = core::makeTopoParams(value);
      haveTopo = true;
    } else if (key == "m1" || key == "m2" || key == "w2") {
      const std::uint32_t v = requireU32(value, key);
      (key == "m1" ? m1 : key == "m2" ? m2 : w2) = v;
      haveFamily = true;
    } else if (key == "pattern") {
      // Validate the family name now (fail at parse time with the
      // registry's uniform error); arguments are checked at build time.
      (void)core::patternRegistry().at(core::splitSpec(value).name);
      spec.pattern = value;
      havePattern = true;
    } else if (key == "source") {
      (void)core::sourceRegistry().at(core::splitSpec(value).name);
      spec.source = value;
    } else if (key == "load") {
      spec.load = requireDouble(value, key);
      if (spec.load <= 0.0 || spec.load > 4.0) {
        fail("load must be in (0, 4]");
      }
      haveLoad = true;
    } else if (key == "routing") {
      spec.routing = core::schemeRegistry().canonical(value);
    } else if (key == "msg_scale") {
      spec.msgScale = requireDouble(value, key);
      if (spec.msgScale <= 0.0) fail("msg_scale must be > 0");
    } else if (key == "seed") {
      spec.seed = requireU64(value, key);
    } else if (key == "faults") {
      if (value == "none") {
        spec.faults.clear();  // faults=none == absent key, byte for byte.
      } else {
        // Validate and canonicalize the model name now, like pattern=.
        const core::SpecName name = core::splitSpec(value);
        (void)fault::planRegistry().at(name.name);
        spec.faults =
            core::joinSpec(fault::planRegistry().canonical(name.name),
                           name.args)
                .full;
      }
    } else if (key == "telemetry") {
      spec.telemetry = parseTelemetryLevel(value);
    } else if (key == "sim_threads") {
      // Host-volatile knob: affects wall-clock only, never results, so it
      // takes no part in toLine()/CSV/manifest identity.
      spec.simThreads = requireU32(value, key);
    } else {
      // Mirror the registries' uniform unknown-name diagnostic so every
      // bad token in a campaign file reads the same way.
      fail("unknown campaign key '" + key +
           "' (known: topo, m1, m2, w2, pattern, source, load, routing, "
           "msg_scale, seed, faults, telemetry, sim_threads)");
    }
  }
  if (haveTopo && haveFamily) {
    fail("give either topo= or the m1/m2/w2 family, not both");
  }
  if (havePattern && !spec.source.empty()) {
    fail("give either pattern= (closed loop) or source= (open loop), "
         "not both");
  }
  if (haveLoad && spec.source.empty()) {
    fail("load= needs an open-loop source=");
  }
  if (haveFamily) spec.topo = xgft::xgft2(m1, m2, w2);
  return spec;
}

}  // namespace

TelemetryLevel parseTelemetryLevel(const std::string& value) {
  if (value == "off") return TelemetryLevel::kOff;
  if (value == "summary") return TelemetryLevel::kSummary;
  if (value == "trace") return TelemetryLevel::kTrace;
  fail("unknown telemetry level '" + value +
       "' (known: off, summary, trace)");
}

std::string_view telemetryLevelName(TelemetryLevel level) {
  switch (level) {
    case TelemetryLevel::kOff: return "off";
    case TelemetryLevel::kSummary: return "summary";
    case TelemetryLevel::kTrace: return "trace";
  }
  return "off";
}

std::string formatShortest(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) fail("cannot format double");
  return std::string(buf, end);
}

std::string formatFixed(double v, int precision) {
  // Fixed notation of a huge double spends one char per integer digit
  // (~310 for DBL_MAX) before the fraction even starts.
  char buf[400];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed,
                    precision);
  if (ec != std::errc{}) fail("cannot format double");
  return std::string(buf, end);
}

core::Scenario ExperimentSpec::scenario(const sim::SimConfig& sim) const {
  core::Scenario sc;
  sc.topo = topo;
  sc.pattern = pattern;
  sc.routing = routing;
  sc.msgScale = msgScale;
  sc.seed = seed;
  sc.sim = sim;
  sc.source = source;
  sc.load = load;
  return sc;
}

std::string ExperimentSpec::toLine() const {
  std::ostringstream os;
  os << "topo=\"" << topo.toString() << "\"";
  if (source.empty()) {
    os << " pattern=" << pattern;
  } else {
    os << " source=" << source << " load=" << formatShortest(load);
  }
  os << " routing=" << routing << " msg_scale=" << formatShortest(msgScale)
     << " seed=" << seed;
  // faults= and telemetry= render only when set, so healthy pre-fault
  // lines round-trip byte-exactly.
  if (!faults.empty()) os << " faults=" << faults;
  if (telemetry != TelemetryLevel::kOff) {
    os << " telemetry=" << telemetryLevelName(telemetry);
  }
  return os.str();
}

ExperimentSpec parseSpecLine(const std::string& line) {
  const std::vector<ExperimentSpec> jobs = expandCampaignLine(line);
  if (jobs.size() != 1) {
    fail("expected a single job, got a sweep of " +
         std::to_string(jobs.size()));
  }
  return jobs.front();
}

std::vector<ExperimentSpec> expandCampaignLine(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return {};
  std::vector<std::vector<std::string>> values;
  values.reserve(tokens.size());
  for (const auto& [key, raw] : tokens) {
    // topo values embed commas; sweep them via the m1/m2/w2 family instead.
    values.push_back(key == "topo" ? std::vector<std::string>{raw}
                                   : expandValue(raw));
  }

  std::vector<ExperimentSpec> jobs;
  std::vector<std::size_t> cursor(tokens.size(), 0);
  while (true) {
    std::vector<std::pair<std::string, std::string>> kv;
    kv.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      kv.emplace_back(tokens[i].first, values[i][cursor[i]]);
    }
    jobs.push_back(specFromAssignments(kv));
    // Odometer increment, last key fastest.
    std::size_t i = tokens.size();
    while (i > 0) {
      --i;
      if (++cursor[i] < values[i].size()) break;
      cursor[i] = 0;
      if (i == 0) return jobs;
    }
  }
}

std::vector<ExperimentSpec> parseCampaign(std::istream& in) {
  std::vector<ExperimentSpec> jobs;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    try {
      std::vector<ExperimentSpec> expanded = expandCampaignLine(line);
      jobs.insert(jobs.end(), std::make_move_iterator(expanded.begin()),
                  std::make_move_iterator(expanded.end()));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("line " + std::to_string(lineNo) + ": " +
                                  e.what());
    }
  }
  return jobs;
}

std::vector<ExperimentSpec> parseCampaign(const std::string& text) {
  std::istringstream in(text);
  return parseCampaign(in);
}

patterns::PhasedPattern makeWorkload(const ExperimentSpec& spec) {
  return spec.scenario().makeWorkload();
}

}  // namespace engine
