// spec.hpp — Declarative experiment specifications for campaign sweeps.
//
// One ExperimentSpec names everything a single simulation run needs: the
// XGFT under test, the workload, the routing algorithm, the message-size
// scale and the seed.  Campaign files describe whole sweeps declaratively:
// each non-comment line is a key=value spec whose values may be lists or
// integer ranges, and the line expands to the cross product — the Fig. 2/5
// slimming sweeps become two lines of text instead of a bench binary.
//
// Format (whitespace-separated key=value tokens; '#' starts a comment):
//
//   topo="XGFT(2; 16,16; 1,10)"   explicit topology (paper notation)
//   m1=16 m2=16 w2=16..1          or the 2-level family, sweepable
//   pattern=cg128                 builtin workload (see makeWorkload)
//   routing={Random,d-mod-k}      algorithm, or a {a,b,c} list
//   msg_scale=0.125               multiplies every message size
//   seed=1..40                    integer ranges sweep inclusively
//
// Expansion order is deterministic: keys vary in the order they appear on
// the line, the last key fastest, so job indices — and therefore derived
// seeds and output order — are stable across platforms and thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "patterns/pattern.hpp"
#include "xgft/params.hpp"

namespace engine {

/// The routing schemes a campaign can exercise.  The first six assign one
/// static route per (s, d) pair; the last two route per segment inside the
/// simulator (no static route, so no static contention analysis applies).
enum class Algo : std::uint8_t {
  kColored,
  kRandom,
  kSModK,
  kDModK,
  kRNcaUp,
  kRNcaDown,
  kAdaptive,
  kSpray,
};

/// Canonical names: "colored", "Random", "s-mod-k", "d-mod-k", "r-NCA-u",
/// "r-NCA-d", "adaptive", "spray" (matching the bench/CLI vocabulary).
[[nodiscard]] std::string toString(Algo a);
[[nodiscard]] Algo parseAlgo(const std::string& name);

/// True for the six schemes with one static route per pair.
[[nodiscard]] bool hasStaticRoutes(Algo a);

/// True when route choice depends on the seed (Random, r-NCA-u/d, spray;
/// colored uses its seed only for tie-breaking).
[[nodiscard]] bool isSeeded(Algo a);

/// One simulation job.
struct ExperimentSpec {
  xgft::Params topo = xgft::karyNTree(16, 2);
  std::string pattern = "cg128";
  Algo routing = Algo::kDModK;
  double msgScale = 1.0;
  std::uint64_t seed = 1;

  friend bool operator==(const ExperimentSpec&,
                         const ExperimentSpec&) = default;

  /// Canonical one-line key=value rendering; parseSpecLine round-trips it.
  [[nodiscard]] std::string toLine() const;
};

/// Parses a single spec line (no sweep syntax allowed).  Unknown keys,
/// malformed values and list/range values all throw std::invalid_argument.
[[nodiscard]] ExperimentSpec parseSpecLine(const std::string& line);

/// Expands one campaign line (sweep syntax allowed) to the cross product of
/// its value lists, last key fastest.
[[nodiscard]] std::vector<ExperimentSpec> expandCampaignLine(
    const std::string& line);

/// Parses a whole campaign: one expandable spec per line, '#' comments and
/// blank lines skipped.  Jobs are concatenated in file order.
[[nodiscard]] std::vector<ExperimentSpec> parseCampaign(std::istream& in);
[[nodiscard]] std::vector<ExperimentSpec> parseCampaign(
    const std::string& text);

/// Shortest decimal rendering of a double that parses back to the same
/// value ("1", "0.125") — used for canonical spec lines and CSV cells so
/// output is byte-stable across platforms and thread counts.
[[nodiscard]] std::string formatShortest(double v);

/// True when the workload named by @p patternSpec draws on the job seed
/// (uniform:..., permutations:...) — such jobs cannot share a crossbar
/// reference across seeds.
[[nodiscard]] bool patternDependsOnSeed(const std::string& patternSpec);

/// Derives an independent sub-seed for a named role ("pattern", "spray",
/// ...) from a job's base seed.  Stable across platforms and releases:
/// FNV-1a over the role name mixed through SplitMix64 — so a campaign that
/// sweeps seed=1..N gives every (job, role) pair an uncorrelated stream.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t base,
                                       std::string_view role);

/// Instantiates the builtin workload named by @p spec.pattern with message
/// sizes already scaled by spec.msgScale.  Accepted names:
///
///   cg128                  the paper's NAS CG.D-128 phases
///   wrf256 | wrf64         the paper's WRF halo (16x16) or an 8x8 mesh
///   ring:N                 N-rank ring exchange
///   alltoall:N             N-rank personalized all-to-all (single phase)
///   shift:N                the N-1 cyclic-shift phases of [9]
///   hotspot:N              all ranks to rank 0
///   stencil:R:C            5-point halo on an R x C mesh
///   uniform:N:F            F uniform random flows per rank (seeded)
///   permutations:N:K       union of K random permutations (seeded)
///
/// Seeded synthetics draw from deriveSeed(spec.seed, "pattern").
[[nodiscard]] patterns::PhasedPattern makeWorkload(const ExperimentSpec& spec);

}  // namespace engine
