// spec.hpp — Declarative experiment specifications for campaign sweeps.
//
// One ExperimentSpec names everything a single simulation run needs: the
// XGFT under test, the workload, the routing scheme, the message-size
// scale and the seed.  Campaign files describe whole sweeps declaratively:
// each non-comment line is a key=value spec whose values may be lists or
// integer ranges, and the line expands to the cross product — the Fig. 2/5
// slimming sweeps become two lines of text instead of a bench binary.
//
// Format (whitespace-separated key=value tokens; '#' starts a comment):
//
//   topo="XGFT(2; 16,16; 1,10)"   explicit topology (paper notation),
//                                 or a preset ("paper-slim", "kary:16:2")
//   m1=16 m2=16 w2=16..1          or the 2-level family, sweepable
//   pattern=cg128                 any registered workload (--list-patterns)
//   source=poisson:uniform        open-loop stream instead of pattern=
//                                 (--list-sources); every host injects
//   load={0.1,0.3,0.5}            offered load per host (fraction of the
//                                 link rate; needs source=, sweepable)
//   routing={Random,d-mod-k}      any registered scheme, or a {a,b,c} list
//   msg_scale=0.125               multiplies every message size (open-loop
//                                 messages are 4096 B * msg_scale)
//   seed=1..40                    integer ranges sweep inclusively
//   faults=links:10               failure plan (--list-faults); "none" is
//                                 the healthy baseline and the default
//   telemetry=summary             observation depth (off/summary/trace);
//                                 never changes simulated results
//
// Scheme, pattern and topology names resolve through the core:: registries
// (core/scenario.hpp) — the spec layer stores validated canonical names and
// holds no name->object knowledge of its own, so a scheme or workload
// registered anywhere is immediately sweepable from a campaign file.
//
// Expansion order is deterministic: keys vary in the order they appear on
// the line, the last key fastest, so job indices — and therefore derived
// seeds and output order — are stable across platforms and thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "patterns/pattern.hpp"
#include "xgft/params.hpp"

namespace engine {

/// Per-job observation depth (spec key `telemetry=off|summary|trace`).
/// RunnerOptions::telemetry sets a campaign-wide floor; the effective
/// level of a job is the max of the two.  Telemetry never changes
/// simulation results — only whether an obs::Recorder watches the run.
enum class TelemetryLevel : std::uint8_t {
  kOff = 0,      ///< No recorder attached (the default; zero overhead).
  kSummary = 1,  ///< Sampled time series + manifest digest.
  kTrace = 2,    ///< kSummary plus the per-event log for Chrome traces.
};

/// Parses "off"/"summary"/"trace"; throws std::invalid_argument otherwise.
[[nodiscard]] TelemetryLevel parseTelemetryLevel(const std::string& value);
[[nodiscard]] std::string_view telemetryLevelName(TelemetryLevel level);

/// One simulation job: the parse-level form of a core::Scenario (the
/// engine-wide sim::SimConfig is supplied by RunnerOptions at run time).
struct ExperimentSpec {
  xgft::Params topo = xgft::karyNTree(16, 2);
  std::string pattern = "cg128";
  std::string routing = "d-mod-k";  ///< Canonical scheme name.
  double msgScale = 1.0;
  std::uint64_t seed = 1;

  /// Open-loop streaming job (core::sourceRegistry() spec) — replaces the
  /// closed-loop pattern when non-empty; `load` is the offered load per
  /// host as a fraction of the link rate.
  std::string source;
  double load = 0.5;

  /// Failure plan for this job (`faults=` key; fault::planRegistry()
  /// spec).  Empty means healthy: the spec value "none" normalizes to ""
  /// so `faults=none` and an absent key are the same configuration —
  /// byte-identical CSVs and manifests.  Seeded plans draw from
  /// deriveSeed(seed, "fault").
  std::string faults;

  /// Observation depth for this job (`telemetry=` key).  Not part of the
  /// measured configuration: it is excluded from the CSV columns, and
  /// toLine() renders it only when != kOff so existing campaign files and
  /// golden CSVs are untouched.
  TelemetryLevel telemetry = TelemetryLevel::kOff;

  /// Shard workers for this job's event core (`sim_threads=` key).
  /// Host-volatile, like RunnerOptions::threads: 0 inherits the runner's
  /// choice, any value yields byte-identical results (sim/shard.hpp), so
  /// toLine() never renders it and it stays out of CSVs and the manifest
  /// byte-identity form.
  std::uint32_t simThreads = 0;

  /// Equality is over the *measured* configuration: simThreads is excluded
  /// (results are identical across values, toLine() drops it, and result
  /// lookup by spec must not fork on a wall-clock knob).
  friend bool operator==(const ExperimentSpec& a, const ExperimentSpec& b) {
    return a.topo == b.topo && a.pattern == b.pattern &&
           a.routing == b.routing && a.msgScale == b.msgScale &&
           a.seed == b.seed && a.source == b.source && a.load == b.load &&
           a.faults == b.faults && a.telemetry == b.telemetry;
  }

  /// Canonical one-line key=value rendering; parseSpecLine round-trips it.
  [[nodiscard]] std::string toLine() const;

  /// The construction-level view: this spec plus the simulator config.
  [[nodiscard]] core::Scenario scenario(const sim::SimConfig& sim = {}) const;
};

/// Parses a single spec line (no sweep syntax allowed).  Unknown keys,
/// malformed values and list/range values all throw std::invalid_argument;
/// unknown scheme/pattern/preset names surface the registry's uniform
/// "unknown <kind> '<name>' (registered: ...)" error.
[[nodiscard]] ExperimentSpec parseSpecLine(const std::string& line);

/// Expands one campaign line (sweep syntax allowed) to the cross product of
/// its value lists, last key fastest.
[[nodiscard]] std::vector<ExperimentSpec> expandCampaignLine(
    const std::string& line);

/// Parses a whole campaign: one expandable spec per line, '#' comments and
/// blank lines skipped.  Jobs are concatenated in file order.
[[nodiscard]] std::vector<ExperimentSpec> parseCampaign(std::istream& in);
[[nodiscard]] std::vector<ExperimentSpec> parseCampaign(
    const std::string& text);

/// Shortest decimal rendering of a double that parses back to the same
/// value ("1", "0.125") — used for canonical spec lines and CSV cells so
/// output is byte-stable across platforms and thread counts.
[[nodiscard]] std::string formatShortest(double v);

/// Fixed-precision decimal rendering of a double via std::to_chars — the
/// replacement for `os << std::fixed << std::setprecision(p)` in table and
/// report output, immune to locale and leaked stream state.
[[nodiscard]] std::string formatFixed(double v, int precision);

/// Derives an independent sub-seed for a named role ("pattern", "spray",
/// ...) from a job's base seed.  Forwarded from core::deriveSeed; pinned by
/// tests — a campaign that sweeps seed=1..N gives every (job, role) pair an
/// uncorrelated stream.
[[nodiscard]] inline std::uint64_t deriveSeed(std::uint64_t base,
                                              std::string_view role) {
  return core::deriveSeed(base, role);
}

/// Instantiates the workload named by @p spec.pattern through the pattern
/// registry, with message sizes already scaled by spec.msgScale (see
/// core::Scenario::makeWorkload; `campaign_cli --list-patterns` enumerates
/// the registered names).
[[nodiscard]] patterns::PhasedPattern makeWorkload(const ExperimentSpec& spec);

}  // namespace engine
