// manifest.hpp — Deterministic per-job run manifests (JSON sidecar).
//
// A manifest is the campaign CSV's operational companion: one JSON object
// per job, keyed by the job's canonical spec line (exactly what
// ExperimentSpec::toLine renders, so rows join 1:1 with the CSV), plus the
// campaign-level cache digest.  It records what the CSV deliberately
// excludes — wall-clock, simulated-events-per-second throughput, and the
// telemetry digest (peak queues, per-link-class utilization peaks, drop
// accounting) of jobs that ran with a recorder (DESIGN.md §9 has the
// schema).
//
// Determinism contract: with ManifestOptions::includeHost=false every byte
// of the manifest is a pure function of the specs (pinned byte-identical
// across --threads values by tests/engine/manifest_test.cpp).  Host
// timings are volatile by nature, so they live behind includeHost and are
// the only gated fields.  Formatting is one scalar per line, keys in fixed
// order, all numbers via to_chars — stable for line-oriented diffing.
#pragma once

#include <ostream>
#include <string>

#include "engine/results.hpp"

namespace engine {

struct ManifestOptions {
  /// Include host-side (non-deterministic) fields: campaign threads and
  /// wall time, per-job wall time and events/sec.
  bool includeHost = true;
};

/// Writes the whole campaign's manifest JSON.
void writeManifest(std::ostream& os, const CampaignResults& results,
                   const ManifestOptions& opt = {});

/// writeManifest to a string.
[[nodiscard]] std::string manifestToJson(const CampaignResults& results,
                                         const ManifestOptions& opt = {});

}  // namespace engine
