// runner.hpp — The parallel experiment-campaign engine.
//
// The simulator is single-threaded by design (event ties break by insertion
// order; see DESIGN.md), so the engine parallelizes *across* jobs: a
// work-stealing pool of workers, each executing whole ExperimentSpecs with
// its own sim::Network.  Two properties make campaigns fast and exact:
//
//  * Memoization.  Topology construction, routing tables and the
//    Full-Crossbar reference run are cached behind keys derived from the
//    spec, so a sweep that varies only the seed or the pattern reuses the
//    expensive pieces (the Colored optimizer dominates cold-start cost).
//    In-flight builds are shared: two workers missing on the same key wait
//    on one build instead of duplicating it.
//
//  * Determinism.  Every job's result is a pure function of its spec, and
//    results are keyed by job index, so the aggregated CSV is byte-identical
//    for --threads 1 and --threads N (checked by tests/engine).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "core/compiled_routes.hpp"
#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"
#include "engine/results.hpp"
#include "engine/spec.hpp"
#include "fault/degraded.hpp"
#include "obs/recorder.hpp"
#include "routing/router.hpp"
#include "sim/config.hpp"
#include "xgft/topology.hpp"

namespace engine {

/// Shared, thread-safe memo for the expensive per-campaign artifacts.
/// Values are built at most once per key; concurrent requesters for a key
/// being built block on the builder's future.
class CampaignCache {
 public:
  /// The topology for @p params (built once per distinct parameter set).
  [[nodiscard]] std::shared_ptr<const xgft::Topology> topology(
      const xgft::Params& params);

  /// The router @p spec asks for, on @p topo.  The returned pointer keeps
  /// the topology alive.  @p app is only consulted for pattern-aware
  /// algorithms (Colored).  Routers are immutable after construction, so
  /// one instance serves any number of workers.
  [[nodiscard]] std::shared_ptr<const routing::Router> router(
      const ExperimentSpec& spec,
      const std::shared_ptr<const xgft::Topology>& topo,
      const patterns::PhasedPattern& app);

  /// The compiled forwarding table for @p router (see core::CompiledRoutes):
  /// flat per-(src, dst) port-index arrays built once per router cache key —
  /// in parallel across @p threads workers (0 = hardware concurrency) — and
  /// shared immutably across campaign jobs, so the simulation hot path does
  /// a table lookup instead of a virtual route() call per message.
  [[nodiscard]] std::shared_ptr<const core::CompiledRoutes> compiledRoutes(
      const ExperimentSpec& spec,
      const std::shared_ptr<const routing::Router>& router,
      std::uint32_t threads);

  /// The interval-compressed forwarding table for @p router — the fallback
  /// for topologies whose flat table exceeds the engine's memory budget.
  /// Compilation is lazy (64-destination chunks build on first touch, so a
  /// sweep only pays for pairs it routes); closed-loop callers eager-build
  /// via CompiledRoutes::compileAll.  Returns (and memoizes) nullptr when
  /// even the compressed layout's sampled estimate exceeds @p maxBytes —
  /// schemes with per-pair randomness (Random) do not compress, and they
  /// keep the virtual-routing fallback exactly as before.
  [[nodiscard]] std::shared_ptr<const core::CompiledRoutes> compressedRoutes(
      const ExperimentSpec& spec,
      const std::shared_ptr<const routing::Router>& router,
      std::uint64_t maxBytes);

  /// The degraded forwarding table for @p router under @p plan's t = 0
  /// failed-link set (fault::compileDegraded).  Keyed by the router key
  /// plus the canonical plan spec, the unreachable policy and — only for
  /// seeded failure models — the derived fault seed, so a load sweep at a
  /// fixed failure rate compiles each degraded table once.  The healthy
  /// memo (compiledRoutes) never sees fault keys: `faults=none` campaigns
  /// hit exactly the same cache entries as before the fault subsystem
  /// existed.
  [[nodiscard]] std::shared_ptr<const core::CompiledRoutes> degradedRoutes(
      const ExperimentSpec& spec,
      const std::shared_ptr<const routing::Router>& router,
      const fault::FaultPlan& plan, fault::UnreachablePolicy policy,
      std::uint32_t threads);

  /// Makespan of @p app on the ideal Full-Crossbar under @p cfg.  Keyed on
  /// (pattern, msg_scale, sim config) — and the derived pattern seed only
  /// when the workload itself is seeded — so seed sweeps of a fixed
  /// workload simulate the reference exactly once.
  [[nodiscard]] sim::TimeNs crossbarMakespan(const ExperimentSpec& spec,
                                             const patterns::PhasedPattern& app,
                                             const sim::SimConfig& cfg);

  [[nodiscard]] CacheStats stats() const;

  /// Aggregate memory picture of the compressed tables built so far: their
  /// resident (built-chunk) bytes and the flat-layout bytes the same
  /// topologies would have cost.  Deterministic for a given campaign.
  [[nodiscard]] ForwardingStats forwardingStats() const;

 private:
  template <typename T>
  struct Memo {
    mutable core::Mutex mu;
    /// In-flight and completed builds; only the map is guarded — the
    /// futures themselves synchronize waiters with the builder.
    std::map<std::string, std::shared_future<T>> entries XGFT_GUARDED_BY(mu);
    std::uint64_t hits XGFT_GUARDED_BY(mu) = 0;
    std::uint64_t misses XGFT_GUARDED_BY(mu) = 0;

    /// Returns the value for @p key, invoking @p build at most once.
    template <typename Build>
    T get(const std::string& key, Build&& build);
  };

  Memo<std::shared_ptr<const xgft::Topology>> topologies_;
  Memo<std::shared_ptr<const routing::Router>> routers_;
  Memo<std::shared_ptr<const core::CompiledRoutes>> tables_;
  Memo<std::shared_ptr<const core::CompiledRoutes>> compressed_;
  Memo<std::shared_ptr<const core::CompiledRoutes>> degraded_;
  Memo<sim::TimeNs> references_;
};

struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::uint32_t threads = 0;

  /// Also compute the static contention / NCA-census columns (costs one
  /// route sweep per job for algorithms with static routes).
  bool collectContention = true;

  /// Compile static routes into flat forwarding tables (CompiledRoutes)
  /// shared across jobs, removing virtual route() dispatch from the
  /// replayer's per-message hot path.  Results are bit-identical either
  /// way; disable to measure the virtual path or to save memory.
  bool compileRoutes = true;

  /// Upper bound on one compiled table's size; topologies whose full
  /// ordered-pair table would exceed it fall back to virtual routing.
  std::uint64_t maxCompiledTableBytes = 64ull << 20;

  /// Worker threads one table compilation may use.  Runner::run sets this
  /// to the pool's idle share (pool width / concurrent jobs): a single-job
  /// campaign compiles across the whole pool, a saturated campaign
  /// compiles serially per worker instead of oversubscribing the machine.
  std::uint32_t compileThreads = 1;

  /// Shard workers one job's event core may use (sim/shard.hpp); a spec's
  /// own `sim_threads=` key overrides per job.  0 lets Runner::run trade
  /// intra-job against inter-job parallelism the same way compileThreads
  /// does (pool width / concurrent jobs) so a campaign never
  /// oversubscribes; results are byte-identical for any value.
  std::uint32_t simThreads = 0;

  /// Simulator parameters shared by every job in the campaign.
  sim::SimConfig sim = {};

  /// Open-loop (source=) jobs: measurement windows.  [0, warmup) settles
  /// the network, [warmup, warmup + measure) is the measured operating
  /// point, then sources stop and the run drains (trace/openloop.hpp).
  sim::TimeNs openLoopWarmupNs = 500'000;
  sim::TimeNs openLoopMeasureNs = 2'000'000;

  /// Optional progress callback, invoked serially (under a lock) as jobs
  /// finish, in completion order.
  std::function<void(const JobResult&)> onJobDone;

  /// Campaign-wide telemetry floor: every job runs at
  /// max(spec.telemetry, this).  A job with effective level > off gets its
  /// own obs::Recorder (returned via JobResult::telemetry); observation
  /// never changes simulated results, so CSVs stay byte-identical across
  /// levels (tests/engine/manifest_test.cpp pins this).
  TelemetryLevel telemetry = TelemetryLevel::kOff;

  /// Recorder shape for jobs whose effective level is > off
  /// (recordEvents is overridden per job: on iff the level is kTrace).
  obs::RecorderConfig recorder;
};

/// Executes one spec against a caller-provided cache.  Never throws: any
/// failure is captured in JobResult::error.  This is the unit of work the
/// pool schedules, exposed for tests and for callers that want their own
/// scheduling.
[[nodiscard]] JobResult runJob(const ExperimentSpec& spec,
                               std::uint32_t jobIndex, CampaignCache& cache,
                               const RunnerOptions& opt);

/// The campaign engine: owns the cache, shards jobs over a work-stealing
/// pool, aggregates results sorted by job index.
class Runner {
 public:
  explicit Runner(RunnerOptions opt = {});

  /// Runs every spec; returns once all jobs finished.  Safe to call
  /// repeatedly — later campaigns reuse the warm cache.
  [[nodiscard]] CampaignResults run(const std::vector<ExperimentSpec>& specs);

  [[nodiscard]] CampaignCache& cache() { return cache_; }
  [[nodiscard]] const RunnerOptions& options() const { return opt_; }

 private:
  RunnerOptions opt_;
  CampaignCache cache_;
};

}  // namespace engine
