#include "engine/campaigns.hpp"

#include <sstream>

#include "engine/spec.hpp"

namespace engine {

namespace {

/// The Fig. 2/5 progressive slimming sweep on XGFT(2;16,16;1,w2):
/// deterministic schemes once, seeded schemes swept over opt.seeds.
std::string slimmingCampaign(const std::string& name,
                             const std::string& pattern, bool rnca,
                             const CampaignOptions& opt) {
  std::ostringstream os;
  const std::string scale = " msg_scale=" + formatShortest(opt.msgScale);
  os << "# " << name << ": progressive slimming sweep, XGFT(2;16,16;1,w2)\n"
     << "pattern=" << pattern << scale
     << " w2=16..1 routing={s-mod-k,d-mod-k,colored} seed=1\n"
     << "pattern=" << pattern << scale << " w2=16..1 routing="
     << (rnca ? "{Random,r-NCA-u,r-NCA-d}" : "Random") << " seed=1.."
     << opt.seeds << "\n";
  return os.str();
}

void registerBuiltinCampaigns(core::Registry<CampaignInfo>& registry) {
  const auto slimming = [&](const std::string& name,
                            const std::string& pattern, bool rnca,
                            const std::string& figure) {
    CampaignInfo info;
    info.summary = figure + " slimming sweep of " + pattern +
                   (rnca ? " incl. the r-NCA proposals" : "");
    info.text = [name, pattern, rnca](const CampaignOptions& opt) {
      return slimmingCampaign(name, pattern, rnca, opt);
    };
    registry.add(name, std::move(info));
  };
  slimming("fig2-cg", "cg128", false, "Fig. 2");
  slimming("fig2-wrf", "wrf256", false, "Fig. 2");
  slimming("fig5-cg", "cg128", true, "Fig. 5");
  slimming("fig5-wrf", "wrf256", true, "Fig. 5");

  {
    CampaignInfo info;
    info.summary = "Fig. 4 per-NCA route-census extremes (alltoall:256)";
    info.text = [](const CampaignOptions& opt) {
      // All ordered pairs (alltoall) on the full and the slimmed tree: the
      // nca_routes_min/max columns are Fig. 4's per-NCA census extremes.
      // Tiny messages: the census is static, the simulation is a formality.
      std::ostringstream os;
      for (const char* w2 : {"16", "10"}) {
        os << "pattern=alltoall:256 msg_scale=0.002 w2=" << w2
           << " routing={s-mod-k,d-mod-k} seed=1\n"
           << "pattern=alltoall:256 msg_scale=0.002 w2=" << w2
           << " routing={Random,r-NCA-u,r-NCA-d} seed=1.." << opt.seeds
           << "\n";
      }
      return os.str();
    };
    registry.add("fig4", std::move(info));
  }

  {
    CampaignInfo info;
    info.summary =
        "open-loop load-latency sweep (uniform Poisson, paper-slim tree)";
    info.text = [](const CampaignOptions& opt) {
      // The classic accepted-throughput/latency methodology of the
      // random-traffic literature the paper cites (Sec. VII-C, [9]): sweep
      // the offered load on the slimmed tree and read the saturation knee
      // off the p99 column.  Deterministic schemes once, Random swept over
      // opt.seeds for the spread.
      std::ostringstream os;
      const std::string scale = " msg_scale=" + formatShortest(opt.msgScale);
      os << "# loadsweep: offered load vs accepted throughput + latency "
            "percentiles\n"
         << "topo=paper-slim source=poisson:uniform"
         << " load={0.05,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9}"
         << scale << " routing={d-mod-k,adaptive} seed=1\n"
         << "topo=paper-slim source=poisson:uniform"
         << " load={0.2,0.4,0.6,0.8}" << scale << " routing=Random seed=1.."
         << opt.seeds << "\n";
      return os.str();
    };
    registry.add("loadsweep", std::move(info));
  }

  {
    CampaignInfo info;
    info.summary =
        "accepted throughput / p99 latency vs link-failure rate "
        "(paper-slim tree)";
    info.text = [](const CampaignOptions& opt) {
      // Resilience curves: the loadsweep methodology at one moderate
      // operating point, swept over the fraction of failed fabric links.
      // Static table schemes only (adaptive/spray honour faults through
      // the per-segment policy, not table recompilation).  Accepted
      // throughput must degrade monotonically with the failure rate —
      // tests/engine/faultsweep_test.cpp pins that and byte-identity
      // across --threads.
      std::ostringstream os;
      const std::string scale = " msg_scale=" + formatShortest(opt.msgScale);
      os << "# faultsweep: accepted throughput + latency vs failure rate\n"
         << "topo=paper-slim source=poisson:uniform load=0.45" << scale
         << " routing={d-mod-k,Random}"
         << " faults={none,links:5,links:10,links:20,links:30} seed=1\n";
      return os.str();
    };
    registry.add("faultsweep", std::move(info));
  }

  {
    CampaignInfo info;
    info.summary =
        "scale-out open-loop tier: three-level trees up to 4096 hosts "
        "(interval-compressed forwarding state)";
    info.text = [](const CampaignOptions& opt) {
      // The loadsweep methodology on the three-level scale-out tier, at two
      // operating points (below and near the knee).  The 512-host tree
      // still fits the flat table budget; the 4096-host tree does not
      // (218 MB flat) and exercises the interval-compressed lazy path —
      // its manifest reports the compressed cache counters and the
      // forwarding-state memory block (xgft-manifest-v3).
      std::ostringstream os;
      const std::string scale = " msg_scale=" + formatShortest(opt.msgScale);
      os << "# bigsweep: open-loop scale-out tier, XGFT(3;...) trees\n"
         << "topo=xgft3:8:8:8:4:4:2 source=poisson:uniform"
         << " load={0.3,0.6}" << scale
         << " routing={d-mod-k,adaptive} seed=1\n"
         << "topo=xgft3:16:16:16:1:8:8 source=poisson:uniform"
         << " load={0.3,0.6}" << scale << " routing=d-mod-k seed=1\n";
      return os.str();
    };
    registry.add("bigsweep", std::move(info));
  }

  {
    CampaignInfo info;
    info.summary =
        "small cross-scheme determinism probe (golden-CSV regression)";
    info.text = [](const CampaignOptions& opt) {
      // Every route mode (table, adaptive, spray) over two slimmings of a
      // small tree — cheap enough for CI, wide enough that a change to any
      // construction or simulation path shows up in the CSV.
      std::ostringstream os;
      os << "# smoke: all route modes on XGFT(2;8,8;1,w2)\n"
         << "pattern=ring:64 msg_scale=" << formatShortest(opt.msgScale)
         << " m1=8 m2=8 w2={4,2} "
            "routing={s-mod-k,d-mod-k,colored,adaptive} seed=1\n"
         << "pattern=ring:64 msg_scale=" << formatShortest(opt.msgScale)
         << " m1=8 m2=8 w2={4,2} routing={Random,spray} seed=1.."
         << opt.seeds << "\n";
      return os.str();
    };
    registry.add("smoke", std::move(info));
  }
}

}  // namespace

core::Registry<CampaignInfo>& campaignRegistry() {
  return core::populatedRegistry<CampaignInfo, registerBuiltinCampaigns>(
      "builtin campaign");
}

std::string builtinCampaign(const std::string& name,
                            const CampaignOptions& opt) {
  return campaignRegistry().at(name).text(opt);
}

}  // namespace engine
