// campaigns.hpp — Registry of built-in campaigns (the paper's figure
// sweeps and CI probes), keyed by name.
//
// A built-in campaign renders to the exact campaign text a user would put
// in a file — the builtins go through the same parser/expander path as
// user campaigns, so "fig5-cg" is documentation you can run.  The registry
// replaces the CLI's name->text if-chain: callers enumerate names() or
// render one by name, and a new campaign is one registration in
// campaigns.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/registry.hpp"

namespace engine {

/// The tunables every built-in campaign accepts.
struct CampaignOptions {
  std::uint32_t seeds = 10;  ///< Seed-sweep width of randomized schemes.
  double msgScale = 0.125;   ///< Message-size scale.
};

struct CampaignInfo {
  std::string summary;  ///< One line for --list-campaigns.
  std::function<std::string(const CampaignOptions&)> text;
};

/// The process-wide built-in campaign registry (self-populated on first
/// access from campaigns.cpp).
[[nodiscard]] core::Registry<CampaignInfo>& campaignRegistry();

/// Renders the named built-in campaign; throws the registry's uniform
/// error for unknown names.
[[nodiscard]] std::string builtinCampaign(const std::string& name,
                                          const CampaignOptions& opt);

}  // namespace engine
