// results.hpp — Typed per-job results and deterministic CSV aggregation.
//
// Workers fill JobResults in whatever order the thread pool finishes them;
// CampaignResults orders rows by job index and formats every floating-point
// cell with shortest-round-trip or fixed-precision rendering, so the CSV a
// campaign emits is byte-identical for 1 and N worker threads (the engine's
// determinism contract, checked by tests/engine/runner_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "engine/spec.hpp"
#include "sim/network.hpp"

namespace obs {
class Recorder;
}

namespace engine {

/// Everything measured for one executed ExperimentSpec.
struct JobResult {
  std::uint32_t jobIndex = 0;
  ExperimentSpec spec;

  bool ok = false;
  std::string error;  ///< What the job threw, when !ok.

  /// Dynamic (simulated) measurements.
  sim::TimeNs makespanNs = 0;
  double slowdown = 0.0;  ///< makespan / Full-Crossbar reference makespan.
  sim::NetworkStats net;

  /// Wire utilization over the run, from Network::wireBusyNs: busy fraction
  /// of the busiest wire, and the mean over wires that carried traffic.
  double utilMax = 0.0;
  double utilMean = 0.0;

  /// Static contention picture (algorithms with static routes only).
  std::uint32_t maxFlowsPerChannel = 0;
  double maxDemand = 0.0;

  /// Routes-per-NCA census of the pattern's pairs over the top level
  /// (Fig. 4's metric), summarized as min/max per NCA node.
  std::uint64_t ncaRoutesMin = 0;
  std::uint64_t ncaRoutesMax = 0;

  /// Open-loop (source=) measurements: the measurement-window operating
  /// point.  Loads are fractions of the per-host link rate; latency is
  /// over messages injected inside the measurement window.
  bool openLoop = false;
  double offeredLoad = 0.0;
  double acceptedLoad = 0.0;
  std::uint64_t latencySamples = 0;
  sim::TimeNs latencyMinNs = 0;
  double latencyMeanNs = 0.0;
  sim::TimeNs latencyP50Ns = 0;
  sim::TimeNs latencyP99Ns = 0;
  sim::TimeNs latencyMaxNs = 0;

  /// Interned route-arena footprint of this job's network at the end of
  /// the run (uint32 entries; sim::RouteStore::arenaEntries).  Deterministic
  /// — the manifest's forwarding block reports the campaign peak.
  std::uint64_t routeArenaEntries = 0;

  /// Host wall-clock spent executing this job (manifests and the CLI
  /// progress line; never a CSV column — it is not deterministic).
  std::uint64_t wallNs = 0;

  /// The recorder that observed this job, when its effective telemetry
  /// level was > off (summary series, event log, digest); null otherwise.
  std::shared_ptr<const obs::Recorder> telemetry;
};

/// Aggregate cache behaviour of one campaign run (see CampaignCache).
struct CacheStats {
  std::uint64_t topologyHits = 0;
  std::uint64_t topologyMisses = 0;
  std::uint64_t routerHits = 0;
  std::uint64_t routerMisses = 0;
  std::uint64_t tableHits = 0;    ///< Compiled forwarding tables.
  std::uint64_t tableMisses = 0;
  std::uint64_t referenceHits = 0;
  std::uint64_t referenceMisses = 0;
  std::uint64_t degradedHits = 0;  ///< Degraded (fault) forwarding tables.
  std::uint64_t degradedMisses = 0;
  std::uint64_t compressedHits = 0;  ///< Interval-compressed tables.
  std::uint64_t compressedMisses = 0;
};

/// Forwarding-state memory picture of one campaign run, aggregated over the
/// cache's interval-compressed tables (engine::CampaignCache).  All sizes
/// are deterministic: lazily-built chunks depend only on which pairs the
/// workloads touched, never on thread count or scheduling.
struct ForwardingStats {
  /// What the same tables would occupy in the flat per-pair layout.
  std::uint64_t tableBytesFlat = 0;
  /// Resident bytes of the compressed tables (built chunks only).
  std::uint64_t tableBytesCompressed = 0;
};

/// The outcome of a whole campaign.
struct CampaignResults {
  std::vector<JobResult> jobs;  ///< Sorted by jobIndex after run().

  std::uint32_t threadsUsed = 0;
  /// Per-job shard-worker budget the pool settled on (specs' own
  /// sim_threads= keys override per job).  Host-volatile, like threadsUsed.
  std::uint32_t simThreadsUsed = 0;
  std::uint64_t wallTimeNs = 0;  ///< Host wall-clock of the pool run.
  CacheStats cache;
  ForwardingStats forwarding;  ///< Empty unless compressed tables were used.

  /// Sorts jobs by index (idempotent; run() already leaves them sorted).
  void sortByIndex();

  /// Finds the result of an exact spec, nullptr if absent.
  [[nodiscard]] const JobResult* find(const ExperimentSpec& spec) const;

  /// The CSV column header (no trailing newline).  @p openLoop appends the
  /// load–latency columns and @p faulted the failure columns; campaigns
  /// without open-loop or faulted jobs emit exactly the historical header
  /// so existing golden CSVs stay byte-identical.
  [[nodiscard]] static std::string csvHeader(bool openLoop,
                                             bool faulted = false);
  [[nodiscard]] static std::string csvHeader() { return csvHeader(false); }

  /// True when any job is an open-loop (source=) run — writeCsv then emits
  /// the extended columns for every row.
  [[nodiscard]] bool hasOpenLoopJobs() const;

  /// True when any job carries a fault plan (spec.faults non-empty) —
  /// writeCsv then emits the failure columns for every row (healthy rows
  /// report faults=none and zero counters).
  [[nodiscard]] bool hasFaultJobs() const;

  /// One deterministic CSV row per job, sorted by job index.  Fields that
  /// may contain commas or quotes (topology, error) are double-quoted with
  /// quote doubling.
  void writeCsv(std::ostream& os) const;

  /// writeCsv including the header line, as a string.
  [[nodiscard]] std::string toCsv() const;
};

}  // namespace engine
