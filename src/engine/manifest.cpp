#include "engine/manifest.hpp"

#include <algorithm>
#include <vector>

#include "obs/json_util.hpp"
#include "obs/recorder.hpp"

namespace engine {

namespace {

/// Line-oriented JSON emitter: every scalar on its own line, fixed key
/// order, to_chars numbers — the whole file is greppable and diffable.
class JsonLines {
 public:
  explicit JsonLines(std::string& out) : out_(out) {}

  void open(const char* brace) {  // "{" or "["
    key(nullptr);
    out_ += brace;
    out_ += '\n';
    ++depth_;
    firstInScope_ = true;
  }
  void openKeyed(const char* name, const char* brace) {
    key(name);
    out_ += brace;
    out_ += '\n';
    ++depth_;
    firstInScope_ = true;
  }
  void close(const char* brace) {  // "}" or "]"
    --depth_;
    out_ += '\n';
    indent();
    out_ += brace;
    firstInScope_ = false;
  }

  void field(const char* name, const std::string& rendered) {
    key(name);
    out_ += rendered;
  }
  void str(const char* name, const std::string& value) {
    key(name);
    out_ += '"';
    obs::jsonEscapeTo(out_, value);
    out_ += '"';
  }
  void u64(const char* name, std::uint64_t value) {
    field(name, std::to_string(value));
  }
  void dbl(const char* name, double value) {
    field(name, obs::formatJsonDouble(value));
  }

 private:
  void key(const char* name) {
    if (!firstInScope_) {
      out_ += ",\n";
    }
    firstInScope_ = false;
    indent();
    if (name != nullptr) {
      out_ += '"';
      out_ += name;
      out_ += "\": ";
    }
  }
  void indent() { out_.append(2 * depth_, ' '); }

  std::string& out_;
  int depth_ = 0;
  bool firstInScope_ = true;
};

void writeJob(JsonLines& json, const JobResult& job,
              const ManifestOptions& opt) {
  json.open("{");
  json.u64("job", job.jobIndex);
  json.str("key", job.spec.toLine());
  json.str("status", job.ok ? "ok" : "error");
  if (!job.ok) json.str("error", job.error);
  json.u64("makespan_ns", job.makespanNs);
  json.dbl("slowdown", job.slowdown);
  json.u64("messages", job.net.messagesDelivered);
  json.u64("segments", job.net.segmentsDelivered);
  json.u64("events", job.net.eventsProcessed);
  json.u64("max_out_queue", job.net.maxOutputQueueDepth);
  json.u64("max_in_queue", job.net.maxInputQueueDepth);
  if (opt.includeHost) {
    json.dbl("wall_ms", static_cast<double>(job.wallNs) / 1e6);
    const double wallSec = static_cast<double>(job.wallNs) / 1e9;
    json.dbl("events_per_sec",
             wallSec > 0.0
                 ? static_cast<double>(job.net.eventsProcessed) / wallSec
                 : 0.0);
  }
  if (job.openLoop) {
    json.openKeyed("open_loop", "{");
    json.dbl("offered_load", job.offeredLoad);
    json.dbl("accepted_load", job.acceptedLoad);
    json.u64("latency_samples", job.latencySamples);
    json.u64("latency_p50_ns", job.latencyP50Ns);
    json.u64("latency_p99_ns", job.latencyP99Ns);
    json.close("}");
  }
  if (!job.spec.faults.empty()) {
    json.openKeyed("faults", "{");
    json.str("plan", job.spec.faults);
    json.u64("segments_rerouted", job.net.segmentsRerouted);
    json.u64("segments_stranded", job.net.segmentsStranded);
    json.u64("messages_dropped", job.net.messagesDropped);
    json.u64("link_down_ns", job.net.linkDownNs);
    json.close("}");
  }
  if (job.telemetry) {
    const obs::RecorderSummary t = job.telemetry->summary();
    json.openKeyed("telemetry", "{");
    json.u64("samples", t.samples);
    json.u64("effective_period_ns", t.effectivePeriodNs);
    json.u64("events_recorded", t.eventsRecorded);
    json.u64("events_dropped", t.eventsDropped);
    json.u64("messages_released", t.messagesReleased);
    json.u64("messages_delivered", t.messagesDelivered);
    json.u64("peak_inflight", t.peakInFlight);
    json.u64("peak_queued_segments", t.peakQueuedSegments);
    json.u64("peak_queue_depth", t.peakQueueDepth);
    json.u64("peak_queue_port", t.peakQueuePort);
    json.u64("peak_blocked_inputs", t.peakBlockedInputs);
    json.dbl("peak_group_util", t.peakGroupUtil);
    json.str("peak_group_label", t.peakGroupLabel);
    json.close("}");
  }
  json.close("}");
}

}  // namespace

void writeManifest(std::ostream& os, const CampaignResults& results,
                   const ManifestOptions& opt) {
  os << manifestToJson(results, opt);
}

std::string manifestToJson(const CampaignResults& results,
                           const ManifestOptions& opt) {
  std::vector<const JobResult*> ordered;
  ordered.reserve(results.jobs.size());
  for (const JobResult& job : results.jobs) ordered.push_back(&job);
  std::sort(ordered.begin(), ordered.end(),
            [](const JobResult* a, const JobResult* b) {
              return a->jobIndex < b->jobIndex;
            });

  // Faulted campaigns bump the schema (per-job "faults" blocks, degraded
  // cache counters), and campaigns that consulted interval-compressed
  // forwarding tables bump it again (compressed cache counters plus the
  // campaign "forwarding" memory block); campaigns using neither emit v1
  // byte-for-byte.  The compressed gate counts memo lookups, which are
  // per-job deterministic — never thread-count dependent.
  const bool faulted = results.hasFaultJobs();
  const bool compressed =
      results.cache.compressedHits + results.cache.compressedMisses > 0;
  std::string out;
  JsonLines json(out);
  json.open("{");
  json.str("schema", compressed ? "xgft-manifest-v3"
                     : faulted  ? "xgft-manifest-v2"
                                : "xgft-manifest-v1");
  json.openKeyed("campaign", "{");
  json.u64("jobs", results.jobs.size());
  if (opt.includeHost) {
    json.u64("threads", results.threadsUsed);
    json.u64("sim_threads", results.simThreadsUsed);
    json.dbl("wall_ms", static_cast<double>(results.wallTimeNs) / 1e6);
  }
  json.openKeyed("cache", "{");
  json.u64("topology_hits", results.cache.topologyHits);
  json.u64("topology_misses", results.cache.topologyMisses);
  json.u64("router_hits", results.cache.routerHits);
  json.u64("router_misses", results.cache.routerMisses);
  json.u64("table_hits", results.cache.tableHits);
  json.u64("table_misses", results.cache.tableMisses);
  json.u64("reference_hits", results.cache.referenceHits);
  json.u64("reference_misses", results.cache.referenceMisses);
  if (faulted) {
    json.u64("degraded_hits", results.cache.degradedHits);
    json.u64("degraded_misses", results.cache.degradedMisses);
  }
  if (compressed) {
    json.u64("compressed_hits", results.cache.compressedHits);
    json.u64("compressed_misses", results.cache.compressedMisses);
  }
  json.close("}");
  if (compressed) {
    // Deterministic memory picture: built chunks depend only on which pairs
    // the jobs routed, and the per-job arena peak only on the workloads.
    std::uint64_t arenaPeak = 0;
    for (const JobResult* job : ordered) {
      arenaPeak = std::max(
          arenaPeak, job->routeArenaEntries * sizeof(std::uint32_t));
    }
    json.openKeyed("forwarding", "{");
    json.u64("table_bytes_flat", results.forwarding.tableBytesFlat);
    json.u64("table_bytes_compressed",
             results.forwarding.tableBytesCompressed);
    json.u64("route_arena_peak_bytes", arenaPeak);
    json.close("}");
  }
  json.close("}");
  json.openKeyed("jobs", "[");
  for (const JobResult* job : ordered) writeJob(json, *job, opt);
  json.close("]");
  json.close("}");
  out += '\n';
  return out;
}

}  // namespace engine
