#include "patterns/applications.hpp"

#include <stdexcept>
#include <string>

namespace patterns {

PhasedPattern wrfHalo(Rank rows, Rank cols, Bytes bytes) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("wrfHalo: mesh dimensions must be >= 1");
  }
  const Rank n = rows * cols;
  Pattern phase(n);
  for (Rank i = 0; i < n; ++i) {
    if (i + cols < n) phase.add(i, i + cols, bytes);
    if (i >= cols) phase.add(i, i - cols, bytes);
  }
  PhasedPattern app;
  app.name = "WRF-" + std::to_string(n) + " halo (" + std::to_string(rows) +
             "x" + std::to_string(cols) + " mesh, +/-" +
             std::to_string(cols) + ")";
  app.numRanks = n;
  app.phases.push_back(std::move(phase));
  return app;
}

PhasedPattern wrf256(Bytes bytes) { return wrfHalo(16, 16, bytes); }

Rank cgPhase5Destination(Rank s, Rank numRanks, Rank blockSize) {
  const Rank numBlocks = numRanks / blockSize;
  const Rank g = blockSize / numBlocks;  // Group width; 2 in the paper (Eq. 2).
  const Rank b = s / blockSize;
  const Rank j = s % blockSize;
  const Rank destBlock = j / g;
  const Rank destLocal = g * b + (j % g);
  return destBlock * blockSize + destLocal;
}

PhasedPattern cgPhases(Rank numRanks, Rank blockSize, Bytes bytes) {
  if (blockSize == 0 || numRanks % blockSize != 0) {
    throw std::invalid_argument("cgPhases: numRanks must be a multiple of blockSize");
  }
  if ((blockSize & (blockSize - 1)) != 0) {
    throw std::invalid_argument("cgPhases: blockSize must be a power of two");
  }
  const Rank numBlocks = numRanks / blockSize;
  if (numBlocks == 0 || blockSize % numBlocks != 0) {
    throw std::invalid_argument(
        "cgPhases: Eq. (2) requires numBlocks to divide blockSize "
        "(the paper's instance is 128 ranks in blocks of 16)");
  }
  PhasedPattern app;
  app.name = "CG-" + std::to_string(numRanks) + " (blocks of " +
             std::to_string(blockSize) + ")";
  app.numRanks = numRanks;

  // Local phases: pairwise exchange along each hypercube dimension of the
  // in-block index.  All flows stay within a block, i.e. within a
  // first-level switch when blockSize == m_1 and ranks map sequentially.
  for (Rank dim = 1; dim < blockSize; dim <<= 1) {
    Pattern phase(numRanks);
    for (Rank s = 0; s < numRanks; ++s) {
      const Rank block = s / blockSize;
      const Rank j = s % blockSize;
      phase.add(s, block * blockSize + (j ^ dim), bytes);
    }
    app.phases.push_back(std::move(phase));
  }

  // Phase 5: the non-local involution of Eq. (2).
  Pattern phase5(numRanks);
  for (Rank s = 0; s < numRanks; ++s) {
    phase5.add(s, cgPhase5Destination(s, numRanks, blockSize), bytes);
  }
  app.phases.push_back(std::move(phase5));
  return app;
}

PhasedPattern cgD128(Bytes bytes) { return cgPhases(128, 16, bytes); }

}  // namespace patterns
