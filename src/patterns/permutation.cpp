#include "patterns/permutation.hpp"

#include <numeric>
#include <stdexcept>

#include "xgft/rng.hpp"

namespace patterns {
namespace {

bool isPowerOfTwo(Rank n) { return n != 0 && (n & (n - 1)) == 0; }

std::uint32_t log2Of(Rank n) {
  std::uint32_t b = 0;
  while ((Rank{1} << (b + 1)) <= n) ++b;
  return b;
}

}  // namespace

Permutation::Permutation(Rank n) : map_(n) {
  std::iota(map_.begin(), map_.end(), Rank{0});
}

Permutation::Permutation(std::vector<Rank> mapping) : map_(std::move(mapping)) {
  std::vector<bool> seen(map_.size(), false);
  for (const Rank d : map_) {
    if (d >= map_.size() || seen[d]) {
      throw std::invalid_argument("Permutation: mapping is not a bijection");
    }
    seen[d] = true;
  }
}

Permutation Permutation::inverse() const {
  std::vector<Rank> inv(map_.size());
  for (Rank s = 0; s < size(); ++s) inv[map_[s]] = s;
  return Permutation(std::move(inv));
}

Permutation Permutation::compose(const Permutation& other) const {
  if (other.size() != size()) {
    throw std::invalid_argument("Permutation::compose: size mismatch");
  }
  std::vector<Rank> composed(map_.size());
  for (Rank s = 0; s < size(); ++s) composed[s] = map_[other.map_[s]];
  return Permutation(std::move(composed));
}

bool Permutation::isInvolution() const {
  for (Rank s = 0; s < size(); ++s) {
    if (map_[map_[s]] != s) return false;
  }
  return true;
}

Pattern Permutation::toPattern(Bytes bytes, bool keepSelf) const {
  Pattern p(size());
  for (Rank s = 0; s < size(); ++s) {
    if (map_[s] != s || keepSelf) p.add(s, map_[s], bytes);
  }
  return p;
}

Permutation randomPermutation(Rank n, std::uint64_t seed) {
  std::vector<Rank> map(n);
  std::iota(map.begin(), map.end(), Rank{0});
  xgft::Rng rng(seed);
  rng.shuffle(map);
  return Permutation(std::move(map));
}

Permutation shiftPermutation(Rank n, Rank s) {
  std::vector<Rank> map(n);
  for (Rank i = 0; i < n; ++i) map[i] = (i + s) % n;
  return Permutation(std::move(map));
}

Permutation bitReversal(Rank n) {
  if (!isPowerOfTwo(n)) {
    throw std::invalid_argument("bitReversal: n must be a power of two");
  }
  const std::uint32_t bits = log2Of(n);
  std::vector<Rank> map(n);
  for (Rank i = 0; i < n; ++i) {
    Rank r = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if ((i >> b) & 1u) r |= Rank{1} << (bits - 1 - b);
    }
    map[i] = r;
  }
  return Permutation(std::move(map));
}

Permutation bitComplement(Rank n) {
  if (!isPowerOfTwo(n)) {
    throw std::invalid_argument("bitComplement: n must be a power of two");
  }
  std::vector<Rank> map(n);
  for (Rank i = 0; i < n; ++i) map[i] = (n - 1) ^ i;
  return Permutation(std::move(map));
}

Permutation transpose(Rank rows, Rank cols) {
  const Rank n = rows * cols;
  std::vector<Rank> map(n);
  for (Rank i = 0; i < rows; ++i) {
    for (Rank j = 0; j < cols; ++j) {
      map[i * cols + j] = j * rows + i;
    }
  }
  return Permutation(std::move(map));
}

Permutation butterfly(Rank n, std::uint32_t bit) {
  if (!isPowerOfTwo(n)) {
    throw std::invalid_argument("butterfly: n must be a power of two");
  }
  if ((Rank{1} << bit) >= n) {
    throw std::invalid_argument("butterfly: bit out of range");
  }
  std::vector<Rank> map(n);
  for (Rank i = 0; i < n; ++i) map[i] = i ^ (Rank{1} << bit);
  return Permutation(std::move(map));
}

}  // namespace patterns
