// register.hpp — Self-registration of the built-in traffic patterns.
//
// The patterns module owns the knowledge of which workloads exist and how
// to build them; core::patternRegistry() calls this hook exactly once on
// first access.  To add a workload, extend registerBuiltinPatterns (one
// edit, in this module) — campaign files and CLIs pick the new name up
// through the registry without any change.
#pragma once

#include "core/registry.hpp"
#include "core/scenario.hpp"

namespace patterns {

void registerBuiltinPatterns(core::Registry<core::PatternInfo>& registry);

/// The open-loop traffic sources (source.hpp); core::sourceRegistry()
/// calls this hook exactly once on first access.
void registerBuiltinSources(core::Registry<core::SourceInfo>& registry);

}  // namespace patterns
