#include "patterns/register.hpp"

#include "patterns/applications.hpp"
#include "patterns/synthetic.hpp"

namespace patterns {

namespace {

using core::PatternContext;
using core::PatternInfo;
using core::SpecName;

/// Default message size for the parameterized synthetic workloads; keeps
/// them in the same bandwidth-dominated regime as the paper's traces.
constexpr Bytes kSyntheticBytes = 512 * 1024;

/// Registers a whole-application (multi-phase) workload.
void addPhased(core::Registry<PatternInfo>& registry, std::string name,
               std::string usage, std::string summary, bool seeded,
               std::function<PhasedPattern(const SpecName&,
                                           const PatternContext&)>
                   make) {
  PatternInfo info;
  info.usage = std::move(usage);
  info.summary = std::move(summary);
  info.seeded = seeded;
  info.make = [name, make = std::move(make)](
                  const std::vector<std::string>& args,
                  const PatternContext& ctx) {
    return make(core::joinSpec(name, args), ctx);
  };
  registry.add(std::move(name), std::move(info));
}

/// Registers a single-phase workload from a Pattern factory.
void addSingle(core::Registry<PatternInfo>& registry, std::string name,
               std::string usage, std::string summary, bool seeded,
               std::function<Pattern(const SpecName&, const PatternContext&)>
                   make) {
  addPhased(registry, std::move(name), std::move(usage), std::move(summary),
            seeded,
            [make = std::move(make)](const SpecName& spec,
                                     const PatternContext& ctx) {
              Pattern p = make(spec, ctx);
              PhasedPattern app;
              app.numRanks = p.numRanks();
              app.phases.push_back(std::move(p));
              return app;
            });
}

}  // namespace

void registerBuiltinPatterns(core::Registry<core::PatternInfo>& registry) {
  addPhased(registry, "cg128", "cg128",
            "the paper's NAS CG.D-128 phases (Sec. VII-A)", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(0);
              return cgD128();
            });
  addPhased(registry, "wrf256", "wrf256",
            "the paper's WRF halo exchange on a 16x16 task mesh", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(0);
              return wrf256();
            });
  addPhased(registry, "wrf64", "wrf64", "WRF-style halo on an 8x8 task mesh",
            false, [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(0);
              PhasedPattern app = wrfHalo(8, 8, kWrfMessageBytes);
              app.name = "wrf64";
              return app;
            });
  addPhased(registry, "shift", "shift:N",
            "the N-1 cyclic-shift phases of all-to-all algorithms [9]", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return shiftAllToAll(spec.argU32(0), kSyntheticBytes);
            });
  addSingle(registry, "ring", "ring:N", "N-rank bidirectional ring exchange",
            false, [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return ringExchange(spec.argU32(0), kSyntheticBytes);
            });
  addSingle(registry, "alltoall", "alltoall:N",
            "N-rank personalized all-to-all (single phase)", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return allToAll(spec.argU32(0), kSyntheticBytes);
            });
  addSingle(registry, "hotspot", "hotspot:N",
            "all N ranks send to rank 0 (pure endpoint contention)", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return hotspot(spec.argU32(0), 0, kSyntheticBytes);
            });
  addSingle(registry, "stencil", "stencil:R:C",
            "5-point halo exchange on an R x C task mesh", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(2);
              return stencil2D(spec.argU32(0), spec.argU32(1),
                               kSyntheticBytes);
            });
  addSingle(registry, "uniform", "uniform:N:F",
            "F uniform-random flows per rank over N ranks (seeded)", true,
            [](const SpecName& spec, const PatternContext& ctx) {
              spec.requireArity(2);
              return uniformRandom(spec.argU32(0), spec.argU32(1),
                                   kSyntheticBytes, ctx.seed);
            });
  addSingle(registry, "permutations", "permutations:N:K",
            "union of K random permutations over N ranks (seeded)", true,
            [](const SpecName& spec, const PatternContext& ctx) {
              spec.requireArity(2);
              return unionOfRandomPermutations(spec.argU32(0), spec.argU32(1),
                                               kSyntheticBytes, ctx.seed);
            });
}

}  // namespace patterns
