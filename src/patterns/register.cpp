#include "patterns/register.hpp"

#include <charconv>
#include <stdexcept>

#include "patterns/applications.hpp"
#include "patterns/source.hpp"
#include "patterns/synthetic.hpp"

namespace patterns {

namespace {

using core::PatternContext;
using core::PatternInfo;
using core::SourceContext;
using core::SourceInfo;
using core::SpecName;

/// Default message size for the parameterized synthetic workloads; keeps
/// them in the same bandwidth-dominated regime as the paper's traces.
constexpr Bytes kSyntheticBytes = 512 * 1024;

/// Registers a whole-application (multi-phase) workload.
void addPhased(core::Registry<PatternInfo>& registry, std::string name,
               std::string usage, std::string summary, bool seeded,
               std::function<PhasedPattern(const SpecName&,
                                           const PatternContext&)>
                   make) {
  PatternInfo info;
  info.usage = std::move(usage);
  info.summary = std::move(summary);
  info.seeded = seeded;
  info.make = [name, make = std::move(make)](
                  const std::vector<std::string>& args,
                  const PatternContext& ctx) {
    return make(core::joinSpec(name, args), ctx);
  };
  registry.add(std::move(name), std::move(info));
}

/// Registers a single-phase workload from a Pattern factory.
void addSingle(core::Registry<PatternInfo>& registry, std::string name,
               std::string usage, std::string summary, bool seeded,
               std::function<Pattern(const SpecName&, const PatternContext&)>
                   make) {
  addPhased(registry, std::move(name), std::move(usage), std::move(summary),
            seeded,
            [make = std::move(make)](const SpecName& spec,
                                     const PatternContext& ctx) {
              Pattern p = make(spec, ctx);
              PhasedPattern app;
              app.numRanks = p.numRanks();
              app.phases.push_back(std::move(p));
              return app;
            });
}

}  // namespace

void registerBuiltinPatterns(core::Registry<core::PatternInfo>& registry) {
  addPhased(registry, "cg128", "cg128",
            "the paper's NAS CG.D-128 phases (Sec. VII-A)", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(0);
              return cgD128();
            });
  addPhased(registry, "wrf256", "wrf256",
            "the paper's WRF halo exchange on a 16x16 task mesh", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(0);
              return wrf256();
            });
  addPhased(registry, "wrf64", "wrf64", "WRF-style halo on an 8x8 task mesh",
            false, [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(0);
              PhasedPattern app = wrfHalo(8, 8, kWrfMessageBytes);
              app.name = "wrf64";
              return app;
            });
  addPhased(registry, "shift", "shift:N",
            "the N-1 cyclic-shift phases of all-to-all algorithms [9]", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return shiftAllToAll(spec.argU32(0), kSyntheticBytes);
            });
  addSingle(registry, "ring", "ring:N", "N-rank bidirectional ring exchange",
            false, [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return ringExchange(spec.argU32(0), kSyntheticBytes);
            });
  addSingle(registry, "alltoall", "alltoall:N",
            "N-rank personalized all-to-all (single phase)", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return allToAll(spec.argU32(0), kSyntheticBytes);
            });
  addSingle(registry, "hotspot", "hotspot:N",
            "all N ranks send to rank 0 (pure endpoint contention)", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(1);
              return hotspot(spec.argU32(0), 0, kSyntheticBytes);
            });
  addSingle(registry, "stencil", "stencil:R:C",
            "5-point halo exchange on an R x C task mesh", false,
            [](const SpecName& spec, const PatternContext&) {
              spec.requireArity(2);
              return stencil2D(spec.argU32(0), spec.argU32(1),
                               kSyntheticBytes);
            });
  addSingle(registry, "uniform", "uniform:N:F",
            "F uniform-random flows per rank over N ranks (seeded)", true,
            [](const SpecName& spec, const PatternContext& ctx) {
              spec.requireArity(2);
              return uniformRandom(spec.argU32(0), spec.argU32(1),
                                   kSyntheticBytes, ctx.seed);
            });
  addSingle(registry, "permutations", "permutations:N:K",
            "union of K random permutations over N ranks (seeded)", true,
            [](const SpecName& spec, const PatternContext& ctx) {
              spec.requireArity(2);
              return unionOfRandomPermutations(spec.argU32(0), spec.argU32(1),
                                               kSyntheticBytes, ctx.seed);
            });
}

namespace {

/// Shared spec parsing of the open-loop sources: the first arg names the
/// destination distribution, hotspot takes an optional percentage
/// ("poisson:hotspot:30" aims 30% of each rank's messages at rank 0).
OpenLoopConfig openLoopConfig(const SpecName& spec, const SourceContext& ctx,
                              ArrivalProcess arrivals) {
  if (spec.args.empty()) {
    throw std::invalid_argument(
        "'" + spec.full +
        "' wants a destination distribution (uniform | hotspot[:PCT] | perm)");
  }
  OpenLoopConfig cfg;
  cfg.arrivals = arrivals;
  const std::string& dest = spec.args[0];
  if (dest == "uniform") {
    spec.requireArity(1);
    cfg.dest = DestDistribution::kUniform;
  } else if (dest == "perm") {
    spec.requireArity(1);
    cfg.dest = DestDistribution::kPermutation;
  } else if (dest == "hotspot") {
    cfg.dest = DestDistribution::kHotspot;
    if (spec.args.size() > 2) spec.requireArity(2);
    if (spec.args.size() == 2) {
      const std::uint32_t pct = spec.argU32(1);
      if (pct > 100) {
        throw std::invalid_argument("'" + spec.full +
                                    "': hotspot percentage exceeds 100");
      }
      cfg.hotFraction = static_cast<double>(pct) / 100.0;
    }
  } else {
    throw std::invalid_argument(
        "'" + spec.full + "': unknown destination distribution '" + dest +
        "' (known: uniform, hotspot[:PCT], perm)");
  }
  cfg.numRanks = ctx.numRanks;
  cfg.load = ctx.load;
  cfg.hostBytesPerNs = ctx.hostBytesPerNs;
  cfg.messageBytes = ctx.messageBytes;
  cfg.startNs = ctx.startNs;
  cfg.stopNs = ctx.stopNs;
  cfg.seed = ctx.seed;
  return cfg;
}

void addSource(core::Registry<SourceInfo>& registry, std::string name,
               std::string usage, std::string summary,
               ArrivalProcess arrivals) {
  SourceInfo info;
  info.usage = std::move(usage);
  info.summary = std::move(summary);
  info.make = [name, arrivals](const std::vector<std::string>& args,
                               const SourceContext& ctx)
      -> std::unique_ptr<TrafficSource> {
    return std::make_unique<OpenLoopSource>(
        openLoopConfig(core::joinSpec(name, args), ctx, arrivals));
  };
  registry.add(std::move(name), std::move(info));
}

}  // namespace

void registerBuiltinSources(core::Registry<core::SourceInfo>& registry) {
  addSource(registry, "poisson", "poisson:DEST[:PCT]",
            "open-loop Poisson arrivals (DEST: uniform | hotspot[:PCT] | "
            "perm)",
            ArrivalProcess::kPoisson);
  addSource(registry, "bursty", "bursty:DEST[:PCT]",
            "open-loop on/off bursts at line rate (DEST: uniform | "
            "hotspot[:PCT] | perm)",
            ArrivalProcess::kBursty);
}

}  // namespace patterns
