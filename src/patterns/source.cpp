#include "patterns/source.hpp"

#include <cmath>
#include <stdexcept>

namespace patterns {

void TrafficSource::onDelivered(std::uint64_t /*token*/, sim::TimeNs /*now*/) {}

void TrafficSource::onWake(std::uint64_t /*cookie*/, sim::TimeNs /*now*/) {}

namespace {

/// 53 uniform mantissa bits mapped into (0, 1] — never 0, so -log(u) is
/// finite.
double unitOpen(std::uint64_t bits) {
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

OpenLoopSource::OpenLoopSource(OpenLoopConfig cfg) : cfg_(cfg) {
  if (cfg_.numRanks < 2) {
    throw std::invalid_argument("OpenLoopSource: need at least 2 ranks");
  }
  if (!(cfg_.load > 0.0)) {
    throw std::invalid_argument("OpenLoopSource: load must be > 0");
  }
  if (!(cfg_.hostBytesPerNs > 0.0)) {
    throw std::invalid_argument("OpenLoopSource: hostBytesPerNs must be > 0");
  }
  if (cfg_.messageBytes == 0) {
    throw std::invalid_argument("OpenLoopSource: messageBytes must be > 0");
  }
  if (cfg_.stopNs <= cfg_.startNs) {
    throw std::invalid_argument("OpenLoopSource: empty [start, stop) window");
  }
  if (cfg_.dest == DestDistribution::kHotspot &&
      (cfg_.hotFraction < 0.0 || cfg_.hotFraction > 1.0)) {
    throw std::invalid_argument("OpenLoopSource: hotFraction outside [0, 1]");
  }
  if (cfg_.arrivals == ArrivalProcess::kBursty && cfg_.burstLength == 0) {
    throw std::invalid_argument("OpenLoopSource: burstLength must be > 0");
  }
  const double bytes = static_cast<double>(cfg_.messageBytes);
  meanGapNs_ = bytes / (cfg_.load * cfg_.hostBytesPerNs);
  peakGapNs_ = bytes / cfg_.hostBytesPerNs;
  // kBursty: B messages per cycle, B-1 line-rate gaps inside the burst plus
  // one idle gap; the idle mean is whatever keeps the cycle's mean gap at
  // meanGapNs_.  Loads at or beyond line rate clamp the idle gap to zero
  // (the source then offers exactly the line rate, back to back).
  const double b = static_cast<double>(cfg_.burstLength);
  offMeanNs_ = std::max(0.0, b * meanGapNs_ - (b - 1.0) * peakGapNs_);

  streams_.reserve(cfg_.numRanks);
  for (Rank r = 0; r < cfg_.numRanks; ++r) {
    streams_.emplace_back(xgft::hashMix(cfg_.seed, r));
  }
  if (cfg_.arrivals == ArrivalProcess::kBursty) {
    burstLeft_.assign(cfg_.numRanks, 0);
  }
  if (cfg_.dest == DestDistribution::kPermutation) {
    permutation_.resize(cfg_.numRanks);
    for (Rank r = 0; r < cfg_.numRanks; ++r) permutation_[r] = r;
    // A dedicated stream: the permutation must not perturb the per-rank
    // arrival/destination draws.
    xgft::Rng perm(xgft::hashMix(cfg_.seed, 0x7065726dULL));  // "perm"
    perm.shuffle(permutation_);
    // Repair self-maps by swapping with the cyclic neighbour; with
    // numRanks >= 2 the result has no fixed point.
    for (Rank r = 0; r < cfg_.numRanks; ++r) {
      if (permutation_[r] == r) {
        const Rank next = (r + 1) % cfg_.numRanks;
        std::swap(permutation_[r], permutation_[next]);
      }
    }
  }
  for (Rank r = 0; r < cfg_.numRanks; ++r) scheduleNext(r, cfg_.startNs);
}

sim::TimeNs OpenLoopSource::nextGap(Rank r) {
  double gap = 0.0;
  switch (cfg_.arrivals) {
    case ArrivalProcess::kPoisson:
      gap = -std::log(unitOpen(streams_[r].next())) * meanGapNs_;
      break;
    case ArrivalProcess::kBursty:
      if (burstLeft_[r] > 0) {
        --burstLeft_[r];
        gap = peakGapNs_;
      } else {
        burstLeft_[r] = cfg_.burstLength - 1;
        gap = offMeanNs_ == 0.0
                  ? peakGapNs_
                  : -std::log(unitOpen(streams_[r].next())) * offMeanNs_;
      }
      break;
  }
  return std::max<sim::TimeNs>(1, static_cast<sim::TimeNs>(gap + 0.5));
}

Rank OpenLoopSource::drawDestination(Rank r) {
  switch (cfg_.dest) {
    case DestDistribution::kUniform:
      break;
    case DestDistribution::kHotspot:
      if (r != 0 && unitOpen(streams_[r].next()) <= cfg_.hotFraction) {
        return 0;
      }
      break;
    case DestDistribution::kPermutation:
      return permutation_[r];
  }
  // Uniform over the other numRanks - 1 ranks.
  const Rank offset = static_cast<Rank>(
      streams_[r].below(cfg_.numRanks - 1));
  return static_cast<Rank>((r + 1 + offset) % cfg_.numRanks);
}

void OpenLoopSource::scheduleNext(Rank r, sim::TimeNs from) {
  const sim::TimeNs t = from + nextGap(r);
  if (t < cfg_.stopNs) arrivals_.emplace(t, r);
}

Pull OpenLoopSource::pull(sim::TimeNs /*now*/, SourceMessage& out) {
  if (arrivals_.empty()) return Pull::kExhausted;
  const auto [t, r] = arrivals_.top();
  arrivals_.pop();
  out.src = r;
  out.dst = drawDestination(r);
  out.bytes = cfg_.messageBytes;
  out.time = t;
  out.token = emitted_++;
  scheduleNext(r, t);
  return Pull::kMessage;
}

}  // namespace patterns
