// synthetic.hpp — Synthetic traffic generators.
//
// The random-traffic and general-pattern workloads used in the paper's
// combinatorial analysis (Sec. VII-C analyses "general patterns" as unions
// of permutations) and standard HPC microbenchmark patterns used by the
// examples and the extended evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "patterns/pattern.hpp"
#include "patterns/permutation.hpp"

namespace patterns {

/// Uniform random traffic: @p flowsPerRank flows per source, each to an
/// independently uniform destination (possibly equal to the source, matching
/// the "random traffic" of the works the paper cites).
[[nodiscard]] Pattern uniformRandom(Rank n, std::uint32_t flowsPerRank,
                                    Bytes bytes, std::uint64_t seed);

/// A general pattern built as the union of @p k independent uniform random
/// permutations (the decomposition view of Sec. VII-C).
[[nodiscard]] Pattern unionOfRandomPermutations(Rank n, std::uint32_t k,
                                                Bytes bytes,
                                                std::uint64_t seed);

/// All-to-all (personalized): every rank sends @p bytes to every other rank.
[[nodiscard]] Pattern allToAll(Rank n, Bytes bytes);

/// Hotspot: every rank sends to rank @p hot; the pure endpoint-contention
/// extreme (no routing scheme can help, Sec. IV).
[[nodiscard]] Pattern hotspot(Rank n, Rank hot, Bytes bytes);

/// Ring: rank i sends to (i+1) mod n and (i-1+n) mod n.
[[nodiscard]] Pattern ringExchange(Rank n, Bytes bytes);

/// 2D 5-point stencil halo on an r x c grid (±1 in both dimensions,
/// truncated at the grid boundary).
[[nodiscard]] Pattern stencil2D(Rank rows, Rank cols, Bytes bytes);

/// The shift sequence used by all-to-all algorithms (Zahavi et al., cited as
/// [9]): phase s is the cyclic shift by s, s = 1..n-1.
[[nodiscard]] PhasedPattern shiftAllToAll(Rank n, Bytes bytes);

}  // namespace patterns
