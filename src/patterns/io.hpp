// io.hpp — Textual (de)serialization of communication patterns.
//
// The paper's toolchain extracts a connectivity matrix per communication
// phase from a Dimemas trace and feeds it to the routing algorithms
// (Sec. VI-B).  This module provides the equivalent interchange format: a
// line-oriented flow list
//
//     # pattern <name>
//     # ranks <N>
//     # phase 0
//     <src> <dst> <bytes>
//     ...
//     # phase 1
//     ...
//
// '#'-comments and blank lines are ignored except for the recognized
// directives.  A file without "# phase" directives parses as a single
// phase.
#pragma once

#include <iosfwd>
#include <string>

#include "patterns/pattern.hpp"

namespace patterns {

/// Writes a phased pattern in the flow-list format.
void writePhasedPattern(const PhasedPattern& app, std::ostream& os);

/// Reads a phased pattern from the flow-list format.
/// Throws std::invalid_argument on malformed input (with a line number).
[[nodiscard]] PhasedPattern readPhasedPattern(std::istream& is);

/// Convenience string round-trips.
[[nodiscard]] std::string toString(const PhasedPattern& app);
[[nodiscard]] PhasedPattern phasedPatternFromString(const std::string& text);

}  // namespace patterns
