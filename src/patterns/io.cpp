#include "patterns/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace patterns {

void writePhasedPattern(const PhasedPattern& app, std::ostream& os) {
  os << "# pattern " << (app.name.empty() ? "unnamed" : app.name) << "\n";
  os << "# ranks " << app.numRanks << "\n";
  for (std::size_t i = 0; i < app.phases.size(); ++i) {
    os << "# phase " << i << "\n";
    for (const Flow& f : app.phases[i].flows()) {
      os << f.src << " " << f.dst << " " << f.bytes << "\n";
    }
  }
}

PhasedPattern readPhasedPattern(std::istream& is) {
  PhasedPattern app;
  app.name = "unnamed";
  bool ranksSeen = false;
  bool phaseSeen = false;
  std::string line;
  std::size_t lineNo = 0;
  const auto fail = [&](const std::string& why) {
    throw std::invalid_argument("readPhasedPattern: line " +
                                std::to_string(lineNo) + ": " + why);
  };
  while (std::getline(is, line)) {
    ++lineNo;
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // Blank line.
    if (first == "#") {
      std::string directive;
      if (!(ls >> directive)) continue;
      if (directive == "pattern") {
        std::string rest;
        std::getline(ls, rest);
        const std::size_t start = rest.find_first_not_of(' ');
        app.name = start == std::string::npos ? "" : rest.substr(start);
      } else if (directive == "ranks") {
        std::uint64_t n = 0;
        if (!(ls >> n) || n == 0 || n > 0xffffffffull) {
          fail("bad '# ranks' directive");
        }
        app.numRanks = static_cast<Rank>(n);
        ranksSeen = true;
      } else if (directive == "phase") {
        app.phases.emplace_back(app.numRanks);
        phaseSeen = true;
      }
      // Unknown directives are comments.
      continue;
    }
    if (!ranksSeen) fail("flow before '# ranks' directive");
    if (!phaseSeen) {
      app.phases.emplace_back(app.numRanks);
      phaseSeen = true;
    }
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    std::uint64_t bytes = 0;
    std::istringstream flowLine(line);
    if (!(flowLine >> src >> dst >> bytes)) fail("malformed flow line");
    if (src >= app.numRanks || dst >= app.numRanks) {
      fail("rank out of range");
    }
    app.phases.back().add(static_cast<Rank>(src), static_cast<Rank>(dst),
                          bytes);
  }
  if (!ranksSeen) {
    throw std::invalid_argument(
        "readPhasedPattern: missing '# ranks' directive");
  }
  if (app.phases.empty()) app.phases.emplace_back(app.numRanks);
  return app;
}

std::string toString(const PhasedPattern& app) {
  std::ostringstream os;
  writePhasedPattern(app, os);
  return os.str();
}

PhasedPattern phasedPatternFromString(const std::string& text) {
  std::istringstream is(text);
  return readPhasedPattern(is);
}

}  // namespace patterns
