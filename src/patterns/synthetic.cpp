#include "patterns/synthetic.hpp"

#include <stdexcept>
#include <string>

#include "xgft/rng.hpp"

namespace patterns {

Pattern uniformRandom(Rank n, std::uint32_t flowsPerRank, Bytes bytes,
                      std::uint64_t seed) {
  Pattern p(n);
  for (Rank s = 0; s < n; ++s) {
    for (std::uint32_t f = 0; f < flowsPerRank; ++f) {
      const Rank d = static_cast<Rank>(xgft::hashMix(seed, s, f) % n);
      p.add(s, d, bytes);
    }
  }
  return p;
}

Pattern unionOfRandomPermutations(Rank n, std::uint32_t k, Bytes bytes,
                                  std::uint64_t seed) {
  Pattern all(n);
  for (std::uint32_t i = 0; i < k; ++i) {
    const Permutation perm = randomPermutation(n, xgft::hashMix(seed, i));
    all = all.unionWith(perm.toPattern(bytes));
  }
  return all;
}

Pattern allToAll(Rank n, Bytes bytes) {
  Pattern p(n);
  for (Rank s = 0; s < n; ++s) {
    for (Rank d = 0; d < n; ++d) {
      if (s != d) p.add(s, d, bytes);
    }
  }
  return p;
}

Pattern hotspot(Rank n, Rank hot, Bytes bytes) {
  if (hot >= n) throw std::out_of_range("hotspot: hot rank out of range");
  Pattern p(n);
  for (Rank s = 0; s < n; ++s) {
    if (s != hot) p.add(s, hot, bytes);
  }
  return p;
}

Pattern ringExchange(Rank n, Bytes bytes) {
  if (n < 2) throw std::invalid_argument("ringExchange: need >= 2 ranks");
  Pattern p(n);
  for (Rank s = 0; s < n; ++s) {
    p.add(s, (s + 1) % n, bytes);
    p.add(s, (s + n - 1) % n, bytes);
  }
  return p;
}

Pattern stencil2D(Rank rows, Rank cols, Bytes bytes) {
  const Rank n = rows * cols;
  Pattern p(n);
  for (Rank i = 0; i < rows; ++i) {
    for (Rank j = 0; j < cols; ++j) {
      const Rank s = i * cols + j;
      if (j + 1 < cols) p.add(s, s + 1, bytes);
      if (j >= 1) p.add(s, s - 1, bytes);
      if (i + 1 < rows) p.add(s, s + cols, bytes);
      if (i >= 1) p.add(s, s - cols, bytes);
    }
  }
  return p;
}

PhasedPattern shiftAllToAll(Rank n, Bytes bytes) {
  PhasedPattern app;
  app.name = "shift all-to-all, n=" + std::to_string(n);
  app.numRanks = n;
  for (Rank s = 1; s < n; ++s) {
    app.phases.push_back(shiftPermutation(n, s).toPattern(bytes));
  }
  return app;
}

}  // namespace patterns
