// source.hpp — Streaming traffic sources (the open-loop injection model).
//
// The paper evaluates routing only in closed-loop phase replay: a workload
// is materialized as a trace and run to drainage.  The classic interconnect
// methodology of the random-traffic literature it cites (Sec. VII-C, and
// Zahavi et al. [9]) instead *streams* traffic: every host injects
// messages with a stochastic arrival process at a configured offered load,
// and the network answers with an accepted-throughput/latency operating
// point.  This module is the source side of that model.
//
// A TrafficSource is pull-based: the driver (sim::InjectionProcess) asks
// for the next action only when simulated time reaches it, so no trace is
// materialized up front — the source side of an arbitrarily long run is
// O(ranks) state.  (The simulator still accrues per-injected-message
// bookkeeping over the run.)  One pull yields one of:
//
//  * kMessage    — inject `out` (src/dst rank, bytes) at `out.time` >= now.
//  * kWake       — schedule a timer at `out.time`; the driver calls
//                  onWake(out.token) when it fires (closed-loop sources use
//                  this for compute delays).
//  * kBlocked    — nothing until an in-flight message completes; the driver
//                  re-pulls after every onDelivered().
//  * kExhausted  — the source will never produce again.
//
// Closed-loop sources (trace::Replayer) implement the same interface, so
// phase replay and open-loop streaming share one injection mechanism.
//
// Determinism: all randomness derives from SplitMix64 counter streams
// (xgft/rng.hpp); rank r of a source seeded S draws from the stream seeded
// hashMix(S, r), so streams are independent per rank and every pull
// sequence replays identically for a given seed (pinned by
// tests/xgft/rng_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "patterns/pattern.hpp"
#include "sim/config.hpp"
#include "xgft/rng.hpp"

namespace patterns {

/// One action pulled from a source.  For kMessage, `token` is a
/// source-chosen id echoed back by onDelivered(); for kWake it is the
/// cookie echoed by onWake().
struct SourceMessage {
  Rank src = 0;
  Rank dst = 0;
  Bytes bytes = 0;
  sim::TimeNs time = 0;
  std::uint64_t token = 0;
};

enum class Pull : std::uint8_t {
  kMessage,
  kWake,
  kBlocked,
  kExhausted,
};

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  [[nodiscard]] virtual Rank numRanks() const = 0;

  /// Produces the next action at or after @p now.  Actions must be
  /// non-decreasing in time.
  [[nodiscard]] virtual Pull pull(sim::TimeNs now, SourceMessage& out) = 0;

  /// A previously pulled message (its `token`) completed end-to-end.
  virtual void onDelivered(std::uint64_t token, sim::TimeNs now);

  /// A previously requested kWake timer (its `token` cookie) fired.
  virtual void onWake(std::uint64_t cookie, sim::TimeNs now);

  /// A source that returns true promises onDelivered() never produces new
  /// work: its pull sequence is a pure function of simulated time, not of
  /// completions.  The parallel engine (sim/shard.hpp) uses this to decide
  /// whether sink notifications can be deferred to window barriers;
  /// closed-loop sources (replay, kBlocked users) keep the default false.
  [[nodiscard]] virtual bool passiveDeliveries() const { return false; }
};

/// How an open-loop source spaces injections.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< Exponential interarrival gaps at the offered rate.
  kBursty,   ///< On/off: bursts of back-to-back messages at line rate,
             ///< exponential idle gaps sized so the mean rate is the load.
};

/// How an open-loop source picks destinations.
enum class DestDistribution : std::uint8_t {
  kUniform,      ///< Uniform over all other ranks.
  kHotspot,      ///< hotFraction of messages to rank 0, rest uniform.
  kPermutation,  ///< A fixed seeded permutation (self-maps repaired).
};

struct OpenLoopConfig {
  Rank numRanks = 0;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  DestDistribution dest = DestDistribution::kUniform;

  /// Offered load per host as a fraction of hostBytesPerNs.
  double load = 0.5;
  /// The per-host link payload rate the load is relative to, in bytes per
  /// simulated nanosecond (linkGbps / 8 for the paper's 2 Gbit/s links).
  double hostBytesPerNs = 0.25;
  Bytes messageBytes = 4096;

  /// kHotspot: fraction of each rank's messages aimed at rank 0.
  double hotFraction = 0.2;
  /// kBursty: messages per on-burst.
  std::uint32_t burstLength = 8;

  /// Arrivals fall in [startNs + gap, stopNs); the first arrival of each
  /// rank is one gap after startNs (no synchronized burst at t = 0).
  sim::TimeNs startNs = 0;
  sim::TimeNs stopNs = 0;

  std::uint64_t seed = 1;
};

/// The open-loop generator: per-rank SplitMix64 arrival/destination
/// streams merged into one globally time-ordered pull sequence.
class OpenLoopSource final : public TrafficSource {
 public:
  /// Throws std::invalid_argument on a non-positive load, fewer than two
  /// ranks, a zero message size or an empty [startNs, stopNs) window.
  explicit OpenLoopSource(OpenLoopConfig cfg);

  [[nodiscard]] Rank numRanks() const override { return cfg_.numRanks; }
  [[nodiscard]] Pull pull(sim::TimeNs now, SourceMessage& out) override;

  /// Arrivals are a pure function of (seed, time): open-loop streams never
  /// block on completions, so deliveries are deferrable.
  [[nodiscard]] bool passiveDeliveries() const override { return true; }

  /// Messages emitted so far.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  /// Next interarrival gap of rank @p r, in ns (>= 1).
  [[nodiscard]] sim::TimeNs nextGap(Rank r);
  [[nodiscard]] Rank drawDestination(Rank r);
  void scheduleNext(Rank r, sim::TimeNs from);

  OpenLoopConfig cfg_;
  double meanGapNs_ = 0.0;  ///< messageBytes / (load * hostBytesPerNs).
  double peakGapNs_ = 0.0;  ///< messageBytes / hostBytesPerNs (line rate).
  double offMeanNs_ = 0.0;  ///< kBursty: mean idle gap between bursts.

  std::vector<xgft::Rng> streams_;          ///< Per-rank, hashMix(seed, r).
  std::vector<std::uint32_t> burstLeft_;    ///< kBursty per-rank countdown.
  std::vector<Rank> permutation_;           ///< kPermutation target map.

  /// (next arrival time, rank) min-heap; ties break by rank, so the merge
  /// order is a pure function of the seed.
  using Arrival = std::pair<sim::TimeNs, Rank>;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals_;

  std::uint64_t emitted_ = 0;
};

}  // namespace patterns
