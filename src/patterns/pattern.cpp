#include "patterns/pattern.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace patterns {

void Pattern::add(Rank src, Rank dst, Bytes bytes) {
  if (src >= numRanks_ || dst >= numRanks_) {
    throw std::out_of_range("Pattern::add: rank out of range");
  }
  flows_.push_back(Flow{src, dst, bytes});
}

Bytes Pattern::totalBytes() const {
  Bytes total = 0;
  for (const Flow& f : flows_) total += f.bytes;
  return total;
}

std::uint32_t Pattern::fanOut(Rank src) const {
  std::set<Rank> dsts;
  for (const Flow& f : flows_) {
    if (f.src == src && f.dst != f.src) dsts.insert(f.dst);
  }
  return static_cast<std::uint32_t>(dsts.size());
}

std::uint32_t Pattern::fanIn(Rank dst) const {
  std::set<Rank> srcs;
  for (const Flow& f : flows_) {
    if (f.dst == dst && f.dst != f.src) srcs.insert(f.src);
  }
  return static_cast<std::uint32_t>(srcs.size());
}

std::vector<Bytes> Pattern::bytesOut() const {
  std::vector<Bytes> out(numRanks_, 0);
  for (const Flow& f : flows_) {
    if (f.src != f.dst) out[f.src] += f.bytes;
  }
  return out;
}

std::vector<Bytes> Pattern::bytesIn() const {
  std::vector<Bytes> in(numRanks_, 0);
  for (const Flow& f : flows_) {
    if (f.src != f.dst) in[f.dst] += f.bytes;
  }
  return in;
}

bool Pattern::isPermutation() const {
  std::vector<std::int64_t> sendsTo(numRanks_, -1);
  std::vector<std::int64_t> recvsFrom(numRanks_, -1);
  for (const Flow& f : flows_) {
    if (f.src == f.dst) continue;
    if (sendsTo[f.src] != -1 && sendsTo[f.src] != f.dst) return false;
    if (recvsFrom[f.dst] != -1 && recvsFrom[f.dst] != f.src) return false;
    sendsTo[f.src] = f.dst;
    recvsFrom[f.dst] = f.src;
  }
  return true;
}

bool Pattern::isSymmetric() const {
  std::set<std::pair<Rank, Rank>> conns;
  for (const Flow& f : flows_) conns.insert({f.src, f.dst});
  return std::all_of(conns.begin(), conns.end(), [&](const auto& c) {
    return conns.count({c.second, c.first}) > 0;
  });
}

Pattern Pattern::inverse() const {
  Pattern inv(numRanks_);
  for (const Flow& f : flows_) inv.add(f.dst, f.src, f.bytes);
  return inv;
}

Pattern Pattern::unionWith(const Pattern& other) const {
  if (other.numRanks_ != numRanks_) {
    throw std::invalid_argument("Pattern::unionWith: rank count mismatch");
  }
  Pattern u(numRanks_, flows_);
  for (const Flow& f : other.flows_) u.flows_.push_back(f);
  return u;
}

std::vector<std::vector<Bytes>> Pattern::connectivityMatrix() const {
  std::vector<std::vector<Bytes>> m(numRanks_,
                                    std::vector<Bytes>(numRanks_, 0));
  for (const Flow& f : flows_) m[f.src][f.dst] += f.bytes;
  return m;
}

std::string Pattern::matrixArt() const {
  const auto m = connectivityMatrix();
  std::ostringstream os;
  for (Rank i = 0; i < numRanks_; ++i) {
    for (Rank j = 0; j < numRanks_; ++j) {
      os << (m[i][j] > 0 ? '#' : '.');
    }
    os << "\n";
  }
  return os.str();
}

Pattern PhasedPattern::flattened() const {
  Pattern all(numRanks);
  for (const Pattern& p : phases) all = all.unionWith(p);
  return all;
}

}  // namespace patterns
