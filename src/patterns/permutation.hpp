// permutation.hpp — Permutation patterns and classic synthetic permutations.
//
// Permutations are the paper's analytic workhorse (Sec. III, VII-B): every
// source sends to a distinct destination, so all degradation under a routing
// scheme is *network* contention.  This module provides a Permutation value
// type plus the classic families used to stress fat-tree routings.
#pragma once

#include <cstdint>
#include <vector>

#include "patterns/pattern.hpp"

namespace patterns {

/// A bijection on [0, n).  map()[s] is the destination of source s.
class Permutation {
 public:
  /// Identity permutation on n ranks.
  explicit Permutation(Rank n);

  /// Wraps an explicit mapping; throws std::invalid_argument unless it is a
  /// bijection.
  explicit Permutation(std::vector<Rank> mapping);

  [[nodiscard]] Rank size() const {
    return static_cast<Rank>(map_.size());
  }
  [[nodiscard]] Rank operator()(Rank s) const { return map_.at(s); }
  [[nodiscard]] const std::vector<Rank>& map() const { return map_; }

  /// The inverse bijection.
  [[nodiscard]] Permutation inverse() const;

  /// Composition: (this ∘ other)(x) = this(other(x)).
  [[nodiscard]] Permutation compose(const Permutation& other) const;

  /// True iff p == p^{-1}.
  [[nodiscard]] bool isInvolution() const;

  /// Converts to a Pattern with @p bytes per flow (self-flows skipped when
  /// @p keepSelf is false).
  [[nodiscard]] Pattern toPattern(Bytes bytes, bool keepSelf = false) const;

  friend bool operator==(const Permutation&, const Permutation&) = default;

 private:
  std::vector<Rank> map_;
};

/// Uniform random permutation (deterministic per seed).
[[nodiscard]] Permutation randomPermutation(Rank n, std::uint64_t seed);

/// Cyclic shift by @p s: d = (src + s) mod n.  The shift family is the
/// canonical workload for fat-tree routing studies (Zahavi et al.).
[[nodiscard]] Permutation shiftPermutation(Rank n, Rank s);

/// Bit reversal of the log2(n)-bit rank (n must be a power of two).
[[nodiscard]] Permutation bitReversal(Rank n);

/// Bit complement: d = ~src mod n (n must be a power of two).
[[nodiscard]] Permutation bitComplement(Rank n);

/// Matrix transpose on an r x c grid (n = r*c): rank (i, j) -> (j, i);
/// requires r*c == c*r trivially, with rank = i*c + j.
[[nodiscard]] Permutation transpose(Rank rows, Rank cols);

/// Butterfly / exchange on dimension bit b: d = src XOR (1 << b).
[[nodiscard]] Permutation butterfly(Rank n, std::uint32_t bit);

}  // namespace patterns
