// applications.hpp — The application traffic of the paper's evaluation.
//
// The paper drives its simulations with post-mortem MPI traces of WRF (256
// processes) and NAS CG class D (128 processes).  We do not have the BSC
// trace archive, so these generators rebuild the communication structure the
// paper itself documents (Sec. VI-A, VII-A, Fig. 3 and Eq. (2)); DESIGN.md
// records the substitution.  Both patterns are symmetric, which is what
// makes S-mod-k and D-mod-k behave identically on them (Sec. VII-C).
#pragma once

#include <cstdint>

#include "patterns/pattern.hpp"

namespace patterns {

/// Default per-message size for the CG phases: the paper reports all five
/// CG.D-128 exchanges carry 750 KB per message.
inline constexpr Bytes kCgMessageBytes = 750 * 1024;

/// WRF per-message size is not stated in the paper; 512 KB keeps the run in
/// the same bandwidth-dominated regime as CG (the slowdown *shape* is
/// insensitive to this choice — see PatternSizeSweep tests).
inline constexpr Bytes kWrfMessageBytes = 512 * 1024;

/// WRF-256 halo exchange (Sec. VII-A): the tasks form a 16 x 16 mesh and
/// every task T_i sends to T_{i+16} and T_{i-16} (truncated at the
/// boundaries), both messages outstanding simultaneously — a single phase.
///
/// Generalized to any @p rows x @p cols task mesh: T_i exchanges with
/// T_{i +/- cols}.
[[nodiscard]] PhasedPattern wrfHalo(Rank rows, Rank cols, Bytes bytes);

/// The paper's WRF-256 instance: 16 x 16 mesh.
[[nodiscard]] PhasedPattern wrf256(Bytes bytes = kWrfMessageBytes);

/// NAS CG communication structure as described in Sec. VII-A: five exchange
/// phases of equal message size.  With 16 processes per first-level switch,
/// the first four phases are switch-local pairwise exchanges (hypercube
/// dimensions 1, 2, 4, 8 within each 16-process block); the fifth phase is
/// the non-local involution of Eq. (2):
///
///     within a block, source j  ->  destination  floor(j/2)*16 + (j mod 2),
///
/// lifted to all blocks so that phase 5 is a symmetric permutation over all
/// ranks: rank (b, j) -> (floor(j/2), 2b + (j mod 2)), with b the block and
/// j the in-block index.
///
/// @p numRanks must be a multiple of @p blockSize, and blockSize a power of
/// two; the paper's instance is numRanks = 128, blockSize = 16.
[[nodiscard]] PhasedPattern cgPhases(Rank numRanks, Rank blockSize,
                                     Bytes bytes);

/// The paper's CG.D-128 instance.
[[nodiscard]] PhasedPattern cgD128(Bytes bytes = kCgMessageBytes);

/// Eq. (2) of the paper lifted to a global permutation: the destination of
/// rank s with blocks of @p blockSize ranks.  Exposed separately so tests
/// can check the involution/symmetry properties the paper relies on.
[[nodiscard]] Rank cgPhase5Destination(Rank s, Rank numRanks, Rank blockSize);

}  // namespace patterns
