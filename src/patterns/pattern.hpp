// pattern.hpp — Communication patterns (Sec. III of the paper).
//
// A communication pattern C over N ranks is a set of directed flows
// (src -> dst, bytes); its connectivity matrix M is N x N with m_ij > 0 iff
// (i -> j) is in C.  Applications are modelled as a *sequence of phases*
// (each phase a pattern whose messages are all in flight together, the next
// phase starting only when the previous one completed end-to-end), which is
// exactly how the paper's trace-driven experiments inject traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace patterns {

using Rank = std::uint32_t;
using Bytes = std::uint64_t;

/// One directed flow.
struct Flow {
  Rank src = 0;
  Rank dst = 0;
  Bytes bytes = 0;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// A communication pattern: a multiset of flows over ranks [0, numRanks).
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(Rank numRanks) : numRanks_(numRanks) {}
  Pattern(Rank numRanks, std::vector<Flow> flows)
      : numRanks_(numRanks), flows_(std::move(flows)) {}

  [[nodiscard]] Rank numRanks() const { return numRanks_; }
  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] bool empty() const { return flows_.empty(); }
  [[nodiscard]] std::size_t size() const { return flows_.size(); }

  /// Adds a flow; self-flows (src == dst) are legal but never enter the
  /// network (delivered locally).
  void add(Rank src, Rank dst, Bytes bytes);

  /// Total bytes across all flows.
  [[nodiscard]] Bytes totalBytes() const;

  /// Number of flows leaving @p src / entering @p dst (self-flows excluded).
  [[nodiscard]] std::uint32_t fanOut(Rank src) const;
  [[nodiscard]] std::uint32_t fanIn(Rank dst) const;

  /// Per-rank outgoing / incoming byte totals (self-flows excluded).
  [[nodiscard]] std::vector<Bytes> bytesOut() const;
  [[nodiscard]] std::vector<Bytes> bytesIn() const;

  /// True iff the non-self flows form a (partial) permutation: every source
  /// sends to at most one distinct destination and every destination
  /// receives from at most one distinct source.
  [[nodiscard]] bool isPermutation() const;

  /// True iff the pattern equals its own inverse as a set of (src, dst)
  /// connections (byte counts ignored).
  [[nodiscard]] bool isSymmetric() const;

  /// The inverse pattern: every flow (s -> d) becomes (d -> s) (Sec. VII-B).
  [[nodiscard]] Pattern inverse() const;

  /// Union of two patterns over the same rank count.
  [[nodiscard]] Pattern unionWith(const Pattern& other) const;

  /// Dense connectivity matrix (row = src, col = dst, value = bytes);
  /// only sensible for small N.
  [[nodiscard]] std::vector<std::vector<Bytes>> connectivityMatrix() const;

  /// ASCII art of the connectivity matrix ('.' empty, '#' non-empty), the
  /// rendering used by the Fig. 3 bench.
  [[nodiscard]] std::string matrixArt() const;

 private:
  Rank numRanks_ = 0;
  std::vector<Flow> flows_;
};

/// A phase sequence; phase i+1 starts only after phase i fully completes.
struct PhasedPattern {
  std::string name;
  Rank numRanks = 0;
  std::vector<Pattern> phases;

  /// Flattens all phases into one pattern (what a single connectivity-matrix
  /// view of the application shows).
  [[nodiscard]] Pattern flattened() const;
};

}  // namespace patterns
