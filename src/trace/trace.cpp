#include "trace/trace.hpp"

namespace trace {

std::uint64_t Trace::numMessages() const {
  std::uint64_t count = 0;
  for (const auto& program : programs) {
    for (const Op& op : program) {
      if (op.kind == OpKind::kIsend || op.kind == OpKind::kSend) ++count;
    }
  }
  return count;
}

Trace traceFromPhases(const patterns::PhasedPattern& app) {
  Trace t;
  t.numRanks = app.numRanks;
  t.programs.resize(app.numRanks);
  for (std::size_t phase = 0; phase < app.phases.size(); ++phase) {
    const patterns::Pattern& p = app.phases[phase];
    const auto tag = static_cast<std::uint32_t>(phase);
    // Receives first (pre-posted), then sends — the usual exchange idiom.
    for (const patterns::Flow& f : p.flows()) {
      if (f.src == f.dst) continue;
      t.programs[f.dst].push_back(Op::irecv(f.src, tag));
    }
    for (const patterns::Flow& f : p.flows()) {
      if (f.src == f.dst) continue;
      t.programs[f.src].push_back(Op::isend(f.dst, f.bytes, tag));
    }
    for (Rank r = 0; r < app.numRanks; ++r) {
      t.programs[r].push_back(Op::waitAll());
      t.programs[r].push_back(Op::barrier());
    }
  }
  return t;
}

Trace traceFromPattern(const patterns::Pattern& pattern) {
  patterns::PhasedPattern app;
  app.numRanks = pattern.numRanks();
  app.phases.push_back(pattern);
  return traceFromPhases(app);
}

}  // namespace trace
