// trace.hpp — Post-mortem trace IR and builders (the Dimemas substitute).
//
// Dimemas replays an MPI application from a trace of its communication
// calls, reconstructing timing against a network model (Sec. VI-B).  This
// module defines a minimal trace IR with the same expressive power for the
// workloads at hand: point-to-point sends/receives (blocking and
// non-blocking), completion waits, global barriers and compute bursts.
//
// The builder traceFromPhases() encodes the paper's injection model: each
// communication phase posts all its receives, starts all its sends
// (outstanding simultaneously), waits for completion and synchronizes —
// "schedule communications such that they form a series of permutations"
// (Sec. III), with the next phase gated on the slowest rank.
#pragma once

#include <cstdint>
#include <vector>

#include "patterns/pattern.hpp"
#include "sim/config.hpp"

namespace trace {

using patterns::Bytes;
using patterns::Rank;

enum class OpKind : std::uint8_t {
  kIsend,    ///< Non-blocking send to `peer` (`bytes`, `tag`).
  kIrecv,    ///< Non-blocking receive from `peer` (`tag`).
  kSend,     ///< Blocking send: returns when delivered end-to-end.
  kRecv,     ///< Blocking receive: returns when the message arrived.
  kWaitAll,  ///< Block until all outstanding isends/irecvs completed.
  kBarrier,  ///< Global synchronization across all ranks.
  kCompute,  ///< Local computation for `durationNs`.
};

struct Op {
  OpKind kind = OpKind::kWaitAll;
  Rank peer = 0;
  Bytes bytes = 0;
  std::uint32_t tag = 0;
  sim::TimeNs durationNs = 0;

  static Op isend(Rank peer, Bytes bytes, std::uint32_t tag) {
    return Op{OpKind::kIsend, peer, bytes, tag, 0};
  }
  static Op irecv(Rank peer, std::uint32_t tag) {
    return Op{OpKind::kIrecv, peer, 0, tag, 0};
  }
  static Op send(Rank peer, Bytes bytes, std::uint32_t tag) {
    return Op{OpKind::kSend, peer, bytes, tag, 0};
  }
  static Op recv(Rank peer, std::uint32_t tag) {
    return Op{OpKind::kRecv, peer, 0, tag, 0};
  }
  static Op waitAll() { return Op{OpKind::kWaitAll, 0, 0, 0, 0}; }
  static Op barrier() { return Op{OpKind::kBarrier, 0, 0, 0, 0}; }
  static Op compute(sim::TimeNs ns) {
    return Op{OpKind::kCompute, 0, 0, 0, ns};
  }
};

/// One program per rank.
struct Trace {
  Rank numRanks = 0;
  std::vector<std::vector<Op>> programs;

  /// Total number of point-to-point messages the trace will generate.
  [[nodiscard]] std::uint64_t numMessages() const;
};

/// Encodes a phase sequence as a trace: per phase, every rank posts its
/// receives, starts its sends (tag = phase index), waits for all of them and
/// enters a barrier.
[[nodiscard]] Trace traceFromPhases(const patterns::PhasedPattern& app);

/// Single-pattern convenience: one phase, no trailing barrier needed.
[[nodiscard]] Trace traceFromPattern(const patterns::Pattern& pattern);

}  // namespace trace
