// harness.hpp — One-call experiment driver.
//
// Reproduces the paper's measurement loop (Sec. VI-B): replay an
// application's phases on an XGFT under a routing scheme, replay the same
// application on the ideal single-stage Full-Crossbar, and report the
// slowdown ratio — the y-axis of Figs. 2 and 5.
#pragma once

#include <memory>

#include "patterns/pattern.hpp"
#include "routing/router.hpp"
#include "sim/network.hpp"
#include "trace/mapping.hpp"
#include "trace/replayer.hpp"
#include "trace/trace.hpp"

namespace trace {

struct RunResult {
  sim::TimeNs makespanNs = 0;
  sim::NetworkStats stats;
};

/// Replays @p app on @p topo routed by @p router (sequential placement).
[[nodiscard]] RunResult runApp(const xgft::Topology& topo,
                               const routing::Router& router,
                               const patterns::PhasedPattern& app,
                               const sim::SimConfig& cfg = {});

/// As runApp with an explicit placement.
[[nodiscard]] RunResult runApp(const xgft::Topology& topo,
                               const routing::Router& router,
                               const patterns::PhasedPattern& app,
                               const Mapping& mapping,
                               const sim::SimConfig& cfg);

/// Replays @p app with per-segment multipath spraying instead of a static
/// per-pair route (the packet-granular randomized routing extension; see
/// SprayConfig in replayer.hpp).  Sequential placement.
[[nodiscard]] RunResult runAppSprayed(const xgft::Topology& topo,
                                      const patterns::PhasedPattern& app,
                                      const SprayConfig& spray,
                                      const sim::SimConfig& cfg = {});

/// Replays @p app with minimally-adaptive per-hop routing (least-occupied
/// up-port at every switch) instead of a precomputed route.  Sequential
/// placement.
[[nodiscard]] RunResult runAppAdaptive(const xgft::Topology& topo,
                                       const patterns::PhasedPattern& app,
                                       const sim::SimConfig& cfg = {});

/// Replays @p app on the ideal single-stage crossbar connecting exactly
/// app.numRanks hosts: same link speed and segmentation, unbounded switch
/// buffering, no routing choices — the paper's Full-Crossbar reference.
[[nodiscard]] RunResult runCrossbarReference(const patterns::PhasedPattern& app,
                                             const sim::SimConfig& cfg = {});

/// makespan(topo, router) / makespan(Full-Crossbar): the paper's slowdown.
[[nodiscard]] double slowdownVsCrossbar(const xgft::Topology& topo,
                                        const routing::Router& router,
                                        const patterns::PhasedPattern& app,
                                        const sim::SimConfig& cfg = {});

/// Scales every message of @p app by @p factor (>= 0; sizes are clamped to
/// at least one byte).  Used by the bench harnesses' --msg-scale knob: the
/// runs are bandwidth-dominated, so slowdown ratios are insensitive to the
/// scale while wall-clock simulation cost drops linearly.
[[nodiscard]] patterns::PhasedPattern scaleMessages(
    const patterns::PhasedPattern& app, double factor);

}  // namespace trace
