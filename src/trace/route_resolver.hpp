// route_resolver.hpp — Memoized (src, dst) -> interned-route-set resolution.
//
// Every injection mode builds its per-pair route material exactly once and
// interns it in the network's RouteStore (sim/route_store.hpp); repeat
// messages between the same endpoints are a pure record append.  This used
// to live inside trace::Replayer; the streaming refactor hoists it here so
// closed-loop replay and open-loop sources (trace/openloop.hpp) resolve
// routes through one path:
//
//  * compiled   — flat forwarding-table lookup (core::CompiledRoutes);
//  * virtual    — one router->route() call per distinct pair;
//  * spray      — up to maxPaths NCA-distinct routes per pair, sprayed per
//                 segment (the Greenberg–Leiserson extension);
//  * adaptive   — no resolver at all (per-hop choice inside the simulator).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/compiled_routes.hpp"
#include "routing/router.hpp"
#include "sim/injection.hpp"
#include "sim/network.hpp"

namespace trace {

/// Optional per-segment multipath spraying (the Greenberg–Leiserson
/// packet-granular randomized routing, provided as an extension): when
/// enabled, each message is given up to maxPaths NCA-distinct routes and
/// the adapter sprays segments across them.
struct SprayConfig {
  bool enabled = false;
  std::uint32_t maxPaths = 16;
  sim::SprayPolicy policy = sim::SprayPolicy::kRandom;
  std::uint64_t seed = 1;
  /// Minimally-adaptive per-hop routing instead of spraying (mutually
  /// exclusive with `enabled`): every segment picks the least-occupied
  /// up-port at each switch (Network::addMessageAdaptive).
  bool adaptive = false;
};

class RouteSetResolver {
 public:
  /// setFor()'s "this pair has no route" sentinel: returned when the active
  /// compiled table marks (src, dst) unroutable (a degraded-topology
  /// partition under fault::UnreachablePolicy::kDrop).  Distinct from every
  /// real RouteSetId and from sim::RouteStore::kNone.  Callers must refuse
  /// the message (sim::InjectionOptions::onDrop), never enqueue it.
  static constexpr sim::RouteSetId kUnroutable = sim::RouteStore::kUnroutable;

  /// All references must outlive the resolver.  When @p compiled is given
  /// (and no per-segment mode is active) pairs resolve through the compiled
  /// forwarding table; it must be compiled against @p net's topology
  /// (throws std::invalid_argument otherwise).  Per-segment modes (spray,
  /// adaptive) never consult the table, so a compiled handle is inert for
  /// them.
  RouteSetResolver(sim::Network& net, const routing::Router& router,
                   SprayConfig spray = {},
                   const core::CompiledRoutes* compiled = nullptr);

  /// The interned route set for host pair (src, dst) under the active
  /// routing mode, built on first use and memoized — or kUnroutable for a
  /// pair the compiled table declares unreachable.
  [[nodiscard]] sim::RouteSetId setFor(xgft::NodeIndex src,
                                       xgft::NodeIndex dst);

  /// Swaps in a replacement forwarding table (a mid-run degraded
  /// recompilation, fault::installFaultPlan) and invalidates every memoized
  /// pair so later sends re-resolve through it.  Only legal when the
  /// resolver was constructed in compiled mode; @p compiled must be non-null
  /// and built against the same topology (throws std::invalid_argument
  /// otherwise).  The caller keeps @p compiled alive past the resolver.
  void setCompiled(const core::CompiledRoutes* compiled);

  [[nodiscard]] const SprayConfig& spray() const { return spray_; }

 private:
  sim::Network* net_;
  const routing::Router* router_;
  const core::CompiledRoutes* compiled_;
  SprayConfig spray_;
  // (src, dst) -> interned route set in the network's RouteStore.
  std::unordered_map<std::uint64_t, sim::RouteSetId> pairSets_;
};

/// The sim::InjectionOptions @p resolver's spray configuration implies —
/// the single translation both the Replayer and the open-loop runner use
/// (callers add their own hostOf mapping).  The resolver must outlive the
/// returned options' routeSet closure.
[[nodiscard]] sim::InjectionOptions injectionOptions(
    RouteSetResolver& resolver);

}  // namespace trace
