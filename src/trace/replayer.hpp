// replayer.hpp — Trace replay engine coupled to the network simulator.
//
// Mirrors the Venus–Dimemas co-simulation of Sec. VI-B: the replayer walks
// every rank's program, hands point-to-point messages to the Network (routed
// by the configured routing scheme), and advances ranks as completions come
// back.  Semantics:
//
//  * kIsend starts a message; it counts as outstanding until delivered
//    end-to-end (we model synchronous completion — DESIGN.md).
//  * kIrecv matches arrivals by (source rank, tag), multiset semantics;
//    arrivals before the post are buffered as unexpected messages.
//  * kWaitAll blocks until the rank's outstanding sends are delivered and
//    posted receives have arrived.
//  * kBarrier blocks until every rank reached the same barrier index.
//  * kCompute advances the rank after a fixed local delay.
//
// The replayer is single-use: construct, run(), read the makespan.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/compiled_routes.hpp"
#include "routing/router.hpp"
#include "sim/network.hpp"
#include "trace/mapping.hpp"
#include "trace/trace.hpp"

namespace trace {

/// Optional per-segment multipath spraying (the Greenberg–Leiserson
/// packet-granular randomized routing, provided as an extension): when
/// enabled, each message is given up to maxPaths NCA-distinct routes and
/// the adapter sprays segments across them.
struct SprayConfig {
  bool enabled = false;
  std::uint32_t maxPaths = 16;
  sim::SprayPolicy policy = sim::SprayPolicy::kRandom;
  std::uint64_t seed = 1;
  /// Minimally-adaptive per-hop routing instead of spraying (mutually
  /// exclusive with `enabled`): every segment picks the least-occupied
  /// up-port at each switch (Network::addMessageAdaptive).
  bool adaptive = false;
};

class Replayer final : public sim::TrafficSink {
 public:
  /// All references must outlive the replayer.  The replayer installs
  /// itself as the network's sink.  When @p compiled is given (and no
  /// per-segment mode is active) messages route through the compiled
  /// forwarding table — a flat lookup instead of a virtual route() call per
  /// message; the table must be compiled against @p net's topology.
  Replayer(sim::Network& net, const Trace& trace, const Mapping& mapping,
           const routing::Router& router, SprayConfig spray = {},
           const core::CompiledRoutes* compiled = nullptr);

  /// Replays the whole trace; returns the time the last rank finished.
  /// Throws std::runtime_error if ranks are left blocked when the network
  /// drains (e.g. an unmatched receive).
  sim::TimeNs run();

  void onMessageDelivered(sim::MsgId msg, sim::TimeNs time) override;

  /// Completion time of an individual rank (valid after run()).
  [[nodiscard]] sim::TimeNs finishTimeOf(patterns::Rank r) const {
    return finishNs_.at(r);
  }

  /// Completion time of every global barrier, in order (valid after
  /// run()).  For traces built by traceFromPhases these are exactly the
  /// phase boundaries, so barrierTimes()[i] - barrierTimes()[i-1] is the
  /// duration of phase i — the per-phase breakdown behind the Sec. VII-A
  /// "fifth phase takes eight times longer" analysis.
  [[nodiscard]] const std::vector<sim::TimeNs>& barrierTimes() const {
    return barrierNs_;
  }

 private:
  struct RankState {
    std::size_t pc = 0;
    std::uint32_t pendingSends = 0;       ///< Isends not yet delivered.
    std::uint32_t outstandingRecvs = 0;   ///< Posted, not yet arrived.
    std::int64_t blockingSend = -1;       ///< MsgId a kSend waits on.
    bool blockingRecv = false;            ///< A kRecv waits for a match.
    bool inCompute = false;
    std::uint32_t barriersPassed = 0;
    bool finished = false;
  };

  /// Advances rank r until it blocks or finishes.
  void progress(patterns::Rank r);
  void arriveAtBarrier(patterns::Rank r);
  [[nodiscard]] std::uint64_t matchKey(patterns::Rank src,
                                       std::uint32_t tag) const;
  /// The interned route set for (src, dst) under the active routing mode
  /// (compiled table, virtual route() fallback, or spray enumeration),
  /// built on first use and memoized — the per-message hot path never
  /// constructs routes.
  [[nodiscard]] sim::RouteSetId routeSetFor(xgft::NodeIndex src,
                                            xgft::NodeIndex dst);

  sim::Network* net_;
  const Trace* trace_;
  const Mapping* mapping_;
  const routing::Router* router_;
  const core::CompiledRoutes* compiled_ = nullptr;
  SprayConfig spray_;

  std::vector<RankState> ranks_;
  std::vector<sim::TimeNs> finishNs_;
  // Message bookkeeping: msg id -> (sender, receiver, tag).
  struct MsgInfo {
    patterns::Rank src = 0;
    patterns::Rank dst = 0;
    std::uint32_t tag = 0;
  };
  std::vector<MsgInfo> msgInfo_;  ///< Indexed by MsgId (dense).
  // (src, dst) -> interned route set in the network's RouteStore.
  std::unordered_map<std::uint64_t, sim::RouteSetId> pairSets_;
  // Per receiving rank: (src, tag) -> counts.
  std::vector<std::map<std::uint64_t, std::uint32_t>> postedRecvs_;
  std::vector<std::map<std::uint64_t, std::uint32_t>> unexpected_;
  // Barrier accounting: barrier index -> arrivals so far.
  std::map<std::uint32_t, std::uint32_t> barrierArrivals_;
  std::vector<sim::TimeNs> barrierNs_;  ///< Completion time per barrier.
  bool ran_ = false;
};

}  // namespace trace
