// replayer.hpp — Trace replay engine coupled to the network simulator.
//
// Mirrors the Venus–Dimemas co-simulation of Sec. VI-B: the replayer walks
// every rank's program, hands point-to-point messages to the Network (routed
// by the configured routing scheme), and advances ranks as completions come
// back.  Semantics:
//
//  * kIsend starts a message; it counts as outstanding until delivered
//    end-to-end (we model synchronous completion — DESIGN.md).
//  * kIrecv matches arrivals by (source rank, tag), multiset semantics;
//    arrivals before the post are buffered as unexpected messages.
//  * kWaitAll blocks until the rank's outstanding sends are delivered and
//    posted receives have arrived.
//  * kBarrier blocks until every rank reached the same barrier index.
//  * kCompute advances the rank after a fixed local delay.
//
// Since the streaming refactor (DESIGN.md §8) the replayer is the
// closed-loop *source* of the shared injection mechanism: it implements
// patterns::TrafficSource — the rank state machine emits messages (and
// kWake timers for compute bursts) as it unblocks — and run() drives it
// through a sim::InjectionProcess, the same process that runs open-loop
// streams.  Route material resolves through trace::RouteSetResolver
// (compiled table, virtual route() fallback, or spray enumeration),
// memoized per (src, dst): no per-message route construction on any path.
//
// The replayer is single-use: construct, run(), read the makespan.  A
// second run() throws std::logic_error; results of the first run stay
// readable.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/compiled_routes.hpp"
#include "patterns/source.hpp"
#include "routing/router.hpp"
#include "sim/injection.hpp"
#include "sim/network.hpp"
#include "trace/mapping.hpp"
#include "trace/route_resolver.hpp"
#include "trace/trace.hpp"

namespace trace {

class Replayer final : public patterns::TrafficSource {
 public:
  /// All references must outlive the replayer.  The replayer's injection
  /// process installs itself as the network's sink.  When @p compiled is
  /// given (and no per-segment mode is active) messages route through the
  /// compiled forwarding table — a flat lookup instead of a virtual
  /// route() call per message; the table must be compiled against @p net's
  /// topology.
  Replayer(sim::Network& net, const Trace& trace, const Mapping& mapping,
           const routing::Router& router, SprayConfig spray = {},
           const core::CompiledRoutes* compiled = nullptr);

  /// Replays the whole trace; returns the time the last rank finished.
  /// Throws std::runtime_error if ranks are left blocked when the network
  /// drains (e.g. an unmatched receive).
  sim::TimeNs run();

  /// Completion time of an individual rank (valid after run()).
  [[nodiscard]] sim::TimeNs finishTimeOf(patterns::Rank r) const {
    return finishNs_.at(r);
  }

  /// Completion time of every global barrier, in order (valid after
  /// run()).  For traces built by traceFromPhases these are exactly the
  /// phase boundaries, so barrierTimes()[i] - barrierTimes()[i-1] is the
  /// duration of phase i — the per-phase breakdown behind the Sec. VII-A
  /// "fifth phase takes eight times longer" analysis.
  [[nodiscard]] const std::vector<sim::TimeNs>& barrierTimes() const {
    return barrierNs_;
  }

  // ---- patterns::TrafficSource (the closed-loop source) --------------------

  [[nodiscard]] patterns::Rank numRanks() const override {
    return trace_->numRanks;
  }
  [[nodiscard]] patterns::Pull pull(sim::TimeNs now,
                                    patterns::SourceMessage& out) override;
  void onDelivered(std::uint64_t token, sim::TimeNs now) override;
  void onWake(std::uint64_t cookie, sim::TimeNs now) override;

 private:
  struct RankState {
    std::size_t pc = 0;
    std::uint32_t pendingSends = 0;       ///< Isends not yet delivered.
    std::uint32_t outstandingRecvs = 0;   ///< Posted, not yet arrived.
    std::int64_t blockingSend = -1;       ///< Token a kSend waits on.
    bool blockingRecv = false;            ///< A kRecv waits for a match.
    bool inCompute = false;
    std::uint32_t barriersPassed = 0;
    bool finished = false;
  };

  /// One pending source action in program order: a message to inject or a
  /// compute-timer request.  Keeping both in one queue preserves the exact
  /// walk order (and therefore the event insertion order) of the
  /// pre-streaming replayer.
  struct Pending {
    patterns::SourceMessage m;
    bool wake = false;
  };

  /// Advances rank r until it blocks or finishes, queueing its actions.
  void progress(patterns::Rank r);

  [[nodiscard]] std::uint64_t matchKey(patterns::Rank src,
                                       std::uint32_t tag) const;

  sim::Network* net_;
  const Trace* trace_;
  const Mapping* mapping_;
  RouteSetResolver resolver_;
  sim::InjectionProcess driver_;

  std::vector<RankState> ranks_;
  std::vector<sim::TimeNs> finishNs_;
  std::uint32_t finishedRanks_ = 0;
  // Message bookkeeping: token -> (sender, receiver, tag); tokens are
  // assigned densely in injection order.
  struct MsgInfo {
    patterns::Rank src = 0;
    patterns::Rank dst = 0;
    std::uint32_t tag = 0;
  };
  std::vector<MsgInfo> msgInfo_;
  std::deque<Pending> pending_;
  bool started_ = false;
  // Per receiving rank: (src, tag) -> counts.
  std::vector<std::map<std::uint64_t, std::uint32_t>> postedRecvs_;
  std::vector<std::map<std::uint64_t, std::uint32_t>> unexpected_;
  // Barrier accounting: barrier index -> arrivals so far.
  std::map<std::uint32_t, std::uint32_t> barrierArrivals_;
  std::vector<sim::TimeNs> barrierNs_;  ///< Completion time per barrier.
  bool ran_ = false;
};

}  // namespace trace
