// mapping.hpp — Process-to-node placement.
//
// The paper maps MPI processes to hosts sequentially (Sec. VI-B: "the
// mapping of processes to nodes (sequential)"); alternative placements are
// supported for placement-sensitivity studies (CG's locality depends on 16
// consecutive ranks landing in one switch).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "patterns/pattern.hpp"
#include "xgft/labels.hpp"
#include "xgft/rng.hpp"

namespace trace {

class Mapping {
 public:
  /// rank i -> host i.
  [[nodiscard]] static Mapping sequential(patterns::Rank numRanks) {
    std::vector<xgft::NodeIndex> hosts(numRanks);
    for (patterns::Rank r = 0; r < numRanks; ++r) hosts[r] = r;
    return Mapping(std::move(hosts));
  }

  /// Uniformly random placement onto @p numHosts hosts (injective).
  [[nodiscard]] static Mapping random(patterns::Rank numRanks,
                                      std::uint64_t numHosts,
                                      std::uint64_t seed) {
    if (numHosts < numRanks) {
      throw std::invalid_argument("Mapping::random: more ranks than hosts");
    }
    std::vector<xgft::NodeIndex> hosts(numHosts);
    for (std::uint64_t h = 0; h < numHosts; ++h) hosts[h] = h;
    xgft::Rng rng(seed);
    rng.shuffle(hosts);
    hosts.resize(numRanks);
    return Mapping(std::move(hosts));
  }

  /// Explicit placement; must be injective.
  [[nodiscard]] static Mapping custom(std::vector<xgft::NodeIndex> hosts) {
    return Mapping(std::move(hosts));
  }

  [[nodiscard]] patterns::Rank numRanks() const {
    return static_cast<patterns::Rank>(hosts_.size());
  }
  [[nodiscard]] xgft::NodeIndex hostOf(patterns::Rank r) const {
    return hosts_.at(r);
  }

 private:
  explicit Mapping(std::vector<xgft::NodeIndex> hosts)
      : hosts_(std::move(hosts)) {
    std::vector<xgft::NodeIndex> sorted = hosts_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("Mapping: placement must be injective");
    }
  }

  std::vector<xgft::NodeIndex> hosts_;
};

}  // namespace trace
