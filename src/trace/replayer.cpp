#include "trace/replayer.hpp"

#include <stdexcept>
#include <string>

#include "xgft/rng.hpp"

namespace trace {

Replayer::Replayer(sim::Network& net, const Trace& trace,
                   const Mapping& mapping, const routing::Router& router,
                   SprayConfig spray, const core::CompiledRoutes* compiled)
    : net_(&net),
      trace_(&trace),
      mapping_(&mapping),
      router_(&router),
      compiled_(compiled),
      spray_(spray) {
  if (mapping.numRanks() != trace.numRanks) {
    throw std::invalid_argument("Replayer: mapping/trace rank mismatch");
  }
  // Per-segment modes never consult the forwarding table (spray enumerates
  // NCA routes, adaptive routes hop by hop), so a compiled handle is inert
  // for them — but every mode interns its per-(src, dst) route material
  // exactly once (routeSetFor), so no per-message route construction
  // remains on any path.
  if (spray_.adaptive || spray_.enabled) compiled_ = nullptr;
  if (compiled_ != nullptr &&
      &compiled_->topology() != &net.topology()) {
    throw std::invalid_argument(
        "Replayer: compiled routes built for a different topology");
  }
  ranks_.resize(trace.numRanks);
  finishNs_.resize(trace.numRanks, 0);
  postedRecvs_.resize(trace.numRanks);
  unexpected_.resize(trace.numRanks);
  net_->setSink(this);
}

std::uint64_t Replayer::matchKey(patterns::Rank src, std::uint32_t tag) const {
  return (static_cast<std::uint64_t>(src) << 32) | tag;
}

sim::RouteSetId Replayer::routeSetFor(xgft::NodeIndex src,
                                      xgft::NodeIndex dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  const auto it = pairSets_.find(key);
  if (it != pairSets_.end()) return it->second;
  sim::RouteSetId set;
  if (spray_.enabled) {
    const xgft::Topology& topo = net_->topology();
    const xgft::Count n = topo.numNcas(src, dst);
    std::vector<xgft::Route> routes;
    if (n <= spray_.maxPaths) {
      for (xgft::Count c = 0; c < n; ++c) {
        routes.push_back(routeViaNca(topo, src, dst, c));
      }
    } else {
      for (std::uint32_t i = 0; i < spray_.maxPaths; ++i) {
        routes.push_back(routeViaNca(
            topo, src, dst, xgft::hashMix(spray_.seed, src, dst, i) % n));
      }
    }
    // Spraying happens above the first hop: all candidate routes must
    // leave the host through the same NIC port (relevant only when
    // w1 > 1).
    if (!routes.empty() && !routes[0].up.empty()) {
      const std::uint32_t port0 = routes[0].up[0];
      std::erase_if(routes, [port0](const xgft::Route& r) {
        return r.up[0] != port0;
      });
    }
    set = net_->internRoutes(src, dst, routes);
  } else if (compiled_ != nullptr) {
    set = net_->internCompiledPath(src, dst, compiled_->upPorts(src, dst));
  } else {
    set = net_->internRoutes(src, dst, {router_->route(src, dst)});
  }
  pairSets_.emplace(key, set);
  return set;
}

sim::TimeNs Replayer::run() {
  if (ran_) throw std::logic_error("Replayer::run: single-use");
  ran_ = true;
  for (patterns::Rank r = 0; r < trace_->numRanks; ++r) progress(r);
  net_->run();
  sim::TimeNs makespan = 0;
  std::uint32_t blocked = 0;
  for (patterns::Rank r = 0; r < trace_->numRanks; ++r) {
    if (!ranks_[r].finished) ++blocked;
    makespan = std::max(makespan, finishNs_[r]);
  }
  if (blocked > 0) {
    throw std::runtime_error("Replayer::run: " + std::to_string(blocked) +
                             " rank(s) blocked at drain — unmatched receive "
                             "or missing barrier participant");
  }
  return makespan;
}

void Replayer::progress(patterns::Rank r) {
  RankState& state = ranks_[r];
  if (state.finished || state.inCompute || state.blockingRecv ||
      state.blockingSend >= 0) {
    return;
  }
  const std::vector<Op>& program = trace_->programs[r];
  while (state.pc < program.size()) {
    const Op& op = program[state.pc];
    switch (op.kind) {
      case OpKind::kIsend:
      case OpKind::kSend: {
        const xgft::NodeIndex src = mapping_->hostOf(r);
        const xgft::NodeIndex dst = mapping_->hostOf(op.peer);
        sim::MsgId msg = 0;
        if (spray_.adaptive) {
          msg = net_->addMessageAdaptive(src, dst, op.bytes);
        } else {
          // Route material (validated, hop-expanded, interned) is built at
          // most once per (src, dst) pair — repeat sends are a pure record
          // append in the simulator.
          const sim::RouteSetId set = routeSetFor(src, dst);
          msg = net_->addMessageSet(
              src, dst, op.bytes, set,
              spray_.enabled ? spray_.policy : sim::SprayPolicy::kRoundRobin,
              spray_.enabled ? spray_.seed : 1);
        }
        if (msg != msgInfo_.size()) {
          throw std::logic_error("Replayer: non-dense message ids");
        }
        msgInfo_.push_back(MsgInfo{r, op.peer, op.tag});
        net_->release(msg, net_->now());
        ++state.pendingSends;
        ++state.pc;
        if (op.kind == OpKind::kSend) {
          state.blockingSend = static_cast<std::int64_t>(msg);
          return;  // Blocks until this very message is delivered.
        }
        break;
      }
      case OpKind::kIrecv:
      case OpKind::kRecv: {
        const std::uint64_t k = matchKey(op.peer, op.tag);
        auto& unexpected = unexpected_[r];
        const auto it = unexpected.find(k);
        if (it != unexpected.end()) {
          // Already arrived: match immediately.
          if (--it->second == 0) unexpected.erase(it);
          ++state.pc;
        } else {
          ++postedRecvs_[r][k];
          ++state.outstandingRecvs;
          ++state.pc;
          if (op.kind == OpKind::kRecv) {
            state.blockingRecv = true;
            return;  // Blocks until some posted recv is matched.
          }
        }
        break;
      }
      case OpKind::kWaitAll:
        if (state.pendingSends > 0 || state.outstandingRecvs > 0) return;
        ++state.pc;
        break;
      case OpKind::kBarrier: {
        const std::uint32_t index = state.barriersPassed;
        auto [it, inserted] = barrierArrivals_.emplace(index, 0);
        if (++it->second == trace_->numRanks) {
          // Last arrival releases everyone (including this rank).
          barrierArrivals_.erase(it);
          if (barrierNs_.size() <= index) barrierNs_.resize(index + 1);
          barrierNs_[index] = net_->now();
          ++state.barriersPassed;
          ++state.pc;
          for (patterns::Rank other = 0; other < trace_->numRanks; ++other) {
            if (other == r) continue;
            RankState& os = ranks_[other];
            const std::vector<Op>& oprog = trace_->programs[other];
            if (!os.finished && os.pc < oprog.size() &&
                oprog[os.pc].kind == OpKind::kBarrier &&
                os.barriersPassed == index) {
              ++os.barriersPassed;
              ++os.pc;
              progress(other);
            }
          }
          break;
        }
        return;  // Blocked at the barrier.
      }
      case OpKind::kCompute: {
        state.inCompute = true;
        ++state.pc;
        net_->scheduleCallback(net_->now() + op.durationNs, [this, r]() {
          ranks_[r].inCompute = false;
          progress(r);
        });
        return;
      }
    }
  }
  state.finished = true;
  finishNs_[r] = net_->now();
}

void Replayer::onMessageDelivered(sim::MsgId msg, sim::TimeNs /*time*/) {
  const MsgInfo& info = msgInfo_.at(msg);
  // Sender side: the isend/send completes.
  RankState& sender = ranks_[info.src];
  --sender.pendingSends;
  const bool senderUnblocked =
      sender.blockingSend == static_cast<std::int64_t>(msg);
  if (senderUnblocked) sender.blockingSend = -1;
  // Receiver side: match a posted receive or buffer as unexpected.
  RankState& receiver = ranks_[info.dst];
  const std::uint64_t k = matchKey(info.src, info.tag);
  auto& posted = postedRecvs_[info.dst];
  const auto it = posted.find(k);
  bool receiverMatched = false;
  if (it != posted.end()) {
    if (--it->second == 0) posted.erase(it);
    --receiver.outstandingRecvs;
    receiverMatched = true;
    if (receiver.blockingRecv) receiver.blockingRecv = false;
  } else {
    ++unexpected_[info.dst][k];
  }
  // Wake both sides; progress() is a no-op for ranks still blocked.
  (void)senderUnblocked;
  (void)receiverMatched;
  progress(info.src);
  progress(info.dst);
}

}  // namespace trace
