#include "trace/replayer.hpp"

#include <stdexcept>
#include <string>

namespace trace {

namespace {

/// Also the pre-driver validation point: every check that can reject the
/// construction must run here, before the InjectionProcess member installs
/// itself as the network's sink — a later throw would unwind the process
/// and leave the network with a dangling sink pointer.
sim::InjectionOptions driverOptions(const Trace& trace,
                                    const Mapping& mapping,
                                    RouteSetResolver& resolver) {
  if (mapping.numRanks() != trace.numRanks) {
    throw std::invalid_argument("Replayer: mapping/trace rank mismatch");
  }
  sim::InjectionOptions opt = injectionOptions(resolver);
  opt.hostOf = [&mapping](patterns::Rank r) { return mapping.hostOf(r); };
  return opt;
}

}  // namespace

Replayer::Replayer(sim::Network& net, const Trace& trace,
                   const Mapping& mapping, const routing::Router& router,
                   SprayConfig spray, const core::CompiledRoutes* compiled)
    : net_(&net),
      trace_(&trace),
      mapping_(&mapping),
      resolver_(net, router, spray, compiled),
      driver_(net, *this, driverOptions(trace, mapping, resolver_)) {
  ranks_.resize(trace.numRanks);
  finishNs_.resize(trace.numRanks, 0);
  postedRecvs_.resize(trace.numRanks);
  unexpected_.resize(trace.numRanks);
}

std::uint64_t Replayer::matchKey(patterns::Rank src, std::uint32_t tag) const {
  return (static_cast<std::uint64_t>(src) << 32) | tag;
}

sim::TimeNs Replayer::run() {
  if (ran_) throw std::logic_error("Replayer::run: single-use");
  ran_ = true;
  driver_.run();
  sim::TimeNs makespan = 0;
  std::uint32_t blocked = 0;
  for (patterns::Rank r = 0; r < trace_->numRanks; ++r) {
    if (!ranks_[r].finished) ++blocked;
    makespan = std::max(makespan, finishNs_[r]);
  }
  if (blocked > 0) {
    throw std::runtime_error("Replayer::run: " + std::to_string(blocked) +
                             " rank(s) blocked at drain — unmatched receive "
                             "or missing barrier participant");
  }
  return makespan;
}

patterns::Pull Replayer::pull(sim::TimeNs /*now*/,
                              patterns::SourceMessage& out) {
  if (!started_) {
    started_ = true;
    for (patterns::Rank r = 0; r < trace_->numRanks; ++r) progress(r);
  }
  if (pending_.empty()) {
    return finishedRanks_ == trace_->numRanks ? patterns::Pull::kExhausted
                                              : patterns::Pull::kBlocked;
  }
  const Pending entry = pending_.front();
  pending_.pop_front();
  out = entry.m;
  return entry.wake ? patterns::Pull::kWake : patterns::Pull::kMessage;
}

void Replayer::progress(patterns::Rank r) {
  RankState& state = ranks_[r];
  if (state.finished || state.inCompute || state.blockingRecv ||
      state.blockingSend >= 0) {
    return;
  }
  const std::vector<Op>& program = trace_->programs[r];
  while (state.pc < program.size()) {
    const Op& op = program[state.pc];
    switch (op.kind) {
      case OpKind::kIsend:
      case OpKind::kSend: {
        const std::uint64_t token = msgInfo_.size();
        msgInfo_.push_back(MsgInfo{r, op.peer, op.tag});
        Pending entry;
        entry.m.src = r;
        entry.m.dst = op.peer;
        entry.m.bytes = op.bytes;
        entry.m.time = net_->now();
        entry.m.token = token;
        pending_.push_back(entry);
        ++state.pendingSends;
        ++state.pc;
        if (op.kind == OpKind::kSend) {
          state.blockingSend = static_cast<std::int64_t>(token);
          return;  // Blocks until this very message is delivered.
        }
        break;
      }
      case OpKind::kIrecv:
      case OpKind::kRecv: {
        const std::uint64_t k = matchKey(op.peer, op.tag);
        auto& unexpected = unexpected_[r];
        const auto it = unexpected.find(k);
        if (it != unexpected.end()) {
          // Already arrived: match immediately.
          if (--it->second == 0) unexpected.erase(it);
          ++state.pc;
        } else {
          ++postedRecvs_[r][k];
          ++state.outstandingRecvs;
          ++state.pc;
          if (op.kind == OpKind::kRecv) {
            state.blockingRecv = true;
            return;  // Blocks until some posted recv is matched.
          }
        }
        break;
      }
      case OpKind::kWaitAll:
        if (state.pendingSends > 0 || state.outstandingRecvs > 0) return;
        ++state.pc;
        break;
      case OpKind::kBarrier: {
        const std::uint32_t index = state.barriersPassed;
        auto [it, inserted] = barrierArrivals_.emplace(index, 0);
        if (++it->second == trace_->numRanks) {
          // Last arrival releases everyone (including this rank).
          barrierArrivals_.erase(it);
          if (barrierNs_.size() <= index) barrierNs_.resize(index + 1);
          barrierNs_[index] = net_->now();
          ++state.barriersPassed;
          ++state.pc;
          for (patterns::Rank other = 0; other < trace_->numRanks; ++other) {
            if (other == r) continue;
            RankState& os = ranks_[other];
            const std::vector<Op>& oprog = trace_->programs[other];
            if (!os.finished && os.pc < oprog.size() &&
                oprog[os.pc].kind == OpKind::kBarrier &&
                os.barriersPassed == index) {
              ++os.barriersPassed;
              ++os.pc;
              progress(other);
            }
          }
          break;
        }
        return;  // Blocked at the barrier.
      }
      case OpKind::kCompute: {
        state.inCompute = true;
        ++state.pc;
        Pending entry;
        entry.wake = true;
        entry.m.time = net_->now() + op.durationNs;
        entry.m.token = r;
        pending_.push_back(entry);
        return;
      }
    }
  }
  state.finished = true;
  ++finishedRanks_;
  finishNs_[r] = net_->now();
}

void Replayer::onWake(std::uint64_t cookie, sim::TimeNs /*now*/) {
  const patterns::Rank r = static_cast<patterns::Rank>(cookie);
  ranks_[r].inCompute = false;
  progress(r);
}

void Replayer::onDelivered(std::uint64_t token, sim::TimeNs /*now*/) {
  const MsgInfo& info = msgInfo_.at(token);
  // Sender side: the isend/send completes.
  RankState& sender = ranks_[info.src];
  --sender.pendingSends;
  if (sender.blockingSend == static_cast<std::int64_t>(token)) {
    sender.blockingSend = -1;
  }
  // Receiver side: match a posted receive or buffer as unexpected.
  RankState& receiver = ranks_[info.dst];
  const std::uint64_t k = matchKey(info.src, info.tag);
  auto& posted = postedRecvs_[info.dst];
  const auto it = posted.find(k);
  if (it != posted.end()) {
    if (--it->second == 0) posted.erase(it);
    --receiver.outstandingRecvs;
    if (receiver.blockingRecv) receiver.blockingRecv = false;
  } else {
    ++unexpected_[info.dst][k];
  }
  // Wake both sides; progress() is a no-op for ranks still blocked.
  progress(info.src);
  progress(info.dst);
}

}  // namespace trace
