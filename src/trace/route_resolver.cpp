#include "trace/route_resolver.hpp"

#include <stdexcept>
#include <vector>

#include "xgft/rng.hpp"

namespace trace {

RouteSetResolver::RouteSetResolver(sim::Network& net,
                                   const routing::Router& router,
                                   SprayConfig spray,
                                   const core::CompiledRoutes* compiled)
    : net_(&net), router_(&router), compiled_(compiled), spray_(spray) {
  if (spray_.adaptive || spray_.enabled) compiled_ = nullptr;
  if (compiled_ != nullptr && &compiled_->topology() != &net.topology()) {
    throw std::invalid_argument(
        "RouteSetResolver: compiled routes built for a different topology");
  }
}

void RouteSetResolver::setCompiled(const core::CompiledRoutes* compiled) {
  if (spray_.adaptive || spray_.enabled) {
    throw std::invalid_argument(
        "RouteSetResolver::setCompiled: per-segment modes (spray, adaptive) "
        "do not consult forwarding tables");
  }
  if (compiled_ == nullptr) {
    throw std::invalid_argument(
        "RouteSetResolver::setCompiled: resolver was not constructed in "
        "compiled mode");
  }
  if (compiled == nullptr ||
      &compiled->topology() != &net_->topology()) {
    throw std::invalid_argument(
        "RouteSetResolver::setCompiled: replacement table is null or built "
        "for a different topology");
  }
  compiled_ = compiled;
  pairSets_.clear();
}

sim::InjectionOptions injectionOptions(RouteSetResolver& resolver) {
  const SprayConfig& spray = resolver.spray();
  sim::InjectionOptions opt;
  opt.adaptive = spray.adaptive;
  opt.policy = spray.enabled ? spray.policy : sim::SprayPolicy::kRoundRobin;
  opt.spraySeed = spray.enabled ? spray.seed : 1;
  opt.routeSet = [&resolver](xgft::NodeIndex s, xgft::NodeIndex d) {
    return resolver.setFor(s, d);
  };
  return opt;
}

sim::RouteSetId RouteSetResolver::setFor(xgft::NodeIndex src,
                                         xgft::NodeIndex dst) {
  // Compiled tables memoize per share-representative instead of per source:
  // every source in the same forwarding interval and leaf group maps to one
  // interned set (identical NIC port + switch tail), so the memo and the
  // route arenas stay O(intervals), not O(pairs).  shareRep == src for flat
  // tables, making this the exact historical key there.
  const xgft::NodeIndex srcKey =
      compiled_ != nullptr ? compiled_->shareRep(src, dst) : src;
  const std::uint64_t key = (static_cast<std::uint64_t>(srcKey) << 32) | dst;
  const auto it = pairSets_.find(key);
  if (it != pairSets_.end()) return it->second;
  sim::RouteSetId set;
  if (spray_.enabled) {
    const xgft::Topology& topo = net_->topology();
    const xgft::Count n = topo.numNcas(src, dst);
    std::vector<xgft::Route> routes;
    if (n <= spray_.maxPaths) {
      for (xgft::Count c = 0; c < n; ++c) {
        routes.push_back(routeViaNca(topo, src, dst, c));
      }
    } else {
      for (std::uint32_t i = 0; i < spray_.maxPaths; ++i) {
        routes.push_back(routeViaNca(
            topo, src, dst, xgft::hashMix(spray_.seed, src, dst, i) % n));
      }
    }
    // Spraying happens above the first hop: all candidate routes must
    // leave the host through the same NIC port (relevant only when
    // w1 > 1).
    if (!routes.empty() && !routes[0].up.empty()) {
      const std::uint32_t port0 = routes[0].up[0];
      std::erase_if(routes, [port0](const xgft::Route& r) {
        return r.up[0] != port0;
      });
    }
    set = net_->internRoutes(src, dst, routes);
  } else if (compiled_ != nullptr) {
    if (compiled_->unroutable(src, dst)) {
      pairSets_.emplace(key, kUnroutable);
      return kUnroutable;
    }
    set = net_->internCompiledPath(src, dst, compiled_->upPorts(src, dst));
  } else {
    set = net_->internRoutes(src, dst, {router_->route(src, dst)});
  }
  pairSets_.emplace(key, set);
  return set;
}

}  // namespace trace
