#include "trace/openloop.hpp"

#include <stdexcept>
#include <string>

#include "sim/injection.hpp"

namespace trace {

OpenLoopResult runOpenLoop(const xgft::Topology& topo,
                           const routing::Router& router,
                           patterns::TrafficSource& source,
                           const OpenLoopOptions& opt,
                           const sim::SimConfig& cfg) {
  if (source.numRanks() > topo.numHosts()) {
    throw std::invalid_argument(
        "runOpenLoop: source has " + std::to_string(source.numRanks()) +
        " ranks but the topology only " + std::to_string(topo.numHosts()) +
        " hosts");
  }
  if (opt.measureNs == 0) {
    throw std::invalid_argument("runOpenLoop: empty measurement window");
  }
  sim::Network net(topo, cfg);
  if (opt.probe != nullptr) net.setProbe(opt.probe);
  RouteSetResolver resolver(net, router, opt.spray, opt.compiled);
  if (opt.prepare) opt.prepare(net, resolver);
  // Ranks map to hosts identically (no hostOf), so the resolver's options
  // serve as-is.  Under a fault plan, refused (unroutable-pair) messages
  // are already counted by NetworkStats::messagesDropped; open-loop
  // sources never await a delivery, so a counting-only handler suffices.
  sim::InjectionOptions injOpt = injectionOptions(resolver);
  if (opt.prepare) {
    injOpt.onDrop = [](std::uint64_t, sim::Bytes, xgft::NodeIndex,
                       xgft::NodeIndex) {};
  }
  sim::InjectionProcess process(net, source, std::move(injOpt));
  process.setSimThreads(opt.simThreads);

  const sim::TimeNs measureBegin = opt.warmupNs;
  const sim::TimeNs measureEnd = opt.warmupNs + opt.measureNs;

  OpenLoopResult result;
  result.windows.assign(3, {});
  result.windows[0].beginNs = 0;
  result.windows[0].endNs = measureBegin;
  result.windows[1].beginNs = measureBegin;
  result.windows[1].endNs = measureEnd;
  result.windows[2].beginNs = measureEnd;

  analysis::LatencyHistogram hist(opt.histBucketNs, opt.histBuckets);
  // The run drains completely, so every injected message is seen here
  // exactly once — injected-in-window accounting at delivery time is
  // exact.
  std::uint64_t offeredBytes = 0;
  process.onDelivery = [&](std::uint64_t /*token*/, sim::Bytes bytes,
                           sim::TimeNs injectedNs, sim::TimeNs deliveredNs) {
    const std::size_t w =
        deliveredNs < measureBegin ? 0 : (deliveredNs < measureEnd ? 1 : 2);
    ++result.windows[w].messages;
    result.windows[w].bytes += bytes;
    if (injectedNs >= measureBegin && injectedNs < measureEnd) {
      offeredBytes += bytes;
      hist.record(deliveredNs - injectedNs);
    }
  };

  // Window boundaries are partial runs; the drain pass runs to a fully
  // empty calendar (Network::run throws on any stranded message).
  process.run(measureBegin);
  result.windows[0].eventsAtEnd = net.stats().eventsProcessed;
  process.run(measureEnd);
  result.windows[1].eventsAtEnd = net.stats().eventsProcessed;
  process.run();
  result.windows[2].eventsAtEnd = net.stats().eventsProcessed;

  result.latency = hist.summary();
  result.stats = net.stats();
  result.routeArenaEntries = net.routes().arenaEntries();
  result.lastDeliveryNs = net.stats().lastDeliveryNs;
  result.windows[2].endNs = std::max(result.lastDeliveryNs, measureEnd);
  const double hostBytesPerNs = cfg.linkGbps / 8.0;
  result.acceptedLoad =
      result.windows[1].acceptedLoad(source.numRanks(), hostBytesPerNs);
  result.offeredLoad =
      static_cast<double>(offeredBytes) /
      (static_cast<double>(source.numRanks()) * hostBytesPerNs *
       static_cast<double>(opt.measureNs));
  const sim::WireUtilization util =
      sim::wireUtilization(net, result.lastDeliveryNs);
  result.utilMax = util.max;
  result.utilMean = util.mean;
  return result;
}

}  // namespace trace
