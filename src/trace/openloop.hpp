// openloop.hpp — The windowed open-loop experiment runner.
//
// One call runs a streaming traffic source against an XGFT under a routing
// scheme and reports a load–latency operating point: the run is split into
// warmup / measurement / drain windows (analysis/latency.hpp explains why
// that makes the point stationary), the source stops offering at the end
// of the measurement window, and the network then drains completely.
// Per-window accepted throughput comes from the delivery account; latency
// percentiles come from the fixed-bucket histogram over messages injected
// inside the measurement window.
//
// The execution stack is the shared streaming mechanism (DESIGN.md §8):
// sim::InjectionProcess pumps the source on the calendar queue and
// trace::RouteSetResolver interns the per-pair route material, so an
// open-loop run exercises exactly the injection/routing paths that phase
// replay does.  Window boundaries are Network::run(until) partial runs —
// the process is resumed across them with all queue state intact.
#pragma once

#include "analysis/latency.hpp"
#include "core/compiled_routes.hpp"
#include "patterns/source.hpp"
#include "routing/router.hpp"
#include "sim/network.hpp"
#include "trace/route_resolver.hpp"

namespace trace {

struct OpenLoopOptions {
  /// Measurement windows: [0, warmup) settles the network, [warmup,
  /// warmup + measure) is measured, then the source stops and the run
  /// drains.  Callers configure the source's stop time to warmup + measure
  /// (engine::RunnerOptions and Scenario::makeSource do).
  sim::TimeNs warmupNs = 500'000;
  sim::TimeNs measureNs = 2'000'000;

  /// Routing mode, exactly as for trace::Replayer.
  SprayConfig spray = {};
  const core::CompiledRoutes* compiled = nullptr;

  /// Latency histogram shape (see analysis::LatencyHistogram).
  std::uint64_t histBucketNs = 512;
  std::size_t histBuckets = std::size_t{1} << 16;

  /// Optional observation probe, attached to the run's Network before any
  /// traffic (sim/probe.hpp; non-perturbing).  Must outlive the call.
  sim::Probe* probe = nullptr;

  /// Optional fault-installation hook, called once the network and
  /// resolver exist and before any traffic: set the fault policy, schedule
  /// kLinkDown/kLinkUp events, swap in degraded forwarding tables
  /// (fault::installFaultPlan).  When set, unroutable pairs are refused
  /// and counted (NetworkStats::messagesDropped) instead of throwing.
  std::function<void(sim::Network&, RouteSetResolver&)> prepare;

  /// Shard workers for the event core (sim/shard.hpp); <= 1 runs serial.
  /// Results are byte-identical for any value — the engine falls back to
  /// the serial core whenever sharding would be unprofitable or inexact
  /// (probe attached, faults scheduled, topology too small).
  std::uint32_t simThreads = 1;
};

struct OpenLoopResult {
  /// Latency digest of messages injected in the measurement window.
  analysis::LatencySummary latency;

  /// Delivery accounts: [0] warmup, [1] measurement, [2] drain.
  std::vector<analysis::WindowAccount> windows;

  /// Measured loads over the measurement window, as fractions of the
  /// per-host link payload rate.  offeredLoad counts bytes *injected* in
  /// the window (gap rounding and the bursty clamp make it deviate from
  /// the configured nominal, especially near line rate); acceptedLoad
  /// counts bytes delivered in it.
  double offeredLoad = 0.0;
  double acceptedLoad = 0.0;

  sim::TimeNs lastDeliveryNs = 0;
  sim::NetworkStats stats;

  /// Interned route-arena footprint at the end of the run (uint32 entries
  /// across the path + set arenas; sim::RouteStore::arenaEntries).
  std::size_t routeArenaEntries = 0;

  /// Wire utilization over the whole run (warmup through drain), from
  /// Network::wireBusyNs: busiest wire and the mean over wires that
  /// carried traffic.
  double utilMax = 0.0;
  double utilMean = 0.0;
};

/// Runs @p source (ranks map to hosts sequentially; numRanks() must not
/// exceed the topology's hosts) on @p topo routed by @p router.  The
/// router is ignored by per-segment modes (spray/adaptive), mirroring the
/// Replayer contract.
[[nodiscard]] OpenLoopResult runOpenLoop(const xgft::Topology& topo,
                                         const routing::Router& router,
                                         patterns::TrafficSource& source,
                                         const OpenLoopOptions& opt = {},
                                         const sim::SimConfig& cfg = {});

}  // namespace trace
