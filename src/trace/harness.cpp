#include "trace/harness.hpp"

#include <algorithm>

#include "routing/relabel.hpp"
#include "trace/replayer.hpp"

namespace trace {

RunResult runApp(const xgft::Topology& topo, const routing::Router& router,
                 const patterns::PhasedPattern& app, const Mapping& mapping,
                 const sim::SimConfig& cfg) {
  sim::Network net(topo, cfg);
  const Trace t = traceFromPhases(app);
  Replayer replayer(net, t, mapping, router);
  RunResult result;
  result.makespanNs = replayer.run();
  result.stats = net.stats();
  return result;
}

RunResult runApp(const xgft::Topology& topo, const routing::Router& router,
                 const patterns::PhasedPattern& app,
                 const sim::SimConfig& cfg) {
  return runApp(topo, router, app, Mapping::sequential(app.numRanks), cfg);
}

RunResult runAppSprayed(const xgft::Topology& topo,
                        const patterns::PhasedPattern& app,
                        const SprayConfig& spray, const sim::SimConfig& cfg) {
  sim::Network net(topo, cfg);
  const Trace t = traceFromPhases(app);
  const Mapping mapping = Mapping::sequential(app.numRanks);
  // The router is only consulted when spraying is disabled; D-mod-k serves
  // as the inert default.
  const routing::RouterPtr router = routing::makeDModK(topo);
  Replayer replayer(net, t, mapping, *router, spray);
  RunResult result;
  result.makespanNs = replayer.run();
  result.stats = net.stats();
  return result;
}

RunResult runAppAdaptive(const xgft::Topology& topo,
                         const patterns::PhasedPattern& app,
                         const sim::SimConfig& cfg) {
  SprayConfig spray;
  spray.adaptive = true;
  return runAppSprayed(topo, app, spray, cfg);
}

RunResult runCrossbarReference(const patterns::PhasedPattern& app,
                               const sim::SimConfig& cfg) {
  // XGFT(1; N; 1) *is* the single-stage crossbar: one switch, N hosts.
  const xgft::Topology crossbar(
      xgft::Params({app.numRanks}, {1}));
  sim::SimConfig ideal = cfg;
  ideal.switchLatencyNs = 0;
  ideal.linkLatencyNs = 0;
  ideal.inputBufferSegments = 1u << 20;
  ideal.outputBufferSegments = 1u << 20;
  // Routing is trivial (one path per pair); D-mod-k digits produce it.
  const routing::RouterPtr router = routing::makeDModK(crossbar);
  return runApp(crossbar, *router, app, ideal);
}

double slowdownVsCrossbar(const xgft::Topology& topo,
                          const routing::Router& router,
                          const patterns::PhasedPattern& app,
                          const sim::SimConfig& cfg) {
  const RunResult network = runApp(topo, router, app, cfg);
  const RunResult reference = runCrossbarReference(app, cfg);
  if (reference.makespanNs == 0) return 1.0;
  return static_cast<double>(network.makespanNs) /
         static_cast<double>(reference.makespanNs);
}

patterns::PhasedPattern scaleMessages(const patterns::PhasedPattern& app,
                                      double factor) {
  patterns::PhasedPattern scaled;
  scaled.name = app.name;
  scaled.numRanks = app.numRanks;
  for (const patterns::Pattern& phase : app.phases) {
    patterns::Pattern p(phase.numRanks());
    for (const patterns::Flow& f : phase.flows()) {
      const auto bytes = static_cast<patterns::Bytes>(
          std::max(1.0, static_cast<double>(f.bytes) * factor));
      p.add(f.src, f.dst, bytes);
    }
    scaled.phases.push_back(std::move(p));
  }
  return scaled;
}

}  // namespace trace
