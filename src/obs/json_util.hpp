// json_util.hpp — Deterministic JSON scalar rendering shared by the
// telemetry exporters (obs::ChromeTraceWriter, engine::manifest).
//
// Everything goes through std::to_chars: locale-independent, shortest
// round-trip doubles, identical bytes on every platform — the exporters'
// outputs are byte-compared in tests and across --threads values.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace obs {

/// Appends @p s to @p out with JSON string escaping (quotes, backslash,
/// control characters; UTF-8 passes through).
inline void jsonEscapeTo(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] inline std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  jsonEscapeTo(out, s);
  return out;
}

/// Nanoseconds rendered as fixed-point microseconds ("12.345") — the
/// trace-event `ts`/`dur` unit, at full simulator resolution.
[[nodiscard]] inline std::string microsFixed3(std::uint64_t ns) {
  char buf[32];
  char* p = std::to_chars(buf, buf + sizeof(buf), ns / 1000).ptr;
  *p++ = '.';
  const std::uint64_t frac = ns % 1000;
  *p++ = static_cast<char>('0' + frac / 100);
  *p++ = static_cast<char>('0' + (frac / 10) % 10);
  *p++ = static_cast<char>('0' + frac % 10);
  return std::string(buf, p);
}

/// Shortest round-trip double (to_chars general form; "0" for -0.0 noise
/// is not normalized — callers feed computed values straight through).
[[nodiscard]] inline std::string formatJsonDouble(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace obs
