#include "obs/chrome_trace.hpp"

#include <unordered_set>

#include "obs/json_util.hpp"

namespace obs {

namespace {

std::string messageSpanName(std::uint32_t msg, const MessageMeta& meta) {
  // The async "b"/"e" pair must agree on cat+id+name, so both ends build
  // the name from the same recorded metadata.
  std::string name = "msg ";
  name += std::to_string(msg);
  name += ' ';
  name += std::to_string(meta.src);
  name += '>';
  name += std::to_string(meta.dst);
  name += " (";
  name += std::to_string(meta.bytes);
  name += " B)";
  return name;
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[";
}

void ChromeTraceWriter::emit(const std::string& json) {
  if (!first_) os_ << ',';
  os_ << '\n' << json;
  first_ = false;
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  os_ << "\n]}\n";
  finished_ = true;
}

AddedProcess ChromeTraceWriter::addProcess(const Recorder& rec,
                                           const ChromeTraceOptions& opt) {
  AddedProcess out;
  const std::string pid = std::to_string(opt.pid);

  {
    std::string ev = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    ev += pid;
    ev += ",\"args\":{\"name\":\"";
    jsonEscapeTo(ev, opt.processName);
    ev += "\"}}";
    emit(ev);
  }

  const SummarySeries& series = rec.series();
  std::unordered_set<std::uint32_t> tracks;
  std::unordered_set<std::uint32_t> openSpans;
  for (const TraceEvent& e : rec.events()) {
    switch (e.kind) {
      case EventKind::kWireBusy: {
        if (tracks.find(e.a) == tracks.end()) {
          if (tracks.size() >= opt.maxPortTracks) {
            ++out.wireSlicesDropped;
            continue;
          }
          tracks.insert(e.a);
          ++out.portTracks;
          std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
          meta += pid;
          meta += ",\"tid\":";
          meta += std::to_string(e.a);
          meta += ",\"args\":{\"name\":\"port ";
          meta += std::to_string(e.a);
          const std::uint32_t grp = rec.portGroup(e.a);
          if (grp < series.groupLabels.size()) {
            meta += " (";
            jsonEscapeTo(meta, series.groupLabels[grp]);
            meta += ')';
          }
          meta += "\"}}";
          emit(meta);
        }
        std::string ev = "{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"X\","
                         "\"pid\":";
        ev += pid;
        ev += ",\"tid\":";
        ev += std::to_string(e.a);
        ev += ",\"ts\":";
        ev += microsFixed3(e.t);
        ev += ",\"dur\":";
        ev += microsFixed3(e.durNs);
        ev += ",\"args\":{\"msg\":";
        ev += std::to_string(e.b);
        ev += "}}";
        emit(ev);
        ++out.wireSlices;
        break;
      }
      case EventKind::kRelease:
      case EventKind::kDeliver: {
        const bool begin = e.kind == EventKind::kRelease;
        if (begin) {
          openSpans.insert(e.a);
        } else {
          // A delivery whose release fell outside the (capped) log would
          // produce an unmatched "e"; skip it.
          if (openSpans.erase(e.a) == 0) continue;
          ++out.messageSpans;
        }
        std::string ev = "{\"name\":\"";
        jsonEscapeTo(ev, messageSpanName(e.a, rec.messageMeta(e.a)));
        ev += "\",\"cat\":\"msg\",\"ph\":\"";
        ev += begin ? 'b' : 'e';
        ev += "\",\"id\":";
        ev += std::to_string(e.a);
        ev += ",\"pid\":";
        ev += pid;
        ev += ",\"tid\":0,\"ts\":";
        ev += microsFixed3(e.t);
        ev += "}";
        emit(ev);
        break;
      }
      case EventKind::kBlocked:
      case EventKind::kWake: {
        std::string ev = "{\"name\":\"";
        if (e.kind == EventKind::kBlocked) {
          ev += "blocked by port ";
          ev += std::to_string(e.b);
        } else {
          ev += "woken";
        }
        ev += "\",\"cat\":\"block\",\"ph\":\"i\",\"s\":\"t\",\"pid\":";
        ev += pid;
        ev += ",\"tid\":";
        ev += std::to_string(e.a);
        ev += ",\"ts\":";
        ev += microsFixed3(e.t);
        ev += "}";
        emit(ev);
        break;
      }
      case EventKind::kLinkDown:
      case EventKind::kLinkUp: {
        // Process-scoped instants: a fault transition affects every track.
        std::string ev = "{\"name\":\"";
        ev += e.kind == EventKind::kLinkDown ? "link down " : "link up ";
        ev += std::to_string(e.a);
        ev += "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"pid\":";
        ev += pid;
        ev += ",\"tid\":0,\"ts\":";
        ev += microsFixed3(e.t);
        ev += "}";
        emit(ev);
        break;
      }
    }
  }

  // Counter tracks from the summary series.
  auto counter = [&](const char* name, std::size_t row,
                     const std::string& value) {
    std::string ev = "{\"name\":\"";
    ev += name;
    ev += "\",\"ph\":\"C\",\"pid\":";
    ev += pid;
    ev += ",\"ts\":";
    ev += microsFixed3(series.t[row]);
    ev += ",\"args\":{\"value\":";
    ev += value;
    ev += "}}";
    emit(ev);
  };
  for (std::size_t i = 0; i < series.size(); ++i) {
    counter("inflight msgs", i, std::to_string(series.inFlight[i]));
    counter("queued segments", i, std::to_string(series.queuedSegments[i]));
    counter("blocked inputs", i, std::to_string(series.blockedInputs[i]));
    for (std::size_t grp = 0; grp < series.numGroups(); ++grp) {
      const std::string name = "util " + series.groupLabels[grp];
      counter(name.c_str(), i, formatJsonDouble(series.utilAt(i, grp)));
    }
    ++out.counterSamples;
  }
  return out;
}

AddedProcess writeChromeTrace(std::ostream& os, const Recorder& rec,
                              const ChromeTraceOptions& opt) {
  ChromeTraceWriter writer(os);
  const AddedProcess out = writer.addProcess(rec, opt);
  writer.finish();
  return out;
}

}  // namespace obs
