// recorder.hpp — The standard sim::Probe: bounded time-series + event log.
//
// The Recorder turns the event core's hook stream into three artifacts
// (DESIGN.md §9):
//
//  * SummarySeries — periodic sim-time snapshots (in-flight messages,
//    buffered segments, deepest queue, blocked inputs, per-link-class
//    utilization from wireBusyNs deltas) in struct-of-arrays storage.
//    Memory is bounded: when the series hits RecorderConfig::maxSamples it
//    is halved in place (pairwise max for gauges, mean for utilization)
//    and the sampling period doubles — the Network re-queries
//    samplePeriodNs() after every tick, so cadence follows automatically.
//    A run of any length ends with maxSamples/2..maxSamples points.
//
//  * Event log — optional (RecorderConfig::recordEvents) per-event
//    records (message release/delivery, wire busy spans, blocked/wake)
//    for Chrome-trace export, capped at maxEvents; overflow increments
//    eventsDropped instead of growing.
//
//  * RecorderSummary — scalar digest (peaks, counts, drop accounting)
//    for the engine's run manifests.
//
// Exact peaks (deepest queue, most in-flight) are tracked hook-side, so
// they are not subject to sampling aliasing.  A Recorder observes one
// Network at a time and is not thread-safe; engine jobs each own one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/probe.hpp"

namespace obs {

struct RecorderConfig {
  /// Initial sampling cadence in simulated ns (0 disables the series).
  sim::TimeNs samplePeriodNs = 2048;

  /// Series capacity; on overflow the series halves and the period
  /// doubles.  Must be >= 2 when sampling is enabled.
  std::size_t maxSamples = 4096;

  /// Record per-event trace records (release/deliver/wire/block)?  Off by
  /// default: summary sampling alone is cheap enough for whole campaigns.
  bool recordEvents = false;

  /// Event-log capacity; overflow counts eventsDropped.
  std::size_t maxEvents = std::size_t{1} << 18;
};

/// Struct-of-arrays time series; rows share an index, utilization is
/// row-major `size() x numGroups()`.
struct SummarySeries {
  std::vector<sim::TimeNs> t;
  std::vector<std::uint32_t> inFlight;        ///< Released, not delivered.
  std::vector<std::uint64_t> queuedSegments;  ///< Segments in switch buffers.
  std::vector<std::uint32_t> maxQueueDepth;   ///< Deepest buffer this instant.
  std::vector<std::uint32_t> maxQueuePort;    ///< ... and the gport holding it.
  std::vector<std::uint32_t> blockedInputs;   ///< Inputs parked in wait lists.
  std::vector<double> util;  ///< Row-major per-group utilization in [0, 1].

  /// Link classes, e.g. "hosts>L1", "L1>hosts", "L1>L2" — one utilization
  /// column per class (all same-class wires averaged).
  std::vector<std::string> groupLabels;

  [[nodiscard]] std::size_t size() const { return t.size(); }
  [[nodiscard]] std::size_t numGroups() const { return groupLabels.size(); }
  [[nodiscard]] double utilAt(std::size_t row, std::size_t group) const {
    return util[row * numGroups() + group];
  }
};

enum class EventKind : std::uint8_t {
  kRelease,   ///< a = msg.
  kDeliver,   ///< a = msg.
  kWireBusy,  ///< a = gport, b = msg, durNs = serialization time.
  kBlocked,   ///< a = blocked input gport, b = blocking output gport.
  kWake,      ///< a = woken input gport.
  kLinkDown,  ///< a = failed link id (fault injection).
  kLinkUp,    ///< a = restored link id.
};

struct TraceEvent {
  sim::TimeNs t = 0;
  sim::TimeNs durNs = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  EventKind kind = EventKind::kRelease;
};

/// Endpoints/size of a released message, for labelling trace spans.
struct MessageMeta {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
};

/// Scalar digest for run manifests.  All counts are exact (hook-side);
/// only the series itself is subject to downsampling.
struct RecorderSummary {
  std::size_t samples = 0;
  sim::TimeNs effectivePeriodNs = 0;  ///< After any downsampling doublings.
  std::uint64_t eventsRecorded = 0;
  std::uint64_t eventsDropped = 0;
  std::uint64_t messagesReleased = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint32_t peakInFlight = 0;
  std::uint64_t peakQueuedSegments = 0;
  std::uint32_t peakQueueDepth = 0;  ///< == max(NetworkStats in/out marks).
  std::uint32_t peakQueuePort = 0;   ///< First gport reaching the peak.
  std::uint32_t peakBlockedInputs = 0;
  double peakGroupUtil = 0.0;  ///< Highest sampled per-class utilization.
  std::string peakGroupLabel;
};

class Recorder : public sim::Probe {
 public:
  explicit Recorder(RecorderConfig cfg = {});

  // sim::Probe ---------------------------------------------------------------
  void onAttach(const sim::Network& net) override;
  void onMessageReleased(std::uint32_t msg, xgft::NodeIndex src,
                         xgft::NodeIndex dst, std::uint64_t bytes,
                         sim::TimeNs t) override;
  void onMessageDelivered(std::uint32_t msg, sim::TimeNs t) override;
  void onSegmentEnqueued(std::uint32_t gport, bool input, std::uint32_t depth,
                         sim::TimeNs t) override;
  void onSegmentDequeued(std::uint32_t gport, bool input, std::uint32_t depth,
                         sim::TimeNs t) override;
  void onWireBusy(std::uint32_t gport, std::uint32_t msg, sim::TimeNs t,
                  sim::TimeNs serNs) override;
  void onWireIdle(std::uint32_t gport, sim::TimeNs t) override;
  void onInputBlocked(std::uint32_t gInPort, std::uint32_t gOutPort,
                      sim::TimeNs t) override;
  void onInputWoken(std::uint32_t gInPort, sim::TimeNs t) override;
  void onLinkDown(xgft::LinkId link, sim::TimeNs t) override;
  void onLinkUp(xgft::LinkId link, sim::TimeNs t) override;
  [[nodiscard]] sim::TimeNs samplePeriodNs() const override {
    return periodNs_;
  }
  void onSample(const sim::Network& net, sim::TimeNs t) override;

  // Results ------------------------------------------------------------------
  [[nodiscard]] const SummarySeries& series() const { return series_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  /// Meta of a released message (zeroed MessageMeta for unknown ids).
  [[nodiscard]] MessageMeta messageMeta(std::uint32_t msg) const;
  /// Link-class index of a gport (series().groupLabels order); valid after
  /// onAttach.
  [[nodiscard]] std::uint32_t portGroup(std::uint32_t gport) const {
    return gport < portGroup_.size() ? portGroup_[gport] : 0;
  }
  [[nodiscard]] RecorderSummary summary() const;
  [[nodiscard]] const RecorderConfig& config() const { return cfg_; }

 private:
  void record(EventKind kind, sim::TimeNs t, std::uint32_t a,
              std::uint32_t b = 0, sim::TimeNs durNs = 0);
  void downsampleSeries();

  RecorderConfig cfg_;
  sim::TimeNs periodNs_ = 0;

  // Live gauges + exact peaks, maintained by the hooks.
  std::uint32_t inFlight_ = 0;
  std::uint64_t queuedSegments_ = 0;
  std::uint32_t blockedInputs_ = 0;
  std::uint64_t messagesReleased_ = 0;
  std::uint64_t messagesDelivered_ = 0;
  std::uint32_t peakInFlight_ = 0;
  std::uint64_t peakQueuedSegments_ = 0;
  std::uint32_t peakQueueDepth_ = 0;
  std::uint32_t peakQueuePort_ = 0;
  std::uint32_t peakBlockedInputs_ = 0;

  // Sampling state.
  SummarySeries series_;
  std::vector<std::uint32_t> portGroup_;    ///< Link class per gport.
  std::vector<std::uint32_t> groupWires_;   ///< Wire count per class.
  std::vector<sim::TimeNs> prevBusyNs_;     ///< wireBusyNs at the last sample.
  std::vector<double> groupBusyScratch_;    ///< Reused per-sample accumulator.
  sim::TimeNs lastSampleT_ = 0;
  double peakGroupUtil_ = 0.0;
  std::uint32_t peakGroupIndex_ = 0;

  // Event log.
  std::vector<TraceEvent> events_;
  std::vector<MessageMeta> msgMeta_;  ///< Indexed by (dense) MsgId.
  std::uint64_t eventsDropped_ = 0;
};

}  // namespace obs
