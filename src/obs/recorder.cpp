#include "obs/recorder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/network.hpp"

namespace obs {

Recorder::Recorder(RecorderConfig cfg) : cfg_(cfg) {
  if (cfg_.samplePeriodNs > 0 && cfg_.maxSamples < 2) {
    throw std::invalid_argument(
        "Recorder: maxSamples must be >= 2 when sampling is enabled");
  }
  periodNs_ = cfg_.samplePeriodNs;
}

void Recorder::onAttach(const sim::Network& net) {
  const xgft::Topology& topo = net.topology();
  const std::uint32_t numPorts = net.numGlobalPorts();
  portGroup_.assign(numPorts, 0);
  groupWires_.clear();
  series_.groupLabels.clear();

  // Link classes: one utilization column per (owning level, direction).
  // Gports are laid out hosts first, then switches level by level, so a
  // first-encounter walk assigns group indices deterministically.
  // groupKey packs (level, isUp); kNoGroup marks a class not yet seen.
  constexpr std::uint32_t kNoGroup = 0xffffffffu;
  std::vector<std::uint32_t> keyToGroup(2 * (topo.height() + 1), kNoGroup);
  auto levelLabel = [](std::uint32_t level) {
    // Built by append rather than `"L" + std::to_string(...)`: the rvalue
    // operator+ trips GCC 12's -Wrestrict false positive (PR105651) at -O3.
    std::string label = level == 0 ? "hosts" : "L";
    if (level != 0) label += std::to_string(level);
    return label;
  };
  for (std::uint32_t g = 0; g < numPorts; ++g) {
    const auto& owner = net.portOwnerOf(g);
    // Hosts only point up; switch ports below m(level) point down.
    const bool up =
        owner.level == 0 || owner.localPort >= topo.params().m(owner.level);
    const std::uint32_t key = owner.level * 2 + (up ? 1 : 0);
    if (keyToGroup[key] == kNoGroup) {
      keyToGroup[key] = static_cast<std::uint32_t>(groupWires_.size());
      groupWires_.push_back(0);
      const std::uint32_t to = up ? owner.level + 1 : owner.level - 1;
      series_.groupLabels.push_back(levelLabel(owner.level) + ">" +
                                    levelLabel(to));
    }
    portGroup_[g] = keyToGroup[key];
    ++groupWires_[portGroup_[g]];
  }
  groupBusyScratch_.assign(groupWires_.size(), 0.0);

  // Utilization is computed from busy-time deltas, so a mid-run attach
  // starts a fresh window at the current instant.
  prevBusyNs_.resize(numPorts);
  for (std::uint32_t g = 0; g < numPorts; ++g) {
    prevBusyNs_[g] = net.wireBusyNs(g);
  }
  lastSampleT_ = net.now();
}

void Recorder::record(EventKind kind, sim::TimeNs t, std::uint32_t a,
                      std::uint32_t b, sim::TimeNs durNs) {
  if (events_.size() >= cfg_.maxEvents) {
    ++eventsDropped_;
    return;
  }
  events_.push_back(TraceEvent{t, durNs, a, b, kind});
}

void Recorder::onMessageReleased(std::uint32_t msg, xgft::NodeIndex src,
                                 xgft::NodeIndex dst, std::uint64_t bytes,
                                 sim::TimeNs t) {
  ++messagesReleased_;
  ++inFlight_;
  peakInFlight_ = std::max(peakInFlight_, inFlight_);
  if (cfg_.recordEvents) {
    if (msgMeta_.size() <= msg) msgMeta_.resize(msg + 1);
    msgMeta_[msg] = MessageMeta{static_cast<std::uint32_t>(src),
                                static_cast<std::uint32_t>(dst), bytes};
    record(EventKind::kRelease, t, msg);
  }
}

void Recorder::onMessageDelivered(std::uint32_t msg, sim::TimeNs t) {
  ++messagesDelivered_;
  assert(inFlight_ > 0);
  --inFlight_;
  if (cfg_.recordEvents) record(EventKind::kDeliver, t, msg);
}

void Recorder::onSegmentEnqueued(std::uint32_t gport, bool /*input*/,
                                 std::uint32_t depth, sim::TimeNs /*t*/) {
  ++queuedSegments_;
  peakQueuedSegments_ = std::max(peakQueuedSegments_, queuedSegments_);
  if (depth > peakQueueDepth_) {
    peakQueueDepth_ = depth;
    peakQueuePort_ = gport;
  }
}

void Recorder::onSegmentDequeued(std::uint32_t /*gport*/, bool /*input*/,
                                 std::uint32_t /*depth*/, sim::TimeNs /*t*/) {
  assert(queuedSegments_ > 0);
  --queuedSegments_;
}

void Recorder::onWireBusy(std::uint32_t gport, std::uint32_t msg,
                          sim::TimeNs t, sim::TimeNs serNs) {
  if (cfg_.recordEvents) record(EventKind::kWireBusy, t, gport, msg, serNs);
}

void Recorder::onWireIdle(std::uint32_t /*gport*/, sim::TimeNs /*t*/) {}

void Recorder::onInputBlocked(std::uint32_t gInPort, std::uint32_t gOutPort,
                              sim::TimeNs t) {
  ++blockedInputs_;
  peakBlockedInputs_ = std::max(peakBlockedInputs_, blockedInputs_);
  if (cfg_.recordEvents) record(EventKind::kBlocked, t, gInPort, gOutPort);
}

void Recorder::onInputWoken(std::uint32_t gInPort, sim::TimeNs t) {
  assert(blockedInputs_ > 0);
  --blockedInputs_;
  if (cfg_.recordEvents) record(EventKind::kWake, t, gInPort);
}

void Recorder::onLinkDown(xgft::LinkId link, sim::TimeNs t) {
  if (cfg_.recordEvents) {
    record(EventKind::kLinkDown, t, static_cast<std::uint32_t>(link));
  }
}

void Recorder::onLinkUp(xgft::LinkId link, sim::TimeNs t) {
  if (cfg_.recordEvents) {
    record(EventKind::kLinkUp, t, static_cast<std::uint32_t>(link));
  }
}

void Recorder::onSample(const sim::Network& net, sim::TimeNs t) {
  const sim::TimeNs dt = t - lastSampleT_;
  if (dt == 0) return;
  lastSampleT_ = t;

  // One flat scan: per-class busy deltas and the instantaneous deepest
  // buffer.  Busy time is credited in full when a serialization starts, so
  // a window's delta can exceed dt; clamp to keep utilization in [0, 1].
  std::fill(groupBusyScratch_.begin(), groupBusyScratch_.end(), 0.0);
  std::uint32_t maxDepth = 0;
  std::uint32_t maxDepthPort = 0;
  const std::uint32_t numPorts = net.numGlobalPorts();
  for (std::uint32_t g = 0; g < numPorts; ++g) {
    const sim::TimeNs busy = net.wireBusyNs(g);
    groupBusyScratch_[portGroup_[g]] +=
        static_cast<double>(busy - prevBusyNs_[g]);
    prevBusyNs_[g] = busy;
    const std::uint32_t depth =
        std::max(net.inputQueueDepth(g), net.outputQueueDepth(g));
    if (depth > maxDepth) {
      maxDepth = depth;
      maxDepthPort = g;
    }
  }

  series_.t.push_back(t);
  series_.inFlight.push_back(inFlight_);
  series_.queuedSegments.push_back(queuedSegments_);
  series_.maxQueueDepth.push_back(maxDepth);
  series_.maxQueuePort.push_back(maxDepthPort);
  series_.blockedInputs.push_back(blockedInputs_);
  const double span = static_cast<double>(dt);
  for (std::size_t grp = 0; grp < groupBusyScratch_.size(); ++grp) {
    const double wires = static_cast<double>(groupWires_[grp]);
    const double util =
        std::min(1.0, groupBusyScratch_[grp] / (wires * span));
    series_.util.push_back(util);
    if (util > peakGroupUtil_) {
      peakGroupUtil_ = util;
      peakGroupIndex_ = static_cast<std::uint32_t>(grp);
    }
  }

  if (series_.size() >= cfg_.maxSamples) downsampleSeries();
}

void Recorder::downsampleSeries() {
  // Halve in place: pairwise max for gauges (keep the aliasing-safe
  // envelope), mean for utilization, the pair's first timestamp.  Doubling
  // the period keeps future samples aligned with the coarsened grid.
  const std::size_t n = series_.size();
  const std::size_t pairs = n / 2;
  const std::size_t groups = series_.numGroups();
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::size_t j = 2 * i;
    const std::size_t k = j + 1;
    series_.t[i] = series_.t[j];
    series_.inFlight[i] = std::max(series_.inFlight[j], series_.inFlight[k]);
    series_.queuedSegments[i] =
        std::max(series_.queuedSegments[j], series_.queuedSegments[k]);
    const bool secondDeeper =
        series_.maxQueueDepth[k] > series_.maxQueueDepth[j];
    series_.maxQueueDepth[i] =
        secondDeeper ? series_.maxQueueDepth[k] : series_.maxQueueDepth[j];
    series_.maxQueuePort[i] =
        secondDeeper ? series_.maxQueuePort[k] : series_.maxQueuePort[j];
    series_.blockedInputs[i] =
        std::max(series_.blockedInputs[j], series_.blockedInputs[k]);
    for (std::size_t grp = 0; grp < groups; ++grp) {
      series_.util[i * groups + grp] =
          0.5 * (series_.util[j * groups + grp] +
                 series_.util[k * groups + grp]);
    }
  }
  std::size_t kept = pairs;
  if ((n & 1) != 0) {
    // Odd tail: carry the last row over unmerged.
    const std::size_t last = n - 1;
    series_.t[kept] = series_.t[last];
    series_.inFlight[kept] = series_.inFlight[last];
    series_.queuedSegments[kept] = series_.queuedSegments[last];
    series_.maxQueueDepth[kept] = series_.maxQueueDepth[last];
    series_.maxQueuePort[kept] = series_.maxQueuePort[last];
    series_.blockedInputs[kept] = series_.blockedInputs[last];
    for (std::size_t grp = 0; grp < groups; ++grp) {
      series_.util[kept * groups + grp] = series_.util[last * groups + grp];
    }
    ++kept;
  }
  series_.t.resize(kept);
  series_.inFlight.resize(kept);
  series_.queuedSegments.resize(kept);
  series_.maxQueueDepth.resize(kept);
  series_.maxQueuePort.resize(kept);
  series_.blockedInputs.resize(kept);
  series_.util.resize(kept * groups);
  periodNs_ *= 2;
}

MessageMeta Recorder::messageMeta(std::uint32_t msg) const {
  if (msg >= msgMeta_.size()) return MessageMeta{};
  return msgMeta_[msg];
}

RecorderSummary Recorder::summary() const {
  RecorderSummary s;
  s.samples = series_.size();
  s.effectivePeriodNs = periodNs_;
  s.eventsRecorded = events_.size();
  s.eventsDropped = eventsDropped_;
  s.messagesReleased = messagesReleased_;
  s.messagesDelivered = messagesDelivered_;
  s.peakInFlight = peakInFlight_;
  s.peakQueuedSegments = peakQueuedSegments_;
  s.peakQueueDepth = peakQueueDepth_;
  s.peakQueuePort = peakQueuePort_;
  s.peakBlockedInputs = peakBlockedInputs_;
  s.peakGroupUtil = peakGroupUtil_;
  if (peakGroupIndex_ < series_.groupLabels.size()) {
    s.peakGroupLabel = series_.groupLabels[peakGroupIndex_];
  }
  return s;
}

}  // namespace obs
