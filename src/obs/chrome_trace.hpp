// chrome_trace.hpp — Chrome trace-event JSON export of a Recorder.
//
// Emits the JSON-object form `{"traceEvents":[...]}` of the trace-event
// format, loadable in Perfetto (ui.perfetto.dev) and chrome://tracing
// (DESIGN.md §9 has the recipe).  Per process (= one simulated job):
//
//  * one "X" complete-event track per transmitting port (wire busy
//    slices, tid = global port id, thread_name "port N (class)") — capped
//    at ChromeTraceOptions::maxPortTracks first-seen ports;
//  * async "b"/"e" spans per message lifetime (release -> delivery),
//    id = message id, labelled with endpoints and size;
//  * instant events for blocked/woken inputs on the affected port track;
//  * "C" counter tracks from the summary series: in-flight messages,
//    buffered segments, blocked inputs, and one utilization counter per
//    link class.
//
// Timestamps are microseconds (the format's unit) at full nanosecond
// resolution (fixed-3).  Output is deterministic: a byte-identical
// Recorder produces a byte-identical trace.
//
// Multiple jobs can share one file: construct a single ChromeTraceWriter
// and call addProcess once per job with distinct pids (campaign_cli
// --trace-out does this), then finish().
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/recorder.hpp"

namespace obs {

struct ChromeTraceOptions {
  /// Trace-event process id; one per simulated job in a combined file.
  std::uint32_t pid = 1;

  /// Shown as the process name in the UI (e.g. the job's spec line).
  std::string processName = "sim";

  /// Wire-slice tracks are emitted for at most this many distinct ports
  /// (first transmission order); slices on later ports are dropped and
  /// counted in AddedProcess::wireSlicesDropped.
  std::size_t maxPortTracks = 64;
};

/// What addProcess actually emitted (drop accounting is explicit — a
/// capped trace should not read as a complete one).
struct AddedProcess {
  std::size_t portTracks = 0;
  std::size_t wireSlices = 0;
  std::size_t wireSlicesDropped = 0;  ///< On ports beyond maxPortTracks.
  std::size_t messageSpans = 0;       ///< Completed b/e pairs.
  std::size_t counterSamples = 0;
};

class ChromeTraceWriter {
 public:
  /// Writes the opening `{"traceEvents":[`.  The stream must outlive the
  /// writer; call finish() before using the file.
  explicit ChromeTraceWriter(std::ostream& os);

  /// Emits one process's tracks from @p rec (which must have been
  /// recording events — see RecorderConfig::recordEvents — for the span
  /// and slice tracks; counter tracks need only the summary series).
  AddedProcess addProcess(const Recorder& rec, const ChromeTraceOptions& opt);

  /// Closes the JSON (`]}` + newline).  Idempotent.
  void finish();

 private:
  void emit(const std::string& json);  ///< One event object, comma-managed.

  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
};

/// One-call convenience: a single-process trace file.
AddedProcess writeChromeTrace(std::ostream& os, const Recorder& rec,
                              const ChromeTraceOptions& opt = {});

}  // namespace obs
