#include "routing/advisor.hpp"

namespace routing {

std::string toString(SchemeAdvice advice) {
  switch (advice) {
    case SchemeAdvice::kEither:
      return "either (equivalent)";
    case SchemeAdvice::kPreferSModK:
      return "prefer s-mod-k";
    case SchemeAdvice::kPreferDModK:
      return "prefer d-mod-k";
  }
  return "?";
}

DominanceReport adviseScheme(const patterns::Pattern& pattern, double bias) {
  DominanceReport report;
  report.symmetric = pattern.isSymmetric();
  std::uint64_t fanOutSum = 0;
  std::uint32_t activeSources = 0;
  std::uint64_t fanInSum = 0;
  std::uint32_t activeDests = 0;
  for (patterns::Rank r = 0; r < pattern.numRanks(); ++r) {
    const std::uint32_t out = pattern.fanOut(r);
    const std::uint32_t in = pattern.fanIn(r);
    if (out > 0) {
      fanOutSum += out;
      ++activeSources;
    }
    if (in > 0) {
      fanInSum += in;
      ++activeDests;
    }
  }
  if (activeSources > 0) {
    report.meanFanOut =
        static_cast<double>(fanOutSum) / static_cast<double>(activeSources);
  }
  if (activeDests > 0) {
    report.meanFanIn =
        static_cast<double>(fanInSum) / static_cast<double>(activeDests);
  }
  // A symmetric pattern is its own inverse: provably a tie (Sec. VII-C).
  if (report.symmetric) {
    report.advice = SchemeAdvice::kEither;
    return report;
  }
  if (report.meanFanOut > bias * report.meanFanIn) {
    // Many destinations per source: let every source own one ascent.
    report.advice = SchemeAdvice::kPreferSModK;
  } else if (report.meanFanIn > bias * report.meanFanOut) {
    report.advice = SchemeAdvice::kPreferDModK;
  } else {
    report.advice = SchemeAdvice::kEither;
  }
  return report;
}

}  // namespace routing
