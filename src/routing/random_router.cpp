#include "routing/random_router.hpp"

#include "xgft/rng.hpp"

namespace routing {

Route RandomRouter::route(NodeIndex s, NodeIndex d) const {
  const xgft::Count choices = topo_->numNcas(s, d);
  const xgft::Count pick = xgft::hashMix(seed_, s, d) % choices;
  return xgft::routeViaNca(*topo_, s, d, pick);
}

RouterPtr makeRandom(const Topology& topo, std::uint64_t seed) {
  return std::make_unique<RandomRouter>(topo, seed);
}

}  // namespace routing
