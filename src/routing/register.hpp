// register.hpp — Self-registration of the built-in routing schemes.
//
// The routing module owns the knowledge of which schemes exist and how to
// build them; core::schemeRegistry() calls this hook exactly once on first
// access.  To add a scheme, extend registerBuiltinSchemes (one edit, in
// this module) — the engine, CLI and benches pick the new name up through
// the registry without any change.
#pragma once

#include "core/registry.hpp"
#include "core/scenario.hpp"

namespace routing {

void registerBuiltinSchemes(core::Registry<core::SchemeInfo>& registry);

}  // namespace routing
