#include "routing/colored.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "routing/edge_coloring.hpp"
#include "xgft/rng.hpp"

namespace routing {
namespace {

using patterns::Bytes;
using xgft::Channel;
using xgft::Count;

/// One deduplicated (s, d) flow inside a phase, with its effective-bandwidth
/// weights (Sec. IV): the ascent carries weight 1/fanout(s), the descent
/// 1/fanin(d) — the rate the endpoints allow the flow anyway.
struct PhaseFlow {
  xgft::NodeIndex s = 0;
  xgft::NodeIndex d = 0;
  Bytes bytes = 0;
  double rhoUp = 1.0;
  double rhoDown = 1.0;
  bool fixed = false;  ///< Route inherited from an earlier phase.
  Route route;
};

std::uint64_t channelKey(const Channel& ch) {
  return ch.link * 2 + (ch.up ? 1 : 0);
}

/// How a trial seeds the unrouted flows before local search.
enum class Seed { kEdgeColoring, kDModK, kSModK, kNone };

}  // namespace

ColoredRouter::ColoredRouter(const Topology& topo,
                             const patterns::PhasedPattern& app,
                             ColoredOptions options)
    : Router(topo),
      options_(options),
      fallback_(RelabelScheme::mod(topo)) {
  optimize(app);
}

ColoredRouter::ColoredRouter(const Topology& topo,
                             const patterns::Pattern& pattern,
                             ColoredOptions options)
    : Router(topo),
      options_(options),
      fallback_(RelabelScheme::mod(topo)) {
  patterns::PhasedPattern app;
  app.name = "single-phase";
  app.numRanks = pattern.numRanks();
  app.phases.push_back(pattern);
  optimize(app);
}

Route ColoredRouter::route(NodeIndex s, NodeIndex d) const {
  const auto it = routes_.find(key(s, d));
  if (it != routes_.end()) return it->second;
  // D-mod-k fallback for pairs the pattern never exercises.
  const std::uint32_t L = topo_->ncaLevel(s, d);
  Route r;
  r.up.resize(L);
  for (std::uint32_t i = 0; i < L; ++i) r.up[i] = fallback_.port(i, d);
  return r;
}

void ColoredRouter::optimize(const patterns::PhasedPattern& app) {
  maxDemand_ = 0.0;
  for (const patterns::Pattern& phase : app.phases) {
    // ---- Collect the phase's flows, deduplicated per (s, d) pair. ----
    std::unordered_map<std::uint64_t, Bytes> pairBytes;
    std::vector<std::uint32_t> fanOut(phase.numRanks(), 0);
    std::vector<std::uint32_t> fanIn(phase.numRanks(), 0);
    for (const patterns::Flow& f : phase.flows()) {
      if (f.src == f.dst) continue;
      const std::uint64_t k = key(f.src, f.dst);
      if (pairBytes.emplace(k, f.bytes).second) {
        ++fanOut[f.src];
        ++fanIn[f.dst];
      } else {
        pairBytes[k] += f.bytes;
      }
    }

    std::vector<PhaseFlow> base;
    base.reserve(pairBytes.size());
    for (const auto& [k, bytes] : pairBytes) {
      PhaseFlow pf;
      pf.s = k / topo_->numHosts();
      pf.d = k % topo_->numHosts();
      if (topo_->ncaLevel(pf.s, pf.d) == 0) continue;
      pf.bytes = bytes;
      pf.rhoUp = 1.0 / fanOut[pf.s];
      pf.rhoDown = 1.0 / fanIn[pf.d];
      const auto it = routes_.find(k);
      if (it != routes_.end()) {
        pf.fixed = true;  // Static tables: earlier phases win (DESIGN.md).
        pf.route = it->second;
      }
      base.push_back(pf);
    }
    // Deterministic order: heavy flows first, ties by pair id.
    std::sort(base.begin(), base.end(), [&](const auto& a, const auto& b) {
      if (a.bytes != b.bytes) return a.bytes > b.bytes;
      return key(a.s, a.d) < key(b.s, b.d);
    });

    // ---- One optimization trial under a given seeding strategy. ----
    std::unordered_map<std::uint64_t, double> load;
    const auto applyLoad = [&](const PhaseFlow& pf, double sign) {
      for (const Channel& ch : channelsOf(*topo_, pf.s, pf.d, pf.route)) {
        load[channelKey(ch)] += sign * (ch.up ? pf.rhoUp : pf.rhoDown);
      }
    };
    const auto candidates = [&](const PhaseFlow& pf) {
      std::vector<Count> cs;
      const Count n = topo_->numNcas(pf.s, pf.d);
      if (n <= options_.maxCandidates) {
        cs.resize(n);
        for (Count c = 0; c < n; ++c) cs[c] = c;
      } else {
        cs.resize(options_.maxCandidates);
        for (std::size_t i = 0; i < cs.size(); ++i) {
          cs[i] = xgft::hashMix(options_.seed, key(pf.s, pf.d), i) % n;
        }
      }
      return cs;
    };
    // Lexicographic objective of placing pf via route r on current loads:
    // (resulting max demand on the touched channels, sum-of-squares delta).
    const auto evaluate = [&](const PhaseFlow& pf, const Route& r) {
      double maxAfter = 0.0;
      double deltaSq = 0.0;
      for (const Channel& ch : channelsOf(*topo_, pf.s, pf.d, r)) {
        const double rho = ch.up ? pf.rhoUp : pf.rhoDown;
        const auto it = load.find(channelKey(ch));
        const double before = it == load.end() ? 0.0 : it->second;
        maxAfter = std::max(maxAfter, before + rho);
        deltaSq += rho * (2.0 * before + rho);
      }
      return std::make_pair(maxAfter, deltaSq);
    };
    const auto pickBest = [&](PhaseFlow& pf) {
      std::pair<double, double> best{1e300, 1e300};
      Count bestChoice = 0;
      for (const Count c : candidates(pf)) {
        const Route r = xgft::routeViaNca(*topo_, pf.s, pf.d, c);
        const auto score = evaluate(pf, r);
        if (score.first < best.first - 1e-12 ||
            (std::abs(score.first - best.first) <= 1e-12 &&
             score.second < best.second - 1e-12)) {
          best = score;
          bestChoice = c;
        }
      }
      pf.route = xgft::routeViaNca(*topo_, pf.s, pf.d, bestChoice);
    };
    const auto modRoute = [&](const PhaseFlow& pf, Guide guide) {
      const xgft::NodeIndex leaf = guide == Guide::Source ? pf.s : pf.d;
      const std::uint32_t L = topo_->ncaLevel(pf.s, pf.d);
      Route r;
      r.up.resize(L);
      for (std::uint32_t i = 0; i < L; ++i) r.up[i] = fallback_.port(i, leaf);
      return r;
    };

    const auto runTrial = [&](Seed seed, std::vector<PhaseFlow>& flows) {
      load.clear();
      for (PhaseFlow& pf : flows) {
        if (pf.fixed) applyLoad(pf, +1.0);
      }
      // Seed the unfixed flows.
      if (seed == Seed::kEdgeColoring && topo_->height() == 2) {
        // Root-level flows form a (source switch) x (destination switch)
        // multigraph; a proper König Δ-coloring folded onto the w2 roots
        // yields the optimal max link load ceil(Δ / w2) for permutations.
        const std::uint32_t m1 = topo_->params().m(1);
        const std::uint32_t w1 = topo_->params().w(1);
        const std::uint32_t w2 = topo_->params().w(2);
        BipartiteMultigraph g;
        g.numLeft = g.numRight =
            static_cast<std::uint32_t>(topo_->nodesAtLevel(1) / w1);
        std::vector<std::size_t> edgeFlow;
        for (std::size_t i = 0; i < flows.size(); ++i) {
          const PhaseFlow& pf = flows[i];
          if (pf.fixed || topo_->ncaLevel(pf.s, pf.d) != 2) continue;
          g.edges.emplace_back(pf.s / m1, pf.d / m1);
          edgeFlow.push_back(i);
        }
        const std::vector<std::uint32_t> colors = colorBipartiteEdges(g);
        for (std::size_t e = 0; e < colors.size(); ++e) {
          PhaseFlow& pf = flows[edgeFlow[e]];
          pf.route = xgft::routeViaNca(
              *topo_, pf.s, pf.d,
              static_cast<Count>(colors[e] % w2) * w1);
          applyLoad(pf, +1.0);
        }
      } else if (seed == Seed::kDModK || seed == Seed::kSModK) {
        const Guide guide =
            seed == Seed::kDModK ? Guide::Destination : Guide::Source;
        for (PhaseFlow& pf : flows) {
          if (pf.fixed) continue;
          pf.route = modRoute(pf, guide);
          applyLoad(pf, +1.0);
        }
      }
      // Greedy placement for anything the seeding left unrouted.
      for (PhaseFlow& pf : flows) {
        if (pf.fixed || !pf.route.up.empty()) continue;
        pickBest(pf);
        applyLoad(pf, +1.0);
      }
      // Local-search refinement.
      for (std::uint32_t pass = 0; pass < options_.refinePasses; ++pass) {
        bool changed = false;
        for (PhaseFlow& pf : flows) {
          if (pf.fixed) continue;
          const Route old = pf.route;
          applyLoad(pf, -1.0);
          pickBest(pf);
          applyLoad(pf, +1.0);
          if (!(pf.route == old)) changed = true;
        }
        if (!changed) break;
      }
      // Trial score: (max demand, sum of squared demands).
      double maxLoad = 0.0;
      double sumSq = 0.0;
      for (const auto& [k, demand] : load) {
        maxLoad = std::max(maxLoad, demand);
        sumSq += demand * demand;
      }
      return std::make_pair(maxLoad, sumSq);
    };

    // ---- Run the configured seeding strategies, keep the best. ----
    std::vector<Seed> seeds;
    switch (options_.seedStrategy) {
      case ColoredSeed::kBest:
        // Mod seeds first: on an exact demand tie the mod-style assignment
        // is kept, which concentrates endpoint contention beyond what the
        // demand metric captures (slightly better simulated times).
        seeds.push_back(Seed::kDModK);
        seeds.push_back(Seed::kSModK);
        if (topo_->height() == 2) seeds.push_back(Seed::kEdgeColoring);
        break;
      case ColoredSeed::kEdgeColoring:
        seeds.push_back(topo_->height() == 2 ? Seed::kEdgeColoring
                                             : Seed::kNone);
        break;
      case ColoredSeed::kDModK:
        seeds.push_back(Seed::kDModK);
        break;
      case ColoredSeed::kSModK:
        seeds.push_back(Seed::kSModK);
        break;
      case ColoredSeed::kGreedy:
        seeds.push_back(Seed::kNone);
        break;
    }
    std::pair<double, double> bestScore{1e300, 1e300};
    std::vector<PhaseFlow> bestFlows;
    for (const Seed seed : seeds) {
      std::vector<PhaseFlow> flows = base;
      const auto score = runTrial(seed, flows);
      if (score < bestScore) {
        bestScore = score;
        bestFlows = std::move(flows);
      }
    }

    for (const PhaseFlow& pf : bestFlows) {
      routes_.emplace(key(pf.s, pf.d), pf.route);
    }
    maxDemand_ = std::max(maxDemand_, bestScore.first);
  }
}

RouterPtr makeColored(const Topology& topo, const patterns::PhasedPattern& app,
                      ColoredOptions options) {
  return std::make_unique<ColoredRouter>(topo, app, options);
}

RouterPtr makeColored(const Topology& topo, const patterns::Pattern& pattern,
                      ColoredOptions options) {
  return std::make_unique<ColoredRouter>(topo, pattern, options);
}

}  // namespace routing
