#include "routing/edge_coloring.hpp"

#include <stdexcept>

namespace routing {
namespace {

constexpr std::int64_t kNone = -1;

}  // namespace

std::uint32_t maxDegree(const BipartiteMultigraph& g) {
  std::vector<std::uint32_t> degL(g.numLeft, 0);
  std::vector<std::uint32_t> degR(g.numRight, 0);
  std::uint32_t best = 0;
  for (const auto& [u, v] : g.edges) {
    best = std::max(best, ++degL.at(u));
    best = std::max(best, ++degR.at(v));
  }
  return best;
}

std::vector<std::uint32_t> colorBipartiteEdges(const BipartiteMultigraph& g) {
  const std::uint32_t delta = maxDegree(g);
  const std::size_t E = g.edges.size();
  std::vector<std::uint32_t> color(E, 0);
  if (delta == 0) return color;

  // atL/atR[vertex * delta + c] = index of the edge colored c at that vertex.
  std::vector<std::int64_t> atL(static_cast<std::size_t>(g.numLeft) * delta,
                                kNone);
  std::vector<std::int64_t> atR(static_cast<std::size_t>(g.numRight) * delta,
                                kNone);
  const auto slotL = [&](std::uint32_t u, std::uint32_t c) -> std::int64_t& {
    return atL[static_cast<std::size_t>(u) * delta + c];
  };
  const auto slotR = [&](std::uint32_t v, std::uint32_t c) -> std::int64_t& {
    return atR[static_cast<std::size_t>(v) * delta + c];
  };
  const auto freeColor = [&](auto& slot, std::uint32_t vertex) {
    for (std::uint32_t c = 0; c < delta; ++c) {
      if (slot(vertex, c) == kNone) return c;
    }
    throw std::logic_error("edge coloring: vertex has no free color");
  };

  std::vector<std::size_t> chain;
  for (std::size_t e = 0; e < E; ++e) {
    const auto [u, v] = g.edges[e];
    const std::uint32_t a = freeColor(slotL, u);
    const std::uint32_t b = freeColor(slotR, v);
    if (a != b && slotR(v, a) != kNone) {
      // Walk the (a, b)-alternating chain starting at v's a-edge.  In a
      // properly colored graph this chain is a simple path; since b is free
      // at v the walk starts at a path endpoint, and by the bipartite parity
      // argument it never reaches u.
      chain.clear();
      std::uint32_t vertex = v;
      bool onRight = true;
      std::uint32_t want = a;
      while (true) {
        const std::int64_t next =
            onRight ? slotR(vertex, want) : slotL(vertex, want);
        if (next == kNone) break;
        const auto idx = static_cast<std::size_t>(next);
        chain.push_back(idx);
        const auto [eu, ev] = g.edges[idx];
        vertex = onRight ? eu : ev;
        onRight = !onRight;
        want = want == a ? b : a;
      }
      // Flip the whole chain a <-> b (clear all old slots first so parallel
      // updates cannot clobber each other).
      for (const std::size_t idx : chain) {
        const auto [eu, ev] = g.edges[idx];
        slotL(eu, color[idx]) = kNone;
        slotR(ev, color[idx]) = kNone;
      }
      for (const std::size_t idx : chain) {
        const auto [eu, ev] = g.edges[idx];
        color[idx] = color[idx] == a ? b : a;
        slotL(eu, color[idx]) = static_cast<std::int64_t>(idx);
        slotR(ev, color[idx]) = static_cast<std::int64_t>(idx);
      }
    }
    color[e] = a;
    slotL(u, a) = static_cast<std::int64_t>(e);
    slotR(v, a) = static_cast<std::int64_t>(e);
  }
  return color;
}

bool isProperEdgeColoring(const BipartiteMultigraph& g,
                          const std::vector<std::uint32_t>& colors) {
  if (colors.size() != g.edges.size()) return false;
  std::uint32_t maxColor = 0;
  for (const std::uint32_t c : colors) maxColor = std::max(maxColor, c + 1);
  std::vector<bool> seenL(static_cast<std::size_t>(g.numLeft) * maxColor,
                          false);
  std::vector<bool> seenR(static_cast<std::size_t>(g.numRight) * maxColor,
                          false);
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const auto [u, v] = g.edges[e];
    const std::size_t iu = static_cast<std::size_t>(u) * maxColor + colors[e];
    const std::size_t iv = static_cast<std::size_t>(v) * maxColor + colors[e];
    if (seenL[iu] || seenR[iv]) return false;
    seenL[iu] = true;
    seenR[iv] = true;
  }
  return true;
}

}  // namespace routing
