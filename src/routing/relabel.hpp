// relabel.hpp — The relabeling framework of Sec. VIII: the paper's proposed
// class of oblivious routing algorithms, of which S-mod-k and D-mod-k are
// the degenerate members.
//
// A minimal up/down route is fixed by the ascending parent choice at each
// level.  The "self-routing" schemes derive the choice at level l from digit
// M_l of one endpoint's Table-I label via a per-level map
//
//     W_{l+1} := DigitMap_l( M_l )  with  DigitMap_l : [0, m_l) -> [0, w_{l+1}).
//
// * DigitMap_l(v) = v mod w_{l+1}                   => S-mod-k / D-mod-k.
// * DigitMap_l = a *balanced random* surjection,
//   drawn independently for every subtree context
//   (the digits above position l of the guiding
//   endpoint)                                       => r-NCA-u / r-NCA-d.
//
// Balanced means every port receives either floor(m_l / w_{l+1}) or
// ceil(m_l / w_{l+1}) digit values, so routes spread as evenly over the NCAs
// as the mod rule — but *which* digits share a port is randomized per
// subtree, which breaks the congruence pathologies of Sec. VII-A (CG's
// Eq. (2) clashing with the modulo), while still concentrating endpoint
// contention exactly like S/D-mod-k.
//
// The guiding endpoint is the source (concentrate endpoint contention on the
// way up; "-u") or the destination (on the way down; "-d").
//
// Level 0 (hosts) has w_1 parallel uplinks; the paper's topologies all have
// w_1 = 1 (footnote 5).  For generality we route level 0 by applying the
// same framework to digit M_1 with port radix w_1 — when w_1 = 1 this
// degenerates to the paper's behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/router.hpp"
#include "xgft/labels.hpp"

namespace routing {

/// Which endpoint's label guides the ascent.
enum class Guide {
  Source,      ///< Unique path up per source (S-mod-k family).
  Destination  ///< Unique path down per destination (D-mod-k family).
};

[[nodiscard]] std::string toString(Guide g);

/// A full set of per-level, per-subtree digit maps.
///
/// For each level l in [0, h) the scheme stores, for every subtree context
/// (the guiding leaf's digits strictly above position max(l, 1)), a table
/// mapping digit M_{max(l,1)} to an up-port in [0, w_{l+1}).
class RelabelScheme {
 public:
  /// The modulo maps: DigitMap_l(v) = v mod w_{l+1}, identical in every
  /// context.  Yields S-mod-k / D-mod-k.
  [[nodiscard]] static RelabelScheme mod(const Topology& topo);

  /// Independent balanced random surjections per (level, context), derived
  /// deterministically from @p seed.  Yields r-NCA-u / r-NCA-d.
  [[nodiscard]] static RelabelScheme balancedRandom(const Topology& topo,
                                                    std::uint64_t seed);

  /// User-supplied tables: tables[l] must have contextCount(l) * digitRadix(l)
  /// entries laid out as [context][digit], each value < w_{l+1}.  This is the
  /// extension point for further members of the class of algorithms the
  /// paper proposes.
  [[nodiscard]] static RelabelScheme fromTables(
      const Topology& topo, std::vector<std::vector<std::uint32_t>> tables);

  /// Up-port for the level-l ascent step given the guiding leaf.
  [[nodiscard]] std::uint32_t port(std::uint32_t level,
                                   xgft::NodeIndex guideLeaf) const;

  /// The digit position consulted at level l: max(l, 1).
  [[nodiscard]] static std::uint32_t digitPosition(std::uint32_t level) {
    return level == 0 ? 1u : level;
  }

  /// Number of distinct subtree contexts at level l:
  /// prod_{j > digitPosition(l)} m_j.
  [[nodiscard]] std::uint64_t contextCount(std::uint32_t level) const;

  /// Radix of the digit consulted at level l (m_{digitPosition(l)}).
  [[nodiscard]] std::uint32_t digitRadix(std::uint32_t level) const;

  /// True iff every (level, context) map is balanced: port preimage sizes
  /// differ by at most one.  The mod and balancedRandom constructions both
  /// satisfy this; fromTables need not.
  [[nodiscard]] bool isBalanced() const;

  [[nodiscard]] const Topology& topology() const { return *topo_; }

 private:
  explicit RelabelScheme(const Topology& topo) : topo_(&topo) {}

  void buildGeometry();

  const Topology* topo_;
  // tables_[l][context * digitRadix(l) + digit] = port.
  std::vector<std::vector<std::uint32_t>> tables_;
  std::vector<std::uint64_t> contextCount_;
  std::vector<std::uint32_t> digitRadix_;
  std::vector<std::uint32_t> portRadix_;
};

/// The generalized self-routing router: ascends by consulting the relabel
/// scheme on the guiding endpoint's digits; descends (as always) along the
/// destination's digits.
class RelabelRouter final : public Router {
 public:
  RelabelRouter(const Topology& topo, RelabelScheme scheme, Guide guide,
                std::string name);

  [[nodiscard]] Route route(NodeIndex s, NodeIndex d) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] Guide guide() const { return guide_; }
  [[nodiscard]] const RelabelScheme& scheme() const { return scheme_; }

 private:
  RelabelScheme scheme_;
  Guide guide_;
  std::string name_;
};

/// S-mod-k: source-guided modulo maps (Leiserson's self-routing default).
[[nodiscard]] RouterPtr makeSModK(const Topology& topo);

/// D-mod-k: destination-guided modulo maps.
[[nodiscard]] RouterPtr makeDModK(const Topology& topo);

/// r-NCA-u ("Random NCA Up"): source-guided balanced random maps.
[[nodiscard]] RouterPtr makeRNcaUp(const Topology& topo, std::uint64_t seed);

/// r-NCA-d ("Random NCA Down"): destination-guided balanced random maps.
[[nodiscard]] RouterPtr makeRNcaDown(const Topology& topo, std::uint64_t seed);

}  // namespace routing
