#include "routing/register.hpp"

#include <stdexcept>

#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"

namespace routing {

namespace {

using core::RouteMode;
using core::RouterContext;
using core::SchemeInfo;

SchemeInfo tableScheme(
    std::string summary,
    std::function<RouterPtr(const xgft::Topology&, const RouterContext&)>
        make,
    bool seeded = false) {
  SchemeInfo info;
  info.mode = RouteMode::kTable;
  info.seeded = seeded;
  info.summary = std::move(summary);
  info.make = std::move(make);
  return info;
}

}  // namespace

void registerBuiltinSchemes(core::Registry<core::SchemeInfo>& registry) {
  registry.add(
      "s-mod-k",
      tableScheme("deterministic source-relabel routing (NCA = f(source))",
                  [](const xgft::Topology& topo, const RouterContext&) {
                    return makeSModK(topo);
                  }));
  registry.add(
      "d-mod-k",
      tableScheme(
          "deterministic destination-relabel routing (NCA = f(destination))",
          [](const xgft::Topology& topo, const RouterContext&) {
            return makeDModK(topo);
          }));
  registry.add(
      "Random",
      tableScheme("one uniformly random NCA per (s, d) pair (Sec. V)",
                  [](const xgft::Topology& topo, const RouterContext& ctx) {
                    return makeRandom(topo, ctx.seed);
                  },
                  /*seeded=*/true));
  registry.alias("random", "Random");
  registry.add(
      "r-NCA-u",
      tableScheme("the paper's proposal: random relabel applied on the ascent",
                  [](const xgft::Topology& topo, const RouterContext& ctx) {
                    return makeRNcaUp(topo, ctx.seed);
                  },
                  /*seeded=*/true));
  registry.add(
      "r-NCA-d",
      tableScheme("the paper's proposal: random relabel applied on the descent",
                  [](const xgft::Topology& topo, const RouterContext& ctx) {
                    return makeRNcaDown(topo, ctx.seed);
                  },
                  /*seeded=*/true));
  {
    SchemeInfo colored = tableScheme(
        "pattern-aware Colored baseline (effective-contention optimizer)",
        [](const xgft::Topology& topo, const RouterContext& ctx) {
          if (ctx.app == nullptr) {
            throw std::invalid_argument(
                "colored routing needs the workload it optimizes for");
          }
          ColoredOptions options;
          options.seed = ctx.seed;
          return makeColored(topo, *ctx.app, options);
        });
    colored.patternAware = true;
    registry.add("colored", std::move(colored));
  }
  {
    SchemeInfo adaptive;
    adaptive.mode = RouteMode::kAdaptive;
    adaptive.summary =
        "minimally-adaptive per-hop routing (least-occupied up-port)";
    registry.add("adaptive", std::move(adaptive));
  }
  {
    SchemeInfo spray;
    spray.mode = RouteMode::kSpray;
    spray.seeded = true;
    spray.summary =
        "per-segment multipath spraying over NCA-distinct routes [16]";
    registry.add("spray", std::move(spray));
  }
}

}  // namespace routing
