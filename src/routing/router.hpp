// router.hpp — The routing-scheme interface.
//
// A Router answers "which minimal up/down route does the pair (s, d) take?".
// Oblivious schemes (Random, S-mod-k, D-mod-k, r-NCA-u, r-NCA-d) answer
// without looking at the communication pattern; the pattern-aware Colored
// baseline is constructed *from* a pattern and only answers for pairs that
// appear in it (it falls back to D-mod-k for strangers, mirroring how a
// pattern-aware scheme would leave default routes in place).
//
// Routes are computed on demand and are required to be deterministic:
// calling route(s, d) twice returns the same route.  Randomized schemes
// derive their choices from an explicit seed.
#pragma once

#include <memory>
#include <string>

#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace routing {

using xgft::NodeIndex;
using xgft::Route;
using xgft::Topology;

/// Abstract routing scheme over a fixed topology.
class Router {
 public:
  explicit Router(const Topology& topo) : topo_(&topo) {}
  virtual ~Router() = default;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// The minimal up/down route for the ordered pair (s, d).  Must be
  /// deterministic.  s == d yields the empty route.
  [[nodiscard]] virtual Route route(NodeIndex s, NodeIndex d) const = 0;

  /// Short identifier used in reports ("s-mod-k", "r-NCA-u", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the scheme ignores the communication pattern (Sec. I).
  [[nodiscard]] virtual bool isOblivious() const { return true; }

  [[nodiscard]] const Topology& topology() const { return *topo_; }

 protected:
  const Topology* topo_;
};

using RouterPtr = std::unique_ptr<Router>;

}  // namespace routing
