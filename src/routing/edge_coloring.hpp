// edge_coloring.hpp — Proper edge coloring of bipartite multigraphs.
//
// Assigning NCAs to the inter-switch flows of a 2-level XGFT is exactly edge
// coloring: build the multigraph whose left vertices are source switches,
// right vertices destination switches, and edges the flows; two flows
// sharing a source (destination) switch collide on an up (down) link iff
// they were assigned the same root.  König's theorem guarantees a proper
// coloring with Δ (max degree) colors for bipartite graphs, and the classic
// alternating-path algorithm constructs one in O(E · V).  This is the
// optimality core of the pattern-aware "Colored" baseline [4] and of
// level-wise scheduling for permutations [15].
#pragma once

#include <cstdint>
#include <vector>

namespace routing {

/// An undirected bipartite multigraph; parallel edges are allowed.
struct BipartiteMultigraph {
  std::uint32_t numLeft = 0;
  std::uint32_t numRight = 0;
  /// (left, right) endpoint indices per edge.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

/// Maximum vertex degree.
[[nodiscard]] std::uint32_t maxDegree(const BipartiteMultigraph& g);

/// Proper edge coloring using exactly maxDegree(g) colors (König): no two
/// edges sharing an endpoint receive the same color.  Returns one color in
/// [0, maxDegree) per edge, in input order.
[[nodiscard]] std::vector<std::uint32_t> colorBipartiteEdges(
    const BipartiteMultigraph& g);

/// Verifies that @p colors is a proper edge coloring of @p g.
[[nodiscard]] bool isProperEdgeColoring(const BipartiteMultigraph& g,
                                        const std::vector<std::uint32_t>& colors);

}  // namespace routing
