#include "routing/forwarding.hpp"

#include <ostream>
#include <stdexcept>
#include <string>

namespace routing {

ForwardingTables::ForwardingTables(const xgft::Topology& topo)
    : topo_(&topo) {
  const std::uint32_t h = topo.height();
  tables_.resize(h);
  for (std::uint32_t l = 1; l <= h; ++l) {
    tables_[l - 1].assign(topo.nodesAtLevel(l) * topo.numHosts(), kUnused);
  }
}

ForwardingTables ForwardingTables::build(const xgft::Topology& topo,
                                         const Router& router) {
  ForwardingTables ft(topo);
  const xgft::Count n = topo.numHosts();
  for (xgft::NodeIndex s = 0; s < n; ++s) {
    for (xgft::NodeIndex d = 0; d < n; ++d) {
      if (s == d) continue;
      const xgft::Route r = router.route(s, d);
      for (const xgft::Hop& hop : hopsOf(topo, s, d, r)) {
        if (hop.level == 0) continue;  // Host NIC, not a switch.
        std::uint32_t& slot =
            ft.tables_[hop.level - 1][hop.node * n + d];
        if (slot == kUnused) {
          slot = hop.outPort;
        } else if (slot != hop.outPort) {
          throw std::invalid_argument(
              "ForwardingTables: scheme '" + router.name() +
              "' is not destination-consistent at level " +
              std::to_string(hop.level) + " switch " +
              std::to_string(hop.node) + " for destination " +
              std::to_string(d) + " (ports " + std::to_string(slot) +
              " vs " + std::to_string(hop.outPort) + ")");
        }
      }
    }
  }
  return ft;
}

bool ForwardingTables::isDestinationBased(const xgft::Topology& topo,
                                          const Router& router) {
  try {
    (void)build(topo, router);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::uint32_t ForwardingTables::port(std::uint32_t level,
                                     xgft::NodeIndex switchIdx,
                                     xgft::NodeIndex dest) const {
  if (level == 0 || level > topo_->height()) {
    throw std::out_of_range("ForwardingTables::port: bad level");
  }
  return tables_[level - 1].at(switchIdx * topo_->numHosts() + dest);
}

std::optional<std::uint32_t> ForwardingTables::walk(
    xgft::NodeIndex srcHost, xgft::NodeIndex dest) const {
  if (srcHost == dest) return 0;
  // Host uplink: hosts have w1 choices; with destination-based tables the
  // host's NIC also forwards by destination — we take port 0 (w1 = 1 in
  // every paper topology).
  std::uint32_t level = 1;
  xgft::NodeIndex node = topo_->parentIndex(0, srcHost, 0);
  std::uint32_t hops = 1;
  const std::uint32_t limit = 4 * topo_->height() + 2;
  while (hops < limit) {
    const std::uint32_t out = port(level, node, dest);
    if (out == kUnused) return std::nullopt;
    ++hops;
    if (out < topo_->params().m(level)) {
      // Down port.
      if (level == 1) {
        const xgft::NodeIndex host = topo_->childIndex(1, node, out);
        return host == dest ? std::optional<std::uint32_t>(hops)
                            : std::nullopt;
      }
      node = topo_->childIndex(level, node, out);
      --level;
    } else {
      // Up port.
      node = topo_->parentIndex(level, node,
                                out - topo_->params().m(level));
      ++level;
    }
  }
  return std::nullopt;
}

std::uint64_t ForwardingTables::numEntries() const {
  std::uint64_t entries = 0;
  for (const auto& table : tables_) {
    for (const std::uint32_t slot : table) {
      if (slot != kUnused) ++entries;
    }
  }
  return entries;
}

void ForwardingTables::printSwitch(std::uint32_t level,
                                   xgft::NodeIndex switchIdx,
                                   std::ostream& os) const {
  os << "LFT of level-" << level << " switch " << switchIdx << " ("
     << topo_->params().toString() << ")\n";
  for (xgft::NodeIndex d = 0; d < topo_->numHosts(); ++d) {
    const std::uint32_t out = port(level, switchIdx, d);
    os << "  dest " << d << " -> ";
    if (out == kUnused) {
      os << "(unused)";
    } else if (out < topo_->params().m(level)) {
      os << "down port " << out;
    } else {
      os << "up port " << out - topo_->params().m(level);
    }
    os << "\n";
  }
}

}  // namespace routing
