// forwarding.hpp — Destination-indexed per-switch forwarding tables.
//
// Real fat-tree deployments (InfiniBand subnet manager, Myrinet mapper)
// install *destination-based* forwarding: each switch holds one output
// port per destination LID (a linear forwarding table, LFT).  This module
// materializes LFTs from a Router and verifies the precondition: the
// scheme must be destination-consistent, i.e. every flow towards d must
// leave a given switch through the same port regardless of its source.
//
// D-mod-k and r-NCA-d are destination-consistent by construction (that is
// what "concentrating endpoint contention on the way down" means —
// Sec. VII); S-mod-k, r-NCA-u, Random and Colored generally are NOT, which
// is exactly why the paper notes S-mod-k-style schemes need source-routing
// support ("self-routing") rather than LFTs.  isDestinationBased() lets
// callers probe the property.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "routing/router.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace routing {

class ForwardingTables {
 public:
  static constexpr std::uint32_t kUnused = 0xffffffffu;

  /// Builds the LFTs by tracing every ordered host pair through @p router.
  /// Throws std::invalid_argument if the router is not
  /// destination-consistent (two sources want different ports at the same
  /// switch for the same destination).
  [[nodiscard]] static ForwardingTables build(const xgft::Topology& topo,
                                              const Router& router);

  /// True iff build() would succeed.
  [[nodiscard]] static bool isDestinationBased(const xgft::Topology& topo,
                                               const Router& router);

  /// Output port installed at (level, switchIdx) for destination @p dest;
  /// kUnused when no route towards dest traverses that switch.
  [[nodiscard]] std::uint32_t port(std::uint32_t level,
                                   xgft::NodeIndex switchIdx,
                                   xgft::NodeIndex dest) const;

  /// Walks the tables from @p srcHost towards @p dest; returns the hop
  /// count, or std::nullopt if the walk dead-ends or exceeds 4 * height
  /// hops (a broken table).  Used to validate that LFT forwarding agrees
  /// with the router's source view.
  [[nodiscard]] std::optional<std::uint32_t> walk(xgft::NodeIndex srcHost,
                                                  xgft::NodeIndex dest) const;

  /// Number of installed (non-kUnused) entries.
  [[nodiscard]] std::uint64_t numEntries() const;

  /// Human-readable dump of one switch's table.
  void printSwitch(std::uint32_t level, xgft::NodeIndex switchIdx,
                   std::ostream& os) const;

 private:
  explicit ForwardingTables(const xgft::Topology& topo);

  const xgft::Topology* topo_;
  // tables_[level-1][switchIdx * numHosts + dest] = port.
  std::vector<std::vector<std::uint32_t>> tables_;
};

}  // namespace routing
