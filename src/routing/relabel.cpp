#include "routing/relabel.hpp"

#include <stdexcept>

#include "xgft/rng.hpp"

namespace routing {

std::string toString(Guide g) {
  return g == Guide::Source ? "source" : "destination";
}

void RelabelScheme::buildGeometry() {
  const xgft::Params& p = topo_->params();
  const std::uint32_t h = p.height();
  contextCount_.resize(h);
  digitRadix_.resize(h);
  portRadix_.resize(h);
  for (std::uint32_t l = 0; l < h; ++l) {
    const std::uint32_t pos = digitPosition(l);
    digitRadix_[l] = p.m(pos);
    portRadix_[l] = p.w(l + 1);
    std::uint64_t ctx = 1;
    for (std::uint32_t j = pos + 1; j <= h; ++j) ctx *= p.m(j);
    contextCount_[l] = ctx;
  }
}

RelabelScheme RelabelScheme::mod(const Topology& topo) {
  RelabelScheme s(topo);
  s.buildGeometry();
  const std::uint32_t h = topo.height();
  s.tables_.resize(h);
  for (std::uint32_t l = 0; l < h; ++l) {
    std::vector<std::uint32_t> table(s.contextCount_[l] * s.digitRadix_[l]);
    for (std::uint64_t c = 0; c < s.contextCount_[l]; ++c) {
      for (std::uint32_t v = 0; v < s.digitRadix_[l]; ++v) {
        table[c * s.digitRadix_[l] + v] = v % s.portRadix_[l];
      }
    }
    s.tables_[l] = std::move(table);
  }
  return s;
}

RelabelScheme RelabelScheme::balancedRandom(const Topology& topo,
                                            std::uint64_t seed) {
  RelabelScheme s(topo);
  s.buildGeometry();
  const std::uint32_t h = topo.height();
  s.tables_.resize(h);
  for (std::uint32_t l = 0; l < h; ++l) {
    const std::uint32_t m = s.digitRadix_[l];
    const std::uint32_t w = s.portRadix_[l];
    std::vector<std::uint32_t> table(s.contextCount_[l] * m);
    for (std::uint64_t c = 0; c < s.contextCount_[l]; ++c) {
      xgft::Rng rng(xgft::hashMix(seed, l, c));
      // Balanced pool: each port appears floor(m/w) or ceil(m/w) times; a
      // random rotation decides which ports carry the extra digit, and a
      // shuffle randomizes which digits land on which port.
      std::vector<std::uint32_t> pool(m);
      const std::uint32_t offset = static_cast<std::uint32_t>(rng.below(w));
      for (std::uint32_t v = 0; v < m; ++v) pool[v] = (v + offset) % w;
      rng.shuffle(pool);
      for (std::uint32_t v = 0; v < m; ++v) table[c * m + v] = pool[v];
    }
    s.tables_[l] = std::move(table);
  }
  return s;
}

RelabelScheme RelabelScheme::fromTables(
    const Topology& topo, std::vector<std::vector<std::uint32_t>> tables) {
  RelabelScheme s(topo);
  s.buildGeometry();
  const std::uint32_t h = topo.height();
  if (tables.size() != h) {
    throw std::invalid_argument("fromTables: need one table per level");
  }
  for (std::uint32_t l = 0; l < h; ++l) {
    if (tables[l].size() != s.contextCount_[l] * s.digitRadix_[l]) {
      throw std::invalid_argument("fromTables: table size mismatch at level " +
                                  std::to_string(l));
    }
    for (const std::uint32_t port : tables[l]) {
      if (port >= s.portRadix_[l]) {
        throw std::invalid_argument("fromTables: port out of range at level " +
                                    std::to_string(l));
      }
    }
  }
  s.tables_ = std::move(tables);
  return s;
}

std::uint32_t RelabelScheme::port(std::uint32_t level,
                                  xgft::NodeIndex guideLeaf) const {
  const xgft::Params& p = topo_->params();
  const std::uint32_t pos = digitPosition(level);
  xgft::NodeIndex rest = guideLeaf;
  for (std::uint32_t j = 1; j < pos; ++j) rest /= p.m(j);
  const std::uint32_t digit = static_cast<std::uint32_t>(rest % p.m(pos));
  const std::uint64_t context = rest / p.m(pos);
  return tables_[level][context * digitRadix_[level] + digit];
}

std::uint64_t RelabelScheme::contextCount(std::uint32_t level) const {
  return contextCount_.at(level);
}

std::uint32_t RelabelScheme::digitRadix(std::uint32_t level) const {
  return digitRadix_.at(level);
}

bool RelabelScheme::isBalanced() const {
  for (std::uint32_t l = 0; l < tables_.size(); ++l) {
    const std::uint32_t m = digitRadix_[l];
    const std::uint32_t w = portRadix_[l];
    for (std::uint64_t c = 0; c < contextCount_[l]; ++c) {
      std::vector<std::uint32_t> count(w, 0);
      for (std::uint32_t v = 0; v < m; ++v) {
        ++count[tables_[l][c * m + v]];
      }
      std::uint32_t lo = count[0];
      std::uint32_t hi = count[0];
      for (const std::uint32_t k : count) {
        lo = std::min(lo, k);
        hi = std::max(hi, k);
      }
      if (hi - lo > 1) return false;
    }
  }
  return true;
}

RelabelRouter::RelabelRouter(const Topology& topo, RelabelScheme scheme,
                             Guide guide, std::string name)
    : Router(topo),
      scheme_(std::move(scheme)),
      guide_(guide),
      name_(std::move(name)) {}

Route RelabelRouter::route(NodeIndex s, NodeIndex d) const {
  const std::uint32_t L = topo_->ncaLevel(s, d);
  const NodeIndex guideLeaf = guide_ == Guide::Source ? s : d;
  Route r;
  r.up.resize(L);
  for (std::uint32_t i = 0; i < L; ++i) {
    r.up[i] = scheme_.port(i, guideLeaf);
  }
  return r;
}

RouterPtr makeSModK(const Topology& topo) {
  return std::make_unique<RelabelRouter>(topo, RelabelScheme::mod(topo),
                                         Guide::Source, "s-mod-k");
}

RouterPtr makeDModK(const Topology& topo) {
  return std::make_unique<RelabelRouter>(topo, RelabelScheme::mod(topo),
                                         Guide::Destination, "d-mod-k");
}

RouterPtr makeRNcaUp(const Topology& topo, std::uint64_t seed) {
  return std::make_unique<RelabelRouter>(
      topo, RelabelScheme::balancedRandom(topo, seed), Guide::Source,
      "r-NCA-u");
}

RouterPtr makeRNcaDown(const Topology& topo, std::uint64_t seed) {
  return std::make_unique<RelabelRouter>(
      topo, RelabelScheme::balancedRandom(topo, seed), Guide::Destination,
      "r-NCA-d");
}

}  // namespace routing
