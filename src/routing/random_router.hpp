// random_router.hpp — Static Random routing (Greenberg & Leiserson [16];
// the default mechanism in Myrinet and InfiniBand per Sec. V).
//
// Every ordered pair (s, d) is independently assigned one of its
// numNcas(s, d) nearest common ancestors uniformly at random.  The choice is
// a pure function of (seed, s, d) (counter-based hashing), so no N^2 table
// is stored and a seed reproduces the exact same route set.
//
// Unlike S/D-mod-k, Random does *not* concentrate endpoint contention: two
// flows sharing a source (or destination) usually take different ascents,
// turning unavoidable endpoint contention into avoidable network contention
// (Sec. VII) — the effect the paper's proposal removes.
#pragma once

#include <cstdint>

#include "routing/router.hpp"

namespace routing {

class RandomRouter final : public Router {
 public:
  RandomRouter(const Topology& topo, std::uint64_t seed)
      : Router(topo), seed_(seed) {}

  [[nodiscard]] Route route(NodeIndex s, NodeIndex d) const override;
  [[nodiscard]] std::string name() const override { return "Random"; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

[[nodiscard]] RouterPtr makeRandom(const Topology& topo, std::uint64_t seed);

}  // namespace routing
