// advisor.hpp — The scheme-selection heuristic of Sec. VII-C.
//
// "A possible heuristic would be to choose S-mod-k for a many-destinations
// dominated pattern.  And D-mod-k for a many-source dominated pattern."
//
// Rationale: S-mod-k concentrates each *source's* flows onto one ascent, so
// it helps when sources fan out to many destinations (the fan-out is
// endpoint contention anyway); symmetrically D-mod-k concentrates each
// destination's flows onto one descent.  For symmetric patterns both are
// provably equivalent (Sec. VII-B/C) and the advisor reports a tie.
#pragma once

#include <string>

#include "patterns/pattern.hpp"

namespace routing {

enum class SchemeAdvice {
  kEither,        ///< Symmetric or balanced pattern: S/D-mod-k equivalent.
  kPreferSModK,   ///< Destination-dominated: concentrate at the sources.
  kPreferDModK,   ///< Source-dominated: concentrate at the destinations.
};

[[nodiscard]] std::string toString(SchemeAdvice advice);

/// Degree statistics driving the advice.
struct DominanceReport {
  double meanFanOut = 0.0;  ///< Mean distinct destinations per active source.
  double meanFanIn = 0.0;   ///< Mean distinct sources per active destination.
  bool symmetric = false;
  SchemeAdvice advice = SchemeAdvice::kEither;
};

/// Analyzes a pattern per the Sec. VII-C heuristic.  @p bias is the ratio
/// the dominant side must exceed before a preference is issued (ties within
/// the bias report kEither).
[[nodiscard]] DominanceReport adviseScheme(const patterns::Pattern& pattern,
                                           double bias = 1.25);

}  // namespace routing
