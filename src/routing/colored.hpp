// colored.hpp — Pattern-aware "Colored" routing (the upper-bound baseline
// of Figs. 2 and 5, from the authors' companion paper [4]).
//
// Given the communication phases an application will execute, Colored picks
// NCAs so that the *effective* contention — the metric of Sec. IV, where
// flows sharing an endpoint may share links for free because they are
// already serialized at the edge — is minimized:
//
//   * each flow f = (s, d) gets ascent weight  1/fanout_phase(s) and descent
//     weight 1/fanin_phase(d): the rate the flow can sustain anyway given
//     endpoint serialization;
//   * a channel's demand is the sum of the weights of the flows crossing it;
//     demand <= 1 means the channel adds no slowdown beyond the endpoints;
//   * the optimizer minimizes (max channel demand, then sum of squares).
//
// Algorithm: for 2-level XGFTs (the paper's whole evaluation) permutation
// phases are seeded with an *exact* König edge coloring of the
// source-switch x destination-switch multigraph — provably optimal max link
// load ceil(Δ / w₂) — and every phase is then refined by bounded local
// search under the effective-contention objective.  Taller trees use the
// greedy + local-search path directly.
//
// Routes are static per (s, d) pair across phases (hardware routing tables
// do not change mid-run): a pair seen in an earlier phase keeps its route.
// Pairs absent from the pattern fall back to D-mod-k.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "patterns/pattern.hpp"
#include "routing/relabel.hpp"
#include "routing/router.hpp"

namespace routing {

/// Which initial assignment each phase's local search starts from.  kBest
/// tries them all and keeps the winner (the default); the others force one
/// strategy — used by the seeding ablation bench to quantify what the exact
/// König seed buys over pure greedy.
enum class ColoredSeed : std::uint8_t {
  kBest,
  kEdgeColoring,  ///< König edge coloring (2-level trees only).
  kDModK,         ///< Start from the D-mod-k assignment.
  kSModK,         ///< Start from the S-mod-k assignment.
  kGreedy,        ///< No seed: heavy-flows-first greedy placement.
};

struct ColoredOptions {
  std::uint64_t seed = 1;          ///< Tie-breaking / sampling determinism.
  std::uint32_t refinePasses = 3;  ///< Local-search sweeps per phase.
  std::size_t maxCandidates = 64;  ///< NCA candidates examined per flow.
  ColoredSeed seedStrategy = ColoredSeed::kBest;
};

class ColoredRouter final : public Router {
 public:
  ColoredRouter(const Topology& topo, const patterns::PhasedPattern& app,
                ColoredOptions options = {});
  ColoredRouter(const Topology& topo, const patterns::Pattern& pattern,
                ColoredOptions options = {});

  [[nodiscard]] Route route(NodeIndex s, NodeIndex d) const override;
  [[nodiscard]] std::string name() const override { return "colored"; }
  [[nodiscard]] bool isOblivious() const override { return false; }

  /// Worst effective channel demand over all phases after optimization
  /// (>= 1.0 whenever any phase has inter-switch traffic); the optimizer's
  /// own estimate of the residual network contention.
  [[nodiscard]] double estimatedMaxDemand() const { return maxDemand_; }

  /// Number of (s, d) pairs with a dedicated route.
  [[nodiscard]] std::size_t numOptimizedPairs() const {
    return routes_.size();
  }

 private:
  void optimize(const patterns::PhasedPattern& app);

  [[nodiscard]] std::uint64_t key(NodeIndex s, NodeIndex d) const {
    return s * topo_->numHosts() + d;
  }

  ColoredOptions options_;
  std::unordered_map<std::uint64_t, Route> routes_;
  RelabelScheme fallback_;  ///< D-mod-k digits for un-optimized pairs.
  double maxDemand_ = 0.0;
};

/// Convenience factories mirroring the oblivious makeXxx() helpers.
[[nodiscard]] RouterPtr makeColored(const Topology& topo,
                                    const patterns::PhasedPattern& app,
                                    ColoredOptions options = {});
[[nodiscard]] RouterPtr makeColored(const Topology& topo,
                                    const patterns::Pattern& pattern,
                                    ColoredOptions options = {});

}  // namespace routing
