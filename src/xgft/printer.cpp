#include "xgft/printer.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace xgft {
namespace {

std::string labelTemplate(const Params& p, std::uint32_t level) {
  std::ostringstream os;
  os << "<";
  for (std::uint32_t i = p.height(); i >= 1; --i) {
    if (i <= level) {
      os << "W" << i << "[0," << p.w(i) - 1 << "]";
    } else {
      os << "M" << i << "[0," << p.m(i) - 1 << "]";
    }
    if (i > 1) os << ",";
  }
  os << ">";
  return os.str();
}

}  // namespace

void printLevelTable(const Topology& topo, std::ostream& os) {
  const Params& p = topo.params();
  os << summary(topo) << "\n";
  os << std::left << std::setw(6) << "level" << std::setw(12) << "#nodes"
     << std::setw(40) << "label template" << std::setw(12) << "links-down"
     << std::setw(12) << "links-up" << "\n";
  for (std::uint32_t l = 0; l <= p.height(); ++l) {
    const Count down = l == 0 ? 0 : p.numUpLinks(l - 1);
    const Count up = l == p.height() ? 0 : p.numUpLinks(l);
    os << std::left << std::setw(6) << l << std::setw(12)
       << topo.nodesAtLevel(l) << std::setw(40) << labelTemplate(p, l)
       << std::setw(12) << down << std::setw(12) << up << "\n";
  }
}

void printAllLabels(const Topology& topo, std::ostream& os, Count maxNodes) {
  if (topo.numNodes() > maxNodes) {
    throw std::invalid_argument("printAllLabels: tree too large (" +
                                std::to_string(topo.numNodes()) + " nodes)");
  }
  const Params& p = topo.params();
  for (std::uint32_t l = 0; l <= p.height(); ++l) {
    os << "level " << l << (l == 0 ? " (hosts)" : "") << ":\n";
    for (NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      os << "  " << std::setw(4) << idx << "  "
         << labelOf(p, l, idx).toString() << "\n";
    }
  }
}

void printDot(const Topology& topo, std::ostream& os, Count maxNodes) {
  if (topo.numNodes() > maxNodes) {
    throw std::invalid_argument("printDot: tree too large");
  }
  const Params& p = topo.params();
  os << "graph xgft {\n  rankdir=BT;\n";
  for (std::uint32_t l = 0; l <= p.height(); ++l) {
    os << "  { rank=same; ";
    for (NodeIndex idx = 0; idx < topo.nodesAtLevel(l); ++idx) {
      os << "\"L" << l << "_" << idx << "\"; ";
    }
    os << "}\n";
  }
  for (NodeIndex host = 0; host < topo.numHosts(); ++host) {
    os << "  \"L0_" << host << "\" [shape=box,label=\"P" << host << "\"];\n";
  }
  for (LinkId id = 0; id < topo.numLinks(); ++id) {
    const LinkInfo info = topo.linkInfo(id);
    os << "  \"L" << info.level << "_" << info.child << "\" -- \"L"
       << info.level + 1 << "_" << info.parent << "\";\n";
  }
  os << "}\n";
}

std::string summary(const Topology& topo) {
  std::ostringstream os;
  os << topo.params().toString() << ": " << topo.numHosts() << " hosts, "
     << topo.numSwitches() << " switches, " << topo.numLinks() << " links";
  if (topo.params().isKaryNTree()) os << " [k-ary n-tree]";
  if (topo.params().isSlimmed()) os << " [slimmed]";
  return os.str();
}

}  // namespace xgft
