// register.hpp — Self-registration of the built-in topology presets.
//
// The xgft module owns the knowledge of which topology families exist;
// core::topologyRegistry() calls this hook exactly once on first access.
// Explicit paper notation ("XGFT(2; 16,16; 1,10)") bypasses the registry
// through xgft::parseParams; presets cover the named families and the
// paper's instances.
#pragma once

#include "core/registry.hpp"
#include "core/scenario.hpp"

namespace xgft {

void registerBuiltinTopologies(core::Registry<core::TopologyInfo>& registry);

}  // namespace xgft
