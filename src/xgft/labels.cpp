#include "xgft/labels.hpp"

#include <sstream>
#include <stdexcept>

namespace xgft {

std::string Label::toString() const {
  std::ostringstream os;
  os << "<";
  for (std::uint32_t i = height(); i >= 1; --i) {
    os << (i <= level_ ? "W" : "M") << i << "=" << digit(i);
    if (i > 1) os << ",";
  }
  os << ">";
  return os.str();
}

Label labelOf(const Params& p, std::uint32_t level, NodeIndex index) {
  if (level > p.height()) {
    throw std::out_of_range("labelOf: level out of range");
  }
  if (index >= p.nodesAtLevel(level)) {
    throw std::out_of_range("labelOf: node index out of range for level");
  }
  std::vector<std::uint32_t> digits(p.height());
  NodeIndex rest = index;
  for (std::uint32_t i = 1; i <= p.height(); ++i) {
    const std::uint32_t r = Label::radix(p, level, i);
    digits[i - 1] = static_cast<std::uint32_t>(rest % r);
    rest /= r;
  }
  return Label(level, std::move(digits));
}

NodeIndex indexOf(const Params& p, const Label& label) {
  if (label.height() != p.height()) {
    throw std::invalid_argument("indexOf: label height mismatch");
  }
  NodeIndex index = 0;
  for (std::uint32_t i = p.height(); i >= 1; --i) {
    const std::uint32_t r = Label::radix(p, label.level(), i);
    const std::uint32_t d = label.digit(i);
    if (d >= r) {
      throw std::invalid_argument("indexOf: digit " + std::to_string(i) +
                                  " out of range (" + std::to_string(d) +
                                  " >= " + std::to_string(r) + ")");
    }
    index = index * r + d;
  }
  return index;
}

std::uint32_t leafDigit(const Params& p, NodeIndex leaf, std::uint32_t i) {
  NodeIndex rest = leaf;
  for (std::uint32_t j = 1; j < i; ++j) rest /= p.m(j);
  return static_cast<std::uint32_t>(rest % p.m(i));
}

std::vector<std::uint32_t> leafDigits(const Params& p, NodeIndex leaf) {
  std::vector<std::uint32_t> digits(p.height());
  NodeIndex rest = leaf;
  for (std::uint32_t i = 1; i <= p.height(); ++i) {
    digits[i - 1] = static_cast<std::uint32_t>(rest % p.m(i));
    rest /= p.m(i);
  }
  return digits;
}

}  // namespace xgft
