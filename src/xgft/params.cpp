#include "xgft/params.hpp"

#include <sstream>

namespace xgft {

std::string Params::toString() const {
  std::ostringstream os;
  os << "XGFT(" << height() << "; ";
  for (std::uint32_t i = 1; i <= height(); ++i) {
    os << m(i) << (i < height() ? "," : "");
  }
  os << "; ";
  for (std::uint32_t i = 1; i <= height(); ++i) {
    os << w(i) << (i < height() ? "," : "");
  }
  os << ")";
  return os.str();
}

Params karyNTree(std::uint32_t k, std::uint32_t n) {
  if (n == 0 || k == 0) {
    throw std::invalid_argument("karyNTree requires k >= 1 and n >= 1");
  }
  std::vector<std::uint32_t> m(n, k);
  std::vector<std::uint32_t> w(n, k);
  w[0] = 1;
  return Params(std::move(m), std::move(w));
}

Params slimmedKaryNTree(std::uint32_t k, std::uint32_t n,
                        const std::vector<std::uint32_t>& wUpper) {
  if (wUpper.size() != n - 1) {
    throw std::invalid_argument(
        "slimmedKaryNTree: need exactly n-1 upper-level parent counts");
  }
  std::vector<std::uint32_t> m(n, k);
  std::vector<std::uint32_t> w(n, 1);
  for (std::uint32_t i = 2; i <= n; ++i) w[i - 1] = wUpper[i - 2];
  return Params(std::move(m), std::move(w));
}

Params xgft2(std::uint32_t m1, std::uint32_t m2, std::uint32_t w2) {
  return Params({m1, m2}, {1, w2});
}

}  // namespace xgft
