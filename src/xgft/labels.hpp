// labels.hpp — Table-I mixed-radix labeling of XGFT nodes.
//
// Every node in an XGFT is identified by a tuple of h digits (Table I of the
// paper).  A node at level l has label
//     < M_h, ..., M_{l+1}, W_l, ..., W_1 >
// where digit position i (1-based, position 1 least significant) has radix
//   m_i   for positions i > l   (which child subtree the node sits above), and
//   w_i   for positions i <= l  (which of the w_i parallel parents was taken
//                                at each ascent inside the node's own column).
//
// We linearize these tuples into a per-level node index with position 1 as
// the least significant digit, so leaf labels of a k-ary n-tree are simply
// the base-k expansion of the processor id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xgft/params.hpp"

namespace xgft {

/// Per-level node index (dense, in [0, params.nodesAtLevel(level))).
using NodeIndex = std::uint64_t;

/// A decoded node label: digits()[i-1] is the value of digit position i.
/// Digit positions 1..level hold W-digits, positions level+1..h hold
/// M-digits, matching Table I.
class Label {
 public:
  Label(std::uint32_t level, std::vector<std::uint32_t> digits)
      : level_(level), digits_(std::move(digits)) {}

  [[nodiscard]] std::uint32_t level() const { return level_; }
  [[nodiscard]] std::uint32_t height() const {
    return static_cast<std::uint32_t>(digits_.size());
  }

  /// Digit at position i (1-based, i in [1, h]).
  [[nodiscard]] std::uint32_t digit(std::uint32_t i) const {
    return digits_.at(i - 1);
  }
  [[nodiscard]] const std::vector<std::uint32_t>& digits() const {
    return digits_;
  }

  /// Radix of digit position i for a node at this label's level.
  [[nodiscard]] static std::uint32_t radix(const Params& p, std::uint32_t level,
                                           std::uint32_t i) {
    return i <= level ? p.w(i) : p.m(i);
  }

  /// "<M3,M2,W1> = <1,0,2>"-style rendering (most significant first),
  /// matching the paper's Table I notation.
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Label&, const Label&) = default;

 private:
  std::uint32_t level_;
  std::vector<std::uint32_t> digits_;
};

/// Decodes the dense per-level index of a node at @p level into its Table-I
/// label digits.
[[nodiscard]] Label labelOf(const Params& p, std::uint32_t level,
                            NodeIndex index);

/// Encodes Table-I label digits back into the dense per-level node index.
/// Throws std::invalid_argument if any digit is out of range for its radix.
[[nodiscard]] NodeIndex indexOf(const Params& p, const Label& label);

/// Digit position i (1-based) of leaf @p leaf, i.e. M_i in the leaf's label.
/// Equivalent to labelOf(p, 0, leaf).digit(i) but without materializing the
/// whole label; routing code calls this in hot loops.
[[nodiscard]] std::uint32_t leafDigit(const Params& p, NodeIndex leaf,
                                      std::uint32_t i);

/// All digits of leaf @p leaf at once (M_1 at digits[0]).
[[nodiscard]] std::vector<std::uint32_t> leafDigits(const Params& p,
                                                    NodeIndex leaf);

}  // namespace xgft
