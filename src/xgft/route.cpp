#include "xgft/route.hpp"

#include <sstream>
#include <stdexcept>

namespace xgft {

NodeIndex ncaOf(const Topology& topo, NodeIndex s, const Route& r) {
  const std::uint32_t L = r.ncaLevel();
  if (L > topo.height()) {
    throw std::out_of_range("ncaOf: route longer than tree height");
  }
  NodeIndex node = s;
  for (std::uint32_t i = 0; i < L; ++i) {
    node = topo.parentIndex(i, node, r.up[i]);
  }
  return node;
}

Route routeViaNca(const Topology& topo, NodeIndex s, NodeIndex d,
                  Count choice) {
  const std::uint32_t L = topo.ncaLevel(s, d);
  if (choice >= topo.numNcas(s, d)) {
    throw std::out_of_range("routeViaNca: NCA choice out of range");
  }
  Route r;
  r.up.resize(L);
  Count rest = choice;
  for (std::uint32_t i = 0; i < L; ++i) {
    const std::uint32_t wi = topo.params().w(i + 1);
    r.up[i] = static_cast<std::uint32_t>(rest % wi);
    rest /= wi;
  }
  return r;
}

std::vector<Channel> channelsOf(const Topology& topo, NodeIndex s, NodeIndex d,
                                const Route& r) {
  const std::uint32_t L = r.ncaLevel();
  std::vector<Channel> channels;
  channels.reserve(2 * static_cast<std::size_t>(L));
  // Ascent.
  NodeIndex node = s;
  for (std::uint32_t i = 0; i < L; ++i) {
    channels.push_back(Channel{topo.upLink(i, node, r.up[i]), true});
    node = topo.parentIndex(i, node, r.up[i]);
  }
  // Descent: at each level j the down-port is the destination's M_j digit.
  for (std::uint32_t j = L; j >= 1; --j) {
    const std::uint32_t port = topo.digit(0, d, j);
    channels.push_back(Channel{topo.downLink(j, node, port), false});
    node = topo.childIndex(j, node, port);
  }
  return channels;
}

std::vector<Hop> hopsOf(const Topology& topo, NodeIndex s, NodeIndex d,
                        const Route& r) {
  const std::uint32_t L = r.ncaLevel();
  std::vector<Hop> hops;
  if (L == 0) return hops;
  hops.reserve(2 * static_cast<std::size_t>(L));
  NodeIndex node = s;
  for (std::uint32_t i = 0; i < L; ++i) {
    // Host out-ports start at 0; switch up-ports start at m_l.
    const std::uint32_t outPort = topo.upPortBase(i) + r.up[i];
    hops.push_back(Hop{i, node, outPort});
    node = topo.parentIndex(i, node, r.up[i]);
  }
  for (std::uint32_t j = L; j >= 1; --j) {
    const std::uint32_t port = topo.digit(0, d, j);
    hops.push_back(Hop{j, node, port});
    node = topo.childIndex(j, node, port);
  }
  return hops;
}

bool validateRoute(const Topology& topo, NodeIndex s, NodeIndex d,
                   const Route& r, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "route " << s << " -> " << d << ": " << why;
      *error = os.str();
    }
    return false;
  };
  const std::uint32_t expected = topo.ncaLevel(s, d);
  if (r.ncaLevel() != expected) {
    return fail("length " + std::to_string(r.ncaLevel()) +
                " != NCA level " + std::to_string(expected));
  }
  for (std::uint32_t i = 0; i < r.ncaLevel(); ++i) {
    if (r.up[i] >= topo.params().w(i + 1)) {
      return fail("up-port " + std::to_string(r.up[i]) + " at level " +
                  std::to_string(i) + " out of range");
    }
  }
  // Walk the full path; the descent is forced, so this checks that the
  // ascent indeed reaches a common ancestor.
  NodeIndex node = s;
  for (std::uint32_t i = 0; i < r.ncaLevel(); ++i) {
    node = topo.parentIndex(i, node, r.up[i]);
  }
  for (std::uint32_t j = r.ncaLevel(); j >= 1; --j) {
    node = topo.childIndex(j, node, topo.digit(0, d, j));
  }
  if (node != d) {
    return fail("walk ended at leaf " + std::to_string(node));
  }
  return true;
}

}  // namespace xgft
