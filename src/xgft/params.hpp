// params.hpp — Parameter vectors describing an Extended Generalized Fat Tree.
//
// An XGFT(h; m_1..m_h; w_1..w_h) of height h has N = prod_i m_i leaf
// (processor) nodes at level 0 and h levels of switches above them.  Every
// non-leaf node at level i has m_i children; every non-root node at level i
// has w_{i+1} parents (Öhring et al., "On generalized fat trees", IPPS'95;
// Sec. II of the reproduced paper).
//
// Convention used throughout this library: the paper's 1-based parameter
// indices are kept.  m(i) and w(i) are valid for i in [1, h].  Levels run
// from 0 (leaves/hosts) to h (roots).
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace xgft {

/// Number of digits/levels fits comfortably in 32 bits everywhere we care.
using Count = std::uint64_t;

/// Parameter set of an XGFT(h; m_1..m_h; w_1..w_h).
///
/// Invariants (checked on construction):
///  * h >= 1,
///  * m_i >= 1 and w_i >= 1 for all i,
///  * total leaf count and per-level node counts fit in 64 bits.
class Params {
 public:
  /// Builds an XGFT parameter set from the child-counts @p m (m_1..m_h) and
  /// parent-counts @p w (w_1..w_h).  Both vectors must have the same,
  /// non-zero length h.
  Params(std::vector<std::uint32_t> m, std::vector<std::uint32_t> w)
      : m_(std::move(m)), w_(std::move(w)) {
    if (m_.empty() || m_.size() != w_.size()) {
      throw std::invalid_argument(
          "XGFT parameters require |m| == |w| >= 1 (got |m|=" +
          std::to_string(m_.size()) + ", |w|=" + std::to_string(w_.size()) +
          ")");
    }
    for (std::size_t i = 0; i < m_.size(); ++i) {
      if (m_[i] == 0 || w_[i] == 0) {
        throw std::invalid_argument("XGFT parameters must all be >= 1");
      }
    }
    // Guard against 64-bit overflow of node counts: the largest level-l node
    // count is bounded by prod(max(m_i, w_i)).
    Count extent = 1;
    for (std::size_t i = 0; i < m_.size(); ++i) {
      const Count big = std::max(m_[i], w_[i]);
      if (extent > (Count{1} << 62) / big) {
        throw std::invalid_argument("XGFT too large: node counts overflow");
      }
      extent *= big;
    }
  }

  /// Tree height h (number of switch levels).
  [[nodiscard]] std::uint32_t height() const {
    return static_cast<std::uint32_t>(m_.size());
  }

  /// Children per node at level i (1-based, i in [1, h]).
  [[nodiscard]] std::uint32_t m(std::uint32_t i) const { return m_.at(i - 1); }

  /// Parents per node at level i-1 (1-based, i in [1, h]).
  [[nodiscard]] std::uint32_t w(std::uint32_t i) const { return w_.at(i - 1); }

  [[nodiscard]] std::span<const std::uint32_t> mAll() const { return m_; }
  [[nodiscard]] std::span<const std::uint32_t> wAll() const { return w_; }

  /// N = prod_i m_i, the number of leaf (processor) nodes.
  [[nodiscard]] Count numLeaves() const {
    return std::accumulate(m_.begin(), m_.end(), Count{1},
                           [](Count a, std::uint32_t b) { return a * b; });
  }

  /// Number of nodes at level l: prod_{j>l} m_j * prod_{j<=l} w_j.
  /// Level 0 gives numLeaves(); level h gives the number of root switches.
  [[nodiscard]] Count nodesAtLevel(std::uint32_t l) const {
    if (l > height()) {
      throw std::out_of_range("nodesAtLevel: level " + std::to_string(l) +
                              " > height " + std::to_string(height()));
    }
    Count n = 1;
    for (std::uint32_t j = l + 1; j <= height(); ++j) n *= m(j);
    for (std::uint32_t j = 1; j <= l; ++j) n *= w(j);
    return n;
  }

  /// Inner switch count per Eq. (1) of the paper:
  ///   I = sum_{i=1..h} ( prod_{j=i+1..h} m_j * prod_{j=1..i} w_j ).
  [[nodiscard]] Count numInnerSwitches() const {
    Count total = 0;
    for (std::uint32_t i = 1; i <= height(); ++i) total += nodesAtLevel(i);
    return total;
  }

  /// Number of (bidirectional) links between level l and level l+1, i.e. the
  /// up-links of level l:  nodesAtLevel(l) * w_{l+1}.  Valid for l in [0, h).
  [[nodiscard]] Count numUpLinks(std::uint32_t l) const {
    if (l >= height()) {
      throw std::out_of_range("numUpLinks: no links above level " +
                              std::to_string(l));
    }
    return nodesAtLevel(l) * w(l + 1);
  }

  /// Total number of bidirectional links in the tree.
  [[nodiscard]] Count numLinks() const {
    Count total = 0;
    for (std::uint32_t l = 0; l < height(); ++l) total += numUpLinks(l);
    return total;
  }

  /// True iff this is a k-ary n-tree: m_i == k for all i, w_1 == 1 and
  /// w_i == k for i >= 2.
  [[nodiscard]] bool isKaryNTree() const {
    const std::uint32_t k = m_[0];
    if (w_[0] != 1) return false;
    for (std::size_t i = 0; i < m_.size(); ++i) {
      if (m_[i] != k) return false;
      if (i >= 1 && w_[i] != k) return false;
    }
    return true;
  }

  /// True iff some w_i (i >= 2) is smaller than m_i, i.e. the upper levels
  /// have been thinned out relative to a full fat tree ("slimmed").
  [[nodiscard]] bool isSlimmed() const {
    for (std::size_t i = 1; i < m_.size(); ++i) {
      if (w_[i] < m_[i]) return true;
    }
    return false;
  }

  /// "XGFT(h; m_1,...,m_h; w_1,...,w_h)" — the paper's notation.
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Params&, const Params&) = default;

 private:
  std::vector<std::uint32_t> m_;
  std::vector<std::uint32_t> w_;
};

/// Factory: the k-ary n-tree XGFT(n; k,...,k; 1,k,...,k) (Sec. II).
[[nodiscard]] Params karyNTree(std::uint32_t k, std::uint32_t n);

/// Factory: a slimmed k-ary n-tree, i.e. a k-ary n-tree whose parent counts
/// at levels 2..n are replaced by the given values (each <= k for a genuine
/// slimming, but any >= 1 is accepted).
/// @p wUpper has n-1 entries: w_2, ..., w_n.
[[nodiscard]] Params slimmedKaryNTree(std::uint32_t k, std::uint32_t n,
                                      const std::vector<std::uint32_t>& wUpper);

/// Factory: the two-level trees used throughout the paper's evaluation,
/// XGFT(2; m1, m2; 1, w2).  With m1 = m2 = 16 and w2 = 16 this is the full
/// 16-ary 2-tree; lowering w2 slims it progressively (Figs. 2 and 5).
[[nodiscard]] Params xgft2(std::uint32_t m1, std::uint32_t m2,
                           std::uint32_t w2);

}  // namespace xgft
