// route.hpp — Minimal up/down routes in an XGFT (Sec. V of the paper).
//
// A minimal deadlock-free path between two leaves ascends to one of their
// Nearest Common Ancestors and descends along the unique downward path to
// the destination.  The only freedom is the ascent: at each level i the
// message picks one of w_{i+1} parents.  A Route therefore stores just the
// ascending port choices; everything else (the descent, the links used, the
// NCA reached) is derived.
//
// A route r = <r_0, ..., r_{L-1}> with r_i in [0, w_{i+1}) reaches the NCA
// whose W digits are exactly (r_0, ..., r_{L-1}); the route <-> NCA
// correspondence is a bijection for a fixed (s, d) pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xgft/topology.hpp"

namespace xgft {

/// Ascending parent-port choices; up[i] is taken at the level-i node.
/// Empty route means s == d (delivered locally, no network traversal).
struct Route {
  std::vector<std::uint32_t> up;

  [[nodiscard]] std::uint32_t ncaLevel() const {
    return static_cast<std::uint32_t>(up.size());
  }
  friend bool operator==(const Route&, const Route&) = default;
};

/// One traversal step for simulators doing source routing: the node being
/// exited and the output port taken (host ports / switch port numbering as
/// defined in Topology).
struct Hop {
  std::uint32_t level = 0;
  NodeIndex node = 0;
  std::uint32_t outPort = 0;
};

/// Index of the level-L NCA that route @p r reaches from leaf @p s.
/// L = r.ncaLevel() and must not exceed the tree height.
[[nodiscard]] NodeIndex ncaOf(const Topology& topo, NodeIndex s,
                              const Route& r);

/// Builds the route from @p s to @p d that ascends to NCA number @p choice,
/// where @p choice enumerates the numNcas(s, d) available ancestors in
/// mixed-radix (w_1, ..., w_L) order: choice == 0 picks parent 0 at every
/// level; successive choices vary the lowest-level parent fastest.
[[nodiscard]] Route routeViaNca(const Topology& topo, NodeIndex s, NodeIndex d,
                                Count choice);

/// The unidirectional channels traversed by route @p r from @p s to @p d:
/// first the ascending channels (in order), then the descending ones.
[[nodiscard]] std::vector<Channel> channelsOf(const Topology& topo,
                                              NodeIndex s, NodeIndex d,
                                              const Route& r);

/// The full hop-by-hop traversal (source host first, then every switch with
/// the output port taken).  Empty when s == d.
[[nodiscard]] std::vector<Hop> hopsOf(const Topology& topo, NodeIndex s,
                                      NodeIndex d, const Route& r);

/// Checks that @p r is a well-formed minimal up/down route for (s, d):
/// correct length (== ncaLevel(s, d)), each port in range, and the walk
/// up-then-down lands exactly on @p d.  On failure returns false and, if
/// @p error is non-null, stores a human-readable reason.
[[nodiscard]] bool validateRoute(const Topology& topo, NodeIndex s,
                                 NodeIndex d, const Route& r,
                                 std::string* error = nullptr);

}  // namespace xgft
