#include "xgft/io.hpp"

#include <cctype>
#include <optional>
#include <stdexcept>
#include <vector>

namespace xgft {
namespace {

/// Minimal recursive-descent scanner over the notation.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      throw std::invalid_argument("parseParams: expected '" +
                                  std::string(1, c) + "' at position " +
                                  std::to_string(pos_) + " in \"" + text_ +
                                  "\"");
    }
  }

  bool consumeWord(const std::string& word) {
    skipSpace();
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::uint32_t number() {
    skipSpace();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      throw std::invalid_argument("parseParams: expected a number at position " +
                                  std::to_string(pos_) + " in \"" + text_ +
                                  "\"");
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      if (value > 0xffffffffull) {
        throw std::invalid_argument("parseParams: number too large");
      }
      ++pos_;
    }
    return static_cast<std::uint32_t>(value);
  }

  std::vector<std::uint32_t> numberList() {
    std::vector<std::uint32_t> values{number()};
    while (consume(',')) values.push_back(number());
    return values;
  }

  void expectEnd() {
    skipSpace();
    if (pos_ != text_.size()) {
      throw std::invalid_argument("parseParams: trailing characters at position " +
                                  std::to_string(pos_) + " in \"" + text_ +
                                  "\"");
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Params parseParams(const std::string& text) {
  Scanner scan(text);
  if (scan.consumeWord("kary")) {
    scan.expect('(');
    const std::uint32_t k = scan.number();
    scan.expect(',');
    const std::uint32_t n = scan.number();
    scan.expect(')');
    scan.expectEnd();
    return karyNTree(k, n);
  }
  if (!scan.consumeWord("XGFT") && !scan.consumeWord("xgft")) {
    throw std::invalid_argument(
        "parseParams: expected 'XGFT(' or 'kary(' in \"" + text + "\"");
  }
  scan.expect('(');
  const std::uint32_t h = scan.number();
  scan.expect(';');
  const std::vector<std::uint32_t> m = scan.numberList();
  scan.expect(';');
  const std::vector<std::uint32_t> w = scan.numberList();
  scan.expect(')');
  scan.expectEnd();
  if (m.size() != h || w.size() != h) {
    throw std::invalid_argument(
        "parseParams: height " + std::to_string(h) + " does not match " +
        std::to_string(m.size()) + " child and " + std::to_string(w.size()) +
        " parent counts");
  }
  return Params(m, w);
}

std::optional<Params> tryParseParams(const std::string& text) {
  try {
    return parseParams(text);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace xgft
