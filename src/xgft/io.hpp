// io.hpp — Textual (de)serialization of topology descriptions.
//
// The paper's notation "XGFT(h; m1,...,mh; w1,...,wh)" doubles as our file
// format: Params::toString() emits it and parseParams() reads it back, so
// experiment scripts, the CLI example and test fixtures can exchange
// topologies as plain strings (Venus used a topology file in the same
// spirit; Sec. VI-B).
#pragma once

#include <optional>
#include <string>

#include "xgft/params.hpp"

namespace xgft {

/// Parses the paper notation, e.g. "XGFT(2; 16,16; 1,10)".  Whitespace is
/// flexible; the shorthand "kary(k, n)" for k-ary n-trees is also accepted.
/// Throws std::invalid_argument with a position hint on malformed input.
[[nodiscard]] Params parseParams(const std::string& text);

/// Non-throwing variant: nullopt on malformed input.
[[nodiscard]] std::optional<Params> tryParseParams(const std::string& text);

}  // namespace xgft
