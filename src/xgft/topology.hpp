// topology.hpp — Concrete XGFT topology: node numbering, port-level
// adjacency, link identification and Nearest-Common-Ancestor algebra.
//
// The Topology class turns a Params description into an addressable network:
//
//  * Nodes.  Each node is addressed by (level, index) with a dense per-level
//    index; a flattened global id (hosts first, then switches level by level)
//    is provided for simulators that want flat arrays.
//
//  * Ports.  A switch at level l has m_l down-ports numbered [0, m_l) and
//    w_{l+1} up-ports numbered [m_l, m_l + w_{l+1}).  Down-port c of a
//    level-l switch leads to the child whose digit M_l equals c; up-port
//    m_l + p leads to parent number p (the child's digit W_{l+1} becomes p).
//    Hosts (level 0) have w_1 up-ports numbered [0, w_1).
//
//  * Links.  The bidirectional wire between a level-l node and one of its
//    parents is identified by LinkId; Channel = (LinkId, direction) names one
//    of its two unidirectional halves.  Analysis code accumulates loads per
//    Channel; the simulator maps Channels to queues.
#pragma once

#include <cstdint>
#include <vector>

#include "xgft/labels.hpp"
#include "xgft/params.hpp"

namespace xgft {

/// Dense identifier of a bidirectional link (wire) in the tree.
using LinkId = std::uint64_t;

/// Flattened global node id (hosts first, then switches level by level).
using GlobalNodeId = std::uint64_t;

/// One unidirectional half of a link.
struct Channel {
  LinkId link = 0;
  bool up = true;  ///< true: child -> parent direction.

  friend bool operator==(const Channel&, const Channel&) = default;
};

/// A (level, per-level index) node address.
struct NodeAddr {
  std::uint32_t level = 0;
  NodeIndex index = 0;

  friend bool operator==(const NodeAddr&, const NodeAddr&) = default;
};

/// Endpoints and placement of a link: the child side sits at `level`, the
/// parent side at `level + 1`; `parentPort` is the child's up-port number in
/// [0, w_{level+1}) and `childPort` the parent's down-port (the child's
/// M_{level+1} digit).
struct LinkInfo {
  std::uint32_t level = 0;  ///< Level of the lower (child) endpoint.
  NodeIndex child = 0;
  NodeIndex parent = 0;
  std::uint32_t parentPort = 0;  ///< Which of the child's parents.
  std::uint32_t childPort = 0;   ///< Which of the parent's children.
};

/// Concrete XGFT topology with precomputed strides for O(h) digit algebra.
class Topology {
 public:
  explicit Topology(Params params);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::uint32_t height() const { return params_.height(); }
  [[nodiscard]] Count numHosts() const { return nodesAt_[0]; }
  [[nodiscard]] Count nodesAtLevel(std::uint32_t l) const {
    return nodesAt_.at(l);
  }
  [[nodiscard]] Count numSwitches() const { return numSwitches_; }
  [[nodiscard]] Count numNodes() const { return numHosts() + numSwitches(); }
  [[nodiscard]] Count numLinks() const { return numLinks_; }

  // --- digit algebra -------------------------------------------------------

  /// Digit at position i (1-based) of the level-l node with index @p idx.
  [[nodiscard]] std::uint32_t digit(std::uint32_t level, NodeIndex idx,
                                    std::uint32_t i) const;

  /// Radix of digit position i at level l (w_i below/at the level, m_i above).
  [[nodiscard]] std::uint32_t radix(std::uint32_t level,
                                    std::uint32_t i) const {
    return i <= level ? params_.w(i) : params_.m(i);
  }

  // --- adjacency -----------------------------------------------------------

  /// Index (at level l+1) of parent number @p port of the level-l node @p idx.
  /// @p port must be in [0, w_{l+1}).
  [[nodiscard]] NodeIndex parentIndex(std::uint32_t level, NodeIndex idx,
                                      std::uint32_t port) const;

  /// Index (at level l-1) of the child of level-l node @p idx reached through
  /// down-port @p childPort (the child's M_l digit).  @p childPort in [0,m_l).
  [[nodiscard]] NodeIndex childIndex(std::uint32_t level, NodeIndex idx,
                                     std::uint32_t childPort) const;

  /// Up-port (i.e. W_{l} digit) by which the level-(l-1) node @p child hangs
  /// from its level-l parent: recovered from the child's own W_l... note the
  /// W digit lives on the *parent* label; this returns the down-port on the
  /// parent side instead: the child's M_l digit.
  [[nodiscard]] std::uint32_t downPortOf(std::uint32_t parentLevel,
                                         NodeIndex child) const {
    return digit(parentLevel - 1, child, parentLevel);
  }

  // --- link identification ---------------------------------------------------

  /// LinkId of the wire from level-l node @p child up to its parent number
  /// @p port.
  [[nodiscard]] LinkId upLink(std::uint32_t level, NodeIndex child,
                              std::uint32_t port) const;

  /// LinkId of the wire from level-l node @p parent down through its
  /// down-port @p childPort; identical wire as the child's corresponding
  /// up-link.
  [[nodiscard]] LinkId downLink(std::uint32_t level, NodeIndex parent,
                                std::uint32_t childPort) const;

  /// Decodes a LinkId back into its endpoints.
  [[nodiscard]] LinkInfo linkInfo(LinkId id) const;

  // --- NCA algebra -----------------------------------------------------------

  /// Level of the nearest common ancestors of two leaves: the highest digit
  /// position at which their labels differ (0 if s == d).
  [[nodiscard]] std::uint32_t ncaLevel(NodeIndex s, NodeIndex d) const;

  /// Number of distinct NCAs available to the pair (s, d):
  /// prod_{j=1..ncaLevel} w_j.
  [[nodiscard]] Count numNcas(NodeIndex s, NodeIndex d) const;

  // --- global ids ------------------------------------------------------------

  [[nodiscard]] GlobalNodeId globalId(std::uint32_t level,
                                      NodeIndex idx) const {
    return globalOffset_.at(level) + idx;
  }
  [[nodiscard]] NodeAddr addrOf(GlobalNodeId id) const;

  /// Number of ports of the node at @p level: hosts have w_1 ports; a level-l
  /// switch has m_l + w_{l+1} ports (w_{h+1} taken as 0 for roots).
  [[nodiscard]] std::uint32_t numPorts(std::uint32_t level) const;

  /// First up-port number of a node at @p level (0 for hosts, m_l for
  /// switches).
  [[nodiscard]] std::uint32_t upPortBase(std::uint32_t level) const {
    return level == 0 ? 0u : params_.m(level);
  }

 private:
  Params params_;
  std::vector<Count> nodesAt_;       ///< nodesAt_[l], l in [0, h].
  std::vector<Count> globalOffset_;  ///< globalOffset_[l], l in [0, h].
  std::vector<LinkId> upLinkBase_;   ///< upLinkBase_[l], l in [0, h).
  Count numSwitches_ = 0;
  Count numLinks_ = 0;
};

}  // namespace xgft
