#include "xgft/register.hpp"

#include "xgft/params.hpp"

namespace xgft {

namespace {

using core::SpecName;
using core::TopologyInfo;

void add(core::Registry<TopologyInfo>& registry, std::string name,
         std::string usage, std::string summary,
         std::function<Params(const SpecName&)> make) {
  TopologyInfo info;
  info.usage = std::move(usage);
  info.summary = std::move(summary);
  info.make = [name, make = std::move(make)](
                  const std::vector<std::string>& args) {
    return make(core::joinSpec(name, args));
  };
  registry.add(std::move(name), std::move(info));
}

}  // namespace

void registerBuiltinTopologies(core::Registry<core::TopologyInfo>& registry) {
  add(registry, "xgft2", "xgft2:M1:M2:W2",
      "two-level XGFT(2; M1,M2; 1,W2) — the paper's slimmable family",
      [](const SpecName& spec) {
        spec.requireArity(3);
        return xgft2(spec.argU32(0), spec.argU32(1), spec.argU32(2));
      });
  add(registry, "xgft3", "xgft3:M1:M2:M3:W1:W2:W3",
      "three-level XGFT(3; M1,M2,M3; W1,W2,W3) — the scale-out tier "
      "(xgft3:16:16:16:1:8:8 is 4096 hosts)",
      [](const SpecName& spec) {
        spec.requireArity(6);
        return Params({spec.argU32(0), spec.argU32(1), spec.argU32(2)},
                      {spec.argU32(3), spec.argU32(4), spec.argU32(5)});
      });
  add(registry, "kary", "kary:K:N", "k-ary n-tree (full bisection)",
      [](const SpecName& spec) {
        spec.requireArity(2);
        return karyNTree(spec.argU32(0), spec.argU32(1));
      });
  add(registry, "paper-full", "paper-full",
      "the paper's full tree XGFT(2; 16,16; 1,16), 256 hosts",
      [](const SpecName& spec) {
        spec.requireArity(0);
        return xgft2(16, 16, 16);
      });
  add(registry, "paper-slim", "paper-slim",
      "the paper's slimmed tree XGFT(2; 16,16; 1,10), 256 hosts",
      [](const SpecName& spec) {
        spec.requireArity(0);
        return xgft2(16, 16, 10);
      });
}

}  // namespace xgft
