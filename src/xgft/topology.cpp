#include "xgft/topology.hpp"

#include <stdexcept>

namespace xgft {

Topology::Topology(Params params) : params_(std::move(params)) {
  const std::uint32_t h = params_.height();
  nodesAt_.resize(h + 1);
  globalOffset_.resize(h + 1);
  upLinkBase_.resize(h);
  for (std::uint32_t l = 0; l <= h; ++l) {
    nodesAt_[l] = params_.nodesAtLevel(l);
  }
  globalOffset_[0] = 0;
  for (std::uint32_t l = 1; l <= h; ++l) {
    globalOffset_[l] = globalOffset_[l - 1] + nodesAt_[l - 1];
  }
  numSwitches_ = 0;
  for (std::uint32_t l = 1; l <= h; ++l) numSwitches_ += nodesAt_[l];
  LinkId base = 0;
  for (std::uint32_t l = 0; l < h; ++l) {
    upLinkBase_[l] = base;
    base += nodesAt_[l] * params_.w(l + 1);
  }
  numLinks_ = base;
}

std::uint32_t Topology::digit(std::uint32_t level, NodeIndex idx,
                              std::uint32_t i) const {
  NodeIndex rest = idx;
  for (std::uint32_t j = 1; j < i; ++j) rest /= radix(level, j);
  return static_cast<std::uint32_t>(rest % radix(level, i));
}

NodeIndex Topology::parentIndex(std::uint32_t level, NodeIndex idx,
                                std::uint32_t port) const {
  const std::uint32_t h = params_.height();
  if (level >= h) throw std::out_of_range("parentIndex: node has no parents");
  if (port >= params_.w(level + 1)) {
    throw std::out_of_range("parentIndex: parent port out of range");
  }
  // Decode with level-l radices, substitute digit (level+1) <- port, encode
  // with level-(l+1) radices.  Digits 1..level keep their W radices, digits
  // level+2..h keep their M radices, so only the strides around position
  // level+1 change; we re-encode from scratch for clarity (h is tiny).
  NodeIndex rest = idx;
  NodeIndex result = 0;
  Count stride = 1;
  for (std::uint32_t i = 1; i <= h; ++i) {
    const std::uint32_t rOld = radix(level, i);
    const std::uint32_t dOld = static_cast<std::uint32_t>(rest % rOld);
    rest /= rOld;
    const std::uint32_t rNew = radix(level + 1, i);
    const std::uint32_t dNew = (i == level + 1) ? port : dOld;
    result += static_cast<Count>(dNew) * stride;
    stride *= rNew;
  }
  return result;
}

NodeIndex Topology::childIndex(std::uint32_t level, NodeIndex idx,
                               std::uint32_t childPort) const {
  if (level == 0) throw std::out_of_range("childIndex: hosts have no children");
  if (childPort >= params_.m(level)) {
    throw std::out_of_range("childIndex: down port out of range");
  }
  const std::uint32_t h = params_.height();
  NodeIndex rest = idx;
  NodeIndex result = 0;
  Count stride = 1;
  for (std::uint32_t i = 1; i <= h; ++i) {
    const std::uint32_t rOld = radix(level, i);
    const std::uint32_t dOld = static_cast<std::uint32_t>(rest % rOld);
    rest /= rOld;
    const std::uint32_t rNew = radix(level - 1, i);
    const std::uint32_t dNew = (i == level) ? childPort : dOld;
    result += static_cast<Count>(dNew) * stride;
    stride *= rNew;
  }
  return result;
}

LinkId Topology::upLink(std::uint32_t level, NodeIndex child,
                        std::uint32_t port) const {
  if (level >= params_.height()) {
    throw std::out_of_range("upLink: no links above the root level");
  }
  if (port >= params_.w(level + 1)) {
    throw std::out_of_range("upLink: port out of range");
  }
  return upLinkBase_[level] + child * params_.w(level + 1) + port;
}

LinkId Topology::downLink(std::uint32_t level, NodeIndex parent,
                          std::uint32_t childPort) const {
  if (level == 0) throw std::out_of_range("downLink: hosts have no children");
  const NodeIndex child = childIndex(level, parent, childPort);
  // Which of the child's up-ports leads back to this parent: the parent's
  // own W_level digit.
  const std::uint32_t port = digit(level, parent, level);
  return upLink(level - 1, child, port);
}

LinkInfo Topology::linkInfo(LinkId id) const {
  const std::uint32_t h = params_.height();
  for (std::uint32_t l = 0; l < h; ++l) {
    const LinkId next =
        (l + 1 < h) ? upLinkBase_[l + 1] : numLinks_;
    if (id < next) {
      const LinkId local = id - upLinkBase_[l];
      LinkInfo info;
      info.level = l;
      info.child = local / params_.w(l + 1);
      info.parentPort = static_cast<std::uint32_t>(local % params_.w(l + 1));
      info.parent = parentIndex(l, info.child, info.parentPort);
      info.childPort = digit(l, info.child, l + 1);
      return info;
    }
  }
  throw std::out_of_range("linkInfo: link id out of range");
}

std::uint32_t Topology::ncaLevel(NodeIndex s, NodeIndex d) const {
  std::uint32_t level = 0;
  NodeIndex rs = s;
  NodeIndex rd = d;
  for (std::uint32_t i = 1; i <= params_.height(); ++i) {
    const std::uint32_t mi = params_.m(i);
    if (rs % mi != rd % mi) level = i;
    rs /= mi;
    rd /= mi;
  }
  return level;
}

Count Topology::numNcas(NodeIndex s, NodeIndex d) const {
  const std::uint32_t level = ncaLevel(s, d);
  Count n = 1;
  for (std::uint32_t j = 1; j <= level; ++j) n *= params_.w(j);
  return n;
}

NodeAddr Topology::addrOf(GlobalNodeId id) const {
  for (std::uint32_t l = 0; l <= params_.height(); ++l) {
    if (id < globalOffset_[l] + nodesAt_[l]) {
      return NodeAddr{l, id - globalOffset_[l]};
    }
  }
  throw std::out_of_range("addrOf: global node id out of range");
}

std::uint32_t Topology::numPorts(std::uint32_t level) const {
  const std::uint32_t h = params_.height();
  if (level == 0) return params_.w(1);
  const std::uint32_t up = level < h ? params_.w(level + 1) : 0;
  return params_.m(level) + up;
}

}  // namespace xgft
