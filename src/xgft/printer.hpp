// printer.hpp — Human-readable renderings of XGFT topologies.
//
// Used by the Fig. 1 / Table I bench harnesses and the examples: a per-level
// summary table matching Table I of the paper (node counts, label shapes,
// link counts), a full label listing for small trees, and a Graphviz DOT
// export for visual inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "xgft/topology.hpp"

namespace xgft {

/// Writes the Table-I style per-level summary: for every level, the node
/// count, the label template (<M_h,...,W_1> with radices), and up/down link
/// counts.
void printLevelTable(const Topology& topo, std::ostream& os);

/// Writes every node label of the tree, level by level.  Only sensible for
/// small trees (guarded: throws if the tree has more than @p maxNodes nodes).
void printAllLabels(const Topology& topo, std::ostream& os,
                    Count maxNodes = 4096);

/// Graphviz DOT rendering (hosts as boxes, switches as ellipses, one edge
/// per bidirectional link).  Only sensible for small trees.
void printDot(const Topology& topo, std::ostream& os, Count maxNodes = 4096);

/// One-line description, e.g. "XGFT(2; 16,16; 1,10): 256 hosts, 26 switches,
/// 416 links".
[[nodiscard]] std::string summary(const Topology& topo);

}  // namespace xgft
