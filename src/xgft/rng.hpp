// rng.hpp — Deterministic, platform-independent pseudo-randomness.
//
// All randomized components of this library (Random routing, the r-NCA
// relabelings, synthetic traffic) derive their bits from SplitMix64 so that
// a given seed reproduces the exact same routes and workloads on every
// platform — std::mt19937 + std::uniform_int_distribution would not give
// that guarantee across standard libraries.  Counter-style hashing
// (hash(seed, a, b, ...)) lets callers draw an independent value per (s, d)
// pair or per subtree without storing per-pair state.
#pragma once

#include <cstdint>
#include <vector>

namespace xgft {

/// SplitMix64 state-advance + output mix (Steele et al., "Fast splittable
/// pseudorandom number generators", OOPSLA'14 — public-domain reference).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless hash of a (seed, key...) tuple into 64 uniform bits.
constexpr std::uint64_t hashMix(std::uint64_t seed, std::uint64_t a) {
  return splitmix64(splitmix64(seed) ^ a);
}
constexpr std::uint64_t hashMix(std::uint64_t seed, std::uint64_t a,
                                std::uint64_t b) {
  return splitmix64(hashMix(seed, a) ^ (b * 0xd6e8feb86659fd93ULL));
}
constexpr std::uint64_t hashMix(std::uint64_t seed, std::uint64_t a,
                                std::uint64_t b, std::uint64_t c) {
  return splitmix64(hashMix(seed, a, b) ^ (c * 0xa0761d6478bd642fULL));
}

/// Small sequential generator for code that wants a stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(splitmix64(seed ^ kInit)) {}

  /// Next 64 uniform bits.
  std::uint64_t next() {
    state_ = splitmix64(state_);
    return state_;
  }

  /// Uniform value in [0, bound); bound must be > 0.  Uses 128-bit
  /// multiply-shift rejection-free mapping (Lemire) — bias is negligible for
  /// the bounds used here (< 2^32).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t kInit = 0x5bf03635f0935ad1ULL;
  std::uint64_t state_;
};

}  // namespace xgft
