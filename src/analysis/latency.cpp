#include "analysis/latency.hpp"

#include <algorithm>
#include <stdexcept>

namespace analysis {

LatencyHistogram::LatencyHistogram(std::uint64_t bucketWidthNs,
                                   std::size_t numBuckets)
    : widthNs_(bucketWidthNs), buckets_(numBuckets, 0) {
  if (bucketWidthNs == 0 || numBuckets == 0) {
    throw std::invalid_argument(
        "LatencyHistogram: bucket width and count must be > 0");
  }
}

void LatencyHistogram::record(sim::TimeNs latencyNs) {
  if (count_ == 0) {
    min_ = max_ = latencyNs;
  } else {
    min_ = std::min(min_, latencyNs);
    max_ = std::max(max_, latencyNs);
  }
  ++count_;
  sumNs_ += latencyNs;
  const std::uint64_t bucket = latencyNs / widthNs_;
  if (bucket < buckets_.size()) {
    ++buckets_[bucket];
  } else {
    ++overflow_;
  }
}

sim::TimeNs LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]: the smallest latency with at least `rank` samples
  // at or below it.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    if (cum + buckets_[b] >= rank) {
      // Midpoint-convention linear interpolation inside the bucket (the
      // rank-th sample sits half a step into its slice), clamped to the
      // observed extremes so degenerate distributions report exact values.
      const double within = (static_cast<double>(rank - cum) - 0.5) /
                            static_cast<double>(buckets_[b]);
      const double lo = static_cast<double>(b) * static_cast<double>(widthNs_);
      const auto v = static_cast<sim::TimeNs>(
          lo + within * static_cast<double>(widthNs_));
      return std::clamp(v, min_, max_);
    }
    cum += buckets_[b];
  }
  return max_;  // Rank landed in the overflow bucket.
}

LatencySummary LatencyHistogram::summary() const {
  LatencySummary s;
  s.samples = count_;
  if (count_ == 0) return s;
  s.minNs = min_;
  s.maxNs = max_;
  s.meanNs = static_cast<double>(sumNs_) / static_cast<double>(count_);
  s.p50Ns = quantile(0.5);
  s.p99Ns = quantile(0.99);
  return s;
}

double WindowAccount::acceptedLoad(std::uint64_t hosts,
                                   double hostBytesPerNs) const {
  if (endNs <= beginNs || hosts == 0 || hostBytesPerNs <= 0.0) return 0.0;
  const double capacity = static_cast<double>(hosts) * hostBytesPerNs *
                          static_cast<double>(endNs - beginNs);
  return static_cast<double>(bytes) / capacity;
}

}  // namespace analysis
