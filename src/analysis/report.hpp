// report.hpp — Aligned-column table rendering for the bench harnesses.
//
// Every bench binary prints the rows/series of the paper figure it
// regenerates; this tiny formatter keeps those tables consistent and
// greppable (plain text, one header row, fixed-width columns, optional CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  /// Convenience: formats doubles with @p precision decimals.
  [[nodiscard]] static std::string num(double v, int precision = 3);

  /// Aligned plain-text rendering.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (no alignment, for machine consumption).
  void printCsv(std::ostream& os) const;

  [[nodiscard]] std::size_t numRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace analysis
