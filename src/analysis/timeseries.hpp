// timeseries.hpp — Compact CSV export of a telemetry summary series.
//
// One row per sample, one utilization column per link class:
//
//   t_ns,inflight,queued_segments,max_queue_depth,max_queue_port,
//       blocked_inputs,util_hosts>L1,util_L1>hosts,...          (one line)
//
// Deterministic byte-for-byte (to_chars only, no locale); plots straight
// into pandas/gnuplot.  examples/load_latency and campaign_cli
// --telemetry=DIR emit these next to their result CSVs.
#pragma once

#include <ostream>

#include "obs/recorder.hpp"

namespace analysis {

void writeTimeSeriesCsv(std::ostream& os, const obs::SummarySeries& series);

}  // namespace analysis
