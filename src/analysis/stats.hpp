// stats.hpp — Small statistics helpers for the evaluation harnesses.
//
// The paper reports randomized routings as boxplots: median, the 25/75
// percentiles, and min/max whiskers over 40–60 seeds (Sec. IX).  BoxStats
// reproduces exactly that five-number summary (quartiles by linear
// interpolation, R type-7, the convention of the plotting tools of the era).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace analysis {

/// Five-number summary plus mean of a sample.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t samples = 0;

  /// "med=1.23 [q1=1.10 q3=1.40 min=1.02 max=1.77]"
  [[nodiscard]] std::string toString(int precision = 3) const;
};

/// Computes the summary; throws std::invalid_argument on an empty sample.
[[nodiscard]] BoxStats boxStats(std::vector<double> sample);

/// Quantile with linear interpolation (R type 7); @p q in [0, 1].
/// @p sorted must be non-empty and ascending.
[[nodiscard]] double quantileSorted(const std::vector<double>& sorted,
                                    double q);

/// Mean and (population) standard deviation.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
[[nodiscard]] MeanStd meanStd(const std::vector<double>& sample);

}  // namespace analysis
