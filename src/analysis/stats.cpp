#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace analysis {

double quantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("quantileSorted: empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantileSorted: q outside [0, 1]");
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats boxStats(std::vector<double> sample) {
  if (sample.empty()) {
    throw std::invalid_argument("boxStats: empty sample");
  }
  std::sort(sample.begin(), sample.end());
  BoxStats s;
  s.samples = sample.size();
  s.min = sample.front();
  s.max = sample.back();
  s.q1 = quantileSorted(sample, 0.25);
  s.median = quantileSorted(sample, 0.50);
  s.q3 = quantileSorted(sample, 0.75);
  double sum = 0.0;
  for (const double x : sample) sum += x;
  s.mean = sum / static_cast<double>(sample.size());
  return s;
}

std::string BoxStats::toString(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << "med=" << median << " [q1=" << q1 << " q3=" << q3 << " min=" << min
     << " max=" << max << "]";
  return os.str();
}

MeanStd meanStd(const std::vector<double>& sample) {
  MeanStd r;
  if (sample.empty()) return r;
  double sum = 0.0;
  for (const double x : sample) sum += x;
  r.mean = sum / static_cast<double>(sample.size());
  double var = 0.0;
  for (const double x : sample) var += (x - r.mean) * (x - r.mean);
  r.std = std::sqrt(var / static_cast<double>(sample.size()));
  return r;
}

}  // namespace analysis
