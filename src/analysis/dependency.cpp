#include "analysis/dependency.hpp"

#include <vector>

namespace analysis {

void ChannelDependencyGraph::addRoute(const xgft::Topology& topo,
                                      xgft::NodeIndex s, xgft::NodeIndex d,
                                      const xgft::Route& r) {
  const std::vector<xgft::Channel> channels = channelsOf(topo, s, d, r);
  for (std::size_t i = 0; i < channels.size(); ++i) {
    // Ensure every used channel exists as a node even without successors.
    adjacency_.try_emplace(keyOf(channels[i]));
    if (i + 1 < channels.size()) {
      adjacency_[keyOf(channels[i])].insert(keyOf(channels[i + 1]));
    }
  }
}

std::size_t ChannelDependencyGraph::numDependencies() const {
  std::size_t edges = 0;
  for (const auto& [node, next] : adjacency_) edges += next.size();
  return edges;
}

bool ChannelDependencyGraph::isAcyclic() const {
  // Iterative three-color DFS (the graphs can have hundreds of thousands of
  // edges for all-pairs route sets; recursion depth is unbounded).
  enum class Color : std::uint8_t { kWhite, kGrey, kBlack };
  std::unordered_map<std::uint64_t, Color> color;
  color.reserve(adjacency_.size());
  for (const auto& [node, next] : adjacency_) color[node] = Color::kWhite;

  std::vector<std::pair<std::uint64_t, bool>> stack;  // (node, expanded).
  for (const auto& [start, next] : adjacency_) {
    if (color[start] != Color::kWhite) continue;
    stack.emplace_back(start, false);
    while (!stack.empty()) {
      auto& [node, expanded] = stack.back();
      if (expanded) {
        color[node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      expanded = true;
      color[node] = Color::kGrey;
      const auto it = adjacency_.find(node);
      if (it != adjacency_.end()) {
        for (const std::uint64_t succ : it->second) {
          const Color c = color[succ];
          if (c == Color::kGrey) return false;  // Back edge: cycle.
          if (c == Color::kWhite) stack.emplace_back(succ, false);
        }
      }
    }
  }
  return true;
}

bool routesAreDeadlockFree(const xgft::Topology& topo,
                           const routing::Router& router,
                           const patterns::Pattern* pattern) {
  ChannelDependencyGraph cdg;
  if (pattern != nullptr) {
    for (const patterns::Flow& f : pattern->flows()) {
      if (f.src == f.dst) continue;
      cdg.addRoute(topo, f.src, f.dst, router.route(f.src, f.dst));
    }
  } else {
    for (xgft::NodeIndex s = 0; s < topo.numHosts(); ++s) {
      for (xgft::NodeIndex d = 0; d < topo.numHosts(); ++d) {
        if (s == d) continue;
        cdg.addRoute(topo, s, d, router.route(s, d));
      }
    }
  }
  return cdg.isAcyclic();
}

}  // namespace analysis
