#include "analysis/degradation.hpp"

namespace analysis {

std::vector<DegradationCurve> degradationCurves(
    std::span<const DegradationPoint> points) {
  std::vector<DegradationCurve> curves;
  // Sums are accumulated in place and divided once at the end; linear
  // scans keep first-appearance order without auxiliary index maps
  // (curve/cell counts are tiny — schemes x plans).
  for (const DegradationPoint& p : points) {
    DegradationCurve* curve = nullptr;
    for (DegradationCurve& c : curves) {
      if (c.scheme == p.scheme) {
        curve = &c;
        break;
      }
    }
    if (curve == nullptr) {
      curves.push_back(DegradationCurve{p.scheme, {}});
      curve = &curves.back();
    }
    DegradationCell* cell = nullptr;
    for (DegradationCell& c : curve->cells) {
      if (c.faults == p.faults) {
        cell = &c;
        break;
      }
    }
    if (cell == nullptr) {
      curve->cells.push_back(DegradationCell{p.faults, 0, 0.0, 0.0, 0.0});
      cell = &curve->cells.back();
    }
    ++cell->jobs;
    cell->acceptedLoad += p.acceptedLoad;
    cell->latencyP99Ns += static_cast<double>(p.latencyP99Ns);
    cell->messagesDropped += static_cast<double>(p.messagesDropped);
  }
  for (DegradationCurve& curve : curves) {
    for (DegradationCell& cell : curve.cells) {
      const double n = static_cast<double>(cell.jobs);
      cell.acceptedLoad /= n;
      cell.latencyP99Ns /= n;
      cell.messagesDropped /= n;
    }
  }
  return curves;
}

bool acceptedLoadMonotone(const DegradationCurve& curve, double tolerance) {
  for (std::size_t i = 1; i < curve.cells.size(); ++i) {
    if (curve.cells[i].acceptedLoad >
        curve.cells[i - 1].acceptedLoad + tolerance) {
      return false;
    }
  }
  return true;
}

}  // namespace analysis
