// latency.hpp — Fixed-bucket latency histogram and windowed accounting for
// the open-loop measurement layer.
//
// Load–latency methodology (DESIGN.md §8): a run is split into warmup,
// measurement and drain windows.  Only messages *injected inside the
// measurement window* contribute latency samples (they may complete during
// drain), so the reported point is stationary: warmup transients and the
// emptying network at the end are both excluded.  Accepted throughput is
// accounted per window from delivered bytes.
//
// The histogram is a flat fixed-width bucket array (plus an overflow
// bucket), so recording is one increment and quantiles are one prefix
// scan — deterministic, allocation-free after construction, and cheap
// enough to sit on the delivery path of every open-loop job.  Quantiles
// interpolate linearly inside the hit bucket and clamp to the exact
// observed [min, max]; samples past the last bucket land in overflow,
// whose quantile conservatively reports the observed maximum.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace analysis {

/// The five-number latency digest of one measurement window.
struct LatencySummary {
  std::uint64_t samples = 0;
  sim::TimeNs minNs = 0;
  double meanNs = 0.0;
  sim::TimeNs p50Ns = 0;
  sim::TimeNs p99Ns = 0;
  sim::TimeNs maxNs = 0;
};

class LatencyHistogram {
 public:
  /// @p bucketWidthNs * @p numBuckets is the exactly-resolved range
  /// (defaults: 512 ns * 65536 = ~33.5 ms); later samples overflow.
  explicit LatencyHistogram(std::uint64_t bucketWidthNs = 512,
                            std::size_t numBuckets = std::size_t{1} << 16);

  void record(sim::TimeNs latencyNs);

  [[nodiscard]] std::uint64_t samples() const { return count_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Latency at quantile @p q in [0, 1]; 0 with no samples.
  [[nodiscard]] sim::TimeNs quantile(double q) const;

  /// min/mean/p50/p99/max in one call.
  [[nodiscard]] LatencySummary summary() const;

 private:
  std::uint64_t widthNs_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t sumNs_ = 0;
  sim::TimeNs min_ = 0;
  sim::TimeNs max_ = 0;
};

/// Delivered-traffic account of one window [beginNs, endNs).
struct WindowAccount {
  sim::TimeNs beginNs = 0;
  sim::TimeNs endNs = 0;  ///< Drain windows: the last delivery time.
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Simulator events processed up to this window's boundary (sampled when
  /// the partial run reaches it).
  std::uint64_t eventsAtEnd = 0;

  /// Delivered bytes as a fraction of @p hosts * @p hostBytesPerNs over the
  /// window — the accepted load in the units offered load is specified in.
  [[nodiscard]] double acceptedLoad(std::uint64_t hosts,
                                    double hostBytesPerNs) const;
};

}  // namespace analysis
