// contention.hpp — Static contention analysis (Sec. IV and VII of the paper).
//
// Given a topology, a communication pattern and a routing scheme, these
// functions compute the link-level picture *before* any simulation:
//
//  * per-channel flow counts, byte loads and effective demand (the metric of
//    [4]/Sec. IV: a flow contributes 1/fanout(src) on its ascent and
//    1/fanin(dst) on its descent — the rate its endpoints allow it anyway);
//  * the paper's contention level C: the maximum network contention over
//    the NCAs assigned to the communicating pairs (Sec. VII-B);
//  * the routes-per-NCA census of Fig. 4;
//  * the endpoint vs. network contention decomposition of Sec. IV.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "patterns/pattern.hpp"
#include "routing/router.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace analysis {

/// Key of one unidirectional channel: link id * 2 + (up ? 1 : 0).
using ChannelKey = std::uint64_t;

[[nodiscard]] inline ChannelKey keyOf(const xgft::Channel& ch) {
  return ch.link * 2 + (ch.up ? 1 : 0);
}

/// Accumulated load of one unidirectional channel.
struct ChannelLoad {
  std::uint32_t flows = 0;     ///< Number of flows crossing the channel.
  patterns::Bytes bytes = 0;   ///< Total bytes crossing the channel.
  double demand = 0.0;         ///< Effective (endpoint-weighted) demand.
};

/// Whole-pattern load picture under a routing scheme.
struct LoadSummary {
  std::unordered_map<ChannelKey, ChannelLoad> channels;
  std::uint32_t maxFlowsPerChannel = 0;
  double maxDemand = 0.0;          ///< The Sec. IV slowdown estimate (>= 1
                                   ///< when any flow crosses the network).
  std::uint64_t usedChannels = 0;  ///< Channels carrying at least one flow.

  /// Mean flows over channels that carry traffic.
  [[nodiscard]] double meanFlowsPerUsedChannel() const;
};

/// Routes every (non-self) flow of @p pattern with @p router and accumulates
/// channel loads.
[[nodiscard]] LoadSummary computeLoads(const xgft::Topology& topo,
                                       const patterns::Pattern& pattern,
                                       const routing::Router& router);

/// The routes-per-NCA census of Fig. 4: routes of *all* ordered host pairs
/// (s != d) whose NCA sits at @p level, counted per NCA node at that level.
/// Entry i is the number of pairs whose route ascends to node i of the
/// level.  For the paper's two-level trees, level = 2 counts routes per root.
[[nodiscard]] std::vector<std::uint64_t> ncaRouteCensus(
    const xgft::Topology& topo, const routing::Router& router,
    std::uint32_t level);

/// As ncaRouteCensus but restricted to the pairs of @p pattern — "the routes
/// effectively used by the communication pattern" (Sec. VII-D).
[[nodiscard]] std::vector<std::uint64_t> ncaRouteCensusForPattern(
    const xgft::Topology& topo, const patterns::Pattern& pattern,
    const routing::Router& router, std::uint32_t level);

/// Per-NCA network contention (Sec. VII-B): for every NCA node actually used
/// by the pattern, the maximum number of flows sharing any single channel on
/// the way into or out of that NCA.  Keyed by (level, node) flattened to the
/// node's global id.
[[nodiscard]] std::unordered_map<std::uint64_t, std::uint32_t> ncaContention(
    const xgft::Topology& topo, const patterns::Pattern& pattern,
    const routing::Router& router);

/// The contention level C of Sec. VII-B: max over NCAs of ncaContention.
[[nodiscard]] std::uint32_t contentionLevel(const xgft::Topology& topo,
                                            const patterns::Pattern& pattern,
                                            const routing::Router& router);

/// Endpoint vs. network contention decomposition of a pattern (Sec. IV).
struct ContentionSplit {
  std::uint32_t maxFanOut = 0;   ///< Worst source endpoint contention.
  std::uint32_t maxFanIn = 0;    ///< Worst destination endpoint contention.
  double endpointBound = 0.0;    ///< max(maxFanOut, maxFanIn): the slowdown
                                 ///< no routing scheme can remove.
  double networkBound = 0.0;     ///< maxDemand of the routed pattern: the
                                 ///< slowdown including routing contention.
};

[[nodiscard]] ContentionSplit contentionSplit(const xgft::Topology& topo,
                                              const patterns::Pattern& pattern,
                                              const routing::Router& router);

}  // namespace analysis
