#include "analysis/contention.hpp"

#include <algorithm>

namespace analysis {

double LoadSummary::meanFlowsPerUsedChannel() const {
  if (usedChannels == 0) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [k, load] : channels) total += load.flows;
  return static_cast<double>(total) / static_cast<double>(usedChannels);
}

LoadSummary computeLoads(const xgft::Topology& topo,
                         const patterns::Pattern& pattern,
                         const routing::Router& router) {
  LoadSummary summary;
  std::vector<std::uint32_t> fanOut(pattern.numRanks(), 0);
  std::vector<std::uint32_t> fanIn(pattern.numRanks(), 0);
  for (const patterns::Flow& f : pattern.flows()) {
    if (f.src == f.dst) continue;
    ++fanOut[f.src];
    ++fanIn[f.dst];
  }
  for (const patterns::Flow& f : pattern.flows()) {
    if (f.src == f.dst) continue;
    const xgft::Route r = router.route(f.src, f.dst);
    const double rhoUp = 1.0 / fanOut[f.src];
    const double rhoDown = 1.0 / fanIn[f.dst];
    for (const xgft::Channel& ch : channelsOf(topo, f.src, f.dst, r)) {
      ChannelLoad& load = summary.channels[keyOf(ch)];
      load.flows += 1;
      load.bytes += f.bytes;
      load.demand += ch.up ? rhoUp : rhoDown;
    }
  }
  for (const auto& [k, load] : summary.channels) {
    summary.maxFlowsPerChannel = std::max(summary.maxFlowsPerChannel,
                                          load.flows);
    summary.maxDemand = std::max(summary.maxDemand, load.demand);
  }
  summary.usedChannels = summary.channels.size();
  return summary;
}

std::vector<std::uint64_t> ncaRouteCensus(const xgft::Topology& topo,
                                          const routing::Router& router,
                                          std::uint32_t level) {
  std::vector<std::uint64_t> census(topo.nodesAtLevel(level), 0);
  const xgft::Count n = topo.numHosts();
  for (xgft::NodeIndex s = 0; s < n; ++s) {
    for (xgft::NodeIndex d = 0; d < n; ++d) {
      if (s == d || topo.ncaLevel(s, d) != level) continue;
      const xgft::Route r = router.route(s, d);
      ++census[ncaOf(topo, s, r)];
    }
  }
  return census;
}

std::vector<std::uint64_t> ncaRouteCensusForPattern(
    const xgft::Topology& topo, const patterns::Pattern& pattern,
    const routing::Router& router, std::uint32_t level) {
  std::vector<std::uint64_t> census(topo.nodesAtLevel(level), 0);
  for (const patterns::Flow& f : pattern.flows()) {
    if (f.src == f.dst || topo.ncaLevel(f.src, f.dst) != level) continue;
    const xgft::Route r = router.route(f.src, f.dst);
    ++census[ncaOf(topo, f.src, r)];
  }
  return census;
}

std::unordered_map<std::uint64_t, std::uint32_t> ncaContention(
    const xgft::Topology& topo, const patterns::Pattern& pattern,
    const routing::Router& router) {
  // Pass 1: per-channel flow counts.
  std::unordered_map<ChannelKey, std::uint32_t> flows;
  for (const patterns::Flow& f : pattern.flows()) {
    if (f.src == f.dst) continue;
    const xgft::Route r = router.route(f.src, f.dst);
    for (const xgft::Channel& ch : channelsOf(topo, f.src, f.dst, r)) {
      ++flows[keyOf(ch)];
    }
  }
  // Pass 2: per NCA, the worst channel anywhere on its flows' paths.  The
  // whole up/down path "belongs" to the NCA assignment, so the NCA's
  // contention is the bottleneck its assigned pairs experience.
  std::unordered_map<std::uint64_t, std::uint32_t> result;
  for (const patterns::Flow& f : pattern.flows()) {
    if (f.src == f.dst) continue;
    const xgft::Route r = router.route(f.src, f.dst);
    const std::uint32_t level = r.ncaLevel();
    if (level == 0) continue;
    const std::uint64_t nca = topo.globalId(level, ncaOf(topo, f.src, r));
    std::uint32_t worst = 0;
    for (const xgft::Channel& ch : channelsOf(topo, f.src, f.dst, r)) {
      worst = std::max(worst, flows[keyOf(ch)]);
    }
    auto [it, inserted] = result.emplace(nca, worst);
    if (!inserted) it->second = std::max(it->second, worst);
  }
  return result;
}

std::uint32_t contentionLevel(const xgft::Topology& topo,
                              const patterns::Pattern& pattern,
                              const routing::Router& router) {
  std::uint32_t level = 0;
  for (const auto& [nca, c] : ncaContention(topo, pattern, router)) {
    level = std::max(level, c);
  }
  return level;
}

ContentionSplit contentionSplit(const xgft::Topology& topo,
                                const patterns::Pattern& pattern,
                                const routing::Router& router) {
  ContentionSplit split;
  for (patterns::Rank r = 0; r < pattern.numRanks(); ++r) {
    split.maxFanOut = std::max(split.maxFanOut, pattern.fanOut(r));
    split.maxFanIn = std::max(split.maxFanIn, pattern.fanIn(r));
  }
  split.endpointBound = std::max(split.maxFanOut, split.maxFanIn);
  split.networkBound = computeLoads(topo, pattern, router).maxDemand;
  return split;
}

}  // namespace analysis
