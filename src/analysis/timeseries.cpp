#include "analysis/timeseries.hpp"

#include <locale>

#include "obs/json_util.hpp"

namespace analysis {

void writeTimeSeriesCsv(std::ostream& os, const obs::SummarySeries& series) {
  // Same locale discipline as the campaign CSV writer: grouping locales
  // must not reformat integers mid-stream.
  const std::locale prev = os.imbue(std::locale::classic());
  struct RestoreLocale {
    std::ostream& os;
    const std::locale& loc;
    ~RestoreLocale() { os.imbue(loc); }
  } restore{os, prev};
  os << "t_ns,inflight,queued_segments,max_queue_depth,max_queue_port,"
        "blocked_inputs";
  for (const std::string& label : series.groupLabels) {
    os << ",util_" << label;
  }
  os << '\n';
  for (std::size_t i = 0; i < series.size(); ++i) {
    os << series.t[i] << ',' << series.inFlight[i] << ','
       << series.queuedSegments[i] << ',' << series.maxQueueDepth[i] << ','
       << series.maxQueuePort[i] << ',' << series.blockedInputs[i];
    for (std::size_t grp = 0; grp < series.numGroups(); ++grp) {
      os << ',' << obs::formatJsonDouble(series.utilAt(i, grp));
    }
    os << '\n';
  }
}

}  // namespace analysis
