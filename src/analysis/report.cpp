#include "analysis/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::addRow: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::printCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "");
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace analysis
