// degradation.hpp — Resilience curves: operating points vs failure rate.
//
// The faultsweep campaign runs one open-loop operating point per (scheme,
// fault plan) cell; this layer folds those job results into per-scheme
// degradation curves — accepted throughput and tail latency as the failure
// plan worsens — the fault-subsystem analogue of the load–latency sweep.
// Points aggregate by (scheme, faults) cell (means over seed repeats), and
// each curve lists its cells in first-appearance order, which campaign
// files write from healthy to most degraded.
//
// The layer is engine-agnostic on purpose (analysis never includes
// engine/): callers flatten their job results into DegradationPoints.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace analysis {

/// One job's contribution: the operating point it measured and the fault
/// plan it ran under ("none" for the healthy baseline).
struct DegradationPoint {
  std::string scheme;
  std::string faults;
  double acceptedLoad = 0.0;
  sim::TimeNs latencyP99Ns = 0;
  std::uint64_t messagesDropped = 0;
};

/// One (scheme, faults) cell after aggregation: means over the seed
/// repeats that share the cell.
struct DegradationCell {
  std::string faults;
  std::uint64_t jobs = 0;
  double acceptedLoad = 0.0;   ///< Mean over the cell's jobs.
  double latencyP99Ns = 0.0;   ///< Mean over the cell's jobs.
  double messagesDropped = 0.0;
};

/// One scheme's degradation curve, cells in first-appearance order.
struct DegradationCurve {
  std::string scheme;
  std::vector<DegradationCell> cells;
};

/// Folds points into per-scheme curves.  Schemes and cells both keep the
/// order they first appear in @p points, so output follows campaign file
/// order deterministically.
[[nodiscard]] std::vector<DegradationCurve> degradationCurves(
    std::span<const DegradationPoint> points);

/// True when the curve's accepted throughput never rises as the plan
/// worsens (cell order), within @p tolerance of absolute load — the
/// monotone-degradation property the faultsweep campaign pins.
[[nodiscard]] bool acceptedLoadMonotone(const DegradationCurve& curve,
                                        double tolerance = 0.0);

}  // namespace analysis
