// dependency.hpp — Channel-dependency analysis: the deadlock-freedom
// argument for up/down routing, checked rather than assumed.
//
// A set of routes is deadlock-free under credit/wormhole flow control iff
// its channel dependency graph (CDG) — nodes are unidirectional channels,
// edges connect consecutive channels of some route — is acyclic (Dally &
// Seitz).  Minimal up/down routes can only chain up->up, up->down and
// down->down, which is acyclic by level monotonicity; this module builds
// the CDG for an *arbitrary* route set so tests (and users plugging in
// custom RelabelSchemes) can verify the property instead of trusting it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "patterns/pattern.hpp"
#include "routing/router.hpp"
#include "xgft/route.hpp"
#include "xgft/topology.hpp"

namespace analysis {

/// Channel dependency graph over Channel keys (link * 2 + up).
class ChannelDependencyGraph {
 public:
  /// Adds the dependencies induced by one route.
  void addRoute(const xgft::Topology& topo, xgft::NodeIndex s,
                xgft::NodeIndex d, const xgft::Route& r);

  /// Number of channels that appear in at least one route.
  [[nodiscard]] std::size_t numChannels() const { return adjacency_.size(); }

  /// Number of dependency edges.
  [[nodiscard]] std::size_t numDependencies() const;

  /// True iff the graph has no directed cycle (deadlock freedom).
  [[nodiscard]] bool isAcyclic() const;

 private:
  static std::uint64_t keyOf(const xgft::Channel& ch) {
    return ch.link * 2 + (ch.up ? 1 : 0);
  }

  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      adjacency_;
};

/// Builds the CDG of every (s, d) pair routed by @p router (all pairs when
/// @p pattern is null, else only the pattern's pairs) and reports
/// acyclicity.
[[nodiscard]] bool routesAreDeadlockFree(
    const xgft::Topology& topo, const routing::Router& router,
    const patterns::Pattern* pattern = nullptr);

}  // namespace analysis
