// load_latency.cpp — Walkthrough of the open-loop streaming API.
//
// The closed-loop examples (quickstart, routing_comparison) replay a fixed
// workload to drainage; this one instead *streams* traffic: every host
// injects Poisson arrivals at a configured offered load, the run is split
// into warmup/measurement/drain windows, and the result is one point on
// the network's load–latency curve.  Sweeping the load traces the whole
// curve: accepted throughput follows the offered load up to the routing
// scheme's saturation point, beyond which queues grow and the latency
// percentiles take off.
//
// The same sweep is available declaratively from the campaign engine:
//   campaign_cli --builtin loadsweep
// or with explicit keys:
//   echo 'topo=paper-slim source=poisson:uniform load={0.2,0.6}
//         routing=d-mod-k seed=1' | campaign_cli -
#include <iomanip>
#include <iostream>

#include "patterns/source.hpp"
#include "routing/relabel.hpp"
#include "trace/openloop.hpp"
#include "xgft/params.hpp"
#include "xgft/topology.hpp"

int main() {
  // The paper's slimmed two-level tree, scaled down to 64 hosts so the
  // sweep finishes in a couple of seconds.
  const xgft::Topology topo(xgft::xgft2(8, 8, 5));
  const routing::RouterPtr router = routing::makeDModK(topo);

  std::cout << "open-loop uniform Poisson on XGFT(2; 8,8; 1,5), d-mod-k\n\n"
            << std::left << std::setw(9) << "offered" << std::right
            << std::setw(10) << "accepted" << std::setw(12) << "mean (ns)"
            << std::setw(12) << "p50 (ns)" << std::setw(12) << "p99 (ns)"
            << "\n";

  trace::OpenLoopOptions windows;  // 0.5 ms warmup, 2 ms measured.
  for (const double load : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    patterns::OpenLoopConfig cfg;
    cfg.numRanks = static_cast<patterns::Rank>(topo.numHosts());
    cfg.arrivals = patterns::ArrivalProcess::kPoisson;
    cfg.dest = patterns::DestDistribution::kUniform;
    cfg.load = load;
    cfg.messageBytes = 2048;
    cfg.stopNs = windows.warmupNs + windows.measureNs;  // Then drain.
    cfg.seed = 1;
    patterns::OpenLoopSource source(cfg);

    const trace::OpenLoopResult r =
        trace::runOpenLoop(topo, *router, source, windows);
    std::cout << std::fixed << std::setprecision(3) << std::left
              << std::setw(9) << load << std::right << std::setw(10)
              << r.acceptedLoad << std::setprecision(0) << std::setw(12)
              << r.latency.meanNs << std::setw(12) << r.latency.p50Ns
              << std::setw(12) << r.latency.p99Ns << "\n";
  }
  std::cout << "\nthe accepted column plateaus at the saturation load; past"
               " it the p99\ncolumn grows with the measurement window — the"
               " open-loop backlog is\nunbounded by design.\n";
  return 0;
}
