// load_latency.cpp — Walkthrough of the open-loop streaming API.
//
// The closed-loop examples (quickstart, routing_comparison) replay a fixed
// workload to drainage; this one instead *streams* traffic: every host
// injects Poisson arrivals at a configured offered load, the run is split
// into warmup/measurement/drain windows, and the result is one point on
// the network's load–latency curve.  Sweeping the load traces the whole
// curve: accepted throughput follows the offered load up to the routing
// scheme's saturation point, beyond which queues grow and the latency
// percentiles take off.
//
// Each point also runs under an obs::Recorder (the telemetry layer of
// DESIGN.md §9), which makes the saturation transition *visible*: the
// printed peak-queue column jumps at the knee, and per-load occupancy
// time-series land in load_latency_telemetry/ — plot queued segments over
// time to watch the backlog grow instead of inferring it from latency.
//
// The same sweep is available declaratively from the campaign engine:
//   campaign_cli --builtin loadsweep --telemetry=dir
// or with explicit keys:
//   echo 'topo=paper-slim source=poisson:uniform load={0.2,0.6}
//         routing=d-mod-k seed=1' | campaign_cli -
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "analysis/timeseries.hpp"
#include "engine/spec.hpp"
#include "obs/recorder.hpp"
#include "patterns/source.hpp"
#include "routing/relabel.hpp"
#include "trace/openloop.hpp"
#include "xgft/params.hpp"
#include "xgft/topology.hpp"

int main() {
  // The paper's slimmed two-level tree, scaled down to 64 hosts so the
  // sweep finishes in a couple of seconds.
  const xgft::Topology topo(xgft::xgft2(8, 8, 5));
  const routing::RouterPtr router = routing::makeDModK(topo);

  const std::string seriesDir = "load_latency_telemetry";
  std::filesystem::create_directories(seriesDir);

  std::cout << "open-loop uniform Poisson on XGFT(2; 8,8; 1,5), d-mod-k\n\n"
            << std::left << std::setw(9) << "offered" << std::right
            << std::setw(10) << "accepted" << std::setw(12) << "mean (ns)"
            << std::setw(12) << "p50 (ns)" << std::setw(12) << "p99 (ns)"
            << std::setw(11) << "peak queue" << "\n";

  trace::OpenLoopOptions windows;  // 0.5 ms warmup, 2 ms measured.
  for (const double load : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    patterns::OpenLoopConfig cfg;
    cfg.numRanks = static_cast<patterns::Rank>(topo.numHosts());
    cfg.arrivals = patterns::ArrivalProcess::kPoisson;
    cfg.dest = patterns::DestDistribution::kUniform;
    cfg.load = load;
    cfg.messageBytes = 2048;
    cfg.stopNs = windows.warmupNs + windows.measureNs;  // Then drain.
    cfg.seed = 1;
    patterns::OpenLoopSource source(cfg);

    // Observe this point: sampled occupancy series + exact peaks.  The
    // recorder never perturbs the measured point (sim/probe.hpp).
    obs::Recorder recorder;
    windows.probe = &recorder;

    const trace::OpenLoopResult r =
        trace::runOpenLoop(topo, *router, source, windows);
    const obs::RecorderSummary t = recorder.summary();
    std::cout << std::left << std::setw(9) << engine::formatFixed(load, 3)
              << std::right << std::setw(10)
              << engine::formatFixed(r.acceptedLoad, 3) << std::setw(12)
              << engine::formatFixed(r.latency.meanNs, 0) << std::setw(12)
              << r.latency.p50Ns
              << std::setw(12) << r.latency.p99Ns << std::setw(11)
              << t.peakQueueDepth << "\n";

    std::ostringstream name;
    name << seriesDir << "/load" << engine::formatFixed(load, 1)
         << ".timeseries.csv";
    std::ofstream series(name.str(), std::ios::binary | std::ios::trunc);
    analysis::writeTimeSeriesCsv(series, recorder.series());
  }
  std::cout << "\nthe accepted column plateaus at the saturation load; past"
               " it the p99\ncolumn grows with the measurement window — the"
               " open-loop backlog is\nunbounded by design.  the peak-queue"
               " column jumps at the same knee;\nper-load occupancy series"
               " were written to " << seriesDir << "/.\n";
  return 0;
}
