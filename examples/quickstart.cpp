// quickstart.cpp — Build a fat tree, route a pattern, measure the slowdown.
//
// The five-minute tour of the library:
//   1. describe an XGFT topology,
//   2. pick a routing scheme (here: the paper's r-NCA-d proposal),
//   3. generate a communication pattern,
//   4. inspect static contention, and
//   5. simulate the run and compare against the ideal crossbar.
#include <iostream>

#include "analysis/contention.hpp"
#include "patterns/synthetic.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "xgft/printer.hpp"

int main() {
  // 1. A slimmed 8-ary 2-tree: 64 hosts, 8 leaf switches, 5 roots.
  const xgft::Topology topo(xgft::xgft2(8, 8, 5));
  std::cout << xgft::summary(topo) << "\n\n";

  // 2. Routing schemes under study.
  const routing::RouterPtr dmodk = routing::makeDModK(topo);
  const routing::RouterPtr random = routing::makeRandom(topo, /*seed=*/42);
  const routing::RouterPtr rncad = routing::makeRNcaDown(topo, /*seed=*/42);

  // 3. A random permutation: every host sends 64 KB to a distinct partner.
  const patterns::Pattern perm =
      patterns::randomPermutation(64, /*seed=*/7).toPattern(64 * 1024);
  patterns::PhasedPattern app;
  app.name = "random permutation";
  app.numRanks = 64;
  app.phases.push_back(perm);

  // 4. Static contention: how many flows share the worst link?
  for (const routing::Router* router :
       {dmodk.get(), random.get(), rncad.get()}) {
    const analysis::LoadSummary loads =
        analysis::computeLoads(topo, perm, *router);
    std::cout << router->name() << ": worst link carries "
              << loads.maxFlowsPerChannel << " flows (effective demand "
              << loads.maxDemand << ")\n";
  }
  std::cout << "\n";

  // 5. Simulate and report slowdown vs. the ideal single-stage crossbar.
  for (const routing::Router* router :
       {dmodk.get(), random.get(), rncad.get()}) {
    const double slowdown = trace::slowdownVsCrossbar(topo, *router, app);
    std::cout << router->name() << ": slowdown vs Full-Crossbar = "
              << slowdown << "\n";
  }
  return 0;
}
