// routing_comparison.cpp — Pick the right oblivious scheme for a workload.
//
// Runs the full scheme family (Random, S-mod-k, D-mod-k, r-NCA-u, r-NCA-d,
// Colored) over a battery of classic patterns on one topology, reporting
// both the static contention analysis and the simulated slowdown — the
// two-view methodology of the paper (Sec. VII).  Watch the schemes trade
// places: mod-k wins the endpoint-heavy halo, Random wins the congruent
// transpose, r-NCA is never the worst — the paper's thesis in one table.
#include <functional>
#include <iostream>
#include <vector>

#include "analysis/contention.hpp"
#include "analysis/report.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "patterns/synthetic.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

namespace {

patterns::PhasedPattern wrap(patterns::Pattern p, std::string name) {
  patterns::PhasedPattern app;
  app.name = std::move(name);
  app.numRanks = p.numRanks();
  app.phases.push_back(std::move(p));
  return app;
}

}  // namespace

int main() {
  const xgft::Topology topo(xgft::xgft2(8, 8, 6));  // 64 hosts, slimmed.
  std::cout << "topology: " << topo.params().toString() << "\n\n";
  const patterns::Bytes kBytes = 32 * 1024;

  std::vector<patterns::PhasedPattern> workloads;
  workloads.push_back(wrap(
      patterns::wrfHalo(8, 8, kBytes).phases[0], "halo 8x8 (+/-8)"));
  workloads.push_back(
      wrap(patterns::transpose(8, 8).toPattern(kBytes), "transpose 8x8"));
  workloads.push_back(
      wrap(patterns::bitReversal(64).toPattern(kBytes), "bit-reversal"));
  workloads.push_back(
      wrap(patterns::shiftPermutation(64, 8).toPattern(kBytes), "shift-8"));
  workloads.push_back(wrap(
      patterns::randomPermutation(64, 17).toPattern(kBytes), "random perm"));
  workloads.push_back(
      wrap(patterns::ringExchange(64, kBytes), "ring exchange"));

  analysis::Table table({"workload", "scheme", "max flows/link",
                         "effective demand", "slowdown vs crossbar"});
  for (const patterns::PhasedPattern& app : workloads) {
    using Factory =
        std::function<routing::RouterPtr(const xgft::Topology&)>;
    const std::vector<Factory> factories{
        [](const xgft::Topology& t) { return routing::makeRandom(t, 1); },
        [](const xgft::Topology& t) { return routing::makeSModK(t); },
        [](const xgft::Topology& t) { return routing::makeDModK(t); },
        [](const xgft::Topology& t) { return routing::makeRNcaUp(t, 1); },
        [](const xgft::Topology& t) { return routing::makeRNcaDown(t, 1); },
    };
    for (const Factory& make : factories) {
      const routing::RouterPtr router = make(topo);
      const analysis::LoadSummary loads =
          analysis::computeLoads(topo, app.phases[0], *router);
      const double slowdown = trace::slowdownVsCrossbar(topo, *router, app);
      table.addRow({app.name, router->name(),
                    std::to_string(loads.maxFlowsPerChannel),
                    analysis::Table::num(loads.maxDemand, 2),
                    analysis::Table::num(slowdown, 2)});
    }
    const routing::ColoredRouter colored(topo, app);
    const analysis::LoadSummary loads =
        analysis::computeLoads(topo, app.phases[0], colored);
    table.addRow({app.name, colored.name(),
                  std::to_string(loads.maxFlowsPerChannel),
                  analysis::Table::num(loads.maxDemand, 2),
                  analysis::Table::num(
                      trace::slowdownVsCrossbar(topo, colored, app), 2)});
  }
  table.print(std::cout);
  return 0;
}
