// fault_cli.cpp — Replay one failure plan against one routing scheme.
//
// The campaign engine's faultsweep builtin measures resilience curves in
// bulk; this CLI is the single-run magnifying glass: it builds one
// topology, one (table) routing scheme and one fault::FaultPlan, installs
// the plan with fault::installFaultPlan, and streams uniform Poisson
// traffic through the degraded network while printing every fault
// transition as it fires.  The final report shows the operating point next
// to the fault counters (rerouted / stranded / dropped / link-down time),
// so the effect of a plan is visible without a spreadsheet.
//
//   fault_cli                                      # links:10 on paper-slim
//   fault_cli --faults uplinks-of:1:0 --routing Random
//   fault_cli --faults timed:5:600000:1200000 --policy wait
//   fault_cli --faults switches:10 --load 0.6 --trace-out fault.json
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "engine/spec.hpp"
#include "fault/inject.hpp"
#include "fault/plan.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"
#include "patterns/source.hpp"
#include "trace/openloop.hpp"
#include "xgft/topology.hpp"

namespace {

struct CliOptions {
  std::string topo = "paper-slim";
  std::string routing = "d-mod-k";
  std::string faults = "links:10";
  std::string policy = "reroute";
  std::string traceOut;
  double load = 0.4;
  std::uint64_t seed = 1;
};

void usage(std::ostream& os) {
  os << "usage: fault_cli [options]\n"
        "  --topo SPEC       topology preset or XGFT(h; m...; w...) "
        "(default paper-slim)\n"
        "  --routing NAME    table routing scheme (default d-mod-k)\n"
        "  --faults SPEC     failure plan (default links:10); see\n"
        "                    campaign_cli --list-faults\n"
        "  --policy P        wait | strand | reroute (default reroute)\n"
        "  --load X          offered load per host (default 0.4)\n"
        "  --seed N          job seed (default 1)\n"
        "  --trace-out FILE  write a Chrome trace with the fault instants\n";
}

CliOptions parseCli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(what) + " wants a value");
      }
      return argv[++i];
    };
    if (arg == "--topo") {
      opt.topo = next("--topo");
    } else if (arg == "--routing") {
      opt.routing = next("--routing");
    } else if (arg == "--faults") {
      opt.faults = next("--faults");
    } else if (arg == "--policy") {
      opt.policy = next("--policy");
    } else if (arg == "--load") {
      opt.load = std::stod(next("--load"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next("--seed"));
    } else if (arg == "--trace-out") {
      opt.traceOut = next("--trace-out");
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag '" + arg + "' (see --help)");
    }
  }
  return opt;
}

sim::FaultPolicy parsePolicy(const std::string& name) {
  if (name == "wait") return sim::FaultPolicy::kWait;
  if (name == "strand") return sim::FaultPolicy::kStrand;
  if (name == "reroute") return sim::FaultPolicy::kReroute;
  throw std::invalid_argument("unknown --policy '" + name +
                              "' (wait | strand | reroute)");
}

/// A Recorder that additionally narrates every fault transition and the
/// first few per-segment consequences to stdout as they fire.
class ConsoleProbe : public obs::Recorder {
 public:
  using obs::Recorder::Recorder;

  void onLinkDown(xgft::LinkId link, sim::TimeNs t) override {
    obs::Recorder::onLinkDown(link, t);
    std::cout << "  t=" << std::setw(9) << t << " ns  link " << link
              << " DOWN\n";
  }
  void onLinkUp(xgft::LinkId link, sim::TimeNs t) override {
    obs::Recorder::onLinkUp(link, t);
    std::cout << "  t=" << std::setw(9) << t << " ns  link " << link
              << " UP\n";
  }
  void onSegmentStranded(std::uint32_t gport, std::uint32_t msg,
                         sim::TimeNs t) override {
    if (++stranded_ <= kMaxLines) {
      std::cout << "  t=" << std::setw(9) << t << " ns  segment of msg "
                << msg << " stranded at gport " << gport << "\n";
    }
  }
  void onSegmentRerouted(std::uint32_t fromGport, std::uint32_t toGport,
                         std::uint32_t msg, sim::TimeNs t) override {
    if (++rerouted_ <= kMaxLines) {
      std::cout << "  t=" << std::setw(9) << t << " ns  segment of msg "
                << msg << " rerouted gport " << fromGport << " -> "
                << toGport << "\n";
    }
  }
  void finishNarration() const {
    if (stranded_ > kMaxLines) {
      std::cout << "  ... " << (stranded_ - kMaxLines)
                << " more strandings suppressed\n";
    }
    if (rerouted_ > kMaxLines) {
      std::cout << "  ... " << (rerouted_ - kMaxLines)
                << " more reroutes suppressed\n";
    }
  }

 private:
  static constexpr std::uint64_t kMaxLines = 8;
  std::uint64_t stranded_ = 0;
  std::uint64_t rerouted_ = 0;
};

void printPlan(const fault::FaultPlan& plan, const xgft::Topology& topo) {
  if (plan.empty()) {
    std::cout << "plan: none (healthy baseline)\n";
    return;
  }
  std::cout << "plan: " << plan.spec << " — " << plan.faults.size()
            << " link fault(s) of " << topo.numLinks() << " links\n";
  constexpr std::size_t kMaxListed = 12;
  for (std::size_t i = 0; i < plan.faults.size() && i < kMaxListed; ++i) {
    const fault::LinkFault& f = plan.faults[i];
    const xgft::LinkInfo li = topo.linkInfo(f.link);
    std::cout << "  link " << f.link << "  L" << li.level << "." << li.child
              << " <-> L" << li.level + 1 << "." << li.parent << "  down @"
              << f.downNs << " ns";
    if (f.upNs != fault::kNeverNs) std::cout << ", up @" << f.upNs << " ns";
    std::cout << "\n";
  }
  if (plan.faults.size() > kMaxListed) {
    std::cout << "  ... " << plan.faults.size() - kMaxListed << " more\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  try {
    cli = parseCli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }
  try {
    const xgft::Topology topo(core::makeTopoParams(cli.topo));
    const core::SchemeInfo& scheme = fault::requireDegradable(cli.routing);
    const std::shared_ptr<const routing::Router> router =
        scheme.make(topo, core::RouterContext{cli.seed, nullptr});

    const fault::FaultPlan plan = fault::makeFaultPlan(
        cli.faults, topo, core::deriveSeed(cli.seed, "fault"));
    std::cout << "topo " << cli.topo << " (" << topo.numHosts()
              << " hosts), routing " << cli.routing << ", policy "
              << cli.policy << ", load " << engine::formatShortest(cli.load)
              << ", seed " << cli.seed
              << "\n";
    printPlan(plan, topo);

    trace::OpenLoopOptions opt;  // 0.5 ms warmup, 2 ms measured.
    const std::shared_ptr<const core::CompiledRoutes> healthy =
        core::CompiledRoutes::compile(router);
    opt.compiled = healthy.get();

    obs::RecorderConfig rcfg;
    rcfg.recordEvents = !cli.traceOut.empty();
    ConsoleProbe probe(rcfg);
    opt.probe = &probe;

    std::shared_ptr<void> faultState;
    opt.prepare = [&](sim::Network& net, trace::RouteSetResolver& resolver) {
      fault::InstallOptions io;
      io.policy = parsePolicy(cli.policy);
      io.unreachable = fault::UnreachablePolicy::kDrop;
      faultState = fault::installFaultPlan(net, plan, router, &resolver, io);
    };

    patterns::OpenLoopConfig scfg;
    scfg.numRanks = static_cast<patterns::Rank>(topo.numHosts());
    scfg.arrivals = patterns::ArrivalProcess::kPoisson;
    scfg.dest = patterns::DestDistribution::kUniform;
    scfg.load = cli.load;
    scfg.messageBytes = 2048;
    scfg.stopNs = opt.warmupNs + opt.measureNs;  // Then drain.
    scfg.seed = core::deriveSeed(cli.seed, "source");
    patterns::OpenLoopSource source(scfg);

    std::cout << "\nfault transitions:\n";
    const trace::OpenLoopResult r =
        trace::runOpenLoop(topo, *router, source, opt);
    probe.finishNarration();

    std::cout << "\noperating point:\n"
              << "  offered load   " << engine::formatFixed(r.offeredLoad, 3)
              << "\n"
              << "  accepted load  " << engine::formatFixed(r.acceptedLoad, 3)
              << "\n"
              << "  latency p50    " << r.latency.p50Ns << " ns\n"
              << "  latency p99    " << r.latency.p99Ns << " ns\n"
              << "fault counters:\n"
              << "  segments rerouted  " << r.stats.segmentsRerouted << "\n"
              << "  segments stranded  " << r.stats.segmentsStranded << "\n"
              << "  messages dropped   " << r.stats.messagesDropped << "\n"
              << "  link-down time     " << r.stats.linkDownNs << " ns\n";

    if (!cli.traceOut.empty()) {
      std::ofstream out(cli.traceOut, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::invalid_argument("cannot write: " + cli.traceOut);
      }
      obs::ChromeTraceOptions topt;
      topt.processName = "fault_cli " + cli.faults;
      obs::writeChromeTrace(out, probe, topt);
      std::cout << "chrome trace written to " << cli.traceOut
                << " (open at ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
