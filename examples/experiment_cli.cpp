// experiment_cli.cpp — File-driven experiment runner.
//
// The library as a command-line tool: give it a topology in the paper's
// notation, a pattern file (or a builtin workload name), and a routing
// scheme, and it reports the static contention analysis, deadlock check,
// and the simulated slowdown vs. the Full-Crossbar.
//
//   experiment_cli "XGFT(2; 16,16; 1,10)" cg128 d-mod-k
//   experiment_cli "kary(8, 2)" wrf64 r-NCA-d
//   experiment_cli "XGFT(2; 8,8; 1,4)" pattern.txt Random
//
// Pattern files use the flow-list format of patterns/io.hpp.
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/contention.hpp"
#include "analysis/dependency.hpp"
#include "analysis/report.hpp"
#include "patterns/applications.hpp"
#include "patterns/io.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "xgft/io.hpp"
#include "xgft/printer.hpp"

namespace {

patterns::PhasedPattern loadWorkload(const std::string& spec) {
  if (spec == "cg128") return patterns::cgD128();
  if (spec == "wrf256") return patterns::wrf256();
  if (spec == "wrf64") {
    return patterns::wrfHalo(8, 8, patterns::kWrfMessageBytes);
  }
  std::ifstream file(spec);
  if (!file) {
    throw std::invalid_argument("cannot open pattern file or unknown "
                                "builtin workload: " + spec);
  }
  return patterns::readPhasedPattern(file);
}

routing::RouterPtr makeRouter(const std::string& name,
                              const xgft::Topology& topo,
                              const patterns::PhasedPattern& app) {
  if (name == "Random" || name == "random") {
    return routing::makeRandom(topo, 1);
  }
  if (name == "s-mod-k") return routing::makeSModK(topo);
  if (name == "d-mod-k") return routing::makeDModK(topo);
  if (name == "r-NCA-u") return routing::makeRNcaUp(topo, 1);
  if (name == "r-NCA-d") return routing::makeRNcaDown(topo, 1);
  if (name == "colored") return routing::makeColored(topo, app);
  throw std::invalid_argument(
      "unknown scheme '" + name +
      "' (try Random, s-mod-k, d-mod-k, r-NCA-u, r-NCA-d, colored)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: " << argv[0]
              << " <topology> <pattern-file|cg128|wrf256|wrf64> <scheme>\n";
    return 2;
  }
  try {
    const xgft::Topology topo(xgft::parseParams(argv[1]));
    const patterns::PhasedPattern app = loadWorkload(argv[2]);
    if (app.numRanks > topo.numHosts()) {
      throw std::invalid_argument("pattern has more ranks than hosts");
    }
    const routing::RouterPtr router = makeRouter(argv[3], topo, app);

    std::cout << xgft::summary(topo) << "\n";
    std::cout << "workload: " << app.name << " (" << app.numRanks
              << " ranks, " << app.phases.size() << " phase(s))\n";
    std::cout << "scheme:   " << router->name()
              << (router->isOblivious() ? " [oblivious]" : " [pattern-aware]")
              << "\n\n";

    analysis::Table table(
        {"phase", "flows", "max flows/link", "effective demand"});
    const patterns::Pattern flat = app.flattened();
    for (std::size_t i = 0; i < app.phases.size(); ++i) {
      const analysis::LoadSummary loads =
          analysis::computeLoads(topo, app.phases[i], *router);
      table.addRow({std::to_string(i + 1),
                    std::to_string(app.phases[i].size()),
                    std::to_string(loads.maxFlowsPerChannel),
                    analysis::Table::num(loads.maxDemand, 2)});
    }
    table.print(std::cout);

    std::cout << "\ndeadlock-free: "
              << (analysis::routesAreDeadlockFree(topo, *router, &flat)
                      ? "yes"
                      : "NO (cyclic channel dependencies!)")
              << "\n";

    const double slowdown = trace::slowdownVsCrossbar(topo, *router, app);
    std::cout << "slowdown vs Full-Crossbar: "
              << analysis::Table::num(slowdown, 3) << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
