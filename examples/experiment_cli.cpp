// experiment_cli.cpp — File-driven experiment runner.
//
// The library as a command-line tool: give it a topology in the paper's
// notation, a pattern file (or a builtin workload name), and a routing
// scheme, and it reports the static contention analysis, deadlock check,
// and the simulated slowdown vs. the Full-Crossbar.
//
//   experiment_cli "XGFT(2; 16,16; 1,10)" cg128 d-mod-k
//   experiment_cli paper-slim wrf64 r-NCA-d
//   experiment_cli xgft2:8:8:4 pattern.txt Random
//
// Everything resolves through the core:: registries (the shared
// core::Scenario construction path): topologies accept the paper notation
// or any registered preset (campaign_cli --list-topologies), workloads any
// registered pattern spec like ring:64 (--list-patterns), schemes any
// registered name (--list-schemes) — and a typo in any of them reports the
// registries' uniform "unknown <kind> '<name>' (registered: ...)" error.
// A workload argument naming an existing file is read as a flow-list file
// (patterns/io.hpp) instead.
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/contention.hpp"
#include "analysis/dependency.hpp"
#include "analysis/report.hpp"
#include "core/scenario.hpp"
#include "patterns/io.hpp"
#include "trace/harness.hpp"
#include "xgft/printer.hpp"

namespace {

patterns::PhasedPattern loadWorkload(const std::string& spec) {
  core::Scenario sc;
  sc.pattern = spec;
  if (core::patternRegistry().contains(core::splitSpec(spec).name)) {
    return sc.makeWorkload();
  }
  std::ifstream file(spec);
  if (file) return patterns::readPhasedPattern(file);
  // Not a file either: surface the registry's uniform unknown-name error,
  // keeping the hint that a file open was attempted (the user's mistake
  // may be a typo'd path, not a workload name).
  try {
    (void)core::patternRegistry().at(core::splitSpec(spec).name);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("cannot open '" + spec +
                                "' as a pattern file, and " + e.what());
  }
  throw std::invalid_argument("unreachable: pattern '" + spec +
                              "' resolved inconsistently");
}

routing::RouterPtr makeRouter(const std::string& name,
                              const xgft::Topology& topo,
                              const patterns::PhasedPattern& app) {
  core::Scenario sc;
  sc.routing = core::schemeRegistry().canonical(name);
  if (sc.schemeInfo().mode != core::RouteMode::kTable) {
    throw std::invalid_argument("scheme '" + name +
                                "' routes per segment inside the simulator "
                                "and has no static analysis here");
  }
  return sc.makeRouter(topo, app);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: " << argv[0]
              << " <topology|preset> <pattern|pattern-file> <scheme>\n"
                 "registered names: campaign_cli --list-topologies | "
                 "--list-patterns | --list-schemes\n";
    return 2;
  }
  try {
    const xgft::Topology topo(core::makeTopoParams(argv[1]));
    const patterns::PhasedPattern app = loadWorkload(argv[2]);
    if (app.numRanks > topo.numHosts()) {
      throw std::invalid_argument("pattern has more ranks than hosts");
    }
    const routing::RouterPtr router = makeRouter(argv[3], topo, app);

    std::cout << xgft::summary(topo) << "\n";
    std::cout << "workload: " << app.name << " (" << app.numRanks
              << " ranks, " << app.phases.size() << " phase(s))\n";
    std::cout << "scheme:   " << router->name()
              << (router->isOblivious() ? " [oblivious]" : " [pattern-aware]")
              << "\n\n";

    analysis::Table table(
        {"phase", "flows", "max flows/link", "effective demand"});
    const patterns::Pattern flat = app.flattened();
    for (std::size_t i = 0; i < app.phases.size(); ++i) {
      const analysis::LoadSummary loads =
          analysis::computeLoads(topo, app.phases[i], *router);
      table.addRow({std::to_string(i + 1),
                    std::to_string(app.phases[i].size()),
                    std::to_string(loads.maxFlowsPerChannel),
                    analysis::Table::num(loads.maxDemand, 2)});
    }
    table.print(std::cout);

    std::cout << "\ndeadlock-free: "
              << (analysis::routesAreDeadlockFree(topo, *router, &flat)
                      ? "yes"
                      : "NO (cyclic channel dependencies!)")
              << "\n";

    const double slowdown = trace::slowdownVsCrossbar(topo, *router, app);
    std::cout << "slowdown vs Full-Crossbar: "
              << analysis::Table::num(slowdown, 3) << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
