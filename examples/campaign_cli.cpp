// campaign_cli.cpp — Declarative experiment campaigns from the command line.
//
// Runs a campaign file (one sweepable key=value spec per line, see
// engine/spec.hpp) or one of the builtin campaigns that replay the paper's
// figure sweeps, sharded over a work-stealing thread pool, and emits one
// deterministic CSV row per job.  The CSV is byte-identical regardless of
// --threads, so campaign outputs can be diffed across machines.
//
//   campaign_cli --builtin fig5-cg --threads 8 --out fig5.csv
//   campaign_cli --builtin fig2-cg --seeds 3 --msg-scale 0.03125
//   campaign_cli my_campaign.txt
//   echo 'pattern=ring:64 w2=8..1 routing=Random seed=1..4' | campaign_cli -
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace {

struct CliOptions {
  std::string campaignFile;
  std::string builtin;
  std::string outFile;
  std::uint32_t threads = 0;  // 0 = hardware concurrency.
  std::uint32_t seeds = 10;
  double msgScale = 0.125;
  bool contention = true;
  bool printCampaign = false;
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: campaign_cli [options] [campaign-file|-]\n"
        "  --builtin NAME    fig2-cg | fig2-wrf | fig4 | fig5-cg | fig5-wrf\n"
        "  --threads N       worker threads (default: hardware concurrency)\n"
        "  --seeds N         seed-sweep width of builtin campaigns "
        "(default 10)\n"
        "  --msg-scale X     message-size scale of builtin campaigns "
        "(default 0.125)\n"
        "  --out FILE        write the CSV there instead of stdout\n"
        "  --no-contention   skip the static contention/census columns\n"
        "  --print-campaign  print the expanded campaign text and exit\n"
        "  --quiet           no progress on stderr\n";
}

/// The paper's figure sweeps as campaign text (the same format a user would
/// put in a file) — the builtins go through the exact parser/expander path.
std::string builtinCampaign(const std::string& name, std::uint32_t seeds,
                            double msgScale) {
  std::ostringstream os;
  const std::string scale = " msg_scale=" + engine::formatShortest(msgScale);
  const std::string seedSweep = " seed=1.." + std::to_string(seeds);
  if (name == "fig2-cg" || name == "fig2-wrf" || name == "fig5-cg" ||
      name == "fig5-wrf") {
    const bool rnca = name.rfind("fig5", 0) == 0;
    const std::string pattern =
        name.find("-cg") != std::string::npos ? "cg128" : "wrf256";
    os << "# " << name << ": progressive slimming sweep, XGFT(2;16,16;1,w2)\n"
       << "pattern=" << pattern << scale
       << " w2=16..1 routing={s-mod-k,d-mod-k,colored} seed=1\n"
       << "pattern=" << pattern << scale << " w2=16..1 routing="
       << (rnca ? "{Random,r-NCA-u,r-NCA-d}" : "Random") << seedSweep << "\n";
    return os.str();
  }
  if (name == "fig4") {
    // All ordered pairs (alltoall) on the full and the slimmed tree: the
    // nca_routes_min/max columns are Fig. 4's per-NCA census extremes.
    // Tiny messages: the census is static, the simulation is a formality.
    for (const char* w2 : {"16", "10"}) {
      os << "pattern=alltoall:256 msg_scale=0.002 w2=" << w2
         << " routing={s-mod-k,d-mod-k} seed=1\n"
         << "pattern=alltoall:256 msg_scale=0.002 w2=" << w2
         << " routing={Random,r-NCA-u,r-NCA-d}" << seedSweep << "\n";
    }
    return os.str();
  }
  throw std::invalid_argument("unknown builtin campaign '" + name + "'");
}

CliOptions parseCli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(what) + " wants a value");
      }
      return argv[++i];
    };
    if (arg == "--builtin") {
      opt.builtin = next("--builtin");
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::uint32_t>(std::stoul(next("--threads")));
    } else if (arg == "--seeds") {
      opt.seeds = static_cast<std::uint32_t>(std::stoul(next("--seeds")));
    } else if (arg == "--msg-scale") {
      opt.msgScale = std::stod(next("--msg-scale"));
    } else if (arg == "--out") {
      opt.outFile = next("--out");
    } else if (arg == "--no-contention") {
      opt.contention = false;
    } else if (arg == "--print-campaign") {
      opt.printCampaign = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw std::invalid_argument("unknown flag: " + arg);
    } else if (opt.campaignFile.empty()) {
      opt.campaignFile = arg;
    } else {
      throw std::invalid_argument("more than one campaign file given");
    }
  }
  if (opt.builtin.empty() == opt.campaignFile.empty()) {
    throw std::invalid_argument(
        "give exactly one of --builtin NAME or a campaign file (or '-')");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  try {
    cli = parseCli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }
  try {
    std::string campaignText;
    if (!cli.builtin.empty()) {
      campaignText = builtinCampaign(cli.builtin, cli.seeds, cli.msgScale);
    } else if (cli.campaignFile == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      campaignText = buf.str();
    } else {
      std::ifstream file(cli.campaignFile);
      if (!file) {
        throw std::invalid_argument("cannot open campaign file: " +
                                    cli.campaignFile);
      }
      std::ostringstream buf;
      buf << file.rdbuf();
      campaignText = buf.str();
    }
    if (cli.printCampaign) {
      std::cout << campaignText;
      return 0;
    }

    const std::vector<engine::ExperimentSpec> specs =
        engine::parseCampaign(campaignText);
    if (specs.empty()) {
      throw std::invalid_argument("campaign expanded to zero jobs");
    }

    engine::RunnerOptions ropt;
    ropt.threads = cli.threads;
    ropt.collectContention = cli.contention;
    std::size_t done = 0;
    if (!cli.quiet) {
      ropt.onJobDone = [&](const engine::JobResult& job) {
        ++done;
        std::cerr << "\r[" << done << "/" << specs.size() << "] job "
                  << job.jobIndex << (job.ok ? "" : " FAILED") << std::flush;
      };
    }
    engine::Runner runner(ropt);
    const engine::CampaignResults results = runner.run(specs);
    if (!cli.quiet) std::cerr << "\n";

    if (cli.outFile.empty()) {
      results.writeCsv(std::cout);
    } else {
      std::ofstream out(cli.outFile);
      if (!out) {
        throw std::invalid_argument("cannot write: " + cli.outFile);
      }
      results.writeCsv(out);
    }

    std::size_t failed = 0;
    for (const engine::JobResult& job : results.jobs) {
      if (!job.ok) ++failed;
    }
    if (!cli.quiet) {
      const engine::CacheStats& c = results.cache;
      std::cerr << specs.size() << " jobs on " << results.threadsUsed
                << " thread(s) in "
                << static_cast<double>(results.wallTimeNs) / 1e9
                << " s; cache: topo " << c.topologyHits << "/"
                << (c.topologyHits + c.topologyMisses) << " hits, routers "
                << c.routerHits << "/" << (c.routerHits + c.routerMisses)
                << ", references " << c.referenceHits << "/"
                << (c.referenceHits + c.referenceMisses) << "\n";
      if (failed > 0) std::cerr << failed << " job(s) failed\n";
    }
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
